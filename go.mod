module gcx

go 1.22
