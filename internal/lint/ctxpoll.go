package lint

import (
	"go/ast"
	"strings"
)

// pollPkgs are the packages whose pull loops the pass inspects: the
// engine (which owns the blocked-evaluator loop), the shard runner
// (which owns the splitter producer loop) and the join operator (whose
// build-side scan iterates buffered tuples without pulling input, so
// only its own polling keeps cancellation latency bounded).
var pollPkgs = map[string]bool{
	"gcx/internal/engine": true,
	"gcx/internal/shard":  true,
	"gcx/internal/join":   true,
}

// CtxPoll enforces the cancellation-latency contract: any for-loop in
// the engine or shard packages that pulls input — calls Step, Next, or
// a next* helper — must poll for cancellation in the same loop body,
// either by calling a poll method or by selecting on a Done channel.
// Without it, a disconnecting gcxd client or an elapsed -timeout could
// leave a run spinning until end of input.
var CtxPoll = &Analyzer{
	Name: "ctxpoll",
	Doc:  "token-pull loops in engine/shard must poll for cancellation",
	Run: func(files []*File) []Finding {
		var out []Finding
		for _, f := range files {
			if f.Test || !pollPkgs[f.PkgPath] {
				continue
			}
			ast.Inspect(f.AST, func(n ast.Node) bool {
				body := loopBody(n)
				if body == nil {
					return true
				}
				if pullsInput(body) && !pollsCancellation(body) {
					out = append(out, Finding{
						Pos:      f.Fset.Position(n.Pos()),
						Analyzer: "ctxpoll",
						Message:  "token-pull loop does not poll for cancellation: call poll() or select on a Done channel in the loop body",
					})
				}
				return true
			})
		}
		return out
	},
}

func loopBody(n ast.Node) *ast.BlockStmt {
	switch n := n.(type) {
	case *ast.ForStmt:
		return n.Body
	case *ast.RangeStmt:
		return n.Body
	}
	return nil
}

// calleeName extracts the final identifier of a call target:
// e.proj.Step() → "Step", nextChunk() → "nextChunk".
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// inspectShallow walks stmts without descending into nested function
// literals or nested loops — those own their polling obligations.
func inspectShallow(body *ast.BlockStmt, visit func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt:
			return false
		}
		return visit(n)
	})
}

// pullsInput reports whether the loop body advances the input stream:
// a call to Step, Next, or a helper named next*.
func pullsInput(body *ast.BlockStmt) bool {
	found := false
	inspectShallow(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			name := calleeName(call)
			if name == "Step" || name == "Next" || strings.HasPrefix(name, "next") {
				found = true
			}
		}
		return !found
	})
	return found
}

// pollsCancellation reports whether the loop body checks for
// cancellation: a call to a method named poll/Poll, or a select with a
// receive from a *Done channel (case <-ctx.Done(): or a cached done
// channel).
func pollsCancellation(body *ast.BlockStmt) bool {
	found := false
	inspectShallow(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name := calleeName(n); name == "poll" || name == "Poll" {
				found = true
			}
		case *ast.SelectStmt:
			for _, clause := range n.Body.List {
				cc, ok := clause.(*ast.CommClause)
				if !ok || cc.Comm == nil {
					continue
				}
				if recvFromDone(cc.Comm) {
					found = true
				}
			}
		case *ast.UnaryExpr:
			// Direct blocking receive outside a select also counts.
			if doneChan(n) {
				found = true
			}
		}
		return !found
	})
	return found
}

// recvFromDone matches `case <-x.Done():`, `case <-done:` and their
// assignment forms.
func recvFromDone(s ast.Stmt) bool {
	var x ast.Expr
	switch s := s.(type) {
	case *ast.ExprStmt:
		x = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			x = s.Rhs[0]
		}
	}
	u, ok := x.(*ast.UnaryExpr)
	return ok && doneChan(u)
}

func doneChan(u *ast.UnaryExpr) bool {
	if u.Op.String() != "<-" {
		return false
	}
	switch ch := u.X.(type) {
	case *ast.CallExpr:
		return calleeName(ch) == "Done"
	case *ast.Ident:
		return strings.Contains(strings.ToLower(ch.Name), "done")
	case *ast.SelectorExpr:
		return strings.Contains(strings.ToLower(ch.Sel.Name), "done")
	}
	return false
}
