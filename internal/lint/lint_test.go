package lint

import (
	"go/ast"
	"strings"
	"testing"
)

// TestEventBoundaryFixture: the seeded violation fires, the allowed
// package and the test file do not.
func TestEventBoundaryFixture(t *testing.T) {
	findings, err := Run("testdata/eventboundary", []*Analyzer{EventBoundary})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %d, want exactly the seeded violation:\n%v", len(findings), findings)
	}
	f := findings[0]
	if !strings.Contains(f.Pos.Filename, "output/bad.go") {
		t.Errorf("finding in %s, want output/bad.go", f.Pos.Filename)
	}
	if !strings.Contains(f.Message, "gcx/internal/xmltok") || !strings.Contains(f.Message, "internal/event") {
		t.Errorf("message lacks the import and the remedy: %s", f.Message)
	}
}

// TestCtxPollFixture: all three seeded pull-without-poll loops fire
// (two in the engine fixture, one in the join fixture); the polling
// idioms and the out-of-scope package do not.
func TestCtxPollFixture(t *testing.T) {
	findings, err := Run("testdata/ctxpoll", []*Analyzer{CtxPoll})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 3 {
		t.Fatalf("findings = %d, want the three seeded violations:\n%v", len(findings), findings)
	}
	for _, f := range findings {
		if !strings.Contains(f.Pos.Filename, "engine/loops.go") && !strings.Contains(f.Pos.Filename, "join/loops.go") {
			t.Errorf("finding outside the fixture engine/join packages: %v", f)
		}
	}
}

// TestObsNamesFixture: the seeded violations fire — two malformed
// metric names in the server fixture and one bare "log" import in the
// gcxd command fixture — while the conforming names, the computed name,
// the test file and the slog-using package stay silent.
func TestObsNamesFixture(t *testing.T) {
	findings, err := Run("testdata/obsnames", []*Analyzer{ObsNames})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 3 {
		t.Fatalf("findings = %d, want the three seeded violations:\n%v", len(findings), findings)
	}
	var names, logs int
	for _, f := range findings {
		switch {
		case strings.Contains(f.Message, "snake_case"):
			names++
			if !strings.Contains(f.Pos.Filename, "server/bad.go") {
				t.Errorf("name finding outside server/bad.go: %v", f)
			}
		case strings.Contains(f.Message, "log/slog"):
			logs++
			if !strings.Contains(f.Pos.Filename, "cmd/gcxd/bad.go") {
				t.Errorf("log finding outside cmd/gcxd/bad.go: %v", f)
			}
		default:
			t.Errorf("unexpected finding: %v", f)
		}
	}
	if names != 2 || logs != 1 {
		t.Errorf("names = %d, logs = %d, want 2 and 1", names, logs)
	}
}

// TestObsNamesNotVacuous: the pass recognizes the real server's metric
// registrations — otherwise a clean repo run proves nothing.
func TestObsNamesNotVacuous(t *testing.T) {
	files, err := Load("../..")
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, f := range files {
		if f.Test || !importsPath(f, "gcx/internal/obs") {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && obsCtors[sel.Sel.Name] {
				if _, ok := call.Args[0].(*ast.BasicLit); ok {
					checked++
				}
			}
			return true
		})
	}
	if checked < 20 {
		t.Fatalf("obsnames checked %d literal metric names, want >= 20 (the gcxd registry); the pass has gone vacuous", checked)
	}
}

// TestHotBytesFixture: the two seeded per-byte calls fire; the
// cursor-idiom file, the test file and the out-of-scope package do not.
func TestHotBytesFixture(t *testing.T) {
	findings, err := Run("testdata/hotbytes", []*Analyzer{HotBytes})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("findings = %d, want the two seeded violations:\n%v", len(findings), findings)
	}
	var read, unread int
	for _, f := range findings {
		if !strings.Contains(f.Pos.Filename, "xmltok/bad.go") {
			t.Errorf("finding outside xmltok/bad.go: %v", f)
		}
		switch {
		case strings.Contains(f.Message, "UnreadByte"):
			unread++
		case strings.Contains(f.Message, "ReadByte"):
			read++
		}
		if !strings.Contains(f.Message, "block cursor") {
			t.Errorf("message lacks the remedy: %s", f.Message)
		}
	}
	if read != 1 || unread != 1 {
		t.Errorf("read = %d, unread = %d, want 1 and 1", read, unread)
	}
}

// TestHotBytesNotVacuous: the pass actually walks the real tokenizer
// packages, and those packages still use the cursor's sanctioned
// per-byte calls (Byte/Unread) in their slow paths — proving the hot
// packages are in scope and call-expression matching resolves. If this
// count drops to zero the scope map or the packages moved and the pass
// checks nothing.
func TestHotBytesNotVacuous(t *testing.T) {
	files, err := Load("../..")
	if err != nil {
		t.Fatal(err)
	}
	hotFiles, cursorCalls := 0, 0
	for _, f := range files {
		if f.Test || !hotPkgs[f.PkgPath] {
			continue
		}
		hotFiles++
		ast.Inspect(f.AST, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if name := calleeName(call); name == "Byte" || name == "Unread" || name == "Window" || name == "SkipPast" {
					cursorCalls++
				}
			}
			return true
		})
	}
	if hotFiles < 6 {
		t.Fatalf("hotbytes scope covers %d files, want >= 6 (xmltok+jsontok); the scope map has gone vacuous", hotFiles)
	}
	if cursorCalls < 20 {
		t.Fatalf("hotbytes packages make %d cursor calls, want >= 20; the byte path has moved and the pass checks nothing", cursorCalls)
	}
}

// TestRepoClean: the real repository satisfies every pass — the
// invariant `make check` and CI enforce.
func TestRepoClean(t *testing.T) {
	findings, err := Run("../..", All)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("repo violation: %v", f)
	}
}

// TestCtxPollNotVacuous: the pass recognizes the repo's real pull loops
// (engine's ensure, shard's splitter producer) — otherwise a clean run
// proves nothing.
func TestCtxPollNotVacuous(t *testing.T) {
	files, err := Load("../..")
	if err != nil {
		t.Fatal(err)
	}
	pullLoops := 0
	for _, f := range files {
		if f.Test || !pollPkgs[f.PkgPath] {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			if body := loopBody(n); body != nil && pullsInput(body) {
				pullLoops++
			}
			return true
		})
	}
	if pullLoops == 0 {
		t.Fatal("ctxpoll matched no pull loop in engine/shard; the pass has gone vacuous")
	}
}

// TestLoadPkgPaths: import paths derive from the module path and the
// directory layout.
func TestLoadPkgPaths(t *testing.T) {
	files, err := Load("testdata/ctxpoll")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"gcx/internal/engine": false,
		"gcx/internal/join":   false,
		"gcx/internal/other":  false,
	}
	for _, f := range files {
		if _, ok := want[f.PkgPath]; ok {
			want[f.PkgPath] = true
		} else {
			t.Errorf("unexpected package path %q for %s", f.PkgPath, f.Path)
		}
	}
	for pkg, seen := range want {
		if !seen {
			t.Errorf("package %s not loaded", pkg)
		}
	}
}

func TestLookup(t *testing.T) {
	if Lookup("eventboundary") != EventBoundary || Lookup("ctxpoll") != CtxPoll || Lookup("obsnames") != ObsNames || Lookup("hotbytes") != HotBytes {
		t.Error("Lookup does not resolve registered passes")
	}
	if Lookup("nope") != nil {
		t.Error("Lookup resolved an unknown pass")
	}
}
