// Package output is a seeded eventboundary violation: it imports the
// raw XML tokenizer from outside the allowed front-end set. The fixture
// is parse-only — it never builds.
package output

import "gcx/internal/xmltok"

var _ = xmltok.NewTokenizer
