// Test files are exempt from the boundary: differential tests and
// benchmarks drive tokenizers head-to-head on purpose.
package output

import "gcx/internal/jsontok"

var _ = jsontok.NewTokenizer
