// Package core stands in for the real event-layer front end, which is
// on the tokenizer allowlist.
package core

import "gcx/internal/xmltok"

var _ = xmltok.NewTokenizer
