// Package main seeds the slog-only violation: the gcxd command
// importing the unstructured log package.
package main

import "log"

func lifecycle() {
	log.Printf("gcxd listening")
}
