// Test files are exempt: registry tests exercise arbitrary metric
// names on purpose.
package server

import "gcx/internal/obs"

func registerTest(r *obs.Registry) {
	r.Counter("test_counter", "fine in tests")
}
