// Package server seeds two obsnames metric-name violations: a name
// without the gcx_ prefix and a name with uppercase characters. The
// fixture is parse-only — it never builds.
package server

import "gcx/internal/obs"

func register(r *obs.Registry) {
	r.Counter("requests_total", "missing the gcx_ prefix")
	r.Gauge("gcx_PeakNodes", "camel case is not snake_case")
	r.Counter("gcx_ok_total", "conforming name, no finding")
	name := "computed_" + "name"
	r.Counter(name, "non-literal names are out of scope")
}
