// Package gcxd stands in for the real server package: slog is the
// sanctioned logging path, so no finding.
package gcxd

import "log/slog"

func lifecycle(l *slog.Logger) {
	l.Info("gcxd listening")
}
