// Package other pulls input without polling, but is outside the
// engine/shard scope of the ctxpoll pass — no finding expected.
package other

type src struct{}

func (s *src) Next() (int, error) { return 0, nil }

func drain(s *src) {
	for {
		if _, err := s.Next(); err != nil {
			return
		}
	}
}
