// Package join is the ctxpoll fixture for the join operator: its
// build-side scan advances over buffered tuples with a next* helper, so
// the same polling contract applies. badScan is the seeded violation;
// okScan shows the accepted idiom.
package join

type node struct{}

func nextTuple(prev *node) *node { return nil }

func okScan(poll func() error) {
	cur := nextTuple(nil)
	for cur != nil {
		if err := poll(); err != nil {
			return
		}
		cur = nextTuple(cur)
	}
}

func badScan() {
	cur := nextTuple(nil)
	for cur != nil {
		cur = nextTuple(cur)
	}
}
