// Package engine is the ctxpoll fixture: pull loops with and without
// cancellation polling. The two bad* functions are the seeded
// violations the pass must report; the ok* functions show the two
// accepted polling idioms (a poll() call, a select on a Done channel).
package engine

type src struct{}

func (s *src) Next() (int, error)  { return 0, nil }
func (s *src) Step() (bool, error) { return false, nil }

type eng struct {
	src  *src
	done chan struct{}
}

func (e *eng) poll() error { return nil }

func (e *eng) okPoll() {
	for {
		if err := e.poll(); err != nil {
			return
		}
		if _, err := e.src.Step(); err != nil {
			return
		}
	}
}

func (e *eng) okSelect() {
	for {
		select {
		case <-e.done:
			return
		default:
		}
		if _, err := e.src.Next(); err != nil {
			return
		}
	}
}

func (e *eng) badPull() {
	for {
		if _, err := e.src.Step(); err != nil {
			return
		}
	}
}

func (e *eng) badRange(chunks []int) {
	for range chunks {
		nextChunk()
	}
}

func nextChunk() {}
