package xmltok

// cursorLike mimics the block-cursor API: window-oriented scanning with
// the sanctioned per-byte calls for parity-sensitive slow paths.
type cursorLike interface {
	Window() []byte
	Advance(int)
	Byte() (byte, error)
	Unread()
}

func scan(c cursorLike) {
	w := c.Window()
	c.Advance(len(w))
	if b, err := c.Byte(); err == nil && b == '<' {
		c.Unread()
	}
}
