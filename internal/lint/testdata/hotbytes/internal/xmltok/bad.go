// Package xmltok (fixture) seeds two hotbytes violations: a per-byte
// bufio-style pull loop inside a byte-path package. Parse-only — it
// never builds.
package xmltok

type reader interface {
	ReadByte() (byte, error)
	UnreadByte() error
}

func consume(r reader) {
	for {
		b, err := r.ReadByte() // violation: per-byte pull in a hot package
		if err != nil {
			return
		}
		if b == '<' {
			r.UnreadByte() // violation: per-byte unread
			return
		}
	}
}
