package xmltok

// Test files are exempt: differential tests wrap inputs in one-byte
// readers on purpose.
func testConsume(r reader) {
	b, _ := r.ReadByte()
	_ = b
	_ = r.UnreadByte()
}
