// Package other is outside the hotbytes scope: per-byte reads are fine
// here.
package other

type reader interface {
	ReadByte() (byte, error)
}

func consume(r reader) {
	for {
		if _, err := r.ReadByte(); err != nil {
			return
		}
	}
}
