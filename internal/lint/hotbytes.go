package lint

import (
	"fmt"
	"go/ast"
)

// hotPkgs are the byte-path front ends whose hot loops must stay
// window-oriented: every byte they consume goes through the block
// cursor (internal/cursor), whose API deliberately names its per-byte
// calls Byte/Unread so that the bufio idiom is detectable by name.
var hotPkgs = map[string]bool{
	"gcx/internal/xmltok":  true,
	"gcx/internal/jsontok": true,
}

// bannedByteCalls are the per-byte reader methods that must not appear
// in the hot packages: their presence means a loop has regressed from
// vectorized window scanning to byte-at-a-time pulls (the pre-cursor
// bufio shape this repo measured at a fraction of the window-scan
// throughput; DESIGN.md §12).
var bannedByteCalls = map[string]bool{
	"ReadByte":   true,
	"UnreadByte": true,
}

// HotBytes forbids ReadByte/UnreadByte calls in the tokenizer hot
// paths. Test files are exempt: differential tests legitimately wrap
// inputs in one-byte readers to force refill boundaries.
var HotBytes = &Analyzer{
	Name: "hotbytes",
	Doc:  "xmltok/jsontok must scan through the block cursor, not per-byte ReadByte/UnreadByte",
	Run: func(files []*File) []Finding {
		var out []Finding
		for _, f := range files {
			if f.Test || !hotPkgs[f.PkgPath] {
				continue
			}
			ast.Inspect(f.AST, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name := calleeName(call); bannedByteCalls[name] {
					out = append(out, Finding{
						Pos:      f.Fset.Position(call.Pos()),
						Analyzer: "hotbytes",
						Message: fmt.Sprintf(
							"%s call in a byte-path package: scan through the block cursor (Window/Advance/SkipPast, or Byte/Unread for parity-sensitive slow paths) instead of per-byte reads (DESIGN.md §12)",
							name),
					})
				}
				return true
			})
		}
		return out
	},
}
