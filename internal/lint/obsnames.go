package lint

import (
	"fmt"
	"go/ast"
	"regexp"
	"strconv"
)

// obsMetricName is the naming grammar for gcx metrics: gcx_-prefixed
// snake_case, the convention the README's scrape examples and dashboard
// queries rely on. The obs registry itself only enforces Prometheus
// validity; this pass enforces the repo convention at the call sites.
var obsMetricName = regexp.MustCompile(`^gcx(_[a-z0-9]+)+$`)

// obsCtors are the obs.Registry constructor methods whose first
// argument is the metric name.
var obsCtors = map[string]bool{
	"Counter":      true,
	"CounterFunc":  true,
	"CounterVec":   true,
	"Gauge":        true,
	"GaugeFunc":    true,
	"Histogram":    true,
	"HistogramVec": true,
}

// slogOnlyPkgs are the server packages where every log line must go
// through log/slog: request logs are machine-consumed (one structured
// line per query), so a stray log.Printf would silently fall out of the
// pipeline.
var slogOnlyPkgs = map[string]bool{
	"gcx/cmd/gcxd":      true,
	"gcx/internal/gcxd": true,
}

// ObsNames enforces the observability conventions of DESIGN.md §11:
// metric names registered on the obs registry are gcx_-prefixed
// snake_case, and the gcxd server packages log through slog only (no
// bare "log" import). Test files are exempt — registry tests exercise
// arbitrary names on purpose.
var ObsNames = &Analyzer{
	Name: "obsnames",
	Doc:  "enforce gcx_ snake_case metric names and slog-only logging in gcxd",
	Run: func(files []*File) []Finding {
		var out []Finding
		for _, f := range files {
			if f.Test {
				continue
			}
			if slogOnlyPkgs[f.PkgPath] {
				for _, imp := range f.AST.Imports {
					path, err := strconv.Unquote(imp.Path.Value)
					if err != nil || path != "log" {
						continue
					}
					out = append(out, Finding{
						Pos:      f.Fset.Position(imp.Pos()),
						Analyzer: "obsnames",
						Message: fmt.Sprintf(
							"package %s imports \"log\"; gcxd logs through log/slog only (one structured line per request — a bare log.Printf falls out of the pipeline)",
							f.PkgPath),
					})
				}
			}
			if !importsPath(f, "gcx/internal/obs") {
				continue
			}
			ast.Inspect(f.AST, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !obsCtors[sel.Sel.Name] {
					return true
				}
				lit, ok := call.Args[0].(*ast.BasicLit)
				if !ok {
					return true // computed names are out of scope
				}
				name, err := strconv.Unquote(lit.Value)
				if err != nil || obsMetricName.MatchString(name) {
					return true
				}
				out = append(out, Finding{
					Pos:      f.Fset.Position(lit.Pos()),
					Analyzer: "obsnames",
					Message: fmt.Sprintf(
						"metric name %q is not gcx_-prefixed snake_case (want %s)",
						name, obsMetricName),
				})
				return true
			})
		}
		return out
	},
}

// importsPath reports whether the file imports the given package path.
func importsPath(f *File, pkg string) bool {
	for _, imp := range f.AST.Imports {
		if path, err := strconv.Unquote(imp.Path.Value); err == nil && path == pkg {
			return true
		}
	}
	return false
}
