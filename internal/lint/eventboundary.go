package lint

import (
	"fmt"
	"strconv"
	"strings"
)

// tokenizerPkgs are the raw byte-level tokenizer packages hidden behind
// the event layer.
var tokenizerPkgs = map[string]bool{
	"gcx/internal/xmltok":  true,
	"gcx/internal/jsontok": true,
}

// tokenizerImporters are the packages allowed to touch the tokenizers
// directly: the event-layer front ends (core), the engines that predate
// or bypass it by design (dom, baseline), the analyses and splitters
// that work on raw bytes (analysis, shard, schema), the benchmark
// harness (gcxbench measures the raw scanning substrate — SkipSubtree
// and splitter throughput — below the event layer, DESIGN.md §12), and
// the tokenizer packages themselves. Everything else must go through
// internal/event sources and sinks (DESIGN.md §8) — that boundary is
// what lets a new input format plug in without touching the engine.
var tokenizerImporters = map[string]bool{
	"gcx/cmd/gcxbench":      true,
	"gcx/internal/analysis": true,
	"gcx/internal/baseline": true,
	"gcx/internal/core":     true,
	"gcx/internal/dom":      true,
	"gcx/internal/schema":   true,
	"gcx/internal/shard":    true,
	"gcx/internal/xmltok":   true,
	"gcx/internal/jsontok":  true,
}

// EventBoundary reports imports of the tokenizer packages from outside
// the allowed front-end set. Test files are exempt: differential tests
// and benchmarks legitimately drive tokenizers head-to-head.
var EventBoundary = &Analyzer{
	Name: "eventboundary",
	Doc:  "restrict xmltok/jsontok imports to the event-layer front ends",
	Run: func(files []*File) []Finding {
		var out []Finding
		for _, f := range files {
			if f.Test || tokenizerImporters[f.PkgPath] {
				continue
			}
			for _, imp := range f.AST.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil || !tokenizerPkgs[path] {
					continue
				}
				out = append(out, Finding{
					Pos:      f.Fset.Position(imp.Pos()),
					Analyzer: "eventboundary",
					Message: fmt.Sprintf(
						"package %s imports %s; only the event-layer front ends (%s) may use raw tokenizers — consume internal/event sources instead",
						f.PkgPath, path, strings.Join(sortedKeys(tokenizerImporters), ", ")),
				})
			}
		}
		return out
	},
}

func sortedKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
