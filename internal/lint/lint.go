// Package lint implements gcx's repo-specific static checks, run by
// cmd/gcxlint and `make check`. The passes encode architectural
// invariants that ordinary vet cannot know:
//
//   - eventboundary: the raw tokenizer packages (xmltok, jsontok) may
//     only be imported by the designated front-end and splitter
//     packages — everything else must consume the format-neutral event
//     layer (DESIGN.md §8).
//   - ctxpoll: token-pull loops in the engine and shard packages must
//     poll for cancellation, so a disconnecting client aborts a run
//     within one input token (the latency contract of gcxd's drain).
//   - obsnames: metric names registered on the obs registry are
//     gcx_-prefixed snake_case, and the gcxd server packages log through
//     log/slog only (DESIGN.md §11).
//   - hotbytes: the byte-path front ends (xmltok, jsontok) never call
//     ReadByte/UnreadByte — all input flows through the block cursor's
//     window-oriented API, keeping the hot loops vectorized
//     (DESIGN.md §12).
//
// The framework is deliberately stdlib-only (go/parser + go/ast): the
// build environment has no module proxy, so golang.org/x/tools is out
// of reach. The Analyzer shape mirrors x/tools/go/analysis closely
// enough that migrating later is mechanical.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// Finding is one diagnostic.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// File is one parsed source file with its package context.
type File struct {
	Fset *token.FileSet
	AST  *ast.File
	// Path is the file path as given to Load.
	Path string
	// PkgPath is the import path of the file's package, derived from
	// the module path and the directory (test packages share their
	// directory's path).
	PkgPath string
	// Test marks _test.go files; boundary rules exempt them.
	Test bool
}

// Analyzer is one lint pass over the whole file set.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(files []*File) []Finding
}

// All is the registry of passes, in reporting order.
var All = []*Analyzer{EventBoundary, CtxPoll, ObsNames, HotBytes}

// Lookup resolves a pass by name.
func Lookup(name string) *Analyzer {
	for _, a := range All {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Load parses every .go file under root, skipping hidden directories
// and testdata fixtures (those contain violations on purpose).
func Load(root string) ([]*File, error) {
	module := modulePath(root)
	fset := token.NewFileSet()
	var files []*File
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		pkg := module
		if rel != "." {
			pkg = module + "/" + filepath.ToSlash(rel)
		}
		files = append(files, &File{
			Fset:    fset,
			AST:     f,
			Path:    path,
			PkgPath: pkg,
			Test:    strings.HasSuffix(path, "_test.go"),
		})
		return nil
	})
	return files, err
}

// modulePath reads the module line of root's go.mod, defaulting to
// "gcx" (the repo's module) when absent.
func modulePath(root string) string {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "gcx"
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return "gcx"
}

// Run executes the given passes over root and returns their findings.
func Run(root string, passes []*Analyzer) ([]Finding, error) {
	files, err := Load(root)
	if err != nil {
		return nil, err
	}
	var all []Finding
	for _, a := range passes {
		all = append(all, a.Run(files)...)
	}
	return all, nil
}
