// Package stats records run statistics: the buffer plot series of the
// paper's Figures 3 and 4 (tokens processed → nodes buffered) and the
// high watermarks reported in Figure 5.
package stats

import (
	"fmt"
	"io"
	"strings"
)

// Point is one sample of the buffer plot.
type Point struct {
	// Token is the number of input tokens processed so far (x-axis).
	Token int64
	// Nodes is the number of buffered XML nodes after processing the
	// token (y-axis).
	Nodes int64
	// Bytes is the estimated buffered size at the sample.
	Bytes int64
}

// Recorder samples the buffer size per processed token.
type Recorder struct {
	// Every is the sampling interval in tokens; 1 records every token
	// (the paper's Fig. 3), larger values bound the series size for
	// multi-million-token runs (Fig. 4).
	Every int64
	// Points is the recorded series.
	Points []Point

	count int64
}

// NewRecorder returns a recorder sampling every n tokens (n < 1 is
// treated as 1).
func NewRecorder(n int64) *Recorder {
	if n < 1 {
		n = 1
	}
	return &Recorder{Every: n}
}

// Record adds a sample if the token index falls on the sampling grid.
func (r *Recorder) Record(token, nodes, bytes int64) {
	r.count++
	if r.count%r.Every != 0 {
		return
	}
	r.Points = append(r.Points, Point{Token: token, Nodes: nodes, Bytes: bytes})
}

// PeakNodes returns the maximum recorded node count.
func (r *Recorder) PeakNodes() int64 {
	var peak int64
	for _, p := range r.Points {
		if p.Nodes > peak {
			peak = p.Nodes
		}
	}
	return peak
}

// WriteTSV writes the series as "token<TAB>nodes" lines, ready for
// gnuplot (the format of the paper's buffer plots).
func (r *Recorder) WriteTSV(w io.Writer) error {
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%d\t%d\n", p.Token, p.Nodes); err != nil {
			return err
		}
	}
	return nil
}

// Sparkline renders the node series as a compact ASCII chart (used by
// the examples to visualize the Fig. 3 oscillation in a terminal).
func (r *Recorder) Sparkline(width int) string {
	if len(r.Points) == 0 || width < 1 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	peak := r.PeakNodes()
	if peak == 0 {
		peak = 1
	}
	var b strings.Builder
	step := float64(len(r.Points)) / float64(width)
	if step < 1 {
		step = 1
		width = len(r.Points)
	}
	for i := 0; i < width; i++ {
		idx := int(float64(i) * step)
		if idx >= len(r.Points) {
			idx = len(r.Points) - 1
		}
		v := r.Points[idx].Nodes
		l := int(float64(v) / float64(peak) * float64(len(levels)-1))
		b.WriteRune(levels[l])
	}
	return b.String()
}
