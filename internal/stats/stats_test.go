package stats

import (
	"strings"
	"testing"
)

func TestRecorderSamplesEveryN(t *testing.T) {
	r := NewRecorder(3)
	for i := int64(1); i <= 10; i++ {
		r.Record(i, i*2, i*100)
	}
	if len(r.Points) != 3 {
		t.Fatalf("got %d points, want 3", len(r.Points))
	}
	if r.Points[0].Token != 3 || r.Points[1].Token != 6 || r.Points[2].Token != 9 {
		t.Fatalf("sample grid wrong: %+v", r.Points)
	}
	if r.Points[2].Nodes != 18 || r.Points[2].Bytes != 900 {
		t.Fatalf("sample values wrong: %+v", r.Points[2])
	}
}

func TestRecorderDefaultInterval(t *testing.T) {
	r := NewRecorder(0)
	if r.Every != 1 {
		t.Fatalf("Every = %d, want 1", r.Every)
	}
	r.Record(1, 5, 0)
	r.Record(2, 7, 0)
	if len(r.Points) != 2 {
		t.Fatal("interval 1 must record every token")
	}
}

func TestPeakNodes(t *testing.T) {
	r := NewRecorder(1)
	for _, n := range []int64{1, 5, 3, 9, 2} {
		r.Record(n, n, 0)
	}
	if r.PeakNodes() != 9 {
		t.Fatalf("PeakNodes = %d", r.PeakNodes())
	}
	empty := NewRecorder(1)
	if empty.PeakNodes() != 0 {
		t.Fatal("empty recorder peak should be 0")
	}
}

func TestWriteTSV(t *testing.T) {
	r := NewRecorder(1)
	r.Record(1, 10, 0)
	r.Record(2, 20, 0)
	var b strings.Builder
	if err := r.WriteTSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "1\t10\n2\t20\n" {
		t.Fatalf("TSV = %q", b.String())
	}
}

func TestSparkline(t *testing.T) {
	r := NewRecorder(1)
	for i := int64(0); i < 100; i++ {
		r.Record(i+1, i%10, 0)
	}
	s := r.Sparkline(20)
	if got := len([]rune(s)); got != 20 {
		t.Fatalf("sparkline width = %d, want 20", got)
	}
	if NewRecorder(1).Sparkline(10) != "" {
		t.Fatal("empty recorder sparkline should be empty")
	}
	// fewer points than width: one glyph per point
	small := NewRecorder(1)
	small.Record(1, 1, 0)
	small.Record(2, 2, 0)
	if got := len([]rune(small.Sparkline(80))); got != 2 {
		t.Fatalf("small sparkline width = %d, want 2", got)
	}
}
