package xqgen

import (
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"gcx/internal/analysis"
	"gcx/internal/xmltok"
	"gcx/internal/xqast"
	"gcx/internal/xqparse"
)

// TestDocumentsWellFormed: every generated document tokenizes cleanly.
func TestDocumentsWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		doc := Document(rand.New(rand.NewSource(seed)))
		tz := xmltok.NewTokenizer(strings.NewReader(doc))
		for {
			_, err := tz.Next()
			if err == io.EOF {
				return true
			}
			if err != nil {
				t.Logf("seed %d: %v\n%s", seed, err, doc)
				return false
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQueriesCompile: every generated query parses and analyzes — any
// failure is a generator or compiler bug.
func TestQueriesCompile(t *testing.T) {
	f := func(seed int64) bool {
		src := Query(rand.New(rand.NewSource(seed)), DefaultOptions())
		q, err := xqparse.Parse(src)
		if err != nil {
			t.Logf("seed %d does not parse: %v\n%s", seed, err, src)
			return false
		}
		if _, err := analysis.Analyze(q); err != nil {
			t.Logf("seed %d does not analyze: %v\n%s", seed, err, src)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPrintParseStability: print∘parse is idempotent on generated
// queries (the parser and printer agree on the whole fragment).
func TestPrintParseStability(t *testing.T) {
	f := func(seed int64) bool {
		src := Query(rand.New(rand.NewSource(seed)), DefaultOptions())
		q1, err := xqparse.Parse(src)
		if err != nil {
			return false
		}
		printed := xqast.Print(q1)
		q2, err := xqparse.Parse(printed)
		if err != nil {
			t.Logf("seed %d: printed form does not reparse: %v\n%s", seed, err, printed)
			return false
		}
		if xqast.Print(q2) != printed {
			t.Logf("seed %d: print not stable:\n%s\nvs\n%s", seed, printed, xqast.Print(q2))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestOptionsRespected: disabled features never appear.
func TestOptionsRespected(t *testing.T) {
	opts := Options{MaxLoops: 2, Aggregates: false, AttrTemplates: false, Where: false}
	for seed := int64(0); seed < 100; seed++ {
		src := Query(rand.New(rand.NewSource(seed)), opts)
		for _, forbidden := range []string{"count(", "sum(", "min(", "max(", "avg(", " where ", `v="{`} {
			if strings.Contains(src, forbidden) {
				t.Fatalf("seed %d: %q appeared with feature disabled:\n%s", seed, forbidden, src)
			}
		}
		if strings.Count(src, "for $") > 2 {
			t.Fatalf("seed %d: more than MaxLoops loops:\n%s", seed, src)
		}
	}
}
