// Package xqgen generates random documents and random queries of the
// GCX fragment for property-based testing: the differential oracle
// (streaming engines vs. DOM), parser round-trip stability and fuzzing
// of the compile pipeline all draw from it.
//
// Generated queries are always well-formed and well-scoped, so any
// parse or analysis failure they provoke is a bug by construction.
package xqgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Names is the element-name alphabet shared by documents and queries,
// so that paths frequently match.
var Names = []string{"a", "b", "c", "d", "e"}

// Options tunes query generation.
type Options struct {
	// MaxLoops bounds the number of for-loops per query (join blow-up).
	MaxLoops int
	// Aggregates permits count/sum/min/max/avg expressions.
	Aggregates bool
	// AttrTemplates permits computed constructor attributes.
	AttrTemplates bool
	// Where permits where-clauses on loops.
	Where bool
	// SingleRootLoop biases generation toward bounded-streamable
	// queries: once a loop variable is in scope, path references prefer
	// bound variables over the absolute root, so most generated queries
	// are single-pass pipelines rather than joins or whole-input reads.
	// Used by the static-bound fuzz harness, which needs a healthy mix
	// of bounded classifications to exercise the budget property.
	SingleRootLoop bool
}

// DefaultOptions covers the full implemented language.
func DefaultOptions() Options {
	return Options{MaxLoops: 5, Aggregates: true, AttrTemplates: true, Where: true}
}

// Document produces a random well-formed document rooted at <root>.
func Document(r *rand.Rand) string {
	var sb strings.Builder
	sb.WriteString("<root>")
	content(r, &sb, 0)
	sb.WriteString("</root>")
	return sb.String()
}

func content(r *rand.Rand, sb *strings.Builder, depth int) {
	n := r.Intn(4)
	if depth == 0 {
		n = 2 + r.Intn(4)
	}
	for i := 0; i < n; i++ {
		switch {
		case depth < 4 && r.Intn(3) > 0:
			name := Names[r.Intn(len(Names))]
			sb.WriteString("<" + name)
			if r.Intn(2) == 0 {
				fmt.Fprintf(sb, ` id="%d"`, r.Intn(5))
			}
			if r.Intn(4) == 0 {
				fmt.Fprintf(sb, ` k="%d"`, r.Intn(3))
			}
			sb.WriteString(">")
			content(r, sb, depth+1)
			sb.WriteString("</" + name + ">")
		default:
			fmt.Fprintf(sb, "t%d", r.Intn(10))
		}
	}
}

// JoinKeys is the value pool join documents draw keys from: a small
// alphabet so duplicate keys are common, plus empty values and values
// carrying entity references (escaped in the document, compared decoded
// by the engine). Exported so fuzz seeds and tests can reuse it.
var JoinKeys = []string{"k0", "k1", "k2", "k1", "", "a&amp;b", "l&lt;r", "q&quot;e", " s p "}

// JoinDocument produces a two-section document of the shape JoinQuery
// queries: probe records under /root/ps/p (children n, k and an id
// attribute) and build records under /root/bs/b (children k, v and an
// id attribute). Key values come from JoinKeys; records occasionally
// carry no key or a second key element, exercising empty-sequence and
// multi-key existential comparisons.
func JoinDocument(r *rand.Rand, probeN, buildN int) string {
	var sb strings.Builder
	key := func() string {
		k := "<k>" + JoinKeys[r.Intn(len(JoinKeys))] + "</k>"
		switch r.Intn(8) {
		case 0:
			return "" // no key: existentially matches nothing
		case 1:
			return k + "<k>" + JoinKeys[r.Intn(len(JoinKeys))] + "</k>"
		}
		return k
	}
	sb.WriteString("<root><ps>")
	for i := 0; i < probeN; i++ {
		fmt.Fprintf(&sb, `<p id="%d"><n>n%d</n>%s</p>`, i%5, i, key())
	}
	sb.WriteString("</ps><bs>")
	for i := 0; i < buildN; i++ {
		fmt.Fprintf(&sb, `<b id="%d">%s<v>v%d</v></b>`, i%4, key(), i)
	}
	sb.WriteString("</bs></root>")
	return sb.String()
}

// JoinQuery produces a random query of the detectable join shape
// (analysis.DetectJoin) over JoinDocument-shaped inputs: an outer loop
// over the probe section whose body re-scans the build section keeping
// equal-keyed records.
func JoinQuery(r *rand.Rand) string {
	keyEq := [...]string{
		"$b/k = $p/k",
		"$p/k = $b/k",
		"$b/@id = $p/@id",
	}[r.Intn(3)]
	then := [...]string{
		"$b/v",
		"$b/k",
		"<v>{ $b/v }</v>",
		"($b/v, $b/k)",
	}[r.Intn(4)]
	inner := fmt.Sprintf("for $b in /root/bs/b return if (%s) then %s else ()", keyEq, then)
	body := inner
	if r.Intn(2) == 0 {
		body = "<m>{ $p/n, " + inner + " }</m>"
	}
	return "<out>{ for $p in /root/ps/p return " + body + " }</out>"
}

// Query produces a random query over Document-shaped inputs.
func Query(r *rand.Rand, opts Options) string {
	g := &gen{r: r, opts: opts}
	return "<out>{ " + g.exprSeq(0) + " }</out>"
}

type gen struct {
	r     *rand.Rand
	opts  Options
	vars  []string
	next  int
	loops int
}

func (g *gen) fresh() string {
	g.next++
	return fmt.Sprintf("x%d", g.next)
}

func (g *gen) name() string { return Names[g.r.Intn(len(Names))] }

// path generates a relative path suffix of 1..2 steps.
func (g *gen) path(allowAttr, allowText bool) string {
	var steps []string
	n := 1 + g.r.Intn(2)
	for i := 0; i < n; i++ {
		switch g.r.Intn(6) {
		case 0:
			steps = append(steps, "*")
		case 1:
			steps = append(steps, "descendant::"+g.name())
		default:
			steps = append(steps, g.name())
		}
	}
	if allowAttr && g.r.Intn(4) == 0 {
		steps = append(steps, "@id")
	} else if allowText && g.r.Intn(4) == 0 {
		steps = append(steps, "text()")
	}
	return strings.Join(steps, "/")
}

// base picks an in-scope variable or the root. Under SingleRootLoop,
// bound variables win whenever one is in scope (the root is only used
// for the first loop binding and for loop-free expressions).
func (g *gen) base() string {
	if len(g.vars) > 0 && (g.opts.SingleRootLoop || g.r.Intn(3) > 0) {
		return "$" + g.vars[g.r.Intn(len(g.vars))]
	}
	return ""
}

func (g *gen) pathRef(allowAttr, allowText bool) string {
	b := g.base()
	if b == "" {
		return "/root/" + g.path(allowAttr, allowText)
	}
	return b + "/" + g.path(allowAttr, allowText)
}

func (g *gen) exprSeq(depth int) string {
	n := 1 + g.r.Intn(2)
	parts := make([]string, n)
	for i := range parts {
		parts[i] = g.expr(depth)
	}
	if n == 1 {
		return parts[0]
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func (g *gen) expr(depth int) string {
	roll := g.r.Intn(12)
	switch {
	case roll < 4 && depth < 3 && g.loops < g.opts.MaxLoops:
		g.loops++
		v := g.fresh()
		bind := g.pathRef(false, false)
		where := ""
		if g.opts.Where && g.r.Intn(4) == 0 {
			where = " where " + g.cond(1)
		}
		g.vars = append(g.vars, v)
		body := g.expr(depth + 1)
		g.vars = g.vars[:len(g.vars)-1]
		return fmt.Sprintf("for $%s in %s%s return %s", v, bind, where, body)
	case roll < 6 && depth < 4:
		return fmt.Sprintf("if (%s) then %s else %s", g.cond(0), g.expr(depth+1), g.expr(depth+1))
	case roll < 7 && len(g.vars) > 0:
		return "$" + g.vars[g.r.Intn(len(g.vars))]
	case roll < 8 && g.opts.Aggregates:
		fns := []string{"count", "sum", "min", "max", "avg"}
		return fmt.Sprintf("%s(%s)", fns[g.r.Intn(len(fns))], g.pathRef(true, true))
	case roll < 11:
		attr := ""
		if g.opts.AttrTemplates && g.r.Intn(3) == 0 {
			attr = fmt.Sprintf(` v="{%s}"`, g.pathRef(true, true))
		}
		return "<w" + attr + ">{ " + g.pathRef(true, true) + " }</w>"
	default:
		return fmt.Sprintf("%q", fmt.Sprintf("s%d", g.r.Intn(5)))
	}
}

func (g *gen) cond(depth int) string {
	roll := g.r.Intn(8)
	switch {
	case roll < 2:
		return "exists " + g.pathRef(true, false)
	case roll < 3 && depth < 2:
		return fmt.Sprintf("not(%s)", g.cond(depth+1))
	case roll < 4 && depth < 2:
		return fmt.Sprintf("(%s and %s)", g.cond(depth+1), g.cond(depth+1))
	case roll < 5 && depth < 2:
		return fmt.Sprintf("(%s or %s)", g.cond(depth+1), g.cond(depth+1))
	case roll < 7:
		return fmt.Sprintf("%s = %q", g.pathRef(true, true), fmt.Sprintf("%d", g.r.Intn(5)))
	default:
		return fmt.Sprintf("%s = %s", g.pathRef(true, false), g.pathRef(true, false))
	}
}
