package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the media type of the Prometheus text exposition
// format WritePrometheus emits.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format, families in registration order and labeled
// series in sorted label order (deterministic output — the golden test
// relies on it). The whole rendering runs under the registry's
// exclusive lock, so it is a consistent point-in-time view, like
// Snapshot.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	for _, f := range r.families {
		f.write(bw)
	}
	r.mu.Unlock()
	return bw.Flush()
}

func (f *family) write(w *bufio.Writer) {
	if f.help != "" {
		w.WriteString("# HELP ")
		w.WriteString(f.name)
		w.WriteByte(' ')
		w.WriteString(escapeHelp(f.help))
		w.WriteByte('\n')
	}
	w.WriteString("# TYPE ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(f.typ)
	w.WriteByte('\n')

	if f.fn != nil {
		writeSample(w, f.name, "", f.labels, nil, "", float64(f.fn()))
		return
	}
	children := f.order
	if len(f.labels) > 0 {
		children = append([]*child(nil), f.order...)
		sort.Slice(children, func(i, j int) bool {
			return labelKey(children[i].labelValues) < labelKey(children[j].labelValues)
		})
	}
	for _, c := range children {
		switch {
		case c.counter != nil:
			writeSample(w, f.name, "", f.labels, c.labelValues, "", float64(c.counter.v.Load()))
		case c.gauge != nil:
			writeSample(w, f.name, "", f.labels, c.labelValues, "", float64(c.gauge.v.Load()))
		case c.hist != nil:
			h := c.hist
			cum := int64(0)
			for i, bound := range h.buckets {
				cum += h.counts[i].Load()
				writeSample(w, f.name, "_bucket", f.labels, c.labelValues, formatFloat(bound), float64(cum))
			}
			cum += h.counts[len(h.buckets)].Load()
			writeSample(w, f.name, "_bucket", f.labels, c.labelValues, "+Inf", float64(cum))
			writeSample(w, f.name, "_sum", f.labels, c.labelValues, "", h.Sum())
			writeSample(w, f.name, "_count", f.labels, c.labelValues, "", float64(cum))
		}
	}
}

// writeSample emits one series line:
// name_suffix{label="value",...,le="bound"} value
func writeSample(w *bufio.Writer, name, suffix string, labels, values []string, le string, v float64) {
	w.WriteString(name)
	w.WriteString(suffix)
	if len(values) > 0 || le != "" {
		w.WriteByte('{')
		first := true
		for i, lv := range values {
			if !first {
				w.WriteByte(',')
			}
			first = false
			w.WriteString(labels[i])
			w.WriteString(`="`)
			w.WriteString(escapeLabel(lv))
			w.WriteByte('"')
		}
		if le != "" {
			if !first {
				w.WriteByte(',')
			}
			w.WriteString(`le="`)
			w.WriteString(le)
			w.WriteByte('"')
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(formatFloat(v))
	w.WriteByte('\n')
}

// formatFloat renders sample values and bucket bounds: integers without
// a fraction (counter values read naturally), everything else in Go's
// shortest form, which the Prometheus parser accepts.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, c := range []byte(s) {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP line: backslash and newline (quotes are
// legal there).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, c := range []byte(s) {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}
