package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestExposition is the format golden test: a registry with every
// metric kind renders exactly the expected Prometheus text exposition,
// families in registration order and labeled series sorted.
func TestExposition(t *testing.T) {
	r := New()
	c := r.Counter("gcx_requests_total", "Total requests.").Key("requests")
	c.Add(41)
	c.Inc()
	g := r.Gauge("gcx_inflight_requests", "In-flight requests.")
	g.Set(3)
	g.Add(-1)
	r.GaugeFunc("gcx_cache_entries", "Cached queries.", func() int64 { return 7 })
	h := r.Histogram("gcx_response_size_bytes", "Response sizes.", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(50)
	h.Observe(1000)
	v := r.CounterVec("gcx_outcomes_total", "Outcomes.", "engine", "outcome")
	v.With("gcx", "ok").Add(9)
	v.With("dom", "error").Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP gcx_requests_total Total requests.
# TYPE gcx_requests_total counter
gcx_requests_total 42
# HELP gcx_inflight_requests In-flight requests.
# TYPE gcx_inflight_requests gauge
gcx_inflight_requests 2
# HELP gcx_cache_entries Cached queries.
# TYPE gcx_cache_entries gauge
gcx_cache_entries 7
# HELP gcx_response_size_bytes Response sizes.
# TYPE gcx_response_size_bytes histogram
gcx_response_size_bytes_bucket{le="10"} 1
gcx_response_size_bytes_bucket{le="100"} 3
gcx_response_size_bytes_bucket{le="+Inf"} 4
gcx_response_size_bytes_sum 1105
gcx_response_size_bytes_count 4
# HELP gcx_outcomes_total Outcomes.
# TYPE gcx_outcomes_total counter
gcx_outcomes_total{engine="dom",outcome="error"} 1
gcx_outcomes_total{engine="gcx",outcome="ok"} 9
`
	if got := b.String(); got != want {
		t.Errorf("exposition drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestHistogramBucketBoundaries: le is inclusive — an observation equal
// to a bound lands in that bound's bucket, one infinitesimally above in
// the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := New()
	h := r.Histogram("gcx_test_seconds", "", []float64{1, 2, 4})
	for _, v := range []float64{1, 2, 2.0001, 4, 5} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`gcx_test_seconds_bucket{le="1"} 1`,
		`gcx_test_seconds_bucket{le="2"} 2`,
		`gcx_test_seconds_bucket{le="4"} 4`,
		`gcx_test_seconds_bucket{le="+Inf"} 5`,
		`gcx_test_seconds_count 5`,
	} {
		if !strings.Contains(b.String(), line+"\n") {
			t.Errorf("missing %q in:\n%s", line, b.String())
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if got := h.Sum(); got != 1+2+2.0001+4+5 {
		t.Errorf("Sum = %g", got)
	}
}

// TestLatencyBucketsSorted guards the fixed bucket tables.
func TestLatencyBucketsSorted(t *testing.T) {
	for _, buckets := range [][]float64{LatencyBuckets, SizeBuckets} {
		for i := 1; i < len(buckets); i++ {
			if buckets[i] <= buckets[i-1] {
				t.Fatalf("buckets not ascending at %d: %v", i, buckets)
			}
		}
	}
}

// TestLabelEscaping: backslash, quote and newline in label values are
// escaped per the exposition format.
func TestLabelEscaping(t *testing.T) {
	r := New()
	v := r.CounterVec("gcx_errors_total", "", "message")
	v.With("a\\b \"quoted\"\nnext").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `gcx_errors_total{message="a\\b \"quoted\"\nnext"} 1`
	if !strings.Contains(b.String(), want+"\n") {
		t.Errorf("escaping drifted:\n got %s\nwant %s", b.String(), want)
	}
}

// TestSnapshot: only keyed metrics appear, with their current values,
// including callback-backed ones.
func TestSnapshot(t *testing.T) {
	r := New()
	r.Counter("gcx_a_total", "").Key("a").Add(5)
	r.Gauge("gcx_b", "").Key("b").Set(-2)
	r.CounterFunc("gcx_c_total", "", func() int64 { return 11 }).Key("c")
	r.Counter("gcx_unkeyed_total", "").Inc()
	got := r.Snapshot()
	if len(got) != 3 || got["a"] != 5 || got["b"] != -2 || got["c"] != 11 {
		t.Errorf("snapshot = %v", got)
	}
}

// TestGaugeMax is the watermark idiom: only larger values stick.
func TestGaugeMax(t *testing.T) {
	r := New()
	g := r.Gauge("gcx_peak", "")
	g.Max(10)
	g.Max(4)
	g.Max(12)
	if g.Value() != 12 {
		t.Errorf("Max watermark = %d, want 12", g.Value())
	}
}

// TestRegistryConcurrent hammers every update path against snapshots
// and expositions; run under -race this is the registry's concurrency
// proof. The final totals also check that no update was lost.
func TestRegistryConcurrent(t *testing.T) {
	r := New()
	c := r.Counter("gcx_hits_total", "").Key("hits")
	g := r.Gauge("gcx_level", "").Key("level")
	h := r.HistogramVec("gcx_lat_seconds", "", LatencyBuckets, "outcome")
	const goroutines = 8
	const rounds = 500
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				c.Inc()
				g.Add(1)
				g.Max(int64(j))
				h.With([]string{"ok", "error"}[j%2]).Observe(float64(j) * 0.001)
			}
		}(i)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			r.Snapshot()
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()
	if c.Value() != goroutines*rounds {
		t.Errorf("counter = %d, want %d", c.Value(), goroutines*rounds)
	}
	total := h.With("ok").Count() + h.With("error").Count()
	if total != goroutines*rounds {
		t.Errorf("histogram count = %d, want %d", total, goroutines*rounds)
	}
}

func TestTimerPhases(t *testing.T) {
	var tm Timer
	tm.Add(PhaseStream, 5*time.Millisecond)
	tm.Add(PhaseSetup, time.Millisecond)
	tm.AddNanos(PhaseEval, 100)
	got := tm.Phases()
	if len(got) != 3 || got[0].Phase != "setup" || got[1].Phase != "stream" || got[2].Phase != "eval" {
		t.Fatalf("phases = %+v", got)
	}
	if tm.Sum() != int64(6*time.Millisecond)+100 {
		t.Errorf("Sum = %d", tm.Sum())
	}
	if got[0].Duration() != time.Millisecond {
		t.Errorf("Duration = %s", got[0].Duration())
	}
}

func TestSumPhases(t *testing.T) {
	a := []PhaseTime{{Phase: "stream", Nanos: 10}, {Phase: "eval", Nanos: 1}}
	b := []PhaseTime{{Phase: "stream", Nanos: 5}, {Phase: "merge", Nanos: 2}}
	got := SumPhases(a, b)
	want := []PhaseTime{{Phase: "stream", Nanos: 15}, {Phase: "merge", Nanos: 2}, {Phase: "eval", Nanos: 1}}
	if len(got) != len(want) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("phase %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestRegistrationPanics: malformed registrations are programmer
// errors caught at construction.
func TestRegistrationPanics(t *testing.T) {
	for name, fn := range map[string]func(r *Registry){
		"invalid name":    func(r *Registry) { r.Counter("0bad", "") },
		"duplicate":       func(r *Registry) { r.Counter("gcx_x_total", ""); r.Gauge("gcx_x_total", "") },
		"empty buckets":   func(r *Registry) { r.Histogram("gcx_h", "", nil) },
		"unsorted":        func(r *Registry) { r.Histogram("gcx_h", "", []float64{2, 1}) },
		"label arity":     func(r *Registry) { r.CounterVec("gcx_v_total", "", "a").With("x", "y") },
		"histogram arity": func(r *Registry) { r.HistogramVec("gcx_hv", "", []float64{1}, "a").With() },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn(New())
		})
	}
}
