// Package obs is gcx's stdlib-only observability subsystem
// (DESIGN.md §11): a small metrics registry — counters, gauges and
// histograms with fixed latency/size buckets, rendered in the
// Prometheus text exposition format — plus the per-phase execution
// timer behind `gcx -trace` and gcxd's X-Gcx-Trace trailer.
//
// The registry is the single source of truth for gcxd's serving
// metrics: GET /metrics renders the Prometheus view, GET /stats the
// legacy JSON view over the same values (Snapshot), so the two cannot
// drift. There is deliberately no dependency on a Prometheus client
// library — the build environment has no module proxy, and the subset
// of the exposition format gcx needs (counter, gauge, histogram,
// escaped labels) fits in a page of code.
//
// Consistency: metric updates take the registry's reader lock and
// Snapshot/WritePrometheus the writer lock, so a snapshot observes no
// update mid-flight — related counters (requests vs bytes_out) cannot
// tear against each other the way independent field-by-field atomic
// reads can. Updates stay concurrent with each other (the reader lock
// is shared, the value mutation itself an atomic op).
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
)

// LatencyBuckets are the fixed request-duration histogram bounds in
// seconds: 100µs to 30s, roughly 2.5× per step — wide enough to span a
// cache-hit metadata query and a 200 MB sharded scan on one axis.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// SizeBuckets are the fixed response-size histogram bounds in bytes:
// 256 B to 64 MiB, ×4 per step.
var SizeBuckets = []float64{
	256, 1 << 10, 4 << 10, 16 << 10, 64 << 10,
	256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20,
}

// metricName is the grammar the repo's obsnames lint pass enforces on
// top of the Prometheus one: gcx_-prefixed snake_case. The registry
// itself only requires Prometheus validity (validName below), so tests
// and future non-gcx embedders stay free.
var validName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// Registry holds named metrics and renders them. The zero value is not
// usable; create with New. Updates, Snapshot and WritePrometheus are
// safe for concurrent use; registration methods panic on invalid or
// duplicate names and must all complete before the registry starts
// serving reads (metrics are registered once, at server construction).
type Registry struct {
	// mu is the snapshot lock: updates hold it shared, Snapshot and
	// WritePrometheus exclusively — see the package comment.
	mu       sync.RWMutex
	families []*family
	byName   map[string]*family
}

// family is one metric name: scalar metrics have a single anonymous
// child, vectors one child per label-value combination.
type family struct {
	name, help, typ string
	statsKey        string
	labels          []string
	buckets         []float64
	fn              func() int64 // CounterFunc/GaugeFunc callback
	children        map[string]*child
	order           []*child
}

// child is one time series.
type child struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{byName: map[string]*family{}}
}

func (r *Registry) register(name, help, typ string, first *child) *family {
	if !validName.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric name %q", name))
	}
	f := &family{name: name, help: help, typ: typ, children: map[string]*child{}}
	if first != nil {
		f.order = append(f.order, first)
	}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// Counter registers a monotonically increasing counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{r: r}
	c.f = r.register(name, help, "counter", &child{counter: c})
	return c
}

// CounterFunc registers a counter whose value is read from fn at
// collection time — for totals another component already tracks (e.g.
// the query cache's hit/miss counters). fn runs with the registry lock
// held and must not call back into the registry.
func (r *Registry) CounterFunc(name, help string, fn func() int64) *Func {
	f := r.register(name, help, "counter", nil)
	f.fn = fn
	return &Func{f: f}
}

// Gauge registers a value that can go up and down (or a watermark via
// Gauge.Max).
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{r: r}
	g.f = r.register(name, help, "gauge", &child{gauge: g})
	return g
}

// GaugeFunc registers a gauge read from fn at collection time, under
// the same reentrancy rule as CounterFunc.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) *Func {
	f := r.register(name, help, "gauge", nil)
	f.fn = fn
	return &Func{f: f}
}

// Histogram registers a histogram with fixed bucket upper bounds (must
// be sorted ascending; the +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	checkBuckets(name, buckets)
	h := newHistogram(r, buckets)
	f := r.register(name, help, "histogram", &child{hist: h})
	f.buckets = buckets
	return h
}

// CounterVec registers a counter family with the given label names;
// series materialize on first With.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	f := r.register(name, help, "counter", nil)
	f.labels = labels
	return &CounterVec{r: r, f: f}
}

// HistogramVec registers a histogram family with the given label names.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	checkBuckets(name, buckets)
	f := r.register(name, help, "histogram", nil)
	f.buckets = buckets
	f.labels = labels
	return &HistogramVec{r: r, f: f}
}

func checkBuckets(name string, buckets []float64) {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs at least one bucket", name))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not sorted ascending", name))
		}
	}
}

// --- scalar metrics ------------------------------------------------------

// Counter is a monotonically increasing value.
type Counter struct {
	r *Registry
	f *family
	v atomic.Int64
}

// Key sets the metric's key in the legacy /stats JSON snapshot
// (metrics without a key are exposition-only) and returns the counter
// for chained registration.
func (c *Counter) Key(statsKey string) *Counter { c.f.statsKey = statsKey; return c }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increments by n (n must be ≥ 0 for Prometheus counter semantics).
func (c *Counter) Add(n int64) {
	c.r.mu.RLock()
	c.v.Add(n)
	c.r.mu.RUnlock()
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can move both ways.
type Gauge struct {
	r *Registry
	f *family
	v atomic.Int64
}

// Key sets the /stats snapshot key, as for Counter.Key.
func (g *Gauge) Key(statsKey string) *Gauge { g.f.statsKey = statsKey; return g }

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	g.r.mu.RLock()
	g.v.Store(n)
	g.r.mu.RUnlock()
}

// Add moves the value by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	g.r.mu.RLock()
	g.v.Add(n)
	g.r.mu.RUnlock()
}

// Max raises the gauge to n if n is larger — the lifetime-watermark
// idiom (peak buffered nodes/bytes).
func (g *Gauge) Max(n int64) {
	g.r.mu.RLock()
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			break
		}
	}
	g.r.mu.RUnlock()
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Func is a callback-backed metric (CounterFunc/GaugeFunc).
type Func struct{ f *family }

// Key sets the /stats snapshot key, as for Counter.Key.
func (f *Func) Key(statsKey string) *Func { f.f.statsKey = statsKey; return f }

// Histogram counts observations into fixed cumulative buckets.
type Histogram struct {
	r       *Registry
	buckets []float64
	counts  []atomic.Int64 // one per bucket, +Inf last
	sumBits atomic.Uint64
	count   atomic.Int64
}

func newHistogram(r *Registry, buckets []float64) *Histogram {
	return &Histogram{r: r, buckets: buckets, counts: make([]atomic.Int64, len(buckets)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.r.mu.RLock()
	i := sort.SearchFloat64s(h.buckets, v) // first bucket with bound ≥ v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	h.r.mu.RUnlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// --- labeled vectors -----------------------------------------------------

// CounterVec is a counter family; With resolves one series.
type CounterVec struct {
	r *Registry
	f *family
}

// With returns the series for the given label values (created on first
// use). The number of values must match the registered label names.
func (v *CounterVec) With(values ...string) *Counter {
	c := v.r.childFor(v.f, values, func(c *child) {
		c.counter = &Counter{r: v.r, f: v.f}
	})
	return c.counter
}

// HistogramVec is a histogram family; With resolves one series.
type HistogramVec struct {
	r *Registry
	f *family
}

// With returns the series for the given label values (created on first
// use).
func (v *HistogramVec) With(values ...string) *Histogram {
	c := v.r.childFor(v.f, values, func(c *child) {
		c.hist = newHistogram(v.r, v.f.buckets)
	})
	return c.hist
}

// childFor resolves (creating if needed) the child for a label-value
// combination, running mk on a newly created child while the write lock
// is still held — so concurrent With calls for a fresh series all see
// the one metric mk installed. The fast path is a read-locked map hit.
func (r *Registry) childFor(f *family, values []string, mk func(*child)) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q got %d label values, want %d", f.name, len(values), len(f.labels)))
	}
	key := labelKey(values)
	r.mu.RLock()
	c := f.children[key]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = f.children[key]; c != nil {
		return c
	}
	c = &child{labelValues: append([]string(nil), values...)}
	mk(c)
	f.children[key] = c
	f.order = append(f.order, c)
	return c
}

// labelKey joins label values with a separator that cannot appear in
// them unescaped ambiguity-free (0xFF is invalid UTF-8, so two distinct
// value tuples cannot collide on the joined form).
func labelKey(values []string) string {
	n := 0
	for _, v := range values {
		n += len(v) + 1
	}
	b := make([]byte, 0, n)
	for _, v := range values {
		b = append(b, v...)
		b = append(b, 0xFF)
	}
	return string(b)
}

// --- snapshot ------------------------------------------------------------

// Snapshot returns a point-in-time map of every metric that registered
// a /stats key (Counter.Key and friends) to its value. The whole map is
// gathered under the registry's exclusive lock, so no update is
// observed mid-flight — the /stats JSON view cannot tear across related
// counters.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.families))
	for _, f := range r.families {
		if f.statsKey == "" {
			continue
		}
		out[f.statsKey] = f.scalarValue()
	}
	return out
}

// scalarValue reads a keyed family's value (callback, counter or
// gauge). Caller holds the registry lock.
func (f *family) scalarValue() int64 {
	if f.fn != nil {
		return f.fn()
	}
	if len(f.order) == 0 {
		return 0
	}
	c := f.order[0]
	switch {
	case c.counter != nil:
		return c.counter.v.Load()
	case c.gauge != nil:
		return c.gauge.v.Load()
	}
	return 0
}
