package obs

import "time"

// Phase identifies one stage of a query execution for per-phase wall
// timing (DESIGN.md §11). Phases are disjoint wall-clock intervals of
// the sequential pipeline; PhaseEval is derived as the remainder
// (total − every stamped phase), so a sequential trace's phases sum to
// the run's wall time exactly.
type Phase uint8

const (
	// PhaseCompile is parse + static analysis (stamped by gcx.Compile,
	// reported per Query, not per run).
	PhaseCompile Phase = iota
	// PhaseSetup is format sniffing plus source/sink construction.
	PhaseSetup
	// PhaseStream is time inside the engine's ensure loop: tokenizing,
	// byte-level subtree skipping, projection and buffer maintenance.
	PhaseStream
	// PhaseJoinBuild is the join operator's build-side scan and hash
	// table materialization (DESIGN.md §10).
	PhaseJoinBuild
	// PhaseJoinProbe is the join operator's group replay.
	PhaseJoinProbe
	// PhaseSplit is the shard splitter's up-front chunk scan where it
	// runs synchronously (join-sharded runs; the streaming splitter
	// overlaps the workers and is not separable).
	PhaseSplit
	// PhaseMerge is the sharded run's ordered output merge (the
	// writes, not the waiting).
	PhaseMerge
	// PhaseEval is everything else: evaluator walking and result
	// serialization, derived as the wall-time remainder.
	PhaseEval
	numPhases
)

var phaseNames = [numPhases]string{
	"compile", "setup", "stream", "join_build", "join_probe",
	"split", "merge", "eval",
}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// PhaseTime is one timed phase of a trace, in canonical pipeline order.
type PhaseTime struct {
	// Phase is the stage name: compile, setup, stream, join_build,
	// join_probe, split, merge or eval.
	Phase string `json:"phase"`
	// Nanos is the cumulative wall time spent in the stage. Under
	// sharded execution worker phases are summed across workers, so
	// they can exceed the run's wall time (DESIGN.md §11).
	Nanos int64 `json:"nanos"`
}

// Duration returns the phase time as a time.Duration.
func (p PhaseTime) Duration() time.Duration { return time.Duration(p.Nanos) }

// Timer accumulates per-phase nanoseconds for one run. It is owned by
// a single goroutine (each engine instance runs sequentially); sharded
// runs give every worker its own timer and sum them in the merge
// goroutine. The zero value is ready to use.
type Timer struct {
	nanos [numPhases]int64
}

// Add accumulates d into phase p.
func (t *Timer) Add(p Phase, d time.Duration) { t.nanos[p] += int64(d) }

// AddNanos accumulates n nanoseconds into phase p.
func (t *Timer) AddNanos(p Phase, n int64) { t.nanos[p] += n }

// Nanos returns the accumulated time of phase p.
func (t *Timer) Nanos(p Phase) int64 { return t.nanos[p] }

// Sum returns the total accumulated nanoseconds across all phases.
func (t *Timer) Sum() int64 {
	var s int64
	for _, n := range t.nanos {
		s += n
	}
	return s
}

// Phases returns the non-zero phases in canonical order.
func (t *Timer) Phases() []PhaseTime {
	out := make([]PhaseTime, 0, numPhases)
	for p := Phase(0); p < numPhases; p++ {
		if t.nanos[p] != 0 {
			out = append(out, PhaseTime{Phase: p.String(), Nanos: t.nanos[p]})
		}
	}
	return out
}

// SumPhases merges phase lists by summing per-phase times, returning
// the result in canonical order. Unknown phase names are dropped (the
// lists come from Timer.Phases, which only emits known names).
func SumPhases(lists ...[]PhaseTime) []PhaseTime {
	var t Timer
	for _, l := range lists {
		for _, pt := range l {
			for p := Phase(0); p < numPhases; p++ {
				if phaseNames[p] == pt.Phase {
					t.nanos[p] += pt.Nanos
					break
				}
			}
		}
	}
	return t.Phases()
}
