package jsontok

import (
	"bufio"
	"bytes"
	"context"
	"io"
)

// DefaultChunkTarget is the default chunk size target in bytes,
// matching the XML splitter's: chunks seal at the first record (line)
// boundary at or past the target.
const DefaultChunkTarget = 64 << 10

// Chunk is one self-contained slice of an NDJSON stream: whole lines,
// each a complete record.
type Chunk struct {
	// Seq is the chunk's position in input order (0-based); the merge
	// serializer emits chunk outputs in Seq order.
	Seq int
	// Records is the number of non-blank lines in the chunk.
	Records int
	// Data is the chunk's bytes: the records' lines verbatim, each
	// newline-terminated.
	Data []byte
}

// Splitter cuts an NDJSON byte stream into record-aligned chunks for
// sharded execution (DESIGN.md §6/§8). Unlike the XML splitter, which
// raw-scans element nesting to find record boundaries and re-wraps
// chunks with synthesized ancestor tags, NDJSON's record boundary is a
// newline: the splitter just packs whole lines until the byte target —
// no nesting scan, no re-wrapping, no content outside records. Each
// chunk tokenizes into the same virtual root/record structure as the
// full stream, so the worker engines' projection paths match unchanged.
//
// Lines are not parsed here; a malformed record surfaces as a syntax
// error in the worker that tokenizes its chunk, exactly as the
// sequential run would report it. Blank lines are dropped.
type Splitter struct {
	r      *bufio.Reader
	ctx    context.Context
	target int
	seq    int
	done   bool
}

// NewSplitter returns a Splitter reading NDJSON records from r.
func NewSplitter(r io.Reader) *Splitter {
	return &Splitter{r: bufio.NewReaderSize(r, 64<<10), target: DefaultChunkTarget}
}

// SetContext attaches a cancellation context, checked between lines.
func (sp *Splitter) SetContext(ctx context.Context) { sp.ctx = ctx }

// SetTargetBytes overrides the chunk size target (0 keeps the default).
func (sp *Splitter) SetTargetBytes(n int) {
	if n > 0 {
		sp.target = n
	}
}

// Next returns the next chunk, or io.EOF after the last one. The
// returned Data is freshly allocated and owned by the caller — the
// splitter keeps no reference, so chunks can be processed concurrently.
func (sp *Splitter) Next() (Chunk, error) {
	if sp.done {
		return Chunk{}, io.EOF
	}
	var buf []byte
	records := 0
	for len(buf) < sp.target {
		if sp.ctx != nil {
			if err := sp.ctx.Err(); err != nil {
				return Chunk{}, err
			}
		}
		line, err := sp.readLine()
		if err != nil && err != io.EOF {
			return Chunk{}, err
		}
		if len(bytes.TrimSpace(line)) > 0 {
			buf = append(buf, line...)
			if n := len(buf); n == 0 || buf[n-1] != '\n' {
				buf = append(buf, '\n')
			}
			records++
		}
		if err == io.EOF {
			sp.done = true
			break
		}
	}
	if records == 0 {
		return Chunk{}, io.EOF
	}
	c := Chunk{Seq: sp.seq, Records: records, Data: buf}
	sp.seq++
	return c, nil
}

// readLine reads one full line including its trailing newline,
// growing past the bufio window for oversized records. It returns
// io.EOF together with the final unterminated line, if any.
func (sp *Splitter) readLine() ([]byte, error) {
	var long []byte
	for {
		part, err := sp.r.ReadSlice('\n')
		if err == bufio.ErrBufferFull {
			long = append(long, part...)
			continue
		}
		if long == nil {
			return part, err
		}
		return append(long, part...), err
	}
}
