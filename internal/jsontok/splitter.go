package jsontok

import (
	"bytes"
	"context"
	"io"

	"gcx/internal/cursor"
)

// DefaultChunkTarget is the default chunk size target in bytes,
// matching the XML splitter's: chunks seal at the first record (line)
// boundary at or past the target.
const DefaultChunkTarget = 64 << 10

// Chunk is one self-contained slice of an NDJSON stream: whole lines,
// each a complete record.
type Chunk struct {
	// Seq is the chunk's position in input order (0-based); the merge
	// serializer emits chunk outputs in Seq order.
	Seq int
	// Records is the number of non-blank lines in the chunk.
	Records int
	// Data is the chunk's bytes: the records' lines verbatim. On the
	// reader path each line is newline-terminated and blank lines are
	// dropped; on the []byte path Data is a zero-copy subslice of the
	// input, so interior blank lines stay (the tokenizer treats them as
	// insignificant whitespace) and the final record may lack a trailing
	// newline.
	Data []byte
}

// Splitter cuts an NDJSON byte stream into record-aligned chunks for
// sharded execution (DESIGN.md §6/§8). Unlike the XML splitter, which
// raw-scans element nesting to find record boundaries and re-wraps
// chunks with synthesized ancestor tags, NDJSON's record boundary is a
// newline: the splitter just packs whole lines until the byte target —
// no nesting scan, no re-wrapping, no content outside records. Each
// chunk tokenizes into the same virtual root/record structure as the
// full stream, so the worker engines' projection paths match unchanged.
//
// Lines are not parsed here; a malformed record surfaces as a syntax
// error in the worker that tokenizes its chunk, exactly as the
// sequential run would report it.
type Splitter struct {
	cur    *cursor.Cursor
	ctx    context.Context
	target int
	seq    int
	done   bool
	long   []byte // scratch for reader-path lines spanning windows
}

// NewSplitter returns a Splitter reading NDJSON records from r.
func NewSplitter(r io.Reader) *Splitter {
	return &Splitter{cur: cursor.NewReader(r, cursor.DefaultSize), target: DefaultChunkTarget}
}

// NewSplitterBytes returns a Splitter scanning data in place. Chunk
// Data values are subslices of data — no copying — so the caller must
// not mutate data while chunks are being processed.
func NewSplitterBytes(data []byte) *Splitter {
	return &Splitter{cur: cursor.NewBytes(data), target: DefaultChunkTarget}
}

// SetContext attaches a cancellation context, checked between lines.
func (sp *Splitter) SetContext(ctx context.Context) { sp.ctx = ctx }

// SetTargetBytes overrides the chunk size target (0 keeps the default).
func (sp *Splitter) SetTargetBytes(n int) {
	if n > 0 {
		sp.target = n
	}
}

// Next returns the next chunk, or io.EOF after the last one. On the
// reader path Data is freshly allocated and owned by the caller; on the
// []byte path it is a zero-copy subslice of the input. Either way the
// splitter keeps no mutable reference, so chunks can be processed
// concurrently.
func (sp *Splitter) Next() (Chunk, error) {
	if sp.cur.Fixed() {
		return sp.nextBytes()
	}
	if sp.done {
		return Chunk{}, io.EOF
	}
	var buf []byte
	records := 0
	for len(buf) < sp.target {
		if sp.ctx != nil {
			if err := sp.ctx.Err(); err != nil {
				return Chunk{}, err
			}
		}
		line, err := sp.readLine()
		if err != nil && err != io.EOF {
			return Chunk{}, err
		}
		if len(bytes.TrimSpace(line)) > 0 {
			buf = append(buf, line...)
			if n := len(buf); n == 0 || buf[n-1] != '\n' {
				buf = append(buf, '\n')
			}
			records++
		}
		if err == io.EOF {
			sp.done = true
			break
		}
	}
	if records == 0 {
		return Chunk{}, io.EOF
	}
	c := Chunk{Seq: sp.seq, Records: records, Data: buf}
	sp.seq++
	return c, nil
}

// nextBytes is the []byte fast path: chunk boundaries are found with
// vectorized newline scans and Data aliases the input — the splitter
// allocates nothing per chunk.
func (sp *Splitter) nextBytes() (Chunk, error) {
	for {
		if sp.done {
			return Chunk{}, io.EOF
		}
		if sp.ctx != nil {
			if err := sp.ctx.Err(); err != nil {
				return Chunk{}, err
			}
		}
		w := sp.cur.Window()
		if len(w) == 0 {
			sp.done = true
			return Chunk{}, io.EOF
		}
		pos := 0
		records := 0
		for pos < len(w) && pos < sp.target {
			nl := bytes.IndexByte(w[pos:], '\n')
			var line []byte
			if nl < 0 {
				line = w[pos:]
				pos = len(w)
			} else {
				line = w[pos : pos+nl]
				pos += nl + 1
			}
			if len(bytes.TrimSpace(line)) > 0 {
				records++
			}
		}
		sp.cur.Advance(pos)
		if pos == len(w) {
			sp.done = true
		}
		if records == 0 {
			// An all-blank span: nothing to hand out, keep scanning.
			continue
		}
		c := Chunk{Seq: sp.seq, Records: records, Data: w[:pos]}
		sp.seq++
		return c, nil
	}
}

// readLine reads one full line including its trailing newline, growing
// into the sp.long scratch for lines spanning window boundaries. It
// returns io.EOF together with the final unterminated line, if any.
// The returned slice is valid only until the next readLine call.
func (sp *Splitter) readLine() ([]byte, error) {
	sp.long = sp.long[:0]
	for {
		if err := sp.cur.Fill(); err != nil {
			return sp.long, err
		}
		w := sp.cur.Window()
		nl := bytes.IndexByte(w, '\n')
		if nl >= 0 {
			if len(sp.long) == 0 {
				line := w[:nl+1]
				sp.cur.Advance(nl + 1)
				return line, nil
			}
			sp.long = append(sp.long, w[:nl+1]...)
			sp.cur.Advance(nl + 1)
			return sp.long, nil
		}
		sp.long = append(sp.long, w...)
		sp.cur.Advance(len(w))
	}
}
