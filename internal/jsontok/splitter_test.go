package jsontok

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func collectChunks(t *testing.T, input string, target int) []Chunk {
	t.Helper()
	sp := NewSplitter(strings.NewReader(input))
	if target > 0 {
		sp.SetTargetBytes(target)
	}
	var chunks []Chunk
	for {
		c, err := sp.Next()
		if err == io.EOF {
			return chunks
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		chunks = append(chunks, c)
	}
}

// TestSplitterReassembly: chunk bytes concatenate back to the input's
// records, each line intact.
func TestSplitterReassembly(t *testing.T) {
	var in strings.Builder
	for i := 0; i < 100; i++ {
		in.WriteString(`{"i":` + strings.Repeat("9", i%7+1) + `}` + "\n")
	}
	chunks := collectChunks(t, in.String(), 64)
	if len(chunks) < 2 {
		t.Fatalf("want multiple chunks at a 64-byte target, got %d", len(chunks))
	}
	var re bytes.Buffer
	records := 0
	for i, c := range chunks {
		if c.Seq != i {
			t.Fatalf("chunk %d has Seq %d", i, c.Seq)
		}
		if c.Records <= 0 {
			t.Fatalf("chunk %d has %d records", i, c.Records)
		}
		records += c.Records
		re.Write(c.Data)
	}
	if re.String() != in.String() {
		t.Fatalf("reassembled bytes differ from input")
	}
	if records != 100 {
		t.Fatalf("records = %d, want 100", records)
	}
}

// TestSplitterBlankLinesAndFinalNewline: blank lines vanish, a missing
// trailing newline is repaired.
func TestSplitterBlankLinesAndFinalNewline(t *testing.T) {
	const in = "{\"a\":1}\n\n  \n{\"b\":2}"
	chunks := collectChunks(t, in, 0)
	if len(chunks) != 1 {
		t.Fatalf("got %d chunks, want 1", len(chunks))
	}
	want := "{\"a\":1}\n{\"b\":2}\n"
	if string(chunks[0].Data) != want {
		t.Fatalf("got %q, want %q", chunks[0].Data, want)
	}
	if chunks[0].Records != 2 {
		t.Fatalf("Records = %d, want 2", chunks[0].Records)
	}
}

// TestSplitterOversizedLine: a record longer than the bufio window and
// the chunk target still arrives whole.
func TestSplitterOversizedLine(t *testing.T) {
	big := `{"v":"` + strings.Repeat("x", 256<<10) + `"}`
	in := "{\"a\":1}\n" + big + "\n{\"b\":2}\n"
	chunks := collectChunks(t, in, 1024)
	var re bytes.Buffer
	for _, c := range chunks {
		re.Write(c.Data)
	}
	if re.String() != in {
		t.Fatal("oversized line mangled by splitter")
	}
	for _, c := range chunks {
		for _, line := range bytes.SplitAfter(c.Data, []byte("\n")) {
			if len(line) > 0 && line[len(line)-1] != '\n' {
				t.Fatal("chunk contains a partial line")
			}
		}
	}
}

func TestSplitterEmptyInput(t *testing.T) {
	for _, in := range []string{"", "\n\n", "   \n"} {
		if chunks := collectChunks(t, in, 0); len(chunks) != 0 {
			t.Fatalf("%q: got %d chunks, want 0", in, len(chunks))
		}
	}
}
