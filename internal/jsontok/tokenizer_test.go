package jsontok

import (
	"fmt"
	"io"
	"strings"
	"testing"
	"testing/iotest"

	"gcx/internal/event"
)

// drain tokenizes all of input and renders the event stream compactly:
// <name> for StartElement, </name> for EndElement, "text" for Text.
func drain(t *testing.T, input string) string {
	t.Helper()
	tz := NewTokenizer(strings.NewReader(input))
	defer tz.Release()
	var b strings.Builder
	for {
		tok, err := tz.Next()
		if err == io.EOF {
			return b.String()
		}
		if err != nil {
			t.Fatalf("Next: %v\npartial: %s", err, b.String())
		}
		switch tok.Kind {
		case event.StartElement:
			b.WriteString("<" + tok.Name + ">")
		case event.EndElement:
			b.WriteString("</" + tok.Name + ">")
		case event.Text:
			b.WriteString("%" + tok.Text + "%")
		}
	}
}

func TestMapping(t *testing.T) {
	cases := []struct{ in, want string }{
		// Scalars at the top level become records with text content.
		{`1`, `<root><record>%1%</record></root>`},
		{`"hi"`, `<root><record>%hi%</record></root>`},
		{`true`, `<root><record>%true%</record></root>`},
		{`false`, `<root><record>%false%</record></root>`},
		// null and the empty string map to an empty element.
		{`null`, `<root><record></record></root>`},
		{`""`, `<root><record></record></root>`},
		// Object members become child elements in document order.
		{`{"a":1,"b":"x"}`, `<root><record><a>%1%</a><b>%x%</b></record></root>`},
		// Arrays are repeated siblings under the inherited name.
		{`{"a":[1,2,3]}`, `<root><record><a>%1%</a><a>%2%</a><a>%3%</a></record></root>`},
		// Nested arrays flatten.
		{`{"a":[[1,2],[3]]}`, `<root><record><a>%1%</a><a>%2%</a><a>%3%</a></record></root>`},
		// Empty containers.
		{`{}`, `<root><record></record></root>`},
		{`{"a":[]}`, `<root><record></record></root>`},
		{`[]`, `<root></root>`},
		// A top-level array repeats the record element itself.
		{`[1,2]`, `<root><record>%1%</record><record>%2%</record></root>`},
		// NDJSON: one record per line.
		{"{\"a\":1}\n{\"a\":2}\n", `<root><record><a>%1%</a></record><record><a>%2%</a></record></root>`},
		// Concatenated / pretty-printed values also stream.
		{" {\n  \"a\" : 1\n } {\"b\":2}", `<root><record><a>%1%</a></record><record><b>%2%</b></record></root>`},
		// Nested objects.
		{`{"a":{"b":{"c":0}}}`, `<root><record><a><b><c>%0%</c></b></a></record></root>`},
		// Numbers keep their literal formatting.
		{`{"n":-1.5e+10}`, `<root><record><n>%-1.5e+10%</n></record></root>`},
		// Empty input is just the virtual root.
		{``, `<root></root>`},
		{"  \n ", `<root></root>`},
	}
	for _, c := range cases {
		if got := drain(t, c.in); got != c.want {
			t.Errorf("%q:\n got %s\nwant %s", c.in, got, c.want)
		}
	}
}

func TestStringEscapes(t *testing.T) {
	cases := []struct{ in, want string }{
		{`"a\"b"`, `a"b`},
		{`"a\\b"`, `a\b`},
		{`"a\/b"`, `a/b`},
		{`"\b\f\n\r\t"`, "\b\f\n\r\t"},
		{`"\u0041"`, "A"},
		{`"\u00e9"`, "é"},
		{`"\ud83d\ude00"`, "😀"}, // surrogate pair
		{`"\ud800"`, "\uFFFD"},  // lone high surrogate
		{`"\ud800x"`, "\uFFFDx"},
	}
	for _, c := range cases {
		got := drain(t, c.in)
		want := fmt.Sprintf("<root><record>%%%s%%</record></root>", c.want)
		if got != want {
			t.Errorf("%s:\n got %s\nwant %s", c.in, got, want)
		}
	}
}

func TestSyntaxErrors(t *testing.T) {
	bad := []string{
		`{`, `{"a"`, `{"a":`, `{"a":1`, `{"a":1,`, `{,}`, `{"a" 1}`,
		`[1`, `[1,`, `]`, `}`, `,`, `:`,
		`tru`, `nul`, `falze`, `-`, `"unterminated`,
		`"bad \q escape"`, "\"raw \x01 control\"", `{"a":1}}`,
		`"\ud83d\uq000"`,
	}
	for _, in := range bad {
		tz := NewTokenizer(strings.NewReader(in))
		var err error
		for err == nil {
			_, err = tz.Next()
		}
		tz.Release()
		if err == io.EOF {
			t.Errorf("%q: tokenized cleanly, want syntax error", in)
		} else if _, ok := err.(*SyntaxError); !ok {
			t.Errorf("%q: got %T (%v), want *SyntaxError", in, err, err)
		}
	}
}

func TestReadErrorPropagates(t *testing.T) {
	broken := io.MultiReader(
		strings.NewReader(`{"a":`),
		iotest.ErrReader(fmt.Errorf("disk gone")),
	)
	tz := NewTokenizer(broken)
	defer tz.Release()
	var err error
	for err == nil {
		_, err = tz.Next()
	}
	if err == nil || !strings.Contains(err.Error(), "disk gone") {
		t.Fatalf("want propagated read error, got %v", err)
	}
}

func TestOneByteReads(t *testing.T) {
	const in = `{"a":[1,"x\u0041"],"b":{"c":null}} {"d":true}`
	want := drain(t, in)
	tz := NewTokenizer(iotest.OneByteReader(strings.NewReader(in)))
	defer tz.Release()
	var b strings.Builder
	for {
		tok, err := tz.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next under one-byte reads: %v", err)
		}
		switch tok.Kind {
		case event.StartElement:
			b.WriteString("<" + tok.Name + ">")
		case event.EndElement:
			b.WriteString("</" + tok.Name + ">")
		case event.Text:
			b.WriteString("%" + tok.Text + "%")
		}
	}
	if b.String() != want {
		t.Fatalf("one-byte reads diverge:\n got %s\nwant %s", b.String(), want)
	}
}

// TestSkipSubtree: skipping an object value raw-scans to its close
// brace and the stream resumes at the following sibling.
func TestSkipSubtree(t *testing.T) {
	const in = `{"skipme":{"deep":[1,2,{"x":"a }] string"}],"more":0},"keep":7}`
	tz := NewTokenizer(strings.NewReader(in))
	defer tz.Release()
	var b strings.Builder
	for {
		tok, err := tz.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if tok.Kind == event.StartElement && tok.Name == "skipme" {
			if err := tz.SkipSubtree(); err != nil {
				t.Fatalf("SkipSubtree: %v", err)
			}
			continue
		}
		switch tok.Kind {
		case event.StartElement:
			b.WriteString("<" + tok.Name + ">")
		case event.EndElement:
			b.WriteString("</" + tok.Name + ">")
		case event.Text:
			b.WriteString("%" + tok.Text + "%")
		}
	}
	want := `<root><record><keep>%7%</keep></record></root>`
	if b.String() != want {
		t.Fatalf("after skip:\n got %s\nwant %s", b.String(), want)
	}
	if tz.SubtreesSkipped() != 1 {
		t.Fatalf("SubtreesSkipped = %d, want 1", tz.SubtreesSkipped())
	}
	if tz.BytesSkipped() == 0 {
		t.Fatal("BytesSkipped = 0 after a container skip")
	}
	// Members inside the skipped region: deep, x, more.
	if tz.TagsSkipped() != 3 {
		t.Fatalf("TagsSkipped = %d, want 3", tz.TagsSkipped())
	}
}

// TestSkipScalar: skipping a scalar's element raw-scans its bytes —
// the value is never decoded and the skipped bytes are counted.
func TestSkipScalar(t *testing.T) {
	const in = `{"a":1,"b":2}`
	tz := NewTokenizer(strings.NewReader(in))
	defer tz.Release()
	var b strings.Builder
	for {
		tok, err := tz.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if tok.Kind == event.StartElement && tok.Name == "a" {
			if err := tz.SkipSubtree(); err != nil {
				t.Fatalf("SkipSubtree: %v", err)
			}
			continue
		}
		switch tok.Kind {
		case event.StartElement:
			b.WriteString("<" + tok.Name + ">")
		case event.EndElement:
			b.WriteString("</" + tok.Name + ">")
		case event.Text:
			b.WriteString("%" + tok.Text + "%")
		}
	}
	want := `<root><record><b>%2%</b></record></root>`
	if b.String() != want {
		t.Fatalf("after scalar skip:\n got %s\nwant %s", b.String(), want)
	}
	if tz.BytesSkipped() != 1 {
		t.Fatalf("BytesSkipped = %d, want 1 (the digit of a's value)", tz.BytesSkipped())
	}
}

// TestSkipScalarString: a skipped string scalar is raw-scanned past its
// escapes and closing quote; every byte of the value is counted and the
// stream resumes at the following member.
func TestSkipScalarString(t *testing.T) {
	const val = `"br } ace \" and \\ in string"`
	const in = `{"a":` + val + `,"b":true}`
	tz := NewTokenizer(strings.NewReader(in))
	defer tz.Release()
	var b strings.Builder
	for {
		tok, err := tz.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if tok.Kind == event.StartElement && tok.Name == "a" {
			if err := tz.SkipSubtree(); err != nil {
				t.Fatalf("SkipSubtree: %v", err)
			}
			continue
		}
		switch tok.Kind {
		case event.StartElement:
			b.WriteString("<" + tok.Name + ">")
		case event.EndElement:
			b.WriteString("</" + tok.Name + ">")
		case event.Text:
			b.WriteString("%" + tok.Text + "%")
		}
	}
	want := `<root><record><b>%true%</b></record></root>`
	if b.String() != want {
		t.Fatalf("after string-scalar skip:\n got %s\nwant %s", b.String(), want)
	}
	if tz.BytesSkipped() != int64(len(val)) {
		t.Fatalf("BytesSkipped = %d, want %d (the whole string value)", tz.BytesSkipped(), len(val))
	}
}

// TestSkipRoot: skipping the virtual root consumes the whole stream.
func TestSkipRoot(t *testing.T) {
	tz := NewTokenizer(strings.NewReader(`{"a":1}` + "\n" + `{"b":2}`))
	defer tz.Release()
	tok, err := tz.Next()
	if err != nil || tok.Kind != event.StartElement || tok.Name != event.RootName {
		t.Fatalf("first event = %+v, %v", tok, err)
	}
	if err := tz.SkipSubtree(); err != nil {
		t.Fatalf("SkipSubtree(root): %v", err)
	}
	if _, err := tz.Next(); err != io.EOF {
		t.Fatalf("after root skip Next = %v, want io.EOF", err)
	}
}

// TestDeepNesting: deeply nested arrays and objects must not grow the
// goroutine stack (beginValue iterates instead of recursing).
func TestDeepNesting(t *testing.T) {
	const depth = 100000
	in := strings.Repeat("[", depth) + "1" + strings.Repeat("]", depth)
	got := drain(t, in)
	if got != `<root><record>%1%</record></root>` {
		t.Fatalf("deep arrays: got %s", got)
	}
	var b strings.Builder
	for i := 0; i < depth; i++ {
		b.WriteString(`{"a":`)
	}
	b.WriteString("1")
	b.WriteString(strings.Repeat("}", depth))
	tz := NewTokenizer(strings.NewReader(b.String()))
	defer tz.Release()
	n := 0
	for {
		_, err := tz.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("deep objects: %v", err)
		}
		n++
	}
	if want := 2 + 2 + 2*depth + 1; n != want {
		t.Fatalf("deep objects: %d events, want %d", n, want)
	}
}

func TestKeyInterning(t *testing.T) {
	tz := NewTokenizer(strings.NewReader(`{"key":1}` + "\n" + `{"key":2}`))
	defer tz.Release()
	var names []string
	for {
		tok, err := tz.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if tok.Kind == event.StartElement && tok.Name == "key" {
			names = append(names, tok.Name)
		}
	}
	if len(names) != 2 {
		t.Fatalf("saw %d key elements, want 2", len(names))
	}
}

func TestTokenCount(t *testing.T) {
	tz := NewTokenizer(strings.NewReader(`{"a":1}`))
	defer tz.Release()
	n := int64(0)
	for {
		_, err := tz.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if tz.TokenCount() != n {
		t.Fatalf("TokenCount = %d, delivered %d", tz.TokenCount(), n)
	}
}
