package jsontok

import (
	"bufio"
	"io"
	"sync"

	"gcx/internal/event"
)

// Serializer renders result events as JSON lines — the single output
// path of all engines when the run's format is JSON/NDJSON, so GCX, the
// projection-only engine and the DOM baseline produce byte-identical
// results for the differential tests, and sharded workers' outputs
// concatenate into exactly the sequential serialization.
//
// Encoding (DESIGN.md §8): an element named n renders as {"n":[ ... ]}
// with its children — text as JSON strings, child elements as nested
// single-key objects — comma-separated inside the array; attributes of
// constructed elements render as leading {"@name":["value"]} members.
// Every top-level item (element or bare text) is followed by a newline,
// so a query over NDJSON yields NDJSON. No serializer state crosses
// top-level items, which is what makes sharded output concatenation
// byte-identical to the sequential run.
type Serializer struct {
	w *bufio.Writer
	// open tracks the open-element nesting; each entry is true once the
	// element has at least one emitted child (comma placement).
	open     []bool
	topItems int64
	bytes    int64
	err      error
	released bool
}

// serializerPool recycles Serializers and their 64 KiB write buffers
// across executions.
var serializerPool = sync.Pool{
	New: func() any {
		return &Serializer{w: bufio.NewWriterSize(io.Discard, 64<<10)}
	},
}

// NewSerializer returns a Serializer writing to w. Serializers come
// from an internal pool; callers that finish with one may hand its
// buffer back via Release.
func NewSerializer(w io.Writer) *Serializer {
	s := serializerPool.Get().(*Serializer)
	s.w.Reset(w)
	s.open = s.open[:0]
	s.topItems = 0
	s.bytes = 0
	s.err = nil
	s.released = false
	return s
}

// Release returns the serializer's buffer to the pool, discarding any
// unflushed output. The serializer must not be used afterwards;
// counters read before Release stay valid. Release is idempotent.
func (s *Serializer) Release() {
	if s.released {
		return
	}
	s.released = true
	s.w.Reset(io.Discard)
	serializerPool.Put(s)
}

// BytesWritten reports the number of bytes emitted so far (pre-flush
// buffering included).
func (s *Serializer) BytesWritten() int64 { return s.bytes }

// Err returns the first write error encountered, if any.
func (s *Serializer) Err() error { return s.err }

// sep emits the separator a new item needs at the current position: a
// comma between siblings inside an element, nothing before the first
// child or between top-level items (those are newline-terminated
// instead, by close).
func (s *Serializer) sep() {
	if n := len(s.open); n > 0 {
		if s.open[n-1] {
			s.writeString(",")
		}
		s.open[n-1] = true
	}
}

// close terminates a just-completed top-level item with its newline.
func (s *Serializer) close() {
	if len(s.open) == 0 {
		s.topItems++
		s.writeString("\n")
	}
}

// StartElement opens an element: {"name":[ with attributes, if any, as
// leading {"@attr":["value"]} members.
func (s *Serializer) StartElement(name string, attrs []event.Attr) {
	s.sep()
	s.writeString(`{`)
	s.writeQuoted(name)
	s.writeString(`:[`)
	s.open = append(s.open, false)
	for _, a := range attrs {
		s.sep()
		s.writeString(`{`)
		s.writeQuoted("@" + a.Name)
		s.writeString(`:[`)
		s.writeQuoted(a.Value)
		s.writeString(`]}`)
	}
}

// EndElement closes the innermost open element.
func (s *Serializer) EndElement(name string) {
	s.writeString(`]}`)
	if n := len(s.open); n > 0 {
		s.open = s.open[:n-1]
	}
	s.close()
}

// Text writes character data as a JSON string.
func (s *Serializer) Text(text string) {
	s.sep()
	s.writeQuoted(text)
	s.close()
}

// Flush writes any buffered output to the underlying writer and reports
// the first error seen on any operation.
func (s *Serializer) Flush() error {
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

func (s *Serializer) writeString(str string) {
	n, err := s.w.WriteString(str)
	s.bytes += int64(n)
	if err != nil && s.err == nil {
		s.err = err
	}
}

const hexDigits = "0123456789abcdef"

// writeQuoted writes str as a JSON string literal.
func (s *Serializer) writeQuoted(str string) {
	s.writeString(`"`)
	last := 0
	for i := 0; i < len(str); i++ {
		c := str[i]
		if c >= 0x20 && c != '"' && c != '\\' {
			continue
		}
		s.writeString(str[last:i])
		switch c {
		case '"':
			s.writeString(`\"`)
		case '\\':
			s.writeString(`\\`)
		case '\n':
			s.writeString(`\n`)
		case '\r':
			s.writeString(`\r`)
		case '\t':
			s.writeString(`\t`)
		default:
			s.writeString(`\u00`)
			s.writeString(string([]byte{hexDigits[c>>4], hexDigits[c&0xf]}))
		}
		last = i + 1
	}
	s.writeString(str[last:])
	s.writeString(`"`)
}
