// Package jsontok is the JSON/NDJSON front end of the engine: a
// streaming tokenizer that presents JSON values as the format-neutral
// tree events of internal/event (Tokenizer implements event.Source), a
// serializer that renders result events back as JSON lines (Serializer
// implements event.Sink), and an NDJSON line splitter for sharded
// execution.
//
// The tree mapping (DESIGN.md §8) makes the existing XPath subset,
// projection automaton and subtree skipping apply unchanged:
//
//   - the stream is one virtual element named event.RootName ("root");
//   - every top-level JSON value — one line of NDJSON — is an element
//     named event.RecordName ("record");
//   - an object member k:v becomes an element named k containing the
//     mapping of v;
//   - an array becomes repeated siblings: each item is mapped under the
//     array's own element name (the object key it was the value of, or
//     "record" at the top level), so {"a":[1,2]} ≡ <a>1</a><a>2</a> and
//     nested arrays flatten;
//   - scalars become text content: strings unescaped, numbers and
//     true/false verbatim, null an empty element.
//
// Like the XML tokenizer, the Tokenizer works strictly one event at a
// time, interns object keys so repeated field names in large streams
// share one string allocation, and supports byte-level SkipSubtree:
// when the projection automaton proves a value irrelevant, its bytes
// are raw-scanned to the matching close brace without string decoding,
// number parsing or event construction. Scalar values are parsed
// lazily — the StartElement is delivered before the scalar's bytes are
// consumed — so skipping a scalar raw-scans its bytes too instead of
// decoding them first and discarding the result.
//
// Input flows through the shared block cursor (internal/cursor,
// DESIGN.md §12): both io.Reader and []byte inputs run the same
// window-oriented scanning code, and on the []byte path escape-free
// strings and number literals borrow subslices of the input instead of
// allocating.
package jsontok

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync"
	"unicode/utf16"
	"unicode/utf8"

	"gcx/internal/cursor"
	"gcx/internal/event"
)

// SyntaxError describes malformed JSON input with its byte offset.
type SyntaxError struct {
	Offset int64
	Msg    string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("jsontok: syntax error at byte %d: %s", e.Offset, e.Msg)
}

// frame kinds of the container stack.
const (
	frameStream uint8 = iota // the virtual root: a sequence of records
	frameObject              // inside { }: the element named frame.name is open
	frameArray               // inside [ ]: items repeat under frame.name, no element open
)

type frame struct {
	kind uint8
	name string
	// needSep is set once a member value has been consumed, so the next
	// parse position expects ',' or the closing bracket.
	needSep bool
}

// Tokenizer reads a JSON or NDJSON byte stream and produces events one
// at a time. The zero value is not usable; construct with NewTokenizer
// or NewTokenizerBytes.
type Tokenizer struct {
	cur cursor.Cursor

	stack   []frame
	pending [2]event.Token // queued trailing events of a scalar value
	npend   int
	ppend   int

	// A scalar value's StartElement has been delivered but its bytes are
	// still unread: the next Next parses them (text + end), and a
	// SkipSubtree instead raw-scans them without decoding.
	scalarPending bool
	scalarName    string

	// names interns object keys (→ element names); repeated fields in
	// large streams share one string allocation. Only owned copies are
	// stored — never borrowed input bytes — because the map outlives the
	// input across pooled reuses.
	names map[string]string

	ctx     context.Context
	ctxDone <-chan struct{}

	count    int64
	started  bool
	done     bool
	released bool

	textBuf []byte

	bytesSkipped    int64
	tagsSkipped     int64
	subtreesSkipped int64
}

// tokenizerPool recycles Tokenizers — each carries a 64 KiB cursor
// window, a key-interning map and a text scratch buffer.
var tokenizerPool = sync.Pool{
	New: func() any {
		return &Tokenizer{names: make(map[string]string, 64)}
	},
}

// maxInternedNames bounds the interning map carried across pooled
// reuses; beyond it the map is cleared on the next NewTokenizer.
const maxInternedNames = 4096

// NewTokenizer returns a Tokenizer reading from r. Tokenizers come from
// an internal pool; callers that finish with one may hand its buffers
// back via Release.
func NewTokenizer(r io.Reader) *Tokenizer {
	t := tokenizerPool.Get().(*Tokenizer)
	t.cur.ResetReader(r, cursor.DefaultSize)
	t.reset()
	return t
}

// NewTokenizerBytes returns a Tokenizer scanning data in place: windows
// are served directly from the slice, and escape-free strings / number
// literals borrow subslices of it. The caller must not mutate data
// until it is done with the tokenizer and every event it produced.
func NewTokenizerBytes(data []byte) *Tokenizer {
	t := tokenizerPool.Get().(*Tokenizer)
	t.cur.ResetBytes(data)
	t.reset()
	return t
}

func (t *Tokenizer) reset() {
	t.stack = t.stack[:0]
	t.npend = 0
	t.ppend = 0
	t.scalarPending = false
	t.scalarName = ""
	if len(t.names) > maxInternedNames {
		clear(t.names)
	}
	t.ctx = nil
	t.ctxDone = nil
	t.count = 0
	t.started = false
	t.done = false
	t.released = false
	t.textBuf = t.textBuf[:0]
	t.bytesSkipped = 0
	t.tagsSkipped = 0
	t.subtreesSkipped = 0
}

// SetContext attaches a cancellation context. Next fails with ctx.Err()
// at the first event pull after cancellation.
func (t *Tokenizer) SetContext(ctx context.Context) {
	t.ctx = ctx
	t.ctxDone = nil
	if ctx != nil {
		t.ctxDone = ctx.Done()
	}
}

// Release returns the tokenizer's buffers to the pool. The tokenizer
// must not be used afterwards; counters read before Release stay valid.
// Release is idempotent.
func (t *Tokenizer) Release() {
	if t.released {
		return
	}
	t.released = true
	t.cur.ResetBytes(nil) // drop the reader / input-slice reference
	t.ctx = nil
	t.ctxDone = nil
	tokenizerPool.Put(t)
}

// TokenCount reports how many events have been delivered so far.
func (t *Tokenizer) TokenCount() int64 { return t.count }

// BytesSkipped reports how many input bytes SkipSubtree fast-forwarded
// past without tokenization.
func (t *Tokenizer) BytesSkipped() int64 { return t.bytesSkipped }

// TagsSkipped reports a lower bound on the elements inside skipped
// values (object members counted via their key separators).
func (t *Tokenizer) TagsSkipped() int64 { return t.tagsSkipped }

// SubtreesSkipped reports how many SkipSubtree fast-forwards were taken.
func (t *Tokenizer) SubtreesSkipped() int64 { return t.subtreesSkipped }

// SkipStats bundles the skip counters as the event.Source contract
// reports them.
func (t *Tokenizer) SkipStats() event.SkipStats {
	return event.SkipStats{
		BytesSkipped:    t.bytesSkipped,
		TagsSkipped:     t.tagsSkipped,
		SubtreesSkipped: t.subtreesSkipped,
	}
}

func (t *Tokenizer) emit(tok event.Token) (event.Token, error) {
	t.count++
	return tok, nil
}

func (t *Tokenizer) queue(tok event.Token) {
	t.pending[t.npend] = tok
	t.npend++
}

// Next returns the next event of the stream, io.EOF at the end.
func (t *Tokenizer) Next() (event.Token, error) {
	if t.ctxDone != nil {
		select {
		case <-t.ctxDone:
			return event.Token{}, t.ctx.Err()
		default:
		}
	}
	if t.ppend < t.npend {
		tok := t.pending[t.ppend]
		t.ppend++
		if t.ppend == t.npend {
			t.ppend, t.npend = 0, 0
		}
		return t.emit(tok)
	}
	if t.scalarPending {
		t.scalarPending = false
		return t.parseScalar(t.scalarName)
	}
	if t.done {
		if ioErr := t.cur.IOErr(); ioErr != nil {
			return event.Token{}, ioErr
		}
		return event.Token{}, io.EOF
	}
	if !t.started {
		t.started = true
		t.stack = append(t.stack, frame{kind: frameStream, name: event.RootName})
		return t.emit(event.Token{Kind: event.StartElement, Name: event.RootName})
	}
	for {
		top := &t.stack[len(t.stack)-1]
		switch top.kind {
		case frameStream:
			_, err := t.skipSpace()
			if err == io.EOF {
				t.done = true
				t.stack = t.stack[:len(t.stack)-1]
				return t.emit(event.Token{Kind: event.EndElement, Name: event.RootName})
			}
			if err != nil {
				return event.Token{}, err
			}
			tok, ok, err := t.beginValue(event.RecordName)
			if err != nil {
				return event.Token{}, err
			}
			if !ok {
				continue
			}
			return tok, nil
		case frameObject:
			b, err := t.skipSpace()
			if err != nil {
				return event.Token{}, t.unexpectedEOF(err, "inside object")
			}
			if b == '}' {
				t.cur.Advance(1)
				name := top.name
				t.stack = t.stack[:len(t.stack)-1]
				return t.emit(event.Token{Kind: event.EndElement, Name: name})
			}
			if top.needSep {
				if b != ',' {
					return event.Token{}, t.errf("expected ',' or '}' in object, got %q", b)
				}
				t.cur.Advance(1)
				top.needSep = false
				continue
			}
			if b != '"' {
				return event.Token{}, t.errf("expected object key string, got %q", b)
			}
			key, err := t.readString(true)
			if err != nil {
				return event.Token{}, err
			}
			b, err = t.skipSpace()
			if err != nil || b != ':' {
				return event.Token{}, t.unexpectedSep(err, b, "':' after object key")
			}
			t.cur.Advance(1)
			tok, ok, err := t.beginValue(key)
			if err != nil {
				return event.Token{}, err
			}
			if !ok {
				continue
			}
			return tok, nil
		case frameArray:
			b, err := t.skipSpace()
			if err != nil {
				return event.Token{}, t.unexpectedEOF(err, "inside array")
			}
			if b == ']' {
				t.cur.Advance(1)
				t.stack = t.stack[:len(t.stack)-1]
				continue // arrays emit no event of their own
			}
			if top.needSep {
				if b != ',' {
					return event.Token{}, t.errf("expected ',' or ']' in array, got %q", b)
				}
				t.cur.Advance(1)
				top.needSep = false
				continue
			}
			tok, ok, err := t.beginValue(top.name)
			if err != nil {
				return event.Token{}, err
			}
			if !ok {
				continue
			}
			return tok, nil
		default:
			return event.Token{}, t.errf("corrupt tokenizer state")
		}
	}
}

// beginValue parses the start of one JSON value that maps to elements
// named name. The enclosing frame's separator expectation is armed
// here, before any child frame is pushed. ok=false (with nil error)
// means an array frame was pushed and the caller's loop must continue —
// arrays emit no event of their own, and iterating instead of recursing
// keeps deeply nested array input from growing the goroutine stack.
//
// Scalar values only have their leading byte classified here; the bytes
// stay in the cursor (scalarPending) so that a SkipSubtree right after
// the StartElement can raw-scan them. A malformed scalar therefore
// surfaces its syntax error on the Next after the StartElement, not
// before it.
func (t *Tokenizer) beginValue(name string) (event.Token, bool, error) {
	t.stack[len(t.stack)-1].needSep = true
	b, err := t.skipSpace()
	if err != nil {
		return event.Token{}, false, t.unexpectedEOF(err, "expecting value")
	}
	switch {
	case b == '{':
		t.cur.Advance(1)
		t.stack = append(t.stack, frame{kind: frameObject, name: name})
		tok, err := t.emit(event.Token{Kind: event.StartElement, Name: name})
		return tok, true, err
	case b == '[':
		t.cur.Advance(1)
		t.stack = append(t.stack, frame{kind: frameArray, name: name})
		return event.Token{}, false, nil
	case b == '"' || b == 't' || b == 'f' || b == 'n' || b == '-' || (b >= '0' && b <= '9'):
		t.scalarPending = true
		t.scalarName = name
		tok, err := t.emit(event.Token{Kind: event.StartElement, Name: name})
		return tok, true, err
	default:
		return event.Token{}, false, t.errf("unexpected %q at start of value", b)
	}
}

// parseScalar consumes the deferred scalar value and returns its first
// trailing event: the text (end queued) or, for empty values, the end
// itself.
func (t *Tokenizer) parseScalar(name string) (event.Token, error) {
	b, err := t.skipSpace()
	if err != nil {
		return event.Token{}, t.unexpectedEOF(err, "expecting value")
	}
	var text string
	present := true
	switch {
	case b == '"':
		s, err := t.readString(false)
		if err != nil {
			return event.Token{}, err
		}
		text, present = s, s != ""
	case b == 't':
		if err := t.literal("true"); err != nil {
			return event.Token{}, err
		}
		text = "true"
	case b == 'f':
		if err := t.literal("false"); err != nil {
			return event.Token{}, err
		}
		text = "false"
	case b == 'n':
		if err := t.literal("null"); err != nil {
			return event.Token{}, err
		}
		present = false
	default: // '-' or digit; beginValue vetted the leading byte
		s, err := t.readNumber()
		if err != nil {
			return event.Token{}, err
		}
		text = s
	}
	if present {
		t.queue(event.Token{Kind: event.EndElement, Name: name})
		return t.emit(event.Token{Kind: event.Text, Text: text})
	}
	return t.emit(event.Token{Kind: event.EndElement, Name: name})
}

// SkipSubtree fast-forwards past the value of the StartElement most
// recently returned by Next, without producing its events. Container
// and scalar values alike are raw-scanned at byte level — no string
// decoding, number parsing, key interning or event construction happens
// for the skipped region.
func (t *Tokenizer) SkipSubtree() error {
	t.subtreesSkipped++
	if t.scalarPending {
		// Scalar value: its bytes are still in the cursor; raw-scan
		// them without decoding.
		t.scalarPending = false
		t.tagsSkipped++ // the unproduced EndElement
		return t.skipScalar()
	}
	if len(t.stack) == 0 {
		return t.errf("SkipSubtree with no open element")
	}
	top := t.stack[len(t.stack)-1]
	switch top.kind {
	case frameObject:
		// The object's '{' is consumed; scan to the matching '}'.
		if err := t.rawSkip(1); err != nil {
			return err
		}
		t.stack = t.stack[:len(t.stack)-1]
		return nil
	case frameStream:
		// Skipping the virtual root: consume the remaining input.
		if err := t.rawSkipToEOF(); err != nil {
			return err
		}
		t.stack = t.stack[:0]
		t.done = true
		return nil
	default:
		return t.errf("SkipSubtree not positioned on a start element")
	}
}

// rawSkip consumes bytes until the container nesting depth returns to
// zero from the given starting depth, honoring strings and escapes. It
// scans the cursor window in place — the hot loop touches each byte
// once and allocates nothing.
func (t *Tokenizer) rawSkip(depth int) error {
	inStr := false
	escaped := false
	for {
		if err := t.cur.Fill(); err != nil {
			return t.unexpectedEOF(err, "inside skipped value")
		}
		buf := t.cur.Window()
		for i := 0; i < len(buf); i++ {
			c := buf[i]
			if inStr {
				switch {
				case escaped:
					escaped = false
				case c == '\\':
					escaped = true
				case c == '"':
					inStr = false
				}
				continue
			}
			switch c {
			case '"':
				inStr = true
			case '{', '[':
				depth++
			case '}', ']':
				depth--
				if depth == 0 {
					t.cur.Advance(i + 1)
					t.bytesSkipped += int64(i + 1)
					return nil
				}
			case ':':
				// Each object member inside the skipped region would
				// have produced one element — a lower bound mirroring
				// the XML tokenizer's tags-skipped counter.
				t.tagsSkipped++
			}
		}
		t.cur.Advance(len(buf))
		t.bytesSkipped += int64(len(buf))
	}
}

// skipScalar raw-scans one scalar value: a string is consumed to its
// closing quote honoring escapes; a number or keyword runs to the next
// structural delimiter. No decoding or validation happens — like
// rawSkip, the scan accepts a superset of what full tokenization would.
func (t *Tokenizer) skipScalar() error {
	b, err := t.skipSpace()
	if err != nil {
		return t.unexpectedEOF(err, "expecting skipped value")
	}
	if b == '"' {
		t.cur.Advance(1)
		t.bytesSkipped++
		escaped := false
		for {
			if err := t.cur.Fill(); err != nil {
				return t.unexpectedEOF(err, "inside skipped string")
			}
			w := t.cur.Window()
			for i := 0; i < len(w); i++ {
				c := w[i]
				switch {
				case escaped:
					escaped = false
				case c == '\\':
					escaped = true
				case c == '"':
					t.cur.Advance(i + 1)
					t.bytesSkipped += int64(i + 1)
					return nil
				}
			}
			t.cur.Advance(len(w))
			t.bytesSkipped += int64(len(w))
		}
	}
	// Number or keyword: everything up to a separator, bracket or space.
	for {
		err := t.cur.Fill()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		w := t.cur.Window()
		i := 0
	scan:
		for i < len(w) {
			switch w[i] {
			case ',', '}', ']', ' ', '\t', '\r', '\n':
				break scan
			}
			i++
		}
		t.cur.Advance(i)
		t.bytesSkipped += int64(i)
		if i < len(w) {
			return nil
		}
	}
}

// rawSkipToEOF consumes the remaining input at byte level.
func (t *Tokenizer) rawSkipToEOF() error {
	for {
		err := t.cur.Fill()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		buf := t.cur.Window()
		t.tagsSkipped += int64(bytes.Count(buf, sepColon))
		t.cur.Advance(len(buf))
		t.bytesSkipped += int64(len(buf))
	}
}

var sepColon = []byte{':'}

// skipSpace advances past insignificant whitespace and returns the next
// byte without consuming it.
func (t *Tokenizer) skipSpace() (byte, error) {
	for {
		if err := t.cur.Fill(); err != nil {
			return 0, err
		}
		w := t.cur.Window()
		i := 0
		for i < len(w) {
			switch w[i] {
			case ' ', '\t', '\r', '\n':
				i++
				continue
			}
			break
		}
		t.cur.Advance(i)
		if i < len(w) {
			return w[i], nil
		}
	}
}

// literal consumes an exact keyword (true/false/null).
func (t *Tokenizer) literal(lit string) error {
	for i := 0; i < len(lit); i++ {
		b, err := t.cur.Byte()
		if err != nil || b != lit[i] {
			if err == nil {
				t.cur.Unread()
			}
			return t.unexpectedSep(err, b, fmt.Sprintf("literal %q", lit))
		}
	}
	return nil
}

// readString consumes a JSON string (the opening quote not yet
// consumed) and returns its decoded value. Keys are interned. The hot
// loop scans whole windows for the next quote, backslash or control
// byte; on the []byte path an escape-free string is borrowed from the
// input (keys hit the intern map without allocating).
func (t *Tokenizer) readString(intern bool) (string, error) {
	if b, err := t.cur.Byte(); err != nil || b != '"' {
		if err == nil {
			t.cur.Unread()
		}
		return "", t.unexpectedSep(err, b, "string")
	}
	buf := t.textBuf[:0]
	first := true
	for {
		if err := t.cur.Fill(); err != nil {
			return "", t.unexpectedEOF(err, "inside string")
		}
		w := t.cur.Window()
		i := 0
		for i < len(w) && w[i] != '"' && w[i] != '\\' && w[i] >= 0x20 {
			i++
		}
		if i == len(w) {
			// Window exhausted mid-segment (reader path): copy, refill.
			buf = append(buf, w...)
			t.cur.Advance(len(w))
			first = false
			continue
		}
		c := w[i]
		if c == '"' {
			if first && t.cur.Fixed() {
				t.cur.Advance(i + 1)
				seg := w[:i]
				if intern {
					return t.internKey(seg), nil
				}
				return cursor.Borrow(seg), nil
			}
			buf = append(buf, w[:i]...)
			t.cur.Advance(i + 1)
			t.textBuf = buf
			if intern {
				return t.internKey(buf), nil
			}
			return string(buf), nil
		}
		if c < 0x20 {
			t.cur.Advance(i + 1)
			return "", t.errf("raw control character 0x%02x in string", c)
		}
		// Escape sequence.
		buf = append(buf, w[:i]...)
		t.cur.Advance(i + 1) // consume the backslash
		first = false
		e, err := t.cur.Byte()
		if err != nil {
			return "", t.unexpectedEOF(err, "inside string escape")
		}
		switch e {
		case '"', '\\', '/':
			buf = append(buf, e)
		case 'b':
			buf = append(buf, '\b')
		case 'f':
			buf = append(buf, '\f')
		case 'n':
			buf = append(buf, '\n')
		case 'r':
			buf = append(buf, '\r')
		case 't':
			buf = append(buf, '\t')
		case 'u':
			r, err := t.readHex4()
			if err != nil {
				return "", err
			}
			if utf16.IsSurrogate(rune(r)) {
				// Try to combine with a following \uXXXX low half.
				if b2, err2 := t.cur.Peek(2); err2 == nil && len(b2) == 2 && b2[0] == '\\' && b2[1] == 'u' {
					t.cur.Advance(2)
					r2, err := t.readHex4()
					if err != nil {
						return "", err
					}
					if dec := utf16.DecodeRune(rune(r), rune(r2)); dec != utf8.RuneError {
						buf = utf8.AppendRune(buf, dec)
						continue
					}
					buf = utf8.AppendRune(buf, utf8.RuneError)
					buf = utf8.AppendRune(buf, utf8.RuneError)
					continue
				}
				buf = utf8.AppendRune(buf, utf8.RuneError)
				continue
			}
			buf = utf8.AppendRune(buf, rune(r))
		default:
			return "", t.errf("invalid string escape '\\%c'", e)
		}
	}
}

// internKey returns the canonical string for an object key. Hits cost a
// map lookup with no allocation; misses store an owned copy, never
// borrowed input.
func (t *Tokenizer) internKey(b []byte) string {
	if s, ok := t.names[string(b)]; ok {
		return s
	}
	s := string(b)
	t.names[s] = s
	return s
}

// readHex4 consumes four hex digits of a \u escape.
func (t *Tokenizer) readHex4() (uint32, error) {
	var r uint32
	for i := 0; i < 4; i++ {
		b, err := t.cur.Byte()
		if err != nil {
			return 0, t.unexpectedEOF(err, "inside \\u escape")
		}
		switch {
		case b >= '0' && b <= '9':
			r = r<<4 | uint32(b-'0')
		case b >= 'a' && b <= 'f':
			r = r<<4 | uint32(b-'a'+10)
		case b >= 'A' && b <= 'F':
			r = r<<4 | uint32(b-'A'+10)
		default:
			return 0, t.errf("invalid hex digit %q in \\u escape", b)
		}
	}
	return r, nil
}

// isNumberByte reports whether b can appear in a JSON number literal.
func isNumberByte(b byte) bool {
	return (b >= '0' && b <= '9') || b == '-' || b == '+' || b == '.' || b == 'e' || b == 'E'
}

// readNumber consumes a JSON number and returns its literal text
// verbatim, preserving the input's formatting. On the []byte path the
// literal is borrowed from the input without allocating.
func (t *Tokenizer) readNumber() (string, error) {
	if t.cur.Fixed() {
		w := t.cur.Window()
		i := 0
		for i < len(w) && isNumberByte(w[i]) {
			i++
		}
		t.cur.Advance(i)
		if i == 0 || (i == 1 && w[0] == '-') {
			return "", t.errf("malformed number")
		}
		return cursor.Borrow(w[:i]), nil
	}
	buf := t.textBuf[:0]
	for {
		err := t.cur.Fill()
		if err == io.EOF {
			break
		}
		if err != nil {
			return "", err
		}
		w := t.cur.Window()
		i := 0
		for i < len(w) && isNumberByte(w[i]) {
			i++
		}
		buf = append(buf, w[:i]...)
		t.cur.Advance(i)
		if i < len(w) {
			break
		}
	}
	t.textBuf = buf
	if len(buf) == 0 || (len(buf) == 1 && buf[0] == '-') {
		return "", t.errf("malformed number")
	}
	return string(buf), nil
}

func (t *Tokenizer) errf(format string, args ...any) error {
	return &SyntaxError{Offset: t.cur.Offset(), Msg: fmt.Sprintf(format, args...)}
}

// unexpectedEOF folds an io error into a syntax error for truncated
// input, preserving genuine read errors.
func (t *Tokenizer) unexpectedEOF(err error, where string) error {
	if err == io.EOF {
		return t.errf("unexpected end of input %s", where)
	}
	if err != nil {
		return err
	}
	return t.errf("unexpected state %s", where)
}

func (t *Tokenizer) unexpectedSep(err error, got byte, want string) error {
	if err != nil {
		return t.unexpectedEOF(err, "expecting "+want)
	}
	return t.errf("expected %s, got %q", want, got)
}
