package jsontok

import (
	"encoding/json"
	"io"
	"strings"
	"testing"

	"gcx/internal/event"
)

func TestSerializerBasics(t *testing.T) {
	var b strings.Builder
	s := NewSerializer(&b)
	s.StartElement("r", nil)
	s.StartElement("a", nil)
	s.Text("1")
	s.EndElement("a")
	s.StartElement("a", nil)
	s.Text("two")
	s.EndElement("a")
	s.StartElement("empty", nil)
	s.EndElement("empty")
	s.EndElement("r")
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if s.BytesWritten() != int64(b.Len()) {
		t.Fatalf("BytesWritten = %d, wrote %d", s.BytesWritten(), b.Len())
	}
	s.Release()
	want := `{"r":[{"a":["1"]},{"a":["two"]},{"empty":[]}]}` + "\n"
	if b.String() != want {
		t.Fatalf("got %q, want %q", b.String(), want)
	}
	if !json.Valid([]byte(b.String())) {
		t.Fatalf("output is not valid JSON: %q", b.String())
	}
}

func TestSerializerAttrsAndEscapes(t *testing.T) {
	var b strings.Builder
	s := NewSerializer(&b)
	s.StartElement("e", []event.Attr{{Name: "id", Value: `q"v`}})
	s.Text("line\nbreak\ttab \x01")
	s.EndElement("e")
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s.Release()
	want := `{"e":[{"@id":["q\"v"]},"line\nbreak\ttab \u0001"]}` + "\n"
	if b.String() != want {
		t.Fatalf("got %q, want %q", b.String(), want)
	}
	if !json.Valid([]byte(b.String())) {
		t.Fatalf("output is not valid JSON: %q", b.String())
	}
}

// TestSerializerTopLevelItems: every complete top-level item gets its
// own line and no state crosses items — the property that makes sharded
// output concatenation byte-identical.
func TestSerializerTopLevelItems(t *testing.T) {
	var whole strings.Builder
	s := NewSerializer(&whole)
	emit := func(s *Serializer, n int) {
		for i := 0; i < n; i++ {
			s.StartElement("x", nil)
			s.Text("v")
			s.EndElement("x")
			s.Text("bare")
		}
	}
	emit(s, 3)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s.Release()
	if got := strings.Count(whole.String(), "\n"); got != 6 {
		t.Fatalf("6 top-level items want 6 newlines, got %d\n%q", got, whole.String())
	}

	var a, b strings.Builder
	sa := NewSerializer(&a)
	emit(sa, 2)
	sa.Flush()
	sa.Release()
	sb := NewSerializer(&b)
	emit(sb, 1)
	sb.Flush()
	sb.Release()
	if a.String()+b.String() != whole.String() {
		t.Fatalf("concatenated shard outputs differ from sequential:\n%q\n%q", a.String()+b.String(), whole.String())
	}
}

// TestRoundTrip: serializing a tokenized stream reproduces equivalent
// JSON (tokenize → serialize → tokenize yields the same events).
func TestRoundTrip(t *testing.T) {
	const in = `{"a":[1,2],"b":{"c":"x","d":null}}` + "\n" + `{"e":true}`
	events := func(input string) []event.Token {
		tz := NewTokenizer(strings.NewReader(input))
		defer tz.Release()
		var out []event.Token
		for {
			tok, err := tz.Next()
			if err == io.EOF {
				return out
			}
			if err != nil {
				t.Fatalf("Next: %v", err)
			}
			out = append(out, tok)
		}
	}
	first := events(in)
	var b strings.Builder
	s := NewSerializer(&b)
	for _, tok := range first {
		switch tok.Kind {
		case event.StartElement:
			if tok.Name == event.RootName {
				continue // the virtual root is not serialized
			}
			s.StartElement(tok.Name, tok.Attrs)
		case event.EndElement:
			if tok.Name == event.RootName {
				continue
			}
			s.EndElement(tok.Name)
		case event.Text:
			s.Text(tok.Text)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s.Release()
	second := events(b.String())
	// The re-tokenized stream nests each record under the serializer's
	// single-key-object encoding, so compare names/texts loosely: every
	// text and element name of the first stream must appear in order.
	var f1, f2 strings.Builder
	for _, tok := range first {
		if tok.Kind == event.Text {
			f1.WriteString("%" + tok.Text + "%")
		}
	}
	for _, tok := range second {
		if tok.Kind == event.Text {
			f2.WriteString("%" + tok.Text + "%")
		}
	}
	if f1.String() != f2.String() {
		t.Fatalf("text content diverges after round trip:\n%s\n%s", f1.String(), f2.String())
	}
}
