package jsontok

import (
	"encoding/json"
	"io"
	"strings"
	"testing"

	"gcx/internal/event"
)

// FuzzJSONTokenizer checks three invariants over arbitrary input:
//
//  1. the tokenizer never panics and never produces an unbalanced
//     event stream (every StartElement is closed, depth never goes
//     negative, a clean EOF ends at depth zero);
//  2. it accepts at least what encoding/json accepts — any input that
//     json.Valid blesses as a single value must tokenize without error
//     (the tokenizer's dialect is a superset: concatenated values and
//     lenient number tails are additionally allowed);
//  3. whatever was accepted serializes to valid JSON lines that
//     re-tokenize cleanly.
func FuzzJSONTokenizer(f *testing.F) {
	seeds := []string{
		`{"a":1}`,
		`{"a":[1,2,{"b":"x"}],"c":null}`,
		"{\"a\":1}\n{\"a\":2}\n",
		`[{"k":"v"},[],{}]`,
		`"😀 A \\ \" \n"`,
		`-1.5e+10 true false null`,
		`{`,
		`[1,`,
		`{"a"`,
		"\x00{}",
		`{"":""}`,
		strings.Repeat("[", 64) + strings.Repeat("]", 64),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		tz := NewTokenizer(strings.NewReader(doc))
		defer tz.Release()
		var toks []event.Token
		depth := 0
		var tokErr error
		for i := 0; ; i++ {
			tok, err := tz.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				tokErr = err
				break
			}
			switch tok.Kind {
			case event.StartElement:
				depth++
			case event.EndElement:
				depth--
				if depth < 0 {
					t.Fatalf("event depth went negative\ninput: %q", doc)
				}
			}
			toks = append(toks, tok)
			if i > 4*len(doc)+16 {
				t.Fatalf("more events than input bytes: runaway tokenizer\ninput: %q", doc)
			}
		}
		if tokErr != nil {
			if json.Valid([]byte(doc)) {
				t.Fatalf("rejected input that encoding/json accepts: %v\ninput: %q", tokErr, doc)
			}
			return // clean rejection of invalid input
		}
		if depth != 0 {
			t.Fatalf("clean EOF at depth %d\ninput: %q", depth, doc)
		}
		// Accepted streams must serialize to valid JSON lines that
		// re-tokenize without error.
		var out strings.Builder
		ser := NewSerializer(&out)
		for _, tok := range toks {
			if tok.Name == event.RootName {
				continue
			}
			switch tok.Kind {
			case event.StartElement:
				ser.StartElement(tok.Name, tok.Attrs)
			case event.EndElement:
				ser.EndElement(tok.Name)
			case event.Text:
				ser.Text(tok.Text)
			}
		}
		if err := ser.Flush(); err != nil {
			t.Fatal(err)
		}
		ser.Release()
		for _, line := range strings.Split(out.String(), "\n") {
			if line != "" && !json.Valid([]byte(line)) {
				t.Fatalf("serializer emitted invalid JSON line %q\ninput: %q", line, doc)
			}
		}
		tz2 := NewTokenizer(strings.NewReader(out.String()))
		defer tz2.Release()
		for {
			_, err := tz2.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("serializer output does not re-tokenize: %v\ninput: %q\noutput: %q", err, doc, out.String())
			}
		}
	})
}

// FuzzJSONBytesReaderParity is the cursor-parity target for the JSON
// front end: the slice-backed tokenizer (NewTokenizerBytes, borrowed
// strings and numbers) and a reader-backed tokenizer over a tiny window
// must produce identical event streams and identical errors, message
// and offset both.
func FuzzJSONBytesReaderParity(f *testing.F) {
	seeds := []string{
		`{"a":1}`,
		`{"a":[1,2,{"b":"x"}],"c":null}`,
		"{\"a\":1}\n{\"a\":2}\n",
		`"esc A😀 \\ \" end"`,
		`{"` + strings.Repeat("k", 17) + `":"` + strings.Repeat("v", 17) + `"}`,
		`-1.5e+10 true false null`,
		`[1,`,
		`{"a"`,
		"\x00{}",
	}
	for _, s := range seeds {
		f.Add(s, uint8(0))
		f.Add(s, uint8(5))
	}
	f.Fuzz(func(t *testing.T, doc string, sizeSeed uint8) {
		run := func(tz *Tokenizer) ([]event.Token, error) {
			defer tz.Release()
			var toks []event.Token
			for {
				tok, err := tz.Next()
				if err == io.EOF {
					return toks, nil
				}
				if err != nil {
					return toks, err
				}
				toks = append(toks, tok)
				if len(toks) > 4*len(doc)+16 {
					t.Fatal("runaway tokenizer")
				}
			}
		}
		gotB, errB := run(NewTokenizerBytes([]byte(doc)))
		rd := NewTokenizer(strings.NewReader(doc))
		rd.cur.ResetReader(strings.NewReader(doc), 16+int(sizeSeed)%48)
		gotR, errR := run(rd)

		if (errB == nil) != (errR == nil) || (errB != nil && errB.Error() != errR.Error()) {
			t.Fatalf("error parity: bytes=%v reader=%v\ninput: %q", errB, errR, doc)
		}
		if len(gotB) != len(gotR) {
			t.Fatalf("event counts differ: bytes %d reader %d\ninput: %q", len(gotB), len(gotR), doc)
		}
		for i := range gotB {
			a, b := gotB[i], gotR[i]
			if a.Kind != b.Kind || a.Name != b.Name || a.Text != b.Text || len(a.Attrs) != len(b.Attrs) {
				t.Fatalf("event %d: bytes %+v reader %+v\ninput: %q", i, a, b, doc)
			}
		}
	})
}

// FuzzJSONSkipSubtree pins skip/no-skip parity one-sided: if full
// tokenization of a record succeeds, skipping that record must succeed
// and land the stream at the same next event.
func FuzzJSONSkipSubtree(f *testing.F) {
	seeds := []string{
		`{"a":{"deep":[1,2]},"b":3}`,
		`{"a":"br } ace \" in string","b":1}`,
		`{"a":[[[{"x":1}]]],"b":2}`,
		`{"a":1}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		// Reference: full tokenization, remembering events after the
		// first element under record closes.
		events := func(skipFirst bool) ([]event.Token, error) {
			tz := NewTokenizer(strings.NewReader(doc))
			defer tz.Release()
			var out []event.Token
			depth := 0
			skipped := false
			for {
				tok, err := tz.Next()
				if err == io.EOF {
					return out, nil
				}
				if err != nil {
					return out, err
				}
				switch tok.Kind {
				case event.StartElement:
					depth++
					if skipFirst && !skipped && depth == 3 {
						// First element inside the record.
						skipped = true
						if err := tz.SkipSubtree(); err != nil {
							return out, err
						}
						depth--
						continue
					}
				case event.EndElement:
					depth--
				}
				out = append(out, tok)
			}
		}
		full, errFull := events(false)
		if errFull != nil {
			return // invalid input; nothing to compare
		}
		skip, errSkip := events(true)
		if errSkip != nil {
			t.Fatalf("full tokenization accepts but skip errors: %v\ninput: %q", errSkip, doc)
		}
		// The skipped run must be a subsequence cut: same prefix before
		// the skipped element, same suffix after its subtree.
		cut := -1
		depth := 0
		for i, tok := range full {
			if tok.Kind == event.StartElement {
				depth++
				if depth == 3 {
					cut = i
					break
				}
			} else if tok.Kind == event.EndElement {
				depth--
			}
		}
		if cut < 0 {
			// No third-level element existed, so no skip happened.
			if len(skip) != len(full) {
				t.Fatalf("no skip point but streams differ\ninput: %q", doc)
			}
			return
		}
		// Drop the skipped subtree from full: from cut to its matching end.
		d := 0
		end := cut
		for i := cut; i < len(full); i++ {
			if full[i].Kind == event.StartElement {
				d++
			} else if full[i].Kind == event.EndElement {
				d--
				if d == 0 {
					end = i
					break
				}
			}
		}
		want := append(append([]event.Token{}, full[:cut]...), full[end+1:]...)
		if len(want) != len(skip) {
			t.Fatalf("skip stream has %d events, want %d\ninput: %q", len(skip), len(want), doc)
		}
		for i := range want {
			if want[i].Kind != skip[i].Kind || want[i].Name != skip[i].Name || want[i].Text != skip[i].Text {
				t.Fatalf("skip stream diverges at %d: %+v vs %+v\ninput: %q", i, skip[i], want[i], doc)
			}
		}
	})
}
