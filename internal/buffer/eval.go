package buffer

import (
	"gcx/internal/xpath"
)

// Match is a node reached by a path evaluation together with its
// derivation multiplicity. Paths with descendant axes can reach the same
// node through several derivations; the paper's role accounting is a
// multiset, so removals must respect multiplicity.
type Match struct {
	Node  *Node
	Count int
}

// Matches evaluates path relative to base over the buffered tree and
// returns the matched nodes with derivation multiplicities. Nodes appear
// at most once in the result (counts aggregated); order follows the
// step-wise expansion and is NOT document order — use SelectDocOrder for
// output positions.
//
// Attribute steps are rejected: attributes are element properties in
// this system and never appear in projection or sign-off paths.
func Matches(base *Node, path xpath.Path) []Match {
	if path.EndsWithAttribute() {
		panic("buffer: attribute step in buffered-path evaluation")
	}
	cur := []Match{{Node: base, Count: 1}}
	for _, step := range path.Steps {
		cur = evalStep(cur, step)
		if len(cur) == 0 {
			return nil
		}
	}
	return cur
}

func evalStep(sources []Match, step xpath.Step) []Match {
	var out []Match
	idx := make(map[*Node]int)
	add := func(n *Node, count int) {
		if i, ok := idx[n]; ok {
			out[i].Count += count
			return
		}
		idx[n] = len(out)
		out = append(out, Match{Node: n, Count: count})
	}
	for _, src := range sources {
		switch step.Axis {
		case xpath.Self:
			if matchesNode(src.Node, step.Test) {
				add(src.Node, src.Count)
			}
		case xpath.Child:
			for c := src.Node.FirstChild; c != nil; c = c.NextSib {
				if matchesNode(c, step.Test) {
					add(c, src.Count)
					if step.FirstOnly {
						break
					}
				}
			}
		case xpath.Descendant:
			walkDescendants(src.Node, false, step, src.Count, add)
		case xpath.DescendantOrSelf:
			walkDescendants(src.Node, true, step, src.Count, add)
		default:
			panic("buffer: unsupported axis " + step.Axis.String())
		}
	}
	return out
}

// walkDescendants visits the subtree of n in document order, applying
// the test. With FirstOnly, only the first match (per source context) is
// reported.
func walkDescendants(n *Node, includeSelf bool, step xpath.Step, count int, add func(*Node, int)) {
	first := step.FirstOnly
	var rec func(m *Node, self bool) bool
	rec = func(m *Node, self bool) bool {
		if self && matchesNode(m, step.Test) {
			add(m, count)
			if first {
				return true
			}
		}
		for c := m.FirstChild; c != nil; c = c.NextSib {
			if rec(c, true) {
				return true
			}
		}
		return false
	}
	rec(n, includeSelf)
}

func matchesNode(n *Node, test xpath.Test) bool {
	switch n.Kind {
	case KindElement:
		return test.MatchesElement(n.Name)
	case KindText:
		return test.MatchesText()
	case KindRoot:
		// The virtual root is matched only by node() via self /
		// descendant-or-self (role r1's target).
		return test.Kind == xpath.TestNode
	}
	return false
}

// SelectDocOrder evaluates path relative to base and returns the
// distinct matched nodes in document order — the node-set semantics of
// output positions ("$b/title" emits each title once, in order).
func SelectDocOrder(base *Node, path xpath.Path) []*Node {
	matches := Matches(base, path)
	if len(matches) == 0 {
		return nil
	}
	if len(matches) == 1 {
		return []*Node{matches[0].Node}
	}
	set := make(map[*Node]bool, len(matches))
	for _, m := range matches {
		set[m.Node] = true
	}
	out := make([]*Node, 0, len(set))
	var rec func(n *Node)
	rec = func(n *Node) {
		if set[n] {
			out = append(out, n)
			if len(out) == len(set) {
				return
			}
		}
		for c := n.FirstChild; c != nil; c = c.NextSib {
			rec(c)
			if len(out) == len(set) {
				return
			}
		}
	}
	rec(base)
	return out
}

// Exists reports whether path has at least one match from base right
// now, short-circuiting at the first hit. The engine calls this once
// per processed token while blocked on an existence condition, so it
// must not materialize full match sets. (The caller decides whether
// "no match yet" is final by checking whether base's subtree is fully
// read.)
func Exists(base *Node, path xpath.Path) bool {
	return existsFrom(base, path.Steps)
}

func existsFrom(n *Node, steps []xpath.Step) bool {
	if len(steps) == 0 {
		return true
	}
	step := steps[0]
	rest := steps[1:]
	switch step.Axis {
	case xpath.Self:
		return matchesNode(n, step.Test) && existsFrom(n, rest)
	case xpath.Child:
		for c := n.FirstChild; c != nil; c = c.NextSib {
			if matchesNode(c, step.Test) {
				if existsFrom(c, rest) {
					return true
				}
				if step.FirstOnly {
					return false // only the first witness counts
				}
			}
		}
		return false
	case xpath.Descendant, xpath.DescendantOrSelf:
		includeSelf := step.Axis == xpath.DescendantOrSelf
		var rec func(m *Node, self bool) (found, stop bool)
		rec = func(m *Node, self bool) (bool, bool) {
			if self && matchesNode(m, step.Test) {
				if existsFrom(m, rest) {
					return true, true
				}
				if step.FirstOnly {
					return false, true
				}
			}
			for c := m.FirstChild; c != nil; c = c.NextSib {
				found, stop := rec(c, true)
				if stop {
					return found, true
				}
			}
			return false, false
		}
		found, _ := rec(n, includeSelf)
		return found
	default:
		panic("buffer: unsupported axis in Exists")
	}
}

// NextMatchingChild returns the first child of parent after cur (or the
// very first child if cur is nil) that satisfies test. It is the
// iteration step of child-axis for-loops.
func NextMatchingChild(parent, cur *Node, test xpath.Test) *Node {
	c := parent.FirstChild
	if cur != nil {
		c = cur.NextSib
	}
	for ; c != nil; c = c.NextSib {
		if matchesNode(c, test) {
			return c
		}
	}
	return nil
}

// NextMatchingDescendant returns the next node after cur in the
// document-order traversal of base's subtree that satisfies test
// (excluding base itself unless includeSelf). cur == nil starts the
// iteration. It is the iteration step of descendant-axis for-loops.
func NextMatchingDescendant(base, cur *Node, test xpath.Test, includeSelf bool) *Node {
	n := cur
	if n == nil {
		if includeSelf && matchesNode(base, test) {
			return base
		}
		n = base
		// fall through to successor scan starting at base's first child
	}
	for {
		n = docOrderSuccessor(base, n)
		if n == nil {
			return nil
		}
		if matchesNode(n, test) {
			return n
		}
	}
}

// docOrderSuccessor returns the node following n in the document-order
// traversal of base's subtree, or nil when the subtree is exhausted.
func docOrderSuccessor(base, n *Node) *Node {
	if n.FirstChild != nil {
		return n.FirstChild
	}
	for n != nil && n != base {
		if n.NextSib != nil {
			return n.NextSib
		}
		n = n.Parent
	}
	return nil
}
