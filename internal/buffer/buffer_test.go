package buffer

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"gcx/internal/xmltok"
	"gcx/internal/xpath"
)

// buildPaperFig1 reconstructs the buffer of the paper's Figure 1(a):
//
//	bib{r2} → book{r3,r5,r6} → title{r5,r7}, author{r5}
//
// using role ids 1..6 for r2..r7 (r1 is the root role, id 0).
func buildPaperFig1(b *Buffer) (bib, book, title, author *Node) {
	b.AssignRole(b.Root, 0) // r1
	bib = b.AppendElement(b.Root, "bib", nil)
	b.AssignRole(bib, 1) // r2
	book = b.AppendElement(bib, "book", nil)
	b.AssignRole(book, 2) // r3
	b.AssignRole(book, 4) // r5
	b.AssignRole(book, 5) // r6
	title = b.AppendElement(book, "title", nil)
	b.AssignRole(title, 4) // r5
	b.AssignRole(title, 6) // r7
	b.CloseNode(title)
	author = b.AppendElement(book, "author", nil)
	b.AssignRole(author, 4) // r5
	b.CloseNode(author)
	b.CloseNode(book)
	return bib, book, title, author
}

func mustInvariants(t *testing.T, b *Buffer) {
	t.Helper()
	if err := b.CheckInvariants(); err != nil {
		t.Fatalf("invariants violated: %v\n%s", err, b.Dump(nil))
	}
}

// TestPaperFigure1 walks the exact garbage-collection scenario of the
// paper's Figure 1: after the first for-loop iteration processes the
// book node, sign-offs for r3, r4, r5 leave book{r6} and title{r7}
// buffered; author is purged.
func TestPaperFigure1(t *testing.T) {
	b := New()
	bib, book, title, author := buildPaperFig1(b)
	mustInvariants(t, b)
	if b.CurrentNodes != 4 {
		t.Fatalf("CurrentNodes = %d, want 4", b.CurrentNodes)
	}

	// Figure 1(b): executing the signOff commands of the first loop.
	// signOff($x, r3); signOff($x/price[1], r4); signOff($x/d-o-s, r5).
	b.SignOffNow(book, xpath.Path{}, 2) // r3 on $x itself
	pricePath := xpath.Path{Steps: []xpath.Step{{
		Axis: xpath.Child, Test: xpath.Test{Kind: xpath.TestName, Name: "price"}, FirstOnly: true}}}
	if removed := b.SignOffNow(book, pricePath, 3); removed != 0 {
		t.Fatalf("removed %d instances of r4, want 0 (no price child)", removed)
	}
	dos := xpath.Path{Steps: []xpath.Step{xpath.DescendantOrSelfNodeStep()}}
	if removed := b.SignOffNow(book, dos, 4); removed != 3 {
		t.Fatalf("removed %d instances of r5, want 3 (book, title, author)", removed)
	}
	mustInvariants(t, b)

	// Figure 1(c): author has lost all roles and is purged; book keeps
	// r6, title keeps r7.
	if author.InBuffer() {
		t.Error("author should have been garbage-collected")
	}
	if !book.InBuffer() || book.RoleCount(5) != 1 {
		t.Error("book{r6} should remain buffered")
	}
	if !title.InBuffer() || title.RoleCount(6) != 1 {
		t.Error("title{r7} should remain buffered")
	}
	if b.CurrentNodes != 3 {
		t.Fatalf("CurrentNodes = %d, want 3 (bib, book, title)", b.CurrentNodes)
	}

	// Second loop: output title, then signOff($b, r6) and
	// signOff($b/title/d-o-s, r7); finally signOff($bib, r2).
	b.SignOffNow(book, xpath.Path{}, 5)
	titleDos := xpath.Path{Steps: []xpath.Step{xpath.ChildStep("title"), xpath.DescendantOrSelfNodeStep()}}
	b.SignOffNow(book, titleDos, 6)
	if book.InBuffer() || title.InBuffer() {
		t.Error("book subtree should be fully purged after second loop")
	}
	b.CloseNode(bib)
	b.SignOffNow(bib, xpath.Path{}, 1)
	if bib.InBuffer() {
		t.Error("bib should be purged after signOff($bib, r2)")
	}
	b.SignOffNow(b.Root, xpath.Path{}, 0)
	if b.CurrentNodes != 0 {
		t.Fatalf("CurrentNodes = %d, want 0 at end", b.CurrentNodes)
	}
	if err := b.CheckBalance(); err != nil {
		t.Fatalf("balance: %v", err)
	}
	mustInvariants(t, b)
}

func TestOpenNodesAreNotPurged(t *testing.T) {
	b := New()
	bib := b.AppendElement(b.Root, "bib", nil)
	book := b.AppendElement(bib, "book", nil)
	// No roles at all: nodes are only protected by their open pins.
	if !book.InBuffer() || !bib.InBuffer() {
		t.Fatal("open nodes must stay buffered")
	}
	b.CloseNode(book)
	if book.InBuffer() {
		t.Fatal("closed role-less node should be purged")
	}
	if !bib.InBuffer() {
		t.Fatal("bib is still open, must stay")
	}
	b.CloseNode(bib)
	if bib.InBuffer() || b.CurrentNodes != 0 {
		t.Fatal("all nodes should be purged after close")
	}
	mustInvariants(t, b)
}

func TestPinPreventsPurge(t *testing.T) {
	b := New()
	x := b.AppendElement(b.Root, "x", nil)
	b.Pin(x)
	b.CloseNode(x)
	if !x.InBuffer() {
		t.Fatal("pinned node purged")
	}
	b.Unpin(x)
	if x.InBuffer() {
		t.Fatal("unpinned role-less node should be purged")
	}
	mustInvariants(t, b)
}

func TestPurgeTakesHighestZeroAncestor(t *testing.T) {
	b := New()
	a := b.AppendElement(b.Root, "a", nil)
	c := b.AppendElement(a, "b", nil)
	d := b.AppendElement(c, "c", nil)
	b.AssignRole(d, 0)
	b.CloseNode(d)
	b.CloseNode(c)
	b.CloseNode(a)
	if b.CurrentNodes != 3 {
		t.Fatalf("CurrentNodes = %d, want 3", b.CurrentNodes)
	}
	// Removing the only role purges the whole chain a/b/c at once.
	b.RemoveRole(d, 0, 1)
	if b.CurrentNodes != 0 {
		t.Fatalf("CurrentNodes = %d, want 0 after cascade purge\n%s", b.CurrentNodes, b.Dump(nil))
	}
	if a.InBuffer() || c.InBuffer() || d.InBuffer() {
		t.Fatal("chain should be fully unlinked")
	}
	mustInvariants(t, b)
}

func TestRoleMultiset(t *testing.T) {
	b := New()
	n := b.AppendElement(b.Root, "n", nil)
	b.AssignRole(n, 3)
	b.AssignRole(n, 3)
	b.AssignRole(n, 7)
	b.CloseNode(n)
	if n.RoleCount(3) != 2 || n.RoleTotal() != 3 {
		t.Fatalf("multiset counts wrong: %v", n.Roles())
	}
	b.RemoveRole(n, 3, 1)
	if !n.InBuffer() || n.RoleCount(3) != 1 {
		t.Fatal("one instance removed, node must stay")
	}
	b.RemoveRole(n, 3, 1)
	if !n.InBuffer() {
		t.Fatal("r8 still present, node must stay")
	}
	b.RemoveRole(n, 7, 1)
	if n.InBuffer() {
		t.Fatal("all roles gone, node must be purged")
	}
	mustInvariants(t, b)
}

func TestRemoveRolePanicsOnUnderflow(t *testing.T) {
	b := New()
	n := b.AppendElement(b.Root, "n", nil)
	b.AssignRole(n, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on role underflow")
		}
	}()
	b.RemoveRole(n, 1, 2)
}

func TestDeferredSignOff(t *testing.T) {
	b := New()
	x := b.AppendElement(b.Root, "x", nil)
	b.AssignRole(x, 0)
	ch := b.AppendElement(x, "c", nil)
	b.AssignRole(ch, 1)
	b.CloseNode(ch)

	// x is still open: the sign-off for role 1 on x/c must defer.
	cPath := xpath.Path{Steps: []xpath.Step{xpath.ChildStep("c")}}
	b.QueueSignOff(x, cPath, 1)
	if b.PendingCount() != 1 {
		t.Fatalf("PendingCount = %d, want 1", b.PendingCount())
	}
	if ch.RoleCount(1) != 1 {
		t.Fatal("deferred sign-off must not remove roles yet")
	}
	if b.DrainPending() != 0 {
		t.Fatal("drain should not execute while x is open")
	}

	// Second c child arrives after the sign-off was issued: it is part
	// of the same iteration's subtree... but with [1]-free child paths
	// every instance is matched at drain time.
	ch2 := b.AppendElement(x, "c", nil)
	b.AssignRole(ch2, 1)
	b.CloseNode(ch2)
	b.CloseNode(x)
	if got := b.DrainPending(); got != 1 {
		t.Fatalf("DrainPending executed %d, want 1", got)
	}
	if ch.InBuffer() || ch2.InBuffer() {
		t.Fatal("both c children should be purged after drain")
	}
	// x keeps role 0.
	if !x.InBuffer() {
		t.Fatal("x still has a role")
	}
	b.SignOffNow(x, xpath.Path{}, 0)
	if err := b.CheckBalance(); err != nil {
		t.Fatal(err)
	}
	mustInvariants(t, b)
}

func TestQueueSignOffExecutesImmediatelyWhenClosed(t *testing.T) {
	b := New()
	x := b.AppendElement(b.Root, "x", nil)
	b.AssignRole(x, 0)
	b.CloseNode(x)
	b.QueueSignOff(x, xpath.Path{}, 0)
	if b.PendingCount() != 0 {
		t.Fatal("sign-off on closed subtree must run immediately")
	}
	if x.InBuffer() {
		t.Fatal("x should be purged")
	}
}

func TestDisableGC(t *testing.T) {
	b := New()
	b.DisableGC = true
	x := b.AppendElement(b.Root, "x", nil)
	b.AssignRole(x, 0)
	b.CloseNode(x)
	b.SignOffNow(x, xpath.Path{}, 0)
	if !x.InBuffer() {
		t.Fatal("DisableGC must keep nodes buffered")
	}
	if b.CurrentNodes != 1 {
		t.Fatalf("CurrentNodes = %d, want 1", b.CurrentNodes)
	}
}

func TestMatchesMultiplicityWithDescendants(t *testing.T) {
	// <a><s><s><x/></s></s></a>: path a/descendant::s/descendant-or-self::node()
	// reaches the inner s twice and x twice (via both s derivations).
	b := New()
	a := b.AppendElement(b.Root, "a", nil)
	s1 := b.AppendElement(a, "s", nil)
	s2 := b.AppendElement(s1, "s", nil)
	x := b.AppendElement(s2, "x", nil)
	b.AssignRole(a, 0) // keep everything alive
	b.AssignRole(s1, 0)
	b.AssignRole(s2, 0)
	b.AssignRole(x, 0)
	for _, n := range []*Node{x, s2, s1, a} {
		b.CloseNode(n)
	}
	p := xpath.Path{Steps: []xpath.Step{
		{Axis: xpath.Descendant, Test: xpath.Test{Kind: xpath.TestName, Name: "s"}},
		xpath.DescendantOrSelfNodeStep(),
	}}
	got := map[*Node]int{}
	for _, m := range Matches(a, p) {
		got[m.Node] = m.Count
	}
	if got[s1] != 1 || got[s2] != 2 || got[x] != 2 {
		t.Fatalf("multiplicities: s1=%d s2=%d x=%d, want 1/2/2", got[s1], got[s2], got[x])
	}
}

func TestFirstWitnessMatching(t *testing.T) {
	b := New()
	x := b.AppendElement(b.Root, "x", nil)
	b.AssignRole(x, 0)
	p1 := b.AppendElement(x, "p", nil)
	b.AssignRole(p1, 1)
	b.CloseNode(p1)
	p2 := b.AppendElement(x, "p", nil)
	b.AssignRole(p2, 0) // keep alive via other role
	b.CloseNode(p2)
	b.CloseNode(x)
	path := xpath.Path{Steps: []xpath.Step{{
		Axis: xpath.Child, Test: xpath.Test{Kind: xpath.TestName, Name: "p"}, FirstOnly: true}}}
	ms := Matches(x, path)
	if len(ms) != 1 || ms[0].Node != p1 {
		t.Fatalf("first-witness must match only the first p; got %d matches", len(ms))
	}
}

func TestSelectDocOrder(t *testing.T) {
	b := New()
	a := b.AppendElement(b.Root, "a", nil)
	b.AssignRole(a, 0)
	var ids []*Node
	for i := 0; i < 3; i++ {
		c := b.AppendElement(a, "c", nil)
		b.AssignRole(c, 0)
		d := b.AppendElement(c, "d", nil)
		b.AssignRole(d, 0)
		b.CloseNode(d)
		b.CloseNode(c)
		ids = append(ids, c, d)
	}
	b.CloseNode(a)
	dos := xpath.Path{Steps: []xpath.Step{xpath.DescendantOrSelfNodeStep()}}
	got := SelectDocOrder(a, dos)
	want := append([]*Node{a}, ids...)
	if len(got) != len(want) {
		t.Fatalf("got %d nodes, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("doc order violated at %d", i)
		}
	}
}

func TestNextMatchingChildAndDescendant(t *testing.T) {
	b := New()
	bib := b.AppendElement(b.Root, "bib", nil)
	b.AssignRole(bib, 0)
	bk1 := b.AppendElement(bib, "book", nil)
	b.AssignRole(bk1, 0)
	art := b.AppendElement(bib, "article", nil)
	b.AssignRole(art, 0)
	bk2 := b.AppendElement(bib, "book", nil)
	b.AssignRole(bk2, 0)
	test := xpath.Test{Kind: xpath.TestName, Name: "book"}
	if n := NextMatchingChild(bib, nil, test); n != bk1 {
		t.Fatal("first book")
	}
	if n := NextMatchingChild(bib, bk1, test); n != bk2 {
		t.Fatal("second book should skip article")
	}
	if n := NextMatchingChild(bib, bk2, test); n != nil {
		t.Fatal("no third book")
	}
	// descendant iteration sees nested matches in document order
	inner := b.AppendElement(bk1, "book", nil)
	b.AssignRole(inner, 0)
	if n := NextMatchingDescendant(bib, nil, test, false); n != bk1 {
		t.Fatal("descendant iteration start")
	}
	if n := NextMatchingDescendant(bib, bk1, test, false); n != inner {
		t.Fatal("nested book next in doc order")
	}
	if n := NextMatchingDescendant(bib, inner, test, false); n != bk2 {
		t.Fatal("after the nested book, bk2 is the next matching descendant")
	}
	if n := NextMatchingDescendant(bib, bk2, test, false); n != nil {
		t.Fatal("iteration exhausted")
	}
}

func TestStringValue(t *testing.T) {
	b := New()
	n := b.AppendElement(b.Root, "name", nil)
	b.AssignRole(n, 0)
	b.AppendText(n, "John ")
	m := b.AppendElement(n, "last", nil)
	b.AssignRole(m, 0)
	b.AppendText(m, "Doe")
	b.CloseNode(m)
	b.CloseNode(n)
	if got := n.StringValue(); got != "John Doe" {
		t.Fatalf("StringValue = %q", got)
	}
}

func TestSerializeSubtree(t *testing.T) {
	b := New()
	item := b.AppendElement(b.Root, "item", []xmltok.Attr{{Name: "id", Value: "i1"}})
	b.AssignRole(item, 0)
	name := b.AppendElement(item, "name", nil)
	b.AssignRole(name, 0)
	b.AppendText(name, "a<b")
	b.CloseNode(name)
	b.CloseNode(item)
	var out bytes.Buffer
	s := xmltok.NewSerializer(&out)
	Serialize(item, s)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	want := `<item id="i1"><name>a&lt;b</name></item>`
	if out.String() != want {
		t.Fatalf("got %q, want %q", out.String(), want)
	}
}

func TestDumpShowsRoles(t *testing.T) {
	b := New()
	bib, _, _, _ := buildPaperFig1(b)
	_ = bib
	dump := b.Dump(nil)
	for _, want := range []string{"bib{r2}", "book{r3,r5,r6}", "title{r5,r7}", "author{r5}"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
}

// TestRandomizedInvariants drives random buffer operations and checks
// structural invariants throughout (property-based).
func TestRandomizedInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := New()
		open := []*Node{b.Root}
		var live []*Node // nodes holding roles we may remove
		roleOf := map[*Node][]int{}
		for op := 0; op < 300; op++ {
			switch r.Intn(5) {
			case 0, 1: // append element
				parent := open[len(open)-1]
				n := b.AppendElement(parent, "n", nil)
				if r.Intn(2) == 0 {
					role := r.Intn(4)
					b.AssignRole(n, role)
					roleOf[n] = append(roleOf[n], role)
					live = append(live, n)
				}
				if r.Intn(3) > 0 {
					open = append(open, n)
				} else {
					b.CloseNode(n)
				}
			case 2: // append text (always roled, per the preprojector contract)
				parent := open[len(open)-1]
				if parent == b.Root {
					continue
				}
				n := b.AppendText(parent, "t")
				role := r.Intn(4)
				b.AssignRole(n, role)
				roleOf[n] = append(roleOf[n], role)
				live = append(live, n)
			case 3: // close deepest
				if len(open) > 1 {
					b.CloseNode(open[len(open)-1])
					open = open[:len(open)-1]
				}
			case 4: // remove one role instance
				if len(live) > 0 {
					i := r.Intn(len(live))
					n := live[i]
					rs := roleOf[n]
					role := rs[len(rs)-1]
					roleOf[n] = rs[:len(rs)-1]
					if len(roleOf[n]) == 0 {
						live = append(live[:i], live[i+1:]...)
					}
					b.RemoveRole(n, role, 1)
				}
			}
			if err := b.CheckInvariants(); err != nil {
				t.Logf("seed %d op %d: %v", seed, op, err)
				return false
			}
		}
		// close everything and remove remaining roles: buffer must empty
		for len(open) > 1 {
			b.CloseNode(open[len(open)-1])
			open = open[:len(open)-1]
		}
		for _, n := range live {
			for _, role := range roleOf[n] {
				b.RemoveRole(n, role, 1)
			}
		}
		if b.CurrentNodes != 0 {
			t.Logf("seed %d: %d nodes left after full drain\n%s", seed, b.CurrentNodes, b.Dump(nil))
			return false
		}
		return b.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestExistsShortCircuit: Exists agrees with Matches across axis
// shapes, including first-witness semantics.
func TestExistsShortCircuit(t *testing.T) {
	b := New()
	a := b.AppendElement(b.Root, "a", nil)
	b.AssignRole(a, 0)
	for i := 0; i < 3; i++ {
		c := b.AppendElement(a, "c", nil)
		b.AssignRole(c, 0)
		d := b.AppendElement(c, "d", nil)
		b.AssignRole(d, 0)
		b.CloseNode(d)
		b.CloseNode(c)
	}
	b.CloseNode(a)
	paths := []xpath.Path{
		{Steps: []xpath.Step{xpath.ChildStep("c")}},
		{Steps: []xpath.Step{xpath.ChildStep("missing")}},
		{Steps: []xpath.Step{xpath.ChildStep("c"), xpath.ChildStep("d")}},
		{Steps: []xpath.Step{{Axis: xpath.Descendant, Test: xpath.Test{Kind: xpath.TestName, Name: "d"}}}},
		{Steps: []xpath.Step{xpath.DescendantOrSelfNodeStep()}},
		{Steps: []xpath.Step{{Axis: xpath.Child, Test: xpath.Test{Kind: xpath.TestName, Name: "c"}, FirstOnly: true}, xpath.ChildStep("d")}},
		{Steps: []xpath.Step{{Axis: xpath.Self, Test: xpath.Test{Kind: xpath.TestName, Name: "a"}}}},
		{Steps: []xpath.Step{{Axis: xpath.Self, Test: xpath.Test{Kind: xpath.TestName, Name: "z"}}}},
	}
	for _, p := range paths {
		want := len(Matches(a, p)) > 0
		if got := Exists(a, p); got != want {
			t.Errorf("Exists(%s) = %v, Matches says %v", p, got, want)
		}
	}
}

// TestExistsFirstWitnessSubtlety: with [1], only the first matching
// child may witness the rest of the path.
func TestExistsFirstWitnessSubtlety(t *testing.T) {
	// <x><p/><p><q/></p></x>: p[1]/q must be FALSE (first p has no q).
	b := New()
	x := b.AppendElement(b.Root, "x", nil)
	b.AssignRole(x, 0)
	p1 := b.AppendElement(x, "p", nil)
	b.AssignRole(p1, 0)
	b.CloseNode(p1)
	p2 := b.AppendElement(x, "p", nil)
	b.AssignRole(p2, 0)
	q := b.AppendElement(p2, "q", nil)
	b.AssignRole(q, 0)
	b.CloseNode(q)
	b.CloseNode(p2)
	b.CloseNode(x)
	path := xpath.Path{Steps: []xpath.Step{
		{Axis: xpath.Child, Test: xpath.Test{Kind: xpath.TestName, Name: "p"}, FirstOnly: true},
		xpath.ChildStep("q"),
	}}
	if Exists(x, path) {
		t.Fatal("p[1]/q must not exist: the first p has no q")
	}
	if len(Matches(x, path)) != 0 {
		t.Fatal("Matches must agree")
	}
}
