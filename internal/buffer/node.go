// Package buffer implements the GCX buffer manager: a tree of buffered
// XML nodes annotated with multisets of roles, purged by active garbage
// collection (paper §2).
//
// Invariants maintained here (and property-tested):
//
//   - every node's subtreeWeight equals the sum of role instances plus
//     pins in its subtree (including itself);
//   - a node is unlinked ("purged") as soon as its subtreeWeight reaches
//     zero — deletions take effect immediately, mirroring the paper's
//     reliance on C++ manual memory management;
//   - role instances assigned during projection equal role instances
//     removed by signOffs when evaluation ends (the balance property).
package buffer

import (
	"fmt"
	"strings"

	"gcx/internal/event"
)

// NodeKind discriminates buffered nodes.
type NodeKind uint8

const (
	// KindRoot is the virtual document root (the paper's role r1 target).
	KindRoot NodeKind = iota
	// KindElement is an element node.
	KindElement
	// KindText is a character-data node.
	KindText
)

// Node is a buffered XML node. Children form a doubly linked list so
// that purging is O(1) pointer surgery.
type Node struct {
	Kind  NodeKind
	Name  string       // element name (KindElement)
	Attrs []event.Attr // attributes ride along with their element
	Text  string       // character data (KindText)

	Parent     *Node
	FirstChild *Node
	LastChild  *Node
	PrevSib    *Node
	NextSib    *Node

	// roles is the role multiset: instance counts per role id. Allocated
	// lazily; most nodes carry one or two roles.
	roles map[int]int

	// subtreeWeight is the number of role instances plus pins in this
	// node's subtree, including the node itself. Zero means the subtree
	// is irrelevant to the remaining evaluation and is purged.
	subtreeWeight int64

	// subtreeNodes is the number of buffered element and text nodes in
	// this subtree including the node itself (the virtual root does not
	// count itself).
	subtreeNodes int64

	// bytes is the estimated resident size of this node alone (set at
	// link time; see nodeBytes).
	bytes int64

	// pins counts temporary protections: one while the node is open
	// (its close tag has not arrived) and one per evaluator reference
	// (current loop binding). Pins contribute to subtreeWeight.
	pins int

	// Closed is set when the node's end tag has been processed (text
	// nodes are born closed).
	Closed bool

	// unlinked marks a purged subtree root, so stale references can
	// detect that the node left the buffer.
	unlinked bool
}

// RoleCount returns the number of instances of role on the node.
func (n *Node) RoleCount(role int) int { return n.roles[role] }

// RoleTotal returns the total number of role instances on the node
// itself (excluding pins and descendants).
func (n *Node) RoleTotal() int {
	total := 0
	for _, c := range n.roles {
		total += c
	}
	return total
}

// Roles returns the role ids present on this node in ascending order.
func (n *Node) Roles() []int {
	if len(n.roles) == 0 {
		return nil
	}
	ids := make([]int, 0, len(n.roles))
	for id := range n.roles {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ { // insertion sort; tiny slices
		for j := i; j > 0 && ids[j-1] > ids[j]; j-- {
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
	return ids
}

// SubtreeWeight exposes the subtree role+pin total (for tests).
func (n *Node) SubtreeWeight() int64 { return n.subtreeWeight }

// SubtreeNodes exposes the buffered-node count of the subtree.
func (n *Node) SubtreeNodes() int64 { return n.subtreeNodes }

// Pins exposes the pin count (for tests).
func (n *Node) Pins() int { return n.pins }

// InBuffer reports whether the node is still linked into the buffer.
func (n *Node) InBuffer() bool {
	for p := n; p != nil; p = p.Parent {
		if p.unlinked {
			return false
		}
		if p.Kind == KindRoot {
			return true
		}
	}
	return false
}

// Attr returns the value of the named attribute.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// StringValue returns the concatenated text of the subtree (the XPath
// string value of an element, or the text of a text node).
func (n *Node) StringValue() string {
	if n.Kind == KindText {
		return n.Text
	}
	var b strings.Builder
	n.appendText(&b)
	return b.String()
}

func (n *Node) appendText(b *strings.Builder) {
	if n.Kind == KindText {
		b.WriteString(n.Text)
		return
	}
	for c := n.FirstChild; c != nil; c = c.NextSib {
		c.appendText(b)
	}
}

// label renders the node for dumps: name{r2,r5}.
func (n *Node) label(roleName func(int) string) string {
	var b strings.Builder
	switch n.Kind {
	case KindRoot:
		b.WriteString("/")
	case KindElement:
		b.WriteString(n.Name)
	case KindText:
		fmt.Fprintf(&b, "%q", n.Text)
	}
	ids := n.Roles()
	if len(ids) > 0 {
		b.WriteString("{")
		for i, id := range ids {
			if i > 0 {
				b.WriteString(",")
			}
			name := fmt.Sprintf("r%d", id+1)
			if roleName != nil {
				name = roleName(id)
			}
			b.WriteString(name)
			if c := n.roles[id]; c > 1 {
				fmt.Fprintf(&b, "×%d", c)
			}
		}
		b.WriteString("}")
	}
	return b.String()
}
