package buffer

import (
	"testing"

	"gcx/internal/xpath"
)

// BenchmarkAppendAssignPurge measures the full lifecycle of a buffered
// subtree: append, role assignment, sign-off, cascade purge — the hot
// path of streaming evaluation.
func BenchmarkAppendAssignPurge(b *testing.B) {
	dos := xpath.Path{Steps: []xpath.Step{xpath.DescendantOrSelfNodeStep()}}
	b.ReportAllocs()
	buf := New()
	for i := 0; i < b.N; i++ {
		item := buf.AppendElement(buf.Root, "item", nil)
		buf.AssignRole(item, 0)
		for j := 0; j < 4; j++ {
			c := buf.AppendElement(item, "c", nil)
			buf.AssignRole(c, 0)
			buf.CloseNode(c)
		}
		buf.CloseNode(item)
		buf.SignOffNow(item, dos, 0)
	}
	if buf.CurrentNodes != 0 {
		b.Fatal("buffer did not drain")
	}
}

// BenchmarkDeepChainPurge measures the ancestor-walk costs on deep
// trees (counter updates are O(depth)).
func BenchmarkDeepChainPurge(b *testing.B) {
	b.ReportAllocs()
	buf := New()
	for i := 0; i < b.N; i++ {
		cur := buf.Root
		var chain []*Node
		for d := 0; d < 32; d++ {
			cur = buf.AppendElement(cur, "d", nil)
			chain = append(chain, cur)
		}
		buf.AssignRole(cur, 0)
		for j := len(chain) - 1; j >= 0; j-- {
			buf.CloseNode(chain[j])
		}
		buf.RemoveRole(cur, 0, 1) // cascades the whole chain away
	}
	if buf.CurrentNodes != 0 {
		b.Fatal("buffer did not drain")
	}
}

// BenchmarkMatches measures sign-off path evaluation over a wide
// buffered section (the join workload's bookkeeping).
func BenchmarkMatches(b *testing.B) {
	buf := New()
	sec := buf.AppendElement(buf.Root, "sec", nil)
	buf.AssignRole(sec, 0)
	for i := 0; i < 1000; i++ {
		n := buf.AppendElement(sec, "t", nil)
		buf.AssignRole(n, 1)
		buf.CloseNode(n)
	}
	buf.CloseNode(sec)
	path := xpath.Path{Steps: []xpath.Step{xpath.ChildStep("t")}}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := len(Matches(sec, path)); got != 1000 {
			b.Fatalf("got %d", got)
		}
	}
}
