package buffer

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"gcx/internal/event"
)

// ErrBudget is the sentinel of a node-budget breach: allocating one more
// node would push the buffer population past MaxNodes. The engine
// surfaces it (wrapped with the concrete numbers) instead of letting the
// buffer grow without bound; match with errors.Is.
var ErrBudget = errors.New("buffer node budget exceeded")

// Buffer is the buffer manager's store: the tree of buffered nodes and
// the accounting needed for the paper's plots and invariants.
type Buffer struct {
	Root *Node

	// CurrentNodes is the paper's y-axis: buffered element and text
	// nodes (the virtual root is not counted).
	CurrentNodes int64
	// PeakNodes is the high watermark of CurrentNodes.
	PeakNodes int64
	// CurrentBytes estimates the resident size of the buffered tree
	// (per-node overhead plus name/text/attribute payloads); PeakBytes
	// is its high watermark — the "memory consumption" column of the
	// paper's Figure 5.
	CurrentBytes int64
	PeakBytes    int64
	// TotalAppended counts every node ever buffered.
	TotalAppended int64
	// TotalPurged counts every node ever purged.
	TotalPurged int64

	// assigned/removed count role instances for the balance invariant.
	assigned map[int]int64
	removed  map[int]int64

	// pending holds deferred sign-offs (see PendingSignOffs).
	pending []pendingSignOff

	// DisableGC turns the purge step off. The projection-only baseline
	// engine (static analysis without dynamic buffer minimization) runs
	// with this set: roles are still tracked, nothing is ever freed.
	DisableGC bool

	// MaxNodes, when positive, is the node budget: the first allocation
	// that would push CurrentNodes past it trips the sticky breached
	// flag (see BudgetErr). The allocation itself still succeeds — the
	// engine checks BudgetErr at its next token boundary and aborts
	// gracefully, so enforcement costs one compare per node, not an
	// error path through the allocator.
	MaxNodes int64
	breached bool

	// Node arena: nodes are carved out of pooled slabs so that one
	// execution's node churn does not translate into one allocation per
	// buffered node. Slabs go back to the pool in Release. Node structs
	// stay valid (never recycled) for the whole run — purged nodes only
	// drop their payloads — so stale references behave exactly as with
	// individual allocations.
	slab     *nodeSlab
	slabUsed int
	slabs    []*nodeSlab
}

// slabSize is the number of nodes per arena slab (~32 KiB of Node
// structs).
const slabSize = 256

type nodeSlab [slabSize]Node

var slabPool = sync.Pool{New: func() any { return new(nodeSlab) }}

// newNode carves a zeroed node out of the current slab.
func (b *Buffer) newNode() *Node {
	if b.MaxNodes > 0 && b.CurrentNodes >= b.MaxNodes {
		b.breached = true
	}
	if b.slab == nil || b.slabUsed == slabSize {
		b.slab = slabPool.Get().(*nodeSlab)
		b.slabs = append(b.slabs, b.slab)
		b.slabUsed = 0
	}
	n := &b.slab[b.slabUsed]
	b.slabUsed++
	return n
}

// Release hands the buffer's node slabs back to the pool. It must only
// be called once no node of this buffer is referenced anymore — after
// the run's results have been extracted. The buffer is unusable
// afterwards (the root is poisoned so accidental reuse fails fast).
func (b *Buffer) Release() {
	for _, s := range b.slabs {
		*s = nodeSlab{}
		slabPool.Put(s)
	}
	b.slabs = nil
	b.slab = nil
	b.slabUsed = 0
	b.Root = nil
	b.pending = nil
}

// New returns an empty buffer containing only the (permanently pinned)
// virtual root.
func New() *Buffer {
	root := &Node{Kind: KindRoot, pins: 1, subtreeWeight: 1}
	return &Buffer{
		Root:     root,
		assigned: make(map[int]int64),
		removed:  make(map[int]int64),
	}
}

// BudgetErr returns nil while the buffer has stayed within MaxNodes,
// and an error wrapping ErrBudget once an allocation has crossed the
// budget. The flag is sticky: garbage collection dropping the
// population back under budget does not clear it, so a breach is
// reported even when the watermark only spiked.
func (b *Buffer) BudgetErr() error {
	if !b.breached {
		return nil
	}
	return fmt.Errorf("%w: %d nodes buffered, budget %d (peak %d)",
		ErrBudget, b.CurrentNodes, b.MaxNodes, b.PeakNodes)
}

// AssignedTotal returns the number of instances of role assigned so far.
func (b *Buffer) AssignedTotal(role int) int64 { return b.assigned[role] }

// RemovedTotal returns the number of instances of role removed so far.
func (b *Buffer) RemovedTotal(role int) int64 { return b.removed[role] }

// addWeight adjusts the subtreeWeight chain from n to the root.
func addWeight(n *Node, delta int64) {
	for p := n; p != nil; p = p.Parent {
		p.subtreeWeight += delta
	}
}

// addNodes adjusts the subtreeNodes chain from n to the root.
func addNodes(n *Node, delta int64) {
	for p := n; p != nil; p = p.Parent {
		p.subtreeNodes += delta
	}
}

// AppendElement buffers a new element under parent. The node starts
// open: it carries one pin until CloseNode is called, so it cannot be
// purged while its subtree is still streaming in.
func (b *Buffer) AppendElement(parent *Node, name string, attrs []event.Attr) *Node {
	n := b.newNode()
	n.Kind = KindElement
	n.Name = name
	n.Attrs = attrs
	n.Parent = parent
	n.pins = 1
	b.link(parent, n)
	addWeight(n, 1) // the open pin
	return n
}

// AppendText buffers a text node under parent. Text nodes are born
// closed and unpinned. The preprojector only buffers text that matched a
// projection path, so the caller must assign at least one role right
// after appending; a permanently role-less text node would violate the
// zero-weight-is-purged invariant.
func (b *Buffer) AppendText(parent *Node, text string) *Node {
	n := b.newNode()
	n.Kind = KindText
	n.Text = text
	n.Parent = parent
	n.Closed = true
	b.link(parent, n)
	return n
}

// nodeBytes estimates the resident size of a single buffered node:
// struct overhead plus payload strings.
func nodeBytes(n *Node) int64 {
	size := int64(128) // struct, links, role map headroom
	size += int64(len(n.Name) + len(n.Text))
	for _, a := range n.Attrs {
		size += int64(len(a.Name) + len(a.Value) + 32)
	}
	return size
}

func (b *Buffer) link(parent, n *Node) {
	n.subtreeNodes = 1
	n.bytes = nodeBytes(n)
	if parent.LastChild != nil {
		parent.LastChild.NextSib = n
		n.PrevSib = parent.LastChild
		parent.LastChild = n
	} else {
		parent.FirstChild = n
		parent.LastChild = n
	}
	addNodes(parent, 1)
	b.CurrentNodes++
	b.CurrentBytes += n.bytes
	b.TotalAppended++
	if b.CurrentNodes > b.PeakNodes {
		b.PeakNodes = b.CurrentNodes
	}
	if b.CurrentBytes > b.PeakBytes {
		b.PeakBytes = b.CurrentBytes
	}
}

// AssignRole adds one instance of role to n.
func (b *Buffer) AssignRole(n *Node, role int) {
	if n.roles == nil {
		n.roles = make(map[int]int, 2)
	}
	n.roles[role]++
	b.assigned[role]++
	addWeight(n, 1)
}

// RemoveRole removes count instances of role from n and garbage-collects.
// It panics if the node does not carry that many instances — that would
// be a sign-off placement bug, which the engine must never produce.
func (b *Buffer) RemoveRole(n *Node, role, count int) {
	if count == 0 {
		return
	}
	have := n.roles[role]
	if have < count {
		panic(fmt.Sprintf("buffer: removing %d×r%d from node <%s> carrying %d", count, role+1, n.Name, have))
	}
	if have == count {
		delete(n.roles, role)
	} else {
		n.roles[role] = have - count
	}
	b.removed[role] += int64(count)
	addWeight(n, -int64(count))
	b.collect(n)
}

// Pin protects n from purging (an evaluator reference such as the
// current for-loop binding). Pins nest.
func (b *Buffer) Pin(n *Node) {
	n.pins++
	addWeight(n, 1)
}

// Unpin releases a pin and garbage-collects.
func (b *Buffer) Unpin(n *Node) {
	if n.pins == 0 {
		panic("buffer: unpin of unpinned node")
	}
	n.pins--
	addWeight(n, -1)
	b.collect(n)
}

// CloseNode records the arrival of n's end tag and releases its open
// pin.
func (b *Buffer) CloseNode(n *Node) {
	if n.Closed {
		return
	}
	n.Closed = true
	b.Unpin(n)
}

// collect purges the largest purgeable subtree containing n: it climbs
// to the highest ancestor whose subtreeWeight is zero and unlinks it.
// This is the paper's active garbage collection, triggered by the
// reception of signOff statements (and by pin releases).
func (b *Buffer) collect(n *Node) {
	if b.DisableGC {
		return
	}
	if n.subtreeWeight != 0 || n.unlinked || !n.InBuffer() {
		return
	}
	victim := n
	for victim.Parent != nil && victim.Parent.Kind != KindRoot && victim.Parent.subtreeWeight == 0 {
		victim = victim.Parent
	}
	if victim.Kind == KindRoot {
		return
	}
	b.unlink(victim)
}

func (b *Buffer) unlink(n *Node) {
	parent := n.Parent
	if n.PrevSib != nil {
		n.PrevSib.NextSib = n.NextSib
	} else if parent != nil {
		parent.FirstChild = n.NextSib
	}
	if n.NextSib != nil {
		n.NextSib.PrevSib = n.PrevSib
	} else if parent != nil {
		parent.LastChild = n.PrevSib
	}
	if parent != nil {
		addNodes(parent, -n.subtreeNodes)
	}
	b.CurrentNodes -= n.subtreeNodes
	b.CurrentBytes -= releaseSubtree(n)
	b.TotalPurged += n.subtreeNodes
	n.Parent = nil
	n.PrevSib = nil
	n.NextSib = nil
}

// releaseSubtree sums the per-node size estimates of a purged subtree
// and releases each node's payload: name, text and attribute strings are
// dropped so the purged data becomes collectible immediately (the node
// structs themselves live in arena slabs until Buffer.Release). Every
// node is marked unlinked so stale references detect the purge without
// walking a parent chain. It runs once per purged subtree, so the total
// cost over a run is linear in the number of nodes ever buffered.
func releaseSubtree(n *Node) int64 {
	total := n.bytes
	for c := n.FirstChild; c != nil; {
		next := c.NextSib
		total += releaseSubtree(c)
		c = next
	}
	n.unlinked = true
	n.Name = ""
	n.Text = ""
	n.Attrs = nil
	n.roles = nil
	n.FirstChild = nil
	n.LastChild = nil
	n.PrevSib = nil
	n.NextSib = nil
	return total
}

// Dump renders the buffer tree with role annotations, reproducing the
// paper's Figure 1 pictures (e.g. "book{r3,r5,r6}"). roleName may be
// nil, in which case roles print as r1, r2, ...
func (b *Buffer) Dump(roleName func(int) string) string {
	var sb strings.Builder
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(n.label(roleName))
		sb.WriteString("\n")
		for c := n.FirstChild; c != nil; c = c.NextSib {
			rec(c, depth+1)
		}
	}
	rec(b.Root, 0)
	return sb.String()
}

// CheckInvariants verifies the structural accounting of the whole
// buffer; tests call it after every mutation sequence.
func (b *Buffer) CheckInvariants() error {
	var walk func(n *Node) (weight, nodes int64, err error)
	walk = func(n *Node) (int64, int64, error) {
		weight := int64(n.pins + n.RoleTotal())
		var nodes int64
		if n.Kind != KindRoot {
			nodes = 1
		}
		for c := n.FirstChild; c != nil; c = c.NextSib {
			if c.Parent != n {
				return 0, 0, fmt.Errorf("child %q has wrong parent", c.Name)
			}
			w, m, err := walk(c)
			if err != nil {
				return 0, 0, err
			}
			weight += w
			nodes += m
		}
		if weight != n.subtreeWeight {
			return 0, 0, fmt.Errorf("node %q subtreeWeight=%d, recomputed %d", n.Name, n.subtreeWeight, weight)
		}
		if n.subtreeNodes != nodes {
			return 0, 0, fmt.Errorf("node %q subtreeNodes=%d, recomputed %d", n.Name, n.subtreeNodes, nodes)
		}
		return weight, nodes, nil
	}
	_, nodes, err := walk(b.Root)
	if err != nil {
		return err
	}
	if nodes != b.CurrentNodes {
		return fmt.Errorf("CurrentNodes=%d, recomputed %d", b.CurrentNodes, nodes)
	}
	if !b.DisableGC {
		var zero func(n *Node) error
		zero = func(n *Node) error {
			if n.Kind != KindRoot && n.subtreeWeight == 0 {
				return fmt.Errorf("unpurged zero-weight node %q", n.Name)
			}
			for c := n.FirstChild; c != nil; c = c.NextSib {
				if err := zero(c); err != nil {
					return err
				}
			}
			return nil
		}
		if err := zero(b.Root); err != nil {
			return err
		}
	}
	return nil
}

// CheckBalance verifies assigned == removed for every role; valid only
// after evaluation has completed.
func (b *Buffer) CheckBalance() error {
	for role, a := range b.assigned {
		if r := b.removed[role]; r != a {
			return fmt.Errorf("role r%d: assigned %d, removed %d", role+1, a, r)
		}
	}
	for role, r := range b.removed {
		if a := b.assigned[role]; a != r {
			return fmt.Errorf("role r%d: removed %d, assigned %d", role+1, r, a)
		}
	}
	return nil
}

// Serialize writes the subtree of n to s (opening tag, content, closing
// tag; text nodes as character data).
func Serialize(n *Node, s event.Sink) {
	switch n.Kind {
	case KindText:
		s.Text(n.Text)
	case KindElement:
		s.StartElement(n.Name, n.Attrs)
		for c := n.FirstChild; c != nil; c = c.NextSib {
			Serialize(c, s)
		}
		s.EndElement(n.Name)
	case KindRoot:
		for c := n.FirstChild; c != nil; c = c.NextSib {
			Serialize(c, s)
		}
	}
}
