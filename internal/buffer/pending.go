package buffer

import "gcx/internal/xpath"

// pendingSignOff is a deferred sign-off: its base node's subtree was not
// fully read when the signOff statement executed, so the role removal
// waits until the close tag has arrived (DESIGN.md §3, "deferred mode").
// This timing reproduces the paper's Fig. 3(c) observation that 23 nodes
// are still buffered when </bib> is read.
type pendingSignOff struct {
	base *Node
	path xpath.Path
	role int
}

// SignOffNow removes one instance of role per derivation of path from
// base, for every matched node, and garbage-collects. It returns the
// number of instances removed. The caller must ensure that base's
// subtree is completely buffered (base.Closed), otherwise instances
// assigned to still-streaming nodes would be missed.
func (b *Buffer) SignOffNow(base *Node, path xpath.Path, role int) int {
	matches := Matches(base, path)
	total := 0
	for _, m := range matches {
		b.RemoveRole(m.Node, role, m.Count)
		total += m.Count
	}
	return total
}

// QueueSignOff registers a sign-off for later execution. If base is
// already closed it executes immediately.
func (b *Buffer) QueueSignOff(base *Node, path xpath.Path, role int) {
	if base.Closed {
		b.SignOffNow(base, path, role)
		return
	}
	b.pending = append(b.pending, pendingSignOff{base: base, path: path, role: role})
}

// DrainPending executes all queued sign-offs whose base subtree is now
// complete and returns how many were executed. The engine calls this
// after every blocking read and at end of evaluation.
func (b *Buffer) DrainPending() int {
	if len(b.pending) == 0 {
		return 0
	}
	executed := 0
	remaining := b.pending[:0]
	for _, p := range b.pending {
		if p.base.Closed {
			b.SignOffNow(p.base, p.path, p.role)
			executed++
		} else {
			remaining = append(remaining, p)
		}
	}
	b.pending = remaining
	return executed
}

// PendingCount returns the number of queued sign-offs.
func (b *Buffer) PendingCount() int { return len(b.pending) }
