// Package projection implements the GCX stream preprojector (paper
// Fig. 2): it reads the input token stream, matches every token against
// the projection paths derived by static analysis, and copies matched
// nodes — annotated with roles — into the buffer. Unmatched tokens are
// discarded on the fly, with a lookahead of one token.
//
// Matching is NFA-style: every open element carries a set of active
// items (role, next-step index, derivation count). Descendant-axis items
// propagate down the stack, which is how a single node can be assigned
// the same role several times (one per derivation), exactly as the
// paper's multiset role semantics requires.
package projection

import (
	"io"

	"gcx/internal/buffer"
	"gcx/internal/event"
	"gcx/internal/xpath"
)

// item is an active matching position: role's path has matched a prefix
// and expects Steps[step] next.
type item struct {
	role  int
	step  int
	count int
	// used is the shared first-witness latch for steps with FirstOnly:
	// all propagated copies of the item share it, so at most one node
	// per context is matched.
	used *bool
}

// frame is the matcher state of one open element.
type frame struct {
	name  string
	attrs []event.Attr
	// isRoot marks the virtual-root frame, which is matched by node()
	// tests only (never by name or wildcard tests).
	isRoot bool
	// node is the buffered node, or nil while the element is unmatched
	// (it may later be materialized as a skeleton ancestor).
	node  *buffer.Node
	items []item
}

// matchesSelf applies a node test to the frame's own node.
func (f *frame) matchesSelf(test xpath.Test) bool {
	if f.isRoot {
		return test.Kind == xpath.TestNode
	}
	return test.MatchesElement(f.name)
}

// Preprojector drives the tokenizer and fills the buffer.
type Preprojector struct {
	src   event.Source
	buf   *buffer.Buffer
	steps [][]xpath.Step // role id → compiled steps
	stack []frame
	eof   bool

	// dfa, when non-nil, enables projection-guided subtree skipping
	// (DESIGN.md §7): dfaStack carries one automaton state per open
	// frame, and a StartElement whose successor state is dead — no
	// projection path can match at or below it — is fast-forwarded at
	// byte level via Source.SkipSubtree instead of being matched
	// frame by frame.
	dfa      *xpath.Automaton
	dfaStack []int32

	// OnToken, if set, is invoked after every processed token — the
	// hook used to record the paper's buffer plots.
	OnToken func()

	// done is the per-token completion scratch, reused across tokens so
	// completing a role costs no allocation.
	done completion

	// itemsFree recycles popped frames' items backing arrays for the
	// next startElement. Descendant-axis items propagate to every child
	// frame, so without recycling each element start pays one slice
	// allocation — the dominant allocator on //-axis queries.
	itemsFree [][]item
}

// New builds a preprojector for the given role projection paths (role id
// = slice index). Roles with empty paths (the paper's r1, "/") are
// assigned to the virtual root immediately.
func New(src event.Source, buf *buffer.Buffer, rolePaths []xpath.Path) *Preprojector {
	p := &Preprojector{
		src:   src,
		buf:   buf,
		steps: make([][]xpath.Step, len(rolePaths)),
	}
	root := frame{node: buf.Root, isRoot: true}
	var done completion
	for role, path := range rolePaths {
		if path.EndsWithAttribute() {
			panic("projection: attribute step in projection path " + path.String())
		}
		p.steps[role] = path.Steps
		// Resolve leading self / descendant-or-self steps against the
		// virtual root so projection-side and buffer-side matching
		// agree (the root is matched by node() only).
		p.advance(&root, item{role: role, step: 0, count: 1}, &done)
	}
	for _, role := range done.roles {
		for i := 0; i < done.counts[role]; i++ {
			buf.AssignRole(buf.Root, role)
		}
	}
	p.stack = append(p.stack, root)
	return p
}

// EnableSkipping turns on byte-level subtree skipping driven by the
// given path automaton (compiled from the same role paths this
// preprojector matches — analysis.Plan.Automaton). It must be called
// before the first Step; a nil automaton leaves skipping off. Skipping
// never changes the buffered tree or the query output; it does change
// TokensProcessed, which stops counting tokens inside skipped
// subtrees, so measurement runs that record per-token buffer plots
// keep it disabled.
func (p *Preprojector) EnableSkipping(a *xpath.Automaton) {
	if a == nil {
		return
	}
	p.dfa = a
	p.dfaStack = append(p.dfaStack[:0], a.Start())
}

// TokensProcessed reports the number of input tokens consumed.
func (p *Preprojector) TokensProcessed() int64 { return p.src.TokenCount() }

// EOF reports whether the input is exhausted.
func (p *Preprojector) EOF() bool { return p.eof }

// Step processes exactly one input token. It returns false when the
// input is exhausted.
func (p *Preprojector) Step() (bool, error) {
	if p.eof {
		return false, nil
	}
	tok, err := p.src.Next()
	if err == io.EOF {
		p.eof = true
		return false, nil
	}
	if err != nil {
		return false, err
	}
	switch tok.Kind {
	case event.StartElement:
		if err := p.startElement(tok); err != nil {
			return false, err
		}
	case event.EndElement:
		p.endElement()
	case event.Text:
		p.text(tok)
	}
	if p.OnToken != nil {
		p.OnToken()
	}
	return true, nil
}

// Run processes tokens until EOF (used by the projection-only baseline
// and tests; the GCX engine pulls token by token instead).
func (p *Preprojector) Run() error {
	for {
		ok, err := p.Step()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
}

// completion accumulates roles completed at the current token. counts
// is indexed by role id and roles lists the touched ids in completion
// order, so iteration is deterministic and reset touches only what the
// token completed — no per-token map allocation.
type completion struct {
	counts []int
	roles  []int
}

func (c *completion) add(role, count int) {
	if role >= len(c.counts) {
		c.counts = append(c.counts, make([]int, role+1-len(c.counts))...)
	}
	if c.counts[role] == 0 {
		c.roles = append(c.roles, role)
	}
	c.counts[role] += count
}

func (c *completion) reset() {
	for _, r := range c.roles {
		c.counts[r] = 0
	}
	c.roles = c.roles[:0]
}

func (p *Preprojector) startElement(tok event.Token) error {
	var dfaNext int32
	if p.dfa != nil {
		// Static dead-state test: a single table lookup decides subtree
		// relevance before any per-item test re-evaluation happens.
		dfaNext = p.dfa.Next(p.dfaStack[len(p.dfaStack)-1], tok.Name)
		if p.dfa.Dead(dfaNext) {
			return p.src.SkipSubtree()
		}
	}
	parent := &p.stack[len(p.stack)-1]
	nf := frame{name: tok.Name, attrs: tok.Attrs}
	if n := len(p.itemsFree); n > 0 {
		nf.items = p.itemsFree[n-1]
		p.itemsFree = p.itemsFree[:n-1]
	}
	done := &p.done
	done.reset()

	for i := range parent.items {
		it := &parent.items[i]
		step := p.steps[it.role][it.step]
		switch step.Axis {
		case xpath.Child:
			if step.FirstOnly && *it.used {
				continue
			}
			if step.Test.MatchesElement(tok.Name) {
				if step.FirstOnly {
					*it.used = true
				}
				p.advance(&nf, item{role: it.role, step: it.step + 1, count: it.count}, done)
			}
		case xpath.Descendant, xpath.DescendantOrSelf:
			// The self part of descendant-or-self was consumed when the
			// item was created (see advance); for children both axes
			// search the whole remaining subtree.
			if step.FirstOnly && *it.used {
				continue
			}
			// keep searching deeper
			nf.items = append(nf.items, *it)
			if step.Test.MatchesElement(tok.Name) {
				if step.FirstOnly {
					*it.used = true
				}
				p.advance(&nf, item{role: it.role, step: it.step + 1, count: it.count}, done)
			}
		default:
			// Self axis items are resolved eagerly in advance; Attribute
			// never occurs in projection paths.
		}
	}

	if len(done.roles) > 0 {
		nf.node = p.materialize(tok.Name, tok.Attrs)
		for _, role := range done.roles {
			for i := 0; i < done.counts[role]; i++ {
				p.buf.AssignRole(nf.node, role)
			}
		}
	} else if p.dfa != nil && len(nf.items) == 0 {
		// Dynamic dead test: the automaton over-approximates (it
		// ignores first-witness [1] latches), so an element can be
		// statically alive yet carry no active items and no completed
		// role — nothing below it can match either. Skip it too.
		return p.src.SkipSubtree()
	}
	p.stack = append(p.stack, nf)
	if p.dfa != nil {
		p.dfaStack = append(p.dfaStack, dfaNext)
	}
	return nil
}

// advance places item it into frame nf, resolving steps that can match
// the frame's own node without consuming input (Self and the self part
// of DescendantOrSelf). Completed roles are recorded in done.
func (p *Preprojector) advance(nf *frame, it item, done *completion) {
	steps := p.steps[it.role]
	if it.step >= len(steps) {
		// Path fully matched: the role completes at this node.
		done.add(it.role, it.count)
		return
	}
	step := steps[it.step]
	if step.FirstOnly && it.used == nil {
		it.used = new(bool)
	}
	switch step.Axis {
	case xpath.Self:
		if nf.matchesSelf(step.Test) {
			p.advance(nf, item{role: it.role, step: it.step + 1, count: it.count}, done)
		}
	case xpath.DescendantOrSelf:
		// self part now …
		if nf.matchesSelf(step.Test) {
			if step.FirstOnly {
				*it.used = true
			}
			p.advance(nf, item{role: it.role, step: it.step + 1, count: it.count}, done)
		}
		// … and the descendant part stays active for the children.
		if !(step.FirstOnly && *it.used) {
			nf.items = append(nf.items, it)
		}
	default:
		nf.items = append(nf.items, it)
	}
}

func (p *Preprojector) endElement() {
	top := p.stack[len(p.stack)-1]
	p.stack = p.stack[:len(p.stack)-1]
	if p.dfa != nil {
		p.dfaStack = p.dfaStack[:len(p.dfaStack)-1]
	}
	if top.items != nil {
		// Frames never share items backing arrays (advance copies item
		// values), so the popped frame's array can serve the next
		// startElement.
		p.itemsFree = append(p.itemsFree, top.items[:0])
	}
	if top.node != nil {
		p.buf.CloseNode(top.node)
	}
}

func (p *Preprojector) text(tok event.Token) {
	top := &p.stack[len(p.stack)-1]
	done := &p.done
	done.reset()
	for i := range top.items {
		it := &top.items[i]
		steps := p.steps[it.role]
		step := steps[it.step]
		if step.FirstOnly && *it.used {
			continue
		}
		switch step.Axis {
		case xpath.Child, xpath.Descendant, xpath.DescendantOrSelf:
			// Text nodes are leaves, so the role completes here only if
			// any remaining steps are satisfied by the text node itself
			// (self / descendant-or-self tails, as in
			// …/text()/descendant-or-self::node()).
			if step.Test.MatchesText() && textTail(steps, it.step+1) {
				if step.FirstOnly {
					*it.used = true
				}
				done.add(it.role, it.count)
			}
		}
	}
	if len(done.roles) == 0 {
		return
	}
	parent := p.materializeStack()
	n := p.buf.AppendText(parent, tok.Text)
	for _, role := range done.roles {
		for i := 0; i < done.counts[role]; i++ {
			p.buf.AssignRole(n, role)
		}
	}
}

// textTail reports whether the remaining steps can all be consumed by a
// text node without moving: each must be a self or descendant-or-self
// step whose test matches text. This mirrors the buffer-side evaluation,
// where descendant-or-self from a leaf matches the leaf itself.
func textTail(steps []xpath.Step, from int) bool {
	for _, s := range steps[from:] {
		if s.Axis != xpath.Self && s.Axis != xpath.DescendantOrSelf {
			return false
		}
		if !s.Test.MatchesText() {
			return false
		}
	}
	return true
}

// materialize returns the buffer node for a new element completing a
// role: it ensures all open ancestors are buffered (creating role-less
// skeleton nodes as needed to preserve tree structure) and appends the
// element itself.
func (p *Preprojector) materialize(name string, attrs []event.Attr) *buffer.Node {
	parent := p.materializeStack()
	return p.buf.AppendElement(parent, name, attrs)
}

// materializeStack ensures every open element on the stack has a buffer
// node and returns the innermost one.
func (p *Preprojector) materializeStack() *buffer.Node {
	// find deepest already-materialized ancestor
	i := len(p.stack) - 1
	for p.stack[i].node == nil {
		i--
	}
	for j := i + 1; j < len(p.stack); j++ {
		p.stack[j].node = p.buf.AppendElement(p.stack[j-1].node, p.stack[j].name, p.stack[j].attrs)
	}
	return p.stack[len(p.stack)-1].node
}
