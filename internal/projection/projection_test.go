package projection

import (
	"strings"
	"testing"

	"gcx/internal/buffer"
	"gcx/internal/xmltok"
	"gcx/internal/xpath"
)

// paperRoles builds the seven projection paths of the paper's running
// example (§2), in paper order: r1=/, r2=/bib, r3=/bib/*,
// r4=/bib/*/price[1], r5=/bib/*/descendant-or-self::node(),
// r6=/bib/book, r7=/bib/book/title/descendant-or-self::node().
func paperRoles() []xpath.Path {
	bib := xpath.ChildStep("bib")
	star := xpath.WildcardStep()
	price1 := xpath.Step{Axis: xpath.Child, Test: xpath.Test{Kind: xpath.TestName, Name: "price"}, FirstOnly: true}
	book := xpath.ChildStep("book")
	title := xpath.ChildStep("title")
	dos := xpath.DescendantOrSelfNodeStep()
	return []xpath.Path{
		{},                               // r1
		{Steps: []xpath.Step{bib}},       // r2
		{Steps: []xpath.Step{bib, star}}, // r3
		{Steps: []xpath.Step{bib, star, price1}},
		{Steps: []xpath.Step{bib, star, dos}},
		{Steps: []xpath.Step{bib, book}},
		{Steps: []xpath.Step{bib, book, title, dos}},
	}
}

func project(t *testing.T, doc string, roles []xpath.Path) *buffer.Buffer {
	t.Helper()
	buf := buffer.New()
	p := New(xmltok.NewTokenizer(strings.NewReader(doc)), buf, roles)
	if err := p.Run(); err != nil {
		t.Fatalf("projection failed: %v", err)
	}
	if err := buf.CheckInvariants(); err != nil {
		t.Fatalf("invariants after projection: %v\n%s", err, buf.Dump(nil))
	}
	return buf
}

// findChild returns the i-th element child named name.
func findChild(n *buffer.Node, name string, idx int) *buffer.Node {
	count := 0
	for c := n.FirstChild; c != nil; c = c.NextSib {
		if c.Kind == buffer.KindElement && c.Name == name {
			if count == idx {
				return c
			}
			count++
		}
	}
	return nil
}

// TestPaperFigure1RoleAssignment reproduces Figure 1(a): projecting
// <bib><book><title/><author/></book> with the example's roles yields
// bib{r2}, book{r3,r5,r6}, title{r5,r7}, author{r5}.
func TestPaperFigure1RoleAssignment(t *testing.T) {
	buf := project(t, `<bib><book><title/><author/></book></bib>`, paperRoles())
	if buf.Root.RoleCount(0) != 1 {
		t.Error("virtual root should carry r1")
	}
	bib := findChild(buf.Root, "bib", 0)
	if bib == nil || bib.RoleCount(1) != 1 || bib.RoleTotal() != 1 {
		t.Fatalf("bib roles wrong: %v", bib.Roles())
	}
	book := findChild(bib, "book", 0)
	if book == nil {
		t.Fatal("book not buffered")
	}
	for _, role := range []int{2, 4, 5} { // r3, r5, r6
		if book.RoleCount(role) != 1 {
			t.Errorf("book missing r%d", role+1)
		}
	}
	if book.RoleTotal() != 3 {
		t.Errorf("book role total = %d, want 3", book.RoleTotal())
	}
	title := findChild(book, "title", 0)
	if title == nil || title.RoleCount(4) != 1 || title.RoleCount(6) != 1 || title.RoleTotal() != 2 {
		t.Fatalf("title roles wrong: %v", title.Roles())
	}
	author := findChild(book, "author", 0)
	if author == nil || author.RoleCount(4) != 1 || author.RoleTotal() != 1 {
		t.Fatalf("author roles wrong: %v", author.Roles())
	}
	// 4 buffered nodes: bib, book, title, author.
	if buf.CurrentNodes != 4 {
		t.Fatalf("CurrentNodes = %d, want 4", buf.CurrentNodes)
	}
}

// TestFirstWitnessOnlyFirstPrice checks r4's [1] predicate: only the
// first price child per /bib/* node receives r4.
func TestFirstWitnessOnlyFirstPrice(t *testing.T) {
	buf := project(t, `<bib><book><price>1</price><price>2</price></book><article><price>3</price></article></bib>`, paperRoles())
	bib := findChild(buf.Root, "bib", 0)
	book := findChild(bib, "book", 0)
	p0 := findChild(book, "price", 0)
	p1 := findChild(book, "price", 1)
	if p0.RoleCount(3) != 1 {
		t.Error("first price must carry r4")
	}
	if p1.RoleCount(3) != 0 {
		t.Error("second price must not carry r4")
	}
	art := findChild(bib, "article", 0)
	ap := findChild(art, "price", 0)
	if ap.RoleCount(3) != 1 {
		t.Error("the [1] latch is per context node: article's price gets r4")
	}
}

// TestUnmatchedNodesNotBuffered: tokens outside all projection paths are
// discarded.
func TestUnmatchedNodesNotBuffered(t *testing.T) {
	roles := []xpath.Path{
		{Steps: []xpath.Step{xpath.ChildStep("site")}},
		{Steps: []xpath.Step{xpath.ChildStep("site"), xpath.ChildStep("people")}},
	}
	buf := project(t, `<site><regions><item/><item/></regions><people/></site>`, roles)
	if buf.TotalAppended != 2 {
		t.Fatalf("TotalAppended = %d, want 2 (site, people)\n%s", buf.TotalAppended, buf.Dump(nil))
	}
	site := findChild(buf.Root, "site", 0)
	if findChild(site, "regions", 0) != nil {
		t.Fatal("regions should not be buffered")
	}
}

// TestSkeletonMaterialization: a deep match forces role-less structural
// ancestors into the buffer, which die with their matched descendants.
func TestSkeletonMaterialization(t *testing.T) {
	roles := []xpath.Path{
		{Steps: []xpath.Step{
			xpath.ChildStep("a"),
			{Axis: xpath.Descendant, Test: xpath.Test{Kind: xpath.TestName, Name: "c"}},
		}},
	}
	buf := project(t, `<a><skel1><skel2><c/></skel2></skel1></a>`, roles)
	a := findChild(buf.Root, "a", 0)
	if a == nil {
		t.Fatal("a not buffered")
	}
	s1 := findChild(a, "skel1", 0)
	if s1 == nil {
		t.Fatal("skeleton ancestor skel1 missing")
	}
	if s1.RoleTotal() != 0 {
		t.Fatal("skeleton must carry no roles")
	}
	s2 := findChild(s1, "skel2", 0)
	c := findChild(s2, "c", 0)
	if c == nil || c.RoleCount(0) != 1 {
		t.Fatal("c must be buffered with the role")
	}
	// Removing c's role purges the whole skeleton chain.
	buf.RemoveRole(c, 0, 1)
	if a.InBuffer() {
		// a itself carried only role-lessness + closedness
		t.Fatal("skeleton chain should be purged with c")
	}
	if buf.CurrentNodes != 0 {
		t.Fatalf("CurrentNodes = %d, want 0", buf.CurrentNodes)
	}
}

// TestDescendantMultiplicity: nested matches yield multiple instances of
// the same role on one node (paper §2).
func TestDescendantMultiplicity(t *testing.T) {
	roles := []xpath.Path{
		{Steps: []xpath.Step{
			{Axis: xpath.Descendant, Test: xpath.Test{Kind: xpath.TestName, Name: "s"}},
			xpath.DescendantOrSelfNodeStep(),
		}},
	}
	buf := project(t, `<doc><s><s><x/></s></s></doc>`, roles)
	doc := findChild(buf.Root, "doc", 0)
	s1 := findChild(doc, "s", 0)
	s2 := findChild(s1, "s", 0)
	x := findChild(s2, "x", 0)
	if s1.RoleCount(0) != 1 {
		t.Errorf("outer s count = %d, want 1", s1.RoleCount(0))
	}
	if s2.RoleCount(0) != 2 {
		t.Errorf("inner s count = %d, want 2 (self + descendant of outer)", s2.RoleCount(0))
	}
	if x.RoleCount(0) != 2 {
		t.Errorf("x count = %d, want 2", x.RoleCount(0))
	}
	// Buffer-side evaluation agrees with projection-side assignment:
	removed := buf.SignOffNow(buf.Root, roles[0], 0)
	if removed != 5 {
		t.Fatalf("sign-off removed %d instances, want 5 (1+2+2)", removed)
	}
	if err := buf.CheckBalance(); err != nil {
		t.Fatal(err)
	}
}

// TestTextProjection: text nodes are buffered only when a final step
// matches them.
func TestTextProjection(t *testing.T) {
	roles := []xpath.Path{
		{Steps: []xpath.Step{xpath.ChildStep("a")}}, // element only
		{Steps: []xpath.Step{xpath.ChildStep("a"), xpath.ChildStep("name"), {Axis: xpath.Child, Test: xpath.Test{Kind: xpath.TestText}}}}, // text()
		{Steps: []xpath.Step{xpath.ChildStep("a"), xpath.ChildStep("name")}},
	}
	buf := project(t, `<a>loose<name>kept</name></a>`, roles)
	a := findChild(buf.Root, "a", 0)
	// "loose" is not matched by any path → not buffered.
	for c := a.FirstChild; c != nil; c = c.NextSib {
		if c.Kind == buffer.KindText {
			t.Fatalf("unmatched text %q buffered", c.Text)
		}
	}
	name := findChild(a, "name", 0)
	txt := name.FirstChild
	if txt == nil || txt.Kind != buffer.KindText || txt.Text != "kept" {
		t.Fatal("matched text missing")
	}
	if txt.RoleCount(1) != 1 {
		t.Fatal("text role missing")
	}
}

// TestRootRoleAndKeepAllPath: the keep-all path /descendant-or-self::
// node() (the "no projection" ablation) buffers every node, and the
// virtual root receives the role too — consistently with buffer-side
// evaluation, so the final sign-off balances.
func TestRootRoleAndKeepAllPath(t *testing.T) {
	keepAll := []xpath.Path{{Steps: []xpath.Step{xpath.DescendantOrSelfNodeStep()}}}
	doc := `<a><b>t1</b><c><d/>t2</c></a>`
	buf := project(t, doc, keepAll)
	// nodes: a, b, t1, c, d, t2 = 6
	if buf.CurrentNodes != 6 {
		t.Fatalf("CurrentNodes = %d, want 6\n%s", buf.CurrentNodes, buf.Dump(nil))
	}
	if buf.Root.RoleCount(0) != 1 {
		t.Fatal("root must carry the keep-all role (matched by self part)")
	}
	removed := buf.SignOffNow(buf.Root, keepAll[0], 0)
	if removed != 7 {
		t.Fatalf("removed %d, want 7 (6 nodes + root)", removed)
	}
	if err := buf.CheckBalance(); err != nil {
		t.Fatal(err)
	}
	if buf.CurrentNodes != 0 {
		t.Fatal("buffer should be empty")
	}
}

// TestAttributesTravelWithElements: attributes are stored on buffered
// nodes without needing roles of their own.
func TestAttributesTravelWithElements(t *testing.T) {
	roles := []xpath.Path{{Steps: []xpath.Step{xpath.ChildStep("p")}}}
	buf := project(t, `<p id="p1" income="95000"/>`, roles)
	p := findChild(buf.Root, "p", 0)
	if v, ok := p.Attr("id"); !ok || v != "p1" {
		t.Fatal("attribute id missing")
	}
	if v, ok := p.Attr("income"); !ok || v != "95000" {
		t.Fatal("attribute income missing")
	}
}

// TestBufferPlotShape replays the Fig. 3 document prefix and verifies
// token accounting.
func TestTokenAccounting(t *testing.T) {
	var b strings.Builder
	b.WriteString("<bib>")
	for i := 0; i < 10; i++ {
		b.WriteString("<book><author/><title/><price/></book>")
	}
	b.WriteString("</bib>")
	buf := buffer.New()
	p := New(xmltok.NewTokenizer(strings.NewReader(b.String())), buf, paperRoles())
	ticks := 0
	p.OnToken = func() { ticks++ }
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if ticks != 82 || p.TokensProcessed() != 82 {
		t.Fatalf("tokens = %d/%d, want 82", ticks, p.TokensProcessed())
	}
	if !p.EOF() {
		t.Fatal("EOF not reported")
	}
	// every node matched (books match r3/r5/r6, children r5, etc.)
	if buf.CurrentNodes != 41 {
		t.Fatalf("CurrentNodes = %d, want 41", buf.CurrentNodes)
	}
}

// TestStepByStepProcessing: Step processes exactly one token.
func TestStepByStepProcessing(t *testing.T) {
	buf := buffer.New()
	p := New(xmltok.NewTokenizer(strings.NewReader(`<bib><book/></bib>`)), buf, paperRoles())
	counts := []int64{}
	for {
		ok, err := p.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		counts = append(counts, buf.CurrentNodes)
	}
	// <bib> → 1 node, <book> → 2, </book> → 2, </bib> → 2
	want := []int64{1, 2, 2, 2}
	if len(counts) != len(want) {
		t.Fatalf("processed %d tokens, want %d", len(counts), len(want))
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("after token %d: %d nodes, want %d", i+1, counts[i], want[i])
		}
	}
	// further Steps keep returning false
	if ok, _ := p.Step(); ok {
		t.Fatal("Step after EOF should return false")
	}
}
