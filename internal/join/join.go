// Package join implements the streaming join operator behind the
// analysis.JoinInfo plan node (DESIGN.md §10). The engine drives it in
// one pass over the input:
//
//   - each probe binding's output events are captured into a Group —
//     head events before the build loop's splice point, tail events
//     after it — keyed by the probe side's join-key values;
//   - the build side, still resident in the buffer at end of input
//     (its hoisted sign-offs run only after the output wrapper), is
//     scanned once into a Table: a keyed hash index over captured
//     per-tuple payload events;
//   - the groups replay in probe document order with the matching
//     payloads spliced in build document order — exactly the event
//     sequence nested-loop evaluation would have produced, in
//     O(probe + build + matches) instead of O(probe × build).
//
// Comparison semantics are the engine's existential string equality
// (evalCompare with two path operands and no numeric literal): a probe
// binding matches a build tuple iff their key-value sets intersect, so
// a hash table over exact string keys is precise, not approximate.
package join

import (
	"sort"

	"gcx/internal/buffer"
	"gcx/internal/event"
)

type opKind uint8

const (
	opStart opKind = iota
	opEnd
	opText
)

// Op is one captured output event.
type Op struct {
	kind  opKind
	name  string
	text  string
	attrs []event.Attr
}

// Capture is an event.Sink that records emitted events instead of
// serializing them, for later Replay. BytesWritten reports 0: output
// bytes are accounted when the events replay into the real sink.
type Capture struct {
	ops []Op
}

// NewCapture returns an empty capture sink.
func NewCapture() *Capture { return &Capture{} }

func (c *Capture) StartElement(name string, attrs []event.Attr) {
	c.ops = append(c.ops, Op{kind: opStart, name: name, attrs: attrs})
}

func (c *Capture) EndElement(name string) {
	c.ops = append(c.ops, Op{kind: opEnd, name: name})
}

func (c *Capture) Text(text string) {
	c.ops = append(c.ops, Op{kind: opText, text: text})
}

func (c *Capture) Flush() error        { return nil }
func (c *Capture) BytesWritten() int64 { return 0 }
func (c *Capture) Release()            {}

// Mark returns the current event count — the splice position recorded
// when the probe body reaches the build loop.
func (c *Capture) Mark() int { return len(c.ops) }

// Take returns the captured events and resets the capture.
func (c *Capture) Take() []Op {
	ops := c.ops
	c.ops = nil
	return ops
}

// Replay feeds recorded events into sink.
func Replay(ops []Op, sink event.Sink) {
	for i := range ops {
		op := &ops[i]
		switch op.kind {
		case opStart:
			sink.StartElement(op.name, op.attrs)
		case opEnd:
			sink.EndElement(op.name)
		case opText:
			sink.Text(op.text)
		}
	}
}

// Group is one probe binding's captured output: Head replays before the
// matched build payloads, Tail after. Splice is false when the build
// loop never executed for this binding (it sat under a false condition)
// — then no payloads are emitted regardless of key matches.
type Group struct {
	Keys   []string
	Head   []Op
	Tail   []Op
	Splice bool
}

// Table is the materialized build side: per-tuple payload events plus a
// hash index from key value to the tuples carrying it.
type Table struct {
	payloads [][]Op
	index    map[string][]int
}

// NewTable returns an empty build table.
func NewTable() *Table { return &Table{index: make(map[string][]int)} }

// Add appends one build tuple with its key-value set and captured
// payload. Duplicate key values within one tuple index it only once.
func (t *Table) Add(keys []string, payload []Op) {
	i := len(t.payloads)
	t.payloads = append(t.payloads, payload)
	for ki, k := range keys {
		dup := false
		for _, prev := range keys[:ki] {
			if prev == k {
				dup = true
				break
			}
		}
		if !dup {
			t.index[k] = append(t.index[k], i)
		}
	}
}

// Len reports the number of build tuples added.
func (t *Table) Len() int { return len(t.payloads) }

// Payload returns tuple i's captured events.
func (t *Table) Payload(i int) []Op { return t.payloads[i] }

// Match returns the distinct tuples whose key sets intersect keys, in
// build document order — the order nested evaluation emits matches in.
func (t *Table) Match(keys []string) []int {
	if len(keys) == 1 {
		return t.index[keys[0]] // already sorted and distinct
	}
	var out []int
	seen := map[int]bool{}
	for _, k := range keys {
		for _, i := range t.index[k] {
			if !seen[i] {
				seen[i] = true
				out = append(out, i)
			}
		}
	}
	sort.Ints(out)
	return out
}

// Tuples drives the build-side scan: next yields build bindings in
// document order (pass nil to start; nil ends the scan), poll is the
// engine's cancellation check and fn processes one tuple. The loop
// polls between tuples because a large build side is processed without
// pulling input (the per-token poll inside ensure never runs here).
func Tuples(next func(prev *buffer.Node) *buffer.Node, poll func() error, fn func(*buffer.Node) error) error {
	cur := next(nil)
	for cur != nil {
		if err := poll(); err != nil {
			return err
		}
		if err := fn(cur); err != nil {
			return err
		}
		cur = next(cur)
	}
	return nil
}
