package engine

import (
	"io"

	"gcx/internal/analysis"
	"gcx/internal/xmltok"
)

// newXML is a test shim: the production engine is format-neutral (it
// sees only event.Source/event.Sink), so tests that run over literal
// XML documents build the xmltok front-end pair here.
func newXML(plan *analysis.Plan, r io.Reader, w io.Writer, cfg Config) *Engine {
	return New(plan, xmltok.NewTokenizer(r), xmltok.NewSerializer(w), cfg)
}
