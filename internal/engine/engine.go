// Package engine implements the GCX runtime (paper Fig. 2): the
// sequential, pull-based query evaluator on top of the buffer manager
// and the stream preprojector.
//
// The evaluator walks the rewritten query. Whenever it needs data that
// is not yet buffered — the next binding of a for-loop variable, the
// witness of an existence condition, a subtree to emit — it blocks on
// the buffer manager (ensure), which pulls tokens through the
// preprojector until the demand is satisfiable or the input is
// exhausted. signOff statements trigger role removal and, with it, the
// active garbage collection of the buffer.
package engine

import (
	"context"
	"errors"
	"fmt"
	"time"

	"gcx/internal/analysis"
	"gcx/internal/buffer"
	"gcx/internal/event"
	"gcx/internal/obs"
	"gcx/internal/projection"
	"gcx/internal/stats"
	"gcx/internal/xpath"
	"gcx/internal/xqast"
	"gcx/internal/xqvalue"
)

// SignOffMode selects when a signOff on a still-streaming subtree takes
// effect (DESIGN.md §3).
type SignOffMode uint8

const (
	// Deferred queues such sign-offs until the subtree's close tag has
	// been read (default; reproduces the paper's Fig. 3(c) timing).
	Deferred SignOffMode = iota
	// Eager forces the buffer manager to read to the subtree's end
	// first, then removes immediately (purges earlier, reads no more
	// input overall).
	Eager
)

// Config tunes an engine run.
type Config struct {
	SignOffMode SignOffMode
	// DisableGC runs static projection without dynamic buffer
	// minimization: roles are tracked but nothing is purged. This is
	// the projection-only baseline engine of the Fig. 5 comparison.
	DisableGC bool
	// EnableAggregation permits the count() aggregation extension.
	EnableAggregation bool
	// DisableSkip turns off projection-guided byte-level subtree
	// skipping (DESIGN.md §7) for this run; output is identical either
	// way. Skipping is also disabled implicitly when a Recorder is set,
	// because skipped subtrees do not count into the per-token buffer
	// plots.
	DisableSkip bool
	// MaxBufferedNodes, when positive, is the run's node budget: the
	// first buffered node pushing the population past it aborts the run
	// within one token, returning an error wrapping buffer.ErrBudget
	// together with the partial statistics. Zero means unlimited.
	MaxBufferedNodes int64
	// DisableJoin runs detected join plans through nested-loop
	// evaluation instead of the internal/join operator (ablation and
	// differential testing; output is identical either way).
	DisableJoin bool
	// Recorder, if non-nil, samples the buffer size per input token.
	Recorder *stats.Recorder
	// Timer, if non-nil, accumulates per-phase wall time (DESIGN.md
	// §11): ensure's pull loop into PhaseStream, the join operator's
	// scan and replay into PhaseJoinBuild/PhaseJoinProbe. A nil Timer
	// is the default and costs nothing on the hot path.
	Timer *obs.Timer
}

// Result reports the run statistics the paper's evaluation uses.
type Result struct {
	// TokensProcessed is the number of input tokens delivered to the
	// preprojector; tokens inside skipped subtrees (DESIGN.md §7) are
	// never produced and not counted — BytesSkipped/TagsSkipped report
	// the fast-forwarded remainder.
	TokensProcessed int64
	// PeakBufferedNodes is the high watermark of buffered XML nodes.
	PeakBufferedNodes int64
	// PeakBufferedBytes estimates the memory high watermark.
	PeakBufferedBytes int64
	// FinalBufferedNodes is the number of nodes left after evaluation
	// (0 for GCX; the whole projected document for the no-GC baseline).
	FinalBufferedNodes int64
	// TotalAppended / TotalPurged count buffer churn.
	TotalAppended int64
	TotalPurged   int64
	// OutputBytes is the size of the serialized result.
	OutputBytes int64
	// BytesSkipped is the number of input bytes the preprojector
	// fast-forwarded past at byte level (projection-guided subtree
	// skipping, DESIGN.md §7) without tokenizing.
	BytesSkipped int64
	// TagsSkipped counts element tags inside skipped subtrees — a lower
	// bound on the tokens saved (skipped text runs are not counted).
	TagsSkipped int64
	// SubtreesSkipped counts SkipSubtree fast-forwards.
	SubtreesSkipped int64
	// JoinProbeTuples / JoinBuildTuples / JoinMatches report the
	// streaming join operator's work: probe bindings captured, build
	// tuples materialized into the hash table, and payload emissions.
	// All zero when the plan has no join or the operator is disabled.
	JoinProbeTuples int64
	JoinBuildTuples int64
	JoinMatches     int64
}

// Engine evaluates one compiled query over one input event stream. It
// is format-agnostic: the Source and Sink given to New are the only
// places a concrete syntax (XML, JSON) exists — everything in here
// operates on the event vocabulary of internal/event.
type Engine struct {
	plan *analysis.Plan
	cfg  Config
	buf  *buffer.Buffer
	src  event.Source
	proj *projection.Preprojector
	out  event.Sink
	ctx  context.Context
	// done caches ctx.Done() so the per-step cancellation check in
	// ensure is a lock-free channel poll.
	done <-chan struct{}
	// join is the streaming join operator's run state when the plan
	// carries a detected join and Config.DisableJoin is off; nil
	// otherwise (then detected joins run nested-loop).
	join *joinRun
	// inSpan marks that a trace span is open, so nested timed sections
	// (ensure calls inside the join operator's scan) attribute to the
	// enclosing phase instead of double-counting.
	inSpan bool
}

// New builds an engine instance for a single run over the given event
// source, writing the result through sink. The caller (internal/core)
// picks the concrete source and sink for the run's input and output
// format and remains responsible for releasing them after the engine's
// Release.
func New(plan *analysis.Plan, src event.Source, sink event.Sink, cfg Config) *Engine {
	buf := buffer.New()
	buf.DisableGC = cfg.DisableGC
	buf.MaxNodes = cfg.MaxBufferedNodes
	proj := projection.New(src, buf, plan.RolePaths())
	if !cfg.DisableSkip && cfg.Recorder == nil {
		proj.EnableSkipping(plan.Automaton)
	}
	e := &Engine{
		plan: plan,
		cfg:  cfg,
		buf:  buf,
		src:  src,
		proj: proj,
		out:  sink,
	}
	if cfg.Recorder != nil {
		rec := cfg.Recorder
		proj.OnToken = func() {
			rec.Record(proj.TokensProcessed(), buf.CurrentNodes, buf.CurrentBytes)
		}
	}
	if plan.Join != nil && !cfg.DisableJoin {
		e.join = &joinRun{info: plan.Join}
	}
	return e
}

// Buffer exposes the underlying buffer (tests and the -explain tooling
// inspect it; external callers use Result).
func (e *Engine) Buffer() *buffer.Buffer { return e.buf }

// Run evaluates the query to completion.
func (e *Engine) Run() (*Result, error) {
	return e.RunContext(context.Background())
}

// RunContext evaluates the query to completion under ctx. Cancellation
// is observed at every token-pull boundary — both here, before each
// preprojector step, and inside the tokenizer — so the run aborts within
// one token of ctx being cancelled and returns ctx.Err().
//
// A node-budget breach (Config.MaxBufferedNodes) returns the partial
// run statistics alongside the buffer.ErrBudget-wrapping error, so
// callers can report how far the run got before degrading.
func (e *Engine) RunContext(ctx context.Context) (*Result, error) {
	err := e.run(ctx)
	if err != nil {
		if errors.Is(err, buffer.ErrBudget) {
			return e.snapshot(), err
		}
		return nil, err
	}
	return e.snapshot(), nil
}

func (e *Engine) run(ctx context.Context) error {
	e.ctx = ctx
	e.done = ctx.Done()
	e.src.SetContext(ctx)
	if e.plan.UsesAggregation && !e.cfg.EnableAggregation {
		return fmt.Errorf("engine: query uses the aggregation extension (count/sum/min/max/avg); enable it explicitly — the paper fragment excludes aggregation")
	}
	env := map[string]*buffer.Node{xqast.RootVar: e.buf.Root}
	if err := e.eval(e.plan.Rewritten.Body, env); err != nil {
		return err
	}
	// Epilogue: consume the remaining input. The paper's engines read
	// the complete stream (Fig. 5 times scale with document size even
	// for early-answer queries like Q1); it also lets deferred
	// sign-offs queued on still-open ancestors settle, establishing the
	// assignment/removal balance.
	if err := e.ensure(func() bool { return false }); err != nil {
		return err
	}
	e.buf.DrainPending()
	return e.out.Flush()
}

// snapshot captures the run statistics at the current state — the final
// result of a clean run, the partial result of a budget breach.
func (e *Engine) snapshot() *Result {
	skip := e.src.SkipStats()
	res := &Result{
		TokensProcessed:    e.proj.TokensProcessed(),
		PeakBufferedNodes:  e.buf.PeakNodes,
		PeakBufferedBytes:  e.buf.PeakBytes,
		FinalBufferedNodes: e.buf.CurrentNodes,
		TotalAppended:      e.buf.TotalAppended,
		TotalPurged:        e.buf.TotalPurged,
		OutputBytes:        e.out.BytesWritten(),
		BytesSkipped:       skip.BytesSkipped,
		TagsSkipped:        skip.TagsSkipped,
		SubtreesSkipped:    skip.SubtreesSkipped,
	}
	if e.join != nil {
		res.JoinProbeTuples = int64(len(e.join.groups))
		res.JoinBuildTuples = e.join.buildTuples
		res.JoinMatches = e.join.matches
	}
	return res
}

// CheckBalance verifies the role assignment/removal balance after Run
// (exposed for tests and the property harness).
func (e *Engine) CheckBalance() error { return e.buf.CheckBalance() }

// Release hands the engine's pooled resources — source scratch
// buffers, the sink's write buffer and the buffer manager's node
// slabs — back to their pools. Call it once per engine, after Run's
// result has been consumed and the buffer is no longer inspected; the
// engine is unusable afterwards.
func (e *Engine) Release() {
	e.src.Release()
	e.out.Release()
	e.buf.Release()
}

// ensure pulls input through the preprojector until pred is satisfied
// or the stream ends, then lets deferred sign-offs whose subtrees
// completed take effect. This is the "blocked evaluator ↔ buffer
// manager ↔ preprojector" request chain of the paper's Fig. 2. With
// tracing on, the whole pull counts into PhaseStream unless an
// enclosing span (the join operator's scan) already owns the interval.
func (e *Engine) ensure(pred func() bool) error {
	if e.cfg.Timer == nil || e.inSpan {
		return e.ensureLoop(pred)
	}
	e.inSpan = true
	start := time.Now()
	err := e.ensureLoop(pred)
	e.cfg.Timer.Add(obs.PhaseStream, time.Since(start))
	e.inSpan = false
	return err
}

// span times fn into phase p when tracing is on; nested spans attribute
// to the outermost phase.
func (e *Engine) span(p obs.Phase, fn func() error) error {
	if e.cfg.Timer == nil || e.inSpan {
		return fn()
	}
	e.inSpan = true
	start := time.Now()
	err := fn()
	e.cfg.Timer.Add(p, time.Since(start))
	e.inSpan = false
	return err
}

func (e *Engine) ensureLoop(pred func() bool) error {
	for !pred() {
		if err := e.poll(); err != nil {
			return err
		}
		ok, err := e.proj.Step()
		if err != nil {
			return err
		}
		// The budget flag is tripped inside the buffer's node allocator;
		// checking it once per pulled token keeps enforcement off the
		// per-node hot path while still aborting within one token of the
		// breach.
		if err := e.buf.BudgetErr(); err != nil {
			return err
		}
		if !ok {
			// input exhausted: the virtual root is now complete
			e.buf.Root.Closed = true
			break
		}
	}
	e.buf.DrainPending()
	return nil
}

// poll is the lock-free cancellation check: nil while the run may
// continue, ctx.Err() once the context is done.
func (e *Engine) poll() error {
	if e.done != nil {
		select {
		case <-e.done:
			return e.ctx.Err()
		default:
		}
	}
	return nil
}

// ensureClosed blocks until n's subtree is fully buffered.
func (e *Engine) ensureClosed(n *buffer.Node) error {
	return e.ensure(func() bool { return n.Closed })
}

func (e *Engine) eval(expr xqast.Expr, env map[string]*buffer.Node) error {
	switch expr := expr.(type) {
	case *xqast.Empty:
		return nil
	case *xqast.Sequence:
		for _, item := range expr.Items {
			if err := e.eval(item, env); err != nil {
				return err
			}
		}
		return nil
	case *xqast.StringLit:
		e.out.Text(expr.Value)
		return nil
	case *xqast.Element:
		attrs, err := e.evalAttrs(expr.Attrs, env)
		if err != nil {
			return err
		}
		e.out.StartElement(expr.Name, attrs)
		if err := e.eval(expr.Content, env); err != nil {
			return err
		}
		e.out.EndElement(expr.Name)
		return nil
	case *xqast.VarRef:
		n := env[expr.Var]
		if err := e.ensureClosed(n); err != nil {
			return err
		}
		buffer.Serialize(n, e.out)
		return nil
	case *xqast.PathExpr:
		return e.evalOutputPath(*expr, env)
	case *xqast.ForExpr:
		return e.evalFor(expr, env)
	case *xqast.IfExpr:
		holds, err := e.evalCond(expr.Cond, env)
		if err != nil {
			return err
		}
		if holds {
			return e.eval(expr.Then, env)
		}
		return e.eval(expr.Else, env)
	case *xqast.AggExpr:
		return e.evalAgg(expr, env)
	case *xqast.SignOff:
		return e.evalSignOff(expr, env)
	default:
		return fmt.Errorf("engine: unknown expression %T", expr)
	}
}

// evalOutputPath emits the subtrees (or attribute values) selected by a
// path expression, in document order.
func (e *Engine) evalOutputPath(pe xqast.PathExpr, env map[string]*buffer.Node) error {
	base := env[pe.Base]
	if err := e.ensureClosed(base); err != nil {
		return err
	}
	if pe.Path.EndsWithAttribute() {
		attr := pe.Path.LastStep().Test.Name
		for _, n := range e.selectElems(base, pe.Path.WithoutLastStep()) {
			if v, ok := n.Attr(attr); ok {
				e.out.Text(v)
			}
		}
		return nil
	}
	for _, n := range buffer.SelectDocOrder(base, pe.Path) {
		buffer.Serialize(n, e.out)
	}
	return nil
}

// selectElems evaluates an element path; an empty path selects the base
// itself.
func (e *Engine) selectElems(base *buffer.Node, path xpath.Path) []*buffer.Node {
	if path.IsEmpty() {
		return []*buffer.Node{base}
	}
	return buffer.SelectDocOrder(base, path)
}

// evalFor runs a single-step for-loop: bindings are pulled one at a
// time; the previous binding is unpinned (and thereby GC-eligible)
// before the body of the next one runs.
func (e *Engine) evalFor(f *xqast.ForExpr, env map[string]*buffer.Node) error {
	if handled, err := e.interceptFor(f, env); handled {
		return err
	}
	base := env[f.In.Base]
	step := f.In.Path.Steps[0]

	next := func(prev *buffer.Node) *buffer.Node {
		return e.nextBinding(base, prev, step)
	}

	var cur *buffer.Node
	if err := e.ensure(func() bool {
		cur = next(nil)
		return cur != nil || base.Closed
	}); err != nil {
		return err
	}
	if cur != nil {
		e.buf.Pin(cur)
	}
	for cur != nil {
		// Evaluation over already-buffered bindings pulls no tokens (a
		// blocking join like XMark Q8 can spend seconds here), so ensure's
		// cancellation check never fires; poll once per binding to keep
		// the abort latency bounded by one loop body.
		if err := e.poll(); err != nil {
			e.buf.Unpin(cur)
			return err
		}
		env[f.Var] = cur
		err := e.eval(f.Body, env)
		delete(env, f.Var)
		if err != nil {
			e.buf.Unpin(cur)
			return err
		}
		var nxt *buffer.Node
		if err := e.ensure(func() bool {
			nxt = next(cur)
			return nxt != nil || base.Closed
		}); err != nil {
			e.buf.Unpin(cur)
			return err
		}
		if nxt != nil {
			e.buf.Pin(nxt)
		}
		e.buf.Unpin(cur)
		cur = nxt
	}
	return nil
}

// nextBinding advances a loop cursor over the buffered tree.
func (e *Engine) nextBinding(base, prev *buffer.Node, step xpath.Step) *buffer.Node {
	switch step.Axis {
	case xpath.Child:
		if step.FirstOnly && prev != nil {
			return nil
		}
		return buffer.NextMatchingChild(base, prev, step.Test)
	case xpath.Descendant:
		if step.FirstOnly && prev != nil {
			return nil
		}
		return buffer.NextMatchingDescendant(base, prev, step.Test, false)
	case xpath.DescendantOrSelf:
		if step.FirstOnly && prev != nil {
			return nil
		}
		return buffer.NextMatchingDescendant(base, prev, step.Test, true)
	default:
		return nil
	}
}

// evalAttrs computes the attribute list of a constructor, evaluating
// value templates against the environment.
func (e *Engine) evalAttrs(attrs []xqast.AttrTemplate, env map[string]*buffer.Node) ([]event.Attr, error) {
	if len(attrs) == 0 {
		return nil, nil
	}
	out := make([]event.Attr, len(attrs))
	for i, a := range attrs {
		if a.Expr == nil {
			out[i] = event.Attr{Name: a.Name, Value: a.Lit}
			continue
		}
		vals, err := e.pathValues(*a.Expr, env)
		if err != nil {
			return nil, err
		}
		out[i] = event.Attr{Name: a.Name, Value: xqvalue.JoinSpace(vals)}
	}
	return out, nil
}

// evalAgg evaluates an aggregation over the selected values.
func (e *Engine) evalAgg(c *xqast.AggExpr, env map[string]*buffer.Node) error {
	vals, err := e.pathValues(c.Arg, env)
	if err != nil {
		return err
	}
	if s, ok := xqvalue.Aggregate(c.Fn, vals); ok {
		e.out.Text(s)
	}
	return nil
}

// evalSignOff executes a signOff statement: role removal plus garbage
// collection, deferred or eager per configuration.
func (e *Engine) evalSignOff(so *xqast.SignOff, env map[string]*buffer.Node) error {
	base := env[so.Base]
	if e.cfg.SignOffMode == Eager {
		if err := e.ensureClosed(base); err != nil {
			return err
		}
		e.buf.SignOffNow(base, so.Path, so.Role)
		return nil
	}
	e.buf.QueueSignOff(base, so.Path, so.Role)
	return nil
}

// --- conditions ----------------------------------------------------------

func (e *Engine) evalCond(c xqast.Cond, env map[string]*buffer.Node) (bool, error) {
	switch c := c.(type) {
	case *xqast.BoolLit:
		return c.Value, nil
	case *xqast.NotCond:
		v, err := e.evalCond(c.C, env)
		return !v, err
	case *xqast.AndCond:
		l, err := e.evalCond(c.L, env)
		if err != nil || !l {
			return false, err
		}
		return e.evalCond(c.R, env)
	case *xqast.OrCond:
		l, err := e.evalCond(c.L, env)
		if err != nil || l {
			return l, err
		}
		return e.evalCond(c.R, env)
	case *xqast.ExistsCond:
		return e.evalExists(c, env)
	case *xqast.CompareCond:
		return e.evalCompare(c, env)
	default:
		return false, fmt.Errorf("engine: unknown condition %T", c)
	}
}

// evalExists blocks until a witness appears or the base subtree is
// complete. The witness is guaranteed buffered by the condition's
// first-witness projection path (the paper's r4).
func (e *Engine) evalExists(c *xqast.ExistsCond, env map[string]*buffer.Node) (bool, error) {
	base := env[c.Arg.Base]
	if c.Arg.Path.IsEmpty() {
		return true, nil
	}
	if c.Arg.Path.EndsWithAttribute() {
		attr := c.Arg.Path.LastStep().Test.Name
		elemPath := c.Arg.Path.WithoutLastStep()
		has := func() bool {
			for _, el := range e.selectElems(base, elemPath) {
				if _, ok := el.Attr(attr); ok {
					return true
				}
			}
			return false
		}
		if err := e.ensure(func() bool { return has() || base.Closed }); err != nil {
			return false, err
		}
		return has(), nil
	}
	if err := e.ensure(func() bool {
		return buffer.Exists(base, c.Arg.Path) || base.Closed
	}); err != nil {
		return false, err
	}
	return buffer.Exists(base, c.Arg.Path), nil
}

// evalCompare implements XPath-1.0-style existential general comparison
// over string values, switching to numeric comparison when a numeric
// literal is involved or the operator is an ordering.
func (e *Engine) evalCompare(c *xqast.CompareCond, env map[string]*buffer.Node) (bool, error) {
	lv, err := e.operandValues(c.L, env)
	if err != nil {
		return false, err
	}
	rv, err := e.operandValues(c.R, env)
	if err != nil {
		return false, err
	}
	numeric := c.L.Kind == xqast.OperandNumber || c.R.Kind == xqast.OperandNumber ||
		c.Op == xqast.CmpLt || c.Op == xqast.CmpLe || c.Op == xqast.CmpGt || c.Op == xqast.CmpGe
	return xqvalue.ExistsPair(cmpOp(c.Op), lv, rv, numeric), nil
}

// cmpOp maps syntax-level operators to the shared value semantics.
func cmpOp(op xqast.CmpOp) xqvalue.CmpOp {
	switch op {
	case xqast.CmpEq:
		return xqvalue.Eq
	case xqast.CmpNe:
		return xqvalue.Ne
	case xqast.CmpLt:
		return xqvalue.Lt
	case xqast.CmpLe:
		return xqvalue.Le
	case xqast.CmpGt:
		return xqvalue.Gt
	default:
		return xqvalue.Ge
	}
}

// pathValues evaluates a path expression to its value sequence: present
// attribute values for attribute-final paths, string values of the
// selected nodes otherwise. It blocks until the base subtree is fully
// buffered.
func (e *Engine) pathValues(pe xqast.PathExpr, env map[string]*buffer.Node) ([]string, error) {
	base := env[pe.Base]
	if err := e.ensureClosed(base); err != nil {
		return nil, err
	}
	if pe.Path.EndsWithAttribute() {
		attr := pe.Path.LastStep().Test.Name
		var vals []string
		for _, el := range e.selectElems(base, pe.Path.WithoutLastStep()) {
			if v, ok := el.Attr(attr); ok {
				vals = append(vals, v)
			}
		}
		return vals, nil
	}
	nodes := e.selectElems(base, pe.Path)
	vals := make([]string, len(nodes))
	for i, n := range nodes {
		vals[i] = n.StringValue()
	}
	return vals, nil
}

// operandValues evaluates one comparison operand to its value sequence.
func (e *Engine) operandValues(o xqast.Operand, env map[string]*buffer.Node) ([]string, error) {
	switch o.Kind {
	case xqast.OperandString:
		return []string{o.Str}, nil
	case xqast.OperandNumber:
		return []string{xqvalue.FormatNumber(o.Num)}, nil
	case xqast.OperandPath:
		return e.pathValues(o.Path, env)
	default:
		return nil, fmt.Errorf("engine: unknown operand kind %d", o.Kind)
	}
}
