package engine

import (
	"fmt"

	"gcx/internal/analysis"
	"gcx/internal/buffer"
	"gcx/internal/join"
	"gcx/internal/obs"
	"gcx/internal/xqast"
)

// joinRun is the per-run state of the streaming join operator
// (DESIGN.md §10). The engine's evalFor intercepts the plan's probe and
// build loops: probe bindings stream through with their output events
// captured into groups, the build loop is skipped during capture (only
// its splice position is recorded), and at end of input the buffered
// build side is scanned once into a keyed hash table whose payloads are
// replayed into the groups — the nested-loop event sequence in
// O(probe + build + matches).
type joinRun struct {
	info *analysis.JoinInfo
	// entered marks that the probe chain's head has been reached (it
	// guards the ProbeHead==ProbeLoop single-step case against
	// re-interception on the recursive call).
	entered bool
	// cap is the active per-binding capture sink while a probe body
	// evaluates; nil outside captures.
	cap      *join.Capture
	spliceAt int
	spliced  bool
	groups   []join.Group

	buildTuples int64
	matches     int64
}

// interceptFor routes the plan's join loops away from nested
// evaluation. It reports whether it handled the loop.
func (e *Engine) interceptFor(f *xqast.ForExpr, env map[string]*buffer.Node) (bool, error) {
	j := e.join
	if j == nil {
		return false, nil
	}
	switch {
	case f == j.info.BuildHead && j.cap != nil:
		// The probe body reached the build loop: record where the
		// matched payloads splice into this binding's event stream and
		// skip the nested scan entirely.
		if j.spliced {
			return true, fmt.Errorf("engine: join build loop reached twice in one probe binding")
		}
		j.spliceAt = j.cap.Mark()
		j.spliced = true
		return true, nil
	case f == j.info.ProbeHead && !j.entered:
		j.entered = true
		if err := e.evalFor(f, env); err != nil {
			return true, err
		}
		return true, e.finalizeJoin()
	case f == j.info.ProbeLoop && j.entered && j.cap == nil:
		return true, e.evalJoinProbe(f, env)
	}
	return false, nil
}

// evalJoinProbe is evalFor's cursor loop with the body captured per
// binding instead of evaluated against the live sink.
func (e *Engine) evalJoinProbe(f *xqast.ForExpr, env map[string]*buffer.Node) error {
	base := env[f.In.Base]
	step := f.In.Path.Steps[0]

	next := func(prev *buffer.Node) *buffer.Node {
		return e.nextBinding(base, prev, step)
	}

	var cur *buffer.Node
	if err := e.ensure(func() bool {
		cur = next(nil)
		return cur != nil || base.Closed
	}); err != nil {
		return err
	}
	if cur != nil {
		e.buf.Pin(cur)
	}
	for cur != nil {
		// Same latency contract as evalFor: captures over buffered
		// bindings pull no tokens, so poll once per binding.
		if err := e.poll(); err != nil {
			e.buf.Unpin(cur)
			return err
		}
		env[f.Var] = cur
		err := e.captureProbeBinding(f, env)
		delete(env, f.Var)
		if err != nil {
			e.buf.Unpin(cur)
			return err
		}
		var nxt *buffer.Node
		if err := e.ensure(func() bool {
			nxt = next(cur)
			return nxt != nil || base.Closed
		}); err != nil {
			e.buf.Unpin(cur)
			return err
		}
		if nxt != nil {
			e.buf.Pin(nxt)
		}
		e.buf.Unpin(cur)
		cur = nxt
	}
	return nil
}

// captureProbeBinding evaluates one probe binding's body into a capture
// sink and appends the resulting group. The join keys are extracted
// first: sign-offs inside the body may purge parts of the probe record
// as they execute.
func (e *Engine) captureProbeBinding(f *xqast.ForExpr, env map[string]*buffer.Node) error {
	j := e.join
	keys, err := e.pathValues(xqast.PathExpr{Base: j.info.ProbeVar, Path: j.info.ProbeKey}, env)
	if err != nil {
		return err
	}
	cap := join.NewCapture()
	j.cap, j.spliced = cap, false
	saved := e.out
	e.out = cap
	err = e.eval(f.Body, env)
	e.out = saved
	j.cap = nil
	if err != nil {
		return err
	}
	ops := cap.Take()
	g := join.Group{Keys: keys, Head: ops, Splice: j.spliced}
	if j.spliced {
		g.Head, g.Tail = ops[:j.spliceAt:j.spliceAt], ops[j.spliceAt:]
	}
	j.groups = append(j.groups, g)
	return nil
}

// finalizeJoin runs once the probe chain is exhausted: pull to end of
// input (the build side is complete only then — a later sibling of any
// build ancestor could still contribute tuples), materialize the build
// table, and emit the groups. Build nodes are still buffered here
// because their hoisted sign-offs are top-level statements that execute
// after the output wrapper.
func (e *Engine) finalizeJoin() error {
	j := e.join
	if err := e.ensureClosed(e.buf.Root); err != nil {
		return err
	}

	table := join.NewTable()
	scan := false
	for i := range j.groups {
		if j.groups[i].Splice {
			scan = true
			break
		}
	}
	if scan {
		// The build-side materialization is its own trace phase; the
		// ensure calls inside pathValues find their subtrees already
		// buffered, and the span guard keeps them out of PhaseStream.
		err := e.span(obs.PhaseJoinBuild, func() error {
			tuples := buffer.SelectDocOrder(e.buf.Root, j.info.BuildPath)
			benv := map[string]*buffer.Node{xqast.RootVar: e.buf.Root}
			i := 0
			next := func(*buffer.Node) *buffer.Node {
				if i == len(tuples) {
					return nil
				}
				n := tuples[i]
				i++
				return n
			}
			return join.Tuples(next, e.poll, func(t *buffer.Node) error {
				benv[j.info.BuildVar] = t
				keys, err := e.pathValues(xqast.PathExpr{Base: j.info.BuildVar, Path: j.info.BuildKey}, benv)
				if err != nil {
					return err
				}
				cap := join.NewCapture()
				saved := e.out
				e.out = cap
				err = e.eval(j.info.Then, benv)
				e.out = saved
				if err != nil {
					return err
				}
				table.Add(keys, cap.Take())
				return nil
			})
		})
		if err != nil {
			return err
		}
		j.buildTuples = int64(table.Len())
	}

	// Replay in probe document order; matched payloads in build document
	// order — exactly the nested-loop emission sequence.
	return e.span(obs.PhaseJoinProbe, func() error {
		for gi := range j.groups {
			if err := e.poll(); err != nil {
				return err
			}
			g := &j.groups[gi]
			join.Replay(g.Head, e.out)
			if g.Splice {
				for _, ti := range table.Match(g.Keys) {
					join.Replay(table.Payload(ti), e.out)
					j.matches++
				}
			}
			join.Replay(g.Tail, e.out)
			g.Head, g.Tail = nil, nil
		}
		return nil
	})
}
