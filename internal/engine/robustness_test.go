package engine

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/iotest"
)

// TestOneByteReader: the engine must behave identically when the input
// arrives one byte at a time (no hidden buffering assumptions).
func TestOneByteReader(t *testing.T) {
	doc := fig3Doc(repeatKinds("book", 4, "article"))
	plan := compile(t, PaperQuery)

	var whole bytes.Buffer
	if _, err := newXML(plan, strings.NewReader(doc), &whole, Config{}).Run(); err != nil {
		t.Fatal(err)
	}
	var chunked bytes.Buffer
	e := newXML(plan, iotest.OneByteReader(strings.NewReader(doc)), &chunked, Config{})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if whole.String() != chunked.String() {
		t.Fatalf("outputs differ under chunked reads:\n%q\n%q", whole.String(), chunked.String())
	}
	if res.FinalBufferedNodes != 0 {
		t.Fatal("buffer must drain")
	}
}

// TestInputErrorPropagates: a reader failure mid-stream surfaces as an
// error, not a truncated success.
func TestInputErrorPropagates(t *testing.T) {
	doc := fig3Doc(repeatKinds("book", 4, "article"))
	broken := io.MultiReader(
		strings.NewReader(doc[:40]),
		iotest.ErrReader(errors.New("disk gone")),
	)
	plan := compile(t, PaperQuery)
	var out bytes.Buffer
	_, err := newXML(plan, broken, &out, Config{}).Run()
	if err == nil || !strings.Contains(err.Error(), "disk gone") {
		t.Fatalf("want propagated read error, got %v", err)
	}
}

// TestTruncatedInputFails: well-formedness violations mid-query are
// reported.
func TestTruncatedInputFails(t *testing.T) {
	doc := fig3Doc(repeatKinds("book", 4, "article"))
	plan := compile(t, PaperQuery)
	var out bytes.Buffer
	_, err := newXML(plan, strings.NewReader(doc[:len(doc)/2]), &out, Config{}).Run()
	if err == nil {
		t.Fatal("truncated document must fail")
	}
}

// TestWriteErrorSurfaces: output failures are reported by Run (via the
// serializer's sticky error at flush).
func TestWriteErrorSurfaces(t *testing.T) {
	doc := fig3Doc(repeatKinds("book", 4, "article"))
	plan := compile(t, PaperQuery)
	w := &failingWriter{failAfter: 0} // fail on the first flush
	_, err := newXML(plan, strings.NewReader(doc), w, Config{}).Run()
	if err == nil {
		t.Fatal("write error must surface")
	}
}

type failingWriter struct {
	n         int
	failAfter int
}

func (w *failingWriter) Write(p []byte) (int, error) {
	w.n++
	if w.n > w.failAfter {
		return 0, errors.New("pipe closed")
	}
	return len(p), nil
}

// TestDeeplyNestedDocument: recursion depth and pin discipline hold on
// pathological nesting.
func TestDeeplyNestedDocument(t *testing.T) {
	const depth = 2000
	var b strings.Builder
	for i := 0; i < depth; i++ {
		b.WriteString("<a>")
	}
	b.WriteString("<leaf/>")
	for i := 0; i < depth; i++ {
		b.WriteString("</a>")
	}
	out, res, _ := run(t, `<o>{ for $l in /descendant::leaf return "found" }</o>`, b.String(), Config{})
	if out != `<o>found</o>` {
		t.Fatalf("got %q", out)
	}
	if res.FinalBufferedNodes != 0 {
		t.Fatal("buffer must drain")
	}
}

// TestManySiblings: wide documents stream in constant memory.
func TestManySiblings(t *testing.T) {
	var b strings.Builder
	b.WriteString("<l>")
	for i := 0; i < 5000; i++ {
		b.WriteString("<v>x</v>")
	}
	b.WriteString("</l>")
	_, res, _ := run(t, `<o>{ for $v in /l/v return $v/text() }</o>`, b.String(), Config{})
	if res.PeakBufferedNodes > 8 {
		t.Fatalf("peak = %d nodes for a streamable scan", res.PeakBufferedNodes)
	}
}

// TestEmptyDocumentElementOnly: minimal inputs work across the engine.
func TestEmptyDocumentElementOnly(t *testing.T) {
	out, _, _ := run(t, `<o>{ for $x in /a return "y" }</o>`, `<a/>`, Config{})
	if out != `<o>y</o>` {
		t.Fatalf("got %q", out)
	}
}
