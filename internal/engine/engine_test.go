package engine

import (
	"bytes"
	"strings"
	"testing"

	"gcx/internal/analysis"
	"gcx/internal/stats"
	"gcx/internal/xqparse"
)

// PaperQuery is the running example of the paper (§1).
const PaperQuery = `<r> {
for $bib in /bib return
(for $x in $bib/* return
   if (not(exists $x/price)) then $x else (),
 for $b in $bib/book return $b/title)
} </r>`

// fig3Doc builds the paper's Fig. 3 input: a bib with ten children
// <t><author/><title/><price/></t>, kinds given per position.
func fig3Doc(kinds []string) string {
	var b strings.Builder
	b.WriteString("<bib>")
	for _, k := range kinds {
		b.WriteString("<" + k + "><author></author><title></title><price></price></" + k + ">")
	}
	b.WriteString("</bib>")
	return b.String()
}

func repeatKinds(kind string, n int, last string) []string {
	kinds := make([]string, n+1)
	for i := 0; i < n; i++ {
		kinds[i] = kind
	}
	kinds[n] = last
	return kinds
}

func compile(t *testing.T, src string) *analysis.Plan {
	t.Helper()
	q, err := xqparse.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	plan, err := analysis.Analyze(q)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return plan
}

// run executes a query over a document and returns output + result.
func run(t *testing.T, src, doc string, cfg Config) (string, *Result, *Engine) {
	t.Helper()
	plan := compile(t, src)
	var out bytes.Buffer
	e := newXML(plan, strings.NewReader(doc), &out, cfg)
	res, err := e.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := e.Buffer().CheckInvariants(); err != nil {
		t.Fatalf("buffer invariants after run: %v", err)
	}
	if !cfg.DisableGC {
		if err := e.CheckBalance(); err != nil {
			t.Fatalf("role balance after run: %v\n%s", err, e.Buffer().Dump(nil))
		}
	}
	return out.String(), res, e
}

// TestPaperExampleOutput: on the Fig. 1 prefix document, the query
// outputs nothing from the first loop (the book has a price) — wait, the
// Fig. 1 document has no price, so the book IS output — and the title
// from the second loop.
func TestPaperExampleOutputFig1(t *testing.T) {
	doc := `<bib><book><title>T</title><author>A</author></book></bib>`
	out, res, _ := run(t, PaperQuery, doc, Config{})
	// book has no price → first loop emits the whole book; second loop
	// emits the title.
	want := `<r><book><title>T</title><author>A</author></book><title>T</title></r>`
	if out != want {
		t.Fatalf("output:\n got %q\nwant %q", out, want)
	}
	if res.FinalBufferedNodes != 0 {
		t.Fatalf("final buffered nodes = %d, want 0", res.FinalBufferedNodes)
	}
}

func TestPaperExampleWithPrices(t *testing.T) {
	doc := fig3Doc(repeatKinds("article", 9, "book"))
	out, res, _ := run(t, PaperQuery, doc, Config{})
	// All children have price → first loop outputs nothing; the single
	// book's title is emitted (empty).
	want := `<r><title></title></r>`
	if out != want {
		t.Fatalf("output = %q, want %q", out, want)
	}
	if res.TokensProcessed != 82 {
		t.Fatalf("tokens = %d, want 82", res.TokensProcessed)
	}
	if res.FinalBufferedNodes != 0 {
		t.Fatalf("final buffered = %d", res.FinalBufferedNodes)
	}
}

// TestFig3bBufferProfile reproduces the paper's Figure 3(b):
// 9×article + 1×book. Articles are processed one at a time, so the
// buffer oscillates and stays bounded (peak 6: bib + article subtree +
// next article's open tag overlap).
func TestFig3bBufferProfile(t *testing.T) {
	doc := fig3Doc(repeatKinds("article", 9, "book"))
	rec := stats.NewRecorder(1)
	_, res, _ := run(t, PaperQuery, doc, Config{Recorder: rec})
	if res.PeakBufferedNodes > 6 {
		t.Fatalf("Fig 3(b): peak buffered = %d, want <= 6 (bounded oscillation)", res.PeakBufferedNodes)
	}
	if len(rec.Points) != 82 {
		t.Fatalf("recorded %d points, want 82", len(rec.Points))
	}
	// Oscillation: after each article is closed and its sign-offs drain,
	// the buffer returns to 1 (just bib).
	drops := 0
	for i := 1; i < len(rec.Points); i++ {
		if rec.Points[i].Nodes < rec.Points[i-1].Nodes {
			drops++
		}
	}
	if drops < 9 {
		t.Fatalf("expected >= 9 purge events, saw %d", drops)
	}
}

// TestFig3cBufferProfile reproduces Figure 3(c): 9×book + 1×article.
// Books retain book{r6} and title{r7} for the second loop, so the
// buffer grows; the paper reports 23 buffered nodes when </bib> is
// read (deferred sign-off timing).
func TestFig3cBufferProfile(t *testing.T) {
	doc := fig3Doc(repeatKinds("book", 9, "article"))
	rec := stats.NewRecorder(1)
	_, res, _ := run(t, PaperQuery, doc, Config{Recorder: rec})
	// The 82nd token is </bib>.
	atBibClose := rec.Points[81]
	if atBibClose.Token != 82 {
		t.Fatalf("point 82 is token %d", atBibClose.Token)
	}
	if atBibClose.Nodes != 23 {
		t.Fatalf("Fig 3(c): %d nodes buffered at </bib>, paper reports 23", atBibClose.Nodes)
	}
	if res.PeakBufferedNodes != 23 {
		t.Fatalf("peak = %d, want 23", res.PeakBufferedNodes)
	}
	if res.FinalBufferedNodes != 0 {
		t.Fatalf("final = %d, want 0", res.FinalBufferedNodes)
	}
}

// TestFig3cEagerMode: with eager sign-offs the last article's subtree is
// purged before </bib> is read. Only the article element itself remains
// (it is the pinned current binding), so 20 nodes are buffered at
// </bib>: bib + 9×(book,title) + article — versus 23 in deferred mode.
func TestFig3cEagerMode(t *testing.T) {
	doc := fig3Doc(repeatKinds("book", 9, "article"))
	rec := stats.NewRecorder(1)
	_, _, _ = run(t, PaperQuery, doc, Config{SignOffMode: Eager, Recorder: rec})
	atBibClose := rec.Points[81]
	if atBibClose.Nodes != 20 {
		t.Fatalf("eager mode: %d nodes at </bib>, want 20", atBibClose.Nodes)
	}
}

// TestEagerAndDeferredSameOutput: the sign-off mode changes buffer
// timing, never results.
func TestEagerAndDeferredSameOutput(t *testing.T) {
	doc := fig3Doc([]string{"book", "article", "book", "article", "book"})
	out1, _, _ := run(t, PaperQuery, doc, Config{SignOffMode: Deferred})
	out2, _, _ := run(t, PaperQuery, doc, Config{SignOffMode: Eager})
	if out1 != out2 {
		t.Fatalf("outputs differ:\ndeferred %q\neager    %q", out1, out2)
	}
}

// TestProjectionOnlyBaseline: DisableGC keeps everything projected in
// the buffer (the FluXQuery-class baseline).
func TestProjectionOnlyBaseline(t *testing.T) {
	doc := fig3Doc(repeatKinds("article", 9, "book"))
	out, res, _ := run(t, PaperQuery, doc, Config{DisableGC: true})
	want := `<r><title></title></r>`
	if out != want {
		t.Fatalf("output = %q", out)
	}
	// every node matches r5, so everything stays buffered
	if res.FinalBufferedNodes != 41 {
		t.Fatalf("no-GC final buffered = %d, want 41", res.FinalBufferedNodes)
	}
	if res.TotalPurged != 0 {
		t.Fatalf("no-GC purged = %d, want 0", res.TotalPurged)
	}
}

// TestJoinQuery: value-based join across two sections (the Q8 shape).
func TestJoinQuery(t *testing.T) {
	const q = `<result>{ for $p in /site/people/person return
	  <item>{ $p/name,
	    for $t in /site/closed_auctions/closed_auction return
	      if ($t/buyer/@person = $p/@id) then $t/price else () }</item> }</result>`
	const doc = `<site>
	  <people>
	    <person id="p1"><name>Ann</name></person>
	    <person id="p2"><name>Bob</name></person>
	  </people>
	  <open_auctions><open_auction><bidder/></open_auction></open_auctions>
	  <closed_auctions>
	    <closed_auction><buyer person="p2"/><price>42</price></closed_auction>
	    <closed_auction><buyer person="p1"/><price>7</price></closed_auction>
	    <closed_auction><buyer person="p2"/><price>9</price></closed_auction>
	  </closed_auctions>
	</site>`
	out, res, _ := run(t, q, doc, Config{})
	want := `<result><item><name>Ann</name><price>7</price></item>` +
		`<item><name>Bob</name><price>42</price><price>9</price></item></result>`
	if out != want {
		t.Fatalf("join output:\n got %q\nwant %q", out, want)
	}
	if res.FinalBufferedNodes != 0 {
		t.Fatalf("final buffered = %d, want 0 (hoisted sign-offs ran)", res.FinalBufferedNodes)
	}
	// The open_auctions section is never projected: exactly 21 nodes are
	// buffered over the run (site+people+closed_auctions chain elements,
	// 2 persons with names and name texts, 3 auctions with buyer, price
	// and price text).
	if res.TotalAppended != 21 {
		t.Fatalf("appended %d nodes, want 21 (open_auctions projected away)", res.TotalAppended)
	}
	// The hash join operator ran: 2 probe bindings, 3 build tuples,
	// 3 emitted payloads.
	if res.JoinProbeTuples != 2 || res.JoinBuildTuples != 3 || res.JoinMatches != 3 {
		t.Fatalf("join counters = probe %d build %d matches %d, want 2/3/3",
			res.JoinProbeTuples, res.JoinBuildTuples, res.JoinMatches)
	}
}

// TestJoinDisabled: DisableJoin falls back to nested-loop evaluation
// with byte-identical output and zero join counters.
func TestJoinDisabled(t *testing.T) {
	const q = `<result>{ for $p in /site/people/person return
	  <item>{ $p/name,
	    for $t in /site/closed_auctions/closed_auction return
	      if ($t/buyer/@person = $p/@id) then $t/price else () }</item> }</result>`
	const doc = `<site><people>` +
		`<person id="p1"><name>Ann</name></person>` +
		`<person id="p2"><name>Bob</name></person>` +
		`</people><closed_auctions>` +
		`<closed_auction><buyer person="p2"/><price>42</price></closed_auction>` +
		`<closed_auction><buyer person="p1"/><price>7</price></closed_auction>` +
		`</closed_auctions></site>`
	joined, jres, _ := run(t, q, doc, Config{})
	nested, nres, _ := run(t, q, doc, Config{DisableJoin: true})
	if joined != nested {
		t.Fatalf("join output diverges from nested loop:\n join %q\n nest %q", joined, nested)
	}
	if jres.JoinProbeTuples == 0 || jres.JoinMatches != 2 {
		t.Fatalf("join path did not run: %+v", jres)
	}
	if nres.JoinProbeTuples != 0 || nres.JoinBuildTuples != 0 || nres.JoinMatches != 0 {
		t.Fatalf("disabled run reported join counters: %+v", nres)
	}
}

// TestAttributeComparisonAndOutput: Q1 shape.
func TestAttributeComparisonAndOutput(t *testing.T) {
	const q = `<result>{ for $p in /site/people/person return
	   if ($p/@id = "person0") then $p/name else () }</result>`
	const doc = `<site><people>` +
		`<person id="person0"><name>Kasya Eyre</name></person>` +
		`<person id="person1"><name>Other</name></person>` +
		`</people></site>`
	out, _, _ := run(t, q, doc, Config{})
	want := `<result><name>Kasya Eyre</name></result>`
	if out != want {
		t.Fatalf("got %q, want %q", out, want)
	}
}

// TestNumericComparisons: Q20 shape with @income brackets.
func TestNumericComparisons(t *testing.T) {
	const q = `<out>{ for $p in /people/person return
	  (if ($p/profile/@income > 95000) then <hi>{$p/@id}</hi> else (),
	   if ($p/profile/@income > 30000 and $p/profile/@income <= 95000) then <mid>{$p/@id}</mid> else (),
	   if (not(exists $p/profile/@income)) then <none>{$p/@id}</none> else ()) }</out>`
	const doc = `<people>` +
		`<person id="a"><profile income="100000.5"/></person>` +
		`<person id="b"><profile income="50000"/></person>` +
		`<person id="c"><profile/></person>` +
		`<person id="d"><profile income="10000"/></person>` +
		`</people>`
	out, _, _ := run(t, q, doc, Config{})
	want := `<out><hi>a</hi><mid>b</mid><none>c</none></out>`
	if out != want {
		t.Fatalf("got %q, want %q", out, want)
	}
}

// TestDescendantLoop: Q6 shape (//item).
func TestDescendantLoop(t *testing.T) {
	const q = `<items>{ for $r in /site/regions return
	    for $i in $r//item return <i>{$i/name/text()}</i> }</items>`
	const doc = `<site><regions>` +
		`<africa><item id="i1"><name>N1</name></item></africa>` +
		`<asia><item id="i2"><name>N2</name><sub><item id="i3"><name>N3</name></item></sub></item></asia>` +
		`</regions><people><person id="p"/></people></site>`
	out, res, _ := run(t, q, doc, Config{})
	want := `<items><i>N1</i><i>N2</i><i>N3</i></items>`
	if out != want {
		t.Fatalf("got %q, want %q", out, want)
	}
	if res.FinalBufferedNodes != 0 {
		t.Fatalf("final buffered = %d", res.FinalBufferedNodes)
	}
}

// TestNestedDescendantBindingsBalance: overlapping descendant bindings
// exercise multiset role accounting end to end.
func TestNestedDescendantBindingsBalance(t *testing.T) {
	const q = `<o>{ for $s in /doc//s return <k>{$s/v/text()}</k> }</o>`
	const doc = `<doc><s><v>1</v><s><v>2</v></s></s><s><v>3</v></s></doc>`
	out, _, _ := run(t, q, doc, Config{})
	want := `<o><k>1</k><k>2</k><k>3</k></o>`
	if out != want {
		t.Fatalf("got %q, want %q", out, want)
	}
}

// TestCountExtension: aggregation is opt-in.
func TestCountExtension(t *testing.T) {
	const q = `<counts>{ for $a in /as/a return <c>{count($a/b)}</c> }</counts>`
	const doc = `<as><a><b/><b/><b/></a><a/><a><b/></a></as>`
	plan := compile(t, q)
	var out bytes.Buffer
	if _, err := newXML(plan, strings.NewReader(doc), &out, Config{}).Run(); err == nil {
		t.Fatal("count() must be rejected without EnableAggregation")
	}
	got, _, _ := run(t, q, doc, Config{EnableAggregation: true})
	want := `<counts><c>3</c><c>0</c><c>1</c></counts>`
	if got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

// TestTextOutput: text() paths output only character data.
func TestTextOutput(t *testing.T) {
	const q = `<t>{ for $b in /bib/book return $b/title/text() }</t>`
	const doc = `<bib><book><title>A<sub>X</sub>B</title></book></bib>`
	out, _, _ := run(t, q, doc, Config{})
	// title has two text children "A" and "B"; <sub>'s content is not a
	// direct text child.
	want := `<t>AB</t>`
	if out != want {
		t.Fatalf("got %q, want %q", out, want)
	}
}

// TestEmptyInputAndNoMatches: loops over absent data emit nothing.
func TestEmptyInputAndNoMatches(t *testing.T) {
	out, res, _ := run(t, `<r>{ for $x in /a/b return $x }</r>`, `<a></a>`, Config{})
	if out != `<r></r>` {
		t.Fatalf("got %q", out)
	}
	if res.FinalBufferedNodes != 0 {
		t.Fatal("buffer should be empty")
	}
}

// TestEarlyAnswerStillReadsWholeInput: Fig. 5 Q1-style early answers do
// not shortcut the stream (times scale with document size in the
// paper). With subtree skipping the irrelevant <c/> subtrees are
// fast-forwarded rather than tokenized, but every token is still
// accounted for: processed tokens plus skipped tags cover the whole
// document, and a skip-disabled run tokenizes all 16.
func TestEarlyAnswerStillReadsWholeInput(t *testing.T) {
	const q = `<r>{ if (exists /a/b) then "y" else "n" }</r>`
	const doc = `<a><b/><c/><c/><c/><c/><c/><c/></a>`
	out, res, _ := run(t, q, doc, Config{})
	if out != `<r>y</r>` {
		t.Fatalf("got %q", out)
	}
	if res.TokensProcessed+res.TagsSkipped != 16 {
		t.Fatalf("tokens %d + skipped tags %d, want 16 total", res.TokensProcessed, res.TagsSkipped)
	}
	if res.SubtreesSkipped != 6 {
		t.Fatalf("subtrees skipped = %d, want the 6 <c/> elements", res.SubtreesSkipped)
	}
	out, res, _ = run(t, q, doc, Config{DisableSkip: true})
	if out != `<r>y</r>` {
		t.Fatalf("skip-disabled run got %q", out)
	}
	if res.TokensProcessed != 16 {
		t.Fatalf("skip-disabled tokens = %d, want all 16", res.TokensProcessed)
	}
}

// TestStringValueComparison: element operands compare by string value
// (concatenated text of the subtree).
func TestStringValueComparison(t *testing.T) {
	const q = `<r>{ for $a in /d/a return if ($a/k = "xy") then $a/@n else () }</r>`
	const doc = `<d><a n="1"><k>x<i>y</i></k></a><a n="2"><k>z</k></a></d>`
	out, _, _ := run(t, q, doc, Config{})
	if out != `<r>1</r>` {
		t.Fatalf("got %q", out)
	}
}

// TestMultipleSequentialLoops: re-scanning buffered data in later
// sibling loops works (roles are per occurrence).
func TestMultipleSequentialLoops(t *testing.T) {
	const q = `<r>{ (for $x in /l/v return <a>{$x/text()}</a>,
	                for $y in /l/v return <b>{$y/text()}</b>) }</r>`
	const doc = `<l><v>1</v><v>2</v></l>`
	out, res, _ := run(t, q, doc, Config{})
	want := `<r><a>1</a><a>2</a><b>1</b><b>2</b></r>`
	if out != want {
		t.Fatalf("got %q, want %q", out, want)
	}
	if res.FinalBufferedNodes != 0 {
		t.Fatal("all roles must be signed off at the end")
	}
}

// TestRecorderSampling: sampled recording bounds series size.
func TestRecorderSampling(t *testing.T) {
	doc := fig3Doc(repeatKinds("book", 9, "article"))
	rec := stats.NewRecorder(10)
	_, _, _ = run(t, PaperQuery, doc, Config{Recorder: rec})
	if len(rec.Points) != 8 {
		t.Fatalf("sampled %d points, want 8 (82 tokens / 10)", len(rec.Points))
	}
}

// TestPeakBytesTracked: byte watermark moves with the node watermark.
func TestPeakBytesTracked(t *testing.T) {
	doc := fig3Doc(repeatKinds("book", 9, "article"))
	_, res, _ := run(t, PaperQuery, doc, Config{})
	if res.PeakBufferedBytes <= 0 {
		t.Fatal("PeakBufferedBytes not tracked")
	}
	if res.PeakBufferedBytes < res.PeakBufferedNodes*64 {
		t.Fatalf("bytes watermark %d implausibly small for %d nodes",
			res.PeakBufferedBytes, res.PeakBufferedNodes)
	}
}
