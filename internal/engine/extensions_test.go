package engine

import (
	"strings"
	"testing"
)

// TestWhereClause: where is sugar for a conditional body; streaming
// behaviour matches the explicit if.
func TestWhereClause(t *testing.T) {
	const doc = `<bib><book year="2000"><title>A</title></book><book year="1990"><title>B</title></book></bib>`
	sugar, _, _ := run(t, `<out>{ for $b in /bib/book where $b/@year >= 2000 return $b/title }</out>`, doc, Config{})
	explicit, _, _ := run(t, `<out>{ for $b in /bib/book return if ($b/@year >= 2000) then $b/title else () }</out>`, doc, Config{})
	if sugar != explicit {
		t.Fatalf("where sugar diverges: %q vs %q", sugar, explicit)
	}
	if sugar != `<out><title>A</title></out>` {
		t.Fatalf("output = %q", sugar)
	}
}

// TestAttributeTemplates: computed constructor attributes (the original
// XMark Q13 shape).
func TestAttributeTemplates(t *testing.T) {
	const q = `<out>{ for $i in /regions/item return
	   <item name="{$i/name/text()}" id="{$i/@id}">{ $i/price }</item> }</out>`
	const doc = `<regions>` +
		`<item id="i1"><name>Gold Watch</name><price>90</price></item>` +
		`<item id="i2"><name>Silver</name><price>5</price></item>` +
		`</regions>`
	out, res, _ := run(t, q, doc, Config{})
	want := `<out><item name="Gold Watch" id="i1"><price>90</price></item>` +
		`<item name="Silver" id="i2"><price>5</price></item></out>`
	if out != want {
		t.Fatalf("got %q\nwant %q", out, want)
	}
	if res.FinalBufferedNodes != 0 {
		t.Fatal("buffer must drain")
	}
}

// TestAttributeTemplateMultipleValues: several selected nodes join with
// spaces (XQuery attribute content rule).
func TestAttributeTemplateMultipleValues(t *testing.T) {
	const q = `<out>{ for $a in /d/a return <w k="{$a/v}"/> }</out>`
	const doc = `<d><a><v>1</v><v>2</v><v>3</v></a></d>`
	out, _, _ := run(t, q, doc, Config{})
	if out != `<out><w k="1 2 3"></w></out>` {
		t.Fatalf("got %q", out)
	}
}

// TestAggregateFamily: sum/min/max/avg stream with node-count-bounded
// buffers and produce the expected numbers.
func TestAggregateFamily(t *testing.T) {
	const doc = `<as><a><p>3</p><p>1.5</p><p>2</p></a><a></a></as>`
	cases := map[string]string{
		`<o>{ for $a in /as/a return <c>{count($a/p)}</c> }</o>`: `<o><c>3</c><c>0</c></o>`,
		`<o>{ for $a in /as/a return <c>{sum($a/p)}</c> }</o>`:   `<o><c>6.5</c><c>0</c></o>`,
		`<o>{ for $a in /as/a return <c>{min($a/p)}</c> }</o>`:   `<o><c>1.5</c><c></c></o>`,
		`<o>{ for $a in /as/a return <c>{max($a/p)}</c> }</o>`:   `<o><c>3</c><c></c></o>`,
		`<o>{ for $a in /as/a return <c>{avg($a/p)}</c> }</o>`:   `<o><c>2.1666666666666665</c><c></c></o>`,
	}
	for q, want := range cases {
		got, _, _ := run(t, q, doc, Config{EnableAggregation: true})
		if got != want {
			t.Errorf("%s\n got %q\nwant %q", q, got, want)
		}
	}
}

// TestAggregatesRequireOptIn: every aggregate is gated, not just count.
func TestAggregatesRequireOptIn(t *testing.T) {
	plan := compile(t, `<o>{ sum(/a/b) }</o>`)
	var sb strings.Builder
	if _, err := newXML(plan, strings.NewReader(`<a><b>1</b></a>`), &sb, Config{}).Run(); err == nil {
		t.Fatal("sum() must require EnableAggregation")
	}
}

// TestCountOverAttributes: count($x/@id) counts attribute presence.
func TestCountOverAttributes(t *testing.T) {
	const q = `<o>{ count(/d/a/@id) }</o>`
	const doc = `<d><a id="1"/><a/><a id="2"/></d>`
	out, _, _ := run(t, q, doc, Config{EnableAggregation: true})
	if out != `<o>2</o>` {
		t.Fatalf("got %q", out)
	}
}

// TestSumStreamsWithBoundedBuffer: per-iteration aggregates release
// their inputs each round.
func TestSumStreamsWithBoundedBuffer(t *testing.T) {
	var b strings.Builder
	b.WriteString("<as>")
	for i := 0; i < 200; i++ {
		b.WriteString(`<a><p>1</p><p>2</p></a>`)
	}
	b.WriteString("</as>")
	_, res, _ := run(t, `<o>{ for $a in /as/a return sum($a/p) }</o>`, b.String(),
		Config{EnableAggregation: true})
	if res.PeakBufferedNodes > 12 {
		t.Fatalf("peak = %d; aggregates must not accumulate across iterations", res.PeakBufferedNodes)
	}
}
