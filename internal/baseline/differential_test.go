package baseline

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"gcx/internal/analysis"
	"gcx/internal/engine"
	"gcx/internal/xmltok"
	"gcx/internal/xqgen"
	"gcx/internal/xqparse"
)

// ---- the differential property -------------------------------------------

// runAll compiles and runs a query on a document with the DOM oracle and
// the three streaming configurations, returning the outputs.
func runAll(t *testing.T, src, doc string) (oracle string, streaming map[string]string) {
	t.Helper()
	q, err := xqparse.Parse(src)
	if err != nil {
		t.Fatalf("generated query does not parse: %v\n%s", err, src)
	}
	plan, err := analysis.Analyze(q)
	if err != nil {
		t.Fatalf("generated query does not analyze: %v\n%s", err, src)
	}

	// Ablated analyses must agree too: no first-witness pruning, and
	// coarse subtree granularity.
	noWitness, err := analysis.AnalyzeWithOptions(q, analysis.Options{DisableFirstWitness: true})
	if err != nil {
		t.Fatalf("no-witness analysis: %v\n%s", err, src)
	}
	coarse, err := analysis.AnalyzeWithOptions(q, analysis.Options{CoarseGranularity: true})
	if err != nil {
		t.Fatalf("coarse analysis: %v\n%s", err, src)
	}

	var out bytes.Buffer
	if _, err := RunDOM(plan, strings.NewReader(doc), &out, true); err != nil {
		t.Fatalf("DOM run: %v\nquery: %s\ndoc: %s", err, src, doc)
	}
	oracle = out.String()

	type variant struct {
		plan *analysis.Plan
		cfg  engine.Config
	}
	streaming = map[string]string{}
	for name, v := range map[string]variant{
		"deferred":  {plan, engine.Config{SignOffMode: engine.Deferred, EnableAggregation: true}},
		"eager":     {plan, engine.Config{SignOffMode: engine.Eager, EnableAggregation: true}},
		"nogc":      {plan, engine.Config{DisableGC: true, EnableAggregation: true}},
		"nowitness": {noWitness, engine.Config{EnableAggregation: true}},
		"coarse":    {coarse, engine.Config{EnableAggregation: true}},
	} {
		cfg := v.cfg
		var b bytes.Buffer
		e := engine.New(v.plan, xmltok.NewTokenizer(strings.NewReader(doc)), xmltok.NewSerializer(&b), cfg)
		res, err := e.Run()
		if err != nil {
			t.Fatalf("%s run: %v\nquery: %s\ndoc: %s", name, err, src, doc)
		}
		if err := e.Buffer().CheckInvariants(); err != nil {
			t.Fatalf("%s invariants: %v\nquery: %s\ndoc: %s", name, err, src, doc)
		}
		if !cfg.DisableGC {
			if err := e.CheckBalance(); err != nil {
				t.Fatalf("%s balance: %v\nquery: %s\ndoc: %s\n%s", name, err, src, doc, e.Buffer().Dump(nil))
			}
			if res.FinalBufferedNodes != 0 {
				t.Fatalf("%s left %d nodes buffered\nquery: %s\ndoc: %s\n%s",
					name, res.FinalBufferedNodes, src, doc, e.Buffer().Dump(nil))
			}
		}
		streaming[name] = b.String()
	}
	return oracle, streaming
}

// TestDifferentialRandomized is the central correctness oracle: on
// randomized documents and queries, the streaming GCX engine (deferred
// and eager sign-off modes, and with GC disabled) must produce exactly
// the DOM engine's output, empty its buffer, and balance every role.
func TestDifferentialRandomized(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := xqgen.Document(r)
		src := xqgen.Query(r, xqgen.DefaultOptions())
		oracle, streaming := runAll(t, src, doc)
		for name, got := range streaming {
			if got != oracle {
				t.Logf("seed %d: %s output differs\nquery: %s\ndoc: %s\noracle: %q\n%s: %q",
					seed, name, src, doc, oracle, name, got)
				return false
			}
		}
		return true
	}
	n := 400
	if testing.Short() {
		n = 60
	}
	if err := quick.Check(f, &quick.Config{MaxCount: n}); err != nil {
		t.Fatal(err)
	}
}

// TestDifferentialFixedCorpus pins a set of tricky hand-written cases
// (regression corpus independent of the random generator).
func TestDifferentialFixedCorpus(t *testing.T) {
	docs := []string{
		`<root></root>`,
		`<root><a><a><a/></a></a></root>`,
		`<root><a id="1">x<b>y</b>z</a><a id="2"><b/></a></root>`,
		`<root><b k="0"><c>1</c></b><a><c>1</c></a><b><c>2</c></b></root>`,
	}
	queries := []string{
		`<out>{ for $x in /root//a return $x }</out>`,
		`<out>{ for $x in /root/a return for $y in $x//a return <n>{$y/@id}</n> }</out>`,
		`<out>{ for $x in /root/* return if ($x/c = /root/a/c) then $x else () }</out>`,
		`<out>{ if (exists /root/a/b) then /root/a/b else "none" }</out>`,
		`<out>{ for $x in /root/descendant-or-self::node() return "n" }</out>`,
		`<out>{ for $x in /root/a/text() return <t>{$x}</t> }</out>`,
		`<out>{ count(/root//c) }</out>`,
	}
	for _, doc := range docs {
		for _, src := range queries {
			oracle, streaming := runAll(t, src, doc)
			for name, got := range streaming {
				if got != oracle {
					t.Errorf("%s differs\nquery: %s\ndoc: %s\noracle: %q\ngot: %q",
						name, src, doc, oracle, got)
				}
			}
		}
	}
}
