// Package baseline implements the reference engines of the paper's
// Figure 5 comparison, one per buffering discipline:
//
//   - DOM engine (this file): buffer the complete input, then evaluate —
//     the non-streaming class (Galax, Saxon, QizX, MonetDB-with-reload).
//   - Projection-only engine: the GCX engine with garbage collection
//     disabled — static projection without dynamic buffer minimization
//     (the static-analysis-only class: Marian&Siméon projection,
//     FluXQuery without schema knowledge).
//
// Both evaluate the same normalized query with the same value semantics
// as the GCX engine, so outputs are byte-identical — which the
// differential property tests rely on.
package baseline

import (
	"context"
	"fmt"
	"io"

	"gcx/internal/analysis"
	"gcx/internal/dom"
	"gcx/internal/engine"
	"gcx/internal/event"
	"gcx/internal/xmltok"
	"gcx/internal/xpath"
	"gcx/internal/xqast"
	"gcx/internal/xqvalue"
)

// RunDOM evaluates the plan's normalized query over a fully buffered
// XML document (convenience wrapper over RunDOMSource for tests and
// callers with plain readers).
func RunDOM(plan *analysis.Plan, input io.Reader, output io.Writer, enableAggregation bool) (*engine.Result, error) {
	src := xmltok.NewTokenizer(input)
	sink := xmltok.NewSerializer(output)
	defer src.Release()
	defer sink.Release()
	return RunDOMSource(context.Background(), plan, src, sink, enableAggregation, 0)
}

// RunDOMSource evaluates the plan's normalized query over a fully
// buffered document read from an arbitrary event source, under a
// cancellation context: parsing aborts at token-pull boundaries,
// evaluation between loop iterations. maxNodes, when positive, is the
// node budget of the parse (the DOM engine's buffer population is the
// whole document); a breach aborts with an error wrapping
// buffer.ErrBudget. The caller owns src and sink and releases them
// after the call.
func RunDOMSource(ctx context.Context, plan *analysis.Plan, src event.Source, out event.Sink, enableAggregation bool, maxNodes int64) (*engine.Result, error) {
	if plan.UsesAggregation && !enableAggregation {
		return nil, fmt.Errorf("baseline: query uses the aggregation extension; enable it explicitly")
	}
	doc, err := dom.ParseSourceBudget(ctx, src, maxNodes)
	if err != nil {
		return nil, err
	}
	ev := &domEval{out: out, ctx: ctx}
	env := map[string]*dom.Node{xqast.RootVar: doc.Root}
	if err := ev.eval(plan.Normalized.Body, env); err != nil {
		return nil, err
	}
	if err := out.Flush(); err != nil {
		return nil, err
	}
	res := &engine.Result{
		TokensProcessed: doc.Tokens,
		// full buffering: the whole document is the watermark and stays
		PeakBufferedNodes:  doc.Nodes,
		PeakBufferedBytes:  doc.Bytes,
		FinalBufferedNodes: doc.Nodes,
		TotalAppended:      doc.Nodes,
		OutputBytes:        out.BytesWritten(),
	}
	return res, nil
}

// RunProjectionOnly evaluates with static projection but no dynamic
// buffer minimization (sign-offs become no-ops for memory purposes).
func RunProjectionOnly(plan *analysis.Plan, input io.Reader, output io.Writer, enableAggregation bool) (*engine.Result, error) {
	src := xmltok.NewTokenizer(input)
	sink := xmltok.NewSerializer(output)
	e := engine.New(plan, src, sink, engine.Config{
		DisableGC:         true,
		EnableAggregation: enableAggregation,
	})
	res, err := e.Run()
	e.Release()
	return res, err
}

// domEval is the recursive DOM evaluator; it mirrors the GCX engine's
// semantics without any streaming machinery.
type domEval struct {
	out event.Sink
	ctx context.Context
}

func (ev *domEval) eval(expr xqast.Expr, env map[string]*dom.Node) error {
	switch expr := expr.(type) {
	case *xqast.Empty:
		return nil
	case *xqast.Sequence:
		for _, item := range expr.Items {
			if err := ev.eval(item, env); err != nil {
				return err
			}
		}
		return nil
	case *xqast.StringLit:
		ev.out.Text(expr.Value)
		return nil
	case *xqast.Element:
		attrs := make([]event.Attr, len(expr.Attrs))
		for i, a := range expr.Attrs {
			if a.Expr == nil {
				attrs[i] = event.Attr{Name: a.Name, Value: a.Lit}
				continue
			}
			vals, err := ev.pathValues(*a.Expr, env)
			if err != nil {
				return err
			}
			attrs[i] = event.Attr{Name: a.Name, Value: xqvalue.JoinSpace(vals)}
		}
		ev.out.StartElement(expr.Name, attrs)
		if err := ev.eval(expr.Content, env); err != nil {
			return err
		}
		ev.out.EndElement(expr.Name)
		return nil
	case *xqast.VarRef:
		dom.Serialize(env[expr.Var], ev.out)
		return nil
	case *xqast.PathExpr:
		base := env[expr.Base]
		if expr.Path.EndsWithAttribute() {
			attr := expr.Path.LastStep().Test.Name
			for _, n := range selectElems(base, expr.Path.WithoutLastStep()) {
				if v, ok := n.Attr(attr); ok {
					ev.out.Text(v)
				}
			}
			return nil
		}
		for _, n := range dom.Select(base, expr.Path) {
			dom.Serialize(n, ev.out)
		}
		return nil
	case *xqast.ForExpr:
		base := env[expr.In.Base]
		for _, n := range dom.Select(base, expr.In.Path) {
			if ev.ctx != nil {
				if err := ev.ctx.Err(); err != nil {
					return err
				}
			}
			env[expr.Var] = n
			err := ev.eval(expr.Body, env)
			delete(env, expr.Var)
			if err != nil {
				return err
			}
		}
		return nil
	case *xqast.IfExpr:
		holds, err := ev.cond(expr.Cond, env)
		if err != nil {
			return err
		}
		if holds {
			return ev.eval(expr.Then, env)
		}
		return ev.eval(expr.Else, env)
	case *xqast.AggExpr:
		vals, err := ev.pathValues(expr.Arg, env)
		if err != nil {
			return err
		}
		if s, ok := xqvalue.Aggregate(expr.Fn, vals); ok {
			ev.out.Text(s)
		}
		return nil
	case *xqast.SignOff:
		return fmt.Errorf("baseline: sign-offs have no meaning in the DOM engine")
	default:
		return fmt.Errorf("baseline: unknown expression %T", expr)
	}
}

func selectElems(base *dom.Node, path xpath.Path) []*dom.Node {
	if path.IsEmpty() {
		return []*dom.Node{base}
	}
	return dom.Select(base, path)
}

func (ev *domEval) cond(c xqast.Cond, env map[string]*dom.Node) (bool, error) {
	switch c := c.(type) {
	case *xqast.BoolLit:
		return c.Value, nil
	case *xqast.NotCond:
		v, err := ev.cond(c.C, env)
		return !v, err
	case *xqast.AndCond:
		l, err := ev.cond(c.L, env)
		if err != nil || !l {
			return false, err
		}
		return ev.cond(c.R, env)
	case *xqast.OrCond:
		l, err := ev.cond(c.L, env)
		if err != nil || l {
			return l, err
		}
		return ev.cond(c.R, env)
	case *xqast.ExistsCond:
		base := env[c.Arg.Base]
		if c.Arg.Path.IsEmpty() {
			return true, nil
		}
		if c.Arg.Path.EndsWithAttribute() {
			attr := c.Arg.Path.LastStep().Test.Name
			for _, el := range selectElems(base, c.Arg.Path.WithoutLastStep()) {
				if _, ok := el.Attr(attr); ok {
					return true, nil
				}
			}
			return false, nil
		}
		return len(dom.Select(base, c.Arg.Path)) > 0, nil
	case *xqast.CompareCond:
		lv, err := ev.operand(c.L, env)
		if err != nil {
			return false, err
		}
		rv, err := ev.operand(c.R, env)
		if err != nil {
			return false, err
		}
		numeric := c.L.Kind == xqast.OperandNumber || c.R.Kind == xqast.OperandNumber ||
			c.Op == xqast.CmpLt || c.Op == xqast.CmpLe || c.Op == xqast.CmpGt || c.Op == xqast.CmpGe
		return xqvalue.ExistsPair(cmpOp(c.Op), lv, rv, numeric), nil
	default:
		return false, fmt.Errorf("baseline: unknown condition %T", c)
	}
}

// cmpOp maps syntax-level operators to the shared value semantics.
func cmpOp(op xqast.CmpOp) xqvalue.CmpOp {
	switch op {
	case xqast.CmpEq:
		return xqvalue.Eq
	case xqast.CmpNe:
		return xqvalue.Ne
	case xqast.CmpLt:
		return xqvalue.Lt
	case xqast.CmpLe:
		return xqvalue.Le
	case xqast.CmpGt:
		return xqvalue.Gt
	default:
		return xqvalue.Ge
	}
}

// pathValues evaluates a path expression to its value sequence,
// mirroring the streaming engine exactly.
func (ev *domEval) pathValues(pe xqast.PathExpr, env map[string]*dom.Node) ([]string, error) {
	base := env[pe.Base]
	if pe.Path.EndsWithAttribute() {
		attr := pe.Path.LastStep().Test.Name
		var vals []string
		for _, el := range selectElems(base, pe.Path.WithoutLastStep()) {
			if v, ok := el.Attr(attr); ok {
				vals = append(vals, v)
			}
		}
		return vals, nil
	}
	nodes := selectElems(base, pe.Path)
	vals := make([]string, len(nodes))
	for i, n := range nodes {
		vals[i] = n.StringValue()
	}
	return vals, nil
}

func (ev *domEval) operand(o xqast.Operand, env map[string]*dom.Node) ([]string, error) {
	switch o.Kind {
	case xqast.OperandString:
		return []string{o.Str}, nil
	case xqast.OperandNumber:
		return []string{xqvalue.FormatNumber(o.Num)}, nil
	case xqast.OperandPath:
		return ev.pathValues(o.Path, env)
	default:
		return nil, fmt.Errorf("baseline: unknown operand kind %d", o.Kind)
	}
}
