package xqvalue

import (
	"testing"
	"testing/quick"
)

func TestParseNumber(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"42", 42, true},
		{" 3.5\n", 3.5, true},
		{"-7", -7, true},
		{"", 0, false},
		{"abc", 0, false},
		{"1e3", 1000, true},
	}
	for _, c := range cases {
		got, ok := ParseNumber(c.in)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("ParseNumber(%q) = %v, %v", c.in, got, ok)
		}
	}
}

func TestFormatNumber(t *testing.T) {
	if FormatNumber(42) != "42" {
		t.Error("integers must print without a decimal point")
	}
	if FormatNumber(3.5) != "3.5" {
		t.Error("3.5")
	}
	if FormatNumber(-0.25) != "-0.25" {
		t.Error("-0.25")
	}
}

func TestCompareString(t *testing.T) {
	if !Compare(Eq, "a", "a", false) || Compare(Eq, "a", "b", false) {
		t.Error("string eq")
	}
	if !Compare(Ne, "a", "b", false) || Compare(Ne, "a", "a", false) {
		t.Error("string ne")
	}
	// orderings are numeric-only: non-numeric pairs fail
	if Compare(Lt, "a", "b", true) {
		t.Error("non-numeric ordering must fail")
	}
}

func TestCompareNumeric(t *testing.T) {
	cases := []struct {
		op   CmpOp
		l, r string
		want bool
	}{
		{Eq, "1.0", "1", true},
		{Ne, "1.0", "1", false},
		{Lt, "2", "10", true},
		{Le, "10", "10", true},
		{Gt, "95000.5", "95000", true},
		{Ge, "5", "6", false},
	}
	for _, c := range cases {
		if got := Compare(c.op, c.l, c.r, true); got != c.want {
			t.Errorf("Compare(%v, %q, %q) = %v", c.op, c.l, c.r, got)
		}
	}
}

func TestExistsPair(t *testing.T) {
	if !ExistsPair(Eq, []string{"a", "b"}, []string{"c", "b"}, false) {
		t.Error("existential positive")
	}
	if ExistsPair(Eq, []string{"a"}, nil, false) {
		t.Error("empty right must be false")
	}
	if ExistsPair(Eq, nil, nil, false) {
		t.Error("empty both must be false")
	}
}

func TestParseAggFunc(t *testing.T) {
	for name, want := range map[string]AggFunc{
		"count": Count, "sum": Sum, "min": Min, "max": Max, "avg": Avg,
	} {
		got, ok := ParseAggFunc(name)
		if !ok || got != want {
			t.Errorf("ParseAggFunc(%q) = %v, %v", name, got, ok)
		}
		if got.String() != name {
			t.Errorf("%v.String() = %q", got, got.String())
		}
	}
	if _, ok := ParseAggFunc("median"); ok {
		t.Error("unknown aggregate accepted")
	}
}

func TestAggregate(t *testing.T) {
	vals := []string{"3", "1.5", "x", "2"}
	cases := []struct {
		fn   AggFunc
		want string
		ok   bool
	}{
		{Count, "4", true}, // count counts nodes, including non-numeric
		{Sum, "6.5", true}, // non-numeric skipped
		{Min, "1.5", true},
		{Max, "3", true},
		{Avg, "2.1666666666666665", true},
	}
	for _, c := range cases {
		got, ok := Aggregate(c.fn, vals)
		if ok != c.ok || got != c.want {
			t.Errorf("Aggregate(%v) = %q, %v; want %q", c.fn, got, ok, c.want)
		}
	}
}

func TestAggregateEmpty(t *testing.T) {
	if got, ok := Aggregate(Count, nil); !ok || got != "0" {
		t.Error("count of empty = 0")
	}
	if got, ok := Aggregate(Sum, nil); !ok || got != "0" {
		t.Error("sum of empty = 0")
	}
	for _, fn := range []AggFunc{Min, Max, Avg} {
		if _, ok := Aggregate(fn, nil); ok {
			t.Errorf("%v of empty must be absent", fn)
		}
		if _, ok := Aggregate(fn, []string{"x"}); ok {
			t.Errorf("%v of all-non-numeric must be absent", fn)
		}
	}
}

// TestCompareAntisymmetry: numeric Lt/Gt are mirror images (property).
func TestCompareAntisymmetry(t *testing.T) {
	f := func(a, b int32) bool {
		l, r := FormatNumber(float64(a)), FormatNumber(float64(b))
		if a == b {
			return Compare(Le, l, r, true) && Compare(Ge, l, r, true) &&
				!Compare(Lt, l, r, true) && !Compare(Ne, l, r, true)
		}
		return Compare(Lt, l, r, true) == Compare(Gt, r, l, true) &&
			Compare(Lt, l, r, true) != Compare(Ge, l, r, true)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJoinSpace(t *testing.T) {
	if JoinSpace([]string{"a", "b"}) != "a b" {
		t.Error("join")
	}
	if JoinSpace(nil) != "" {
		t.Error("empty join")
	}
}
