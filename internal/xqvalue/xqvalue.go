// Package xqvalue centralizes the value semantics shared by the
// streaming engine and the DOM reference engine: XPath-1.0-style
// general comparisons over string values and the aggregation functions
// of the count()/sum()/min()/max()/avg() extension. Keeping one
// implementation guarantees the engines stay byte-identical — the
// property the differential tests enforce.
package xqvalue

import (
	"strconv"
	"strings"
)

// CmpOp mirrors xqast.CmpOp without importing it (both packages are
// leaves; the AST package defines syntax, this one semantics).
type CmpOp uint8

const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

// ParseNumber converts a string value to a float, XPath-style (leading
// and trailing whitespace ignored).
func ParseNumber(s string) (float64, bool) {
	f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	return f, err == nil
}

// FormatNumber renders a float the way the engines emit numeric
// results: integers without a decimal point.
func FormatNumber(f float64) string {
	if f == float64(int64(f)) {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'f', -1, 64)
}

// Compare applies one comparison between two string values. When
// numeric is set (a number literal or an ordering operator is
// involved), both sides must parse as numbers, otherwise the pair does
// not satisfy the comparison.
func Compare(op CmpOp, l, r string, numeric bool) bool {
	if numeric {
		lf, ok1 := ParseNumber(l)
		rf, ok2 := ParseNumber(r)
		if !ok1 || !ok2 {
			return false
		}
		switch op {
		case Eq:
			return lf == rf
		case Ne:
			return lf != rf
		case Lt:
			return lf < rf
		case Le:
			return lf <= rf
		case Gt:
			return lf > rf
		case Ge:
			return lf >= rf
		}
		return false
	}
	switch op {
	case Eq:
		return l == r
	case Ne:
		return l != r
	}
	return false
}

// ExistsPair reports whether any pair from the two value sequences
// satisfies the comparison (general-comparison existential semantics).
func ExistsPair(op CmpOp, left, right []string, numeric bool) bool {
	for _, l := range left {
		for _, r := range right {
			if Compare(op, l, r, numeric) {
				return true
			}
		}
	}
	return false
}

// AggFunc is an aggregation function of the extension.
type AggFunc uint8

const (
	Count AggFunc = iota
	Sum
	Min
	Max
	Avg
)

func (f AggFunc) String() string {
	switch f {
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Min:
		return "min"
	case Max:
		return "max"
	case Avg:
		return "avg"
	default:
		return "agg?"
	}
}

// ParseAggFunc resolves an aggregation function name; ok is false for
// non-aggregate names.
func ParseAggFunc(name string) (AggFunc, bool) {
	switch name {
	case "count":
		return Count, true
	case "sum":
		return Sum, true
	case "min":
		return Min, true
	case "max":
		return Max, true
	case "avg":
		return Avg, true
	default:
		return 0, false
	}
}

// Aggregate computes fn over the string values of the selected nodes.
// count counts nodes; sum treats non-numeric values as 0 is NOT done —
// following XQuery's fn:sum over untyped values, every value must be
// numeric, and non-numeric values are skipped with their presence
// ignored (documented deviation: the fragment has no error values).
// For min/max/avg of an empty (or all-non-numeric) sequence the result
// is absent and nothing is emitted.
func Aggregate(fn AggFunc, values []string) (string, bool) {
	if fn == Count {
		return strconv.Itoa(len(values)), true
	}
	var nums []float64
	for _, v := range values {
		if f, ok := ParseNumber(v); ok {
			nums = append(nums, f)
		}
	}
	switch fn {
	case Sum:
		total := 0.0
		for _, f := range nums {
			total += f
		}
		return FormatNumber(total), true
	case Min, Max:
		if len(nums) == 0 {
			return "", false
		}
		best := nums[0]
		for _, f := range nums[1:] {
			if (fn == Min && f < best) || (fn == Max && f > best) {
				best = f
			}
		}
		return FormatNumber(best), true
	case Avg:
		if len(nums) == 0 {
			return "", false
		}
		total := 0.0
		for _, f := range nums {
			total += f
		}
		return FormatNumber(total / float64(len(nums))), true
	}
	return "", false
}

// JoinSpace renders an attribute-value-template result: the selected
// values joined with single spaces (XQuery attribute content rule).
func JoinSpace(values []string) string {
	return strings.Join(values, " ")
}
