package analysis

import (
	"strings"
	"testing"

	"gcx/internal/xmark"
	"gcx/internal/xqparse"
)

func mustAnalyzeOpts(t *testing.T, src string, opts Options) *Plan {
	t.Helper()
	q, err := xqparse.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	plan, err := AnalyzeWithOptions(q, opts)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return plan
}

// TestStreamabilityXMark pins the lattice class of every query in the
// XMark and NDJSON catalogs — the repo-wide ground truth the property
// tests and gcxd admission control build on.
func TestStreamabilityXMark(t *testing.T) {
	want := map[string]StreamClass{
		// Single-pass pipelines: working set = projected paths.
		"Q1":  BoundedConstant,
		"Q6":  BoundedConstant,
		"Q13": BoundedConstant,
		"J1":  BoundedConstant,
		"J2":  BoundedConstant,
		// not(exists …) blocks until the record closes.
		"Q17": BoundedPerRecord,
		"Q20": BoundedPerRecord,
		"J3":  BoundedPerRecord,
		// Joins re-scan an absolute path per outer binding.
		"Q8": Unbounded,
		"Q9": Unbounded,
		// Whole-input aggregation.
		"Q5":      Unbounded,
		"Q6count": Unbounded,
		"Q20sum":  Unbounded,
	}
	texts := map[string]string{}
	for id, q := range xmark.Queries {
		texts[id] = q.Text
	}
	for id, q := range xmark.NDJSONQueries {
		texts[id] = q.Text
	}
	for id, wantClass := range want {
		src, ok := texts[id]
		if !ok {
			t.Fatalf("query %s missing from the xmark catalogs", id)
		}
		plan := mustAnalyzeOpts(t, src, Options{})
		st := plan.Stream
		if st.Class != wantClass {
			t.Errorf("%s: class = %v, want %v (reason: %s)", id, st.Class, wantClass, st.Reason)
		}
		if st.Reason == "" {
			t.Errorf("%s: empty reason", id)
		}
		if wantClass != Unbounded {
			if st.Bound.ConstNodes <= 0 {
				t.Errorf("%s: bound has no constant term: %+v", id, st.Bound)
			}
			if st.Bound.RecordFactor <= 0 || len(st.Bound.RecordPath.Steps) == 0 {
				t.Errorf("%s: looped bounded query must have a record term, got %s", id, st.Bound)
			}
		}
	}
	// Every catalog query must appear in the expectation table, so new
	// queries cannot land unclassified.
	for id := range texts {
		if _, ok := want[id]; !ok {
			t.Errorf("query %s has no streamability expectation; add it", id)
		}
	}
}

// TestStreamabilityRecordPaths pins the record paths the bounds are
// expressed in — the same cut the shardability analysis partitions at.
func TestStreamabilityRecordPaths(t *testing.T) {
	for _, tc := range []struct {
		id, path string
	}{
		{"Q1", "/site/people/person"},
		{"Q6", "/site/regions/descendant::item"},
		{"Q13", "/site/regions/australia/item"},
		{"Q17", "/site/people/person"},
		{"J1", "/root/record"},
		{"J3", "/root/record"},
	} {
		src := xmark.Queries[tc.id].Text
		if src == "" {
			src = xmark.NDJSONQueries[tc.id].Text
		}
		plan := mustAnalyzeOpts(t, src, Options{})
		if got := plan.Stream.Bound.RecordPath.String(); got != tc.path {
			t.Errorf("%s: record path = %s, want %s", tc.id, got, tc.path)
		}
	}
}

// TestStreamabilityShapes covers the classification rules the XMark
// catalog does not reach.
func TestStreamabilityShapes(t *testing.T) {
	for _, tc := range []struct {
		name, src  string
		opts       Options
		class      StreamClass
		reasonPart string
	}{
		{name: "constant query", src: `<a>{ "hello" }</a>`,
			class: BoundedConstant, reasonPart: "no for-loops"},
		// A root-based exists is unbounded even with the [1] latch: the
		// latch is per context and the witness sign-off is rooted at the
		// document, so one witness per context survives to end of input
		// (measured: peak grows linearly with the record count).
		{name: "top-level exists", src: `if (exists /bib/book) then "y" else "n"`,
			class: Unbounded, reasonPart: "witnesses accumulate until end of input"},
		{name: "top-level path output", src: `<out>{ /bib/book/title }</out>`,
			class: Unbounded, reasonPart: "absolute-path output"},
		{name: "top-level root comparison", src: `if (/bib/book/title = "TCP/IP") then "y" else ()`,
			class: Unbounded, reasonPart: "comparison against the absolute path"},
		{name: "sequential rescan", src: `<out>{ for $a in /bib/book return $a/title, for $b in /bib/article return $b/title }</out>`,
			class: Unbounded, reasonPart: "multiple loops"},
		{name: "record emitted whole", src: `for $r in /root/record return $r`,
			class: BoundedPerRecord, reasonPart: "emitted"},
		{name: "record string compared", src: `for $r in /root/record return if ($r = "x") then "y" else ()`,
			class: BoundedPerRecord, reasonPart: "string value"},
		{name: "unlatched witnesses in record", src: `for $r in /root/record return if (exists $r/a) then "y" else ()`,
			opts:  Options{DisableFirstWitness: true},
			class: BoundedPerRecord, reasonPart: "first-witness pruning disabled"},
		{name: "unlatched witnesses whole input", src: `if (exists /bib/book) then "y" else "n"`,
			opts:  Options{DisableFirstWitness: true},
			class: Unbounded, reasonPart: "witnesses accumulate until end of input"},
		{name: "coarse granularity in record", src: `for $r in /root/record return if ($r/a = "x") then $r/b else ()`,
			opts:  Options{CoarseGranularity: true},
			class: BoundedPerRecord, reasonPart: "coarse-granularity"},
		{name: "paper running example", src: PaperQuery,
			class: BoundedPerRecord, reasonPart: "negated existence"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			plan := mustAnalyzeOpts(t, tc.src, tc.opts)
			st := plan.Stream
			if st.Class != tc.class {
				t.Fatalf("class = %v (reason %q), want %v", st.Class, st.Reason, tc.class)
			}
			if !strings.Contains(st.Reason, tc.reasonPart) {
				t.Errorf("reason %q does not mention %q", st.Reason, tc.reasonPart)
			}
		})
	}
}

// TestStreamClassRoundTrip: the wire form parses back.
func TestStreamClassRoundTrip(t *testing.T) {
	for _, c := range []StreamClass{BoundedConstant, BoundedPerRecord, Unbounded} {
		got, err := ParseStreamClass(c.String())
		if err != nil || got != c {
			t.Errorf("round trip %v: got %v, err %v", c, got, err)
		}
	}
	if _, err := ParseStreamClass("bogus"); err == nil {
		t.Error("ParseStreamClass accepted bogus")
	}
}
