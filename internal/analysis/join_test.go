package analysis

import (
	"testing"

	"gcx/internal/xmark"
)

// TestDetectJoinQ8: the canonical XMark Q8 shape is recognized with the
// expected sides, keys and divergence point.
func TestDetectJoinQ8(t *testing.T) {
	j := mustAnalyze(t, xmark.Queries["Q8"].Text).Join
	if j == nil {
		t.Fatal("Q8 join not detected")
	}
	if got := j.ProbePath.String(); got != "/site/people/person" {
		t.Errorf("probe path = %s", got)
	}
	if got := j.BuildPath.String(); got != "/site/closed_auctions/closed_auction" {
		t.Errorf("build path = %s", got)
	}
	if got := j.ProbeKey.String(); got != "/@id" {
		t.Errorf("probe key = %s", got)
	}
	if got := j.BuildKey.String(); got != "/buyer/@person" {
		t.Errorf("build key = %s", got)
	}
	if j.Divergence != 1 {
		t.Errorf("divergence = %d, want 1", j.Divergence)
	}
	if j.ProbeHead == nil || j.ProbeLoop == nil || j.BuildHead == nil || j.Then == nil {
		t.Error("incomplete JoinInfo node pointers")
	}
	if j.ProbeVar == j.BuildVar || j.ProbeVar == "" {
		t.Errorf("vars: probe %q build %q", j.ProbeVar, j.BuildVar)
	}
}

// TestDetectJoinQ9: the second catalog join (items ⋈ closed auctions)
// also matches, with a deeper probe path.
func TestDetectJoinQ9(t *testing.T) {
	j := mustAnalyze(t, xmark.Queries["Q9"].Text).Join
	if j == nil {
		t.Fatal("Q9 join not detected")
	}
	if got := j.ProbePath.String(); got != "/site/regions/europe/item" {
		t.Errorf("probe path = %s", got)
	}
	if got := j.BuildPath.String(); got != "/site/closed_auctions/closed_auction" {
		t.Errorf("build path = %s", got)
	}
	if j.Divergence != 1 {
		t.Errorf("divergence = %d, want 1", j.Divergence)
	}
}

// TestDetectJoinNegatives: near-miss shapes must not be treated as
// joins — the nested-loop path stays authoritative for them.
func TestDetectJoinNegatives(t *testing.T) {
	cases := map[string]string{
		"self-join (same path both sides)": `<out>{
			for $a in /bib/book return
			  for $b in /bib/book return
			    if ($b/price = $a/price) then $b/title else () }</out>`,
		"prefix paths (one side contains the other)": `<out>{
			for $a in /bib/book return
			  for $b in /bib/book/review return
			    if ($b/who = $a/@id) then $b else () }</out>`,
		"non-equality operator": `<out>{
			for $p in /site/people/person return
			  for $t in /site/closed_auctions/closed_auction return
			    if ($t/price >= $p/@id) then $t/price else () }</out>`,
		"literal operand": `<out>{
			for $p in /site/people/person return
			  for $t in /site/closed_auctions/closed_auction return
			    if ($t/buyer/@person = "person0") then $t/price else () }</out>`,
		"then uses the probe variable": `<out>{
			for $p in /site/people/person return
			  for $t in /site/closed_auctions/closed_auction return
			    if ($t/buyer/@person = $p/@id) then $p/name else () }</out>`,
		"two root loops in the probe body": `<out>{
			for $p in /site/people/person return
			  (for $t in /site/closed_auctions/closed_auction return
			    if ($t/buyer/@person = $p/@id) then $t/price else (),
			   for $u in /site/open_auctions/open_auction return $u/bidder) }</out>`,
		"build loop nested under another loop": `<out>{
			for $p in /site/people/person return
			  for $w in $p/watches return
			    for $t in /site/closed_auctions/closed_auction return
			      if ($t/buyer/@person = $p/@id) then $t/price else () }</out>`,
		"else branch not empty": `<out>{
			for $p in /site/people/person return
			  for $t in /site/closed_auctions/closed_auction return
			    if ($t/buyer/@person = $p/@id) then $t/price else $t/seller }</out>`,
	}
	for name, src := range cases {
		if mustAnalyze(t, src).Join != nil {
			t.Errorf("%s: incorrectly detected as a join", name)
		}
	}
}

// TestDetectJoinStreamabilityUnchanged: detection does not alter the
// honest streamability verdict — the build side is still O(input).
func TestDetectJoinStreamabilityUnchanged(t *testing.T) {
	p := mustAnalyze(t, xmark.Queries["Q8"].Text)
	if p.Stream.Class != Unbounded {
		t.Errorf("Q8 class = %v, want Unbounded", p.Stream.Class)
	}
}
