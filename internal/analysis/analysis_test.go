package analysis

import (
	"strings"
	"testing"

	"gcx/internal/xqast"
	"gcx/internal/xqparse"
)

// PaperQuery is the running example of the paper (§1).
const PaperQuery = `<r> {
for $bib in /bib return
(for $x in $bib/* return
   if (not(exists $x/price)) then $x else (),
 for $b in $bib/book return $b/title)
} </r>`

func mustAnalyze(t *testing.T, src string) *Plan {
	t.Helper()
	q, err := xqparse.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	plan, err := Analyze(q)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return plan
}

// TestPaperRoles checks that the running example derives exactly the
// seven roles of the paper, in the paper's order and with the paper's
// paths (§2).
func TestPaperRoles(t *testing.T) {
	plan := mustAnalyze(t, PaperQuery)
	want := []string{
		"/",
		"/bib",
		"/bib/*",
		"/bib/*/price[1]",
		"/bib/*/descendant-or-self::node()",
		"/bib/book",
		"/bib/book/title/descendant-or-self::node()",
	}
	if len(plan.Roles) != len(want) {
		var got []string
		for _, r := range plan.Roles {
			got = append(got, r.Path.String())
		}
		t.Fatalf("got %d roles %v, want %d", len(plan.Roles), got, len(want))
	}
	for i, r := range plan.Roles {
		if r.Path.String() != want[i] {
			t.Errorf("r%d = %s, want %s", i+1, r.Path, want[i])
		}
	}
	kinds := []RoleKind{RoleRoot, RoleBinding, RoleBinding, RoleExists, RoleOutput, RoleBinding, RoleOutput}
	for i, r := range plan.Roles {
		if r.Kind != kinds[i] {
			t.Errorf("r%d kind = %s, want %s", i+1, r.Kind, kinds[i])
		}
	}
}

// collectSignOffs returns the sign-offs inside a loop body (or query
// top), in order, rendered as text.
func signOffStrings(e xqast.Expr) []string {
	var out []string
	for _, stmt := range statements(e) {
		if so, ok := stmt.(*xqast.SignOff); ok {
			out = append(out, xqast.PrintExpr(so))
		}
	}
	return out
}

// findLoop locates the for-loop binding the given variable.
func findLoop(e xqast.Expr, v string) *xqast.ForExpr {
	var found *xqast.ForExpr
	xqast.Walk(e, func(e xqast.Expr) bool {
		if f, ok := e.(*xqast.ForExpr); ok && f.Var == v {
			found = f
			return false
		}
		return true
	})
	return found
}

// TestPaperSignOffPlacement verifies the rewritten running example:
//
//	for $x in $bib/* return (if …, signOff($x,r3),
//	    signOff($x/price[1],r4), signOff($x/descendant-or-self::node(),r5))
//	for $b in $bib/book return ($b/title, signOff($b,r6),
//	    signOff($b/title/descendant-or-self::node(),r7))
//	… signOff($bib,r2) at the end of the outer loop.
func TestPaperSignOffPlacement(t *testing.T) {
	plan := mustAnalyze(t, PaperQuery)
	body := plan.Rewritten.Body

	xLoop := findLoop(body, "x")
	if xLoop == nil {
		t.Fatal("loop $x not found")
	}
	got := signOffStrings(xLoop.Body)
	want := []string{
		"signOff($x, r3)",
		"signOff($x/price[1], r4)",
		"signOff($x/descendant-or-self::node(), r5)",
	}
	if strings.Join(got, "; ") != strings.Join(want, "; ") {
		t.Errorf("$x loop sign-offs = %v, want %v", got, want)
	}

	bLoop := findLoop(body, "b")
	got = signOffStrings(bLoop.Body)
	want = []string{
		"signOff($b, r6)",
		"signOff($b/title/descendant-or-self::node(), r7)",
	}
	if strings.Join(got, "; ") != strings.Join(want, "; ") {
		t.Errorf("$b loop sign-offs = %v, want %v", got, want)
	}

	bibLoop := findLoop(body, "bib")
	got = signOffStrings(bibLoop.Body)
	want = []string{"signOff($bib, r2)"}
	if strings.Join(got, "; ") != strings.Join(want, "; ") {
		t.Errorf("$bib loop sign-offs = %v, want %v", got, want)
	}
	// signOff($bib, r2) must come after both inner loops.
	stmts := statements(bibLoop.Body)
	if len(stmts) != 3 {
		t.Fatalf("outer body has %d statements, want 3 (two loops + signOff)", len(stmts))
	}
	if _, ok := stmts[2].(*xqast.SignOff); !ok {
		t.Error("signOff($bib, r2) must be the last statement")
	}

	// r1 is signed off at the very end of the query, outside <r>.
	top := statements(body)
	last, ok := top[len(top)-1].(*xqast.SignOff)
	if !ok || last.Role != 0 {
		t.Errorf("top level must end with signOff(/, r1); got %v", xqast.PrintExpr(top[len(top)-1]))
	}
}

// TestNormalizationSplitsMultiStepLoops: for $p in /site/people/person
// becomes three nested single-step loops, each level getting a role.
func TestNormalizationSplitsMultiStepLoops(t *testing.T) {
	plan := mustAnalyze(t, `for $p in /site/people/person return $p/name`)
	// roles: r1 /, /site, /site/people, /site/people/person,
	// /site/people/person/name/d-o-s
	want := []string{
		"/",
		"/site",
		"/site/people",
		"/site/people/person",
		"/site/people/person/name/descendant-or-self::node()",
	}
	if len(plan.Roles) != len(want) {
		t.Fatalf("got %d roles, want %d: %v", len(plan.Roles), len(want), plan.Roles)
	}
	for i, r := range plan.Roles {
		if r.Path.String() != want[i] {
			t.Errorf("r%d = %s, want %s", i+1, r.Path, want[i])
		}
	}
	// The user variable binds the innermost loop.
	if findLoop(plan.Rewritten.Body, "p") == nil {
		t.Fatal("user variable lost in normalization")
	}
}

// TestJoinHoisting is the crucial Q8-shaped case: the inner loop scans an
// absolute path inside an outer loop, so its roles must NOT be signed
// off per inner iteration — they hoist to the top level, after the outer
// loop. That is what parks the join partners in the buffer (Fig. 4(b)).
func TestJoinHoisting(t *testing.T) {
	src := `for $p in /site/people/person return
	          (for $t in /site/closed_auctions/closed_auction return
	             if ($t/buyer/@person = $p/@id) then $t/price else ())`
	plan := mustAnalyze(t, src)

	// Find the innermost auction loop ($t): its body must contain NO
	// sign-off for $t's binding role.
	tLoop := findLoop(plan.Rewritten.Body, "t")
	if tLoop == nil {
		t.Fatal("loop $t not found")
	}
	for _, s := range signOffStrings(tLoop.Body) {
		if strings.Contains(s, "$t,") || strings.Contains(s, "$t/price") || strings.Contains(s, "$t/buyer") {
			t.Errorf("sign-off %q must not be inside the $t loop", s)
		}
	}

	// Top level: sign-offs with absolutized /site/closed_auctions/...
	// paths must appear after the outer loop.
	top := statements(plan.Rewritten.Body)
	var hoisted []string
	for _, stmt := range top {
		if so, ok := stmt.(*xqast.SignOff); ok {
			hoisted = append(hoisted, xqast.PrintExpr(so))
		}
	}
	joined := strings.Join(hoisted, "\n")
	for _, want := range []string{
		"signOff(/site/closed_auctions/closed_auction,",
		"signOff(/site/closed_auctions/closed_auction/buyer,",
		"signOff(/site/closed_auctions/closed_auction/price/descendant-or-self::node(),",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("top-level sign-offs missing %q; got:\n%s", want, joined)
		}
	}

	// The person-chain roles stay loop-local: $p's binding sign-off is
	// inside $p's loop.
	pLoop := findLoop(plan.Rewritten.Body, "p")
	found := false
	for _, s := range signOffStrings(pLoop.Body) {
		if s == "signOff($p, r4)" {
			found = true
		}
	}
	if !found {
		t.Errorf("person binding role not signed off per iteration: %v", signOffStrings(pLoop.Body))
	}

	// Both /site loops (person chain and auction chain) create distinct
	// roles over the same path.
	siteRoles := 0
	for _, r := range plan.Roles {
		if r.Path.String() == "/site" {
			siteRoles++
		}
	}
	if siteRoles != 2 {
		t.Errorf("expected 2 distinct /site roles (one per occurrence), got %d", siteRoles)
	}
}

// TestIntermediateHoistPlacement: a role anchored in an outer loop but
// used inside a deeper root-bound loop places at the anchor's loop, not
// deeper and not at top.
func TestIntermediateHoistPlacement(t *testing.T) {
	src := `for $a in /x return
	          (for $q in /foo return
	             if ($q/k = $a/w) then $q else ())`
	plan := mustAnalyze(t, src)
	aLoop := findLoop(plan.Rewritten.Body, "a")
	qLoop := findLoop(plan.Rewritten.Body, "q")
	// $a/w's operand role: inside $a loop (safe: chain {a}, enclosing {a}).
	aSigns := strings.Join(signOffStrings(aLoop.Body), "\n")
	if !strings.Contains(aSigns, "signOff($a/w/descendant-or-self::node()") {
		t.Errorf("$a/w operand role should be signed off in $a's loop:\n%s", aSigns)
	}
	// $q roles hoist to top (the $q loop re-executes per $a).
	for _, s := range signOffStrings(qLoop.Body) {
		t.Errorf("no sign-off may remain in the root-bound inner loop, found %q", s)
	}
	top := strings.Join(signOffStrings(plan.Rewritten.Body), "\n")
	for _, want := range []string{"signOff(/foo", "signOff(/foo/k", "signOff(/foo/descendant-or-self::node()"} {
		if !strings.Contains(top, want) {
			t.Errorf("top-level sign-offs missing %q; got:\n%s", want, top)
		}
	}
}

// TestAttributeOperandsNeedNoExtraRole: comparing $p/@id creates no role
// ($p is buffered by its binding role; attributes ride along).
func TestAttributeOperandsNeedNoExtraRole(t *testing.T) {
	plan := mustAnalyze(t, `for $p in /people/person return
	   if ($p/@id = "person0") then $p/name else ()`)
	for _, r := range plan.Roles {
		if strings.Contains(r.Path.String(), "@") {
			t.Errorf("role with attribute step: %s", r.Path)
		}
	}
	// roles: r1 /, /people, /people/person, name output
	if len(plan.Roles) != 4 {
		t.Fatalf("got %d roles, want 4: %+v", len(plan.Roles), plan.Roles)
	}
}

// TestAttributeOperandOnChildPath: $t/buyer/@person requires the buyer
// element (not its subtree).
func TestAttributeOperandOnChildPath(t *testing.T) {
	plan := mustAnalyze(t, `for $t in /a/t return if ($t/buyer/@person = "x") then $t else ()`)
	found := false
	for _, r := range plan.Roles {
		if r.Path.String() == "/a/t/buyer" && r.Kind == RoleOperand {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing element-only operand role for $t/buyer/@person: %+v", plan.Roles)
	}
}

// TestExistsGetsFirstWitness: exists($x/price) roles carry [1].
func TestExistsGetsFirstWitness(t *testing.T) {
	plan := mustAnalyze(t, `for $x in /bib/e return if (exists $x/price) then "y" else "n"`)
	found := false
	for _, r := range plan.Roles {
		if r.Kind == RoleExists {
			if !r.Path.LastStep().FirstOnly {
				t.Errorf("exists role lacks [1]: %s", r.Path)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no exists role derived")
	}
}

// TestCountRoleHasNoSubtreeExpansion: count() needs nodes, not subtrees.
func TestCountRoleHasNoSubtreeExpansion(t *testing.T) {
	plan := mustAnalyze(t, `for $x in /a/b return count($x/bidder)`)
	if !plan.UsesAggregation {
		t.Fatal("UsesAggregation not set")
	}
	found := false
	for _, r := range plan.Roles {
		if r.Kind == RoleAgg {
			if r.Path.String() != "/a/b/bidder" {
				t.Errorf("count role = %s, want /a/b/bidder", r.Path)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no count role derived")
	}
}

// TestTextFinalRole: $x/name/text() projects the text nodes themselves.
func TestTextFinalRole(t *testing.T) {
	plan := mustAnalyze(t, `for $x in /a/b return $x/name/text()`)
	found := false
	for _, r := range plan.Roles {
		if r.Path.String() == "/a/b/name/text()" {
			found = true
		}
	}
	if !found {
		t.Fatalf("text() output role missing: %+v", plan.Roles)
	}
}

// TestNormalizeErrors: scoping and fragment violations are rejected.
func TestNormalizeErrors(t *testing.T) {
	cases := []string{
		`$undeclared/name`,
		`for $x in /a return $y`,
		`for $x in /a return for $x in $x/b return $x`, // shadowing
		`for $x in /a/self::b return $x`,               // self axis in binding
		`for $x in /a/text()/b return $x`,              // text() mid-binding
		`if (exists $zzz/a) then "y" else "n"`,
	}
	for _, src := range cases {
		q, err := xqparse.Parse(src)
		if err != nil {
			t.Fatalf("parse(%q): %v", src, err)
		}
		if _, err := Analyze(q); err == nil {
			t.Errorf("Analyze(%q): expected error", src)
		}
	}
}

// TestPlanReportInputs: every field the public ExplainReport renders
// from (the text form now lives in the root package as
// ExplainReport.Text, single source of truth) is populated by analysis.
func TestPlanReportInputs(t *testing.T) {
	plan := mustAnalyze(t, PaperQuery)
	if len(plan.Roles) == 0 {
		t.Fatal("no roles")
	}
	if !strings.Contains(xqast.Print(plan.Rewritten), "signOff($bib, r2)") {
		t.Error("rewritten query misses signOff($bib, r2)")
	}
	if plan.Stream.Reason == "" {
		t.Error("empty streamability reason")
	}
	if plan.Automaton == nil && plan.SkipReason == "" {
		t.Error("nil automaton without a skip reason")
	}
}

// TestNormalizedPreserved: Plan.Normalized contains no sign-offs.
func TestNormalizedPreserved(t *testing.T) {
	plan := mustAnalyze(t, PaperQuery)
	xqast.Walk(plan.Normalized.Body, func(e xqast.Expr) bool {
		if _, ok := e.(*xqast.SignOff); ok {
			t.Fatal("Normalized must not contain signOff nodes")
		}
		return true
	})
	// Rewritten does contain them.
	count := 0
	xqast.Walk(plan.Rewritten.Body, func(e xqast.Expr) bool {
		if _, ok := e.(*xqast.SignOff); ok {
			count++
		}
		return true
	})
	if count != len(plan.Roles) {
		t.Fatalf("%d sign-offs for %d roles (must be 1:1)", count, len(plan.Roles))
	}
}

// TestDescendantLoopChainPlacement: descendant-axis loops anchored
// through the chain keep per-iteration sign-offs.
func TestDescendantLoopChainPlacement(t *testing.T) {
	plan := mustAnalyze(t, `for $r in /site/regions return for $i in $r//item return $i/name`)
	iLoop := findLoop(plan.Rewritten.Body, "i")
	signs := strings.Join(signOffStrings(iLoop.Body), "\n")
	if !strings.Contains(signs, "signOff($i, ") {
		t.Errorf("descendant loop binding should sign off per iteration:\n%s", signs)
	}
	if !strings.Contains(signs, "signOff($i/name/descendant-or-self::node(), ") {
		t.Errorf("output role should sign off per iteration:\n%s", signs)
	}
	roleFound := false
	for _, r := range plan.Roles {
		if r.Path.String() == "/site/regions/descendant::item" {
			roleFound = true
		}
	}
	if !roleFound {
		t.Fatalf("descendant binding role missing: %+v", plan.Roles)
	}
}

func TestRolePathsOrder(t *testing.T) {
	plan := mustAnalyze(t, PaperQuery)
	paths := plan.RolePaths()
	if len(paths) != len(plan.Roles) {
		t.Fatal("RolePaths length mismatch")
	}
	for i := range paths {
		if !paths[i].Equal(plan.Roles[i].Path) {
			t.Fatalf("RolePaths[%d] mismatch", i)
		}
	}
}
