package analysis

import (
	"strings"
	"testing"

	"gcx/internal/xqparse"
)

func shardableOf(t *testing.T, src string) (*ShardInfo, string) {
	t.Helper()
	q, err := xqparse.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	plan, err := Analyze(q)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return Shardable(plan)
}

func TestShardableQ1Style(t *testing.T) {
	info, reason := shardableOf(t, `<result>{
	  for $p in /site/people/person return
	    if ($p/@id = "person0") then $p/name else ()
	}</result>`)
	if info == nil {
		t.Fatalf("not shardable: %s", reason)
	}
	if got := info.PartitionPath.String(); got != "/site/people/person" {
		t.Fatalf("partition path = %s", got)
	}
	if string(info.Prefix) != "<result>" || string(info.Suffix) != "</result>" {
		t.Fatalf("wrapper = %q … %q", info.Prefix, info.Suffix)
	}
	if info.Inner == nil || len(info.Inner.Roles) == 0 {
		t.Fatal("inner plan missing")
	}
}

func TestShardableDescendantStopsPath(t *testing.T) {
	// Q6 shape: the descendant step cannot join the partition path, so
	// the cut stops at /site/regions.
	info, reason := shardableOf(t, `<result>{
	  for $r in /site/regions return
	    for $i in $r//item return <item>{ $i/name }</item>
	}</result>`)
	if info == nil {
		t.Fatalf("not shardable: %s", reason)
	}
	if got := info.PartitionPath.String(); got != "/site/regions" {
		t.Fatalf("partition path = %s", got)
	}
}

func TestShardableWildcardStep(t *testing.T) {
	info, reason := shardableOf(t, `<r>{ for $i in /site/regions/*/item return $i/name }</r>`)
	if info == nil {
		t.Fatalf("not shardable: %s", reason)
	}
	if got := info.PartitionPath.String(); got != "/site/regions/*/item" {
		t.Fatalf("partition path = %s", got)
	}
}

func TestShardableBodyReferencesOuterVar(t *testing.T) {
	// The body reads $b (the book), so records must be whole books even
	// though the chain syntactically extends to /bib/book/author.
	info, reason := shardableOf(t, `<r>{
	  for $b in /bib/book return
	    for $a in $b/author return ($b/title, $a)
	}</r>`)
	if info == nil {
		t.Fatalf("not shardable: %s", reason)
	}
	if got := info.PartitionPath.String(); got != "/bib/book" {
		t.Fatalf("partition path = %s, want cut at the referenced level", got)
	}
}

func TestShardableRootLoop(t *testing.T) {
	// The paper's running example iterates the root element itself —
	// partitionable, if degenerately (one record).
	info, reason := shardableOf(t, `<r> {
	for $bib in /bib return
	(for $x in $bib/* return
	   if (not(exists $x/price)) then $x else (),
	 for $b in $bib/book return $b/title)
	} </r>`)
	if info == nil {
		t.Fatalf("not shardable: %s", reason)
	}
	if got := info.PartitionPath.String(); got != "/bib" {
		t.Fatalf("partition path = %s", got)
	}
}

// TestShardableJoin: a detected join partitions on the probe path and
// records the build path plus the shared-ancestor divergence so the
// shard runner can broadcast the build section.
func TestShardableJoin(t *testing.T) {
	info, reason := shardableOf(t, `<result>{
	  for $p in /site/people/person return
	    for $t in /site/closed_auctions/closed_auction return
	      if ($t/buyer/@person = $p/@id) then $t/price else ()
	}</result>`)
	if info == nil {
		t.Fatalf("not shardable: %s", reason)
	}
	if !info.Join {
		t.Fatal("Join flag not set on a join plan")
	}
	if got := info.PartitionPath.String(); got != "/site/people/person" {
		t.Fatalf("partition path = %s, want the probe path", got)
	}
	if got := info.BuildPath.String(); got != "/site/closed_auctions/closed_auction" {
		t.Fatalf("build path = %s", got)
	}
	if info.Divergence != 1 {
		t.Fatalf("divergence = %d, want 1 (shared /site)", info.Divergence)
	}
	if info.Inner == nil || info.Inner.Join == nil {
		t.Fatal("inner plan did not re-detect the join")
	}
}

func TestNotShardable(t *testing.T) {
	cases := []struct {
		name, src, reasonPart string
	}{
		{"join without shared ancestor", `<r>{
		  for $p in /people/person return
		    for $t in /auctions/auction return
		      if ($t/buyer = $p/name) then $t/price else ()
		}</r>`, "share no ancestor"},
		{"aggregation", `<r>{ count(/site/regions//item) }</r>`, "aggregation"},
		{"constant", `<r>hello</r>`, "no outer for-loop"},
		{"whole-doc path", `<r>{ /site/people }</r>`, "whole document"},
		{"two loops", `<r>{ for $a in /s/a return $a, for $b in /s/b return $b }</r>`, "multiple dynamic"},
		{"descendant first step", `<r>{ for $i in //item return $i }</r>`, "non-child"},
	}
	for _, c := range cases {
		info, reason := shardableOf(t, c.src)
		if info != nil {
			t.Fatalf("%s: unexpectedly shardable on %s", c.name, info.PartitionPath)
		}
		if !strings.Contains(reason, c.reasonPart) {
			t.Fatalf("%s: reason %q does not mention %q", c.name, reason, c.reasonPart)
		}
	}
}

func TestShardableWrapperAttributes(t *testing.T) {
	info, reason := shardableOf(t, `<r kind="x&y" n='2'>{ for $b in /bib/book return $b }</r>`)
	if info == nil {
		t.Fatalf("not shardable: %s", reason)
	}
	// The wrapper must serialize exactly like the engine's serializer
	// (attribute escaping included).
	if string(info.Prefix) != `<r kind="x&amp;y" n="2">` {
		t.Fatalf("prefix = %q", info.Prefix)
	}
	if string(info.Suffix) != `</r>` {
		t.Fatalf("suffix = %q", info.Suffix)
	}
}

func TestShardableInnerPlanInheritsOptions(t *testing.T) {
	q, err := xqparse.Parse(`<r>{ for $x in /bib/* return if (exists $x/price) then $x/title else () }</r>`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := AnalyzeWithOptions(q, Options{DisableFirstWitness: true})
	if err != nil {
		t.Fatal(err)
	}
	info, reason := Shardable(plan)
	if info == nil {
		t.Fatalf("not shardable: %s", reason)
	}
	if !info.Inner.Opts.DisableFirstWitness {
		t.Fatal("inner plan lost the analysis options")
	}
	for _, r := range info.Inner.Roles {
		for _, s := range r.Path.Steps {
			if s.FirstOnly {
				t.Fatalf("inner role %s kept a [1] predicate despite DisableFirstWitness", r.Path)
			}
		}
	}
}
