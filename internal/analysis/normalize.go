package analysis

import (
	"fmt"

	"gcx/internal/xpath"
	"gcx/internal/xqast"
)

// Normalize reduces a parsed query to the single-step core fragment of
// GCX (paper footnote 1: a for-loop is single-step if it has the form
// "for $x in $y/axis::ν return α"). Multi-step bindings are split into
// chains of nested single-step loops over fresh variables, so that every
// structural level of a binding path has its own loop — and therefore
// its own role. Normalize also validates variable scoping and the
// fragment's step restrictions.
func Normalize(q *xqast.Query) (*xqast.Query, error) {
	n := &normalizer{used: map[string]bool{}}
	// collect used names so fresh variables cannot collide
	collectVarNames(q.Body, n.used)
	body, err := n.expr(q.Body, map[string]bool{xqast.RootVar: true})
	if err != nil {
		return nil, err
	}
	return &xqast.Query{Body: body}, nil
}

type normalizer struct {
	used map[string]bool
	seq  int
}

func (n *normalizer) fresh() string {
	for {
		n.seq++
		name := fmt.Sprintf("v%d", n.seq)
		if !n.used[name] {
			n.used[name] = true
			return name
		}
	}
}

func collectVarNames(e xqast.Expr, out map[string]bool) {
	xqast.Walk(e, func(e xqast.Expr) bool {
		if f, ok := e.(*xqast.ForExpr); ok {
			out[f.Var] = true
		}
		return true
	})
}

func (n *normalizer) expr(e xqast.Expr, scope map[string]bool) (xqast.Expr, error) {
	switch e := e.(type) {
	case *xqast.Empty, *xqast.StringLit:
		return e, nil
	case *xqast.Sequence:
		items := make([]xqast.Expr, len(e.Items))
		for i, item := range e.Items {
			ni, err := n.expr(item, scope)
			if err != nil {
				return nil, err
			}
			items[i] = ni
		}
		return &xqast.Sequence{Items: items}, nil
	case *xqast.Element:
		for _, a := range e.Attrs {
			if a.Expr != nil {
				if err := n.checkUsePath(*a.Expr, scope); err != nil {
					return nil, err
				}
			}
		}
		content, err := n.expr(e.Content, scope)
		if err != nil {
			return nil, err
		}
		return &xqast.Element{Name: e.Name, Attrs: e.Attrs, Content: content}, nil
	case *xqast.VarRef:
		if !scope[e.Var] {
			return nil, fmt.Errorf("analysis: unbound variable $%s", e.Var)
		}
		return e, nil
	case *xqast.PathExpr:
		if err := n.checkUsePath(*e, scope); err != nil {
			return nil, err
		}
		return e, nil
	case *xqast.AggExpr:
		if err := n.checkUsePath(e.Arg, scope); err != nil {
			return nil, err
		}
		return e, nil
	case *xqast.ForExpr:
		return n.forExpr(e, scope)
	case *xqast.IfExpr:
		if err := n.cond(e.Cond, scope); err != nil {
			return nil, err
		}
		then, err := n.expr(e.Then, scope)
		if err != nil {
			return nil, err
		}
		els, err := n.expr(e.Else, scope)
		if err != nil {
			return nil, err
		}
		return &xqast.IfExpr{Cond: e.Cond, Then: then, Else: els}, nil
	case *xqast.SignOff:
		return nil, fmt.Errorf("analysis: signOff cannot appear in input queries")
	default:
		return nil, fmt.Errorf("analysis: unknown expression %T", e)
	}
}

// forExpr splits a multi-step binding into a chain of single-step loops.
func (n *normalizer) forExpr(f *xqast.ForExpr, scope map[string]bool) (xqast.Expr, error) {
	if !scope[f.In.Base] {
		return nil, fmt.Errorf("analysis: unbound variable $%s in for-loop binding", f.In.Base)
	}
	if scope[f.Var] {
		return nil, fmt.Errorf("analysis: variable $%s shadows an in-scope binding", f.Var)
	}
	steps := f.In.Path.Steps
	if len(steps) == 0 {
		return nil, fmt.Errorf("analysis: empty for-loop binding for $%s", f.Var)
	}
	for i, s := range steps {
		switch s.Axis {
		case xpath.Child, xpath.Descendant, xpath.DescendantOrSelf:
		default:
			return nil, fmt.Errorf("analysis: axis %s not supported in for-loop bindings", s.Axis)
		}
		if s.Test.Kind == xpath.TestText && i != len(steps)-1 {
			return nil, fmt.Errorf("analysis: text() must be the final step of a binding")
		}
	}

	scope[f.Var] = true
	defer delete(scope, f.Var)

	// innermost loop keeps the user variable and the final step
	base := f.In.Base
	var chainVars []string
	for i := 0; i < len(steps)-1; i++ {
		v := n.fresh()
		chainVars = append(chainVars, v)
		scope[v] = true
	}
	defer func() {
		for _, v := range chainVars {
			delete(scope, v)
		}
	}()

	body, err := n.expr(f.Body, scope)
	if err != nil {
		return nil, err
	}

	inner := &xqast.ForExpr{
		Var: f.Var,
		In: xqast.PathExpr{
			Base: lastOr(chainVars, base),
			Path: xpath.Path{Steps: []xpath.Step{steps[len(steps)-1]}},
		},
		Body: body,
	}
	loop := inner
	for i := len(chainVars) - 1; i >= 0; i-- {
		prev := base
		if i > 0 {
			prev = chainVars[i-1]
		}
		loop = &xqast.ForExpr{
			Var: chainVars[i],
			In: xqast.PathExpr{
				Base: prev,
				Path: xpath.Path{Steps: []xpath.Step{steps[i]}},
			},
			Body: loop,
		}
	}
	return loop, nil
}

func lastOr(vars []string, fallback string) string {
	if len(vars) == 0 {
		return fallback
	}
	return vars[len(vars)-1]
}

func (n *normalizer) cond(c xqast.Cond, scope map[string]bool) error {
	switch c := c.(type) {
	case *xqast.ExistsCond:
		return n.checkUsePath(c.Arg, scope)
	case *xqast.NotCond:
		return n.cond(c.C, scope)
	case *xqast.AndCond:
		if err := n.cond(c.L, scope); err != nil {
			return err
		}
		return n.cond(c.R, scope)
	case *xqast.OrCond:
		if err := n.cond(c.L, scope); err != nil {
			return err
		}
		return n.cond(c.R, scope)
	case *xqast.BoolLit:
		return nil
	case *xqast.CompareCond:
		for _, o := range []xqast.Operand{c.L, c.R} {
			if o.Kind == xqast.OperandPath {
				if err := n.checkUsePath(o.Path, scope); err != nil {
					return err
				}
			}
		}
		return nil
	default:
		return fmt.Errorf("analysis: unknown condition %T", c)
	}
}

// checkUsePath validates a path used in output, condition or count
// position.
func (n *normalizer) checkUsePath(pe xqast.PathExpr, scope map[string]bool) error {
	if !scope[pe.Base] {
		return fmt.Errorf("analysis: unbound variable $%s", pe.Base)
	}
	for i, s := range pe.Path.Steps {
		last := i == len(pe.Path.Steps)-1
		switch s.Axis {
		case xpath.Child, xpath.Descendant, xpath.DescendantOrSelf, xpath.Self:
		case xpath.Attribute:
			if !last {
				return fmt.Errorf("analysis: attribute step must be final in %s", pe.Path)
			}
		}
		if s.Test.Kind == xpath.TestText && !last {
			return fmt.Errorf("analysis: text() must be the final step in %s", pe.Path)
		}
	}
	return nil
}
