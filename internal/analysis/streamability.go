package analysis

// Streamability classification (DESIGN.md §9): decide, at compile time,
// how a plan's buffer high watermark scales with the input — the static
// counterpart of the paper's dynamic buffer minimization. The lattice
// has three points:
//
//	BoundedConstant  ⊑  BoundedPerRecord  ⊑  Unbounded
//
// BoundedConstant queries are single-pass record pipelines whose
// working set is the projected paths of the record in flight (Q1, Q6:
// binding chain + output/operand/exists roles, with existence witnesses
// latched by the [1] first-witness predicate). BoundedPerRecord queries
// are still pipelines, but some construct blocks until the record's end
// tag — a negated existence condition proves absence only at close, a
// whole-record output or comparison needs the full subtree — so the
// peak is proportional to one record, not to the projected slice of it.
// Unbounded queries read state across the whole input: joins re-scan an
// absolute path per outer binding (Q8's hoisted sign-offs, paper
// Fig. 4(b)), whole-input aggregation cannot emit before end of stream,
// and absolute-path outputs buffer every match in the document.
//
// For the bounded classes the classifier also derives a concrete node
// budget: peak ≤ ConstNodes + RecordFactor·|record|, where |record| is
// the node count of the largest subtree matching Bound.RecordPath. The
// record path is the prefix of the pass-through loop chain at the
// shallowest chain variable the body uses — the same cut the
// shardability analysis partitions at. The bound is deliberately
// generous (it must hold for deferred sign-offs, which keep a record
// until its close tag arrives, and for the record-boundary overlap of
// the streaming pipeline); it is property-tested against
// Result.PeakBufferedNodes across the XMark and NDJSON suites.

import (
	"fmt"

	"gcx/internal/xpath"
	"gcx/internal/xqast"
)

// StreamClass is one point of the streamability lattice.
type StreamClass uint8

const (
	// BoundedConstant marks single-pass pipelines whose buffer holds a
	// constant number of records' projected paths, independent of input
	// length.
	BoundedConstant StreamClass = iota
	// BoundedPerRecord marks pipelines that retain whole records until
	// their close tag: peak ≤ k·record-size.
	BoundedPerRecord
	// Unbounded marks queries whose buffer grows with the input: joins,
	// whole-input aggregation, absolute-path outputs.
	Unbounded
)

func (c StreamClass) String() string {
	switch c {
	case BoundedConstant:
		return "bounded-constant"
	case BoundedPerRecord:
		return "bounded-per-record"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("StreamClass(%d)", uint8(c))
	}
}

// ParseStreamClass resolves the string form produced by
// StreamClass.String (the wire form of /explain reports).
func ParseStreamClass(s string) (StreamClass, error) {
	switch s {
	case "bounded-constant":
		return BoundedConstant, nil
	case "bounded-per-record":
		return BoundedPerRecord, nil
	case "unbounded":
		return Unbounded, nil
	}
	return Unbounded, fmt.Errorf("unknown streamability class %q", s)
}

// Bound is the static node-budget expression of a bounded plan:
// peak buffered nodes ≤ ConstNodes + RecordFactor·nodes(RecordPath),
// where nodes(RecordPath) is the element+text node count of the largest
// subtree matching RecordPath in the input at hand.
type Bound struct {
	// ConstNodes covers the input-independent population: the virtual
	// root, the open ancestor chain of the record, and one latched
	// witness per first-witness ([1]) projection path.
	ConstNodes int64
	// RecordFactor is the number of record subtrees that can be wholly
	// or partly buffered at once: the record in flight, the next record
	// already streaming in, and a record whose deferred sign-offs have
	// not yet fired. Zero for loop-free queries.
	RecordFactor int64
	// RecordPath is the absolute path whose matches are the records of
	// the bound; empty when RecordFactor is zero.
	RecordPath xpath.Path
}

// Eval instantiates the bound for a concrete input, given the node
// count of its largest record subtree.
func (b Bound) Eval(recordNodes int64) int64 {
	return b.ConstNodes + b.RecordFactor*recordNodes
}

func (b Bound) String() string {
	if b.RecordFactor == 0 {
		return fmt.Sprintf("%d nodes", b.ConstNodes)
	}
	return fmt.Sprintf("%d + %d·nodes(%s)", b.ConstNodes, b.RecordFactor, b.RecordPath.String())
}

// StreamInfo is the classifier's verdict on one plan.
type StreamInfo struct {
	// Class is the lattice point.
	Class StreamClass
	// Reason says, in the analyzer's words, why the plan landed on
	// Class — the message strict compilation rejects Unbounded plans
	// with.
	Reason string
	// Bound is the static node budget; meaningful only for the bounded
	// classes (zero value for Unbounded).
	Bound Bound
}

// streamWalk collects the classification evidence in one pass over the
// normalized body.
type streamWalk struct {
	// absLoops are for-loops over absolute paths, discovery order.
	absLoops []*xqast.ForExpr
	// nestedAbs is an absolute-path loop found inside another loop's
	// body — a join or per-binding re-scan.
	nestedAbs *xqast.ForExpr
	rootAgg   *xqast.AggExpr // aggregation over an absolute path
	rootOut   *xqast.PathExpr
	rootCmp   *xqast.PathExpr
	// rootExists notes an existence condition over an absolute path.
	// Its [1] latch holds one witness per *context* (per match of the
	// path prefix), and the witness sign-off is based at the document
	// root — so witnesses accumulate until end of input.
	rootExists *xqast.ExistsCond
	anyExists  bool
	notCond    bool
	// varRefs are variables emitted whole via VarRef (plus attribute
	// value templates, which also serialize from the buffered node).
	varRefs map[string]bool
	// wholeCmpVars are variables whose full string value is a
	// comparison operand (an operand path with no steps).
	wholeCmpVars map[string]bool
}

func (w *streamWalk) expr(e xqast.Expr, depth int) {
	switch e := e.(type) {
	case *xqast.Sequence:
		for _, item := range e.Items {
			w.expr(item, depth)
		}
	case *xqast.Element:
		for _, a := range e.Attrs {
			if a.Expr != nil {
				w.operand(xqast.Operand{Kind: xqast.OperandPath, Path: *a.Expr})
			}
		}
		w.expr(e.Content, depth)
	case *xqast.PathExpr:
		if e.Base == xqast.RootVar && w.rootOut == nil {
			w.rootOut = e
		}
	case *xqast.AggExpr:
		if e.Arg.Base == xqast.RootVar && w.rootAgg == nil {
			w.rootAgg = e
		}
	case *xqast.VarRef:
		w.varRefs[e.Var] = true
	case *xqast.ForExpr:
		if e.In.Base == xqast.RootVar {
			w.absLoops = append(w.absLoops, e)
			if depth > 0 && w.nestedAbs == nil {
				w.nestedAbs = e
			}
		}
		w.expr(e.Body, depth+1)
	case *xqast.IfExpr:
		xqast.WalkConds(e.Cond, func(c xqast.Cond) {
			switch c := c.(type) {
			case *xqast.NotCond:
				w.notCond = true
			case *xqast.ExistsCond:
				w.anyExists = true
				if c.Arg.Base == xqast.RootVar && w.rootExists == nil {
					w.rootExists = c
				}
			case *xqast.CompareCond:
				w.operand(c.L)
				w.operand(c.R)
			}
		})
		w.expr(e.Then, depth)
		w.expr(e.Else, depth)
	}
}

// operand records the evidence of one comparison operand (or attribute
// value template, which is string-valued the same way).
func (w *streamWalk) operand(o xqast.Operand) {
	if o.Kind != xqast.OperandPath {
		return
	}
	if o.Path.Base == xqast.RootVar {
		if w.rootCmp == nil {
			p := o.Path
			w.rootCmp = &p
		}
		return
	}
	if len(o.Path.Path.Steps) == 0 {
		w.wholeCmpVars[o.Path.Base] = true
	}
}

// recordFactor is the number of record subtrees a bounded pipeline can
// hold at once: the record being evaluated, the next one already
// streaming in, and one whose deferred sign-offs await its close tag.
const recordFactor = 3

// constNodes derives the input-independent term of the bound from the
// projection roles: a fixed allowance for the virtual root and open
// ancestor chain, plus per role room for the nodes its path can pin
// outside any record (prefix elements and latched [1] witnesses).
func constNodes(p *Plan) int64 {
	c := int64(64)
	for _, r := range p.Roles {
		c += 4*int64(len(r.Path.Steps)) + 8
	}
	return c
}

// Streamability classifies a compiled plan into the streamability
// lattice and, for the bounded classes, derives its static node budget.
// The verdict is computed once at analysis time and stored as
// Plan.Stream.
func Streamability(p *Plan) StreamInfo {
	w := &streamWalk{varRefs: map[string]bool{}, wholeCmpVars: map[string]bool{}}
	w.expr(p.Normalized.Body, 0)

	if w.nestedAbs != nil {
		return StreamInfo{Class: Unbounded, Reason: fmt.Sprintf(
			"join: the loop over %s restarts for every binding of an outer loop, so its matches are parked in the buffer until the outer loop completes (hoisted sign-offs)",
			w.nestedAbs.In.Path.String())}
	}
	if len(w.absLoops) > 1 {
		return StreamInfo{Class: Unbounded, Reason: fmt.Sprintf(
			"multiple loops over absolute paths (%s, %s): a later loop's matches accumulate in the buffer while an earlier one is still draining",
			w.absLoops[0].In.Path.String(), w.absLoops[1].In.Path.String())}
	}
	if w.rootAgg != nil {
		return StreamInfo{Class: Unbounded, Reason: fmt.Sprintf(
			"whole-input aggregation %s(%s): the aggregate cannot be emitted before end of input, so its witnesses stay relevant for the whole stream",
			w.rootAgg.Fn, w.rootAgg.Arg.Path.String())}
	}
	if w.rootOut != nil {
		return StreamInfo{Class: Unbounded, Reason: fmt.Sprintf(
			"absolute-path output %s: every match in the document is buffered for output",
			w.rootOut.Path.String())}
	}
	if w.rootCmp != nil {
		return StreamInfo{Class: Unbounded, Reason: fmt.Sprintf(
			"comparison against the absolute path %s: every candidate string value in the document is buffered",
			w.rootCmp.Path.String())}
	}
	if w.rootExists != nil {
		// Empirically O(input): the [1] latch is per context (per match
		// of the path prefix), and the witness sign-off is based at the
		// document root, which closes only at end of input — so one
		// witness subtree per context accumulates in the buffer.
		return StreamInfo{Class: Unbounded, Reason: fmt.Sprintf(
			"existence condition over the absolute path %s: the first-witness latch holds one witness per context and its sign-off is rooted at the document, so witnesses accumulate until end of input",
			w.rootExists.Arg.Path.String())}
	}

	cn := constNodes(p)
	if len(w.absLoops) == 0 {
		return StreamInfo{Class: BoundedConstant,
			Reason: "no for-loops: the query touches a constant set of projected nodes",
			Bound:  Bound{ConstNodes: cn}}
	}

	// One absolute pipeline: derive the record path from the
	// pass-through loop chain, cut at the shallowest chain variable the
	// body uses — everything deeper is contained in one record subtree.
	chain, body := collectChain(w.absLoops[0])
	used := xqast.UsedVars(body)
	cut := len(chain)
	for i, f := range chain {
		if used[f.Var] && i+1 < cut {
			cut = i + 1
		}
	}
	var steps []xpath.Step
	for i := 0; i < cut; i++ {
		steps = append(steps, chain[i].In.Path.Steps...)
	}
	bound := Bound{
		ConstNodes:   cn,
		RecordFactor: recordFactor,
		RecordPath:   xpath.Path{Steps: steps},
	}
	recordVar := chain[cut-1].Var

	demote := func(reason string) StreamInfo {
		return StreamInfo{Class: BoundedPerRecord, Reason: reason, Bound: bound}
	}
	switch {
	case w.notCond:
		return demote("negated existence condition: absence is only provable when the record closes, so the record's projected subtree is retained until its end tag")
	case w.anyExists && p.Opts.DisableFirstWitness:
		return demote("first-witness pruning disabled: every witness candidate within the record is buffered instead of only the latched first")
	case p.Opts.CoarseGranularity:
		return demote("coarse-granularity projection buffers whole element subtrees within each record")
	case w.varRefs[recordVar]:
		return demote("the record subtree itself is emitted, so each record is buffered whole")
	case w.wholeCmpVars[recordVar]:
		return demote("the record's full string value is a comparison operand, so each record is buffered whole")
	}
	return StreamInfo{Class: BoundedConstant,
		Reason: fmt.Sprintf("single-pass pipeline over %s: the working set is the projected paths of the records in flight, purged by sign-off garbage collection at record boundaries", bound.RecordPath.String()),
		Bound:  bound}
}
