package analysis

import (
	"fmt"

	"gcx/internal/xpath"
	"gcx/internal/xqast"
	"gcx/internal/xqvalue"
)

// placement records where a sign-off statement goes.
type placement struct {
	// scope is the for-loop whose body receives the statement, or nil
	// for the top-level scope.
	scope *xqast.ForExpr
	// afterStmt is the direct statement of the scope after which the
	// sign-off is inserted; nil appends at the end of the scope (the
	// iteration-end preemption point).
	afterStmt xqast.Expr
	signOff   *xqast.SignOff
}

// extractor walks the normalized query, derives roles and computes
// sign-off placements.
type extractor struct {
	roles           []Role
	placements      []placement
	usesAggregation bool
	opts            Options

	// scope stack: frame 0 is the top level (loop == nil).
	stack []scopeFrame

	varPath map[string]xpath.Path // variable → absolute binding path
	baseOf  map[string]string     // variable → binding base variable
	binder  map[string]int        // variable → stack index of its loop
}

type scopeFrame struct {
	loop *xqast.ForExpr // nil for top level
	stmt xqast.Expr     // current direct statement being walked
	// guards counts the if-branches currently open while walking this
	// scope's body.
	guards int
	// guarded is set (cumulatively) when the scope's loop sits inside a
	// conditional branch: its body — and any sign-off placed there —
	// might never execute even though projection assigns its roles
	// unconditionally. Placements hoist out of guarded scopes.
	guarded bool
}

func newExtractor() *extractor {
	return &extractor{
		varPath: map[string]xpath.Path{xqast.RootVar: {}},
		baseOf:  map[string]string{},
		binder:  map[string]int{xqast.RootVar: 0},
	}
}

func (ex *extractor) run(q *xqast.Query) error {
	ex.stack = []scopeFrame{{loop: nil}}
	// r1: the document root (paper: "r1: /"). Signed off at the very end
	// of the query (afterStmt nil at top level = end of top scope).
	ex.addRole(Role{Kind: RoleRoot, Path: xpath.Path{}, Provenance: "document root"},
		xqast.RootVar, xpath.Path{})
	return ex.walkScopeBody(q.Body)
}

// walkScopeBody walks the body of the current scope, maintaining the
// frame's current-statement pointer.
func (ex *extractor) walkScopeBody(body xqast.Expr) error {
	for _, stmt := range statements(body) {
		ex.stack[len(ex.stack)-1].stmt = stmt
		if err := ex.walk(stmt); err != nil {
			return err
		}
	}
	return nil
}

// statements flattens a scope body into its direct statement list.
func statements(body xqast.Expr) []xqast.Expr {
	switch b := body.(type) {
	case *xqast.Sequence:
		return b.Items
	case *xqast.Empty:
		return nil
	default:
		return []xqast.Expr{body}
	}
}

func (ex *extractor) walk(e xqast.Expr) error {
	switch e := e.(type) {
	case *xqast.Empty, *xqast.StringLit:
		return nil
	case *xqast.Sequence:
		for _, item := range e.Items {
			if err := ex.walk(item); err != nil {
				return err
			}
		}
		return nil
	case *xqast.Element:
		// Attribute value templates are string-valued uses, like
		// comparison operands.
		for _, a := range e.Attrs {
			if a.Expr != nil {
				ex.valueRole(*a.Expr, RoleOutput,
					fmt.Sprintf("attribute %s of <%s>", a.Name, e.Name))
			}
		}
		return ex.walk(e.Content)
	case *xqast.VarRef:
		// Output of a full subtree: role path($x)/descendant-or-self::node().
		ex.addRole(Role{
			Kind:       RoleOutput,
			Path:       ex.varPath[e.Var].Append(xpath.DescendantOrSelfNodeStep()),
			Provenance: fmt.Sprintf("output $%s", e.Var),
		}, e.Var, xpath.Path{Steps: []xpath.Step{xpath.DescendantOrSelfNodeStep()}})
		return nil
	case *xqast.PathExpr:
		ex.usePathRole(*e, RoleOutput, fmt.Sprintf("output %s", refString(*e)))
		return nil
	case *xqast.AggExpr:
		ex.usesAggregation = true
		prov := fmt.Sprintf("%s(%s)", e.Fn, refString(e.Arg))
		if e.Fn == xqvalue.Count {
			// count() needs the matched nodes only, not their values.
			ex.usePathRole(e.Arg, RoleAgg, prov)
		} else {
			// sum/min/max/avg need string values, like operands.
			ex.valueRole(e.Arg, RoleAgg, prov)
		}
		return nil
	case *xqast.IfExpr:
		if err := ex.walkCond(e.Cond); err != nil {
			return err
		}
		// Index (not pointer) access: walking the branches pushes loop
		// frames and may reallocate the stack's backing array.
		ex.stack[len(ex.stack)-1].guards++
		err := ex.walk(e.Then)
		if err == nil {
			err = ex.walk(e.Else)
		}
		ex.stack[len(ex.stack)-1].guards--
		return err
	case *xqast.ForExpr:
		return ex.walkFor(e)
	case *xqast.SignOff:
		return fmt.Errorf("analysis: unexpected signOff in input")
	default:
		return fmt.Errorf("analysis: unknown expression %T", e)
	}
}

func (ex *extractor) walkFor(f *xqast.ForExpr) error {
	if len(f.In.Path.Steps) != 1 {
		return fmt.Errorf("analysis: loop over $%s not single-step after normalization", f.Var)
	}
	bindPath := ex.varPath[f.In.Base].Append(f.In.Path.Steps[0])
	ex.varPath[f.Var] = bindPath
	ex.baseOf[f.Var] = f.In.Base

	// Push the loop's frame first so that the binding role — anchored at
	// the loop variable itself — is placed inside the loop body
	// ("signOff($x, r3)" at the iteration end).
	parent := ex.stack[len(ex.stack)-1]
	ex.stack = append(ex.stack, scopeFrame{
		loop:    f,
		guarded: parent.guarded || parent.guards > 0,
	})
	ex.binder[f.Var] = len(ex.stack) - 1

	ex.addRole(Role{
		Kind:       RoleBinding,
		Path:       bindPath,
		Provenance: fmt.Sprintf("for $%s in %s", f.Var, refString(f.In)),
	}, f.Var, xpath.Path{})

	if err := ex.walkScopeBody(f.Body); err != nil {
		return err
	}
	ex.stack = ex.stack[:len(ex.stack)-1]
	delete(ex.binder, f.Var)
	return nil
}

func (ex *extractor) walkCond(c xqast.Cond) error {
	switch c := c.(type) {
	case *xqast.ExistsCond:
		if c.Arg.Path.IsEmpty() {
			return nil // exists($x) is trivially true; no data needed
		}
		if ex.opts.CoarseGranularity {
			ex.coarseRole(c.Arg, RoleExists, fmt.Sprintf("exists %s", refString(c.Arg)))
			return nil
		}
		if c.Arg.Path.EndsWithAttribute() {
			// The element carrying the attribute must be buffered; every
			// candidate is needed (the first might lack the attribute).
			elem := c.Arg.Path.WithoutLastStep()
			if elem.IsEmpty() {
				return nil // attribute of the binding itself
			}
			ex.addRole(Role{
				Kind:       RoleExists,
				Path:       ex.varPath[c.Arg.Base].Append(elem.Steps...),
				Provenance: fmt.Sprintf("exists %s", refString(c.Arg)),
			}, c.Arg.Base, elem)
			return nil
		}
		// First witness suffices: predicate [1] on the last step (r4).
		// The ablation switch keeps the unpruned path instead.
		rel := c.Arg.Path
		steps := append([]xpath.Step(nil), rel.Steps...)
		if !ex.opts.DisableFirstWitness {
			steps[len(steps)-1].FirstOnly = true
		}
		rel = xpath.Path{Steps: steps}
		ex.addRole(Role{
			Kind:       RoleExists,
			Path:       ex.varPath[c.Arg.Base].Append(steps...),
			Provenance: fmt.Sprintf("exists %s", refString(c.Arg)),
		}, c.Arg.Base, rel)
		return nil
	case *xqast.NotCond:
		return ex.walkCond(c.C)
	case *xqast.AndCond:
		if err := ex.walkCond(c.L); err != nil {
			return err
		}
		return ex.walkCond(c.R)
	case *xqast.OrCond:
		if err := ex.walkCond(c.L); err != nil {
			return err
		}
		return ex.walkCond(c.R)
	case *xqast.BoolLit:
		return nil
	case *xqast.CompareCond:
		for _, o := range []xqast.Operand{c.L, c.R} {
			if o.Kind == xqast.OperandPath {
				ex.valueRole(o.Path, RoleOperand, fmt.Sprintf("operand %s", refString(o.Path)))
			}
		}
		return nil
	default:
		return fmt.Errorf("analysis: unknown condition %T", c)
	}
}

// valueRole derives the projection need of a string-valued use
// (comparison operand, attribute template, non-count aggregate): the
// string value of elements requires their subtrees; attribute accesses
// require only the owning elements.
func (ex *extractor) valueRole(pe xqast.PathExpr, kind RoleKind, prov string) {
	if ex.opts.CoarseGranularity {
		ex.coarseRole(pe, kind, prov)
		return
	}
	switch {
	case pe.Path.EndsWithAttribute():
		elem := pe.Path.WithoutLastStep()
		if elem.IsEmpty() {
			return // attribute of the binding node itself: already buffered
		}
		ex.addRole(Role{
			Kind:       kind,
			Path:       ex.varPath[pe.Base].Append(elem.Steps...),
			Provenance: prov,
		}, pe.Base, elem)
	case pe.Path.EndsWithText():
		ex.addRole(Role{
			Kind:       kind,
			Path:       ex.varPath[pe.Base].Append(pe.Path.Steps...),
			Provenance: prov,
		}, pe.Base, pe.Path)
	default:
		rel := pe.Path.Append(xpath.DescendantOrSelfNodeStep())
		ex.addRole(Role{
			Kind:       kind,
			Path:       ex.varPath[pe.Base].Append(rel.Steps...),
			Provenance: prov,
		}, pe.Base, rel)
	}
}

// usePathRole derives the role of an output or count path.
func (ex *extractor) usePathRole(pe xqast.PathExpr, kind RoleKind, prov string) {
	if ex.opts.CoarseGranularity {
		ex.coarseRole(pe, kind, prov)
		return
	}
	switch {
	case pe.Path.EndsWithAttribute():
		elem := pe.Path.WithoutLastStep()
		if elem.IsEmpty() {
			return
		}
		ex.addRole(Role{Kind: kind, Path: ex.varPath[pe.Base].Append(elem.Steps...), Provenance: prov},
			pe.Base, elem)
	case pe.Path.EndsWithText():
		ex.addRole(Role{Kind: kind, Path: ex.varPath[pe.Base].Append(pe.Path.Steps...), Provenance: prov},
			pe.Base, pe.Path)
	case kind == RoleAgg:
		// count() needs the matched nodes, not their subtrees.
		ex.addRole(Role{Kind: kind, Path: ex.varPath[pe.Base].Append(pe.Path.Steps...), Provenance: prov},
			pe.Base, pe.Path)
	default:
		rel := pe.Path.Append(xpath.DescendantOrSelfNodeStep())
		ex.addRole(Role{Kind: kind, Path: ex.varPath[pe.Base].Append(rel.Steps...), Provenance: prov},
			pe.Base, rel)
	}
}

// addRole registers a role anchored at variable anchor with the given
// path relative to the anchor, and computes its sign-off placement.
func (ex *extractor) addRole(r Role, anchor string, rel xpath.Path) {
	r.ID = len(ex.roles)
	ex.roles = append(ex.roles, r)

	chain := ex.anchorChain(anchor)

	// Natural placement: the scope of the anchor's binder (for binding
	// roles the anchor is the loop variable itself, so this is the loop
	// just pushed). The root anchor naturally places at top level.
	natural := ex.binder[anchor]

	// Hoist outward past the first enclosing loop that does not bind a
	// chain variable: iterations of such a loop would re-execute the
	// sign-off over the same nodes (the join case).
	place := natural
	for j := 1; j <= natural; j++ { // frame 0 is top level
		if !chain[ex.stack[j].loop.Var] {
			place = j - 1
			break
		}
	}
	// Hoist further out of conditionally-guarded scopes: projection
	// assigns roles unconditionally, so their removal must execute
	// unconditionally too. (Hoisting shrinks the enclosing-loop prefix,
	// so the chain condition above keeps holding.)
	for place > 0 && ex.stack[place].guarded {
		place--
	}

	// The sign-off path is expressed relative to the deepest chain
	// variable still bound at the placement scope.
	signVar := anchor
	for ex.binder[signVar] > place {
		signVar = ex.baseOf[signVar]
	}
	signPath := xpath.Path{Steps: append([]xpath.Step(nil), r.Path.Steps[len(ex.varPath[signVar].Steps):]...)}

	pl := placement{
		scope:   ex.stack[place].loop,
		signOff: &xqast.SignOff{Base: signVar, Path: signPath, Role: r.ID},
	}
	if place != natural || pl.scope == nil {
		// Hoisted (or top-level-anchored): insert right after the
		// statement of the placement scope containing the occurrence.
		pl.afterStmt = ex.stack[place].stmt
	}
	ex.placements = append(ex.placements, pl)
}

// anchorChain returns the set of variables on the anchor's dependency
// chain: the anchor, its binding base, and so on up to the root.
func (ex *extractor) anchorChain(anchor string) map[string]bool {
	chain := map[string]bool{}
	for v := anchor; v != xqast.RootVar; v = ex.baseOf[v] {
		chain[v] = true
	}
	chain[xqast.RootVar] = true
	return chain
}

// coarseRole derives the subtree-granular form of a use role: the
// element-path prefix (attribute and text() refinements dropped, no
// first-witness pruning) extended by descendant-or-self::node(). Every
// fine-granularity role's nodes are a subset of the coarse role's, so
// evaluation semantics are unchanged — only the buffer grows.
func (ex *extractor) coarseRole(pe xqast.PathExpr, kind RoleKind, prov string) {
	var steps []xpath.Step
	for _, s := range pe.Path.Steps {
		if s.Axis == xpath.Attribute || s.Test.Kind == xpath.TestText {
			break // both are final refinements of the element prefix
		}
		s.FirstOnly = false
		steps = append(steps, s)
	}
	rel := xpath.Path{Steps: steps}.Append(xpath.DescendantOrSelfNodeStep())
	ex.addRole(Role{
		Kind:       kind,
		Path:       ex.varPath[pe.Base].Append(rel.Steps...),
		Provenance: prov + " (coarse)",
	}, pe.Base, rel)
}

func refString(pe xqast.PathExpr) string {
	if pe.Base == xqast.RootVar {
		return pe.Path.String()
	}
	if pe.Path.IsEmpty() {
		return "$" + pe.Base
	}
	return "$" + pe.Base + "/" + pe.Path.RelString()
}
