package analysis

import (
	"gcx/internal/xpath"
	"gcx/internal/xqast"
)

// JoinInfo describes a detected two-variable equality join (the XMark
// Q8/Q9 shape): an outer loop over ProbePath whose body re-scans the
// whole document along BuildPath, keeping only build bindings whose
// BuildKey value equals the probe binding's ProbeKey value. The engine
// executes this plan with the internal/join operator — one pass over
// the input, the build side materialized into a keyed hash table —
// instead of nested re-evaluation (DESIGN.md §10).
type JoinInfo struct {
	// ProbeHead is the outermost loop of the (normalized, single-step)
	// probe chain; ProbeLoop is the innermost, binding ProbeVar to one
	// probe record. For single-step probe paths they are the same node.
	ProbeHead *xqast.ForExpr
	ProbeLoop *xqast.ForExpr
	// BuildHead is the root-based loop inside the probe body that
	// re-scans the document: the head of the build chain.
	BuildHead *xqast.ForExpr

	ProbeVar string
	BuildVar string

	// ProbePath and BuildPath are the absolute binding paths of the two
	// sides; all steps are child-axis name or wildcard tests.
	ProbePath xpath.Path
	BuildPath xpath.Path

	// ProbeKey and BuildKey are the key paths of the equality predicate,
	// relative to ProbeVar and BuildVar respectively.
	ProbeKey xpath.Path
	BuildKey xpath.Path

	// Then is the output expression evaluated once per matching build
	// binding. It uses only BuildVar (and variables it binds itself) and
	// contains no sign-off statements, so it is pure: capturing its
	// events once per build tuple and replaying them per match is
	// equivalent to nested re-evaluation.
	Then xqast.Expr

	// Divergence is the index of the first step where ProbePath and
	// BuildPath differ. Both steps are name tests with different names,
	// so the two sides bind disjoint subtrees (no self-join aliasing)
	// and a sharded run can split ancestor closes at this depth.
	Divergence int
}

// Strategy names the runtime plan for explain output. Output order must
// be probe-major (nested-loop semantics), so no match can be emitted
// before the build side is complete; only the build side needs a hash
// table, while the probe side streams through as captured event groups.
func (j *JoinInfo) Strategy() string {
	return "build-side hash (probe streamed, build materialized)"
}

// DetectJoin recognizes the join shape on the rewritten plan. It
// returns nil for anything that does not provably match; callers treat
// nil as "run the nested-loop path".
func DetectJoin(p *Plan) *JoinInfo {
	if p.Rewritten == nil {
		return nil
	}
	head := unwrapConstant(p.Rewritten.Body)
	probe, ok := head.(*xqast.ForExpr)
	if !ok || probe.In.Base != xqast.RootVar {
		return nil
	}
	j := &JoinInfo{ProbeHead: probe}

	// Follow the probe chain of pass-through single-step loops. The
	// rewriter intersperses sign-off statements; they are transparent
	// here (they execute unchanged in either mode). Variable shadowing
	// anywhere in the chain disqualifies the plan.
	seen := map[string]bool{xqast.RootVar: true}
	cur := probe
	for {
		if !chainStep(cur.In.Path) || seen[cur.Var] {
			return nil
		}
		seen[cur.Var] = true
		j.ProbePath = j.ProbePath.Append(cur.In.Path.Steps[0])
		next, ok := passThroughBody(cur)
		if !ok {
			break
		}
		cur = next
	}
	j.ProbeLoop = cur
	j.ProbeVar = cur.Var

	// Locate the build head: exactly one root-based loop inside the
	// probe body, not nested under another loop (so it runs at most once
	// per probe binding; under a condition it may run zero times).
	j.BuildHead = findBuildHead(j.ProbeLoop.Body)
	if j.BuildHead == nil {
		return nil
	}

	// Follow the build chain: strictly pass-through single-step loops
	// with no interleaved statements — hoisting moves all build-side
	// sign-offs to the top level, and any that remained would change
	// execution counts under the join operator.
	cur = j.BuildHead
	for {
		if !chainStep(cur.In.Path) || seen[cur.Var] {
			return nil
		}
		seen[cur.Var] = true
		j.BuildPath = j.BuildPath.Append(cur.In.Path.Steps[0])
		next, ok := strictBody(cur.Body)
		if !ok {
			break
		}
		cur = next
	}
	j.BuildVar = cur.Var

	// The innermost build body must be exactly
	// "if (key = key) then Then else ()".
	cond, ok := singleton(cur.Body).(*xqast.IfExpr)
	if !ok || !isEmptyExpr(cond.Else) {
		return nil
	}
	cmp, ok := cond.Cond.(*xqast.CompareCond)
	if !ok || cmp.Op != xqast.CmpEq {
		return nil
	}
	if cmp.L.Kind != xqast.OperandPath || cmp.R.Kind != xqast.OperandPath {
		return nil
	}
	switch {
	case cmp.L.Path.Base == j.BuildVar && cmp.R.Path.Base == j.ProbeVar:
		j.BuildKey, j.ProbeKey = cmp.L.Path.Path, cmp.R.Path.Path
	case cmp.L.Path.Base == j.ProbeVar && cmp.R.Path.Base == j.BuildVar:
		j.ProbeKey, j.BuildKey = cmp.L.Path.Path, cmp.R.Path.Path
	default:
		return nil
	}
	j.Then = cond.Then

	// Then must be pure build-side output: only BuildVar (plus its own
	// local bindings), no sign-offs, no root access.
	if !usesOnly(j.Then, map[string]bool{j.BuildVar: true}, nil, false) {
		return nil
	}
	// The rest of the probe body may use only the probe binding (plus
	// local bindings); sign-offs are transparent.
	if !usesOnly(j.ProbeLoop.Body, map[string]bool{j.ProbeVar: true}, j.BuildHead, true) {
		return nil
	}

	// The two sides must bind provably disjoint subtrees: the paths
	// diverge at a name/name step with different names.
	d, ok := divergence(j.ProbePath, j.BuildPath)
	if !ok {
		return nil
	}
	j.Divergence = d
	return j
}

// unwrapConstant descends through the constant output wrapper — element
// constructors with literal attributes and sequences whose other items
// are literals, empties or sign-offs — to the single dynamic expression
// inside, if there is exactly one.
func unwrapConstant(e xqast.Expr) xqast.Expr {
	for {
		switch v := e.(type) {
		case *xqast.Element:
			for _, a := range v.Attrs {
				if a.Expr != nil {
					return e
				}
			}
			e = v.Content
		case *xqast.Sequence:
			var dyn xqast.Expr
			for _, item := range v.Items {
				switch item.(type) {
				case *xqast.StringLit, *xqast.Empty, *xqast.SignOff:
					continue
				}
				if dyn != nil {
					return e // more than one dynamic item
				}
				dyn = item
			}
			if dyn == nil {
				return e
			}
			e = dyn
		default:
			return e
		}
	}
}

// chainStep accepts the binding path of one normalized chain loop: a
// single child step with a name or wildcard test and no [1] predicate.
func chainStep(p xpath.Path) bool {
	if len(p.Steps) != 1 {
		return false
	}
	s := p.Steps[0]
	return s.Axis == xpath.Child && !s.FirstOnly &&
		(s.Test.Kind == xpath.TestName || s.Test.Kind == xpath.TestWildcard)
}

// passThroughBody returns the next chain loop when f's body — ignoring
// interleaved sign-offs — is exactly one loop over f's own variable.
func passThroughBody(f *xqast.ForExpr) (*xqast.ForExpr, bool) {
	body := f.Body
	if seq, ok := body.(*xqast.Sequence); ok {
		var dyn xqast.Expr
		for _, item := range seq.Items {
			if _, ok := item.(*xqast.SignOff); ok {
				continue
			}
			if dyn != nil {
				return nil, false
			}
			dyn = item
		}
		body = dyn
	}
	next, ok := body.(*xqast.ForExpr)
	if !ok || next.In.Base != f.Var {
		return nil, false
	}
	return next, true
}

// strictBody is passThroughBody without sign-off tolerance, for the
// build chain.
func strictBody(body xqast.Expr) (*xqast.ForExpr, bool) {
	next, ok := singleton(body).(*xqast.ForExpr)
	if !ok {
		return nil, false
	}
	return next, true
}

// singleton unwraps a Sequence holding exactly one non-empty item.
func singleton(e xqast.Expr) xqast.Expr {
	seq, ok := e.(*xqast.Sequence)
	if !ok {
		return e
	}
	var dyn xqast.Expr
	for _, item := range seq.Items {
		if _, ok := item.(*xqast.Empty); ok {
			continue
		}
		if dyn != nil {
			return e
		}
		dyn = item
	}
	if dyn == nil {
		return e
	}
	return dyn
}

func isEmptyExpr(e xqast.Expr) bool {
	switch v := e.(type) {
	case nil, *xqast.Empty:
		return true
	case *xqast.Sequence:
		for _, item := range v.Items {
			if !isEmptyExpr(item) {
				return false
			}
		}
		return true
	}
	return false
}

// findBuildHead returns the single root-based loop beneath e that is
// not nested inside another loop, or nil if there is none or more than
// one (or one under a loop — it would then run more than once per probe
// binding).
func findBuildHead(e xqast.Expr) *xqast.ForExpr {
	var found *xqast.ForExpr
	bad := false
	var walk func(e xqast.Expr, underLoop bool)
	walk = func(e xqast.Expr, underLoop bool) {
		if bad {
			return
		}
		switch v := e.(type) {
		case *xqast.Sequence:
			for _, item := range v.Items {
				walk(item, underLoop)
			}
		case *xqast.Element:
			walk(v.Content, underLoop)
		case *xqast.IfExpr:
			walk(v.Then, underLoop)
			walk(v.Else, underLoop)
		case *xqast.ForExpr:
			if v.In.Base == xqast.RootVar {
				if found != nil || underLoop {
					bad = true
					return
				}
				found = v
				return // the build subtree is validated separately
			}
			walk(v.Body, true)
		}
	}
	walk(e, false)
	if bad {
		return nil
	}
	return found
}

// usesOnly reports whether e references only the allowed variables plus
// variables bound by loops within e itself. skip is a subtree that is
// not inspected (the build head inside the probe body). When
// signOffsTransparent, sign-off statements are ignored entirely — they
// execute identically under the join operator; otherwise any sign-off
// fails the check (its execution count would change).
func usesOnly(e xqast.Expr, allowed map[string]bool, skip *xqast.ForExpr, signOffsTransparent bool) bool {
	okVar := func(name string) bool { return allowed[name] }
	var okCond func(c xqast.Cond) bool
	okCond = func(c xqast.Cond) bool {
		switch c := c.(type) {
		case *xqast.ExistsCond:
			return okVar(c.Arg.Base)
		case *xqast.CompareCond:
			if c.L.Kind == xqast.OperandPath && !okVar(c.L.Path.Base) {
				return false
			}
			if c.R.Kind == xqast.OperandPath && !okVar(c.R.Path.Base) {
				return false
			}
			return true
		case *xqast.NotCond:
			return okCond(c.C)
		case *xqast.AndCond:
			return okCond(c.L) && okCond(c.R)
		case *xqast.OrCond:
			return okCond(c.L) && okCond(c.R)
		}
		return true
	}
	var walk func(e xqast.Expr) bool
	walk = func(e xqast.Expr) bool {
		if e == nil {
			return true
		}
		switch v := e.(type) {
		case *xqast.Empty, *xqast.StringLit:
			return true
		case *xqast.SignOff:
			return signOffsTransparent
		case *xqast.VarRef:
			return okVar(v.Var)
		case *xqast.PathExpr:
			return okVar(v.Base)
		case *xqast.AggExpr:
			return okVar(v.Arg.Base)
		case *xqast.Sequence:
			for _, item := range v.Items {
				if !walk(item) {
					return false
				}
			}
			return true
		case *xqast.Element:
			for _, a := range v.Attrs {
				if a.Expr != nil && !okVar(a.Expr.Base) {
					return false
				}
			}
			return walk(v.Content)
		case *xqast.IfExpr:
			return okCond(v.Cond) && walk(v.Then) && walk(v.Else)
		case *xqast.ForExpr:
			if v == skip {
				return true
			}
			if !okVar(v.In.Base) {
				return false
			}
			saved := allowed[v.Var]
			allowed[v.Var] = true
			ok := walk(v.Body)
			allowed[v.Var] = saved
			return ok
		}
		return false
	}
	return walk(e)
}

// divergence returns the index of the first differing step of the two
// binding paths, requiring a name/name mismatch there so the bound
// subtrees are disjoint. Prefix relationships (one side an ancestor of
// the other) are rejected.
func divergence(probe, build xpath.Path) (int, bool) {
	n := len(probe.Steps)
	if len(build.Steps) < n {
		n = len(build.Steps)
	}
	for i := 0; i < n; i++ {
		if probe.Steps[i] == build.Steps[i] {
			continue
		}
		p, b := probe.Steps[i], build.Steps[i]
		if p.Test.Kind == xpath.TestName && b.Test.Kind == xpath.TestName &&
			p.Test.Name != b.Test.Name {
			return i, true
		}
		return 0, false
	}
	return 0, false // one path is a prefix of the other
}
