package analysis

// Shardability analysis (DESIGN.md §6): decide whether a compiled plan
// can be evaluated by data-partitioning the input stream and running
// independent engine instances over the partitions.
//
// A query is partitionable when its normalized body is a constant
// wrapper (direct constructors with literal attributes, string
// literals) around a single chain of pass-through for-loops rooted at
// the document root, and the chain's body touches only variables bound
// at or below the partition cut. Everything the body can then reach is
// contained in one record subtree, so record-aligned slices of the
// stream can be evaluated independently and their outputs concatenated
// in input order — byte-identical to the sequential run. Aggregations
// or joins over the whole input read state across iterations and fall
// back to sequential execution.

import (
	"bytes"

	"gcx/internal/event"
	"gcx/internal/xmltok"
	"gcx/internal/xpath"
	"gcx/internal/xqast"
)

// ShardInfo is the compile-time partitioning recipe of a shardable
// plan.
type ShardInfo struct {
	// PartitionPath is the absolute child-axis path whose matches are
	// the record roots of stream partitioning. Every step is a child
	// step with a name or wildcard test, so records are non-nesting,
	// fixed-depth element subtrees.
	PartitionPath xpath.Path
	// Prefix and Suffix are the serialized constant wrapper bytes
	// (constructor open tags and literal text around the outer loop),
	// emitted exactly once around the merged worker outputs.
	Prefix, Suffix []byte
	// Inner is the derived plan each shard worker runs over its chunk
	// documents: the loop chain without the wrapper, analyzed with the
	// same switches as the parent plan.
	Inner *Plan
	// Join marks a join-partitioned recipe (DESIGN.md §10): the probe
	// side is cut into chunks at PartitionPath while the build section's
	// raw bytes are captured on the same scanning pass and broadcast to
	// every chunk, so each worker joins its probe slice against the
	// complete build side.
	Join bool
	// BuildPath is the join's build-side binding path (set iff Join).
	BuildPath xpath.Path
	// Divergence is the index of the first step where BuildPath departs
	// from PartitionPath. The splitter leaves chunk ancestors above it
	// unclosed so the synthesized build fragment can be appended inside
	// the shared ancestor element (set iff Join).
	Divergence int
}

// Shardable inspects a compiled plan and reports whether it is
// partitionable on its outermost for-loop path. On success it returns
// the partitioning recipe; otherwise it returns nil and the reason the
// plan must run sequentially.
func Shardable(p *Plan) (*ShardInfo, string) {
	var prefix, suffix bytes.Buffer
	pre := xmltok.NewSerializer(&prefix)
	suf := xmltok.NewSerializer(&suffix)
	defer pre.Release()
	defer suf.Release()

	chain, reason := stripWrapper(p.Normalized.Body, pre, suf)
	if chain == nil {
		return nil, reason
	}
	pre.Flush()
	suf.Flush()

	if p.Join != nil {
		return joinShard(p, chain, prefix.Bytes(), suffix.Bytes())
	}

	loops, body := collectChain(chain)
	cut, reason := partitionCut(loops, body)
	if cut == 0 {
		return nil, reason
	}

	steps := make([]xpath.Step, cut)
	for i := 0; i < cut; i++ {
		steps[i] = loops[i].In.Path.Steps[0]
	}

	inner, err := AnalyzeWithOptions(&xqast.Query{Body: xqast.CloneExpr(chain)}, p.Opts)
	if err != nil {
		// The chain was part of a plan that analyzed cleanly, so this
		// is unreachable in practice; degrade to sequential execution.
		return nil, "inner plan analysis failed: " + err.Error()
	}

	return &ShardInfo{
		PartitionPath: xpath.Path{Steps: steps},
		Prefix:        append([]byte(nil), prefix.Bytes()...),
		Suffix:        append([]byte(nil), suffix.Bytes()...),
		Inner:         inner,
	}, ""
}

// joinShard builds the partitioning recipe for a detected join plan
// (DESIGN.md §10). The probe loop's bindings are the chunk records —
// everything the probe body reads besides the build side lives in one
// probe subtree — and the build side, which every binding compares
// against, is broadcast: the splitter captures the build subtrees' raw
// bytes on its single scanning pass and the executor appends them,
// re-wrapped under the shared ancestors, to every chunk document.
// Each worker then re-detects the join on its chunk and builds the
// same hash table, so the merged output is byte-identical to the
// sequential run.
func joinShard(p *Plan, chain *xqast.ForExpr, prefix, suffix []byte) (*ShardInfo, string) {
	j := p.Join
	if j.Divergence < 1 {
		return nil, "join probe and build paths share no ancestor element"
	}
	// Fragment synthesis and tail re-wrapping need concrete element
	// names on both paths.
	for _, path := range []xpath.Path{j.ProbePath, j.BuildPath} {
		for _, st := range path.Steps {
			if st.Axis != xpath.Child || st.FirstOnly || st.Test.Kind != xpath.TestName {
				return nil, "join sharding needs plain child/name steps, got " + path.String()
			}
		}
	}
	// The chunk cut is the full probe path: one record per probe
	// binding. The normalized chain's single-step loops spell out the
	// same path the detector derived; anything else means the trees
	// diverged and sequential execution is the safe answer.
	loops, _ := collectChain(chain)
	n := len(j.ProbePath.Steps)
	if len(loops) < n {
		return nil, "normalized loop chain shorter than the probe path"
	}
	steps := make([]xpath.Step, n)
	for i := 0; i < n; i++ {
		if len(loops[i].In.Path.Steps) != 1 || loops[i].In.Path.Steps[0] != j.ProbePath.Steps[i] {
			return nil, "normalized loop chain does not follow the probe path"
		}
		steps[i] = loops[i].In.Path.Steps[0]
	}
	inner, err := AnalyzeWithOptions(&xqast.Query{Body: xqast.CloneExpr(chain)}, p.Opts)
	if err != nil {
		return nil, "inner plan analysis failed: " + err.Error()
	}
	if inner.Join == nil {
		return nil, "inner plan did not re-detect the join"
	}
	return &ShardInfo{
		PartitionPath: xpath.Path{Steps: steps},
		Prefix:        append([]byte(nil), prefix...),
		Suffix:        append([]byte(nil), suffix...),
		Inner:         inner,
		Join:          true,
		BuildPath:     j.BuildPath,
		Divergence:    j.Divergence,
	}, ""
}

// NDJSONShardable reports whether a shardable plan can also be sharded
// over NDJSON input, where the only available record boundary is the
// newline (internal/jsontok.Splitter — DESIGN.md §8). It returns ""
// when eligible, or the reason the NDJSON run must stay sequential.
//
// The constraints beyond plain shardability: the query must be
// wrapperless (the Prefix/Suffix wrapper bytes are serialized XML and
// cannot wrap JSON-lines output), and the partition path's first two
// steps must sit at or below the tokenizer's virtual root/record pair —
// a line holds exactly one record subtree, so cuts above the record
// level would split state across chunks.
func NDJSONShardable(info *ShardInfo) string {
	if info.Join {
		return "join plans shard only over XML input (the build section is broadcast from the XML scanning pass)"
	}
	if len(info.Prefix) > 0 || len(info.Suffix) > 0 {
		return "query constructs a constant wrapper, which serializes as XML and cannot wrap JSON-lines output"
	}
	steps := info.PartitionPath.Steps
	if len(steps) < 2 {
		return "partition path " + info.PartitionPath.String() + " sits above the record level (one NDJSON line = one /" +
			event.RootName + "/" + event.RecordName + " subtree)"
	}
	if !stepMatchesName(steps[0], event.RootName) {
		return "partition path does not start at the virtual /" + event.RootName + " element"
	}
	if !stepMatchesName(steps[1], event.RecordName) {
		return "partition path's second step does not match the per-line /" +
			event.RootName + "/" + event.RecordName + " element"
	}
	return ""
}

// stepMatchesName reports whether a child step accepts an element of
// the given name (exact name test or wildcard).
func stepMatchesName(s xpath.Step, name string) bool {
	return s.Test.Kind == xpath.TestWildcard ||
		(s.Test.Kind == xpath.TestName && s.Test.Name == name)
}

// stripWrapper descends through the constant wrapper around the outer
// for-loop, accumulating its serialized open half into pre and its
// close half into suf (suffix parts are written on unwind, so they come
// out innermost-first — the emission order). It returns the outermost
// ForExpr, or nil with a reason.
func stripWrapper(e xqast.Expr, pre, suf *xmltok.Serializer) (*xqast.ForExpr, string) {
	switch e := e.(type) {
	case *xqast.ForExpr:
		if e.In.Base != xqast.RootVar {
			return nil, "outer for-loop is not rooted at the document root"
		}
		return e, ""
	case *xqast.Element:
		attrs := make([]xmltok.Attr, len(e.Attrs))
		for i, a := range e.Attrs {
			if a.Expr != nil {
				return nil, "wrapper element <" + e.Name + "> has a computed attribute"
			}
			attrs[i] = xmltok.Attr{Name: a.Name, Value: a.Lit}
		}
		pre.StartElement(e.Name, attrs)
		chain, reason := stripWrapper(e.Content, pre, suf)
		if chain == nil {
			return nil, reason
		}
		suf.EndElement(e.Name)
		return chain, ""
	case *xqast.Sequence:
		// Exactly one item may be dynamic; literals before it join the
		// prefix, literals after it join the suffix.
		dynamic := -1
		for i, item := range e.Items {
			switch item.(type) {
			case *xqast.StringLit, *xqast.Empty:
			default:
				if dynamic >= 0 {
					return nil, "multiple dynamic expressions at the top level"
				}
				dynamic = i
			}
		}
		if dynamic < 0 {
			return nil, "no outer for-loop (constant query)"
		}
		for _, item := range e.Items[:dynamic] {
			if s, ok := item.(*xqast.StringLit); ok {
				pre.Text(s.Value)
			}
		}
		chain, reason := stripWrapper(e.Items[dynamic], pre, suf)
		if chain == nil {
			return nil, reason
		}
		for _, item := range e.Items[dynamic+1:] {
			if s, ok := item.(*xqast.StringLit); ok {
				suf.Text(s.Value)
			}
		}
		return chain, ""
	case *xqast.AggExpr:
		return nil, "top-level aggregation over the whole input"
	case *xqast.PathExpr:
		return nil, "top-level path reads the whole document"
	case *xqast.IfExpr:
		return nil, "top-level condition reads the whole document"
	default:
		return nil, "no outer for-loop"
	}
}

// collectChain walks the maximal chain of pass-through for-loops: each
// loop's body is exactly the next loop, bound to the previous variable.
// It returns the loops outermost-first and the innermost body.
func collectChain(f *xqast.ForExpr) ([]*xqast.ForExpr, xqast.Expr) {
	loops := []*xqast.ForExpr{f}
	for {
		cur := loops[len(loops)-1]
		next, ok := cur.Body.(*xqast.ForExpr)
		if !ok || next.In.Base != cur.Var {
			return loops, cur.Body
		}
		loops = append(loops, next)
	}
}

// partitionCut picks the deepest prefix of the loop chain usable as the
// partition path. Records must be complete subtrees containing
// everything the remaining evaluation can reach, so the cut must sit at
// or above the shallowest chain variable the body references; and the
// path itself must be child steps with name or wildcard tests, so
// records sit at a fixed depth and never nest. A zero cut means the
// plan is not partitionable.
func partitionCut(loops []*xqast.ForExpr, body xqast.Expr) (int, string) {
	used := xqast.UsedVars(body)
	if used[xqast.RootVar] {
		return 0, "loop body reads the document root (join or whole-document access)"
	}
	shallowest := len(loops)
	for i, f := range loops {
		if used[f.Var] && i+1 < shallowest {
			shallowest = i + 1
		}
	}
	cut := 0
	for i := 0; i < shallowest; i++ {
		step := loops[i].In.Path.Steps
		if len(step) != 1 {
			break // normalized loops are single-step; be defensive
		}
		s := step[0]
		if s.Axis != xpath.Child || s.FirstOnly {
			break
		}
		if s.Test.Kind != xpath.TestName && s.Test.Kind != xpath.TestWildcard {
			break
		}
		cut = i + 1
	}
	if cut == 0 {
		return 0, "binding path starts with a non-child or predicated step"
	}
	return cut, ""
}
