package analysis

import (
	"gcx/internal/xqast"
)

// rewrite rebuilds a scope body, inserting the sign-off statements
// computed by the extraction pass. scope is the loop owning the body
// (nil for the top level). Statement identity is positional: sign-offs
// registered "after stmt S" are emitted right after the rewritten S;
// iteration-end sign-offs are appended at the end of the body —
// reproducing the paper's rewritten running example, where
// signOff($x, r3) … signOff($x/descendant-or-self::node(), r5) close
// each iteration of the first loop and signOff($bib, r2) closes the
// outer one.
func (ex *extractor) rewrite(body xqast.Expr, scope *xqast.ForExpr) xqast.Expr {
	var out []xqast.Expr
	for _, stmt := range statements(body) {
		out = append(out, ex.rewriteExpr(stmt))
		for _, pl := range ex.placements {
			if pl.scope == scope && pl.afterStmt == stmt {
				out = append(out, pl.signOff)
			}
		}
	}
	for _, pl := range ex.placements {
		if pl.scope == scope && pl.afterStmt == nil {
			out = append(out, pl.signOff)
		}
	}
	return xqast.NewSequence(out...)
}

// rewriteExpr descends into non-scope expressions, rewriting loop bodies
// it encounters.
func (ex *extractor) rewriteExpr(e xqast.Expr) xqast.Expr {
	switch e := e.(type) {
	case *xqast.ForExpr:
		return &xqast.ForExpr{Var: e.Var, In: e.In, Body: ex.rewrite(e.Body, e)}
	case *xqast.Element:
		return &xqast.Element{Name: e.Name, Attrs: e.Attrs, Content: ex.rewriteExpr(e.Content)}
	case *xqast.Sequence:
		items := make([]xqast.Expr, len(e.Items))
		for i, item := range e.Items {
			items[i] = ex.rewriteExpr(item)
		}
		return &xqast.Sequence{Items: items}
	case *xqast.IfExpr:
		return &xqast.IfExpr{Cond: e.Cond, Then: ex.rewriteExpr(e.Then), Else: ex.rewriteExpr(e.Else)}
	default:
		return e
	}
}
