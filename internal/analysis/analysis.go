// Package analysis implements GCX's static query analysis (paper §2–3):
//
//  1. normalization to the single-step core fragment;
//  2. derivation of projection paths, one role per occurrence (the
//     paper's roles r1…r7 for the running example);
//  3. computation of preemption points and insertion of signOff
//     statements into the query — including the hoisting rule that
//     parks join partners in the buffer until the consuming outer loop
//     has finished (XMark Q8's linear-memory behaviour, Fig. 4(b)).
package analysis

import (
	"fmt"

	"gcx/internal/xpath"
	"gcx/internal/xqast"
)

// RoleKind classifies why a role exists.
type RoleKind uint8

const (
	// RoleRoot is the implicit role of the virtual document root (the
	// paper's r1: "/").
	RoleRoot RoleKind = iota
	// RoleBinding marks the binding path of a for-loop (r2, r3, r6).
	RoleBinding
	// RoleOutput marks output expressions; their paths end in
	// descendant-or-self::node() because the full subtree is emitted
	// (r5, r7).
	RoleOutput
	// RoleExists marks existence conditions; their paths carry the
	// first-witness predicate [1] (r4).
	RoleExists
	// RoleOperand marks comparison operands (string values, hence
	// subtree paths; attribute operands keep only the element path).
	RoleOperand
	// RoleAgg marks aggregation arguments (count/sum/min/max/avg, extension).
	RoleAgg
)

func (k RoleKind) String() string {
	switch k {
	case RoleRoot:
		return "root"
	case RoleBinding:
		return "binding"
	case RoleOutput:
		return "output"
	case RoleExists:
		return "exists"
	case RoleOperand:
		return "operand"
	case RoleAgg:
		return "aggregate"
	default:
		return fmt.Sprintf("RoleKind(%d)", uint8(k))
	}
}

// Role is one projection path with its provenance.
type Role struct {
	ID   int
	Kind RoleKind
	// Path is the absolute projection path evaluated by the stream
	// preprojector.
	Path xpath.Path
	// Provenance describes the query fragment that created the role,
	// for the role browser (-explain).
	Provenance string
}

// Name renders the paper-style role name r1, r2, …
func (r Role) Name() string { return fmt.Sprintf("r%d", r.ID+1) }

// Plan is the compiled form of a query.
type Plan struct {
	// Source is the original query text, when known.
	Source string
	// Normalized is the single-step core form, before sign-off insertion.
	Normalized *xqast.Query
	// Rewritten is the executable form with signOff statements.
	Rewritten *xqast.Query
	// Roles are the projection paths, in discovery order (the paper's
	// numbering).
	Roles []Role
	// UsesAggregation reports whether the query uses the aggregation extension.
	UsesAggregation bool
	// Automaton is the path automaton compiled from the role paths at
	// analysis time (DESIGN.md §7): the engine's preprojector uses its
	// dead states to fast-forward the byte stream past subtrees no
	// projection path can observe. It is nil when the path set cannot
	// be compiled (then runs simply never skip), immutable, and shared
	// by all executions of the plan.
	Automaton *xpath.Automaton
	// SkipReason says why Automaton is nil — the compile-time reason
	// byte-level subtree skipping is unavailable (attribute-axis
	// projection path, state cap). Empty when Automaton is non-nil;
	// runtime switches (DisableSubtreeSkip, RecordEvery) additionally
	// disable skipping per run without being recorded here.
	SkipReason string
	// Opts are the analysis switches the plan was compiled with, kept so
	// derived plans (sharding) reuse the same analysis.
	Opts Options
	// Stream is the compile-time streamability verdict: the lattice
	// class, the analyzer's reason, and (for bounded classes) the
	// static node budget. See streamability.go / DESIGN.md §9.
	Stream StreamInfo
	// Join is the detected equality-join structure (the Q8/Q9 shape),
	// or nil. When set, the engine runs the internal/join operator —
	// one pass, build side materialized into a hash table — instead of
	// nested re-evaluation. See join.go / DESIGN.md §10.
	Join *JoinInfo
}

// RolePaths returns the projection paths indexed by role id, the input
// to projection.New.
func (p *Plan) RolePaths() []xpath.Path {
	paths := make([]xpath.Path, len(p.Roles))
	for i, r := range p.Roles {
		paths[i] = r.Path
	}
	return paths
}

// Options tunes the static analysis (ablation switches; the defaults
// reproduce the paper).
type Options struct {
	// DisableFirstWitness drops the [1] predicate from existence-
	// condition projection paths (the paper's r4 optimization), so
	// every witness candidate is buffered instead of only the first.
	// Used by the ablation benchmarks to quantify what first-witness
	// pruning buys.
	DisableFirstWitness bool
	// CoarseGranularity derives subtree-granular use roles: whenever
	// any part of a subtree is relevant (an operand, an existence
	// witness, a text value), the whole element subtree is projected —
	// the relevance model of simpler streaming systems. The paper's
	// node-granular roles are the default; this switch quantifies what
	// the finer granularity buys (ablation A5).
	CoarseGranularity bool
}

// Analyze compiles a parsed query with the paper's default analysis:
// normalize, derive roles, place sign-offs.
func Analyze(q *xqast.Query) (*Plan, error) {
	return AnalyzeWithOptions(q, Options{})
}

// AnalyzeWithOptions compiles with explicit analysis switches.
func AnalyzeWithOptions(q *xqast.Query, opts Options) (*Plan, error) {
	norm, err := Normalize(q)
	if err != nil {
		return nil, err
	}
	pristine := &xqast.Query{Body: xqast.CloneExpr(norm.Body)}

	ex := newExtractor()
	ex.opts = opts
	if err := ex.run(norm); err != nil {
		return nil, err
	}
	rewritten := &xqast.Query{Body: ex.rewrite(norm.Body, nil)}
	plan := &Plan{
		Normalized:      pristine,
		Rewritten:       rewritten,
		Roles:           ex.roles,
		UsesAggregation: ex.usesAggregation,
		Opts:            opts,
	}
	plan.Automaton, plan.SkipReason = xpath.CompileAutomatonReason(plan.RolePaths())
	plan.Stream = Streamability(plan)
	plan.Join = DetectJoin(plan)
	return plan, nil
}
