package analysis

import (
	"strings"
	"testing"

	"gcx/internal/xqast"
)

// TestAttrTemplateRoles: computed constructor attributes derive value
// roles (string values need subtrees; attribute accesses only the
// owning elements).
func TestAttrTemplateRoles(t *testing.T) {
	plan := mustAnalyze(t, `for $i in /regions/item return <w name="{$i/name/text()}" id="{$i/@id}" d="{$i/loc}"/>`)
	var paths []string
	for _, r := range plan.Roles {
		paths = append(paths, r.Path.String())
	}
	joined := strings.Join(paths, "\n")
	for _, want := range []string{
		"/regions/item/name/text()",                    // text template: text nodes only
		"/regions/item/loc/descendant-or-self::node()", // element template: string value
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing role %q in:\n%s", want, joined)
		}
	}
	// @id template needs no role: attributes ride on the binding node.
	for _, p := range paths {
		if strings.Contains(p, "@") {
			t.Errorf("attribute step leaked into role %s", p)
		}
	}
}

// TestWhereClauseRoles: where desugars before analysis, so its operand
// roles match the explicit-if form exactly.
func TestWhereClauseRoles(t *testing.T) {
	sugar := mustAnalyze(t, `for $b in /bib/book where $b/price <= 40 return $b/title`)
	explicit := mustAnalyze(t, `for $b in /bib/book return if ($b/price <= 40) then $b/title else ()`)
	if len(sugar.Roles) != len(explicit.Roles) {
		t.Fatalf("role counts differ: %d vs %d", len(sugar.Roles), len(explicit.Roles))
	}
	for i := range sugar.Roles {
		if !sugar.Roles[i].Path.Equal(explicit.Roles[i].Path) {
			t.Errorf("role %d: %s vs %s", i, sugar.Roles[i].Path, explicit.Roles[i].Path)
		}
	}
}

// TestAggregateRoles: count keeps node-only roles; sum and friends need
// values.
func TestAggregateRoles(t *testing.T) {
	plan := mustAnalyze(t, `(count(/a/b), sum(/a/c))`)
	var countPath, sumPath string
	for _, r := range plan.Roles {
		if r.Kind == RoleAgg {
			if strings.HasPrefix(r.Provenance, "count") {
				countPath = r.Path.String()
			}
			if strings.HasPrefix(r.Provenance, "sum") {
				sumPath = r.Path.String()
			}
		}
	}
	if countPath != "/a/b" {
		t.Errorf("count role = %q, want /a/b", countPath)
	}
	if sumPath != "/a/c/descendant-or-self::node()" {
		t.Errorf("sum role = %q, want subtree path", sumPath)
	}
	if !plan.UsesAggregation {
		t.Error("UsesAggregation not set")
	}
}

// TestGuardHoistingKeepsBalanceStructure: loops under conditionals hoist
// their sign-offs out (one sign-off per role, placed unconditionally).
func TestGuardHoistingKeepsBalanceStructure(t *testing.T) {
	plan := mustAnalyze(t, `for $a in /x/y return
	   if (exists $a/k) then (for $b in $a/z return $b/w) else ()`)
	// The $b loop is guarded: its sign-offs must sit in $a's body (after
	// the if), not inside the loop.
	bLoop := findLoop(plan.Rewritten.Body, "b")
	if got := signOffStrings(bLoop.Body); len(got) != 0 {
		t.Fatalf("guarded loop still carries sign-offs: %v", got)
	}
	aLoop := findLoop(plan.Rewritten.Body, "a")
	aSigns := strings.Join(signOffStrings(aLoop.Body), "\n")
	for _, want := range []string{"signOff($a/z,", "signOff($a/z/w/descendant-or-self::node(),"} {
		if !strings.Contains(aSigns, want) {
			t.Errorf("hoisted sign-off %q missing from $a's body:\n%s", want, aSigns)
		}
	}
	// ... and they come after the if statement.
	stmts := statements(aLoop.Body)
	sawIf := false
	for _, s := range stmts {
		switch s.(type) {
		case *xqast.IfExpr:
			sawIf = true
		case *xqast.SignOff:
			if !sawIf {
				t.Fatal("sign-off before the guarded statement")
			}
		}
	}
}

// TestEveryRoleHasExactlyOneSignOff is the structural contract behind
// the balance property, across a corpus of tricky queries.
func TestEveryRoleHasExactlyOneSignOff(t *testing.T) {
	queries := []string{
		PaperQuery,
		`for $p in /s/p return (for $t in /s/c return if ($t/b = $p/a) then $t else ())`,
		`for $a in /x/y return if (exists $a/k) then (for $b in $a/z return $b/w) else ()`,
		`<o>{ (sum(/a/b), for $x in /a/b where $x/@id = "1" return <w v="{$x/c}"/>) }</o>`,
		`for $x in /a//b return for $y in $x//c return $y`,
	}
	for _, src := range queries {
		plan := mustAnalyze(t, src)
		seen := map[int]int{}
		xqast.Walk(plan.Rewritten.Body, func(e xqast.Expr) bool {
			if so, ok := e.(*xqast.SignOff); ok {
				seen[so.Role]++
			}
			return true
		})
		for _, r := range plan.Roles {
			if seen[r.ID] != 1 {
				t.Errorf("query %q: role %s has %d sign-offs", src, r.Name(), seen[r.ID])
			}
		}
		if len(seen) != len(plan.Roles) {
			t.Errorf("query %q: %d sign-offs for %d roles", src, len(seen), len(plan.Roles))
		}
	}
}
