// Package sizeparse parses human-friendly byte sizes ("512KB", "10MB")
// for the command-line tools.
package sizeparse

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse understands raw byte counts and B/KB/MB/GB suffixes
// (case-insensitive, binary multiples).
func Parse(s string) (int64, error) {
	orig := s
	s = strings.TrimSpace(strings.ToUpper(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "GB"):
		mult, s = 1<<30, strings.TrimSuffix(s, "GB")
	case strings.HasSuffix(s, "MB"):
		mult, s = 1<<20, strings.TrimSuffix(s, "MB")
	case strings.HasSuffix(s, "KB"):
		mult, s = 1<<10, strings.TrimSuffix(s, "KB")
	case strings.HasSuffix(s, "B"):
		s = strings.TrimSuffix(s, "B")
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil || f <= 0 {
		return 0, fmt.Errorf("malformed size %q", orig)
	}
	if f > float64((int64(1)<<62)/mult) {
		return 0, fmt.Errorf("size %q overflows", orig)
	}
	return int64(f * float64(mult)), nil
}

// Format renders a byte count with a binary-unit suffix.
func Format(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
