package sizeparse

import "testing"

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"1024", 1024},
		{"512B", 512},
		{"1KB", 1 << 10},
		{"10MB", 10 << 20},
		{"2GB", 2 << 30},
		{" 5 mb ", 5 << 20},
		{"10mb", 10 << 20},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil || got != c.want {
			t.Errorf("Parse(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "MB", "-5MB", "0", "x10MB", "99999999999GB"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): expected error", in)
		}
	}
}

func TestFormat(t *testing.T) {
	cases := map[int64]string{
		512:      "512B",
		1 << 10:  "1.0KB",
		10 << 20: "10.0MB",
		3 << 30:  "3.0GB",
		1536:     "1.5KB",
	}
	for in, want := range cases {
		if got := Format(in); got != want {
			t.Errorf("Format(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	for _, n := range []int64{1 << 10, 1 << 20, 10 << 20, 1 << 30} {
		back, err := Parse(Format(n))
		if err != nil || back != n {
			t.Errorf("round trip %d → %q → %d, %v", n, Format(n), back, err)
		}
	}
}
