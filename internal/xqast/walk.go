package xqast

// Walk traverses the expression tree in evaluation (pre-) order, calling
// fn for every Expr node. If fn returns false the node's children are
// not visited. Conditions are not Exprs; use WalkConds or VisitPaths to
// reach into them.
func Walk(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch e := e.(type) {
	case *Sequence:
		for _, item := range e.Items {
			Walk(item, fn)
		}
	case *Element:
		for _, a := range e.Attrs {
			if a.Expr != nil {
				Walk(a.Expr, fn)
			}
		}
		Walk(e.Content, fn)
	case *ForExpr:
		Walk(e.Body, fn)
	case *IfExpr:
		Walk(e.Then, fn)
		Walk(e.Else, fn)
	}
}

// WalkConds calls fn on every condition node beneath c, outermost first.
func WalkConds(c Cond, fn func(Cond)) {
	if c == nil {
		return
	}
	fn(c)
	switch c := c.(type) {
	case *NotCond:
		WalkConds(c.C, fn)
	case *AndCond:
		WalkConds(c.L, fn)
		WalkConds(c.R, fn)
	case *OrCond:
		WalkConds(c.L, fn)
		WalkConds(c.R, fn)
	}
}

// FreeVars returns the set of variable names used (as path bases or var
// refs) but not bound by a for-loop within e. RootVar is never included.
func FreeVars(e Expr) map[string]bool {
	free := map[string]bool{}
	bound := map[string]bool{RootVar: true}
	collectFree(e, bound, free)
	return free
}

// UsedVars is FreeVars with RootVar reported like any other variable —
// the shardability analysis needs to see whether an expression reads
// the document root (a cross-partition access).
func UsedVars(e Expr) map[string]bool {
	free := map[string]bool{}
	collectFree(e, map[string]bool{}, free)
	return free
}

func use(name string, bound, free map[string]bool) {
	if !bound[name] {
		free[name] = true
	}
}

func collectFree(e Expr, bound, free map[string]bool) {
	switch e := e.(type) {
	case *Sequence:
		for _, item := range e.Items {
			collectFree(item, bound, free)
		}
	case *Element:
		for _, a := range e.Attrs {
			if a.Expr != nil {
				use(a.Expr.Base, bound, free)
			}
		}
		collectFree(e.Content, bound, free)
	case *VarRef:
		use(e.Var, bound, free)
	case *PathExpr:
		use(e.Base, bound, free)
	case *AggExpr:
		use(e.Arg.Base, bound, free)
	case *SignOff:
		use(e.Base, bound, free)
	case *ForExpr:
		use(e.In.Base, bound, free)
		saved := bound[e.Var]
		bound[e.Var] = true
		collectFree(e.Body, bound, free)
		bound[e.Var] = saved
	case *IfExpr:
		WalkConds(e.Cond, func(c Cond) {
			switch c := c.(type) {
			case *ExistsCond:
				use(c.Arg.Base, bound, free)
			case *CompareCond:
				if c.L.Kind == OperandPath {
					use(c.L.Path.Base, bound, free)
				}
				if c.R.Kind == OperandPath {
					use(c.R.Path.Base, bound, free)
				}
			}
		})
		collectFree(e.Then, bound, free)
		collectFree(e.Else, bound, free)
	}
}
