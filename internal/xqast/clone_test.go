package xqast

import (
	"strings"
	"testing"

	"gcx/internal/xpath"
	"gcx/internal/xqvalue"
)

// fullFeatureTree builds an expression exercising every node type.
func fullFeatureTree() Expr {
	pe := PathExpr{Base: "x", Path: xpath.Path{Steps: []xpath.Step{xpath.ChildStep("a")}}}
	return NewSequence(
		&Element{
			Name: "w",
			Attrs: []AttrTemplate{
				{Name: "lit", Lit: "v"},
				{Name: "dyn", Expr: &pe},
			},
			Content: &ForExpr{
				Var: "x",
				In:  PathExpr{Base: RootVar, Path: xpath.Path{Steps: []xpath.Step{xpath.ChildStep("r")}}},
				Body: &IfExpr{
					Cond: &AndCond{
						L: &OrCond{L: &BoolLit{Value: true}, R: &NotCond{C: &ExistsCond{Arg: pe}}},
						R: &CompareCond{Op: CmpLe,
							L: Operand{Kind: OperandPath, Path: pe},
							R: Operand{Kind: OperandNumber, Num: 4}},
					},
					Then: &VarRef{Var: "x"},
					Else: &StringLit{Value: "s"},
				},
			},
		},
		&AggExpr{Fn: xqvalue.Sum, Arg: pe},
		&SignOff{Base: "x", Path: pe.Path, Role: 3},
		&Empty{},
	)
}

func TestCloneDeepEquality(t *testing.T) {
	orig := fullFeatureTree()
	cp := CloneExpr(orig)
	if Print(&Query{Body: orig}) != Print(&Query{Body: cp}) {
		t.Fatalf("clone prints differently:\n%s\nvs\n%s",
			Print(&Query{Body: orig}), Print(&Query{Body: cp}))
	}
}

func TestCloneIsolation(t *testing.T) {
	orig := fullFeatureTree().(*Sequence)
	cp := CloneExpr(orig).(*Sequence)
	// mutating the clone must not affect the original
	el := cp.Items[0].(*Element)
	el.Name = "mutated"
	el.Attrs[0].Lit = "mutated"
	el.Attrs[1].Expr.Base = "mutated"
	cp.Items[1].(*AggExpr).Fn = xqvalue.Min

	oe := orig.Items[0].(*Element)
	if oe.Name != "w" || oe.Attrs[0].Lit != "v" || oe.Attrs[1].Expr.Base != "x" {
		t.Fatal("clone shares state with original element")
	}
	if orig.Items[1].(*AggExpr).Fn != xqvalue.Sum {
		t.Fatal("clone shares aggregate state")
	}
}

func TestCloneCondTypes(t *testing.T) {
	conds := []Cond{
		&ExistsCond{},
		&NotCond{C: &BoolLit{}},
		&AndCond{L: &BoolLit{}, R: &BoolLit{}},
		&OrCond{L: &BoolLit{}, R: &BoolLit{}},
		&BoolLit{Value: true},
		&CompareCond{},
	}
	for _, c := range conds {
		cp := CloneCond(c)
		if cp == c {
			t.Fatalf("%T not deep-cloned", c)
		}
	}
	if CloneCond(nil) != nil {
		t.Fatal("nil cond clone")
	}
	if CloneExpr(nil) != nil {
		t.Fatal("nil expr clone")
	}
}

func TestPrintOperandForms(t *testing.T) {
	cmp := &IfExpr{
		Cond: &CompareCond{Op: CmpNe,
			L: Operand{Kind: OperandString, Str: "lit"},
			R: Operand{Kind: OperandNumber, Num: 2.5}},
		Then: &Empty{}, Else: &Empty{},
	}
	out := PrintExpr(cmp)
	for _, want := range []string{`"lit"`, "!=", "2.5"} {
		if !contains(out, want) {
			t.Errorf("printed %q missing %q", out, want)
		}
	}
	// integral numbers print without a decimal point
	cmp.Cond.(*CompareCond).R.Num = 40
	if !contains(PrintExpr(cmp), " 40") {
		t.Errorf("integral literal printed wrong: %s", PrintExpr(cmp))
	}
}

func TestPrintSelfClosingAndDynAttrs(t *testing.T) {
	pe := PathExpr{Base: "x", Path: xpath.Path{Steps: []xpath.Step{xpath.AttributeStep("id")}}}
	el := &Element{Name: "e", Attrs: []AttrTemplate{{Name: "a", Expr: &pe}}, Content: &Empty{}}
	out := PrintExpr(el)
	if out != `<e a="{$x/@id}"/>` {
		t.Fatalf("got %q", out)
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
