// Package xqast defines the abstract syntax tree of the XQuery fragment
// supported by GCX: composition-free XQuery with (after normalization)
// single-step nested for-loops, conditions and joins — plus the signOff
// statements that the static analysis inserts at preemption points
// (paper §2), and a count() aggregation extension flagged as such.
package xqast

import (
	"gcx/internal/xpath"
	"gcx/internal/xqvalue"
)

// RootVar is the name of the implicit variable bound to the virtual
// document root. Absolute paths such as /bib are represented as
// PathExpr{Base: RootVar, Path: /bib}. The parser rejects user variables
// with this name, so it can never be captured.
const RootVar = "%root"

// Expr is a node of the query body.
type Expr interface{ isExpr() }

// Empty is the empty sequence ().
type Empty struct{}

// Sequence is the comma operator (e1, e2, ..., en) with n >= 2.
type Sequence struct {
	Items []Expr
}

// AttrTemplate is one attribute of a direct constructor: either a
// literal string value, or an attribute value template with a single
// enclosed path expression (`id="{$x/@id}"`), whose value is the
// space-joined string values of the selected nodes.
type AttrTemplate struct {
	Name string
	// Lit is the literal value; used when Expr is nil.
	Lit string
	// Expr, when non-nil, computes the value at construction time.
	Expr *PathExpr
}

// Element is a direct element constructor <Name Attrs>{Content}</Name>.
type Element struct {
	Name    string
	Attrs   []AttrTemplate
	Content Expr
}

// StringLit is literal text output (string literal in the query).
type StringLit struct {
	Value string
}

// VarRef outputs the full subtree of the node bound to Var ("then $x" in
// the paper's running example — the source of role r5).
type VarRef struct {
	Var string
}

// PathExpr addresses nodes relative to a variable binding: $Base/Path.
// In output position it serializes each selected node's subtree in
// document order (or the attribute value, for attribute-final paths).
type PathExpr struct {
	Base string
	Path xpath.Path
}

// ForExpr is a for-loop "for $Var in $In.Base/In.Path return Body".
// After normalization, In.Path always has exactly one step ("single-step
// for-loops", paper footnote 1).
type ForExpr struct {
	Var  string
	In   PathExpr
	Body Expr
}

// IfExpr is "if (Cond) then Then else Else".
type IfExpr struct {
	Cond Cond
	Then Expr
	Else Expr
}

// AggExpr is an aggregation in output position: count, sum, min, max or
// avg over a path's selected nodes. The paper notes GCX "does not yet
// cover aggregation"; this reproduction implements the family as an
// opt-in extension (see DESIGN.md §3).
type AggExpr struct {
	Fn  xqvalue.AggFunc
	Arg PathExpr
}

// SignOff is the compile-time-inserted statement
// "signOff($Base/Path, rRole)". Executing it removes one instance of
// Role from every node reached from the binding of Base via Path (per
// derivation), and triggers garbage collection.
type SignOff struct {
	Base string
	Path xpath.Path
	Role int
}

func (*Empty) isExpr()     {}
func (*Sequence) isExpr()  {}
func (*Element) isExpr()   {}
func (*StringLit) isExpr() {}
func (*VarRef) isExpr()    {}
func (*PathExpr) isExpr()  {}
func (*ForExpr) isExpr()   {}
func (*IfExpr) isExpr()    {}
func (*AggExpr) isExpr()   {}
func (*SignOff) isExpr()   {}

// Cond is a condition of an if-expression.
type Cond interface{ isCond() }

// ExistsCond is "exists($x/path)" — satisfied by a first witness
// (projection predicate [1], role r4 in the paper).
type ExistsCond struct {
	Arg PathExpr
}

// NotCond negates a condition.
type NotCond struct {
	C Cond
}

// AndCond is conjunction.
type AndCond struct {
	L, R Cond
}

// OrCond is disjunction.
type OrCond struct {
	L, R Cond
}

// BoolLit is true() or false().
type BoolLit struct {
	Value bool
}

// CmpOp is a general-comparison operator.
type CmpOp uint8

const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

func (o CmpOp) String() string {
	switch o {
	case CmpEq:
		return "="
	case CmpNe:
		return "!="
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	}
	return "?"
}

// OperandKind discriminates comparison operands.
type OperandKind uint8

const (
	// OperandPath is a node-set operand $x/path (string values compared
	// existentially, XPath-1.0 style).
	OperandPath OperandKind = iota
	// OperandString is a string literal.
	OperandString
	// OperandNumber is a numeric literal; its presence switches the
	// comparison to numeric.
	OperandNumber
)

// Operand is one side of a comparison.
type Operand struct {
	Kind OperandKind
	Path PathExpr // OperandPath
	Str  string   // OperandString
	Num  float64  // OperandNumber
}

// CompareCond is a general comparison "L op R".
type CompareCond struct {
	Op   CmpOp
	L, R Operand
}

func (*ExistsCond) isCond()  {}
func (*NotCond) isCond()     {}
func (*AndCond) isCond()     {}
func (*OrCond) isCond()      {}
func (*BoolLit) isCond()     {}
func (*CompareCond) isCond() {}

// Query is a complete query.
type Query struct {
	Body Expr
}

// seqAppend flattens nested sequences while appending, so rewrites keep
// the tree in a canonical shape.
func seqAppend(items []Expr, e Expr) []Expr {
	if s, ok := e.(*Sequence); ok {
		return append(items, s.Items...)
	}
	if _, ok := e.(*Empty); ok {
		return items
	}
	return append(items, e)
}

// NewSequence builds a canonical sequence from parts: nested sequences
// are flattened and empty expressions dropped. It returns Empty for zero
// parts and the single part itself for one.
func NewSequence(parts ...Expr) Expr {
	var items []Expr
	for _, p := range parts {
		items = seqAppend(items, p)
	}
	switch len(items) {
	case 0:
		return &Empty{}
	case 1:
		return items[0]
	default:
		return &Sequence{Items: items}
	}
}
