package xqast

// CloneExpr returns a deep copy of an expression tree. The analysis
// keeps a pristine copy of the normalized query while the rewriter
// mutates the working tree.
func CloneExpr(e Expr) Expr {
	switch e := e.(type) {
	case nil:
		return nil
	case *Empty:
		return &Empty{}
	case *Sequence:
		items := make([]Expr, len(e.Items))
		for i, item := range e.Items {
			items[i] = CloneExpr(item)
		}
		return &Sequence{Items: items}
	case *Element:
		attrs := make([]AttrTemplate, len(e.Attrs))
		for i, a := range e.Attrs {
			attrs[i] = a
			if a.Expr != nil {
				cp := *a.Expr
				attrs[i].Expr = &cp
			}
		}
		return &Element{Name: e.Name, Attrs: attrs, Content: CloneExpr(e.Content)}
	case *StringLit:
		return &StringLit{Value: e.Value}
	case *VarRef:
		return &VarRef{Var: e.Var}
	case *PathExpr:
		cp := *e
		return &cp
	case *ForExpr:
		return &ForExpr{Var: e.Var, In: e.In, Body: CloneExpr(e.Body)}
	case *IfExpr:
		return &IfExpr{Cond: CloneCond(e.Cond), Then: CloneExpr(e.Then), Else: CloneExpr(e.Else)}
	case *AggExpr:
		return &AggExpr{Fn: e.Fn, Arg: e.Arg}
	case *SignOff:
		cp := *e
		return &cp
	default:
		panic("xqast: unknown expression type in CloneExpr")
	}
}

// CloneCond returns a deep copy of a condition tree.
func CloneCond(c Cond) Cond {
	switch c := c.(type) {
	case nil:
		return nil
	case *ExistsCond:
		return &ExistsCond{Arg: c.Arg}
	case *NotCond:
		return &NotCond{C: CloneCond(c.C)}
	case *AndCond:
		return &AndCond{L: CloneCond(c.L), R: CloneCond(c.R)}
	case *OrCond:
		return &OrCond{L: CloneCond(c.L), R: CloneCond(c.R)}
	case *BoolLit:
		return &BoolLit{Value: c.Value}
	case *CompareCond:
		return &CompareCond{Op: c.Op, L: c.L, R: c.R}
	default:
		panic("xqast: unknown condition type in CloneCond")
	}
}
