package xqast

import (
	"fmt"
	"strings"

	"gcx/internal/xpath"
)

// Print renders a query as text in the style of the paper's listings
// (for-loops one per line, signOff statements spelled out). The output
// parses back to an equivalent query when it contains no SignOff nodes;
// rewritten queries are printed for explanation only.
func Print(q *Query) string {
	var p printer
	p.expr(q.Body, 0)
	return strings.TrimRight(p.b.String(), "\n") + "\n"
}

// PrintExpr renders a single expression (used in error messages and the
// role browser of cmd/gcx -explain).
func PrintExpr(e Expr) string {
	var p printer
	p.expr(e, 0)
	return strings.TrimRight(p.b.String(), "\n")
}

type printer struct {
	b strings.Builder
}

func (p *printer) indent(level int) {
	for i := 0; i < level; i++ {
		p.b.WriteString("  ")
	}
}

func (p *printer) line(level int, format string, args ...any) {
	p.indent(level)
	fmt.Fprintf(&p.b, format, args...)
	p.b.WriteString("\n")
}

func pathRef(base string, path xpath.Path) string {
	if base == RootVar {
		return path.String()
	}
	if path.IsEmpty() {
		return "$" + base
	}
	return "$" + base + "/" + path.RelString()
}

func (p *printer) expr(e Expr, level int) {
	switch e := e.(type) {
	case *Empty:
		p.line(level, "()")
	case *Sequence:
		p.line(level, "(")
		for i, item := range e.Items {
			p.expr(item, level+1)
			if i < len(e.Items)-1 {
				// attach comma to previous line
				s := p.b.String()
				p.b.Reset()
				p.b.WriteString(strings.TrimRight(s, "\n"))
				p.b.WriteString(",\n")
			}
		}
		p.line(level, ")")
	case *Element:
		var attrs strings.Builder
		for _, a := range e.Attrs {
			if a.Expr != nil {
				fmt.Fprintf(&attrs, ` %s="{%s}"`, a.Name, pathRef(a.Expr.Base, a.Expr.Path))
			} else {
				fmt.Fprintf(&attrs, " %s=%q", a.Name, a.Lit)
			}
		}
		if _, ok := e.Content.(*Empty); ok {
			p.line(level, "<%s%s/>", e.Name, attrs.String())
			return
		}
		p.line(level, "<%s%s> {", e.Name, attrs.String())
		p.expr(e.Content, level+1)
		p.line(level, "} </%s>", e.Name)
	case *StringLit:
		p.line(level, "%q", e.Value)
	case *VarRef:
		p.line(level, "$%s", e.Var)
	case *PathExpr:
		p.line(level, "%s", pathRef(e.Base, e.Path))
	case *ForExpr:
		p.line(level, "for $%s in %s return", e.Var, pathRef(e.In.Base, e.In.Path))
		p.expr(e.Body, level+1)
	case *IfExpr:
		p.line(level, "if (%s) then", condString(e.Cond))
		p.expr(e.Then, level+1)
		p.line(level, "else")
		p.expr(e.Else, level+1)
	case *AggExpr:
		p.line(level, "%s(%s)", e.Fn, pathRef(e.Arg.Base, e.Arg.Path))
	case *SignOff:
		p.line(level, "signOff(%s, r%d)", pathRef(e.Base, e.Path), e.Role+1)
	default:
		p.line(level, "?unknown-expr?")
	}
}

func condString(c Cond) string {
	switch c := c.(type) {
	case *ExistsCond:
		return fmt.Sprintf("exists %s", pathRef(c.Arg.Base, c.Arg.Path))
	case *NotCond:
		return fmt.Sprintf("not(%s)", condString(c.C))
	case *AndCond:
		return fmt.Sprintf("%s and %s", condString(c.L), condString(c.R))
	case *OrCond:
		return fmt.Sprintf("%s or %s", condString(c.L), condString(c.R))
	case *BoolLit:
		if c.Value {
			return "true()"
		}
		return "false()"
	case *CompareCond:
		return fmt.Sprintf("%s %s %s", operandString(c.L), c.Op, operandString(c.R))
	default:
		return "?cond?"
	}
}

func operandString(o Operand) string {
	switch o.Kind {
	case OperandPath:
		return pathRef(o.Path.Base, o.Path.Path)
	case OperandString:
		return fmt.Sprintf("%q", o.Str)
	case OperandNumber:
		if o.Num == float64(int64(o.Num)) {
			return fmt.Sprintf("%d", int64(o.Num))
		}
		return fmt.Sprintf("%g", o.Num)
	default:
		return "?operand?"
	}
}
