package xqast

import (
	"strings"
	"testing"

	"gcx/internal/xpath"
)

// paperExample builds the AST of the paper's running example query:
//
//	<r> { for $bib in /bib return
//	        (for $x in $bib/* return
//	           if (not(exists $x/price)) then $x else (),
//	         for $b in $bib/book return $b/title) } </r>
func paperExample() *Query {
	inner1 := &ForExpr{
		Var: "x",
		In:  PathExpr{Base: "bib", Path: xpath.Path{Steps: []xpath.Step{xpath.WildcardStep()}}},
		Body: &IfExpr{
			Cond: &NotCond{C: &ExistsCond{Arg: PathExpr{
				Base: "x",
				Path: xpath.Path{Steps: []xpath.Step{xpath.ChildStep("price")}},
			}}},
			Then: &VarRef{Var: "x"},
			Else: &Empty{},
		},
	}
	inner2 := &ForExpr{
		Var: "b",
		In:  PathExpr{Base: "bib", Path: xpath.Path{Steps: []xpath.Step{xpath.ChildStep("book")}}},
		Body: &PathExpr{
			Base: "b",
			Path: xpath.Path{Steps: []xpath.Step{xpath.ChildStep("title")}},
		},
	}
	return &Query{Body: &Element{
		Name: "r",
		Content: &ForExpr{
			Var:  "bib",
			In:   PathExpr{Base: RootVar, Path: xpath.Path{Steps: []xpath.Step{xpath.ChildStep("bib")}}},
			Body: NewSequence(inner1, inner2),
		},
	}}
}

func TestPrintPaperExample(t *testing.T) {
	out := Print(paperExample())
	for _, want := range []string{
		"<r> {",
		"for $bib in /bib return",
		"for $x in $bib/* return",
		"if (not(exists $x/price)) then",
		"$x",
		"for $b in $bib/book return",
		"$b/title",
		"} </r>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("printed query missing %q:\n%s", want, out)
		}
	}
}

func TestPrintSignOff(t *testing.T) {
	so := &SignOff{
		Base: "x",
		Path: xpath.Path{Steps: []xpath.Step{
			{Axis: xpath.Child, Test: xpath.Test{Kind: xpath.TestName, Name: "price"}, FirstOnly: true},
		}},
		Role: 3,
	}
	if got := PrintExpr(so); got != "signOff($x/price[1], r4)" {
		t.Fatalf("got %q", got)
	}
	self := &SignOff{Base: "x", Role: 2}
	if got := PrintExpr(self); got != "signOff($x, r3)" {
		t.Fatalf("got %q", got)
	}
	root := &SignOff{Base: RootVar, Path: xpath.Path{Steps: []xpath.Step{xpath.ChildStep("bib")}}, Role: 1}
	if got := PrintExpr(root); got != "signOff(/bib, r2)" {
		t.Fatalf("got %q", got)
	}
}

func TestNewSequenceCanonicalization(t *testing.T) {
	if _, ok := NewSequence().(*Empty); !ok {
		t.Error("empty NewSequence should be Empty")
	}
	v := &VarRef{Var: "x"}
	if got := NewSequence(v); got != v {
		t.Error("single-item sequence should be the item")
	}
	s := NewSequence(v, NewSequence(&StringLit{Value: "a"}, &StringLit{Value: "b"}), &Empty{})
	seq, ok := s.(*Sequence)
	if !ok || len(seq.Items) != 3 {
		t.Fatalf("flattening failed: %#v", s)
	}
}

func TestWalkOrder(t *testing.T) {
	q := paperExample()
	var kinds []string
	Walk(q.Body, func(e Expr) bool {
		switch e.(type) {
		case *Element:
			kinds = append(kinds, "elem")
		case *ForExpr:
			kinds = append(kinds, "for")
		case *IfExpr:
			kinds = append(kinds, "if")
		case *VarRef:
			kinds = append(kinds, "var")
		case *PathExpr:
			kinds = append(kinds, "path")
		}
		return true
	})
	want := []string{"elem", "for", "for", "if", "var", "for", "path"}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Fatalf("walk order = %v, want %v", kinds, want)
	}
}

func TestWalkPrune(t *testing.T) {
	q := paperExample()
	count := 0
	Walk(q.Body, func(e Expr) bool {
		count++
		_, isFor := e.(*ForExpr)
		return !isFor // don't descend into loops
	})
	// element + outer for only
	if count != 2 {
		t.Fatalf("pruned walk visited %d nodes, want 2", count)
	}
}

func TestFreeVars(t *testing.T) {
	q := paperExample()
	free := FreeVars(q.Body)
	if len(free) != 0 {
		t.Fatalf("paper example should be closed, free = %v", free)
	}
	open := &PathExpr{Base: "undeclared", Path: xpath.Path{}}
	free = FreeVars(open)
	if !free["undeclared"] {
		t.Fatal("free variable not detected")
	}
	// condition bases count too
	cond := &IfExpr{
		Cond: &CompareCond{Op: CmpEq,
			L: Operand{Kind: OperandPath, Path: PathExpr{Base: "p"}},
			R: Operand{Kind: OperandString, Str: "x"}},
		Then: &Empty{}, Else: &Empty{},
	}
	if !FreeVars(cond)["p"] {
		t.Fatal("comparison operand base not detected as free")
	}
}

func TestCondString(t *testing.T) {
	c := &AndCond{
		L: &CompareCond{Op: CmpGt,
			L: Operand{Kind: OperandPath, Path: PathExpr{Base: "p", Path: xpath.Path{Steps: []xpath.Step{xpath.AttributeStep("income")}}}},
			R: Operand{Kind: OperandNumber, Num: 95000}},
		R: &OrCond{L: &BoolLit{Value: true}, R: &NotCond{C: &BoolLit{Value: false}}},
	}
	got := condString(c)
	want := `$p/@income > 95000 and true() or not(false())`
	if got != want {
		t.Fatalf("condString = %q, want %q", got, want)
	}
}
