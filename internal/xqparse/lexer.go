// Package xqparse parses the composition-free XQuery fragment supported
// by GCX (paper §3): nested for-loops, conditions with exists /
// comparisons / boolean connectives, direct element constructors,
// variable and path output — plus the count() extension. The parser is a
// hand-written recursive-descent parser over a small lexer; direct
// element constructors switch the lexer into raw-content mode, as
// required by XQuery's grammar.
package xqparse

import (
	"fmt"
	"strings"
)

// tokKind enumerates lexer tokens in expression mode.
type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tVar    // $name (Val holds name without '$')
	tString // "..." or '...'
	tNumber
	tComma
	tLParen
	tRParen
	tLBrace
	tRBrace
	tLBracket
	tRBracket
	tSlash  // /
	tDSlash // //
	tStar   // *
	tAt     // @
	tDColon // ::
	tLt     // <   (also opens element constructors)
	tLe     // <=
	tGt     // >
	tGe     // >=
	tEq     // =
	tNe     // !=
)

func (k tokKind) String() string {
	names := map[tokKind]string{
		tEOF: "end of query", tIdent: "identifier", tVar: "variable",
		tString: "string literal", tNumber: "number", tComma: "','",
		tLParen: "'('", tRParen: "')'", tLBrace: "'{'", tRBrace: "'}'",
		tLBracket: "'['", tRBracket: "']'", tSlash: "'/'", tDSlash: "'//'",
		tStar: "'*'", tAt: "'@'", tDColon: "'::'", tLt: "'<'", tLe: "'<='",
		tGt: "'>'", tGe: "'>='", tEq: "'='", tNe: "'!='",
	}
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", uint8(k))
}

type token struct {
	Kind tokKind
	Val  string
	Pos  int
}

// Error is a query parse error with a byte position.
type Error struct {
	Pos int
	Msg string
}

func (e *Error) Error() string {
	return fmt.Sprintf("xquery parse error at offset %d: %s", e.Pos, e.Msg)
}

// lexer tokenizes query text. The parser drives mode switches by calling
// the raw* methods directly when inside direct element constructors.
type lexer struct {
	src string
	pos int
}

func (l *lexer) errf(pos int, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// skipSpace skips whitespace and (: ... :) comments (nesting supported).
func (l *lexer) skipSpace() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		if c == '(' && l.pos+1 < len(l.src) && l.src[l.pos+1] == ':' {
			depth := 1
			start := l.pos
			l.pos += 2
			for depth > 0 {
				if l.pos+1 >= len(l.src) {
					return l.errf(start, "unterminated comment")
				}
				switch {
				case l.src[l.pos] == '(' && l.src[l.pos+1] == ':':
					depth++
					l.pos += 2
				case l.src[l.pos] == ':' && l.src[l.pos+1] == ')':
					depth--
					l.pos += 2
				default:
					l.pos++
				}
			}
			continue
		}
		break
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentByte(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '-' || c == '.'
}

// ident reads an identifier at the current position.
func (l *lexer) ident() (string, error) {
	start := l.pos
	if l.pos >= len(l.src) || !isIdentStart(l.src[l.pos]) {
		return "", l.errf(l.pos, "expected name")
	}
	for l.pos < len(l.src) && isIdentByte(l.src[l.pos]) {
		l.pos++
	}
	return l.src[start:l.pos], nil
}

// next returns the next expression-mode token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpace(); err != nil {
		return token{}, err
	}
	if l.pos >= len(l.src) {
		return token{Kind: tEOF, Pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch c {
	case ',':
		l.pos++
		return token{Kind: tComma, Pos: start}, nil
	case '(':
		l.pos++
		return token{Kind: tLParen, Pos: start}, nil
	case ')':
		l.pos++
		return token{Kind: tRParen, Pos: start}, nil
	case '{':
		l.pos++
		return token{Kind: tLBrace, Pos: start}, nil
	case '}':
		l.pos++
		return token{Kind: tRBrace, Pos: start}, nil
	case '[':
		l.pos++
		return token{Kind: tLBracket, Pos: start}, nil
	case ']':
		l.pos++
		return token{Kind: tRBracket, Pos: start}, nil
	case '*':
		l.pos++
		return token{Kind: tStar, Pos: start}, nil
	case '@':
		l.pos++
		return token{Kind: tAt, Pos: start}, nil
	case '/':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '/' {
			l.pos++
			return token{Kind: tDSlash, Pos: start}, nil
		}
		return token{Kind: tSlash, Pos: start}, nil
	case ':':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == ':' {
			l.pos += 2
			return token{Kind: tDColon, Pos: start}, nil
		}
		return token{}, l.errf(start, "unexpected ':'")
	case '<':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{Kind: tLe, Pos: start}, nil
		}
		return token{Kind: tLt, Pos: start}, nil
	case '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{Kind: tGe, Pos: start}, nil
		}
		return token{Kind: tGt, Pos: start}, nil
	case '=':
		l.pos++
		return token{Kind: tEq, Pos: start}, nil
	case '!':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{Kind: tNe, Pos: start}, nil
		}
		return token{}, l.errf(start, "unexpected '!'")
	case '$':
		l.pos++
		name, err := l.ident()
		if err != nil {
			return token{}, l.errf(start, "malformed variable name after '$'")
		}
		return token{Kind: tVar, Val: name, Pos: start}, nil
	case '"', '\'':
		l.pos++
		end := strings.IndexByte(l.src[l.pos:], c)
		if end < 0 {
			return token{}, l.errf(start, "unterminated string literal")
		}
		val := l.src[l.pos : l.pos+end]
		l.pos += end + 1
		return token{Kind: tString, Val: val, Pos: start}, nil
	}
	if c >= '0' && c <= '9' {
		for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
			l.pos++
		}
		return token{Kind: tNumber, Val: l.src[start:l.pos], Pos: start}, nil
	}
	if isIdentStart(c) {
		name, err := l.ident()
		if err != nil {
			return token{}, err
		}
		return token{Kind: tIdent, Val: name, Pos: start}, nil
	}
	return token{}, l.errf(start, "unexpected character %q", string(c))
}

// --- raw (element-constructor) mode -------------------------------------

// rawContentEvent describes what terminated a raw content scan.
type rawContentEvent uint8

const (
	rawOpenTag  rawContentEvent = iota // '<' followed by a name
	rawCloseTag                        // '</'
	rawBrace                           // '{'
	rawEOF
)

// rawContent reads literal element content up to the next markup
// boundary. The terminating construct itself is consumed for '{' and
// '</', while '<' of a nested open tag is consumed too (the caller
// continues with rawTagRest). Escapes {{ and }} yield literal braces.
func (l *lexer) rawContent() (text string, ev rawContentEvent, err error) {
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '<':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
				l.pos += 2
				return b.String(), rawCloseTag, nil
			}
			l.pos++
			return b.String(), rawOpenTag, nil
		case '{':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '{' {
				b.WriteByte('{')
				l.pos += 2
				continue
			}
			l.pos++
			return b.String(), rawBrace, nil
		case '}':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '}' {
				b.WriteByte('}')
				l.pos += 2
				continue
			}
			return "", 0, l.errf(l.pos, "unescaped '}' in element content")
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return b.String(), rawEOF, nil
}

// rawName reads an element or attribute name in tag context.
func (l *lexer) rawName() (string, error) {
	return l.ident()
}

func (l *lexer) rawSkipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c != ' ' && c != '\t' && c != '\n' && c != '\r' {
			return
		}
		l.pos++
	}
}

// rawByte consumes and returns the next byte.
func (l *lexer) rawByte() (byte, error) {
	if l.pos >= len(l.src) {
		return 0, l.errf(l.pos, "unexpected end of query in element constructor")
	}
	b := l.src[l.pos]
	l.pos++
	return b, nil
}

// rawPeek returns the next byte without consuming it (0 at EOF).
func (l *lexer) rawPeek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

// rawAttrValue reads a quoted attribute value.
func (l *lexer) rawAttrValue() (string, error) {
	q, err := l.rawByte()
	if err != nil {
		return "", err
	}
	if q != '"' && q != '\'' {
		return "", l.errf(l.pos-1, "expected quoted attribute value")
	}
	end := strings.IndexByte(l.src[l.pos:], q)
	if end < 0 {
		return "", l.errf(l.pos, "unterminated attribute value")
	}
	val := l.src[l.pos : l.pos+end]
	l.pos += end + 1
	return val, nil
}
