package xqparse

import (
	"testing"

	"gcx/internal/analysis"
)

// FuzzParse: the parser must never panic, and anything it accepts must
// go through static analysis without panicking either. Run with
// `go test -fuzz FuzzParse ./internal/xqparse` for continuous fuzzing;
// the seed corpus runs as part of the normal test suite.
func FuzzParse(f *testing.F) {
	seeds := []string{
		PaperQuery,
		`for $x in /a/b where $x/@id = "1" return sum($x/c)`,
		`<w a="{$x/@id}">{ if (exists /a//b) then count(/a/b) else () }</w>`,
		`$x/descendant-or-self::node()`,
		`for $x in /a return (for $y in /b return if ($y/k = $x/k) then $y else ())`,
		`(: comment :) "lit"`,
		`<a>{{esc}}</a>`,
		`for $x in`,
		`<a><b>{$x}</a></b>`,
		`$x//@id`,
		`if (not($x/a = 5)) then true() else $y`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		// accepted queries must analyze or fail cleanly
		_, _ = analysis.Analyze(q)
	})
}
