package xqparse

import (
	"strconv"
	"strings"

	"gcx/internal/xpath"
	"gcx/internal/xqast"
	"gcx/internal/xqvalue"
)

// Parse parses query text into an AST. The result is the surface syntax
// tree: for-loop bindings may still contain multi-step paths; use
// analysis.Normalize to reduce them to the single-step core.
func Parse(src string) (*xqast.Query, error) {
	p := &parser{lex: &lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	body, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.cur.Kind != tEOF {
		return nil, p.errf("unexpected %s after query end", p.cur.Kind)
	}
	return &xqast.Query{Body: body}, nil
}

type parser struct {
	lex     *lexer
	cur     token
	pending *token // one-token lookahead buffer
}

func (p *parser) errf(format string, args ...any) error {
	return p.lex.errf(p.cur.Pos, format, args...)
}

func (p *parser) advance() error {
	if p.pending != nil {
		p.cur, p.pending = *p.pending, nil
		return nil
	}
	tok, err := p.lex.next()
	if err != nil {
		return err
	}
	p.cur = tok
	return nil
}

// peek returns the token after cur without consuming it. It must not be
// called where a raw-mode switch could follow cur.
func (p *parser) peek() (token, error) {
	if p.pending == nil {
		tok, err := p.lex.next()
		if err != nil {
			return token{}, err
		}
		p.pending = &tok
	}
	return *p.pending, nil
}

func (p *parser) expect(k tokKind) error {
	if p.cur.Kind != k {
		return p.errf("expected %s, found %s", k, p.cur.Kind)
	}
	return p.advance()
}

// isKeyword reports whether cur is the given contextual keyword.
func (p *parser) isKeyword(kw string) bool {
	return p.cur.Kind == tIdent && p.cur.Val == kw
}

// parseExpr parses a comma-separated sequence.
func (p *parser) parseExpr() (xqast.Expr, error) {
	first, err := p.parseSingle()
	if err != nil {
		return nil, err
	}
	items := []xqast.Expr{first}
	for p.cur.Kind == tComma {
		if err := p.advance(); err != nil {
			return nil, err
		}
		next, err := p.parseSingle()
		if err != nil {
			return nil, err
		}
		items = append(items, next)
	}
	if len(items) == 1 {
		return items[0], nil
	}
	return xqast.NewSequence(items...), nil
}

func (p *parser) parseSingle() (xqast.Expr, error) {
	switch {
	case p.isKeyword("for"):
		return p.parseFor()
	case p.isKeyword("if"):
		return p.parseIf()
	case p.cur.Kind == tIdent && isAggName(p.cur.Val):
		return p.parseAgg()
	case p.cur.Kind == tLt:
		return p.parseElement()
	case p.cur.Kind == tLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.cur.Kind == tRParen {
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &xqast.Empty{}, nil
		}
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tRParen); err != nil {
			return nil, err
		}
		return inner, nil
	case p.cur.Kind == tString:
		lit := &xqast.StringLit{Value: p.cur.Val}
		return lit, p.advance()
	case p.cur.Kind == tVar || p.cur.Kind == tSlash || p.cur.Kind == tDSlash:
		pe, err := p.parsePathRef()
		if err != nil {
			return nil, err
		}
		if pe.Path.IsEmpty() && pe.Base != xqast.RootVar {
			return &xqast.VarRef{Var: pe.Base}, nil
		}
		return &pe, nil
	default:
		return nil, p.errf("expected expression, found %s", p.cur.Kind)
	}
}

func (p *parser) parseFor() (xqast.Expr, error) {
	if err := p.advance(); err != nil { // consume 'for'
		return nil, err
	}
	if p.cur.Kind != tVar {
		return nil, p.errf("expected variable after 'for'")
	}
	v := p.cur.Val
	if err := p.advance(); err != nil {
		return nil, err
	}
	if !p.isKeyword("in") {
		return nil, p.errf("expected 'in' in for-loop")
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	in, err := p.parsePathRef()
	if err != nil {
		return nil, err
	}
	if in.Path.IsEmpty() {
		return nil, p.errf("for-loop binding must contain at least one step")
	}
	if in.Path.EndsWithAttribute() {
		return nil, p.errf("for-loop cannot iterate attributes")
	}
	// optional where clause — sugar for a conditional body
	var where xqast.Cond
	if p.isKeyword("where") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		c, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		where = c
	}
	if !p.isKeyword("return") {
		return nil, p.errf("expected 'return' in for-loop")
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	body, err := p.parseSingle()
	if err != nil {
		return nil, err
	}
	if where != nil {
		body = &xqast.IfExpr{Cond: where, Then: body, Else: &xqast.Empty{}}
	}
	return &xqast.ForExpr{Var: v, In: in, Body: body}, nil
}

func (p *parser) parseIf() (xqast.Expr, error) {
	if err := p.advance(); err != nil { // consume 'if'
		return nil, err
	}
	if err := p.expect(tLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tRParen); err != nil {
		return nil, err
	}
	if !p.isKeyword("then") {
		return nil, p.errf("expected 'then'")
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	then, err := p.parseSingle()
	if err != nil {
		return nil, err
	}
	if !p.isKeyword("else") {
		return nil, p.errf("expected 'else'")
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	els, err := p.parseSingle()
	if err != nil {
		return nil, err
	}
	return &xqast.IfExpr{Cond: cond, Then: then, Else: els}, nil
}

func isAggName(name string) bool {
	_, ok := xqvalue.ParseAggFunc(name)
	return ok
}

func (p *parser) parseAgg() (xqast.Expr, error) {
	fn, _ := xqvalue.ParseAggFunc(p.cur.Val)
	if err := p.advance(); err != nil { // consume the function name
		return nil, err
	}
	if err := p.expect(tLParen); err != nil {
		return nil, err
	}
	arg, err := p.parsePathRef()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tRParen); err != nil {
		return nil, err
	}
	return &xqast.AggExpr{Fn: fn, Arg: arg}, nil
}

// --- paths ---------------------------------------------------------------

// parsePathRef parses $var, $var/steps, /steps or //steps.
func (p *parser) parsePathRef() (xqast.PathExpr, error) {
	base := xqast.RootVar
	switch p.cur.Kind {
	case tVar:
		// User variables can never collide with the internal RootVar:
		// its name contains '%', which the lexer cannot produce.
		base = p.cur.Val
		if err := p.advance(); err != nil {
			return xqast.PathExpr{}, err
		}
	case tSlash, tDSlash:
		// absolute path
	default:
		return xqast.PathExpr{}, p.errf("expected path or variable, found %s", p.cur.Kind)
	}
	var steps []xpath.Step
	for p.cur.Kind == tSlash || p.cur.Kind == tDSlash {
		descend := p.cur.Kind == tDSlash
		if err := p.advance(); err != nil {
			return xqast.PathExpr{}, err
		}
		step, err := p.parseStep(descend)
		if err != nil {
			return xqast.PathExpr{}, err
		}
		if len(steps) > 0 && steps[len(steps)-1].Axis == xpath.Attribute {
			return xqast.PathExpr{}, p.errf("attribute step must be the final step")
		}
		steps = append(steps, step)
	}
	return xqast.PathExpr{Base: base, Path: xpath.Path{Steps: steps}}, nil
}

var axisByName = map[string]xpath.Axis{
	"child":              xpath.Child,
	"descendant":         xpath.Descendant,
	"descendant-or-self": xpath.DescendantOrSelf,
	"self":               xpath.Self,
	"attribute":          xpath.Attribute,
}

// parseStep parses one location step; descend is true when the step was
// introduced by '//' (descendant shorthand).
func (p *parser) parseStep(descend bool) (xpath.Step, error) {
	axis := xpath.Child
	if descend {
		axis = xpath.Descendant
	}
	var test xpath.Test
	switch p.cur.Kind {
	case tAt:
		if err := p.advance(); err != nil {
			return xpath.Step{}, err
		}
		if p.cur.Kind != tIdent {
			return xpath.Step{}, p.errf("expected attribute name after '@'")
		}
		if descend {
			return xpath.Step{}, p.errf("'//@attr' is not supported; attributes are element-local")
		}
		st := xpath.AttributeStep(p.cur.Val)
		return st, p.advance()
	case tStar:
		test = xpath.Test{Kind: xpath.TestWildcard}
		if err := p.advance(); err != nil {
			return xpath.Step{}, err
		}
	case tIdent:
		name := p.cur.Val
		nxt, err := p.peek()
		if err != nil {
			return xpath.Step{}, err
		}
		if nxt.Kind == tDColon {
			ax, ok := axisByName[name]
			if !ok {
				return xpath.Step{}, p.errf("unsupported axis %q", name)
			}
			if descend {
				return xpath.Step{}, p.errf("'//' cannot combine with an explicit axis")
			}
			axis = ax
			if err := p.advance(); err != nil { // axis name
				return xpath.Step{}, err
			}
			if err := p.advance(); err != nil { // '::'
				return xpath.Step{}, err
			}
			if axis == xpath.Attribute {
				if p.cur.Kind != tIdent {
					return xpath.Step{}, p.errf("expected attribute name")
				}
				st := xpath.AttributeStep(p.cur.Val)
				return st, p.advance()
			}
			t, err := p.parseNodeTest()
			if err != nil {
				return xpath.Step{}, err
			}
			test = t
		} else {
			t, err := p.parseNodeTest()
			if err != nil {
				return xpath.Step{}, err
			}
			test = t
		}
	default:
		return xpath.Step{}, p.errf("expected step, found %s", p.cur.Kind)
	}
	step := xpath.Step{Axis: axis, Test: test}
	if p.cur.Kind == tLBracket {
		if err := p.advance(); err != nil {
			return xpath.Step{}, err
		}
		if p.cur.Kind != tNumber || p.cur.Val != "1" {
			return xpath.Step{}, p.errf("only the first-witness predicate [1] is supported")
		}
		if err := p.advance(); err != nil {
			return xpath.Step{}, err
		}
		if err := p.expect(tRBracket); err != nil {
			return xpath.Step{}, err
		}
		step.FirstOnly = true
	}
	return step, nil
}

// parseNodeTest parses name, *, text() or node() with cur at the name.
func (p *parser) parseNodeTest() (xpath.Test, error) {
	if p.cur.Kind == tStar {
		return xpath.Test{Kind: xpath.TestWildcard}, p.advance()
	}
	if p.cur.Kind != tIdent {
		return xpath.Test{}, p.errf("expected node test, found %s", p.cur.Kind)
	}
	name := p.cur.Val
	if name == "text" || name == "node" {
		nxt, err := p.peek()
		if err != nil {
			return xpath.Test{}, err
		}
		if nxt.Kind == tLParen {
			if err := p.advance(); err != nil { // name
				return xpath.Test{}, err
			}
			if err := p.advance(); err != nil { // '('
				return xpath.Test{}, err
			}
			if err := p.expect(tRParen); err != nil {
				return xpath.Test{}, err
			}
			if name == "text" {
				return xpath.Test{Kind: xpath.TestText}, nil
			}
			return xpath.Test{Kind: xpath.TestNode}, nil
		}
	}
	return xpath.Test{Kind: xpath.TestName, Name: name}, p.advance()
}

// --- conditions ----------------------------------------------------------

func (p *parser) parseCond() (xqast.Cond, error) {
	l, err := p.parseAndCond()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("or") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAndCond()
		if err != nil {
			return nil, err
		}
		l = &xqast.OrCond{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAndCond() (xqast.Cond, error) {
	l, err := p.parsePrimCond()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("and") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parsePrimCond()
		if err != nil {
			return nil, err
		}
		l = &xqast.AndCond{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parsePrimCond() (xqast.Cond, error) {
	switch {
	case p.isKeyword("not"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expect(tLParen); err != nil {
			return nil, err
		}
		inner, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tRParen); err != nil {
			return nil, err
		}
		return &xqast.NotCond{C: inner}, nil
	case p.isKeyword("exists"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		paren := p.cur.Kind == tLParen
		if paren {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		arg, err := p.parsePathRef()
		if err != nil {
			return nil, err
		}
		if paren {
			if err := p.expect(tRParen); err != nil {
				return nil, err
			}
		}
		return &xqast.ExistsCond{Arg: arg}, nil
	case p.isKeyword("true"), p.isKeyword("false"):
		val := p.cur.Val == "true"
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expect(tLParen); err != nil {
			return nil, err
		}
		if err := p.expect(tRParen); err != nil {
			return nil, err
		}
		return &xqast.BoolLit{Value: val}, nil
	case p.cur.Kind == tLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tRParen); err != nil {
			return nil, err
		}
		return inner, nil
	default:
		return p.parseComparison()
	}
}

func (p *parser) parseComparison() (xqast.Cond, error) {
	l, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	var op xqast.CmpOp
	switch p.cur.Kind {
	case tEq:
		op = xqast.CmpEq
	case tNe:
		op = xqast.CmpNe
	case tLt:
		op = xqast.CmpLt
	case tLe:
		op = xqast.CmpLe
	case tGt:
		op = xqast.CmpGt
	case tGe:
		op = xqast.CmpGe
	default:
		return nil, p.errf("expected comparison operator, found %s", p.cur.Kind)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	r, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return &xqast.CompareCond{Op: op, L: l, R: r}, nil
}

func (p *parser) parseOperand() (xqast.Operand, error) {
	switch p.cur.Kind {
	case tString:
		o := xqast.Operand{Kind: xqast.OperandString, Str: p.cur.Val}
		return o, p.advance()
	case tNumber:
		n, err := strconv.ParseFloat(p.cur.Val, 64)
		if err != nil {
			return xqast.Operand{}, p.errf("malformed number %q", p.cur.Val)
		}
		o := xqast.Operand{Kind: xqast.OperandNumber, Num: n}
		return o, p.advance()
	case tVar, tSlash, tDSlash:
		pe, err := p.parsePathRef()
		if err != nil {
			return xqast.Operand{}, err
		}
		return xqast.Operand{Kind: xqast.OperandPath, Path: pe}, nil
	default:
		return xqast.Operand{}, p.errf("expected comparison operand, found %s", p.cur.Kind)
	}
}

// --- direct element constructors ------------------------------------------

// parseElement parses a direct constructor; cur is the '<' token and the
// lexer position is immediately after it.
func (p *parser) parseElement() (xqast.Expr, error) {
	if p.pending != nil {
		// A raw-mode switch with buffered lookahead would lose input;
		// grammar-wise this cannot happen ('<' is never peeked past).
		return nil, p.errf("internal: lookahead across constructor boundary")
	}
	name, err := p.lex.rawName()
	if err != nil {
		return nil, err
	}
	el, err := p.parseNestedElement(name)
	if err != nil {
		return nil, err
	}
	return el, p.advance()
}

// parseContent parses element content until the matching close tag.
func (p *parser) parseContent(name string) (xqast.Expr, error) {
	var parts []xqast.Expr
	for {
		text, ev, err := p.lex.rawContent()
		if err != nil {
			return nil, err
		}
		if strings.TrimSpace(text) != "" {
			parts = append(parts, &xqast.StringLit{Value: text})
		}
		switch ev {
		case rawEOF:
			return nil, p.lex.errf(p.lex.pos, "missing </%s>", name)
		case rawCloseTag:
			cname, err := p.lex.rawName()
			if err != nil {
				return nil, err
			}
			if cname != name {
				return nil, p.lex.errf(p.lex.pos, "mismatched </%s>, expected </%s>", cname, name)
			}
			p.lex.rawSkipSpace()
			if b, err := p.lex.rawByte(); err != nil || b != '>' {
				return nil, p.lex.errf(p.lex.pos, "malformed </%s>", cname)
			}
			return xqast.NewSequence(parts...), nil
		case rawOpenTag:
			childName, err := p.lex.rawName()
			if err != nil {
				return nil, err
			}
			child, err := p.parseNestedElement(childName)
			if err != nil {
				return nil, err
			}
			parts = append(parts, child)
		case rawBrace:
			if err := p.advance(); err != nil {
				return nil, err
			}
			inner, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if p.cur.Kind != tRBrace {
				return nil, p.errf("expected '}' closing enclosed expression, found %s", p.cur.Kind)
			}
			// Do not advance: following bytes are raw content again.
			parts = append(parts, inner)
		}
	}
}

// parseNestedElement parses a nested literal element whose name has
// already been read.
func (p *parser) parseNestedElement(name string) (xqast.Expr, error) {
	var attrs []xqast.AttrTemplate
	for {
		p.lex.rawSkipSpace()
		switch p.lex.rawPeek() {
		case '>':
			_, _ = p.lex.rawByte()
			content, err := p.parseContent(name)
			if err != nil {
				return nil, err
			}
			return &xqast.Element{Name: name, Attrs: attrs, Content: content}, nil
		case '/':
			_, _ = p.lex.rawByte()
			if b, err := p.lex.rawByte(); err != nil || b != '>' {
				return nil, p.lex.errf(p.lex.pos, "malformed self-closing <%s", name)
			}
			return &xqast.Element{Name: name, Attrs: attrs, Content: &xqast.Empty{}}, nil
		default:
			aname, err := p.lex.rawName()
			if err != nil {
				return nil, p.lex.errf(p.lex.pos, "malformed tag <%s", name)
			}
			p.lex.rawSkipSpace()
			if b, err := p.lex.rawByte(); err != nil || b != '=' {
				return nil, p.lex.errf(p.lex.pos, "attribute %s missing '='", aname)
			}
			p.lex.rawSkipSpace()
			aval, err := p.lex.rawAttrValue()
			if err != nil {
				return nil, err
			}
			attr, err := p.attrTemplate(aname, aval)
			if err != nil {
				return nil, err
			}
			attrs = append(attrs, attr)
		}
	}
}

// attrTemplate interprets an attribute value: a literal, or an
// attribute value template holding exactly one enclosed path expression
// ("{$x/@id}"). Doubled braces escape to literal braces.
func (p *parser) attrTemplate(name, value string) (xqast.AttrTemplate, error) {
	trimmed := strings.TrimSpace(value)
	if !strings.HasPrefix(trimmed, "{") || strings.HasPrefix(trimmed, "{{") {
		lit := strings.ReplaceAll(value, "{{", "{")
		lit = strings.ReplaceAll(lit, "}}", "}")
		return xqast.AttrTemplate{Name: name, Lit: lit}, nil
	}
	if !strings.HasSuffix(trimmed, "}") {
		return xqast.AttrTemplate{}, p.lex.errf(p.lex.pos, "unterminated attribute value template in %s", name)
	}
	inner := trimmed[1 : len(trimmed)-1]
	sub := &parser{lex: &lexer{src: inner}}
	if err := sub.advance(); err != nil {
		return xqast.AttrTemplate{}, err
	}
	pe, err := sub.parsePathRef()
	if err != nil {
		return xqast.AttrTemplate{}, err
	}
	if sub.cur.Kind != tEOF {
		return xqast.AttrTemplate{}, p.lex.errf(p.lex.pos,
			"attribute value templates support a single enclosed path expression")
	}
	return xqast.AttrTemplate{Name: name, Expr: &pe}, nil
}
