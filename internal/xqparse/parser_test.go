package xqparse

import (
	"strings"
	"testing"

	"gcx/internal/xpath"
	"gcx/internal/xqast"
)

// PaperQuery is the running example of the paper (§1).
const PaperQuery = `<r> {
for $bib in /bib return
(for $x in $bib/* return
   if (not(exists $x/price)) then $x else (),
 for $b in $bib/book return $b/title)
} </r>`

func mustParse(t *testing.T, src string) *xqast.Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q
}

func TestParsePaperQuery(t *testing.T) {
	q := mustParse(t, PaperQuery)
	el, ok := q.Body.(*xqast.Element)
	if !ok || el.Name != "r" {
		t.Fatalf("body = %#v, want <r> element", q.Body)
	}
	outer, ok := el.Content.(*xqast.ForExpr)
	if !ok || outer.Var != "bib" {
		t.Fatalf("content = %#v, want for $bib", el.Content)
	}
	if outer.In.Base != xqast.RootVar || outer.In.Path.String() != "/bib" {
		t.Fatalf("outer binding = %s/%s", outer.In.Base, outer.In.Path)
	}
	seq, ok := outer.Body.(*xqast.Sequence)
	if !ok || len(seq.Items) != 2 {
		t.Fatalf("outer body = %#v, want 2-item sequence", outer.Body)
	}
	f1, ok := seq.Items[0].(*xqast.ForExpr)
	if !ok || f1.Var != "x" || f1.In.Path.String() != "/*" || f1.In.Base != "bib" {
		t.Fatalf("first loop = %#v", seq.Items[0])
	}
	iff, ok := f1.Body.(*xqast.IfExpr)
	if !ok {
		t.Fatalf("first loop body = %#v", f1.Body)
	}
	not, ok := iff.Cond.(*xqast.NotCond)
	if !ok {
		t.Fatalf("cond = %#v", iff.Cond)
	}
	ex, ok := not.C.(*xqast.ExistsCond)
	if !ok || ex.Arg.Base != "x" || ex.Arg.Path.String() != "/price" {
		t.Fatalf("exists = %#v", not.C)
	}
	if _, ok := iff.Then.(*xqast.VarRef); !ok {
		t.Fatalf("then = %#v", iff.Then)
	}
	if _, ok := iff.Else.(*xqast.Empty); !ok {
		t.Fatalf("else = %#v", iff.Else)
	}
	f2, ok := seq.Items[1].(*xqast.ForExpr)
	if !ok || f2.Var != "b" || f2.In.Path.String() != "/book" {
		t.Fatalf("second loop = %#v", seq.Items[1])
	}
	pe, ok := f2.Body.(*xqast.PathExpr)
	if !ok || pe.Base != "b" || pe.Path.String() != "/title" {
		t.Fatalf("second body = %#v", f2.Body)
	}
}

func TestParseMultiStepAndDescendant(t *testing.T) {
	q := mustParse(t, `for $i in /site/regions//item return $i/name`)
	f := q.Body.(*xqast.ForExpr)
	if got := f.In.Path.String(); got != "/site/regions/descendant::item" {
		t.Fatalf("binding path = %q", got)
	}
}

func TestParseExplicitAxes(t *testing.T) {
	q := mustParse(t, `$x/descendant-or-self::node()`)
	pe := q.Body.(*xqast.PathExpr)
	if pe.Path.String() != "/descendant-or-self::node()" {
		t.Fatalf("path = %q", pe.Path)
	}
	q = mustParse(t, `$x/self::node()`)
	pe = q.Body.(*xqast.PathExpr)
	if pe.Path.Steps[0].Axis != xpath.Self {
		t.Fatal("self axis not parsed")
	}
	q = mustParse(t, `$x/child::price[1]`)
	pe = q.Body.(*xqast.PathExpr)
	if !pe.Path.Steps[0].FirstOnly {
		t.Fatal("[1] not parsed")
	}
	q = mustParse(t, `$x/text()`)
	pe = q.Body.(*xqast.PathExpr)
	if pe.Path.Steps[0].Test.Kind != xpath.TestText {
		t.Fatal("text() not parsed")
	}
	q = mustParse(t, `$x/attribute::id`)
	pe = q.Body.(*xqast.PathExpr)
	if pe.Path.Steps[0].Axis != xpath.Attribute || pe.Path.Steps[0].Test.Name != "id" {
		t.Fatal("attribute:: axis not parsed")
	}
}

func TestParseAttributePath(t *testing.T) {
	q := mustParse(t, `if ($p/@id = "person0") then $p/name else ()`)
	iff := q.Body.(*xqast.IfExpr)
	cmp := iff.Cond.(*xqast.CompareCond)
	if cmp.Op != xqast.CmpEq {
		t.Fatalf("op = %v", cmp.Op)
	}
	if cmp.L.Kind != xqast.OperandPath || cmp.L.Path.Path.String() != "/@id" {
		t.Fatalf("left operand = %#v", cmp.L)
	}
	if cmp.R.Kind != xqast.OperandString || cmp.R.Str != "person0" {
		t.Fatalf("right operand = %#v", cmp.R)
	}
}

func TestParseNumericComparisonAndBoolOps(t *testing.T) {
	q := mustParse(t, `if ($p/@income > 95000 and not($p/@income <= 30000) or false()) then "y" else "n"`)
	iff := q.Body.(*xqast.IfExpr)
	or, ok := iff.Cond.(*xqast.OrCond)
	if !ok {
		t.Fatalf("cond = %#v, want or at top (and binds tighter)", iff.Cond)
	}
	and, ok := or.L.(*xqast.AndCond)
	if !ok {
		t.Fatalf("or.L = %#v", or.L)
	}
	cmp := and.L.(*xqast.CompareCond)
	if cmp.Op != xqast.CmpGt || cmp.R.Num != 95000 {
		t.Fatalf("cmp = %#v", cmp)
	}
	if _, ok := and.R.(*xqast.NotCond); !ok {
		t.Fatalf("and.R = %#v", and.R)
	}
	if bl, ok := or.R.(*xqast.BoolLit); !ok || bl.Value {
		t.Fatalf("or.R = %#v", or.R)
	}
}

func TestParseElementWithLiteralContentAndAttrs(t *testing.T) {
	q := mustParse(t, `<item id="i1"> head <b>bold</b> {$x/name} tail </item>`)
	el := q.Body.(*xqast.Element)
	if len(el.Attrs) != 1 || el.Attrs[0].Name != "id" || el.Attrs[0].Lit != "i1" {
		t.Fatalf("attrs = %#v", el.Attrs)
	}
	seq, ok := el.Content.(*xqast.Sequence)
	if !ok || len(seq.Items) != 4 {
		t.Fatalf("content = %#v", el.Content)
	}
	if lit := seq.Items[0].(*xqast.StringLit); strings.TrimSpace(lit.Value) != "head" {
		t.Fatalf("item0 = %#v", seq.Items[0])
	}
	if b := seq.Items[1].(*xqast.Element); b.Name != "b" {
		t.Fatalf("item1 = %#v", seq.Items[1])
	}
	if pe := seq.Items[2].(*xqast.PathExpr); pe.Base != "x" {
		t.Fatalf("item2 = %#v", seq.Items[2])
	}
}

func TestParseBraceEscapes(t *testing.T) {
	q := mustParse(t, `<a>{{literal}}</a>`)
	el := q.Body.(*xqast.Element)
	lit, ok := el.Content.(*xqast.StringLit)
	if !ok || lit.Value != "{literal}" {
		t.Fatalf("content = %#v", el.Content)
	}
}

func TestParseSelfClosingConstructor(t *testing.T) {
	q := mustParse(t, `<a/>`)
	el := q.Body.(*xqast.Element)
	if el.Name != "a" {
		t.Fatal("self-closing constructor")
	}
	if _, ok := el.Content.(*xqast.Empty); !ok {
		t.Fatal("content should be empty")
	}
}

func TestParseCount(t *testing.T) {
	q := mustParse(t, `count($x/bidder)`)
	c := q.Body.(*xqast.AggExpr)
	if c.Arg.Base != "x" || c.Arg.Path.String() != "/bidder" {
		t.Fatalf("count arg = %#v", c.Arg)
	}
}

func TestParseComments(t *testing.T) {
	q := mustParse(t, `(: outer (: nested :) :) for $x in /a return (: mid :) $x`)
	if _, ok := q.Body.(*xqast.ForExpr); !ok {
		t.Fatalf("body = %#v", q.Body)
	}
}

func TestParseSequenceAndEmpty(t *testing.T) {
	q := mustParse(t, `("a", (), "b", ("c", "d"))`)
	seq := q.Body.(*xqast.Sequence)
	if len(seq.Items) != 4 {
		t.Fatalf("items = %d, want 4 (empty dropped, nested flattened)", len(seq.Items))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`for $x in /a`,
		`for x in /a return $x`,
		`for $x in $y return`,
		`if ($x/a = "b") then "y"`,
		`<a>{$x}</b>`,
		`<a>`,
		`$x/`,
		`$x/@id/name`,
		`$x/a[2]`,
		`$x/unknownaxis::b`,
		`exists`,
		`count($x`,
		`"unterminated`,
		`(: unterminated comment`,
		`for $x in $y/@id return $x`,
		`<a>}</a>`,
		`$x ,`,
		`if ($x/a ~ "b") then "y" else "n"`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error, got none", src)
		}
	}
}

// TestPrintParseRoundTrip checks Print output re-parses to an equivalent
// tree for a representative set of queries.
func TestPrintParseRoundTrip(t *testing.T) {
	queries := []string{
		PaperQuery,
		`for $i in /site/regions//item return <item>{$i/name}</item>`,
		`if (exists $x/a) then count($x/a) else "none"`,
		`<out a="b">{("x", $v, /a/b/text())}</out>`,
	}
	for _, src := range queries {
		q1 := mustParse(t, src)
		printed := xqast.Print(q1)
		q2, err := Parse(printed)
		if err != nil {
			t.Errorf("reparse of printed query failed: %v\nprinted:\n%s", err, printed)
			continue
		}
		if p1, p2 := xqast.Print(q1), xqast.Print(q2); p1 != p2 {
			t.Errorf("round trip not stable:\nfirst:\n%s\nsecond:\n%s", p1, p2)
		}
	}
}
