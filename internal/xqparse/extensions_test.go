package xqparse

import (
	"testing"

	"gcx/internal/xqast"
	"gcx/internal/xqvalue"
)

// TestParseWhereClause: "where" desugars to a conditional body.
func TestParseWhereClause(t *testing.T) {
	q := mustParse(t, `for $x in /a/b where $x/@id = "1" return $x/name`)
	f := q.Body.(*xqast.ForExpr)
	iff, ok := f.Body.(*xqast.IfExpr)
	if !ok {
		t.Fatalf("where did not desugar to if: %#v", f.Body)
	}
	if _, ok := iff.Cond.(*xqast.CompareCond); !ok {
		t.Fatalf("cond = %#v", iff.Cond)
	}
	if _, ok := iff.Then.(*xqast.PathExpr); !ok {
		t.Fatalf("then = %#v", iff.Then)
	}
	if _, ok := iff.Else.(*xqast.Empty); !ok {
		t.Fatalf("else = %#v", iff.Else)
	}
}

func TestParseWhereWithBooleans(t *testing.T) {
	q := mustParse(t, `for $x in /a/b where exists $x/c and not($x/d = "2") return $x`)
	f := q.Body.(*xqast.ForExpr)
	iff := f.Body.(*xqast.IfExpr)
	if _, ok := iff.Cond.(*xqast.AndCond); !ok {
		t.Fatalf("cond = %#v", iff.Cond)
	}
}

// TestParseAggregates: the whole extension family parses.
func TestParseAggregates(t *testing.T) {
	cases := map[string]xqvalue.AggFunc{
		`count($x/b)`:   xqvalue.Count,
		`sum($x/price)`: xqvalue.Sum,
		`min($x/price)`: xqvalue.Min,
		`max($x/price)`: xqvalue.Max,
		`avg($x/price)`: xqvalue.Avg,
	}
	for src, fn := range cases {
		q := mustParse(t, src)
		agg, ok := q.Body.(*xqast.AggExpr)
		if !ok || agg.Fn != fn {
			t.Errorf("%s parsed to %#v", src, q.Body)
		}
	}
}

// TestAggNamesStillValidAsElementNames: sum etc. are contextual — they
// remain usable as path element names.
func TestAggNamesStillValidAsElementNames(t *testing.T) {
	q := mustParse(t, `$x/sum/count`)
	pe, ok := q.Body.(*xqast.PathExpr)
	if !ok || pe.Path.String() != "/sum/count" {
		t.Fatalf("body = %#v", q.Body)
	}
}

// TestParseAttrTemplates: attribute value templates carry one enclosed
// path expression.
func TestParseAttrTemplates(t *testing.T) {
	q := mustParse(t, `<item name="{$i/name/text()}" fixed="lit">{$i/description}</item>`)
	el := q.Body.(*xqast.Element)
	if len(el.Attrs) != 2 {
		t.Fatalf("attrs = %#v", el.Attrs)
	}
	dyn := el.Attrs[0]
	if dyn.Expr == nil || dyn.Expr.Base != "i" || dyn.Expr.Path.String() != "/name/text()" {
		t.Fatalf("dynamic attr = %#v", dyn)
	}
	lit := el.Attrs[1]
	if lit.Expr != nil || lit.Lit != "lit" {
		t.Fatalf("literal attr = %#v", lit)
	}
}

func TestParseAttrTemplateAbsoluteAndAttrPath(t *testing.T) {
	q := mustParse(t, `<w a="{/site/people/person/@id}"/>`)
	el := q.Body.(*xqast.Element)
	if el.Attrs[0].Expr == nil || el.Attrs[0].Expr.Base != xqast.RootVar {
		t.Fatalf("attr = %#v", el.Attrs[0])
	}
	if el.Attrs[0].Expr.Path.String() != "/site/people/person/@id" {
		t.Fatalf("path = %s", el.Attrs[0].Expr.Path)
	}
}

func TestParseAttrTemplateBraceEscapes(t *testing.T) {
	q := mustParse(t, `<w a="{{not-an-expr}}"/>`)
	el := q.Body.(*xqast.Element)
	if el.Attrs[0].Expr != nil || el.Attrs[0].Lit != "{not-an-expr}" {
		t.Fatalf("attr = %#v", el.Attrs[0])
	}
}

func TestParseAttrTemplateErrors(t *testing.T) {
	for _, src := range []string{
		`<w a="{$x/b"/>`,      // unterminated template (no closing brace)
		`<w a="{$x/b, $y}"/>`, // more than one expression
		`<w a="{if}"/>`,       // not a path
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

// TestPrintParseRoundTripExtensions: printed extension constructs
// re-parse stably.
func TestPrintParseRoundTripExtensions(t *testing.T) {
	queries := []string{
		`for $x in /a/b where exists $x/c return sum($x/c)`,
		`<item id="{$x/@id}">{ avg(/a/b/price) }</item>`,
	}
	for _, src := range queries {
		q1 := mustParse(t, src)
		printed := xqast.Print(q1)
		q2, err := Parse(printed)
		if err != nil {
			t.Errorf("reparse failed: %v\n%s", err, printed)
			continue
		}
		if xqast.Print(q1) != xqast.Print(q2) {
			t.Errorf("round trip unstable for %s", src)
		}
	}
}

// TestUserVariableNamedRoot: "$root" is an ordinary user variable — the
// internal root variable contains '%' and cannot collide.
func TestUserVariableNamedRoot(t *testing.T) {
	q := mustParse(t, `for $root in /a/b return $root/c`)
	f := q.Body.(*xqast.ForExpr)
	if f.Var != "root" {
		t.Fatalf("var = %q", f.Var)
	}
	if f.In.Base != xqast.RootVar {
		t.Fatal("absolute binding must anchor at the internal root")
	}
}
