package xqparse

import (
	"testing"

	"gcx/internal/xmark"
)

// BenchmarkParsePaperQuery measures compile-side lexing+parsing of the
// running example.
func BenchmarkParsePaperQuery(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(PaperQuery); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParseXMarkQ8 parses the largest catalog query.
func BenchmarkParseXMarkQ8(b *testing.B) {
	src := xmark.Queries["Q8"].Text
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}
