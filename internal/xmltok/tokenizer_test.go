package xmltok

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// drain reads all tokens until EOF.
func drain(t *testing.T, tz *Tokenizer) []Token {
	t.Helper()
	var toks []Token
	for {
		tok, err := tz.Next()
		if err == io.EOF {
			return toks
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		toks = append(toks, tok)
	}
}

func TestBasicDocument(t *testing.T) {
	const doc = `<bib><book year="1994"><title>TCP/IP</title></book></bib>`
	toks := drain(t, NewTokenizer(strings.NewReader(doc)))
	want := []Token{
		{Kind: StartElement, Name: "bib"},
		{Kind: StartElement, Name: "book", Attrs: []Attr{{Name: "year", Value: "1994"}}},
		{Kind: StartElement, Name: "title"},
		{Kind: Text, Text: "TCP/IP"},
		{Kind: EndElement, Name: "title"},
		{Kind: EndElement, Name: "book"},
		{Kind: EndElement, Name: "bib"},
	}
	if !reflect.DeepEqual(toks, want) {
		t.Fatalf("tokens mismatch:\n got %v\nwant %v", toks, want)
	}
}

func TestSelfClosingProducesTwoTokens(t *testing.T) {
	// The paper counts <title/> as two tags (82 tags for 41 nodes).
	toks := drain(t, NewTokenizer(strings.NewReader(`<a><b/><c x="1"/></a>`)))
	want := []Token{
		{Kind: StartElement, Name: "a"},
		{Kind: StartElement, Name: "b"},
		{Kind: EndElement, Name: "b"},
		{Kind: StartElement, Name: "c", Attrs: []Attr{{Name: "x", Value: "1"}}},
		{Kind: EndElement, Name: "c"},
		{Kind: EndElement, Name: "a"},
	}
	if !reflect.DeepEqual(toks, want) {
		t.Fatalf("tokens mismatch:\n got %v\nwant %v", toks, want)
	}
}

func TestPaperFig3TokenCount(t *testing.T) {
	// Fig. 3: bib with ten <t><author/><title/><price/></t> children is
	// "a total of 82 tags forming 41 document nodes".
	var b strings.Builder
	b.WriteString("<bib>")
	for i := 0; i < 10; i++ {
		b.WriteString("<book><author></author><title></title><price></price></book>")
	}
	b.WriteString("</bib>")
	tz := NewTokenizer(strings.NewReader(b.String()))
	toks := drain(t, tz)
	if len(toks) != 82 {
		t.Fatalf("got %d tokens, want 82", len(toks))
	}
	if tz.TokenCount() != 82 {
		t.Fatalf("TokenCount = %d, want 82", tz.TokenCount())
	}
	starts := 0
	for _, tok := range toks {
		if tok.Kind == StartElement {
			starts++
		}
	}
	if starts != 41 {
		t.Fatalf("got %d element nodes, want 41", starts)
	}
}

func TestWhitespaceHandling(t *testing.T) {
	const doc = "<a>\n  <b>x</b>\n</a>"
	toks := drain(t, NewTokenizer(strings.NewReader(doc)))
	for _, tok := range toks {
		if tok.Kind == Text && strings.TrimSpace(tok.Text) == "" {
			t.Fatalf("whitespace-only text not dropped: %q", tok.Text)
		}
	}
	tz := NewTokenizer(strings.NewReader(doc))
	tz.KeepWhitespace = true
	toks = drain(t, tz)
	found := false
	for _, tok := range toks {
		if tok.Kind == Text && strings.TrimSpace(tok.Text) == "" {
			found = true
		}
	}
	if !found {
		t.Fatal("KeepWhitespace did not preserve whitespace text")
	}
}

func TestEntitiesAndCDATA(t *testing.T) {
	const doc = `<a p="x&amp;y">1 &lt; 2 &#65;&#x42;<![CDATA[<raw>&amp;]]></a>`
	toks := drain(t, NewTokenizer(strings.NewReader(doc)))
	if len(toks) != 4 {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	if v, _ := toks[0].Attr("p"); v != "x&y" {
		t.Errorf("attr = %q, want x&y", v)
	}
	if toks[1].Text != "1 < 2 AB" {
		t.Errorf("text = %q", toks[1].Text)
	}
	if toks[2].Text != "<raw>&amp;" {
		t.Errorf("cdata = %q", toks[2].Text)
	}
}

// TestRepeatedPrefixTerminators: a CDATA section ending "]]]>" has
// content "x]" (its terminator overlaps its own prefix), and a comment
// ending "--->" is legal to skip; both need the KMP fallback in
// patAdvance rather than a reset-on-mismatch scan.
func TestRepeatedPrefixTerminators(t *testing.T) {
	const doc = `<a><![CDATA[x]]]><!-- dash ---></a>`
	toks := drain(t, NewTokenizer(strings.NewReader(doc)))
	if len(toks) != 3 {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	if toks[1].Text != "x]" {
		t.Errorf("cdata = %q, want \"x]\"", toks[1].Text)
	}
}

func TestSkippedConstructs(t *testing.T) {
	const doc = `<?xml version="1.0"?><!DOCTYPE a><!-- c --><a><!-- <b> --><?pi data?>x</a>`
	toks := drain(t, NewTokenizer(strings.NewReader(doc)))
	want := []Token{
		{Kind: StartElement, Name: "a"},
		{Kind: Text, Text: "x"},
		{Kind: EndElement, Name: "a"},
	}
	if !reflect.DeepEqual(toks, want) {
		t.Fatalf("tokens mismatch:\n got %v\nwant %v", toks, want)
	}
}

func TestPeek(t *testing.T) {
	tz := NewTokenizer(strings.NewReader("<a><b/></a>"))
	p1, err := tz.Peek()
	if err != nil {
		t.Fatal(err)
	}
	n1, err := tz.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, n1) {
		t.Fatalf("peek %v != next %v", p1, n1)
	}
	if tz.TokenCount() != 1 {
		t.Fatalf("TokenCount after one Next = %d", tz.TokenCount())
	}
}

func TestMalformedInputs(t *testing.T) {
	cases := []string{
		`<a><b></a></b>`,
		`<a>`,
		`<a></b>`,
		`text only`,
		`<a></a><b></b>`,
		`<a x=1></a>`,
		`<a>&unknown;</a>`,
		`<a x="unterminated></a>`,
	}
	for _, doc := range cases {
		tz := NewTokenizer(strings.NewReader(doc))
		var err error
		for err == nil {
			_, err = tz.Next()
		}
		if err == io.EOF {
			t.Errorf("input %q: expected syntax error, got clean EOF", doc)
		}
	}
}

func TestDepthTracking(t *testing.T) {
	tz := NewTokenizer(strings.NewReader("<a><b><c/></b></a>"))
	maxDepth := 0
	for {
		_, err := tz.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if tz.Depth() > maxDepth {
			maxDepth = tz.Depth()
		}
	}
	if maxDepth != 3 {
		t.Fatalf("max depth = %d, want 3", maxDepth)
	}
	if tz.Depth() != 0 {
		t.Fatalf("final depth = %d, want 0", tz.Depth())
	}
}

// genDoc emits a random well-formed document for round-trip testing.
func genDoc(r *rand.Rand, depth int, b *strings.Builder) {
	names := []string{"a", "bb", "ccc", "item", "x-y"}
	name := names[r.Intn(len(names))]
	b.WriteString("<" + name)
	for i := r.Intn(3); i > 0; i-- {
		b.WriteString(` at` + string(rune('a'+r.Intn(3))) + `="v&amp;` + string(rune('0'+r.Intn(10))) + `"`)
	}
	b.WriteString(">")
	for i := r.Intn(4); i > 0 && depth < 5; i-- {
		if r.Intn(2) == 0 {
			genDoc(r, depth+1, b)
		} else {
			b.WriteString("t" + string(rune('0'+r.Intn(10))) + "&lt;x")
		}
	}
	b.WriteString("</" + name + ">")
}

// TestRoundTripQuick: tokenize → serialize → tokenize yields identical
// token streams (property-based).
func TestRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var b strings.Builder
		genDoc(r, 0, &b)
		doc := b.String()

		tz1 := NewTokenizer(strings.NewReader(doc))
		tz1.KeepWhitespace = true
		var toks1 []Token
		var out bytes.Buffer
		ser := NewSerializer(&out)
		for {
			tok, err := tz1.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Logf("doc %q: %v", doc, err)
				return false
			}
			toks1 = append(toks1, tok)
			ser.Token(tok)
		}
		if err := ser.Flush(); err != nil {
			return false
		}
		tz2 := NewTokenizer(bytes.NewReader(out.Bytes()))
		tz2.KeepWhitespace = true
		var toks2 []Token
		for {
			tok, err := tz2.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Logf("reserialized %q: %v", out.String(), err)
				return false
			}
			toks2 = append(toks2, tok)
		}
		if !reflect.DeepEqual(toks1, toks2) {
			t.Logf("round trip mismatch for %q", doc)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSerializerEscaping(t *testing.T) {
	var out bytes.Buffer
	s := NewSerializer(&out)
	s.StartElement("a", []Attr{{Name: "q", Value: `<"&>`}})
	s.Text(`a<b>&c`)
	s.EndElement("a")
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	want := `<a q="&lt;&quot;&amp;&gt;">a&lt;b&gt;&amp;c</a>`
	if out.String() != want {
		t.Fatalf("got %q want %q", out.String(), want)
	}
	if s.BytesWritten() != int64(len(want)) {
		t.Fatalf("BytesWritten = %d, want %d", s.BytesWritten(), len(want))
	}
}

func TestEscapeText(t *testing.T) {
	if got := EscapeText("a<b&c>d"); got != "a&lt;b&amp;c&gt;d" {
		t.Fatalf("EscapeText = %q", got)
	}
	if got := EscapeText("plain"); got != "plain" {
		t.Fatalf("EscapeText = %q", got)
	}
}
