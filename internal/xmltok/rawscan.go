package xmltok

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
)

// rawScanner is the shared low-level XML byte scanner behind the
// Splitter and Tokenizer.SkipSubtree. It understands just enough XML to
// advance correctly — tag bodies with attribute quoting, comment /
// CDATA / PI / declaration terminators (KMP-matched, so
// repeated-prefix terminators like "]]]>" work), element names — but
// materializes no tokens, resolves no entities, interns no names and
// decodes no text. That is what makes a raw scan ~4× faster than full
// tokenization over the same bytes (DESIGN.md §6, §7).
//
// It deliberately accepts a superset of the Tokenizer's dialect
// (attribute internals and entity references are not validated); users
// rely on one-sided parity only: the raw scan never rejects input the
// Tokenizer accepts, and on accepted input both advance over exactly
// the same bytes. FuzzSplitter and FuzzSkipSubtree pin this.
type rawScanner struct {
	r   *bufio.Reader
	off int64  // byte offset for error reporting
	tag []byte // scratch for tag bodies spanning buffer boundaries

	// ioErr records a non-EOF read error from the underlying reader, so
	// errf reports it as itself rather than masking an infrastructure
	// failure as a syntax error (mirrors Tokenizer.ioErr).
	ioErr error
}

func (rs *rawScanner) readByte() (byte, error) {
	b, err := rs.r.ReadByte()
	if err == nil {
		rs.off++
	} else if err != io.EOF && rs.ioErr == nil {
		rs.ioErr = err
	}
	return b, err
}

func (rs *rawScanner) unread() {
	_ = rs.r.UnreadByte()
	rs.off--
}

// throughPattern consumes input through the first occurrence of pat,
// appending opening plus the consumed bytes to *capture when capture is
// non-nil.
func (rs *rawScanner) throughPattern(pat, opening string, capture *[]byte) error {
	if capture != nil {
		*capture = append(*capture, opening...)
	}
	matched := 0
	for matched < len(pat) {
		b, err := rs.readByte()
		if err != nil {
			return rs.errf("unexpected end of input looking for %q", pat)
		}
		if capture != nil {
			*capture = append(*capture, b)
		}
		matched = patAdvance(pat, matched, b)
	}
	return nil
}

// bang handles "<!..." constructs after "<!" has been consumed,
// mirroring the Tokenizer: comments, CDATA sections, DOCTYPE-style
// declarations. Consumed bytes (with their markup openings) are
// appended to *capture when non-nil.
func (rs *rawScanner) bang(capture *[]byte) error {
	b, err := rs.readByte()
	if err != nil {
		return rs.errf("unexpected end of input after '<!'")
	}
	switch b {
	case '-':
		b2, err := rs.readByte()
		if err != nil || b2 != '-' {
			return rs.errf("malformed comment")
		}
		return rs.throughPattern("-->", "<!--", capture)
	case '[':
		const open = "CDATA["
		for i := 0; i < len(open); i++ {
			b2, err := rs.readByte()
			if err != nil || b2 != open[i] {
				return rs.errf("malformed CDATA section")
			}
		}
		return rs.throughPattern("]]>", "<![CDATA[", capture)
	default:
		rs.unread()
		return rs.throughPattern(">", "<!", capture)
	}
}

// readTagBody returns the bytes between '<' (already consumed, along
// with any '/' marker handled by the caller) and the matching unquoted
// '>', excluding the terminator. In the common case — the whole tag is
// buffered and carries no quoted '>' — the returned slice aliases the
// reader's buffer and is valid only until the next read; tags spanning
// buffer boundaries fall back to the rs.tag scratch.
func (rs *rawScanner) readTagBody() ([]byte, error) {
	var quote byte
	first := true
	for {
		data, err := rs.r.ReadSlice('>')
		rs.off += int64(len(data))
		switch err {
		case nil:
			body := data[:len(data)-1]
			quote = scanQuotes(quote, body)
			if quote == 0 {
				if first {
					return body, nil
				}
				rs.tag = append(rs.tag, body...)
				return rs.tag, nil
			}
			// the '>' was inside an attribute value: keep it, continue
			if first {
				rs.tag, first = rs.tag[:0], false
			}
			rs.tag = append(rs.tag, body...)
			rs.tag = append(rs.tag, '>')
		case bufio.ErrBufferFull:
			quote = scanQuotes(quote, data)
			if first {
				rs.tag, first = rs.tag[:0], false
			}
			rs.tag = append(rs.tag, data...)
		default:
			if err != io.EOF && rs.ioErr == nil {
				rs.ioErr = err
			}
			return nil, rs.errf("unexpected end of input in tag")
		}
	}
}

// scanQuotes advances the attribute-quoting state across b. Short
// bodies (nearly every tag) use a plain loop; long ones amortize the
// vectorized IndexByte.
func scanQuotes(quote byte, b []byte) byte {
	if len(b) <= 64 {
		for _, c := range b {
			switch {
			case quote == 0 && (c == '"' || c == '\''):
				quote = c
			case c == quote:
				quote = 0
			}
		}
		return quote
	}
	for len(b) > 0 {
		if quote == 0 {
			i := bytes.IndexByte(b, '"')
			j := bytes.IndexByte(b, '\'')
			if i < 0 {
				i = j
			} else if j >= 0 && j < i {
				i = j
			}
			if i < 0 {
				return 0
			}
			quote = b[i]
			b = b[i+1:]
		} else {
			i := bytes.IndexByte(b, quote)
			if i < 0 {
				return quote
			}
			quote = 0
			b = b[i+1:]
		}
	}
	return quote
}

// tagName parses the leading element name of a tag body.
func (rs *rawScanner) tagName(body []byte) ([]byte, error) {
	i := 0
	for i < len(body) && isNameByte(body[i], i == 0) {
		i++
	}
	if i == 0 {
		return nil, rs.errf("expected name")
	}
	return body[:i], nil
}

func (rs *rawScanner) errf(format string, args ...any) error {
	if rs.ioErr != nil {
		return fmt.Errorf("xmltok: read error at byte %d: %w", rs.off, rs.ioErr)
	}
	return &SyntaxError{Offset: rs.off, Msg: fmt.Sprintf(format, args...)}
}
