package xmltok

import (
	"bytes"
	"fmt"

	"gcx/internal/cursor"
)

// rawScanner is the shared low-level XML byte scanner behind the
// Splitter and Tokenizer.SkipSubtree. It understands just enough XML to
// advance correctly — tag bodies with attribute quoting, comment /
// CDATA / PI / declaration terminators (KMP-matched, so
// repeated-prefix terminators like "]]]>" work), element names — but
// materializes no tokens, resolves no entities, interns no names and
// decodes no text. All advancing is window-oriented over the block
// cursor: structural bytes are found with vectorized bytes.IndexByte /
// bytes.Index scans, which is what pushes a raw scan past 1 GB/s
// (DESIGN.md §6, §7, §12).
//
// It deliberately accepts a superset of the Tokenizer's dialect
// (attribute internals and entity references are not validated); users
// rely on one-sided parity only: the raw scan never rejects input the
// Tokenizer accepts, and on accepted input both advance over exactly
// the same bytes. FuzzSplitter and FuzzSkipSubtree pin this.
type rawScanner struct {
	cur *cursor.Cursor
	tag []byte // scratch for tag bodies spanning window boundaries
}

// throughPattern consumes input through the first occurrence of pat,
// appending opening plus the consumed bytes to *capture when capture is
// non-nil.
func (rs *rawScanner) throughPattern(pat, opening string, capture *[]byte) error {
	if capture != nil {
		*capture = append(*capture, opening...)
	}
	if rs.cur.Fixed() {
		w := rs.cur.Window()
		i := indexPat(w, pat)
		if i < 0 {
			rs.cur.Advance(len(w))
			return rs.errf("unexpected end of input looking for %q", pat)
		}
		if capture != nil {
			*capture = append(*capture, w[:i+len(pat)]...)
		}
		rs.cur.Advance(i + len(pat))
		return nil
	}
	matched := 0
	for matched < len(pat) {
		if matched == 0 {
			if err := rs.cur.Fill(); err != nil {
				return rs.errf("unexpected end of input looking for %q", pat)
			}
			w := rs.cur.Window()
			i := bytes.IndexByte(w, pat[0])
			if i < 0 {
				if capture != nil {
					*capture = append(*capture, w...)
				}
				rs.cur.Advance(len(w))
				continue
			}
			if capture != nil {
				*capture = append(*capture, w[:i+1]...)
			}
			rs.cur.Advance(i + 1)
			matched = 1
			continue
		}
		b, err := rs.cur.Byte()
		if err != nil {
			return rs.errf("unexpected end of input looking for %q", pat)
		}
		if capture != nil {
			*capture = append(*capture, b)
		}
		matched = patAdvance(pat, matched, b)
	}
	return nil
}

// bang handles "<!..." constructs after "<!" has been consumed,
// mirroring the Tokenizer: comments, CDATA sections, DOCTYPE-style
// declarations. Consumed bytes (with their markup openings) are
// appended to *capture when non-nil.
func (rs *rawScanner) bang(capture *[]byte) error {
	b, err := rs.cur.Byte()
	if err != nil {
		return rs.errf("unexpected end of input after '<!'")
	}
	switch b {
	case '-':
		b2, err := rs.cur.Byte()
		if err != nil || b2 != '-' {
			return rs.errf("malformed comment")
		}
		return rs.throughPattern("-->", "<!--", capture)
	case '[':
		const open = "CDATA["
		for i := 0; i < len(open); i++ {
			b2, err := rs.cur.Byte()
			if err != nil || b2 != open[i] {
				return rs.errf("malformed CDATA section")
			}
		}
		return rs.throughPattern("]]>", "<![CDATA[", capture)
	default:
		rs.cur.Unread()
		return rs.throughPattern(">", "<!", capture)
	}
}

// readTagBody returns the bytes between '<' (already consumed, along
// with any '/' marker handled by the caller) and the matching unquoted
// '>', excluding the terminator. In the common case — the whole tag
// inside the current window with no quoted '>' — the returned slice
// aliases the window (valid until the next refill; on the []byte path,
// for the cursor's whole life); tags spanning window boundaries fall
// back to the rs.tag scratch.
func (rs *rawScanner) readTagBody() ([]byte, error) {
	var quote byte
	first := true
	for {
		if err := rs.cur.Fill(); err != nil {
			return nil, rs.errf("unexpected end of input in tag")
		}
		w := rs.cur.Window()
		start := 0
		for {
			i := bytes.IndexByte(w[start:], '>')
			if i < 0 {
				break
			}
			gt := start + i
			quote = scanQuotes(quote, w[start:gt])
			if quote == 0 {
				rs.cur.Advance(gt + 1)
				if first {
					return w[:gt], nil
				}
				rs.tag = append(rs.tag, w[:gt]...)
				return rs.tag, nil
			}
			// the '>' was inside an attribute value: keep it, continue
			start = gt + 1
		}
		quote = scanQuotes(quote, w[start:])
		if first {
			rs.tag, first = rs.tag[:0], false
		}
		rs.tag = append(rs.tag, w...)
		rs.cur.Advance(len(w))
	}
}

// scanQuotes advances the attribute-quoting state across b. Short
// bodies (nearly every tag) use a plain loop; long ones amortize the
// vectorized IndexByte.
func scanQuotes(quote byte, b []byte) byte {
	if len(b) <= 64 {
		for _, c := range b {
			switch {
			case quote == 0 && (c == '"' || c == '\''):
				quote = c
			case c == quote:
				quote = 0
			}
		}
		return quote
	}
	for len(b) > 0 {
		if quote == 0 {
			i := bytes.IndexByte(b, '"')
			j := bytes.IndexByte(b, '\'')
			if i < 0 {
				i = j
			} else if j >= 0 && j < i {
				i = j
			}
			if i < 0 {
				return 0
			}
			quote = b[i]
			b = b[i+1:]
		} else {
			i := bytes.IndexByte(b, quote)
			if i < 0 {
				return quote
			}
			quote = 0
			b = b[i+1:]
		}
	}
	return quote
}

// tagName parses the leading element name of a tag body.
func (rs *rawScanner) tagName(body []byte) ([]byte, error) {
	i := 0
	for i < len(body) && isNameByte(body[i], i == 0) {
		i++
	}
	if i == 0 {
		return nil, rs.errf("expected name")
	}
	return body[:i], nil
}

func (rs *rawScanner) errf(format string, args ...any) error {
	if ioErr := rs.cur.IOErr(); ioErr != nil {
		return fmt.Errorf("xmltok: read error at byte %d: %w", rs.cur.Offset(), ioErr)
	}
	return &SyntaxError{Offset: rs.cur.Offset(), Msg: fmt.Sprintf(format, args...)}
}
