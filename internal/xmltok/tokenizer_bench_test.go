package xmltok

import (
	"io"
	"strings"
	"testing"
)

// BenchmarkTokenizerWhitespace regression-benches the whitespace fast
// path of readText: heavily indented documents (the usual
// pretty-printed shape) spend a large share of their text tokens on
// whitespace-only runs that are dropped when KeepWhitespace is unset —
// those must never reach the entity machinery or allocate.
func BenchmarkTokenizerWhitespace(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<root>\n")
	for i := 0; i < 5000; i++ {
		sb.WriteString("  <entry>\n    <key>name</key>\n    <value>v&amp;v</value>\n  </entry>\n")
	}
	sb.WriteString("</root>\n")
	doc := sb.String()
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tz := NewTokenizer(strings.NewReader(doc))
		for {
			_, err := tz.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		tz.Release()
	}
}

// BenchmarkTokenizerWhitespaceEntities targets the worst historical
// case: whitespace-only text written as character references (&#32;
// &#10;), which used to be fully decoded through the allocating entity
// path before being dropped.
func BenchmarkTokenizerWhitespaceEntities(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<root>")
	for i := 0; i < 5000; i++ {
		sb.WriteString("&#32;&#9;&#10;<e/>")
	}
	sb.WriteString("</root>")
	doc := sb.String()
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tz := NewTokenizer(strings.NewReader(doc))
		for {
			_, err := tz.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		tz.Release()
	}
}

// BenchmarkSkipSubtree measures the raw fast-forward against full
// tokenization of the same subtree — the per-byte cost ratio that
// makes projection-guided skipping worthwhile (DESIGN.md §7).
func BenchmarkSkipSubtree(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<root><keep/>")
	sb.WriteString("<dead>")
	for i := 0; i < 4000; i++ {
		sb.WriteString(`<item id="i"><name>gold silver</name><description><text>a longer run of text that looks like xmark prose, with several words</text></description></item>`)
	}
	sb.WriteString("</dead></root>")
	doc := sb.String()
	b.SetBytes(int64(len(doc)))

	b.Run("skip", func(b *testing.B) {
		b.SetBytes(int64(len(doc)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tz := NewTokenizer(strings.NewReader(doc))
			for {
				tok, err := tz.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					b.Fatal(err)
				}
				if tok.Kind == StartElement && tok.Name == "dead" {
					if err := tz.SkipSubtree(); err != nil {
						b.Fatal(err)
					}
				}
			}
			tz.Release()
		}
	})
	b.Run("tokenize", func(b *testing.B) {
		b.SetBytes(int64(len(doc)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tz := NewTokenizer(strings.NewReader(doc))
			for {
				_, err := tz.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			tz.Release()
		}
	})
}
