package xmltok

import (
	"bytes"
	"context"
	"io"

	"gcx/internal/cursor"
)

// Splitter cuts an XML byte stream into self-contained chunks at the
// record boundaries of a fixed child-axis element path (the partition
// path of sharded execution, DESIGN.md §6). It scans the input exactly
// once at the byte level — tracking element nesting and quoting via the
// shared rawScanner, but never materializing tokens — and copies the
// raw bytes of every record subtree into the current chunk. A chunk is
// a well-formed mini-document: the records verbatim, re-wrapped with
// synthesized open/close tags for the ancestor chain of the partition
// path, so a downstream Tokenizer sees the same element structure (and
// the same record tokens, byte for byte) as in the original document.
//
// Chunks are sealed when they reach the byte target, when an ancestor
// of the records closes (records under different ancestors never share
// a chunk, which keeps wildcard partition paths correct), and at end of
// input. Content outside record subtrees — ancestor attributes, text
// between records, unrelated sibling subtrees — is skipped; the
// shardability analysis guarantees the query cannot observe it.
type Splitter struct {
	rawScanner
	path   []SplitStep
	ctx    context.Context
	target int

	// Open-element stack, names stored back to back to avoid per-tag
	// allocations.
	nameBuf []byte
	nameLen []int

	// matchDepth is the number of leading stack levels matching the
	// partition path (contiguous from the root).
	matchDepth int
	// capturing is true while inside a record subtree.
	capturing bool

	// Aux capture (join sharding, DESIGN.md §10): subtrees matching
	// auxPath are copied verbatim into aux on the same scanning pass,
	// available as one broadcast fragment after the scan. auxDivergence
	// is the first step index where auxPath departs from path; seal
	// leaves ancestors above it unclosed so the caller can append the
	// fragment inside the shared ancestor element.
	auxPath       []SplitStep
	auxDivergence int
	auxDepth      int
	auxCapturing  bool
	aux           []byte

	// Current chunk: buf starts with the synthesized ancestor open tags,
	// then accumulates record bytes. anc are the ancestor names for the
	// closing tags.
	buf     []byte
	records int
	anc     []string
	seq     int
	ready   *Chunk

	rootSeen bool
	done     bool
}

// SplitStep is one child-axis element test of a partition path.
type SplitStep struct {
	// Name is the element name to match; ignored when Wildcard is set.
	Name string
	// Wildcard matches any element (the child::* step).
	Wildcard bool
}

// Chunk is one self-contained slice of the input document.
type Chunk struct {
	// Seq is the chunk's position in input order (0-based); the merge
	// serializer emits chunk outputs in Seq order.
	Seq int
	// Records is the number of record subtrees in the chunk.
	Records int
	// Data is the chunk document: synthesized ancestor open tags, the
	// record bytes verbatim, synthesized close tags.
	Data []byte
}

// DefaultChunkTarget is the default chunk size target in bytes. Chunks
// seal at the first record boundary at or past the target — small
// enough that typical record sections split into several chunks per
// worker (load balancing), large enough to amortize per-chunk engine
// setup over hundreds of records.
const DefaultChunkTarget = 64 << 10

// NewSplitter returns a Splitter reading from r, cutting records at
// path. The path must be non-empty; records sit at depth len(path).
func NewSplitter(r io.Reader, path []SplitStep) *Splitter {
	if len(path) == 0 {
		panic("xmltok: NewSplitter requires a non-empty partition path")
	}
	return &Splitter{
		rawScanner: rawScanner{cur: cursor.NewReader(r, cursor.DefaultSize)},
		path:       path,
		target:     DefaultChunkTarget,
	}
}

// NewSplitterBytes returns a Splitter scanning data in place: windows
// are served directly from the slice, so tag scanning never copies
// input into the refill buffer. Chunk documents are still built by
// copying record bytes (chunks are re-wrapped mini-documents consumed
// concurrently by workers), but the scan itself is zero-copy.
func NewSplitterBytes(data []byte, path []SplitStep) *Splitter {
	if len(path) == 0 {
		panic("xmltok: NewSplitterBytes requires a non-empty partition path")
	}
	return &Splitter{
		rawScanner: rawScanner{cur: cursor.NewBytes(data)},
		path:       path,
		target:     DefaultChunkTarget,
	}
}

// SetContext attaches a cancellation context, checked between scan
// steps so a split aborts promptly when the caller gives up.
func (s *Splitter) SetContext(ctx context.Context) { s.ctx = ctx }

// SetTargetBytes overrides the chunk size target (0 keeps the default).
func (s *Splitter) SetTargetBytes(n int) {
	if n > 0 {
		s.target = n
	}
}

// CaptureAux additionally captures the raw bytes of every subtree
// matching aux — a second record path, disjoint from the partition path
// from step divergence on — into a side buffer (AuxData). Chunks then
// keep their ancestors above divergence unclosed: the caller appends
// the aux fragment, re-wrapped with the missing tags, to every chunk
// document (join sharding's build-side broadcast, DESIGN.md §10).
// Must be called before the first Next.
func (s *Splitter) CaptureAux(aux []SplitStep, divergence int) {
	if len(aux) == 0 || divergence < 1 || divergence >= len(aux) {
		panic("xmltok: CaptureAux needs a non-empty aux path diverging below the root")
	}
	s.auxPath = aux
	s.auxDivergence = divergence
}

// AuxData returns the captured aux subtree bytes. Complete only after
// Next has returned io.EOF: aux subtrees may follow the last record in
// document order.
func (s *Splitter) AuxData() []byte { return s.aux }

// Next returns the next chunk of the stream in input order. At end of
// input it returns io.EOF; malformed nesting is reported as a
// SyntaxError just as the Tokenizer would.
func (s *Splitter) Next() (Chunk, error) {
	for {
		if s.ready != nil {
			c := *s.ready
			s.ready = nil
			return c, nil
		}
		if s.done {
			return Chunk{}, io.EOF
		}
		if s.ctx != nil {
			if err := s.ctx.Err(); err != nil {
				return Chunk{}, err
			}
		}
		if err := s.scan(); err != nil {
			return Chunk{}, err
		}
	}
}

func (s *Splitter) depth() int { return len(s.nameLen) }

// scan consumes character data up to the next markup construct, then
// the construct itself. Character data advances by whole-window
// vectorized scans for '<'.
func (s *Splitter) scan() error {
	for {
		err := s.cur.Fill()
		if err == io.EOF {
			return s.finish()
		}
		if err != nil {
			// errf reports a pending read error as itself.
			return s.errf("read error")
		}
		w := s.cur.Window()
		i := bytes.IndexByte(w, '<')
		if i < 0 {
			if terr := s.text(w); terr != nil {
				return terr
			}
			s.cur.Advance(len(w))
			continue
		}
		if terr := s.text(w[:i]); terr != nil {
			return terr
		}
		s.cur.Advance(i + 1)
		return s.markup()
	}
}

// text handles character data: copied verbatim inside records, dropped
// between them, rejected outside the document element.
func (s *Splitter) text(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	if s.capturing {
		s.buf = append(s.buf, b...)
		return nil
	}
	if s.auxCapturing {
		s.aux = append(s.aux, b...)
		return nil
	}
	if s.depth() == 0 && !resolvesToWhitespace(b) {
		if s.rootSeen {
			return s.errf("content after document element")
		}
		return s.errf("character data outside document element")
	}
	return nil
}

func allWhitespace(b []byte) bool {
	for _, c := range b {
		if c != ' ' && c != '\t' && c != '\n' && c != '\r' {
			return false
		}
	}
	return true
}

// resolvesToWhitespace reports whether character data is whitespace-only
// after entity resolution. The tokenizer resolves references before its
// whitespace test, so text like "&#32;" outside the document element is
// accepted there; the splitter must agree (FuzzSplitter parity). The
// entity grammar mirrors the tokenizer's: ';'-terminated, at most 12
// name bytes.
func resolvesToWhitespace(b []byte) bool {
	for i := 0; i < len(b); {
		switch c := b[i]; {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '&':
			j := i + 1
			for j < len(b) && b[j] != ';' {
				j++
			}
			if j >= len(b) || j-i-1 > 12 {
				return false
			}
			r, ok := resolveEntity(string(b[i+1 : j]))
			if !ok || !allWhitespace([]byte(r)) {
				return false
			}
			i = j + 1
		default:
			return false
		}
	}
	return true
}

// markup dispatches on the construct following '<'.
func (s *Splitter) markup() error {
	b, err := s.cur.Byte()
	if err != nil {
		return s.errf("unexpected end of input in markup")
	}
	switch b {
	case '?':
		return s.throughPattern("?>", "<?", s.capture())
	case '!':
		return s.bang(s.capture())
	case '/':
		return s.endTag()
	default:
		s.cur.Unread()
		return s.startTag()
	}
}

// capture returns the chunk buffer as the raw scanner's copy target
// while inside a record, the aux buffer inside an aux subtree, nil
// elsewhere.
func (s *Splitter) capture() *[]byte {
	if s.capturing {
		return &s.buf
	}
	if s.auxCapturing {
		return &s.aux
	}
	return nil
}

func (s *Splitter) endTag() error {
	body, err := s.readTagBody()
	if err != nil {
		return err
	}
	name, err := s.tagName(body)
	if err != nil {
		return err
	}
	if len(name) != len(body) && !allWhitespace(body[len(name):]) {
		return s.errf("malformed end tag </%s", name)
	}
	d := s.depth()
	if d == 0 {
		return s.errf("unexpected </%s> with no open element", name)
	}
	top := s.top()
	if string(top) != string(name) {
		return s.errf("mismatched </%s>, expected </%s>", name, top)
	}
	if s.capturing {
		s.buf = append(s.buf, '<', '/')
		s.buf = append(s.buf, body...)
		s.buf = append(s.buf, '>')
		if d == len(s.path) { // record root closed
			s.capturing = false
			s.sealIfFull()
		}
	} else if s.auxCapturing {
		s.aux = append(s.aux, '<', '/')
		s.aux = append(s.aux, body...)
		s.aux = append(s.aux, '>')
		if d == len(s.auxPath) { // aux subtree root closed
			s.auxCapturing = false
		}
	} else if d < len(s.path) && s.records > 0 {
		// an ancestor of the open chunk's records closed
		s.seal()
	}
	s.pop()
	if s.matchDepth > s.depth() {
		s.matchDepth = s.depth()
	}
	if s.auxDepth > s.depth() {
		s.auxDepth = s.depth()
	}
	if s.depth() == 0 {
		s.rootSeen = true
	}
	return nil
}

func (s *Splitter) startTag() error {
	if s.depth() == 0 && s.rootSeen {
		return s.errf("content after document element")
	}
	body, err := s.readTagBody()
	if err != nil {
		return err
	}
	selfClose := len(body) > 0 && body[len(body)-1] == '/'
	nameSrc := body
	if selfClose {
		nameSrc = body[:len(body)-1]
	}
	name, err := s.tagName(nameSrc)
	if err != nil {
		return err
	}
	d := s.depth()
	matched := !s.capturing && !s.auxCapturing && d == s.matchDepth && d < len(s.path) && s.stepMatches(d, name)
	isRecord := matched && d+1 == len(s.path)
	auxMatched := s.auxPath != nil && !s.capturing && !s.auxCapturing &&
		d == s.auxDepth && d < len(s.auxPath) && s.auxStepMatches(d, name)
	isAux := auxMatched && d+1 == len(s.auxPath)
	if isRecord {
		s.beginChunkIfNeeded()
		s.records++
	}
	if s.capturing || isRecord {
		s.buf = append(s.buf, '<')
		s.buf = append(s.buf, body...)
		s.buf = append(s.buf, '>')
	}
	if s.auxCapturing || isAux {
		s.aux = append(s.aux, '<')
		s.aux = append(s.aux, body...)
		s.aux = append(s.aux, '>')
	}
	if selfClose {
		if isRecord {
			s.sealIfFull()
		}
		if d == 0 {
			s.rootSeen = true
		}
		return nil
	}
	s.push(name)
	if matched {
		s.matchDepth = d + 1
	}
	if auxMatched {
		s.auxDepth = d + 1
	}
	if isRecord {
		s.capturing = true
	}
	if isAux {
		s.auxCapturing = true
	}
	return nil
}

func (s *Splitter) auxStepMatches(d int, name []byte) bool {
	step := s.auxPath[d]
	return step.Wildcard || step.Name == string(name)
}

func (s *Splitter) stepMatches(d int, name []byte) bool {
	step := s.path[d]
	return step.Wildcard || step.Name == string(name)
}

// beginChunkIfNeeded starts a chunk at the first record: it snapshots
// the ancestor chain and writes its synthesized open tags.
func (s *Splitter) beginChunkIfNeeded() {
	if s.records > 0 {
		return // same chunk, same ancestors (seal() fires on ancestor close)
	}
	s.anc = s.anc[:0]
	pos := 0
	for _, n := range s.nameLen {
		s.anc = append(s.anc, string(s.nameBuf[pos:pos+n]))
		pos += n
	}
	if s.buf == nil {
		s.buf = make([]byte, 0, s.target+4096)
	}
	for _, name := range s.anc {
		s.buf = append(s.buf, '<')
		s.buf = append(s.buf, name...)
		s.buf = append(s.buf, '>')
	}
}

func (s *Splitter) sealIfFull() {
	if len(s.buf) >= s.target {
		s.seal()
	}
}

// seal closes the current chunk: append the ancestor close tags and
// hand the buffer off as the next ready chunk. With aux capture active
// the ancestors above the divergence stay open — the executor appends
// the aux fragment (which closes them) to every chunk.
func (s *Splitter) seal() {
	stop := 0
	if s.auxPath != nil {
		stop = s.auxDivergence
	}
	for i := len(s.anc) - 1; i >= stop; i-- {
		s.buf = append(s.buf, '<', '/')
		s.buf = append(s.buf, s.anc[i]...)
		s.buf = append(s.buf, '>')
	}
	s.ready = &Chunk{Seq: s.seq, Records: s.records, Data: s.buf}
	s.seq++
	s.buf = nil
	s.records = 0
}

// finish handles end of input.
func (s *Splitter) finish() error {
	if d := s.depth(); d > 0 {
		return s.errf("unexpected end of input inside <%s>", s.top())
	}
	s.done = true
	if s.records > 0 {
		s.seal()
	}
	return nil
}

func (s *Splitter) push(name []byte) {
	s.nameBuf = append(s.nameBuf, name...)
	s.nameLen = append(s.nameLen, len(name))
}

func (s *Splitter) top() []byte {
	n := s.nameLen[len(s.nameLen)-1]
	return s.nameBuf[len(s.nameBuf)-n:]
}

func (s *Splitter) pop() {
	n := s.nameLen[len(s.nameLen)-1]
	s.nameBuf = s.nameBuf[:len(s.nameBuf)-n]
	s.nameLen = s.nameLen[:len(s.nameLen)-1]
}
