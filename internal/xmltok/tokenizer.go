package xmltok

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"sync"
)

// Tokenizer reads an XML byte stream and produces Tokens one at a time.
//
// The zero value is not usable; construct with NewTokenizer. The
// tokenizer validates well-formedness of the element nesting (tag-name
// balance) as it goes, so downstream components may assume that an
// EndElement always matches the innermost open StartElement.
type Tokenizer struct {
	r   *bufio.Reader
	off int64 // byte offset for error reporting

	// stack of currently open element names.
	stack []string
	// names interns element and attribute names so that repeated tags in
	// large documents share one string allocation.
	names map[string]string

	// pending holds a synthesized token (the EndElement of a self-closing
	// tag) to be returned by the next call to Next.
	pending *Token
	peeked  *Token

	// ioErr records a non-EOF read error from the underlying reader, so
	// it is reported as itself rather than masked as a syntax error.
	ioErr error

	// ctx, when non-nil, is checked at every token pull; Next returns
	// ctx.Err() as soon as the context is cancelled, so a streaming run
	// aborts within one token of cancellation. ctxDone caches ctx.Done()
	// so the per-token check is a lock-free channel poll rather than a
	// mutex-guarded ctx.Err() call.
	ctx     context.Context
	ctxDone <-chan struct{}

	// KeepWhitespace controls whether whitespace-only text nodes are
	// reported. Data-oriented processing (the default) drops them; the
	// round-trip property tests keep them.
	KeepWhitespace bool

	count    int64
	depth    int
	started  bool
	done     bool
	released bool

	textBuf []byte

	// SkipSubtree counters and scratch (skip.go).
	bytesSkipped    int64
	tagsSkipped     int64
	subtreesSkipped int64
	skipTag         []byte
	skipNameBuf     []byte
	skipNameLen     []int
}

// tokenizerPool recycles Tokenizers — each carries a 64 KiB bufio
// buffer, a name-interning map and a text scratch buffer, which dominate
// the per-execution allocation cost of short queries over hot streams.
var tokenizerPool = sync.Pool{
	New: func() any {
		return &Tokenizer{
			r:     bufio.NewReaderSize(eofReader{}, 64<<10),
			names: make(map[string]string, 64),
		}
	},
}

// eofReader is the parked input of a pooled tokenizer, so a released
// tokenizer holds no reference to its caller's reader.
type eofReader struct{}

func (eofReader) Read([]byte) (int, error) { return 0, io.EOF }

// maxInternedNames bounds the interning map carried across pooled
// reuses; beyond it the map is cleared on the next NewTokenizer.
const maxInternedNames = 4096

// NewTokenizer returns a Tokenizer reading from r. Tokenizers come from
// an internal pool; callers that finish with one may hand its buffers
// back via Release.
func NewTokenizer(r io.Reader) *Tokenizer {
	t := tokenizerPool.Get().(*Tokenizer)
	t.r.Reset(r)
	t.off = 0
	t.stack = t.stack[:0]
	if len(t.names) > maxInternedNames {
		clear(t.names)
	}
	t.pending = nil
	t.peeked = nil
	t.ioErr = nil
	t.ctx = nil
	t.ctxDone = nil
	t.KeepWhitespace = false
	t.count = 0
	t.depth = 0
	t.started = false
	t.done = false
	t.released = false
	t.textBuf = t.textBuf[:0]
	t.bytesSkipped = 0
	t.tagsSkipped = 0
	t.subtreesSkipped = 0
	return t
}

// SetContext attaches a cancellation context. Next fails with ctx.Err()
// at the first token pull after cancellation.
func (t *Tokenizer) SetContext(ctx context.Context) {
	t.ctx = ctx
	t.ctxDone = nil
	if ctx != nil {
		t.ctxDone = ctx.Done()
	}
}

// Release returns the tokenizer's buffers to the pool. The tokenizer
// must not be used afterwards; counters read before Release stay valid.
// Release is idempotent.
func (t *Tokenizer) Release() {
	if t.released {
		return
	}
	t.released = true
	t.r.Reset(eofReader{})
	t.ctx = nil
	t.ctxDone = nil
	t.pending = nil
	t.peeked = nil
	tokenizerPool.Put(t)
}

// TokenCount reports how many tokens have been delivered so far. This is
// the x-axis of the paper's buffer plots ("number of tokens processed").
func (t *Tokenizer) TokenCount() int64 { return t.count }

// Depth reports the current element nesting depth (number of open tags).
func (t *Tokenizer) Depth() int { return t.depth }

// Peek returns the next token without consuming it. The returned token is
// only valid until the following call to Next.
func (t *Tokenizer) Peek() (Token, error) {
	if t.peeked == nil {
		tok, err := t.read()
		if err != nil {
			return Token{}, err
		}
		t.peeked = &tok
	}
	return *t.peeked, nil
}

// Next returns the next token of the stream. At end of input it returns
// io.EOF; if the input ends with unclosed elements, a SyntaxError is
// returned instead. If a context was attached with SetContext and has
// been cancelled, Next returns the context's error without reading.
func (t *Tokenizer) Next() (Token, error) {
	if t.ctxDone != nil {
		select {
		case <-t.ctxDone:
			return Token{}, t.ctx.Err()
		default:
		}
	}
	var tok Token
	var err error
	if t.peeked != nil {
		tok, t.peeked = *t.peeked, nil
	} else {
		tok, err = t.read()
		if err != nil {
			return Token{}, err
		}
	}
	t.count++
	switch tok.Kind {
	case StartElement:
		t.depth++
	case EndElement:
		t.depth--
	}
	return tok, nil
}

// read produces the next raw token, maintaining the open-element stack.
func (t *Tokenizer) read() (Token, error) {
	if t.pending != nil {
		tok := *t.pending
		t.pending = nil
		t.stack = t.stack[:len(t.stack)-1]
		if len(t.stack) == 0 {
			// a self-closing element completed the document element
			t.started = true
		}
		return tok, nil
	}
	if t.done {
		return Token{}, io.EOF
	}
	for {
		b, err := t.readByte()
		if err == io.EOF {
			if len(t.stack) > 0 {
				return Token{}, t.errf("unexpected end of input inside <%s>", t.stack[len(t.stack)-1])
			}
			t.done = true
			return Token{}, io.EOF
		}
		if err != nil {
			return Token{}, err
		}
		if b == '<' {
			tok, skip, err := t.readMarkup()
			if err != nil {
				return Token{}, err
			}
			if skip {
				continue
			}
			return tok, nil
		}
		// Character data up to the next '<'.
		tok, keep, err := t.readText(b)
		if err != nil {
			return Token{}, err
		}
		if keep {
			return tok, nil
		}
	}
}

// readMarkup parses markup following '<'. skip is true for ignorable
// constructs (comments, PIs, declarations).
func (t *Tokenizer) readMarkup() (tok Token, skip bool, err error) {
	b, err := t.readByte()
	if err != nil {
		return Token{}, false, t.errf("unexpected end of input in markup")
	}
	switch b {
	case '?':
		return Token{}, true, t.skipUntil("?>")
	case '!':
		return t.readBang()
	case '/':
		return t.readEndTag()
	default:
		t.unread()
		return t.readStartTag()
	}
}

// readBang handles "<!..." constructs: comments, CDATA, DOCTYPE.
func (t *Tokenizer) readBang() (Token, bool, error) {
	b, err := t.readByte()
	if err != nil {
		return Token{}, false, t.errf("unexpected end of input after '<!'")
	}
	switch b {
	case '-':
		if b2, err := t.readByte(); err != nil || b2 != '-' {
			return Token{}, false, t.errf("malformed comment")
		}
		return Token{}, true, t.skipUntil("-->")
	case '[':
		// CDATA section: <![CDATA[ ... ]]>
		const open = "CDATA["
		for i := 0; i < len(open); i++ {
			b2, err := t.readByte()
			if err != nil || b2 != open[i] {
				return Token{}, false, t.errf("malformed CDATA section")
			}
		}
		text, err := t.readUntil("]]>")
		if err != nil {
			return Token{}, false, err
		}
		if len(t.stack) == 0 {
			return Token{}, true, nil // CDATA outside root: ignore
		}
		return Token{Kind: Text, Text: text}, false, nil
	default:
		// DOCTYPE or other declaration: skip to matching '>'. Internal
		// subsets with nested brackets are not supported (XMark-class
		// documents do not use them).
		t.unread()
		return Token{}, true, t.skipUntil(">")
	}
}

func (t *Tokenizer) readEndTag() (Token, bool, error) {
	name, err := t.readName()
	if err != nil {
		return Token{}, false, err
	}
	t.skipSpace()
	b, err := t.readByte()
	if err != nil || b != '>' {
		return Token{}, false, t.errf("malformed end tag </%s", name)
	}
	if len(t.stack) == 0 {
		return Token{}, false, t.errf("unexpected </%s> with no open element", name)
	}
	top := t.stack[len(t.stack)-1]
	if top != name {
		return Token{}, false, t.errf("mismatched </%s>, expected </%s>", name, top)
	}
	t.stack = t.stack[:len(t.stack)-1]
	if len(t.stack) == 0 {
		t.started = true
	}
	return Token{Kind: EndElement, Name: name}, false, nil
}

func (t *Tokenizer) readStartTag() (Token, bool, error) {
	if t.started && len(t.stack) == 0 {
		return Token{}, false, t.errf("content after document element")
	}
	name, err := t.readName()
	if err != nil {
		return Token{}, false, err
	}
	var attrs []Attr
	for {
		t.skipSpace()
		b, err := t.readByte()
		if err != nil {
			return Token{}, false, t.errf("unexpected end of input in <%s>", name)
		}
		switch b {
		case '>':
			t.stack = append(t.stack, name)
			return Token{Kind: StartElement, Name: name, Attrs: attrs}, false, nil
		case '/':
			b2, err := t.readByte()
			if err != nil || b2 != '>' {
				return Token{}, false, t.errf("malformed self-closing tag <%s", name)
			}
			t.stack = append(t.stack, name)
			t.pending = &Token{Kind: EndElement, Name: name}
			return Token{Kind: StartElement, Name: name, Attrs: attrs}, false, nil
		default:
			t.unread()
			a, err := t.readAttr(name)
			if err != nil {
				return Token{}, false, err
			}
			attrs = append(attrs, a)
		}
	}
}

func (t *Tokenizer) readAttr(elem string) (Attr, error) {
	name, err := t.readName()
	if err != nil {
		return Attr{}, t.errf("malformed attribute in <%s>", elem)
	}
	t.skipSpace()
	b, err := t.readByte()
	if err != nil || b != '=' {
		return Attr{}, t.errf("attribute %s in <%s> missing '='", name, elem)
	}
	t.skipSpace()
	q, err := t.readByte()
	if err != nil || (q != '"' && q != '\'') {
		return Attr{}, t.errf("attribute %s in <%s> missing quote", name, elem)
	}
	t.textBuf = t.textBuf[:0]
	for {
		b, err := t.readByte()
		if err != nil {
			return Attr{}, t.errf("unterminated attribute value for %s", name)
		}
		if b == q {
			break
		}
		if b == '&' {
			r, err := t.readEntity()
			if err != nil {
				return Attr{}, err
			}
			t.textBuf = append(t.textBuf, r...)
			continue
		}
		t.textBuf = append(t.textBuf, b)
	}
	return Attr{Name: name, Value: string(t.textBuf)}, nil
}

// isWSByte reports whether b is literal XML whitespace.
func isWSByte(b byte) bool {
	return b == ' ' || b == '\t' || b == '\n' || b == '\r'
}

// readText accumulates character data starting with first, up to (not
// including) the next '<'. keep is false when the text is whitespace-only
// and KeepWhitespace is unset, or when it occurs outside the document
// element.
func (t *Tokenizer) readText(first byte) (Token, bool, error) {
	t.textBuf = t.textBuf[:0]
	ws := true
	cur := first
	// Fast path: a leading run of literal whitespace — the dominant
	// text shape in indented documents. A tight byte loop with no
	// entity machinery; when the run ends at markup or EOF the text is
	// all-whitespace and (with KeepWhitespace unset) is dropped before
	// any decoding or token construction.
	for isWSByte(cur) {
		t.textBuf = append(t.textBuf, cur)
		b, err := t.readByte()
		if err == io.EOF {
			return t.textToken(true)
		}
		if err != nil {
			return Token{}, false, err
		}
		if b == '<' {
			t.unread()
			return t.textToken(true)
		}
		cur = b
	}
	// General path: mixed content and entity references.
	for {
		if cur == '&' {
			r, err := t.readEntity()
			if err != nil {
				return Token{}, false, err
			}
			for i := 0; i < len(r); i++ {
				if ws && !isWSByte(r[i]) {
					ws = false
				}
				t.textBuf = append(t.textBuf, r[i])
			}
		} else {
			if ws && !isWSByte(cur) {
				ws = false
			}
			t.textBuf = append(t.textBuf, cur)
		}
		b, err := t.readByte()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Token{}, false, err
		}
		if b == '<' {
			t.unread()
			break
		}
		cur = b
	}
	return t.textToken(ws)
}

// textToken finalizes accumulated character data: whitespace-only text
// is dropped (unless KeepWhitespace), text outside the document element
// is rejected, everything else becomes a Text token.
func (t *Tokenizer) textToken(ws bool) (Token, bool, error) {
	if len(t.stack) == 0 {
		if ws {
			return Token{}, false, nil
		}
		return Token{}, false, t.errf("character data outside document element")
	}
	if ws && !t.KeepWhitespace {
		return Token{}, false, nil
	}
	return Token{Kind: Text, Text: string(t.textBuf)}, true, nil
}

// readEntity resolves an entity reference after '&' has been consumed.
// The reference name is collected into a fixed scratch and resolved
// without intermediate allocations (built-ins and character references
// in the ASCII range are the overwhelmingly common cases).
func (t *Tokenizer) readEntity() (string, error) {
	var name [13]byte
	n := 0
	for {
		b, err := t.readByte()
		if err != nil {
			return "", t.errf("unterminated entity reference")
		}
		if b == ';' {
			break
		}
		if n >= 12 {
			return "", t.errf("entity reference too long")
		}
		name[n] = b
		n++
	}
	r, ok := resolveEntityBytes(name[:n])
	if !ok {
		// Copy the name out of the scratch for the error message; the
		// conversion keeps the array itself off the heap on the hot
		// (error-free) path.
		s := string(name[:n])
		if n > 0 && name[0] == '#' {
			return "", t.errf("malformed character reference &%s;", s)
		}
		return "", t.errf("unknown entity &%s;", s)
	}
	return r, nil
}

// resolveEntity resolves the reference name between '&' and ';' — the
// five XML built-ins or a numeric character reference. Shared with the
// Splitter so both agree on what resolves (FuzzSplitter parity).
func resolveEntity(s string) (string, bool) {
	return resolveEntityBytes([]byte(s))
}

// resolveEntityBytes is resolveEntity over a byte scratch. The switch
// comparison and the manual digit parse do not allocate, so resolving
// a built-in entity costs no heap traffic at all.
func resolveEntityBytes(s []byte) (string, bool) {
	switch string(s) { // compiled to comparisons; no allocation
	case "lt":
		return "<", true
	case "gt":
		return ">", true
	case "amp":
		return "&", true
	case "apos":
		return "'", true
	case "quot":
		return `"`, true
	}
	if len(s) > 1 && s[0] == '#' {
		digits := s[1:]
		base := uint64(10)
		if digits[0] == 'x' || digits[0] == 'X' {
			base, digits = 16, digits[1:]
		}
		if len(digits) == 0 {
			return "", false
		}
		// Manual parse, matching strconv.ParseUint(digits, base, 32):
		// no sign, no underscores, no 0x prefix, range-checked at 32
		// bits. The name length cap (12 bytes) rules out uint64
		// overflow before the range check fires.
		var n uint64
		for _, c := range digits {
			var d uint64
			switch {
			case c >= '0' && c <= '9':
				d = uint64(c - '0')
			case c >= 'a' && c <= 'f':
				d = uint64(c-'a') + 10
			case c >= 'A' && c <= 'F':
				d = uint64(c-'A') + 10
			default:
				return "", false
			}
			if d >= base {
				return "", false
			}
			n = n*base + d
		}
		if n > 1<<32-1 {
			return "", false
		}
		return string(rune(n)), true
	}
	return "", false
}

// readName reads an XML name (simplified NCName: letters, digits, '.',
// '-', '_', ':'), interned.
func (t *Tokenizer) readName() (string, error) {
	t.textBuf = t.textBuf[:0]
	for {
		b, err := t.readByte()
		if err != nil {
			break
		}
		if isNameByte(b, len(t.textBuf) == 0) {
			t.textBuf = append(t.textBuf, b)
			continue
		}
		t.unread()
		break
	}
	if len(t.textBuf) == 0 {
		return "", t.errf("expected name")
	}
	if s, ok := t.names[string(t.textBuf)]; ok {
		return s, nil
	}
	s := string(t.textBuf)
	t.names[s] = s
	return s, nil
}

func isNameByte(b byte, first bool) bool {
	switch {
	case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b == '_', b == ':':
		return true
	case b >= '0' && b <= '9', b == '-', b == '.':
		return !first
	case b >= 0x80: // permit multi-byte UTF-8 names without decoding
		return true
	}
	return false
}

func (t *Tokenizer) skipSpace() {
	for {
		b, err := t.readByte()
		if err != nil {
			return
		}
		if b != ' ' && b != '\t' && b != '\n' && b != '\r' {
			t.unread()
			return
		}
	}
}

// skipUntil discards input through the first occurrence of pat.
func (t *Tokenizer) skipUntil(pat string) error {
	_, err := t.scanUntil(pat, nil)
	return err
}

// readUntil collects input through the first occurrence of pat, excluding
// the pattern itself.
func (t *Tokenizer) readUntil(pat string) (string, error) {
	t.textBuf = t.textBuf[:0]
	buf := &t.textBuf
	_, err := t.scanUntil(pat, buf)
	if err != nil {
		return "", err
	}
	return string(*buf), nil
}

func (t *Tokenizer) scanUntil(pat string, collect *[]byte) (int, error) {
	matched := 0
	n := 0
	for matched < len(pat) {
		b, err := t.readByte()
		if err != nil {
			return n, t.errf("unexpected end of input looking for %q", pat)
		}
		n++
		prev := matched
		matched = patAdvance(pat, matched, b)
		if collect != nil {
			// The unflushed window held pat[:prev]; with b it is prev+1
			// bytes, of which the oldest prev+1-matched can no longer be
			// part of a match and belong to the content.
			if flush := prev + 1 - matched; flush > 0 {
				if flush <= prev {
					*collect = append(*collect, pat[:flush]...)
				} else {
					*collect = append(*collect, pat[:prev]...)
					*collect = append(*collect, b)
				}
			}
		}
	}
	return n, nil
}

// patAdvance is one step of Knuth-Morris-Pratt matching: given that
// pat[:matched] is the longest pattern prefix ending at the previous
// byte, it returns the longest prefix ending at b. A plain "reset to 0
// or 1 on mismatch" loses state on repeated-prefix patterns — "]]]>"
// contains "]]>" but never matches without the fallback.
func patAdvance(pat string, matched int, b byte) int {
	for matched > 0 && b != pat[matched] {
		matched = patOverlap(pat, matched)
	}
	if b == pat[matched] {
		return matched + 1
	}
	return 0
}

// patOverlap returns the length of the longest proper prefix of
// pat[:m] that is also its suffix (the KMP failure function; fine to
// recompute per mismatch for the tiny patterns used here).
func patOverlap(pat string, m int) int {
	for k := m - 1; k > 0; k-- {
		if pat[:k] == pat[m-k:m] {
			return k
		}
	}
	return 0
}

func (t *Tokenizer) readByte() (byte, error) {
	b, err := t.r.ReadByte()
	if err == nil {
		t.off++
	} else if err != io.EOF && t.ioErr == nil {
		t.ioErr = err
	}
	return b, err
}

func (t *Tokenizer) unread() {
	_ = t.r.UnreadByte()
	t.off--
}

func (t *Tokenizer) errf(format string, args ...any) error {
	if t.ioErr != nil {
		return fmt.Errorf("xmltok: read error at byte %d: %w", t.off, t.ioErr)
	}
	return &SyntaxError{Offset: t.off, Msg: fmt.Sprintf(format, args...)}
}
