package xmltok

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync"

	"gcx/internal/cursor"
)

// Tokenizer reads an XML byte stream and produces Tokens one at a time.
//
// The zero value is not usable; construct with NewTokenizer (io.Reader
// input) or NewTokenizerBytes (zero-copy []byte input). The tokenizer
// validates well-formedness of the element nesting (tag-name balance)
// as it goes, so downstream components may assume that an EndElement
// always matches the innermost open StartElement.
//
// Input flows through a block cursor (internal/cursor, DESIGN.md §12):
// hot loops advance by vectorized window scans rather than per-byte
// reads, and the same scanning code serves both backings. On the
// []byte path, text tokens and attribute values borrow subslices of
// the input instead of allocating; the caller must not mutate the
// input slice while tokens are in use.
type Tokenizer struct {
	cur cursor.Cursor

	// stack of currently open element names.
	stack []string
	// names interns element and attribute names so that repeated tags in
	// large documents share one string allocation. Only owned copies are
	// stored — never borrowed input bytes — because the map outlives the
	// input across pooled reuses.
	names map[string]string

	// pending holds a synthesized token (the EndElement of a self-closing
	// tag) to be returned by the next call to Next.
	pending *Token
	peeked  *Token

	// ctx, when non-nil, is checked at every token pull; Next returns
	// ctx.Err() as soon as the context is cancelled, so a streaming run
	// aborts within one token of cancellation. ctxDone caches ctx.Done()
	// so the per-token check is a lock-free channel poll rather than a
	// mutex-guarded ctx.Err() call.
	ctx     context.Context
	ctxDone <-chan struct{}

	// KeepWhitespace controls whether whitespace-only text nodes are
	// reported. Data-oriented processing (the default) drops them; the
	// round-trip property tests keep them.
	KeepWhitespace bool

	count    int64
	depth    int
	started  bool
	done     bool
	released bool

	textBuf []byte

	// SkipSubtree counters and scratch (skip.go).
	bytesSkipped    int64
	tagsSkipped     int64
	subtreesSkipped int64
	skipTag         []byte
	skipNameBuf     []byte
	skipNameLen     []int
}

// tokenizerPool recycles Tokenizers — each carries a 64 KiB cursor
// window, a name-interning map and a text scratch buffer, which dominate
// the per-execution allocation cost of short queries over hot streams.
var tokenizerPool = sync.Pool{
	New: func() any {
		return &Tokenizer{names: make(map[string]string, 64)}
	},
}

// maxInternedNames bounds the interning map carried across pooled
// reuses; beyond it the map is cleared on the next NewTokenizer.
const maxInternedNames = 4096

// NewTokenizer returns a Tokenizer reading from r. Tokenizers come from
// an internal pool; callers that finish with one may hand its buffers
// back via Release.
func NewTokenizer(r io.Reader) *Tokenizer {
	t := tokenizerPool.Get().(*Tokenizer)
	t.cur.ResetReader(r, cursor.DefaultSize)
	t.reset()
	return t
}

// NewTokenizerBytes returns a Tokenizer scanning data in place: windows
// are served directly from the slice with no copying, and text tokens /
// attribute values borrow subslices of it. The caller must not mutate
// data until it is done with the tokenizer and every token it produced.
func NewTokenizerBytes(data []byte) *Tokenizer {
	t := tokenizerPool.Get().(*Tokenizer)
	t.cur.ResetBytes(data)
	t.reset()
	return t
}

func (t *Tokenizer) reset() {
	t.stack = t.stack[:0]
	if len(t.names) > maxInternedNames {
		clear(t.names)
	}
	t.pending = nil
	t.peeked = nil
	t.ctx = nil
	t.ctxDone = nil
	t.KeepWhitespace = false
	t.count = 0
	t.depth = 0
	t.started = false
	t.done = false
	t.released = false
	t.textBuf = t.textBuf[:0]
	t.bytesSkipped = 0
	t.tagsSkipped = 0
	t.subtreesSkipped = 0
}

// SetContext attaches a cancellation context. Next fails with ctx.Err()
// at the first token pull after cancellation.
func (t *Tokenizer) SetContext(ctx context.Context) {
	t.ctx = ctx
	t.ctxDone = nil
	if ctx != nil {
		t.ctxDone = ctx.Done()
	}
}

// Release returns the tokenizer's buffers to the pool. The tokenizer
// must not be used afterwards; counters read before Release stay valid.
// Release is idempotent.
func (t *Tokenizer) Release() {
	if t.released {
		return
	}
	t.released = true
	t.cur.ResetBytes(nil) // drop the reader / input-slice reference
	t.ctx = nil
	t.ctxDone = nil
	t.pending = nil
	t.peeked = nil
	tokenizerPool.Put(t)
}

// TokenCount reports how many tokens have been delivered so far. This is
// the x-axis of the paper's buffer plots ("number of tokens processed").
func (t *Tokenizer) TokenCount() int64 { return t.count }

// Depth reports the current element nesting depth (number of open tags).
func (t *Tokenizer) Depth() int { return t.depth }

// Peek returns the next token without consuming it. The returned token is
// only valid until the following call to Next.
func (t *Tokenizer) Peek() (Token, error) {
	if t.peeked == nil {
		tok, err := t.read()
		if err != nil {
			return Token{}, err
		}
		t.peeked = &tok
	}
	return *t.peeked, nil
}

// Next returns the next token of the stream. At end of input it returns
// io.EOF; if the input ends with unclosed elements, a SyntaxError is
// returned instead. If a context was attached with SetContext and has
// been cancelled, Next returns the context's error without reading.
func (t *Tokenizer) Next() (Token, error) {
	if t.ctxDone != nil {
		select {
		case <-t.ctxDone:
			return Token{}, t.ctx.Err()
		default:
		}
	}
	var tok Token
	var err error
	if t.peeked != nil {
		tok, t.peeked = *t.peeked, nil
	} else {
		tok, err = t.read()
		if err != nil {
			return Token{}, err
		}
	}
	t.count++
	switch tok.Kind {
	case StartElement:
		t.depth++
	case EndElement:
		t.depth--
	}
	return tok, nil
}

// read produces the next raw token, maintaining the open-element stack.
func (t *Tokenizer) read() (Token, error) {
	if t.pending != nil {
		tok := *t.pending
		t.pending = nil
		t.stack = t.stack[:len(t.stack)-1]
		if len(t.stack) == 0 {
			// a self-closing element completed the document element
			t.started = true
		}
		return tok, nil
	}
	if t.done {
		return Token{}, io.EOF
	}
	for {
		err := t.cur.Fill()
		if err == io.EOF {
			if len(t.stack) > 0 {
				return Token{}, t.errf("unexpected end of input inside <%s>", t.stack[len(t.stack)-1])
			}
			t.done = true
			return Token{}, io.EOF
		}
		if err != nil {
			return Token{}, err
		}
		if t.cur.Window()[0] == '<' {
			t.cur.Advance(1)
			tok, skip, err := t.readMarkup()
			if err != nil {
				return Token{}, err
			}
			if skip {
				continue
			}
			return tok, nil
		}
		// Character data up to the next '<'.
		tok, keep, err := t.readText()
		if err != nil {
			return Token{}, err
		}
		if keep {
			return tok, nil
		}
	}
}

// readMarkup parses markup following '<'. skip is true for ignorable
// constructs (comments, PIs, declarations).
func (t *Tokenizer) readMarkup() (tok Token, skip bool, err error) {
	b, err := t.cur.Byte()
	if err != nil {
		return Token{}, false, t.errf("unexpected end of input in markup")
	}
	switch b {
	case '?':
		return Token{}, true, t.skipUntil("?>")
	case '!':
		return t.readBang()
	case '/':
		return t.readEndTag()
	default:
		t.cur.Unread()
		return t.readStartTag()
	}
}

// readBang handles "<!..." constructs: comments, CDATA, DOCTYPE.
func (t *Tokenizer) readBang() (Token, bool, error) {
	b, err := t.cur.Byte()
	if err != nil {
		return Token{}, false, t.errf("unexpected end of input after '<!'")
	}
	switch b {
	case '-':
		if b2, err := t.cur.Byte(); err != nil || b2 != '-' {
			return Token{}, false, t.errf("malformed comment")
		}
		return Token{}, true, t.skipUntil("-->")
	case '[':
		// CDATA section: <![CDATA[ ... ]]>
		const open = "CDATA["
		for i := 0; i < len(open); i++ {
			b2, err := t.cur.Byte()
			if err != nil || b2 != open[i] {
				return Token{}, false, t.errf("malformed CDATA section")
			}
		}
		text, err := t.readUntil("]]>")
		if err != nil {
			return Token{}, false, err
		}
		if len(t.stack) == 0 {
			return Token{}, true, nil // CDATA outside root: ignore
		}
		return Token{Kind: Text, Text: text}, false, nil
	default:
		// DOCTYPE or other declaration: skip to matching '>'. Internal
		// subsets with nested brackets are not supported (XMark-class
		// documents do not use them).
		t.cur.Unread()
		return Token{}, true, t.skipUntil(">")
	}
}

func (t *Tokenizer) readEndTag() (Token, bool, error) {
	name, err := t.readName()
	if err != nil {
		return Token{}, false, err
	}
	t.skipSpace()
	b, err := t.cur.Byte()
	if err != nil || b != '>' {
		return Token{}, false, t.errf("malformed end tag </%s", name)
	}
	if len(t.stack) == 0 {
		return Token{}, false, t.errf("unexpected </%s> with no open element", name)
	}
	top := t.stack[len(t.stack)-1]
	if top != name {
		return Token{}, false, t.errf("mismatched </%s>, expected </%s>", name, top)
	}
	t.stack = t.stack[:len(t.stack)-1]
	if len(t.stack) == 0 {
		t.started = true
	}
	return Token{Kind: EndElement, Name: name}, false, nil
}

func (t *Tokenizer) readStartTag() (Token, bool, error) {
	if t.started && len(t.stack) == 0 {
		return Token{}, false, t.errf("content after document element")
	}
	name, err := t.readName()
	if err != nil {
		return Token{}, false, err
	}
	var attrs []Attr
	for {
		t.skipSpace()
		b, err := t.cur.Byte()
		if err != nil {
			return Token{}, false, t.errf("unexpected end of input in <%s>", name)
		}
		switch b {
		case '>':
			t.stack = append(t.stack, name)
			return Token{Kind: StartElement, Name: name, Attrs: attrs}, false, nil
		case '/':
			b2, err := t.cur.Byte()
			if err != nil || b2 != '>' {
				return Token{}, false, t.errf("malformed self-closing tag <%s", name)
			}
			t.stack = append(t.stack, name)
			t.pending = &Token{Kind: EndElement, Name: name}
			return Token{Kind: StartElement, Name: name, Attrs: attrs}, false, nil
		default:
			t.cur.Unread()
			a, err := t.readAttr(name)
			if err != nil {
				return Token{}, false, err
			}
			attrs = append(attrs, a)
		}
	}
}

func (t *Tokenizer) readAttr(elem string) (Attr, error) {
	name, err := t.readName()
	if err != nil {
		return Attr{}, t.errf("malformed attribute in <%s>", elem)
	}
	t.skipSpace()
	b, err := t.cur.Byte()
	if err != nil || b != '=' {
		return Attr{}, t.errf("attribute %s in <%s> missing '='", name, elem)
	}
	t.skipSpace()
	q, err := t.cur.Byte()
	if err != nil || (q != '"' && q != '\'') {
		return Attr{}, t.errf("attribute %s in <%s> missing quote", name, elem)
	}
	val, err := t.readAttrValue(name, q)
	if err != nil {
		return Attr{}, err
	}
	return Attr{Name: name, Value: val}, nil
}

// readAttrValue consumes the attribute value through the closing quote
// q. On the []byte path an entity-free value is borrowed from the input
// without allocating. Entity references go through readEntity byte by
// byte on both paths — a reference swallows any quote inside its name
// (e.g. `&a"b;`), so the borrow fast path only fires when no '&'
// precedes the first candidate closing quote.
func (t *Tokenizer) readAttrValue(name string, q byte) (string, error) {
	if t.cur.Fixed() {
		w := t.cur.Window()
		qi := bytes.IndexByte(w, q)
		if qi < 0 {
			// Unterminated value — but an '&' before EOF means the
			// general loop ends inside the entity machinery instead, so
			// only short-circuit entity-free tails (error parity).
			if bytes.IndexByte(w, '&') < 0 {
				t.cur.Advance(len(w))
				return "", t.errf("unterminated attribute value for %s", name)
			}
		} else if bytes.IndexByte(w[:qi], '&') < 0 {
			t.cur.Advance(qi + 1)
			return cursor.Borrow(w[:qi]), nil
		}
	}
	t.textBuf = t.textBuf[:0]
	for {
		if err := t.cur.Fill(); err != nil {
			return "", t.errf("unterminated attribute value for %s", name)
		}
		w := t.cur.Window()
		stop := len(w)
		hitQ := false
		if i := bytes.IndexByte(w, q); i >= 0 {
			stop, hitQ = i, true
		}
		if j := bytes.IndexByte(w[:stop], '&'); j >= 0 {
			t.textBuf = append(t.textBuf, w[:j]...)
			t.cur.Advance(j + 1)
			r, err := t.readEntity()
			if err != nil {
				return "", err
			}
			t.textBuf = append(t.textBuf, r...)
			continue
		}
		t.textBuf = append(t.textBuf, w[:stop]...)
		t.cur.Advance(stop)
		if hitQ {
			t.cur.Advance(1)
			return string(t.textBuf), nil
		}
	}
}

// isWSByte reports whether b is literal XML whitespace.
func isWSByte(b byte) bool {
	return b == ' ' || b == '\t' || b == '\n' || b == '\r'
}

// readText accumulates character data up to (not including) the next
// '<', scanning whole windows for the structural bytes '<' and '&'.
// keep is false when the text is whitespace-only and KeepWhitespace is
// unset, or when it occurs outside the document element. On the []byte
// path, entity-free text is returned as a borrowed subslice of the
// input with no copy and no allocation; whitespace-only runs are
// dropped before any token construction on both paths.
func (t *Tokenizer) readText() (Token, bool, error) {
	t.textBuf = t.textBuf[:0]
	// borrowed holds the single contiguous text segment of the []byte
	// path (the window spans the whole input there, so entity-free text
	// is always one segment); it migrates into textBuf if an entity
	// forces decoding.
	var borrowed []byte
	canBorrow := t.cur.Fixed()
	ws := true
	for {
		err := t.cur.Fill()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Token{}, false, err
		}
		w := t.cur.Window()
		bound := len(w)
		sawLT := false
		if i := bytes.IndexByte(w, '<'); i >= 0 {
			bound, sawLT = i, true
		}
		if j := bytes.IndexByte(w[:bound], '&'); j >= 0 {
			// Entity reference before the next '<': decode. The reference
			// is consumed byte by byte (shared with the reader path) and
			// may legitimately swallow bytes past bound on malformed
			// names, matching per-byte semantics exactly.
			seg := w[:j]
			if ws {
				ws = allWhitespace(seg)
			}
			if borrowed != nil {
				t.textBuf = append(t.textBuf, borrowed...)
				borrowed = nil
			}
			canBorrow = false
			t.textBuf = append(t.textBuf, seg...)
			t.cur.Advance(j + 1)
			r, err := t.readEntity()
			if err != nil {
				return Token{}, false, err
			}
			if ws && !allWhitespaceString(r) {
				ws = false
			}
			t.textBuf = append(t.textBuf, r...)
			continue
		}
		seg := w[:bound]
		if ws {
			ws = allWhitespace(seg)
		}
		if canBorrow && borrowed == nil && len(t.textBuf) == 0 {
			borrowed = seg
		} else {
			if borrowed != nil {
				t.textBuf = append(t.textBuf, borrowed...)
				borrowed = nil
			}
			t.textBuf = append(t.textBuf, seg...)
		}
		t.cur.Advance(bound)
		if sawLT {
			break
		}
	}
	if len(t.stack) == 0 {
		if ws {
			return Token{}, false, nil
		}
		return Token{}, false, t.errf("character data outside document element")
	}
	if ws && !t.KeepWhitespace {
		return Token{}, false, nil
	}
	if borrowed != nil {
		return Token{Kind: Text, Text: cursor.Borrow(borrowed)}, true, nil
	}
	return Token{Kind: Text, Text: string(t.textBuf)}, true, nil
}

func allWhitespaceString(s string) bool {
	for i := 0; i < len(s); i++ {
		if !isWSByte(s[i]) {
			return false
		}
	}
	return true
}

// readEntity resolves an entity reference after '&' has been consumed.
// The reference name is collected into a fixed scratch and resolved
// without intermediate allocations (built-ins and character references
// in the ASCII range are the overwhelmingly common cases).
func (t *Tokenizer) readEntity() (string, error) {
	var name [13]byte
	n := 0
	for {
		b, err := t.cur.Byte()
		if err != nil {
			return "", t.errf("unterminated entity reference")
		}
		if b == ';' {
			break
		}
		if n >= 12 {
			return "", t.errf("entity reference too long")
		}
		name[n] = b
		n++
	}
	r, ok := resolveEntityBytes(name[:n])
	if !ok {
		// Copy the name out of the scratch for the error message; the
		// conversion keeps the array itself off the heap on the hot
		// (error-free) path.
		s := string(name[:n])
		if n > 0 && name[0] == '#' {
			return "", t.errf("malformed character reference &%s;", s)
		}
		return "", t.errf("unknown entity &%s;", s)
	}
	return r, nil
}

// resolveEntity resolves the reference name between '&' and ';' — the
// five XML built-ins or a numeric character reference. Shared with the
// Splitter so both agree on what resolves (FuzzSplitter parity).
func resolveEntity(s string) (string, bool) {
	return resolveEntityBytes([]byte(s))
}

// resolveEntityBytes is resolveEntity over a byte scratch. The switch
// comparison and the manual digit parse do not allocate, so resolving
// a built-in entity costs no heap traffic at all.
func resolveEntityBytes(s []byte) (string, bool) {
	switch string(s) { // compiled to comparisons; no allocation
	case "lt":
		return "<", true
	case "gt":
		return ">", true
	case "amp":
		return "&", true
	case "apos":
		return "'", true
	case "quot":
		return `"`, true
	}
	if len(s) > 1 && s[0] == '#' {
		digits := s[1:]
		base := uint64(10)
		if digits[0] == 'x' || digits[0] == 'X' {
			base, digits = 16, digits[1:]
		}
		if len(digits) == 0 {
			return "", false
		}
		// Manual parse, matching strconv.ParseUint(digits, base, 32):
		// no sign, no underscores, no 0x prefix, range-checked at 32
		// bits. The name length cap (12 bytes) rules out uint64
		// overflow before the range check fires.
		var n uint64
		for _, c := range digits {
			var d uint64
			switch {
			case c >= '0' && c <= '9':
				d = uint64(c - '0')
			case c >= 'a' && c <= 'f':
				d = uint64(c-'a') + 10
			case c >= 'A' && c <= 'F':
				d = uint64(c-'A') + 10
			default:
				return "", false
			}
			if d >= base {
				return "", false
			}
			n = n*base + d
		}
		if n > 1<<32-1 {
			return "", false
		}
		return string(rune(n)), true
	}
	return "", false
}

// readName reads an XML name (simplified NCName: letters, digits, '.',
// '-', '_', ':'), interned. The common case — the whole name inside the
// current window — is a single bounded scan with a map lookup and no
// allocation; only names straddling a reader-path refill boundary take
// the accumulating slow path.
func (t *Tokenizer) readName() (string, error) {
	if err := t.cur.Fill(); err != nil {
		return "", t.errf("expected name")
	}
	w := t.cur.Window()
	i := 0
	for i < len(w) && isNameByte(w[i], i == 0) {
		i++
	}
	if i == 0 {
		return "", t.errf("expected name")
	}
	if i < len(w) || t.cur.Fixed() {
		t.cur.Advance(i)
		return t.intern(w[:i]), nil
	}
	// Name runs to the window edge on the reader path: accumulate.
	t.textBuf = append(t.textBuf[:0], w[:i]...)
	t.cur.Advance(i)
	for {
		b, err := t.cur.Byte()
		if err != nil {
			break
		}
		if !isNameByte(b, false) {
			t.cur.Unread()
			break
		}
		t.textBuf = append(t.textBuf, b)
	}
	return t.intern(t.textBuf), nil
}

// intern returns the canonical string for a name. Hits cost a map
// lookup with no allocation (the compiler elides the string conversion
// in the lookup); misses store an owned copy, never borrowed input.
func (t *Tokenizer) intern(b []byte) string {
	if s, ok := t.names[string(b)]; ok {
		return s
	}
	s := string(b)
	t.names[s] = s
	return s
}

// nameStartByte/namePartByte classify XML name bytes by table lookup:
// the raw-skip fast loop touches every name byte, and a 256-entry table
// beats the branchy range switch there.
var nameStartByte, namePartByte [256]bool

func init() {
	for i := 0; i < 256; i++ {
		b := byte(i)
		switch {
		case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b == '_', b == ':':
			nameStartByte[i], namePartByte[i] = true, true
		case b >= '0' && b <= '9', b == '-', b == '.':
			namePartByte[i] = true
		case b >= 0x80: // permit multi-byte UTF-8 names without decoding
			nameStartByte[i], namePartByte[i] = true, true
		}
	}
}

func isNameByte(b byte, first bool) bool {
	if first {
		return nameStartByte[b]
	}
	return namePartByte[b]
}

func (t *Tokenizer) skipSpace() {
	for {
		if err := t.cur.Fill(); err != nil {
			return
		}
		w := t.cur.Window()
		i := 0
		for i < len(w) && isWSByte(w[i]) {
			i++
		}
		t.cur.Advance(i)
		if i < len(w) {
			return
		}
	}
}

// skipUntil discards input through the first occurrence of pat.
func (t *Tokenizer) skipUntil(pat string) error {
	return t.scanUntil(pat, nil)
}

// readUntil collects input through the first occurrence of pat, excluding
// the pattern itself. On the []byte path the content is borrowed.
func (t *Tokenizer) readUntil(pat string) (string, error) {
	if t.cur.Fixed() {
		w := t.cur.Window()
		i := indexPat(w, pat)
		if i < 0 {
			t.cur.Advance(len(w))
			return "", t.errf("unexpected end of input looking for %q", pat)
		}
		t.cur.Advance(i + len(pat))
		return cursor.Borrow(w[:i]), nil
	}
	t.textBuf = t.textBuf[:0]
	if err := t.scanUntil(pat, &t.textBuf); err != nil {
		return "", err
	}
	return string(t.textBuf), nil
}

// scanUntil consumes input through the first occurrence of pat,
// appending the content (pattern excluded) to *collect when non-nil.
// The []byte path is a single vectorized bytes.Index; the reader path
// runs KMP with bytes.IndexByte jumps between candidate positions.
func (t *Tokenizer) scanUntil(pat string, collect *[]byte) error {
	if t.cur.Fixed() {
		w := t.cur.Window()
		i := indexPat(w, pat)
		if i < 0 {
			t.cur.Advance(len(w))
			return t.errf("unexpected end of input looking for %q", pat)
		}
		if collect != nil {
			*collect = append(*collect, w[:i]...)
		}
		t.cur.Advance(i + len(pat))
		return nil
	}
	matched := 0
	for matched < len(pat) {
		if matched == 0 {
			// No partial match pending: jump to the next candidate first
			// byte; everything before it is definitely content.
			if err := t.cur.Fill(); err != nil {
				return t.errf("unexpected end of input looking for %q", pat)
			}
			w := t.cur.Window()
			i := bytes.IndexByte(w, pat[0])
			if i < 0 {
				if collect != nil {
					*collect = append(*collect, w...)
				}
				t.cur.Advance(len(w))
				continue
			}
			if collect != nil {
				*collect = append(*collect, w[:i]...)
			}
			t.cur.Advance(i + 1)
			matched = 1
			continue
		}
		b, err := t.cur.Byte()
		if err != nil {
			return t.errf("unexpected end of input looking for %q", pat)
		}
		prev := matched
		matched = patAdvance(pat, matched, b)
		if collect != nil {
			// The unflushed window held pat[:prev]; with b it is prev+1
			// bytes, of which the oldest prev+1-matched can no longer be
			// part of a match and belong to the content.
			if flush := prev + 1 - matched; flush > 0 {
				if flush <= prev {
					*collect = append(*collect, pat[:flush]...)
				} else {
					*collect = append(*collect, pat[:prev]...)
					*collect = append(*collect, b)
				}
			}
		}
	}
	return nil
}

// indexPat returns the index of the first occurrence of pat in w, or
// -1. It is bytes.Index without the string→[]byte conversion (which
// would allocate): vectorized IndexByte jumps between candidate
// positions, with an allocation-free comparison at each.
func indexPat(w []byte, pat string) int {
	for off := 0; ; {
		i := bytes.IndexByte(w[off:], pat[0])
		if i < 0 {
			return -1
		}
		p := off + i
		if p+len(pat) > len(w) {
			return -1
		}
		if string(w[p:p+len(pat)]) == pat {
			return p
		}
		off = p + 1
	}
}

// patAdvance is one step of Knuth-Morris-Pratt matching: given that
// pat[:matched] is the longest pattern prefix ending at the previous
// byte, it returns the longest prefix ending at b. A plain "reset to 0
// or 1 on mismatch" loses state on repeated-prefix patterns — "]]]>"
// contains "]]>" but never matches without the fallback.
func patAdvance(pat string, matched int, b byte) int {
	for matched > 0 && b != pat[matched] {
		matched = patOverlap(pat, matched)
	}
	if b == pat[matched] {
		return matched + 1
	}
	return 0
}

// patOverlap returns the length of the longest proper prefix of
// pat[:m] that is also its suffix (the KMP failure function; fine to
// recompute per mismatch for the tiny patterns used here).
func patOverlap(pat string, m int) int {
	for k := m - 1; k > 0; k-- {
		if pat[:k] == pat[m-k:m] {
			return k
		}
	}
	return 0
}

func (t *Tokenizer) errf(format string, args ...any) error {
	if ioErr := t.cur.IOErr(); ioErr != nil {
		return fmt.Errorf("xmltok: read error at byte %d: %w", t.cur.Offset(), ioErr)
	}
	return &SyntaxError{Offset: t.cur.Offset(), Msg: fmt.Sprintf(format, args...)}
}
