package xmltok

import (
	"context"
	"io"
	"strings"
	"testing"
)

// collectAfterSkip tokenizes doc, calling SkipSubtree on the first
// StartElement named skipAt, and returns the tokens delivered plus the
// tokenizer's skip counters.
func collectAfterSkip(t *testing.T, doc, skipAt string) ([]Token, *Tokenizer, error) {
	t.Helper()
	tz := NewTokenizer(strings.NewReader(doc))
	var toks []Token
	skipped := false
	for {
		tok, err := tz.Next()
		if err == io.EOF {
			return toks, tz, nil
		}
		if err != nil {
			return toks, tz, err
		}
		toks = append(toks, tok)
		if !skipped && tok.Kind == StartElement && tok.Name == skipAt {
			skipped = true
			if err := tz.SkipSubtree(); err != nil {
				return toks, tz, err
			}
		}
	}
}

func TestSkipSubtreeLandsAtEndTag(t *testing.T) {
	const doc = `<a><skip><x>text</x><y k="v">more<z/></y></skip><after>tail</after></a>`
	toks, tz, err := collectAfterSkip(t, doc, "skip")
	if err != nil {
		t.Fatal(err)
	}
	// Delivered: <a>, <skip>, then directly <after>, text, </after>, </a>.
	want := []string{"a", "skip", "after", "tail", "after", "a"}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens %+v, want %d", len(toks), toks, len(want))
	}
	if toks[2].Name != "after" || toks[3].Text != "tail" {
		t.Fatalf("stream after skip wrong: %+v", toks)
	}
	if tz.SubtreesSkipped() != 1 {
		t.Fatalf("subtrees = %d", tz.SubtreesSkipped())
	}
	// <x>, </x>, <y>, <z/> (2), </y>, </skip> = 7 tags
	if tz.TagsSkipped() != 7 {
		t.Fatalf("tags skipped = %d, want 7", tz.TagsSkipped())
	}
	if tz.BytesSkipped() != int64(len(`<x>text</x><y k="v">more<z/></y></skip>`)) {
		t.Fatalf("bytes skipped = %d", tz.BytesSkipped())
	}
	if tz.Depth() != 0 {
		t.Fatalf("depth = %d after full read", tz.Depth())
	}
}

func TestSkipSubtreeSelfClosing(t *testing.T) {
	toks, tz, err := collectAfterSkip(t, `<a><skip/><b/></a>`, "skip")
	if err != nil {
		t.Fatal(err)
	}
	// The synthesized </skip> is consumed silently.
	want := []struct {
		kind Kind
		name string
	}{{StartElement, "a"}, {StartElement, "skip"}, {StartElement, "b"}, {EndElement, "b"}, {EndElement, "a"}}
	if len(toks) != len(want) {
		t.Fatalf("got %+v", toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Name != w.name {
			t.Fatalf("token %d = %+v, want %+v", i, toks[i], w)
		}
	}
	if tz.BytesSkipped() != 0 || tz.TagsSkipped() != 1 || tz.SubtreesSkipped() != 1 {
		t.Fatalf("counters: bytes=%d tags=%d subtrees=%d", tz.BytesSkipped(), tz.TagsSkipped(), tz.SubtreesSkipped())
	}
}

func TestSkipSubtreeDocumentElement(t *testing.T) {
	// Skipping the document element consumes the whole document.
	toks, _, err := collectAfterSkip(t, `<a><b>deep<c/></b></a>`, "a")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 1 || toks[0].Name != "a" {
		t.Fatalf("got %+v", toks)
	}
}

func TestSkipSubtreeAwkwardContent(t *testing.T) {
	// CDATA with ']]>'-adjacent content, comments with '--->', PIs,
	// attribute values carrying '>' and quotes, nested same-name tags.
	const doc = `<a><skip><skip><![CDATA[</skip>]]]>x<!-- comment ---><?pi ?>` +
		`<t q="a>b" p='c"d'>&bogus;</t></skip>trail</skip><b/></a>`
	toks, _, err := collectAfterSkip(t, doc, "skip")
	if err != nil {
		t.Fatal(err)
	}
	// &bogus; is inside the skipped region: the raw scan must NOT
	// reject it (no entity resolution during skips).
	var after []string
	for _, tok := range toks[2:] {
		after = append(after, tok.Name)
	}
	if len(toks) != 5 || toks[2].Name != "b" {
		t.Fatalf("stream after skip: %v (%+v)", after, toks)
	}
}

func TestSkipSubtreeErrors(t *testing.T) {
	cases := []struct {
		name, doc string
	}{
		{"truncated", `<a><skip><x>`},
		{"mismatch", `<a><skip><x></y></skip></a>`},
		{"crossing", `<a><skip></a>`},
		{"badComment", `<a><skip><!-bad--></skip></a>`},
		{"badCDATA", `<a><skip><![CDAT[x]]></skip></a>`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := collectAfterSkip(t, tc.doc, "skip")
			if err == nil {
				t.Fatalf("no error for %q", tc.doc)
			}
			if _, ok := err.(*SyntaxError); !ok {
				t.Fatalf("error %v is not a SyntaxError", err)
			}
		})
	}
}

func TestSkipSubtreeAfterPeek(t *testing.T) {
	tz := NewTokenizer(strings.NewReader(`<a><b>x</b></a>`))
	defer tz.Release()
	if _, err := tz.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := tz.Peek(); err != nil {
		t.Fatal(err)
	}
	if err := tz.SkipSubtree(); err == nil {
		t.Fatal("SkipSubtree after Peek must fail")
	}
}

func TestSkipSubtreeContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var sb strings.Builder
	sb.WriteString("<a><skip>")
	for i := 0; i < 100000; i++ {
		sb.WriteString("<x>y</x>")
	}
	sb.WriteString("</skip></a>")
	tz := NewTokenizer(strings.NewReader(sb.String()))
	defer tz.Release()
	tz.SetContext(ctx)
	for i := 0; i < 2; i++ {
		if _, err := tz.Next(); err != nil {
			t.Fatal(err)
		}
	}
	cancel()
	if err := tz.SkipSubtree(); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSkipSubtreeParityPositions runs SkipSubtree at every possible
// element of a corpus of tricky documents and checks the remainder of
// the token stream is exactly what full tokenization yields after the
// matching EndElement.
func TestSkipSubtreeParityPositions(t *testing.T) {
	docs := []string{
		`<a><b/></a>`,
		`<a><b>x</b><c/><b k="v">y</b></a>`,
		`<a><x><b>deep</b></x><b><b>nested名</b></b></a>`,
		`<a><!-- c --><b><![CDATA[<>]]></b></a>`,
		`<a><b attr="quoted > gt"/></a>`,
		`<a>t1<b>t2<c>t3</c>t4</b>t5<d/>t6</a>`,
		`<a><b><![CDATA[]]]]><![CDATA[>]]></b><c/></a>`,
	}
	for _, doc := range docs {
		full := allTokens(t, doc)
		starts := 0
		for _, tok := range full {
			if tok.Kind == StartElement {
				starts++
			}
		}
		for at := 0; at < starts; at++ {
			checkSkipAt(t, doc, full, at)
		}
	}
}

// allTokens tokenizes doc fully (KeepWhitespace off, like the engine).
func allTokens(t *testing.T, doc string) []Token {
	t.Helper()
	tz := NewTokenizer(strings.NewReader(doc))
	defer tz.Release()
	var toks []Token
	for {
		tok, err := tz.Next()
		if err == io.EOF {
			return toks
		}
		if err != nil {
			t.Fatalf("reference tokenization failed: %v (doc %q)", err, doc)
		}
		toks = append(toks, tok)
	}
}

// checkSkipAt skips at the at-th StartElement and compares against the
// reference stream with that element's subtree removed.
func checkSkipAt(t *testing.T, doc string, full []Token, at int) {
	t.Helper()
	// Build the expected stream: reference tokens minus the skipped
	// subtree (exclusive of its StartElement, inclusive of its
	// EndElement).
	var want []Token
	starts, depth := 0, 0
	skipping := false
	for _, tok := range full {
		if skipping {
			switch tok.Kind {
			case StartElement:
				depth++
			case EndElement:
				depth--
				if depth == 0 {
					skipping = false
				}
			}
			continue
		}
		want = append(want, tok)
		if tok.Kind == StartElement {
			if starts == at {
				skipping = true
				depth = 1
			}
			starts++
		}
	}

	tz := NewTokenizer(strings.NewReader(doc))
	defer tz.Release()
	var got []Token
	starts = 0
	for {
		tok, err := tz.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("doc %q skip@%d: %v", doc, at, err)
		}
		got = append(got, tok)
		if tok.Kind == StartElement {
			if starts == at {
				if err := tz.SkipSubtree(); err != nil {
					t.Fatalf("doc %q skip@%d: SkipSubtree: %v", doc, at, err)
				}
			}
			starts++
		}
	}
	if len(got) != len(want) {
		t.Fatalf("doc %q skip@%d: got %d tokens, want %d\ngot:  %+v\nwant: %+v", doc, at, len(got), len(want), got, want)
	}
	for i := range want {
		if !sameToken(got[i], want[i]) {
			t.Fatalf("doc %q skip@%d token %d: got %+v want %+v", doc, at, i, got[i], want[i])
		}
	}
}
