package xmltok

import (
	"io"
	"strings"
	"testing"
)

// BenchmarkSplitter measures raw splitter throughput over an XMark-like
// document — the serial stage of sharded execution, so its throughput
// bounds the achievable sharded speedup (DESIGN.md §6).
func BenchmarkSplitter(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<site><regions>")
	for i := 0; i < 2000; i++ {
		sb.WriteString(`<item id="i"><name>gold silver</name><description><text>a longer run of text that looks like xmark prose, with several words</text></description></item>`)
	}
	sb.WriteString("</regions><people>")
	for i := 0; i < 3000; i++ {
		sb.WriteString(`<person id="p"><name>someone</name><emailaddress>mailto:x@example.net</emailaddress><profile income="52000"><education>x</education></profile></person>`)
	}
	sb.WriteString("</people></site>")
	doc := sb.String()
	path := []SplitStep{{Name: "site"}, {Name: "people"}, {Name: "person"}}
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := NewSplitter(strings.NewReader(doc), path)
		for {
			_, err := sp.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}
