package xmltok

import (
	"io"
	"strings"
	"testing"
)

// FuzzTokenizer: arbitrary bytes must produce either tokens or a clean
// error — never a panic or an infinite loop. Accepted documents must
// round-trip through the serializer.
// FuzzSplitter: whenever the Tokenizer accepts a document, the Splitter
// must split it without error, and the record tokens reassembled from
// the chunks must equal the record tokens of the original document —
// the invariant sharded execution rests on. Rejected documents must be
// rejected cleanly (no panic, no runaway).
func FuzzSplitter(f *testing.F) {
	seeds := []string{
		`<a><b/></a>`,
		`<a><b>x</b><c/><b k="v">y</b></a>`,
		`<a><x><b>deep</b></x><b><b>nested名</b></b></a>`,
		`<a><!-- c --><b><![CDATA[<>]]></b></a>`,
		`<a><b attr="quoted > gt"/></a>`,
		`<a><b></c></a>`,
		`<a>`,
		`<b/>`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	path := []SplitStep{{Name: "a"}, {Name: "b"}}
	f.Fuzz(func(t *testing.T, doc string) {
		// Reference: does the tokenizer accept the document?
		tz := NewTokenizer(strings.NewReader(doc))
		accepted := true
		for {
			_, err := tz.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				accepted = false
				break
			}
		}
		tz.Release()

		sp := NewSplitter(strings.NewReader(doc), path)
		var chunks []Chunk
		var splitErr error
		for {
			c, err := sp.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				splitErr = err
				break
			}
			chunks = append(chunks, c)
			if len(chunks) > len(doc)+16 {
				t.Fatal("runaway splitter")
			}
		}
		if !accepted {
			return // tokenizer-rejected inputs carry no obligations
		}
		if splitErr != nil {
			// The splitter skips attribute validation outside records, so
			// it accepts a superset; it must never reject what the
			// tokenizer accepts.
			t.Fatalf("splitter rejected a tokenizable document: %v\ninput: %q", splitErr, doc)
		}
		want := fuzzRecordTokens(t, doc, path)
		var got []Token
		for _, c := range chunks {
			got = append(got, fuzzRecordTokens(t, string(c.Data), path)...)
		}
		if len(got) != len(want) {
			t.Fatalf("record token counts differ: got %d want %d\ninput: %q", len(got), len(want), doc)
		}
		for i := range want {
			if !sameToken(got[i], want[i]) {
				t.Fatalf("record token %d: got %+v want %+v\ninput: %q", i, got[i], want[i], doc)
			}
		}
	})
}

func fuzzRecordTokens(t *testing.T, doc string, path []SplitStep) []Token {
	t.Helper()
	return recordTokens(t, strings.NewReader(doc), path)
}

func FuzzTokenizer(f *testing.F) {
	seeds := []string{
		`<a/>`,
		`<a b="c">x &amp; y</a>`,
		`<?xml version="1.0"?><!DOCTYPE a><a><!-- c --><![CDATA[<>]]></a>`,
		`<a><b></a></b>`,
		`&#x41;`,
		`<a`,
		`</a>`,
		"<a>\x00\xff</a>",
		`<a x='1' x="2"/>`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		tz := NewTokenizer(strings.NewReader(doc))
		tz.KeepWhitespace = true
		var toks []Token
		for i := 0; ; i++ {
			tok, err := tz.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return // clean rejection
			}
			toks = append(toks, tok)
			if i > len(doc)+16 {
				t.Fatalf("more tokens than input bytes: runaway tokenizer")
			}
		}
		// accepted documents must serialize and re-tokenize cleanly
		var out strings.Builder
		ser := NewSerializer(&out)
		for _, tok := range toks {
			ser.Token(tok)
		}
		if err := ser.Flush(); err != nil {
			t.Fatal(err)
		}
		tz2 := NewTokenizer(strings.NewReader(out.String()))
		tz2.KeepWhitespace = true
		for {
			_, err := tz2.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("serializer output does not re-tokenize: %v\ninput: %q\noutput: %q", err, doc, out.String())
			}
		}
	})
}
