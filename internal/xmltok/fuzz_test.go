package xmltok

import (
	"io"
	"strings"
	"testing"
)

// FuzzTokenizer: arbitrary bytes must produce either tokens or a clean
// error — never a panic or an infinite loop. Accepted documents must
// round-trip through the serializer.
func FuzzTokenizer(f *testing.F) {
	seeds := []string{
		`<a/>`,
		`<a b="c">x &amp; y</a>`,
		`<?xml version="1.0"?><!DOCTYPE a><a><!-- c --><![CDATA[<>]]></a>`,
		`<a><b></a></b>`,
		`&#x41;`,
		`<a`,
		`</a>`,
		"<a>\x00\xff</a>",
		`<a x='1' x="2"/>`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		tz := NewTokenizer(strings.NewReader(doc))
		tz.KeepWhitespace = true
		var toks []Token
		for i := 0; ; i++ {
			tok, err := tz.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return // clean rejection
			}
			toks = append(toks, tok)
			if i > len(doc)+16 {
				t.Fatalf("more tokens than input bytes: runaway tokenizer")
			}
		}
		// accepted documents must serialize and re-tokenize cleanly
		var out strings.Builder
		ser := NewSerializer(&out)
		for _, tok := range toks {
			ser.Token(tok)
		}
		if err := ser.Flush(); err != nil {
			t.Fatal(err)
		}
		tz2 := NewTokenizer(strings.NewReader(out.String()))
		tz2.KeepWhitespace = true
		for {
			_, err := tz2.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("serializer output does not re-tokenize: %v\ninput: %q\noutput: %q", err, doc, out.String())
			}
		}
	})
}
