package xmltok

import (
	"io"
	"strings"
	"testing"
)

// FuzzTokenizer: arbitrary bytes must produce either tokens or a clean
// error — never a panic or an infinite loop. Accepted documents must
// round-trip through the serializer.
// FuzzSplitter: whenever the Tokenizer accepts a document, the Splitter
// must split it without error, and the record tokens reassembled from
// the chunks must equal the record tokens of the original document —
// the invariant sharded execution rests on. Rejected documents must be
// rejected cleanly (no panic, no runaway).
func FuzzSplitter(f *testing.F) {
	seeds := []string{
		`<a><b/></a>`,
		`<a><b>x</b><c/><b k="v">y</b></a>`,
		`<a><x><b>deep</b></x><b><b>nested名</b></b></a>`,
		`<a><!-- c --><b><![CDATA[<>]]></b></a>`,
		`<a><b attr="quoted > gt"/></a>`,
		`<a><b></c></a>`,
		`<a>`,
		`<b/>`,
		// Window-boundary corpus (see FuzzTokenizer).
		`<a><b>` + strings.Repeat("x", 14) + `</b><b/></a>`,
		`<a><b ` + strings.Repeat("k", 11) + `="v"/></a>`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	path := []SplitStep{{Name: "a"}, {Name: "b"}}
	f.Fuzz(func(t *testing.T, doc string) {
		// Reference: does the tokenizer accept the document?
		tz := NewTokenizer(strings.NewReader(doc))
		accepted := true
		for {
			_, err := tz.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				accepted = false
				break
			}
		}
		tz.Release()

		sp := NewSplitter(strings.NewReader(doc), path)
		var chunks []Chunk
		var splitErr error
		for {
			c, err := sp.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				splitErr = err
				break
			}
			chunks = append(chunks, c)
			if len(chunks) > len(doc)+16 {
				t.Fatal("runaway splitter")
			}
		}
		if !accepted {
			return // tokenizer-rejected inputs carry no obligations
		}
		if splitErr != nil {
			// The splitter skips attribute validation outside records, so
			// it accepts a superset; it must never reject what the
			// tokenizer accepts.
			t.Fatalf("splitter rejected a tokenizable document: %v\ninput: %q", splitErr, doc)
		}
		want := fuzzRecordTokens(t, doc, path)
		var got []Token
		for _, c := range chunks {
			got = append(got, fuzzRecordTokens(t, string(c.Data), path)...)
		}
		if len(got) != len(want) {
			t.Fatalf("record token counts differ: got %d want %d\ninput: %q", len(got), len(want), doc)
		}
		for i := range want {
			if !sameToken(got[i], want[i]) {
				t.Fatalf("record token %d: got %+v want %+v\ninput: %q", i, got[i], want[i], doc)
			}
		}
	})
}

func fuzzRecordTokens(t *testing.T, doc string, path []SplitStep) []Token {
	t.Helper()
	return recordTokens(t, strings.NewReader(doc), path)
}

// FuzzSkipSubtree: for every document the Tokenizer accepts, calling
// SkipSubtree at an arbitrary StartElement must land on exactly the
// position full tokenization reaches after the matching EndElement —
// the remainder of the token stream is identical — and must never
// reject the document. On documents the Tokenizer rejects, SkipSubtree
// is allowed to accept a superset (it validates nesting but not
// attribute internals or entities), but must never panic or run away.
// Seeded with the CDATA/comment/PI terminator corpus of FuzzSplitter,
// whose KMP-matched patterns ("]]]>", "--->") are the historically
// tricky cases.
func FuzzSkipSubtree(f *testing.F) {
	seeds := []string{
		`<a><b/></a>`,
		`<a><b>x</b><c/><b k="v">y</b></a>`,
		`<a><x><b>deep</b></x><b><b>nested名</b></b></a>`,
		`<a><!-- c --><b><![CDATA[<>]]></b></a>`,
		`<a><b attr="quoted > gt"/></a>`,
		`<a><b><![CDATA[]]]]><![CDATA[>]]></b></a>`,
		`<a><!-- x ---><b/></a>`,
		`<a><?pi data?><b/></a>`,
		`<a><b></c></a>`,
		`<a>`,
		// Window-boundary corpus (see FuzzTokenizer).
		`<a><bbbbbbbbbbbbbbbb>x</bbbbbbbbbbbbbbbb></a>`,
		`<a><b>` + strings.Repeat("t", 15) + `<c/></b></a>`,
	}
	for _, s := range seeds {
		f.Add(s, uint8(0))
		f.Add(s, uint8(1))
	}
	f.Fuzz(func(t *testing.T, doc string, skipAt uint8) {
		// Reference: full tokenization (engine dialect, whitespace
		// dropped, exactly as the preprojector consumes it).
		ref := NewTokenizer(strings.NewReader(doc))
		var full []Token
		accepted := true
		for {
			tok, err := ref.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				accepted = false
				break
			}
			full = append(full, tok)
			if len(full) > len(doc)+16 {
				t.Fatal("runaway reference tokenizer")
			}
		}
		ref.Release()

		starts := 0
		for _, tok := range full {
			if tok.Kind == StartElement {
				starts++
			}
		}
		if accepted && starts == 0 {
			return // nothing to skip
		}
		at := 0
		if starts > 0 {
			at = int(skipAt) % starts
		}

		// Expected remainder: full stream minus the skipped subtree.
		var want []Token
		if accepted {
			n, depth, skipping := 0, 0, false
			for _, tok := range full {
				if skipping {
					switch tok.Kind {
					case StartElement:
						depth++
					case EndElement:
						depth--
						if depth == 0 {
							skipping = false
						}
					}
					continue
				}
				want = append(want, tok)
				if tok.Kind == StartElement {
					if n == at {
						skipping, depth = true, 1
					}
					n++
				}
			}
		}

		tz := NewTokenizer(strings.NewReader(doc))
		defer tz.Release()
		var got []Token
		n := 0
		for {
			tok, err := tz.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				if accepted {
					t.Fatalf("skipping run rejected an accepted document: %v\ninput: %q skip@%d", err, doc, at)
				}
				return // both reject (or the raw scan accepts a superset — fine either way)
			}
			got = append(got, tok)
			if len(got) > len(doc)+16 {
				t.Fatal("runaway skipping tokenizer")
			}
			if tok.Kind == StartElement {
				if n == at {
					if err := tz.SkipSubtree(); err != nil {
						if accepted {
							t.Fatalf("SkipSubtree failed on an accepted document: %v\ninput: %q skip@%d", err, doc, at)
						}
						return
					}
				}
				n++
			}
		}
		if !accepted {
			return // superset acceptance carries no stream obligations
		}
		if len(got) != len(want) {
			t.Fatalf("token counts differ: got %d want %d\ninput: %q skip@%d\ngot:  %+v\nwant: %+v", len(got), len(want), doc, at, got, want)
		}
		for i := range want {
			if !sameToken(got[i], want[i]) {
				t.Fatalf("token %d: got %+v want %+v\ninput: %q skip@%d", i, got[i], want[i], doc, at)
			}
		}
	})
}

// FuzzBytesReaderParity is the cursor-parity target: a slice-backed
// tokenizer (NewTokenizerBytes, borrowed text, in-window fast paths)
// and a reader-backed tokenizer over a deliberately tiny window (every
// construct straddles refill boundaries) must produce identical token
// streams AND identical errors — message and offset — including across
// a SkipSubtree at an arbitrary StartElement, which exercises the raw
// skip scanner's in-window and refill shapes against each other.
func FuzzBytesReaderParity(f *testing.F) {
	seeds := []string{
		`<a/>`,
		`<a b="c">x &amp; y</a>`,
		`<a><b>nested</b><c k="v">t</c></a>`,
		`<aaaaaaaaaaaaaaaaaaaa>x</aaaaaaaaaaaaaaaaaaaa>`,
		`<a><![CDATA[` + strings.Repeat("]", 17) + `]]></a>`,
		`<a q="` + strings.Repeat("v", 12) + `>quoted">t</a>`,
		`<a>` + strings.Repeat("x", 13) + `&amp;&#x3C;done</a>`,
		`<a><b></c></a>`,
		`<a x='1'`,
		"<a>\xff\xfe</a>",
	}
	for _, s := range seeds {
		f.Add(s, uint8(0), uint8(0), false)
		f.Add(s, uint8(3), uint8(1), true)
	}
	f.Fuzz(func(t *testing.T, doc string, sizeSeed, skipAt uint8, keepWS bool) {
		run := func(tz *Tokenizer) ([]Token, error) {
			defer tz.Release()
			tz.KeepWhitespace = keepWS
			var toks []Token
			starts := 0
			for {
				tok, err := tz.Next()
				if err == io.EOF {
					return toks, nil
				}
				if err != nil {
					return toks, err
				}
				toks = append(toks, tok)
				if len(toks) > len(doc)+16 {
					t.Fatal("runaway tokenizer")
				}
				if tok.Kind == StartElement {
					if starts == int(skipAt) {
						if err := tz.SkipSubtree(); err != nil {
							return toks, err
						}
					}
					starts++
				}
			}
		}
		gotB, errB := run(NewTokenizerBytes([]byte(doc)))
		rd := NewTokenizer(strings.NewReader(doc))
		rd.cur.ResetReader(strings.NewReader(doc), 16+int(sizeSeed)%48)
		gotR, errR := run(rd)

		if (errB == nil) != (errR == nil) || (errB != nil && errB.Error() != errR.Error()) {
			t.Fatalf("error parity: bytes=%v reader=%v\ninput: %q skip@%d keepWS=%v", errB, errR, doc, skipAt, keepWS)
		}
		if len(gotB) != len(gotR) {
			t.Fatalf("token counts differ: bytes %d reader %d\ninput: %q skip@%d\nbytes:  %+v\nreader: %+v", len(gotB), len(gotR), doc, skipAt, gotB, gotR)
		}
		for i := range gotB {
			if !sameToken(gotB[i], gotR[i]) {
				t.Fatalf("token %d: bytes %+v reader %+v\ninput: %q skip@%d", i, gotB[i], gotR[i], doc, skipAt)
			}
		}
	})
}

func FuzzTokenizer(f *testing.F) {
	seeds := []string{
		`<a/>`,
		`<a b="c">x &amp; y</a>`,
		`<?xml version="1.0"?><!DOCTYPE a><a><!-- c --><![CDATA[<>]]></a>`,
		`<a><b></a></b>`,
		`&#x41;`,
		`<a`,
		`</a>`,
		"<a>\x00\xff</a>",
		`<a x='1' x="2"/>`,
		// Window-boundary corpus: structural characters placed so they
		// straddle the 16/64-byte refill edges of a small reader window.
		`<aaaaaaaaaaaaaaaaaaaa>x</aaaaaaaaaaaaaaaaaaaa>`,
		`<a>` + strings.Repeat("x", 13) + `&amp;&#x3C;done</a>`,
		`<a><![CDATA[` + strings.Repeat("]", 17) + `]]></a>`,
		`<a q="` + strings.Repeat("v", 12) + `>quoted">t</a>`,
		`<!--` + strings.Repeat("-", 15) + `--><a/>`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		tz := NewTokenizer(strings.NewReader(doc))
		tz.KeepWhitespace = true
		var toks []Token
		for i := 0; ; i++ {
			tok, err := tz.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return // clean rejection
			}
			toks = append(toks, tok)
			if i > len(doc)+16 {
				t.Fatalf("more tokens than input bytes: runaway tokenizer")
			}
		}
		// accepted documents must serialize and re-tokenize cleanly
		var out strings.Builder
		ser := NewSerializer(&out)
		for _, tok := range toks {
			ser.Token(tok)
		}
		if err := ser.Flush(); err != nil {
			t.Fatal(err)
		}
		tz2 := NewTokenizer(strings.NewReader(out.String()))
		tz2.KeepWhitespace = true
		for {
			_, err := tz2.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("serializer output does not re-tokenize: %v\ninput: %q\noutput: %q", err, doc, out.String())
			}
		}
	})
}
