package xmltok

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"sync"
)

// Serializer writes Tokens back out as XML. It is the single output path
// of the engines, so that GCX, the projection-only engine and the DOM
// baseline produce byte-identical results for the differential tests.
type Serializer struct {
	w        *bufio.Writer
	open     []string
	bytes    int64
	err      error
	released bool
}

// serializerPool recycles Serializers and their 64 KiB write buffers
// across executions.
var serializerPool = sync.Pool{
	New: func() any {
		return &Serializer{w: bufio.NewWriterSize(io.Discard, 64<<10)}
	},
}

// NewSerializer returns a Serializer writing to w. Serializers come from
// an internal pool; callers that finish with one may hand its buffer
// back via Release.
func NewSerializer(w io.Writer) *Serializer {
	s := serializerPool.Get().(*Serializer)
	s.w.Reset(w)
	s.open = s.open[:0]
	s.bytes = 0
	s.err = nil
	s.released = false
	return s
}

// Release returns the serializer's buffer to the pool, discarding any
// unflushed output. The serializer must not be used afterwards; counters
// read before Release stay valid. Release is idempotent.
func (s *Serializer) Release() {
	if s.released {
		return
	}
	s.released = true
	s.w.Reset(io.Discard)
	serializerPool.Put(s)
}

// BytesWritten reports the number of bytes emitted so far (pre-flush
// buffering included).
func (s *Serializer) BytesWritten() int64 { return s.bytes }

// Err returns the first write error encountered, if any.
func (s *Serializer) Err() error { return s.err }

// StartElement writes an opening tag with the given attributes.
func (s *Serializer) StartElement(name string, attrs []Attr) {
	s.writeString("<")
	s.writeString(name)
	for _, a := range attrs {
		s.writeString(" ")
		s.writeString(a.Name)
		s.writeString(`="`)
		s.writeEscaped(a.Value, true)
		s.writeString(`"`)
	}
	s.writeString(">")
	s.open = append(s.open, name)
}

// EndElement writes the closing tag for name.
func (s *Serializer) EndElement(name string) {
	s.writeString("</")
	s.writeString(name)
	s.writeString(">")
	if n := len(s.open); n > 0 && s.open[n-1] == name {
		s.open = s.open[:n-1]
	}
}

// Text writes escaped character data.
func (s *Serializer) Text(text string) {
	s.writeEscaped(text, false)
}

// Token writes an arbitrary token.
func (s *Serializer) Token(t Token) {
	switch t.Kind {
	case StartElement:
		s.StartElement(t.Name, t.Attrs)
	case EndElement:
		s.EndElement(t.Name)
	case Text:
		s.Text(t.Text)
	}
}

// Flush writes any buffered output to the underlying writer and reports
// the first error seen on any operation.
func (s *Serializer) Flush() error {
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

func (s *Serializer) writeString(str string) {
	n, err := s.w.WriteString(str)
	s.bytes += int64(n)
	if err != nil && s.err == nil {
		s.err = err
	}
}

func (s *Serializer) writeEscaped(str string, attr bool) {
	last := 0
	for i := 0; i < len(str); i++ {
		var esc string
		switch str[i] {
		case '<':
			esc = "&lt;"
		case '>':
			esc = "&gt;"
		case '&':
			esc = "&amp;"
		case '"':
			if !attr {
				continue
			}
			esc = "&quot;"
		default:
			continue
		}
		s.writeString(str[last:i])
		s.writeString(esc)
		last = i + 1
	}
	s.writeString(str[last:])
}

// EscapeText returns text with the XML character-data escapes applied.
// It is used by components that build strings rather than streams.
func EscapeText(text string) string {
	if !strings.ContainsAny(text, "<>&") {
		return text
	}
	var b strings.Builder
	for i := 0; i < len(text); i++ {
		switch text[i] {
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '&':
			b.WriteString("&amp;")
		default:
			b.WriteByte(text[i])
		}
	}
	return b.String()
}

// FormatStartTag renders a start tag as a string, for diagnostics.
func FormatStartTag(name string, attrs []Attr) string {
	var b strings.Builder
	fmt.Fprintf(&b, "<%s", name)
	for _, a := range attrs {
		fmt.Fprintf(&b, " %s=%q", a.Name, a.Value)
	}
	b.WriteString(">")
	return b.String()
}
