package xmltok

import (
	"bufio"
	"fmt"
	"io"

	"gcx/internal/event"
)

// SkipSubtree fast-forwards the input past the remainder of the
// innermost open element — the StartElement most recently returned by
// Next — landing exactly where full tokenization would land after
// consuming that element's matching EndElement. The subtree's bytes
// are raw-scanned (shared rawScanner machinery, DESIGN.md §7): no
// Token structs are built, no text is decoded, no entity references
// are resolved, no names are interned and no whitespace handling runs.
// Element nesting inside the skipped region is still tracked, so tag
// imbalance and truncated input are reported as SyntaxErrors just as
// full tokenization would report them; attribute internals and entity
// references inside the region are NOT validated (the raw scan accepts
// a superset of the tokenizer dialect — FuzzSkipSubtree pins the
// one-sided parity).
//
// The caller contract is strict: SkipSubtree must be invoked
// immediately after Next returned a StartElement, with no intervening
// Peek. The skipped element's EndElement is consumed silently — it is
// never delivered — and skipped content does not count into
// TokenCount. BytesSkipped, TagsSkipped and SubtreesSkipped report
// what was fast-forwarded.
func (t *Tokenizer) SkipSubtree() error {
	if t.peeked != nil {
		return t.errf("SkipSubtree after Peek")
	}
	if len(t.stack) == 0 {
		return t.errf("SkipSubtree with no open element")
	}
	t.subtreesSkipped++
	t.depth--
	if t.pending != nil {
		// The open element was self-closing: its subtree is empty and
		// its synthesized EndElement is the pending token. Consume it
		// in place, mirroring read()'s pending branch.
		t.tagsSkipped++ // the undelivered EndElement
		t.pending = nil
		t.stack = t.stack[:len(t.stack)-1]
		if len(t.stack) == 0 {
			t.started = true
		}
		return nil
	}

	rs := rawScanner{r: t.r, off: t.off, tag: t.skipTag[:0]}
	startOff := t.off
	// Nesting accounting for the skipped region: names of elements
	// opened inside the subtree, stored back to back (no allocations,
	// no interning). The skipped element itself sits below them on
	// t.stack.
	nameBuf := t.skipNameBuf[:0]
	nameLen := t.skipNameLen[:0]
	err := t.skipScan(&rs, &nameBuf, &nameLen)
	// Hand scratch growth back to the tokenizer so repeated skips
	// amortize.
	t.skipTag = rs.tag[:0]
	t.skipNameBuf = nameBuf[:0]
	t.skipNameLen = nameLen[:0]
	t.off = rs.off
	if rs.ioErr != nil && t.ioErr == nil {
		t.ioErr = rs.ioErr
	}
	t.bytesSkipped += rs.off - startOff
	if err != nil {
		return err
	}
	t.stack = t.stack[:len(t.stack)-1]
	if len(t.stack) == 0 {
		t.started = true
	}
	return nil
}

// skipScan is the raw-scan loop of SkipSubtree: consume markup and
// character data until the end tag matching the innermost open element
// has been consumed.
func (t *Tokenizer) skipScan(rs *rawScanner, nameBuf *[]byte, nameLen *[]int) error {
	for {
		if t.ctxDone != nil {
			select {
			case <-t.ctxDone:
				return t.ctx.Err()
			default:
			}
		}
		// Character data up to the next '<' is skipped wholesale.
	text:
		for {
			data, err := rs.r.ReadSlice('<')
			rs.off += int64(len(data))
			switch err {
			case nil:
				break text
			case bufio.ErrBufferFull:
				// keep draining
			case io.EOF:
				return rs.errf("unexpected end of input inside <%s>", t.skipInnermost(*nameBuf, *nameLen))
			default:
				return fmt.Errorf("xmltok: read error at byte %d: %w", rs.off, err)
			}
		}
		b, err := rs.readByte()
		if err != nil {
			return rs.errf("unexpected end of input in markup")
		}
		switch b {
		case '?':
			if err := rs.throughPattern("?>", "", nil); err != nil {
				return err
			}
		case '!':
			if err := rs.bang(nil); err != nil {
				return err
			}
		case '/':
			done, err := t.skipEndTag(rs, nameBuf, nameLen)
			if err != nil {
				return err
			}
			if done {
				return nil
			}
		default:
			rs.unread()
			if err := t.skipStartTag(rs, nameBuf, nameLen); err != nil {
				return err
			}
		}
	}
}

// skipEndTag consumes one end tag inside the skipped region. It returns
// done=true when the tag closes the skipped element itself.
func (t *Tokenizer) skipEndTag(rs *rawScanner, nameBuf *[]byte, nameLen *[]int) (bool, error) {
	body, err := rs.readTagBody()
	if err != nil {
		return false, err
	}
	name, err := rs.tagName(body)
	if err != nil {
		return false, err
	}
	if len(name) != len(body) && !allWhitespace(body[len(name):]) {
		return false, rs.errf("malformed end tag </%s", name)
	}
	t.tagsSkipped++
	if n := len(*nameLen); n > 0 {
		// closes an element opened inside the skip
		ln := (*nameLen)[n-1]
		top := (*nameBuf)[len(*nameBuf)-ln:]
		if string(top) != string(name) {
			return false, rs.errf("mismatched </%s>, expected </%s>", name, top)
		}
		*nameBuf = (*nameBuf)[:len(*nameBuf)-ln]
		*nameLen = (*nameLen)[:n-1]
		return false, nil
	}
	// closes the skipped element: must match the tokenizer stack top
	top := t.stack[len(t.stack)-1]
	if top != string(name) {
		return false, rs.errf("mismatched </%s>, expected </%s>", name, top)
	}
	return true, nil
}

// skipStartTag consumes one start tag inside the skipped region.
func (t *Tokenizer) skipStartTag(rs *rawScanner, nameBuf *[]byte, nameLen *[]int) error {
	body, err := rs.readTagBody()
	if err != nil {
		return err
	}
	selfClose := len(body) > 0 && body[len(body)-1] == '/'
	nameSrc := body
	if selfClose {
		nameSrc = body[:len(body)-1]
	}
	name, err := rs.tagName(nameSrc)
	if err != nil {
		return err
	}
	if selfClose {
		t.tagsSkipped += 2 // StartElement + synthesized EndElement
		return nil
	}
	t.tagsSkipped++
	*nameBuf = append(*nameBuf, name...)
	*nameLen = append(*nameLen, len(name))
	return nil
}

// skipInnermost names the innermost open element for error messages:
// the deepest element opened inside the skip, or the skipped element
// itself.
func (t *Tokenizer) skipInnermost(nameBuf []byte, nameLen []int) string {
	if n := len(nameLen); n > 0 {
		return string(nameBuf[len(nameBuf)-nameLen[n-1]:])
	}
	return t.stack[len(t.stack)-1]
}

// BytesSkipped reports how many input bytes SkipSubtree fast-forwarded
// past without tokenization.
func (t *Tokenizer) BytesSkipped() int64 { return t.bytesSkipped }

// TagsSkipped reports how many element tokens (start and end tags,
// self-closing tags counting as two) were inside skipped subtrees — a
// lower bound on the tokens saved, since skipped text runs are not
// counted.
func (t *Tokenizer) TagsSkipped() int64 { return t.tagsSkipped }

// SubtreesSkipped reports how many SkipSubtree calls completed or
// started (including empty self-closing subtrees).
func (t *Tokenizer) SubtreesSkipped() int64 { return t.subtreesSkipped }

// SkipStats bundles the skip counters as the event.Source contract
// reports them.
func (t *Tokenizer) SkipStats() event.SkipStats {
	return event.SkipStats{
		BytesSkipped:    t.bytesSkipped,
		TagsSkipped:     t.tagsSkipped,
		SubtreesSkipped: t.subtreesSkipped,
	}
}
