package xmltok

import (
	"bytes"

	"gcx/internal/event"
)

// SkipSubtree fast-forwards the input past the remainder of the
// innermost open element — the StartElement most recently returned by
// Next — landing exactly where full tokenization would land after
// consuming that element's matching EndElement. The subtree's bytes
// are raw-scanned (shared rawScanner machinery, DESIGN.md §7): no
// Token structs are built, no text is decoded, no entity references
// are resolved, no names are interned and no whitespace handling runs;
// character data is consumed by whole-window vectorized scans for '<'.
// Element nesting inside the skipped region is still tracked, so tag
// imbalance and truncated input are reported as SyntaxErrors just as
// full tokenization would report them; attribute internals and entity
// references inside the region are NOT validated (the raw scan accepts
// a superset of the tokenizer dialect — FuzzSkipSubtree pins the
// one-sided parity).
//
// The caller contract is strict: SkipSubtree must be invoked
// immediately after Next returned a StartElement, with no intervening
// Peek. The skipped element's EndElement is consumed silently — it is
// never delivered — and skipped content does not count into
// TokenCount. BytesSkipped, TagsSkipped and SubtreesSkipped report
// what was fast-forwarded.
func (t *Tokenizer) SkipSubtree() error {
	if t.peeked != nil {
		return t.errf("SkipSubtree after Peek")
	}
	if len(t.stack) == 0 {
		return t.errf("SkipSubtree with no open element")
	}
	t.subtreesSkipped++
	t.depth--
	if t.pending != nil {
		// The open element was self-closing: its subtree is empty and
		// its synthesized EndElement is the pending token. Consume it
		// in place, mirroring read()'s pending branch.
		t.tagsSkipped++ // the undelivered EndElement
		t.pending = nil
		t.stack = t.stack[:len(t.stack)-1]
		if len(t.stack) == 0 {
			t.started = true
		}
		return nil
	}

	rs := rawScanner{cur: &t.cur, tag: t.skipTag[:0]}
	startOff := t.cur.Offset()
	// Nesting accounting for the skipped region: names of elements
	// opened inside the subtree, stored back to back (no allocations,
	// no interning). The skipped element itself sits below them on
	// t.stack.
	nameBuf := t.skipNameBuf[:0]
	nameLen := t.skipNameLen[:0]
	err := t.skipScan(&rs, &nameBuf, &nameLen)
	// Hand scratch growth back to the tokenizer so repeated skips
	// amortize.
	t.skipTag = rs.tag[:0]
	t.skipNameBuf = nameBuf[:0]
	t.skipNameLen = nameLen[:0]
	t.bytesSkipped += t.cur.Offset() - startOff
	if err != nil {
		return err
	}
	t.stack = t.stack[:len(t.stack)-1]
	if len(t.stack) == 0 {
		t.started = true
	}
	return nil
}

// skipScan is the raw-scan loop of SkipSubtree: consume markup and
// character data until the end tag matching the innermost open element
// has been consumed.
//
// The loop is organized as a window-local fast path: plain start/end
// tags lying entirely inside the current window — the overwhelming
// majority in dense markup — are parsed with direct index arithmetic
// over one []byte, no cursor round-trips, which is what carries a raw
// skip past 1 GB/s on the slice backing. Anything irregular (PIs,
// comments, CDATA, a quoted '>', a tag straddling a refill boundary,
// a malformed name) syncs the cursor and takes the general
// per-construct path (skipDispatch), so both shapes produce identical
// errors at identical offsets.
func (t *Tokenizer) skipScan(rs *rawScanner, nameBuf *[]byte, nameLen *[]int) error {
	// The name stacks live in locals so the hot loop keeps their slice
	// headers in registers; sync writes them back at every point where
	// the general path (or the caller) observes them.
	nb, nl := *nameBuf, *nameLen
	sync := func() { *nameBuf, *nameLen = nb, nl }
	for {
		if t.ctxDone != nil {
			select {
			case <-t.ctxDone:
				sync()
				return t.ctx.Err()
			default:
			}
		}
		if err := rs.cur.Fill(); err != nil {
			// EOF mid-text (or a read error, which errf reports as
			// itself) while the skipped element is still open.
			sync()
			return rs.errf("unexpected end of input inside <%s>", t.skipInnermost(nb, nl))
		}
		w := rs.cur.Window()
		// Invariant: the cursor stands at w[0]; pos is the scan point
		// inside w. The happy path touches no cursor state at all — the
		// cursor is synced (Advance) only on the exits: slow fallback,
		// error, done, window exhausted.
		pos := 0
		for pos < len(w) {
			if w[pos] != '<' {
				// Character data is consumed wholesale by one vectorized
				// scan, never byte at a time.
				i := bytes.IndexByte(w[pos:], '<')
				if i < 0 {
					pos = len(w)
					break // text continues past the window: refill
				}
				pos += i
			}
			tagStart := pos + 1 // just past '<'
			nameAt := tagStart
			isEnd := false
			if tagStart < len(w) && w[tagStart] == '/' {
				isEnd = true
				nameAt = tagStart + 1
				// Fast accept: in well-formed input the end tag is
				// exactly "</" + the innermost open name + ">", so one
				// bounded memcmp against the expected name settles it —
				// no byte classification, no terminator search. Any
				// disagreement (extra whitespace, mismatch, boundary)
				// falls through to the careful parse below.
				if m := len(nl); m > 0 {
					ln := nl[m-1]
					if e := nameAt + ln; e < len(w) && w[e] == '>' &&
						string(nb[len(nb)-ln:]) == string(w[nameAt:e]) {
						t.tagsSkipped++
						nb = nb[:len(nb)-ln]
						nl = nl[:m-1]
						pos = e + 1
						continue
					}
				} else {
					top := t.stack[len(t.stack)-1]
					if e := nameAt + len(top); e < len(w) && w[e] == '>' &&
						top == string(w[nameAt:e]) {
						// closes the skipped element itself
						t.tagsSkipped++
						rs.cur.Advance(e + 1)
						sync()
						return nil
					}
				}
			}
			n := scanName(w[nameAt:])
			end := nameAt + n // terminator candidate
			var body []byte
			ok := n > 0 && end < len(w)
			if ok {
				switch c := w[end]; {
				case c == '>':
					body = w[nameAt:end]
					end++
				case c == ' ' || c == '\t' || c == '\n' || c == '\r':
					// Attributes (or trailing junk): the tag runs to the
					// first '>' not inside an attribute value. An open
					// quote at that '>' means the real terminator lies
					// further on — rare enough to punt to the slow path.
					gt := bytes.IndexByte(w[end:], '>')
					if gt < 0 || scanQuotes(0, w[end:end+gt]) != 0 {
						ok = false
					} else {
						body = w[nameAt : end+gt]
						end += gt + 1
					}
				case c == '/' && !isEnd && end+1 < len(w) && w[end+1] == '>':
					body = w[nameAt : end+1] // keep the '/': marks self-closing
					end += 2
				default:
					ok = false
				}
			}
			if !ok {
				// Irregular construct: hand the cursor to the general
				// path with the '<' consumed, then resync.
				rs.cur.Advance(tagStart)
				sync()
				done, err := t.skipDispatch(rs, nameBuf, nameLen)
				if err != nil {
					return err
				}
				if done {
					return nil
				}
				nb, nl = *nameBuf, *nameLen
				w, pos = rs.cur.Window(), 0
				continue
			}
			// The whole tag sits inside the window. On error/done exits
			// the cursor is advanced through the tag first so offsets
			// match the general path, which reports after the closing
			// '>'.
			if isEnd {
				name := body[:n]
				if len(body) > n && !allWhitespace(body[n:]) {
					rs.cur.Advance(end)
					sync()
					return rs.errf("malformed end tag </%s", name)
				}
				t.tagsSkipped++
				if m := len(nl); m > 0 {
					// closes an element opened inside the skip
					ln := nl[m-1]
					top := nb[len(nb)-ln:]
					if string(top) != string(name) {
						rs.cur.Advance(end)
						sync()
						return rs.errf("mismatched </%s>, expected </%s>", name, top)
					}
					nb = nb[:len(nb)-ln]
					nl = nl[:m-1]
				} else {
					// closes the skipped element itself
					rs.cur.Advance(end)
					sync()
					top := t.stack[len(t.stack)-1]
					if top != string(name) {
						return rs.errf("mismatched </%s>, expected </%s>", name, top)
					}
					return nil
				}
			} else if body[len(body)-1] == '/' {
				t.tagsSkipped += 2 // StartElement + synthesized EndElement
			} else {
				t.tagsSkipped++
				nb = append(nb, body[:n]...)
				nl = append(nl, n)
			}
			pos = end
		}
		rs.cur.Advance(pos) // consume what the window pass covered
	}
}

// skipDispatch consumes one markup construct with the cursor standing
// just past its '<': the slow-path complement of skipScan's in-window
// tag parsing. done=true when the construct was the end tag closing the
// skipped element.
func (t *Tokenizer) skipDispatch(rs *rawScanner, nameBuf *[]byte, nameLen *[]int) (bool, error) {
	b, err := rs.cur.Byte()
	if err != nil {
		return false, rs.errf("unexpected end of input in markup")
	}
	switch b {
	case '?':
		return false, rs.throughPattern("?>", "", nil)
	case '!':
		return false, rs.bang(nil)
	case '/':
		return t.skipEndTag(rs, nameBuf, nameLen)
	default:
		rs.cur.Unread()
		return false, t.skipStartTag(rs, nameBuf, nameLen)
	}
}

// scanName returns the length of the XML name prefix of b (0 if b does
// not start with a name).
func scanName(b []byte) int {
	if len(b) == 0 || !nameStartByte[b[0]] {
		return 0
	}
	i := 1
	for i < len(b) && namePartByte[b[i]] {
		i++
	}
	return i
}

// skipEndTag consumes one end tag inside the skipped region. It returns
// done=true when the tag closes the skipped element itself.
func (t *Tokenizer) skipEndTag(rs *rawScanner, nameBuf *[]byte, nameLen *[]int) (bool, error) {
	body, err := rs.readTagBody()
	if err != nil {
		return false, err
	}
	name, err := rs.tagName(body)
	if err != nil {
		return false, err
	}
	if len(name) != len(body) && !allWhitespace(body[len(name):]) {
		return false, rs.errf("malformed end tag </%s", name)
	}
	t.tagsSkipped++
	if n := len(*nameLen); n > 0 {
		// closes an element opened inside the skip
		ln := (*nameLen)[n-1]
		top := (*nameBuf)[len(*nameBuf)-ln:]
		if string(top) != string(name) {
			return false, rs.errf("mismatched </%s>, expected </%s>", name, top)
		}
		*nameBuf = (*nameBuf)[:len(*nameBuf)-ln]
		*nameLen = (*nameLen)[:n-1]
		return false, nil
	}
	// closes the skipped element: must match the tokenizer stack top
	top := t.stack[len(t.stack)-1]
	if top != string(name) {
		return false, rs.errf("mismatched </%s>, expected </%s>", name, top)
	}
	return true, nil
}

// skipStartTag consumes one start tag inside the skipped region.
func (t *Tokenizer) skipStartTag(rs *rawScanner, nameBuf *[]byte, nameLen *[]int) error {
	body, err := rs.readTagBody()
	if err != nil {
		return err
	}
	selfClose := len(body) > 0 && body[len(body)-1] == '/'
	nameSrc := body
	if selfClose {
		nameSrc = body[:len(body)-1]
	}
	name, err := rs.tagName(nameSrc)
	if err != nil {
		return err
	}
	if selfClose {
		t.tagsSkipped += 2 // StartElement + synthesized EndElement
		return nil
	}
	t.tagsSkipped++
	*nameBuf = append(*nameBuf, name...)
	*nameLen = append(*nameLen, len(name))
	return nil
}

// skipInnermost names the innermost open element for error messages:
// the deepest element opened inside the skip, or the skipped element
// itself.
func (t *Tokenizer) skipInnermost(nameBuf []byte, nameLen []int) string {
	if n := len(nameLen); n > 0 {
		return string(nameBuf[len(nameBuf)-nameLen[n-1]:])
	}
	return t.stack[len(t.stack)-1]
}

// BytesSkipped reports how many input bytes SkipSubtree fast-forwarded
// past without tokenization.
func (t *Tokenizer) BytesSkipped() int64 { return t.bytesSkipped }

// TagsSkipped reports how many element tokens (start and end tags,
// self-closing tags counting as two) were inside skipped subtrees — a
// lower bound on the tokens saved, since skipped text runs are not
// counted.
func (t *Tokenizer) TagsSkipped() int64 { return t.tagsSkipped }

// SubtreesSkipped reports how many SkipSubtree calls completed or
// started (including empty self-closing subtrees).
func (t *Tokenizer) SubtreesSkipped() int64 { return t.subtreesSkipped }

// SkipStats bundles the skip counters as the event.Source contract
// reports them.
func (t *Tokenizer) SkipStats() event.SkipStats {
	return event.SkipStats{
		BytesSkipped:    t.bytesSkipped,
		TagsSkipped:     t.tagsSkipped,
		SubtreesSkipped: t.subtreesSkipped,
	}
}
