// Package xmltok implements a streaming XML tokenizer and serializer.
//
// It is the XML front end of the GCX reproduction: the Tokenizer
// implements event.Source and the Serializer implements event.Sink, so
// the stream preprojector (internal/projection), the DOM baseline
// (internal/dom) and the XMark generator round-trips all consume or
// produce the format-neutral event stream of internal/event. The
// tokenizer works strictly one token at a time with a single token of
// lookahead, matching the paper's requirement that projection "can be
// done on-the-fly, with a lookahead of just one token".
//
// The dialect is the data-oriented subset of XML that the GCX fragment
// needs: elements, attributes, character data, CDATA sections, character
// and predefined entity references. Comments, processing instructions,
// DOCTYPE declarations and the XML declaration are skipped. Namespaces
// are not interpreted; qualified names are treated as plain names, as in
// the original GCX.
package xmltok

import (
	"fmt"

	"gcx/internal/event"
)

// The token vocabulary is the format-neutral one of internal/event;
// the aliases keep this package's historical names working and make
// the Tokenizer satisfy event.Source structurally.

// Kind identifies the kind of a Token.
type Kind = event.Kind

const (
	// StartElement is an opening tag. Self-closing tags (<a/>) produce a
	// StartElement immediately followed by an EndElement, so that the
	// paper's token counting (82 tags for 41 nodes) is preserved.
	StartElement = event.StartElement
	// EndElement is a closing tag.
	EndElement = event.EndElement
	// Text is character data (entity references already resolved).
	Text = event.Text
)

// Attr is a single attribute of an element.
type Attr = event.Attr

// Token is one event of the XML stream.
type Token = event.Token

// SyntaxError describes a malformed-input error with its byte offset.
type SyntaxError struct {
	Offset int64
	Msg    string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xmltok: syntax error at byte %d: %s", e.Offset, e.Msg)
}
