// Package xmltok implements a streaming XML tokenizer and serializer.
//
// It is the lowest substrate of the GCX reproduction: the stream
// preprojector (internal/projection), the DOM baseline (internal/dom) and
// the XMark generator round-trips all consume or produce this token
// stream. The tokenizer works strictly one token at a time with a single
// token of lookahead, matching the paper's requirement that projection
// "can be done on-the-fly, with a lookahead of just one token".
//
// The dialect is the data-oriented subset of XML that the GCX fragment
// needs: elements, attributes, character data, CDATA sections, character
// and predefined entity references. Comments, processing instructions,
// DOCTYPE declarations and the XML declaration are skipped. Namespaces
// are not interpreted; qualified names are treated as plain names, as in
// the original GCX.
package xmltok

import "fmt"

// Kind identifies the kind of a Token.
type Kind uint8

const (
	// StartElement is an opening tag. Self-closing tags (<a/>) produce a
	// StartElement immediately followed by an EndElement, so that the
	// paper's token counting (82 tags for 41 nodes) is preserved.
	StartElement Kind = iota
	// EndElement is a closing tag.
	EndElement
	// Text is character data (entity references already resolved).
	Text
)

func (k Kind) String() string {
	switch k {
	case StartElement:
		return "StartElement"
	case EndElement:
		return "EndElement"
	case Text:
		return "Text"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Attr is a single attribute of an element.
type Attr struct {
	Name  string
	Value string
}

// Token is one event of the XML stream.
type Token struct {
	Kind Kind
	// Name is the element name for StartElement and EndElement tokens.
	Name string
	// Text is the character data for Text tokens.
	Text string
	// Attrs holds the attributes of a StartElement token, in document
	// order. It is nil for all other kinds.
	Attrs []Attr
}

// Attr returns the value of the named attribute and whether it exists.
func (t *Token) Attr(name string) (string, bool) {
	for _, a := range t.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// SyntaxError describes a malformed-input error with its byte offset.
type SyntaxError struct {
	Offset int64
	Msg    string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xmltok: syntax error at byte %d: %s", e.Offset, e.Msg)
}
