package xmltok

import (
	"context"
	"io"
	"strings"
	"testing"
)

func collectChunks(t *testing.T, doc string, path []SplitStep, target int) []Chunk {
	t.Helper()
	sp := NewSplitter(strings.NewReader(doc), path)
	sp.SetTargetBytes(target)
	var chunks []Chunk
	for {
		c, err := sp.Next()
		if err == io.EOF {
			return chunks
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		chunks = append(chunks, c)
	}
}

func personPath() []SplitStep {
	return []SplitStep{{Name: "site"}, {Name: "people"}, {Name: "person"}}
}

func TestSplitterBasic(t *testing.T) {
	doc := `<site><regions><item>x</item></regions><people>` +
		`<person id="p0"><name>A</name></person>` +
		`<person id="p1"><name>B</name></person>` +
		`</people></site>`
	chunks := collectChunks(t, doc, personPath(), 0)
	if len(chunks) != 1 {
		t.Fatalf("chunks = %d, want 1", len(chunks))
	}
	c := chunks[0]
	if c.Seq != 0 || c.Records != 2 {
		t.Fatalf("chunk = seq %d records %d", c.Seq, c.Records)
	}
	want := `<site><people>` +
		`<person id="p0"><name>A</name></person>` +
		`<person id="p1"><name>B</name></person>` +
		`</people></site>`
	if string(c.Data) != want {
		t.Fatalf("data = %q\nwant   %q", c.Data, want)
	}
}

func TestSplitterChunkTarget(t *testing.T) {
	var b strings.Builder
	b.WriteString("<site><people>")
	for i := 0; i < 10; i++ {
		b.WriteString(`<person><name>somebody with a longish name</name></person>`)
	}
	b.WriteString("</people></site>")
	chunks := collectChunks(t, b.String(), personPath(), 1)
	if len(chunks) != 10 {
		t.Fatalf("chunks = %d, want 10 (one per record at tiny target)", len(chunks))
	}
	total := 0
	for i, c := range chunks {
		if c.Seq != i {
			t.Fatalf("chunk %d has seq %d", i, c.Seq)
		}
		if c.Records != 1 {
			t.Fatalf("chunk %d has %d records", i, c.Records)
		}
		if !strings.HasPrefix(string(c.Data), "<site><people><person>") ||
			!strings.HasSuffix(string(c.Data), "</person></people></site>") {
			t.Fatalf("chunk %d not re-wrapped: %q", i, c.Data)
		}
		total += c.Records
	}
	if total != 10 {
		t.Fatalf("records = %d", total)
	}
}

func TestSplitterWildcardAncestorChange(t *testing.T) {
	doc := `<site><regions>` +
		`<africa><item>a1</item><item>a2</item></africa>` +
		`<asia><item>b1</item></asia>` +
		`</regions></site>`
	path := []SplitStep{{Name: "site"}, {Name: "regions"}, {Wildcard: true}, {Name: "item"}}
	chunks := collectChunks(t, doc, path, 0)
	// Records under different continents must not share a chunk even
	// below the size target.
	if len(chunks) != 2 {
		t.Fatalf("chunks = %d, want 2 (one per continent)", len(chunks))
	}
	if want := `<site><regions><africa><item>a1</item><item>a2</item></africa></regions></site>`; string(chunks[0].Data) != want {
		t.Fatalf("chunk 0 = %q", chunks[0].Data)
	}
	if want := `<site><regions><asia><item>b1</item></asia></regions></site>`; string(chunks[1].Data) != want {
		t.Fatalf("chunk 1 = %q", chunks[1].Data)
	}
}

func TestSplitterSelfClosing(t *testing.T) {
	doc := `<site><people/><people><person/><person a="1"/></people></site>`
	chunks := collectChunks(t, doc, personPath(), 0)
	if len(chunks) != 1 {
		t.Fatalf("chunks = %d, want 1", len(chunks))
	}
	want := `<site><people><person/><person a="1"/></people></site>`
	if string(chunks[0].Data) != want || chunks[0].Records != 2 {
		t.Fatalf("chunk = %q records %d", chunks[0].Data, chunks[0].Records)
	}
}

func TestSplitterRootRecords(t *testing.T) {
	doc := `<bib><book><title>T</title></book></bib>`
	chunks := collectChunks(t, doc, []SplitStep{{Name: "bib"}}, 0)
	if len(chunks) != 1 || string(chunks[0].Data) != doc || chunks[0].Records != 1 {
		t.Fatalf("chunks = %+v", chunks)
	}
}

func TestSplitterIgnorableMarkup(t *testing.T) {
	doc := `<?xml version="1.0"?><!DOCTYPE site><site><!-- head -->` +
		`<people><!-- gap --><person><!-- inner --><name><![CDATA[x<y]]></name></person></people>` +
		`</site>`
	chunks := collectChunks(t, doc, personPath(), 0)
	if len(chunks) != 1 {
		t.Fatalf("chunks = %d, want 1", len(chunks))
	}
	// Markup inside the record is preserved verbatim; markup outside is
	// dropped with the rest of the non-record content.
	want := `<site><people><person><!-- inner --><name><![CDATA[x<y]]></name></person></people></site>`
	if string(chunks[0].Data) != want {
		t.Fatalf("chunk = %q", chunks[0].Data)
	}
}

// TestSplitterEntityWhitespaceOutsideRoot: the tokenizer resolves
// character references before its whitespace-only test, so "&#32;"
// around the document element is accepted; the splitter must agree.
func TestSplitterEntityWhitespaceOutsideRoot(t *testing.T) {
	doc := "&#32;\n<site><people><person><name>A</name></person></people></site>&#x20;&#9; "
	chunks := collectChunks(t, doc, personPath(), 0)
	if len(chunks) != 1 {
		t.Fatalf("chunks = %d, want 1", len(chunks))
	}
}

// TestSplitterRepeatedPrefixTerminators: CDATA/comment terminators
// preceded by their own first bytes ("]]]>", "--->") need the KMP
// fallback in patAdvance — a naive reset-on-mismatch scans past them.
func TestSplitterRepeatedPrefixTerminators(t *testing.T) {
	doc := `<site><people><person><name><![CDATA[x]]]></name><!-- dash ---></person></people></site>`
	chunks := collectChunks(t, doc, personPath(), 0)
	if len(chunks) != 1 {
		t.Fatalf("chunks = %d, want 1", len(chunks))
	}
	want := `<site><people><person><name><![CDATA[x]]]></name><!-- dash ---></person></people></site>`
	if string(chunks[0].Data) != want {
		t.Fatalf("chunk = %q", chunks[0].Data)
	}
}

func TestSplitterAttributeEdgeCases(t *testing.T) {
	doc := `<site><people><person note="a>b" quip='it"s <fine>'><name>A</name></person></people></site>`
	chunks := collectChunks(t, doc, personPath(), 0)
	if len(chunks) != 1 {
		t.Fatalf("chunks = %d, want 1", len(chunks))
	}
	if !strings.Contains(string(chunks[0].Data), `note="a>b" quip='it"s <fine>'`) {
		t.Fatalf("attributes mangled: %q", chunks[0].Data)
	}
}

func TestSplitterNoRecords(t *testing.T) {
	for _, doc := range []string{
		``,
		`<other><person/></other>`,
		`<site><regions/></site>`,
	} {
		chunks := collectChunks(t, doc, personPath(), 0)
		if len(chunks) != 0 {
			t.Fatalf("doc %q: chunks = %d, want 0", doc, len(chunks))
		}
	}
}

func TestSplitterMalformed(t *testing.T) {
	for _, doc := range []string{
		`<site><people><person></people></site>`, // mismatched end tag
		`<site><people>`,                         // EOF inside element
		`<site></site><site/>`,                   // content after document element
		`junk<site/>`,                            // character data outside root
		`<site></other>`,                         // wrong close
	} {
		sp := NewSplitter(strings.NewReader(doc), personPath())
		var err error
		for err == nil {
			_, err = sp.Next()
		}
		if err == io.EOF {
			t.Fatalf("doc %q: expected syntax error, got clean EOF", doc)
		}
		if _, ok := err.(*SyntaxError); !ok {
			t.Fatalf("doc %q: err = %v, want *SyntaxError", doc, err)
		}
	}
}

func TestSplitterContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sp := NewSplitter(strings.NewReader(`<site><people><person/></people></site>`), personPath())
	sp.SetContext(ctx)
	if _, err := sp.Next(); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSplitterTokenEquivalence is the core correctness property: the
// record tokens seen through the chunks are exactly the record tokens
// of the original document.
func TestSplitterTokenEquivalence(t *testing.T) {
	doc := `<site><a>noise</a><people>skip<person id="p0">` +
		`<name>A &amp; B</name><em/>tail</person>between<person><x><y>deep</y></x></person>` +
		`</people><z/></site>`
	path := personPath()
	want := recordTokens(t, strings.NewReader(doc), path)
	var got []Token
	for _, c := range collectChunks(t, doc, path, 1) {
		got = append(got, recordTokens(t, strings.NewReader(string(c.Data)), path)...)
	}
	if len(want) == 0 {
		t.Fatal("no record tokens in fixture")
	}
	if len(got) != len(want) {
		t.Fatalf("token counts differ: got %d want %d", len(got), len(want))
	}
	for i := range want {
		if !sameToken(got[i], want[i]) {
			t.Fatalf("token %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

// recordTokens tokenizes r and collects the tokens of every subtree
// rooted at the given child-axis path.
func recordTokens(t *testing.T, r io.Reader, path []SplitStep) []Token {
	t.Helper()
	tz := NewTokenizer(r)
	defer tz.Release()
	var out []Token
	var stack []string
	match := 0
	inRecord := 0
	for {
		tok, err := tz.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("tokenize: %v", err)
		}
		switch tok.Kind {
		case StartElement:
			d := len(stack)
			if inRecord == 0 && match == d && d < len(path) &&
				(path[d].Wildcard || path[d].Name == tok.Name) {
				match = d + 1
				if match == len(path) {
					inRecord = 1
					out = append(out, tok)
					stack = append(stack, tok.Name)
					continue
				}
			}
			if inRecord > 0 {
				out = append(out, tok)
			}
			stack = append(stack, tok.Name)
		case EndElement:
			if inRecord > 0 {
				out = append(out, tok)
				if len(stack) == len(path) {
					inRecord = 0
				}
			}
			stack = stack[:len(stack)-1]
			if match > len(stack) {
				match = len(stack)
			}
		case Text:
			if inRecord > 0 {
				out = append(out, tok)
			}
		}
	}
}

func sameToken(a, b Token) bool {
	if a.Kind != b.Kind || a.Name != b.Name || a.Text != b.Text || len(a.Attrs) != len(b.Attrs) {
		return false
	}
	for i := range a.Attrs {
		if a.Attrs[i] != b.Attrs[i] {
			return false
		}
	}
	return true
}
