package cursor

import (
	"bytes"
	"testing"
)

// FuzzCursor drives a slice-backed cursor and a reader-backed cursor
// (with a deliberately tiny window, so refill boundaries land inside
// every construct) over the same input through an arbitrary operation
// sequence: both must return identical bytes, identical errors and
// identical offsets at every step. This is the parity the tokenizers'
// single-code-path design rests on (DESIGN.md §12): everything the
// []byte fast path may observe, the refilling path observes too.
func FuzzCursor(f *testing.F) {
	f.Add([]byte("<a>hello world</a>"), []byte{0, 1, 2, 3, 4, 5}, uint8(0))
	f.Add([]byte("0123456789abcdefghijklmnopqrstuvwxyz"), []byte{1, '<', 1, '>', 0, 0, 3, 3}, uint8(1))
	f.Add([]byte(""), []byte{0, 2, 3}, uint8(7))
	// Window-boundary seeds: the delimiter sits exactly at/around the
	// 16-byte minimum window edge.
	f.Add([]byte("aaaaaaaaaaaaaaa<b"), []byte{1, '<', 0, 0}, uint8(0))
	f.Add([]byte("aaaaaaaaaaaaaaaa<b"), []byte{1, '<', 4, 0}, uint8(0))
	f.Fuzz(func(t *testing.T, data, ops []byte, sizeSeed uint8) {
		size := minSize + int(sizeSeed)%48
		a := NewBytes(data)
		b := NewReader(bytes.NewReader(data), size)
		sameErr := func(e1, e2 error) bool {
			if (e1 == nil) != (e2 == nil) {
				return false
			}
			return e1 == nil || e1.Error() == e2.Error()
		}
		canUnread := false
		for i, op := range ops {
			switch op % 6 {
			case 0: // Byte
				b1, e1 := a.Byte()
				b2, e2 := b.Byte()
				if b1 != b2 || !sameErr(e1, e2) {
					t.Fatalf("op %d Byte: bytes %q vs %q, errs %v vs %v", i, b1, b2, e1, e2)
				}
				canUnread = e1 == nil
			case 1: // SkipPast (delimiter = next op byte, consumed blind)
				n1, e1 := a.SkipPast(op)
				n2, e2 := b.SkipPast(op)
				if n1 != n2 || !sameErr(e1, e2) {
					t.Fatalf("op %d SkipPast(%q): n %d vs %d, errs %v vs %v", i, op, n1, n2, e1, e2)
				}
				canUnread = false
			case 2: // Peek (small lookahead, the tokenizers' maximum is 2)
				n := int(op%3) + 1
				p1, e1 := a.Peek(n)
				p2, e2 := b.Peek(n)
				if !bytes.Equal(p1, p2) || !sameErr(e1, e2) {
					t.Fatalf("op %d Peek(%d): %q vs %q, errs %v vs %v", i, n, p1, p2, e1, e2)
				}
				canUnread = false
			case 3: // Fill + Window prefix + Advance(1)
				e1 := a.Fill()
				e2 := b.Fill()
				if !sameErr(e1, e2) {
					t.Fatalf("op %d Fill: errs %v vs %v", i, e1, e2)
				}
				if e1 == nil {
					w1, w2 := a.Window(), b.Window()
					m := min(len(w1), len(w2))
					if m == 0 || !bytes.Equal(w1[:m], w2[:m]) {
						t.Fatalf("op %d Window prefix mismatch: %q vs %q", i, w1, w2)
					}
					a.Advance(1)
					b.Advance(1)
					canUnread = true
				}
			case 4: // Unread (valid only right after a consuming step)
				if canUnread {
					a.Unread()
					b.Unread()
					canUnread = false
				}
			case 5: // Fixed-path Borrow vs copy agreement on the next byte
				if a.Fill() == nil {
					w := a.Window()
					if Borrow(w[:1]) != string(w[:1]) {
						t.Fatalf("op %d Borrow mismatch", i)
					}
				}
				canUnread = false
			}
			if a.Offset() != b.Offset() {
				t.Fatalf("op %d: offsets diverged: %d vs %d", i, a.Offset(), b.Offset())
			}
		}
	})
}
