// Package cursor implements the block-oriented input abstraction the
// byte-path front ends (internal/xmltok, internal/jsontok) scan through
// (DESIGN.md §12). A Cursor presents the input as contiguous []byte
// windows so hot loops advance by vectorized bulk scans
// (bytes.IndexByte, SSE/AVX-backed in the Go runtime) instead of
// per-byte reads, with exactly one code path over two backings:
//
//   - slice-backed (NewBytes): the window IS the input. No copy ever
//     happens; subslices stay valid for the life of the run, so
//     tokenizers may hand out borrowed strings (Borrow) instead of
//     allocating.
//   - reader-backed (NewReader): a refillable buffer. Windows are valid
//     only until the next refill (Fill/Byte/Peek past the window), so
//     callers copy what they keep.
//
// Fixed() distinguishes the two; everything else is identical, which is
// what keeps the tokenizer/splitter/skip machinery single-pathed.
//
// Aliasing contract of the slice backing: the caller must not mutate
// the input slice while any consumer of the cursor's windows (tokens,
// chunks, borrowed strings) is live. The engine's public entry points
// (gcx.ExecuteBytes) scope that to the duration of the call.
package cursor

import (
	"bytes"
	"io"
	"unsafe"
)

// DefaultSize is the reader-backed window size. It matches the 64 KiB
// bufio buffers the front ends historically used.
const DefaultSize = 64 << 10

// minSize keeps degenerate window sizes (tests use tiny ones to force
// refill boundaries) from breaking Peek's small-lookahead needs.
const minSize = 16

// maxEmptyReads bounds spinning on a broken reader that returns (0, nil)
// forever, mirroring bufio.ErrNoProgress behavior.
const maxEmptyReads = 100

// Cursor is a window-oriented byte source. The zero value is unusable;
// construct with NewBytes or NewReader, or embed one and call
// ResetBytes/ResetReader.
type Cursor struct {
	buf  []byte // buf[pos:] is the unread window
	pos  int
	base int64 // absolute input offset of buf[0]

	r       io.Reader
	scratch []byte // reader-mode backing array; nil on the fixed path
	fixed   bool

	// err is the sticky condition that ends refilling: io.EOF or a read
	// error. Fixed cursors are born exhausted (err = io.EOF).
	err error
	// ioErr records the first non-EOF read error so callers can report
	// infrastructure failures as themselves rather than syntax errors.
	ioErr error
}

// NewBytes returns a slice-backed Cursor serving windows directly from
// data with no copying. See the package comment for the aliasing
// contract.
func NewBytes(data []byte) *Cursor {
	c := new(Cursor)
	c.ResetBytes(data)
	return c
}

// NewReader returns a reader-backed Cursor with a window of size bytes
// (≤ 0 uses DefaultSize).
func NewReader(r io.Reader, size int) *Cursor {
	c := new(Cursor)
	c.ResetReader(r, size)
	return c
}

// ResetBytes re-arms the cursor over a fixed slice, keeping any
// reader-mode scratch for later reuse (pooling).
func (c *Cursor) ResetBytes(data []byte) {
	c.buf = data
	c.pos = 0
	c.base = 0
	c.r = nil
	c.fixed = true
	c.err = io.EOF
	c.ioErr = nil
}

// ResetReader re-arms the cursor over a reader, reusing the existing
// scratch when it is at least the requested size.
func (c *Cursor) ResetReader(r io.Reader, size int) {
	if size <= 0 {
		size = DefaultSize
	}
	if size < minSize {
		size = minSize
	}
	if cap(c.scratch) < size {
		c.scratch = make([]byte, 0, size)
	}
	c.buf = c.scratch[:0]
	c.pos = 0
	c.base = 0
	c.r = r
	c.fixed = false
	c.err = nil
	c.ioErr = nil
}

// Fixed reports whether the cursor is slice-backed: windows (and
// subslices of them) stay valid for the cursor's whole life, so callers
// may borrow instead of copy.
func (c *Cursor) Fixed() bool { return c.fixed }

// Offset is the absolute input offset of the next unread byte.
func (c *Cursor) Offset() int64 { return c.base + int64(c.pos) }

// IOErr returns the first non-EOF read error encountered, if any.
func (c *Cursor) IOErr() error { return c.ioErr }

// Window returns the unread buffered bytes. It may be empty; call Fill
// to refill first. The window is invalidated by the next refill unless
// Fixed.
func (c *Cursor) Window() []byte { return c.buf[c.pos:] }

// Advance consumes n bytes of the current window. n must not exceed
// len(Window()).
func (c *Cursor) Advance(n int) { c.pos += n }

// Byte returns the next input byte. At end of input it returns the
// sticky error (io.EOF, or the read error that ended the stream).
func (c *Cursor) Byte() (byte, error) {
	if c.pos < len(c.buf) {
		b := c.buf[c.pos]
		c.pos++
		return b, nil
	}
	return c.byteSlow()
}

func (c *Cursor) byteSlow() (byte, error) {
	if err := c.Fill(); err != nil {
		return 0, err
	}
	b := c.buf[c.pos]
	c.pos++
	return b, nil
}

// Unread steps back over the byte most recently consumed with Byte (or
// a 1-byte Advance). It is valid for exactly one byte: refills retain
// one byte of history, so an Unread immediately after a consuming call
// never falls off the window's front.
func (c *Cursor) Unread() { c.pos-- }

// Fill ensures the window is non-empty, refilling from the reader when
// it is exhausted. It returns nil when at least one unread byte is
// buffered and the sticky error (io.EOF or a read error) otherwise.
func (c *Cursor) Fill() error {
	if c.pos < len(c.buf) {
		return nil
	}
	return c.refill(1)
}

// Peek returns the next n unread bytes without consuming them,
// refilling as needed. If fewer than n bytes remain it returns the
// remainder along with the sticky error. n must fit the window size.
func (c *Cursor) Peek(n int) ([]byte, error) {
	for len(c.buf)-c.pos < n {
		if err := c.refill(n); err != nil {
			return c.buf[c.pos:], err
		}
	}
	return c.buf[c.pos : c.pos+n], nil
}

// refill makes room and reads more input, guaranteeing on success that
// the window grew. It retains one byte of consumed history (the Unread
// contract) plus all unread bytes.
func (c *Cursor) refill(need int) error {
	if c.err != nil {
		return c.err
	}
	// Compact: keep one byte of history when any byte was consumed, plus
	// the unread tail.
	keep := 0
	if c.pos > 0 {
		keep = 1
	}
	start := c.pos - keep
	if start > 0 {
		n := copy(c.scratch[0:cap(c.scratch)], c.buf[start:])
		c.base += int64(start)
		c.buf = c.scratch[:n]
		c.pos = keep
	}
	for i := 0; ; {
		if len(c.buf) == cap(c.scratch) {
			// Window full and still short of need: the caller asked for
			// more lookahead than the window holds.
			return io.ErrShortBuffer
		}
		n, err := c.r.Read(c.scratch[len(c.buf):cap(c.scratch)])
		c.buf = c.scratch[:len(c.buf)+n]
		if err != nil {
			c.err = err
			if err != io.EOF {
				c.ioErr = err
			}
		}
		if len(c.buf)-c.pos >= need || (n > 0 && need <= 1) {
			return nil
		}
		if err != nil {
			return err
		}
		if n == 0 {
			if i++; i >= maxEmptyReads {
				c.err = io.ErrNoProgress
				c.ioErr = io.ErrNoProgress
				return c.err
			}
		} else {
			i = 0
		}
	}
}

// SkipPast consumes input through the first occurrence of delim using
// vectorized window scans, returning the number of bytes consumed
// (including delim). If the input ends first, every remaining byte is
// consumed and the sticky error returned.
func (c *Cursor) SkipPast(delim byte) (int64, error) {
	var n int64
	for {
		if err := c.Fill(); err != nil {
			return n, err
		}
		w := c.buf[c.pos:]
		if i := bytes.IndexByte(w, delim); i >= 0 {
			c.pos += i + 1
			return n + int64(i) + 1, nil
		}
		c.pos += len(w)
		n += int64(len(w))
	}
}

// Borrow converts a subslice of a Fixed cursor's window into a string
// without copying. Safety rests on the package-level aliasing contract:
// the backing slice is never mutated while borrowed strings are live,
// so the immutability Go assumes of string memory holds in practice.
// Never call it with bytes that a refillable window may overwrite.
func Borrow(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}
