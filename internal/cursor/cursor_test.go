package cursor

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/iotest"
)

// drain consumes the cursor byte by byte and returns everything read.
func drain(t *testing.T, c *Cursor) []byte {
	t.Helper()
	var out []byte
	for {
		b, err := c.Byte()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Byte: %v", err)
		}
		out = append(out, b)
	}
}

func TestFixedBasics(t *testing.T) {
	data := []byte("hello")
	c := NewBytes(data)
	if !c.Fixed() {
		t.Fatal("NewBytes cursor not Fixed")
	}
	if got := drain(t, c); !bytes.Equal(got, data) {
		t.Fatalf("drained %q, want %q", got, data)
	}
	if c.Offset() != int64(len(data)) {
		t.Fatalf("Offset = %d, want %d", c.Offset(), len(data))
	}
	// EOF is sticky.
	if _, err := c.Byte(); err != io.EOF {
		t.Fatalf("Byte at EOF: %v, want io.EOF", err)
	}
}

func TestReaderBasics(t *testing.T) {
	data := []byte("the quick brown fox")
	for _, size := range []int{0, 16, 17, 1 << 10} {
		c := NewReader(bytes.NewReader(data), size)
		if c.Fixed() {
			t.Fatal("reader cursor reports Fixed")
		}
		if got := drain(t, c); !bytes.Equal(got, data) {
			t.Fatalf("size %d: drained %q, want %q", size, got, data)
		}
		if c.Offset() != int64(len(data)) {
			t.Fatalf("size %d: Offset = %d, want %d", size, c.Offset(), len(data))
		}
	}
}

// TestReaderOneByteReads forces a refill on every byte, exercising the
// compaction/history machinery as hard as possible.
func TestReaderOneByteReads(t *testing.T) {
	data := []byte("<a><b>text</b></a>")
	c := NewReader(iotest.OneByteReader(bytes.NewReader(data)), 16)
	if got := drain(t, c); !bytes.Equal(got, data) {
		t.Fatalf("drained %q, want %q", got, data)
	}
}

func TestUnreadAcrossRefill(t *testing.T) {
	data := []byte("abcdefghijklmnopqrstuvwxyz0123456789")
	c := NewReader(iotest.OneByteReader(bytes.NewReader(data)), 16)
	var out []byte
	for i := 0; ; i++ {
		b, err := c.Byte()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Byte: %v", err)
		}
		// Unread and re-read every byte: valid even immediately after a
		// refill because one byte of history is retained.
		c.Unread()
		b2, err := c.Byte()
		if err != nil || b2 != b {
			t.Fatalf("reread byte %d: %q %v, want %q", i, b2, err, b)
		}
		out = append(out, b)
	}
	if !bytes.Equal(out, data) {
		t.Fatalf("drained %q, want %q", out, data)
	}
}

func TestOffsetTracksAcrossRefill(t *testing.T) {
	data := bytes.Repeat([]byte("x"), 100)
	c := NewReader(bytes.NewReader(data), 16)
	for i := range data {
		if c.Offset() != int64(i) {
			t.Fatalf("before byte %d: Offset = %d", i, c.Offset())
		}
		if _, err := c.Byte(); err != nil {
			t.Fatalf("Byte %d: %v", i, err)
		}
	}
	if c.Offset() != int64(len(data)) {
		t.Fatalf("final Offset = %d", c.Offset())
	}
}

func TestWindowAdvance(t *testing.T) {
	data := []byte("hello world")
	c := NewBytes(data)
	if err := c.Fill(); err != nil {
		t.Fatal(err)
	}
	w := c.Window()
	if !bytes.Equal(w, data) {
		t.Fatalf("Window = %q", w)
	}
	c.Advance(6)
	if got := c.Window(); string(got) != "world" {
		t.Fatalf("after Advance: %q", got)
	}
	if c.Offset() != 6 {
		t.Fatalf("Offset = %d", c.Offset())
	}
}

func TestPeek(t *testing.T) {
	data := []byte("0123456789abcdef0123456789")
	c := NewReader(iotest.OneByteReader(bytes.NewReader(data)), 16)
	p, err := c.Peek(2)
	if err != nil || string(p) != "01" {
		t.Fatalf("Peek(2) = %q, %v", p, err)
	}
	// Peek does not consume.
	if b, _ := c.Byte(); b != '0' {
		t.Fatalf("Byte after Peek = %q", b)
	}
	// Peek near the end returns the remainder with EOF.
	for i := 0; i < len(data)-2; i++ {
		if _, err := c.Byte(); err != nil {
			t.Fatal(err)
		}
	}
	p, err = c.Peek(2)
	if err != io.EOF || string(p) != "9" {
		t.Fatalf("Peek(2) at tail = %q, %v", p, err)
	}
}

func TestSkipPast(t *testing.T) {
	data := []byte("aaaa<bbbb<cccc")
	for _, mk := range []func() *Cursor{
		func() *Cursor { return NewBytes(data) },
		func() *Cursor { return NewReader(iotest.OneByteReader(bytes.NewReader(data)), 16) },
	} {
		c := mk()
		n, err := c.SkipPast('<')
		if err != nil || n != 5 {
			t.Fatalf("SkipPast = %d, %v", n, err)
		}
		if b, _ := c.Byte(); b != 'b' {
			t.Fatalf("after SkipPast: %q", b)
		}
		c.Unread()
		n, err = c.SkipPast('<')
		if err != nil || n != 5 {
			t.Fatalf("second SkipPast = %d, %v", n, err)
		}
		// Delimiter absent: consume to EOF.
		n, err = c.SkipPast('<')
		if err != io.EOF || n != 4 {
			t.Fatalf("tail SkipPast = %d, %v", n, err)
		}
	}
}

func TestReadError(t *testing.T) {
	boom := errors.New("boom")
	c := NewReader(io.MultiReader(strings.NewReader("ab"), iotest.ErrReader(boom)), 16)
	if b, err := c.Byte(); b != 'a' || err != nil {
		t.Fatalf("first Byte: %q, %v", b, err)
	}
	if b, err := c.Byte(); b != 'b' || err != nil {
		t.Fatalf("second Byte: %q, %v", b, err)
	}
	if _, err := c.Byte(); err != boom {
		t.Fatalf("Byte after error: %v, want boom", err)
	}
	if c.IOErr() != boom {
		t.Fatalf("IOErr = %v, want boom", c.IOErr())
	}
	// Sticky.
	if _, err := c.Byte(); err != boom {
		t.Fatalf("sticky error: %v", err)
	}
}

func TestNoProgressReader(t *testing.T) {
	// A reader that returns (0, nil) forever must not hang.
	c := NewReader(zeroReader{}, 16)
	if _, err := c.Byte(); err != io.ErrNoProgress {
		t.Fatalf("Byte = %v, want ErrNoProgress", err)
	}
	if c.IOErr() != io.ErrNoProgress {
		t.Fatalf("IOErr = %v", c.IOErr())
	}
}

type zeroReader struct{}

func (zeroReader) Read(p []byte) (int, error) { return 0, nil }

func TestResetReuse(t *testing.T) {
	c := NewReader(strings.NewReader("first"), 64)
	if got := drain(t, c); string(got) != "first" {
		t.Fatalf("first drain: %q", got)
	}
	c.ResetBytes([]byte("second"))
	if !c.Fixed() {
		t.Fatal("ResetBytes did not set Fixed")
	}
	if got := drain(t, c); string(got) != "second" {
		t.Fatalf("second drain: %q", got)
	}
	c.ResetReader(strings.NewReader("third"), 64)
	if c.Fixed() {
		t.Fatal("ResetReader left Fixed set")
	}
	if got := drain(t, c); string(got) != "third" {
		t.Fatalf("third drain: %q", got)
	}
	if c.Offset() != 5 {
		t.Fatalf("Offset after reset = %d", c.Offset())
	}
}

func TestBorrow(t *testing.T) {
	data := []byte("borrowed")
	if got := Borrow(data[:0]); got != "" {
		t.Fatalf("Borrow(empty) = %q", got)
	}
	got := Borrow(data[2:6])
	if got != "rrow" {
		t.Fatalf("Borrow = %q", got)
	}
}

// TestFixedWindowStable pins the zero-copy property: windows of a fixed
// cursor alias the input slice directly.
func TestFixedWindowStable(t *testing.T) {
	data := []byte("stable")
	c := NewBytes(data)
	w := c.Window()
	if &w[0] != &data[0] {
		t.Fatal("fixed window does not alias input")
	}
}
