package xmark

import "gcx/internal/schema"

// AuctionSchema declares the content ordering of the generated
// XMark-like documents — the information a schema-based streaming
// engine (the paper's FluXQuery comparator) would exploit, and the
// contract the generator is validated against in tests.
func AuctionSchema() *schema.Schema {
	return schema.New(map[string][]string{
		"site": {"regions", "categories", "catgraph", "people",
			"open_auctions", "closed_auctions"},
		"regions": {"africa", "asia", "australia", "europe", "namerica", "samerica"},
		"africa":  {"item"}, "asia": {"item"}, "australia": {"item"},
		"europe": {"item"}, "namerica": {"item"}, "samerica": {"item"},
		"item": {"location", "quantity", "name", "payment", "description",
			"shipping", "incategory", "mailbox"},
		"description": {"parlist", "text"},
		"parlist":     {"listitem"},
		"listitem":    {"text"},
		"mailbox":     {"mail"},
		"mail":        {"from", "to", "date", "text"},
		"categories":  {"category"},
		"category":    {"name", "description"},
		"catgraph":    {"edge"},
		"people":      {"person"},
		"person": {"name", "emailaddress", "phone", "address", "creditcard",
			"profile", "homepage", "watches"},
		"address":       {"street", "city", "country", "zipcode"},
		"profile":       {"education", "business"},
		"watches":       {"watch"},
		"open_auctions": {"open_auction"},
		"open_auction": {"initial", "bidder", "current", "itemref", "seller",
			"annotation", "quantity", "type", "interval"},
		"bidder":          {"date", "time", "personref", "increase"},
		"annotation":      {"author", "description"},
		"interval":        {"start", "end"},
		"closed_auctions": {"closed_auction"},
		"closed_auction": {"seller", "buyer", "itemref", "price", "date",
			"quantity", "type", "annotation"},
	})
}
