// Package xmark generates XMark-like auction documents and carries the
// adapted benchmark queries.
//
// The original XMark generator (xmlgen) is not available offline, so
// this is the substitution documented in DESIGN.md: documents with the
// same six top-level sections (regions, categories, catgraph, people,
// open_auctions, closed_auctions — the structure the paper's Fig. 4
// discussion relies on), the same element kinds the benchmark queries
// Q1/Q6/Q8/Q13/Q20 touch, entity ratios matching XMark's (persons :
// items : open : closed ≈ 255 : 217 : 120 : 97 per MB), deterministic
// content from a seeded PRNG, and byte-accurate size targeting.
package xmark

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strings"
)

// Config parameterizes document generation.
type Config struct {
	// TargetBytes is the approximate output size (default 1 MiB).
	TargetBytes int64
	// Seed drives the deterministic PRNG (default 1).
	Seed int64
}

// Stats reports what was generated.
type Stats struct {
	Bytes          int64
	Persons        int
	Items          int
	OpenAuctions   int
	ClosedAuctions int
	Categories     int
}

// entity counts per generation unit (~1 MiB), mirroring XMark's ratios.
const (
	personsPerUnit = 255
	itemsPerUnit   = 217
	openPerUnit    = 120
	closedPerUnit  = 97
	catsPerUnit    = 10
)

var continents = []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}

var words = strings.Fields(`
gold silver mirror stage petty circumstance honour purse slave wealth
virtue envy malice summer winter garden castle letter crown sword
merchant duke sister father cousin soldier forest river window harbor
promise fortune journey shadow feather marble copper velvet saffron
lantern whisper thunder meadow orchard harvest bramble kestrel willow
anchor beacon cipher drapery ember filigree gossamer hearth ivory jasper
`)

// Generate writes one document to w and returns statistics.
func Generate(w io.Writer, cfg Config) (*Stats, error) {
	if cfg.TargetBytes <= 0 {
		cfg.TargetBytes = 1 << 20
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	cw := &countingWriter{w: bufio.NewWriterSize(w, 64<<10)}
	g := &generator{
		w:     cw,
		r:     rand.New(rand.NewSource(cfg.Seed)),
		stats: &Stats{},
	}
	// Scale entity counts so the document lands near the byte target.
	// bytesPerUnit is calibrated against the generator itself (see
	// TestGenerateSizeTargeting).
	const bytesPerUnit = 423_000
	units := float64(cfg.TargetBytes) / bytesPerUnit
	if units <= 0 {
		units = 0.01
	}
	g.emit("<site>")
	g.regions(int(units*itemsPerUnit + 0.5))
	g.categories(int(units*catsPerUnit + 0.5))
	g.catgraph()
	g.people(int(units*personsPerUnit + 0.5))
	g.openAuctions(int(units*openPerUnit + 0.5))
	g.closedAuctions(int(units*closedPerUnit + 0.5))
	g.emit("</site>")
	if err := cw.w.(*bufio.Writer).Flush(); err != nil {
		return nil, err
	}
	if cw.err != nil {
		return nil, cw.err
	}
	g.stats.Bytes = cw.n
	return g.stats, nil
}

// GenerateString renders a document in memory (tests, examples).
func GenerateString(cfg Config) (string, *Stats, error) {
	var b strings.Builder
	st, err := Generate(&b, cfg)
	return b.String(), st, err
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	if err != nil && c.err == nil {
		c.err = err
	}
	return n, err
}

type generator struct {
	w     io.Writer
	r     *rand.Rand
	stats *Stats
}

func (g *generator) emit(s string) {
	io.WriteString(g.w, s)
}

func (g *generator) emitf(format string, args ...any) {
	fmt.Fprintf(g.w, format, args...)
}

func (g *generator) text(n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = words[g.r.Intn(len(words))]
	}
	return strings.Join(parts, " ")
}

func (g *generator) regions(items int) {
	g.emit("<regions>")
	perContinent := items / len(continents)
	extra := items - perContinent*len(continents)
	id := 0
	for ci, c := range continents {
		n := perContinent
		if ci < extra {
			n++
		}
		g.emit("<" + c + ">")
		for i := 0; i < n; i++ {
			g.item(id)
			id++
		}
		g.emit("</" + c + ">")
	}
	g.emit("</regions>")
	g.stats.Items = id
}

func (g *generator) item(id int) {
	g.emitf(`<item id="item%d"><location>%s</location><quantity>%d</quantity><name>%s</name><payment>%s</payment>`,
		id, g.text(2), 1+g.r.Intn(3), g.text(3), g.text(2))
	g.emit("<description><parlist>")
	for i := 0; i < 1+g.r.Intn(3); i++ {
		g.emitf("<listitem><text>%s</text></listitem>", g.text(12+g.r.Intn(20)))
	}
	g.emit("</parlist></description>")
	g.emitf(`<shipping>%s</shipping><incategory category="category%d"></incategory>`,
		g.text(3), g.r.Intn(20))
	g.emitf("<mailbox><mail><from>%s</from><to>%s</to><date>%s</date><text>%s</text></mail></mailbox>",
		g.text(2), g.text(2), g.date(), g.text(10+g.r.Intn(15)))
	g.emit("</item>")
}

func (g *generator) categories(n int) {
	if n < 1 {
		n = 1
	}
	g.emit("<categories>")
	for i := 0; i < n; i++ {
		g.emitf(`<category id="category%d"><name>%s</name><description><text>%s</text></description></category>`,
			i, g.text(2), g.text(15+g.r.Intn(20)))
	}
	g.emit("</categories>")
	g.stats.Categories = n
}

func (g *generator) catgraph() {
	g.emit("<catgraph>")
	n := g.stats.Categories
	for i := 0; i < n; i++ {
		g.emitf(`<edge from="category%d" to="category%d"></edge>`, g.r.Intn(n), g.r.Intn(n))
	}
	g.emit("</catgraph>")
}

func (g *generator) people(n int) {
	g.emit("<people>")
	for i := 0; i < n; i++ {
		g.emitf(`<person id="person%d"><name>%s</name><emailaddress>mailto:%s@example.net</emailaddress>`,
			i, g.text(2), words[g.r.Intn(len(words))])
		if g.r.Intn(3) > 0 {
			g.emitf("<phone>+%d (%d) %d</phone>", 1+g.r.Intn(40), g.r.Intn(1000), g.r.Intn(10_000_000))
		}
		g.emitf("<address><street>%d %s St</street><city>%s</city><country>%s</country><zipcode>%d</zipcode></address>",
			1+g.r.Intn(40), g.text(1), g.text(1), g.text(1), g.r.Intn(100000))
		g.emitf("<creditcard>%d %d %d %d</creditcard>", g.r.Intn(10000), g.r.Intn(10000), g.r.Intn(10000), g.r.Intn(10000))
		// ~60% of persons declare an income (Q20's brackets; the rest
		// fall into the "challenge"/absent bucket).
		if g.r.Intn(5) < 3 {
			g.emitf(`<profile income="%d"><education>%s</education><business>%s</business></profile>`,
				9000+g.r.Intn(141000), g.text(1), yesNo(g.r))
		} else {
			g.emitf(`<profile><education>%s</education><business>%s</business></profile>`,
				g.text(1), yesNo(g.r))
		}
		// ~half of the people maintain a homepage (Q17's negation target).
		if g.r.Intn(2) == 0 {
			g.emitf("<homepage>http://www.example.net/~%s</homepage>", words[g.r.Intn(len(words))])
		}
		if g.r.Intn(2) == 0 {
			g.emitf(`<watches><watch open_auction="open_auction%d"></watch></watches>`, g.r.Intn(n+1))
		}
		g.emit("</person>")
	}
	g.emit("</people>")
	g.stats.Persons = n
}

func yesNo(r *rand.Rand) string {
	if r.Intn(2) == 0 {
		return "Yes"
	}
	return "No"
}

func (g *generator) date() string {
	return fmt.Sprintf("%02d/%02d/%d", 1+g.r.Intn(12), 1+g.r.Intn(28), 1998+g.r.Intn(4))
}

func (g *generator) openAuctions(n int) {
	g.emit("<open_auctions>")
	people := g.stats.Persons
	if people == 0 {
		people = 1
	}
	items := g.stats.Items
	if items == 0 {
		items = 1
	}
	for i := 0; i < n; i++ {
		g.emitf(`<open_auction id="open_auction%d"><initial>%d.%02d</initial>`, i, 1+g.r.Intn(300), g.r.Intn(100))
		for b := 0; b < 1+g.r.Intn(4); b++ {
			g.emitf(`<bidder><date>%s</date><time>%02d:%02d:%02d</time><personref person="person%d"></personref><increase>%d.00</increase></bidder>`,
				g.date(), g.r.Intn(24), g.r.Intn(60), g.r.Intn(60), g.r.Intn(people), 1+g.r.Intn(20))
		}
		g.emitf(`<current>%d.%02d</current><itemref item="item%d"></itemref><seller person="person%d"></seller>`,
			1+g.r.Intn(500), g.r.Intn(100), g.r.Intn(items), g.r.Intn(people))
		g.emitf("<annotation><author>%s</author><description><text>%s</text></description></annotation>",
			g.text(2), g.text(10+g.r.Intn(15)))
		g.emitf("<quantity>%d</quantity><type>Regular</type><interval><start>%s</start><end>%s</end></interval>",
			1+g.r.Intn(3), g.date(), g.date())
		g.emit("</open_auction>")
	}
	g.emit("</open_auctions>")
	g.stats.OpenAuctions = n
}

func (g *generator) closedAuctions(n int) {
	g.emit("<closed_auctions>")
	people := g.stats.Persons
	if people == 0 {
		people = 1
	}
	items := g.stats.Items
	if items == 0 {
		items = 1
	}
	for i := 0; i < n; i++ {
		g.emitf(`<closed_auction><seller person="person%d"></seller><buyer person="person%d"></buyer><itemref item="item%d"></itemref>`,
			g.r.Intn(people), g.r.Intn(people), g.r.Intn(items))
		g.emitf("<price>%d.%02d</price><date>%s</date><quantity>%d</quantity><type>Regular</type>",
			1+g.r.Intn(400), g.r.Intn(100), g.date(), 1+g.r.Intn(3))
		g.emitf("<annotation><author>%s</author><description><text>%s</text></description></annotation>",
			g.text(2), g.text(10+g.r.Intn(15)))
		g.emit("</closed_auction>")
	}
	g.emit("</closed_auctions>")
	g.stats.ClosedAuctions = n
}
