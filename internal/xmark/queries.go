package xmark

import "sort"

// Query describes one benchmark query of the paper's Figure 5, adapted
// to the composition-free fragment supported by GCX exactly as the
// paper did for its experiments ("queries were adapted accordingly; the
// rewritten queries can be found at the GCX download page").
type Query struct {
	ID string
	// Description is the original XMark query intent.
	Description string
	// Text is the adapted query.
	Text string
	// UsesDescendant marks descendant-axis queries, which the paper's
	// schema-based reference engine (FluXQuery) does not support — its
	// Fig. 5 column shows "n/a" for Q6.
	UsesDescendant bool
	// UsesAggregation marks queries needing the count() extension (not part
	// of the paper's fragment).
	UsesAggregation bool
	// Blocking marks queries that inherently require buffering linear
	// in the input (the join Q8).
	Blocking bool
}

// Queries is the catalog of adapted XMark queries, keyed by their paper
// names.
var Queries = map[string]Query{
	"Q1": {
		ID:          "Q1",
		Description: "Return the name of the person with ID person0.",
		Text: `<result>{
  for $p in /site/people/person return
    if ($p/@id = "person0") then $p/name else ()
}</result>`,
	},
	"Q6": {
		ID:          "Q6",
		Description: "Items listed on all continents (adapted: emit item names instead of counting).",
		Text: `<result>{
  for $r in /site/regions return
    for $i in $r//item return <item>{ $i/name }</item>
}</result>`,
		UsesDescendant: true,
	},
	"Q8": {
		ID:          "Q8",
		Description: "For each person, the items they bought (value join people ⋈ closed_auctions; adapted: emit prices instead of counting).",
		Text: `<result>{
  for $p in /site/people/person return
    <item>{
      $p/name,
      for $t in /site/closed_auctions/closed_auction return
        if ($t/buyer/@person = $p/@id) then $t/price else ()
    }</item>
}</result>`,
		Blocking: true,
	},
	"Q9": {
		ID:          "Q9",
		Description: "For each European item, the prices it sold at (value join items ⋈ closed_auctions; adapted from Q9's three-way join to the two-way GCX fragment).",
		Text: `<result>{
  for $i in /site/regions/europe/item return
    <item>{
      $i/name,
      for $t in /site/closed_auctions/closed_auction return
        if ($t/itemref/@item = $i/@id) then $t/price else ()
    }</item>
}</result>`,
		Blocking: true,
	},
	"Q13": {
		ID:          "Q13",
		Description: "Names and descriptions of items registered in Australia (original XMark form, using an attribute value template).",
		Text: `<result>{
  for $i in /site/regions/australia/item return
    <item name="{$i/name/text()}">{ $i/description }</item>
}</result>`,
	},
	"Q20": {
		ID:          "Q20",
		Description: "Group customers by income (adapted: emit names per bracket instead of counting).",
		Text: `<result>{
  for $p in /site/people/person return
    (if ($p/profile/@income >= 100000) then <preferred>{ $p/name }</preferred> else (),
     if ($p/profile/@income < 100000 and $p/profile/@income >= 30000) then <standard>{ $p/name }</standard> else (),
     if ($p/profile/@income < 30000) then <challenge>{ $p/name }</challenge> else (),
     if (not(exists $p/profile/@income)) then <na>{ $p/name }</na> else ())
}</result>`,
	},
	"Q6count": {
		ID:              "Q6count",
		Description:     "Original counting form of Q6, using the count() aggregation extension.",
		Text:            `<result>{ count(/site/regions//item) }</result>`,
		UsesDescendant:  true,
		UsesAggregation: true,
	},
	"Q5": {
		ID:              "Q5",
		Description:     "How many sold items cost more than 40 (original uses count; adapted with the aggregation extension and a where clause).",
		Text:            `<result>{ count(/site/closed_auctions/closed_auction/price) , " priced, high: ", for $t in /site/closed_auctions/closed_auction where $t/price >= 40 return <p>{ $t/price/text() }</p> }</result>`,
		UsesAggregation: true,
	},
	"Q17": {
		ID:          "Q17",
		Description: "People without a homepage (adapted: emit names; exercises not(exists …)).",
		Text: `<result>{
  for $p in /site/people/person return
    if (not(exists $p/homepage)) then <person>{ $p/name }</person> else ()
}</result>`,
	},
	"Q20sum": {
		ID:              "Q20sum",
		Description:     "Average declared income (extension: avg over attribute values).",
		Text:            `<result>{ avg(/site/people/person/profile/@income) }</result>`,
		UsesAggregation: true,
	},
}

// QueryIDs returns the catalog keys in a stable order (paper order
// first, extensions last).
func QueryIDs() []string {
	order := map[string]int{"Q1": 0, "Q6": 1, "Q8": 2, "Q9": 3, "Q13": 4, "Q20": 5}
	ids := make([]string, 0, len(Queries))
	for id := range Queries {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		oi, iok := order[ids[i]]
		oj, jok := order[ids[j]]
		switch {
		case iok && jok:
			return oi < oj
		case iok:
			return true
		case jok:
			return false
		default:
			return ids[i] < ids[j]
		}
	})
	return ids
}
