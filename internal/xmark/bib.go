package xmark

import "strings"

// PaperQuery is the running example of the paper's introduction: all
// price-less children of bib, then all book titles.
const PaperQuery = `<r> {
for $bib in /bib return
(for $x in $bib/* return
   if (not(exists $x/price)) then $x else (),
 for $b in $bib/book return $b/title)
} </r>`

// BibDocument builds the paper's Figure 3 input documents: a bib root
// with children of the given kinds ("book" or "article"), each of the
// form <t><author/><title/><price/></t> — "a total of 82 tags forming
// 41 document nodes" for ten children.
func BibDocument(kinds []string) string {
	var b strings.Builder
	b.WriteString("<bib>")
	for _, k := range kinds {
		b.WriteString("<" + k + "><author></author><title></title><price></price></" + k + ">")
	}
	b.WriteString("</bib>")
	return b.String()
}

// Fig3bKinds is the document of Figure 3(b): nine articles then a book.
func Fig3bKinds() []string { return kindsSeq("article", 9, "book") }

// Fig3cKinds is the document of Figure 3(c): nine books then an article.
func Fig3cKinds() []string { return kindsSeq("book", 9, "article") }

func kindsSeq(kind string, n int, last string) []string {
	kinds := make([]string, n+1)
	for i := 0; i < n; i++ {
		kinds[i] = kind
	}
	kinds[n] = last
	return kinds
}
