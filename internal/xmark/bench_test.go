package xmark

import (
	"io"
	"testing"
)

// BenchmarkGenerate measures generator throughput (document bytes per
// second), which bounds how fast the big Fig. 5 sweeps can run.
func BenchmarkGenerate(b *testing.B) {
	const target = 1 << 20
	b.SetBytes(target)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(io.Discard, Config{TargetBytes: target, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
