package xmark

// NDJSON companion workload (DESIGN.md §8): an auction *event log* —
// the same domain as the XML documents, reshaped as one bid record per
// line, which is what the JSON front end's virtual /root/record
// document looks like. The generator is deterministic under Config.Seed
// and byte-size-targeted like Generate, so gcxbench can produce
// comparable NDJSON cells next to the XMark XML cells.

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strings"
)

// NDJSONQueries is the catalog of benchmark queries over the NDJSON bid
// log, keyed J1, J2, … in the style of the XMark Q numbers. All three
// are wrapperless single-loop queries over /root/record, so they are
// NDJSON-shardable (newline record boundaries) as well as streamable.
var NDJSONQueries = map[string]Query{
	"J1": {
		ID:          "J1",
		Description: "Amounts of the bids placed by bidder person0 (filter + project).",
		Text:        `for $r in /root/record return if ($r/bidder = "person0") then $r/amount else ()`,
	},
	"J2": {
		ID:          "J2",
		Description: "Name of every bid's item (projection past the bulky item payload — skipping-heavy).",
		Text:        `for $r in /root/record return $r/item/name`,
	},
	"J3": {
		ID:          "J3",
		Description: "Sellers of bids without a reserve price (existence condition).",
		Text:        `for $r in /root/record return if (not(exists $r/reserve)) then $r/seller else ()`,
	},
}

// bidsPerUnit approximates how many bid records fit one generation unit
// (~1 MiB); calibrated against the generator itself like bytesPerUnit.
const bidsPerUnit = 2150

// GenerateNDJSON writes one bid-log stream to w — one JSON record per
// line — and returns statistics (Bytes and Items, the record count).
func GenerateNDJSON(w io.Writer, cfg Config) (*Stats, error) {
	if cfg.TargetBytes <= 0 {
		cfg.TargetBytes = 1 << 20
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	cw := &countingWriter{w: bufio.NewWriterSize(w, 64<<10)}
	r := rand.New(rand.NewSource(cfg.Seed))
	st := &Stats{}
	const bytesPerBid = 488 // calibrated; see TestGenerateNDJSONSizeTargeting
	bids := int(float64(cfg.TargetBytes)/bytesPerBid + 0.5)
	if bids < 1 {
		bids = 1
	}
	word := func() string { return words[r.Intn(len(words))] }
	phrase := func(n int) string {
		parts := make([]string, n)
		for i := range parts {
			parts[i] = word()
		}
		return strings.Join(parts, " ")
	}
	for i := 0; i < bids; i++ {
		itemName := word() + " " + word()
		fmt.Fprintf(cw, `{"auction":"open_auction%d","bidder":"person%d","seller":"person%d","amount":"%d.%02d"`,
			r.Intn(bids/8+1), r.Intn(bids/2+1), r.Intn(bids/2+1), 1+r.Intn(400), r.Intn(100))
		if r.Intn(3) != 0 {
			fmt.Fprintf(cw, `,"reserve":"%d.00"`, 50+r.Intn(300))
		}
		// The bulky payload queries like J2 project into (name) or past
		// (description, shipping) — the skipping opportunity.
		fmt.Fprintf(cw, `,"item":{"name":"%s","category":"category%d","payment":"Creditcard","description":"%s","shipping":["%s","%s"]}}`,
			itemName, r.Intn(50), phrase(40), phrase(2), phrase(2))
		io.WriteString(cw, "\n")
		st.Items++
	}
	if err := cw.w.(*bufio.Writer).Flush(); err != nil {
		return nil, err
	}
	if cw.err != nil {
		return nil, cw.err
	}
	st.Bytes = cw.n
	return st, nil
}

// GenerateNDJSONString renders a bid log in memory (tests, gcxbench).
func GenerateNDJSONString(cfg Config) (string, *Stats, error) {
	var b strings.Builder
	st, err := GenerateNDJSON(&b, cfg)
	return b.String(), st, err
}
