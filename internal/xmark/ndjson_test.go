package xmark

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
)

// TestGenerateNDJSONValid: every generated line is a standalone JSON
// object.
func TestGenerateNDJSONValid(t *testing.T) {
	out, st, err := GenerateNDJSONString(Config{TargetBytes: 64 << 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(out))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		if !json.Valid(sc.Bytes()) {
			t.Fatalf("line %d is not valid JSON: %q", lines+1, sc.Text())
		}
		lines++
	}
	if lines != st.Items {
		t.Fatalf("Stats.Items = %d, counted %d lines", st.Items, lines)
	}
}

// TestGenerateNDJSONDeterministic: same seed, same bytes.
func TestGenerateNDJSONDeterministic(t *testing.T) {
	a, _, err := GenerateNDJSONString(Config{TargetBytes: 32 << 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := GenerateNDJSONString(Config{TargetBytes: 32 << 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same seed produced different streams")
	}
	c, _, err := GenerateNDJSONString(Config{TargetBytes: 32 << 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different seeds produced identical streams")
	}
}

// TestGenerateNDJSONSizeTargeting: output lands within 15% of the byte
// target (pins the bytesPerBid calibration).
func TestGenerateNDJSONSizeTargeting(t *testing.T) {
	for _, target := range []int64{64 << 10, 1 << 20} {
		out, _, err := GenerateNDJSONString(Config{TargetBytes: target})
		if err != nil {
			t.Fatal(err)
		}
		got := int64(len(out))
		if got < target*85/100 || got > target*115/100 {
			t.Fatalf("target %d bytes, generated %d (off by more than 15%%)", target, got)
		}
	}
}
