package xmark

import (
	"io"
	"strings"
	"testing"

	"gcx/internal/analysis"
	"gcx/internal/xmltok"
	"gcx/internal/xqparse"
)

func TestGenerateWellFormed(t *testing.T) {
	doc, st, err := GenerateString(Config{TargetBytes: 200 << 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	tz := xmltok.NewTokenizer(strings.NewReader(doc))
	elements := map[string]int{}
	for {
		tok, err := tz.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("generated document malformed: %v", err)
		}
		if tok.Kind == xmltok.StartElement {
			elements[tok.Name]++
		}
	}
	for _, section := range []string{"site", "regions", "categories", "catgraph", "people", "open_auctions", "closed_auctions"} {
		if elements[section] != 1 {
			t.Errorf("section %s count = %d, want 1", section, elements[section])
		}
	}
	for _, c := range continents {
		if elements[c] != 1 {
			t.Errorf("continent %s missing", c)
		}
	}
	if elements["person"] != st.Persons || st.Persons == 0 {
		t.Errorf("persons: elements=%d stats=%d", elements["person"], st.Persons)
	}
	if elements["item"] != st.Items || st.Items == 0 {
		t.Errorf("items: elements=%d stats=%d", elements["item"], st.Items)
	}
	if elements["closed_auction"] != st.ClosedAuctions || st.ClosedAuctions == 0 {
		t.Errorf("closed auctions: elements=%d stats=%d", elements["closed_auction"], st.ClosedAuctions)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _, err := GenerateString(Config{TargetBytes: 100 << 10, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := GenerateString(Config{TargetBytes: 100 << 10, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same seed must give identical documents")
	}
	c, _, err := GenerateString(Config{TargetBytes: 100 << 10, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different seeds must differ")
	}
}

func TestGenerateSizeTargeting(t *testing.T) {
	for _, target := range []int64{256 << 10, 1 << 20, 4 << 20} {
		_, st, err := GenerateString(Config{TargetBytes: target, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(st.Bytes) / float64(target)
		if ratio < 0.8 || ratio > 1.25 {
			t.Errorf("target %d: generated %d bytes (ratio %.2f)", target, st.Bytes, ratio)
		}
	}
}

func TestGenerateEntityRatios(t *testing.T) {
	_, st, err := GenerateString(Config{TargetBytes: 2 << 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// XMark-ish proportions: persons > items > open > closed.
	if !(st.Persons > st.Items && st.Items > st.OpenAuctions && st.OpenAuctions > st.ClosedAuctions) {
		t.Errorf("entity ratios off: %+v", st)
	}
	// person0 exists (Q1's target).
	doc, _, _ := GenerateString(Config{TargetBytes: 64 << 10, Seed: 3})
	if !strings.Contains(doc, `person id="person0"`) {
		t.Error("person0 missing")
	}
	if !strings.Contains(doc, "<australia>") {
		t.Error("australia missing (Q13's target)")
	}
}

// TestQueriesCompile: every catalog query parses and analyzes.
func TestQueriesCompile(t *testing.T) {
	for id, q := range Queries {
		parsed, err := xqparse.Parse(q.Text)
		if err != nil {
			t.Errorf("%s does not parse: %v", id, err)
			continue
		}
		plan, err := analysis.Analyze(parsed)
		if err != nil {
			t.Errorf("%s does not analyze: %v", id, err)
			continue
		}
		if plan.UsesAggregation != q.UsesAggregation {
			t.Errorf("%s UsesAggregation flag = %v, catalog says %v", id, plan.UsesAggregation, q.UsesAggregation)
		}
		if len(plan.Roles) < 2 {
			t.Errorf("%s derived only %d roles", id, len(plan.Roles))
		}
	}
}

func TestQueryIDsOrder(t *testing.T) {
	ids := QueryIDs()
	if len(ids) != len(Queries) {
		t.Fatalf("QueryIDs lists %d of %d", len(ids), len(Queries))
	}
	want := []string{"Q1", "Q6", "Q8", "Q9", "Q13", "Q20"}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("order[%d] = %s, want %s", i, ids[i], id)
		}
	}
}

func TestBibDocumentTokenCount(t *testing.T) {
	doc := BibDocument(Fig3bKinds())
	tz := xmltok.NewTokenizer(strings.NewReader(doc))
	n := 0
	for {
		_, err := tz.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 82 {
		t.Fatalf("bib document has %d tokens, paper says 82", n)
	}
	if len(Fig3cKinds()) != 10 || Fig3cKinds()[9] != "article" {
		t.Fatal("Fig3c kinds wrong")
	}
}

// TestGeneratorConformsToSchema: the generator's output respects the
// declared content ordering — the property order-dependent experiments
// (and any schema-based streaming comparator) rely on.
func TestGeneratorConformsToSchema(t *testing.T) {
	doc, _, err := GenerateString(Config{TargetBytes: 512 << 10, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := AuctionSchema().Validate(strings.NewReader(doc)); err != nil {
		t.Fatalf("generated document violates the auction schema: %v", err)
	}
}
