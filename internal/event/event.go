// Package event defines the format-neutral tree-event model that
// decouples the GCX runtime from any concrete input syntax.
//
// The paper's contribution — projection-driven dynamic buffer
// minimization over a token stream — only needs a stream of
// start-record/start-element/text/end-element events over an ordered
// labelled tree. Package event names that contract: a Source produces
// the events (internal/xmltok for XML, internal/jsontok for
// JSON/NDJSON), a Sink consumes the evaluator's output events, and the
// preprojector, buffer manager and engine in between operate purely on
// these types. Any new input format that can present itself as a
// Source inherits the whole stack — projection, active garbage
// collection, path-DFA subtree skipping and sharding — unchanged.
package event

import (
	"context"
	"fmt"
)

// Kind identifies the kind of a Token.
type Kind uint8

const (
	// StartElement opens a labelled tree node. Self-closing XML tags
	// produce a StartElement immediately followed by an EndElement, so
	// the paper's token counting (82 tags for 41 nodes) is preserved.
	StartElement Kind = iota
	// EndElement closes the innermost open node.
	EndElement
	// Text is character data (format-level escapes already resolved).
	Text
)

func (k Kind) String() string {
	switch k {
	case StartElement:
		return "StartElement"
	case EndElement:
		return "EndElement"
	case Text:
		return "Text"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Attr is a single attribute of an element. JSON sources never produce
// attributes; constructed output elements may still carry them.
type Attr struct {
	Name  string
	Value string
}

// Token is one event of the input or output stream.
type Token struct {
	Kind Kind
	// Name is the element name for StartElement and EndElement tokens.
	Name string
	// Text is the character data for Text tokens.
	Text string
	// Attrs holds the attributes of a StartElement token, in document
	// order. It is nil for all other kinds.
	Attrs []Attr
}

// Attr returns the value of the named attribute and whether it exists.
func (t *Token) Attr(name string) (string, bool) {
	for _, a := range t.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// SkipStats reports a Source's byte-level fast-forward counters
// (DESIGN.md §7): bytes the source never tokenized because the
// projection automaton proved them irrelevant, a lower bound on the
// structural markers (tags, containers) inside those bytes, and the
// number of fast-forwards taken.
type SkipStats struct {
	BytesSkipped    int64
	TagsSkipped     int64
	SubtreesSkipped int64
}

// Source is a pull-based producer of tree events — the format boundary
// of the engine. Implementations are single-goroutine streaming
// tokenizers; all methods must be called from one goroutine.
type Source interface {
	// Next returns the next event, io.EOF at end of input, or a
	// format-level syntax error. Cancellation of an attached context is
	// reported as ctx.Err() within one token.
	Next() (Token, error)
	// SkipSubtree fast-forwards past the subtree of the StartElement
	// most recently returned by Next, without producing its events: the
	// next Next call returns the first event after the subtree's end.
	// It must only be called immediately after Next returned a
	// StartElement.
	SkipSubtree() error
	// TokenCount reports how many events Next has delivered so far (the
	// x-axis of the paper's buffer plots).
	TokenCount() int64
	// SkipStats reports the byte-level skip counters.
	SkipStats() SkipStats
	// SetContext attaches a cancellation context checked at every pull.
	SetContext(ctx context.Context)
	// Release hands pooled buffers back; the Source is unusable after.
	Release()
}

// Sink is the serializer side of the event contract: the evaluator
// writes its result tree through a Sink, which renders it in a concrete
// output syntax (XML or JSON). Implementations buffer internally and
// report write errors on Flush.
type Sink interface {
	// StartElement opens an element with the given attributes.
	StartElement(name string, attrs []Attr)
	// EndElement closes the innermost open element, which has the given
	// name.
	EndElement(name string)
	// Text appends character data to the current element (or the top
	// level), escaped as the output syntax requires.
	Text(text string)
	// Flush writes buffered output through and returns the first error
	// seen on any operation.
	Flush() error
	// BytesWritten reports the number of output bytes emitted so far,
	// buffered output included.
	BytesWritten() int64
	// Release hands pooled buffers back, discarding unflushed output;
	// the Sink is unusable after.
	Release()
}

// Virtual element names of the JSON↔tree mapping (DESIGN.md §8). They
// live here — not in jsontok — because the shardability layer and the
// path analysis refer to them without depending on the tokenizer.
const (
	// RootName labels the synthesized stream root: a JSON/NDJSON input
	// tokenizes as one RootName element containing the records.
	RootName = "root"
	// RecordName labels each top-level JSON value (one NDJSON line).
	// Array items inherit the name of the nearest enclosing object
	// member (or RecordName at the top level), so no third name exists.
	RecordName = "record"
)
