package shard

import (
	"context"
	"strings"
	"testing"

	"gcx/internal/analysis"
	"gcx/internal/core"
	"gcx/internal/xmark"
)

func compileShardable(t *testing.T, src string) (*analysis.Plan, *analysis.ShardInfo) {
	t.Helper()
	plan, err := core.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	info, reason := analysis.Shardable(plan)
	if info == nil {
		t.Fatalf("not shardable: %s", reason)
	}
	return plan, info
}

func sequential(t *testing.T, plan *analysis.Plan, doc string, opts core.ExecOptions) string {
	t.Helper()
	var out strings.Builder
	if _, err := core.Execute(plan, strings.NewReader(doc), &out, opts); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

// TestByteIdentity is the acceptance property: sharded output equals
// sequential output byte for byte, across queries, worker counts and
// chunk sizes (tiny chunks stress the reorder path with one chunk per
// record).
func TestByteIdentity(t *testing.T) {
	doc, _, err := xmark.GenerateString(xmark.Config{TargetBytes: 256 << 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	queries := map[string]string{
		"Q1":       xmark.Queries["Q1"].Text,
		"Q6":       xmark.Queries["Q6"].Text,
		"Q13":      xmark.Queries["Q13"].Text,
		"Q17":      xmark.Queries["Q17"].Text,
		"Q20":      xmark.Queries["Q20"].Text,
		"wildcard": `<r>{ for $i in /site/regions/*/item return <n>{ $i/name }</n> }</r>`,
	}
	for name, src := range queries {
		plan, info := compileShardable(t, src)
		want := sequential(t, plan, doc, core.ExecOptions{})
		for _, workers := range []int{2, 4, 8} {
			for _, chunk := range []int{0, 4 << 10, 1} {
				var out strings.Builder
				res, err := Execute(context.Background(), info, strings.NewReader(doc), &out,
					Config{Workers: workers, ChunkTargetBytes: chunk})
				if err != nil {
					t.Fatalf("%s workers=%d chunk=%d: %v", name, workers, chunk, err)
				}
				if out.String() != want {
					t.Fatalf("%s workers=%d chunk=%d: output differs from sequential (%d vs %d bytes)",
						name, workers, chunk, out.Len(), len(want))
				}
				if res.OutputBytes != int64(out.Len()) {
					t.Fatalf("%s: OutputBytes = %d, wrote %d", name, res.OutputBytes, out.Len())
				}
				if res.Chunks == 0 {
					t.Fatalf("%s: no chunks", name)
				}
			}
		}
	}
}

// TestByteIdentityAcrossEngines: sharding composes with the baseline
// buffering disciplines too.
func TestByteIdentityAcrossEngines(t *testing.T) {
	doc, _, err := xmark.GenerateString(xmark.Config{TargetBytes: 64 << 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	plan, info := compileShardable(t, xmark.Queries["Q1"].Text)
	for _, eng := range []core.EngineKind{core.GCX, core.ProjectionOnly, core.DOM} {
		opts := core.ExecOptions{Engine: eng}
		want := sequential(t, plan, doc, opts)
		var out strings.Builder
		if _, err := Execute(context.Background(), info, strings.NewReader(doc), &out,
			Config{Workers: 4, ChunkTargetBytes: 4 << 10, Exec: opts}); err != nil {
			t.Fatalf("engine %v: %v", eng, err)
		}
		if out.String() != want {
			t.Fatalf("engine %v: sharded output differs", eng)
		}
	}
}

func TestEmptyAndRecordlessInputs(t *testing.T) {
	_, info := compileShardable(t, `<out>{ for $p in /site/people/person return $p/name }</out>`)
	for _, doc := range []string{``, `<site><regions/></site>`, `<other/>`} {
		var out strings.Builder
		res, err := Execute(context.Background(), info, strings.NewReader(doc), &out, Config{Workers: 4})
		if err != nil {
			t.Fatalf("doc %q: %v", doc, err)
		}
		if out.String() != "<out></out>" {
			t.Fatalf("doc %q: output = %q", doc, out.String())
		}
		if res.Chunks != 0 {
			t.Fatalf("doc %q: chunks = %d", doc, res.Chunks)
		}
	}
}

func TestStatsAggregation(t *testing.T) {
	doc, _, err := xmark.GenerateString(xmark.Config{TargetBytes: 128 << 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	plan, info := compileShardable(t, xmark.Queries["Q1"].Text)
	var seq strings.Builder
	// Reference run with subtree skipping off, so its token count
	// covers the full document (the skipping engine fast-forwards
	// irrelevant sections and counts fewer tokens than the splitter
	// leaves in the chunks).
	sres, err := core.Execute(plan, strings.NewReader(doc), &seq, core.ExecOptions{DisableSkip: true})
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	res, err := Execute(context.Background(), info, strings.NewReader(doc), &out,
		Config{Workers: 4, ChunkTargetBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.TokensProcessed == 0 || res.TotalAppended == 0 {
		t.Fatalf("counters not aggregated: %+v", res)
	}
	// Workers see only record subtrees (plus synthesized wrappers), so
	// they process fewer tokens than the sequential run over the full
	// document — that work skipping is the point of sharding.
	if res.TokensProcessed >= sres.TokensProcessed {
		t.Fatalf("sharded tokens %d ≥ sequential %d", res.TokensProcessed, sres.TokensProcessed)
	}
	// Summed per-worker peaks bound the sequential peak from above.
	if res.PeakBufferedNodes < sres.PeakBufferedNodes {
		t.Fatalf("summed peak %d below sequential peak %d", res.PeakBufferedNodes, sres.PeakBufferedNodes)
	}
	if res.Duration <= 0 {
		t.Fatal("duration not measured")
	}
}

func TestMalformedInputFails(t *testing.T) {
	_, info := compileShardable(t, `<out>{ for $p in /site/people/person return $p/name }</out>`)
	doc := `<site><people><person><name>A</name></wrong></people></site>`
	var out strings.Builder
	if _, err := Execute(context.Background(), info, strings.NewReader(doc), &out, Config{Workers: 2}); err == nil {
		t.Fatal("malformed input did not fail")
	}
}

// TestWorkerErrorPropagates: a record whose evaluation fails inside a
// worker (malformed nested content the splitter does not inspect) must
// surface as the execution error.
func TestWorkerErrorPropagates(t *testing.T) {
	_, info := compileShardable(t, `<out>{ for $p in /site/people/person return $p/name }</out>`)
	// The attribute is malformed (no quotes): the splitter passes it
	// through raw, the worker's tokenizer rejects it.
	doc := `<site><people><person><name malformed=1>A</name></person></people></site>`
	var out strings.Builder
	if _, err := Execute(context.Background(), info, strings.NewReader(doc), &out, Config{Workers: 2}); err == nil {
		t.Fatal("worker tokenizer error did not propagate")
	}
}

func TestCancellation(t *testing.T) {
	doc, _, err := xmark.GenerateString(xmark.Config{TargetBytes: 256 << 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, info := compileShardable(t, xmark.Queries["Q1"].Text)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out strings.Builder
	if _, err := Execute(ctx, info, strings.NewReader(doc), &out,
		Config{Workers: 4, ChunkTargetBytes: 1 << 10}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
