// Package shard implements sharded data-parallel execution (DESIGN.md
// §6): the input stream is partitioned into record-aligned chunks by a
// single scanning pass (xmltok.Splitter for XML, jsontok.Splitter for
// NDJSON — DESIGN.md §8), a pool of workers runs one
// independent engine instance per chunk — each with its own tokenizer,
// buffer manager and serializer — and an ordered merge emits the worker
// outputs in input order, so the sharded result is byte-identical to
// the sequential one. Whether a plan may be sharded, and along which
// path, is decided at compile time by analysis.Shardable.
package shard

import (
	"bytes"
	"context"
	"errors"
	"io"
	"sync"
	"time"

	"gcx/internal/analysis"
	"gcx/internal/core"
	"gcx/internal/jsontok"
	"gcx/internal/obs"
	"gcx/internal/xmltok"
	"gcx/internal/xpath"
)

// MaxWorkers caps the worker pool: each worker is a full engine
// instance with its own tokenizer and buffer manager, so an unbounded
// Options.Shards from a caller must not translate into unbounded
// goroutines. 64 comfortably exceeds any machine this targets.
const MaxWorkers = 64

// Config tunes a sharded execution.
type Config struct {
	// Workers is the number of parallel engine instances (≥ 2; callers
	// route 0/1 to the sequential path; clamped to MaxWorkers).
	Workers int
	// ChunkTargetBytes is the splitter's chunk size target (0 uses the
	// splitter default). Smaller chunks balance better, larger chunks
	// amortize per-engine setup.
	ChunkTargetBytes int
	// Exec are the per-worker engine options. RecordEvery is ignored:
	// buffer-plot recording is a sequential-run feature.
	Exec core.ExecOptions
}

// Result aggregates the per-worker engine results.
//
// Stats semantics under sharding (DESIGN.md §6): counters
// (TokensProcessed, TotalAppended, TotalPurged, OutputBytes) are sums
// over the workers; the buffer watermarks PeakBufferedNodes and
// PeakBufferedBytes are the sum of the per-worker peaks — an upper
// bound on the true simultaneous peak, since workers run staggered.
// TokensProcessed counts chunk-document tokens, which differ slightly
// from the sequential token count (synthesized wrapper tags; skipped
// non-record content).
type Result struct {
	core.ExecResult
	// Chunks is the number of chunks the input was cut into.
	Chunks int
}

// task is one chunk travelling through the pool: the producer enqueues
// it to the workers and, in input order, to the merger; the worker
// posts its output on done (capacity 1, so workers never block on a
// slow merge). data is the chunk's bytes regardless of which splitter
// produced it.
type task struct {
	data []byte
	// extra is the broadcast build fragment of a join-sharded run,
	// shared (not copied) across all tasks; nil otherwise.
	extra []byte
	done  chan taskResult
}

type taskResult struct {
	out *bytes.Buffer
	res *core.ExecResult
	err error
}

// outBufPool recycles the per-chunk output buffers.
var outBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// errShardJoinNDJSON guards a route analysis.NDJSONShardable already
// rejects; reaching it means a caller bypassed the eligibility check.
var errShardJoinNDJSON = errors.New("shard: join plans cannot shard over NDJSON input")

// joinFragment synthesizes the broadcast build fragment of a
// join-sharded run: open tags for the build ancestors below the
// divergence, the captured build subtrees verbatim, the matching close
// tags, and finally the close tags of the shared ancestors the
// splitter left open on every chunk. All steps are name tests
// (analysis.Shardable requires it for join recipes), so the tag names
// are statically known.
func joinFragment(info *analysis.ShardInfo, aux []byte) []byte {
	var b bytes.Buffer
	steps := info.BuildPath.Steps
	for _, st := range steps[info.Divergence : len(steps)-1] {
		b.WriteByte('<')
		b.WriteString(st.Test.Name)
		b.WriteByte('>')
	}
	b.Write(aux)
	for i := len(steps) - 2; i >= info.Divergence; i-- {
		b.WriteString("</")
		b.WriteString(steps[i].Test.Name)
		b.WriteByte('>')
	}
	shared := info.PartitionPath.Steps
	for i := info.Divergence - 1; i >= 0; i-- {
		b.WriteString("</")
		b.WriteString(shared[i].Test.Name)
		b.WriteByte('>')
	}
	return b.Bytes()
}

// Execute runs a sharded evaluation of info over input, writing the
// merged output to output. The reorder window is bounded: at most
// 2×Workers chunks are in flight between splitter and merge, so memory
// stays proportional to Workers × chunk size regardless of input size.
func Execute(ctx context.Context, info *analysis.ShardInfo, input io.Reader, output io.Writer, cfg Config) (*Result, error) {
	return run(ctx, info, input, nil, output, cfg)
}

// ExecuteBytes is Execute over an in-memory document: the splitter
// scans data in place (NDJSON chunks alias it — zero copies on the
// split side), and workers take the zero-copy engine path. The caller
// must not mutate data until the call returns.
func ExecuteBytes(ctx context.Context, info *analysis.ShardInfo, data []byte, output io.Writer, cfg Config) (*Result, error) {
	return run(ctx, info, nil, data, output, cfg)
}

// run is the shared sharded-execution body; input is nil on the []byte
// path.
func run(ctx context.Context, info *analysis.ShardInfo, input io.Reader, data []byte, output io.Writer, cfg Config) (*Result, error) {
	start := time.Now()
	workers := cfg.Workers
	if workers < 2 {
		workers = 2
	}
	if workers > MaxWorkers {
		workers = MaxWorkers
	}
	cfg.Exec.RecordEvery = 0

	// st collects the shard-level trace phases (DESIGN.md §11): the
	// synchronous chunk scan of a join-sharded run (PhaseSplit; the
	// streaming splitter overlaps the workers and is not separable) and
	// the ordered merge's writes (PhaseMerge). Worker phases are summed
	// across workers in the merge loop, so a sharded trace's phase total
	// can exceed the run's wall time.
	var st obs.Timer

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// The splitter is format-specific: XML input is cut at partition-
	// path record boundaries with ancestor re-wrapping (xmltok), NDJSON
	// at newlines with no re-wrapping at all (jsontok). Both deliver
	// self-contained chunk documents the workers evaluate independently.
	var nextChunk func() ([]byte, error)
	var extra []byte
	if cfg.Exec.Format == core.FormatNDJSON {
		if info.Join {
			return nil, errShardJoinNDJSON
		}
		var sp *jsontok.Splitter
		if input == nil {
			sp = jsontok.NewSplitterBytes(data)
		} else {
			sp = jsontok.NewSplitter(input)
		}
		sp.SetContext(cctx)
		sp.SetTargetBytes(cfg.ChunkTargetBytes)
		nextChunk = func() ([]byte, error) {
			c, err := sp.Next()
			return c.Data, err
		}
	} else {
		steps := make([]xmltok.SplitStep, len(info.PartitionPath.Steps))
		for i, st := range info.PartitionPath.Steps {
			steps[i] = xmltok.SplitStep{Name: st.Test.Name, Wildcard: st.Test.Kind == xpath.TestWildcard}
		}
		var sp *xmltok.Splitter
		if input == nil {
			sp = xmltok.NewSplitterBytes(data, steps)
		} else {
			sp = xmltok.NewSplitter(input, steps)
		}
		sp.SetContext(cctx)
		sp.SetTargetBytes(cfg.ChunkTargetBytes)
		nextChunk = func() ([]byte, error) {
			c, err := sp.Next()
			return c.Data, err
		}
		if info.Join {
			// Join runs are two-phase (DESIGN.md §10): the build section
			// may follow the probe records in document order, so no chunk
			// can be evaluated before the scan completes. Collect every
			// chunk first, then broadcast the build fragment — the
			// captured build subtrees re-wrapped under the ancestors the
			// splitter left open — to all of them. The reorder window
			// bound does not apply: a join run holds all chunks in memory.
			auxSteps := make([]xmltok.SplitStep, len(info.BuildPath.Steps))
			for i, st := range info.BuildPath.Steps {
				auxSteps[i] = xmltok.SplitStep{Name: st.Test.Name, Wildcard: st.Test.Kind == xpath.TestWildcard}
			}
			sp.CaptureAux(auxSteps, info.Divergence)
			splitStart := time.Now()
			var chunks [][]byte
			for {
				select {
				case <-cctx.Done():
					return nil, cctx.Err()
				default:
				}
				data, err := nextChunk()
				if err == io.EOF {
					break
				}
				if err != nil {
					return nil, err
				}
				chunks = append(chunks, data)
			}
			extra = joinFragment(info, sp.AuxData())
			if cfg.Exec.Trace {
				st.Add(obs.PhaseSplit, time.Since(splitStart))
			}
			i := 0
			nextChunk = func() ([]byte, error) {
				if i == len(chunks) {
					return nil, io.EOF
				}
				data := chunks[i]
				chunks[i] = nil
				i++
				return data, nil
			}
		}
	}

	work := make(chan *task, workers)
	order := make(chan *task, 2*workers)
	var splitErr error

	// Producer: scan the input once, cutting record chunks. Tasks are
	// offered to the workers first and to the ordered merge queue
	// second, so every task the merger waits on is already visible to a
	// worker.
	go func() {
		defer close(order)
		defer close(work)
		for {
			data, err := nextChunk()
			if err == io.EOF {
				return
			}
			if err != nil {
				splitErr = err
				return
			}
			t := &task{data: data, extra: extra, done: make(chan taskResult, 1)}
			select {
			case work <- t:
			case <-cctx.Done():
				return
			}
			select {
			case order <- t:
			case <-cctx.Done():
				return
			}
		}
	}()

	// Workers: one engine instance per chunk, each with its own buffer
	// manager, under the caller's context.
	for i := 0; i < workers; i++ {
		go func() {
			for t := range work {
				buf := outBufPool.Get().(*bytes.Buffer)
				buf.Reset()
				var res *core.ExecResult
				var err error
				if t.extra == nil {
					// Chunk bytes are immutable once handed out (fresh
					// buffers from the reader splitters, input subslices
					// from the bytes splitters): take the zero-copy path.
					res, err = core.ExecuteBytesContext(cctx, info.Inner, t.data, buf, cfg.Exec)
				} else {
					rd := io.MultiReader(bytes.NewReader(t.data), bytes.NewReader(t.extra))
					res, err = core.ExecuteContext(cctx, info.Inner, rd, buf, cfg.Exec)
				}
				t.done <- taskResult{out: buf, res: res, err: err}
			}
		}()
	}

	// Ordered merge: consume the order queue — input order by
	// construction — and stream each chunk's output as soon as it is
	// ready. The constant wrapper prefix is withheld until there is
	// something to write, mirroring the sequential engine's buffered
	// serializer, which emits nothing when a run fails early.
	agg := &Result{}
	var firstErr error
	wrotePrefix := false
	writeOut := func(p []byte) error {
		if cfg.Exec.Trace {
			ws := time.Now()
			defer func() { st.Add(obs.PhaseMerge, time.Since(ws)) }()
		}
		if !wrotePrefix {
			if _, err := output.Write(info.Prefix); err != nil {
				return err
			}
			wrotePrefix = true
		}
		_, err := output.Write(p)
		return err
	}
	for t := range order {
		r := <-t.done
		if firstErr == nil && r.err != nil {
			firstErr = r.err
			cancel() // stop the producer and drain the remaining chunks
		}
		if firstErr == nil {
			if err := writeOut(r.out.Bytes()); err != nil {
				firstErr = err
				cancel()
			} else {
				agg.TokensProcessed += r.res.TokensProcessed
				agg.PeakBufferedNodes += r.res.PeakBufferedNodes
				agg.PeakBufferedBytes += r.res.PeakBufferedBytes
				agg.FinalBufferedNodes += r.res.FinalBufferedNodes
				agg.TotalAppended += r.res.TotalAppended
				agg.TotalPurged += r.res.TotalPurged
				agg.OutputBytes += r.res.OutputBytes
				agg.BytesSkipped += r.res.BytesSkipped
				agg.TagsSkipped += r.res.TagsSkipped
				agg.SubtreesSkipped += r.res.SubtreesSkipped
				agg.JoinProbeTuples += r.res.JoinProbeTuples
				agg.JoinBuildTuples += r.res.JoinBuildTuples
				agg.JoinMatches += r.res.JoinMatches
				if cfg.Exec.Trace {
					agg.Phases = obs.SumPhases(agg.Phases, r.res.Phases)
				}
				agg.Chunks++
			}
		}
		if r.out != nil {
			outBufPool.Put(r.out)
		}
	}
	if firstErr == nil {
		firstErr = splitErr // close(order) happens-after the assignment
	}
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if err := writeOut(info.Suffix); err != nil {
		return nil, err
	}
	agg.OutputBytes += int64(len(info.Prefix) + len(info.Suffix))
	if cfg.Exec.Trace {
		agg.Phases = obs.SumPhases(agg.Phases, st.Phases())
	}
	agg.Duration = time.Since(start)
	return agg, nil
}
