package xpath

import (
	"strings"
	"testing"
)

// path builds a Path from steps.
func path(steps ...Step) Path { return Path{Steps: steps} }

func descStep(name string) Step {
	return Step{Axis: Descendant, Test: Test{Kind: TestName, Name: name}}
}

// walk drives the automaton down a chain of element names.
func walk(a *Automaton, names ...string) int32 {
	s := a.Start()
	for _, n := range names {
		s = a.Next(s, n)
	}
	return s
}

func TestAutomatonChildPaths(t *testing.T) {
	// /site/people/person — the Q1 binding shape.
	a := CompileAutomaton([]Path{path(ChildStep("site"), ChildStep("people"), ChildStep("person"))})
	if a == nil {
		t.Fatal("nil automaton")
	}
	if a.Dead(a.Start()) {
		t.Fatal("start state dead")
	}
	if s := walk(a, "site", "people", "person"); !a.Accepting(s) || a.Dead(s) {
		t.Fatal("person not accepted")
	}
	// A sibling section the path does not mention is dead immediately.
	if s := walk(a, "site", "regions"); !a.Dead(s) {
		t.Fatal("regions should be dead")
	}
	// Wrong root: dead.
	if s := walk(a, "other"); !a.Dead(s) {
		t.Fatal("wrong root should be dead")
	}
	// Below an accepting leaf with no continuing positions: dead.
	if s := walk(a, "site", "people", "person", "name"); !a.Dead(s) {
		t.Fatal("below the matched leaf should be dead")
	}
}

func TestAutomatonDescendantSelfLoop(t *testing.T) {
	// /site/regions/descendant::item keeps the whole regions subtree
	// alive (items may appear at any depth) but kills siblings.
	a := CompileAutomaton([]Path{path(ChildStep("site"), ChildStep("regions"), descStep("item"))})
	if a == nil {
		t.Fatal("nil automaton")
	}
	for _, chain := range [][]string{
		{"site", "regions"},
		{"site", "regions", "africa"},
		{"site", "regions", "africa", "x", "y", "z"},
	} {
		if s := walk(a, chain...); a.Dead(s) {
			t.Fatalf("%v should stay alive under the descendant self-loop", chain)
		}
	}
	if s := walk(a, "site", "regions", "africa", "item"); !a.Accepting(s) {
		t.Fatal("item under regions must accept")
	}
	if s := walk(a, "site", "people"); !a.Dead(s) {
		t.Fatal("people must be dead for a regions-only query")
	}
}

func TestAutomatonDescendantOrSelfOutputTail(t *testing.T) {
	// /a/b/descendant-or-self::node() — the output-role shape: b and
	// everything below it accepts, siblings are dead.
	a := CompileAutomaton([]Path{path(ChildStep("a"), ChildStep("b"), DescendantOrSelfNodeStep())})
	if a == nil {
		t.Fatal("nil automaton")
	}
	for _, chain := range [][]string{
		{"a", "b"},
		{"a", "b", "c"},
		{"a", "b", "c", "d"},
	} {
		if s := walk(a, chain...); !a.Accepting(s) || a.Dead(s) {
			t.Fatalf("%v must accept under descendant-or-self::node()", chain)
		}
	}
	if s := walk(a, "a", "c"); !a.Dead(s) {
		t.Fatal("sibling c must be dead")
	}
}

func TestAutomatonWildcard(t *testing.T) {
	// /bib/*/price: any second-level element stays alive.
	a := CompileAutomaton([]Path{path(ChildStep("bib"), WildcardStep(), ChildStep("price"))})
	if s := walk(a, "bib", "anything"); a.Dead(s) {
		t.Fatal("wildcard level must stay alive")
	}
	if s := walk(a, "bib", "x", "price"); !a.Accepting(s) {
		t.Fatal("price must accept")
	}
	if s := walk(a, "bib", "x", "title"); !a.Dead(s) {
		t.Fatal("non-price grandchild must be dead")
	}
}

func TestAutomatonFirstWitnessLatch(t *testing.T) {
	// A matched [1] step flips a shared used-latch in the preprojector
	// even when the continuation dies; the automaton must keep such
	// elements alive so skipping cannot diverge on latch state.
	p := path(
		ChildStep("a"),
		Step{Axis: Child, Test: Test{Kind: TestName, Name: "w"}, FirstOnly: true},
		Step{Axis: Self, Test: Test{Kind: TestName, Name: "never"}},
	)
	a := CompileAutomaton([]Path{p})
	if a == nil {
		t.Fatal("nil automaton")
	}
	s := walk(a, "a", "w")
	if a.Dead(s) {
		t.Fatal("element matching a [1] step must not be skipped (latch side effect)")
	}
	// But its children carry no positions: dead from there on.
	if s2 := a.Next(s, "x"); !a.Dead(s2) {
		t.Fatal("children of a latch-only state must be dead")
	}
}

func TestAutomatonMultiplePaths(t *testing.T) {
	// Union: alive wherever any path is alive.
	a := CompileAutomaton([]Path{
		path(ChildStep("a"), ChildStep("b")),
		path(ChildStep("a"), ChildStep("c"), ChildStep("d")),
	})
	if s := walk(a, "a", "c"); a.Dead(s) {
		t.Fatal("c alive via second path")
	}
	if s := walk(a, "a", "b"); !a.Accepting(s) {
		t.Fatal("b accepts via first path")
	}
	if s := walk(a, "a", "e"); !a.Dead(s) {
		t.Fatal("e dead in both")
	}
}

func TestAutomatonEmptyPathRole(t *testing.T) {
	// The root role "/" (empty path) accepts at the root and
	// contributes nothing below; other paths still work.
	a := CompileAutomaton([]Path{
		{},
		path(ChildStep("a")),
	})
	if !a.Accepting(a.Start()) {
		t.Fatal("empty path must accept at the root")
	}
	if s := walk(a, "a"); !a.Accepting(s) {
		t.Fatal("/a must accept")
	}
	if s := walk(a, "b"); !a.Dead(s) {
		t.Fatal("/b must be dead")
	}
}

func TestAutomatonAttributeDisables(t *testing.T) {
	if a := CompileAutomaton([]Path{path(ChildStep("a"), AttributeStep("id"))}); a != nil {
		t.Fatal("attribute paths must disable the automaton")
	}
}

// TestCompileAutomatonReason: the diagnosis names the offending axis on
// failure and is empty on success (Plan.Explain's "Skipping:" line).
func TestCompileAutomatonReason(t *testing.T) {
	a, reason := CompileAutomatonReason([]Path{path(ChildStep("a"), AttributeStep("id"))})
	if a != nil || !strings.Contains(reason, "attribute") {
		t.Fatalf("want nil automaton and an attribute-axis reason, got %v %q", a, reason)
	}
	a, reason = CompileAutomatonReason([]Path{path(ChildStep("a"), ChildStep("b"))})
	if a == nil || reason != "" {
		t.Fatalf("want automaton and empty reason, got %v %q", a, reason)
	}
}

func TestAutomatonDeterministicAndTotal(t *testing.T) {
	// Every state must have a transition for every symbol (spot-check
	// by walking random-ish chains without panics).
	a := CompileAutomaton([]Path{
		path(ChildStep("a"), descStep("b"), WildcardStep()),
		path(ChildStep("a"), ChildStep("c"), DescendantOrSelfNodeStep()),
	})
	if a == nil {
		t.Fatal("nil automaton")
	}
	names := []string{"a", "b", "c", "zzz", "b"}
	s := a.Start()
	for i := 0; i < 64; i++ {
		s = a.Next(s, names[i%len(names)])
	}
	if a.NumStates() < 2 {
		t.Fatalf("suspiciously small automaton: %d states", a.NumStates())
	}
}
