package xpath

import (
	"fmt"
	"sort"
)

// Automaton is a deterministic automaton over element names compiled
// from a set of projection paths (DESIGN.md §7). Its states summarize,
// for an open element, every (role, step) matching position the
// preprojector's NFA items could occupy at that element — ignoring the
// first-witness [1] predicate and derivation counts, which only prune
// matches and never add them. A state is *dead* when the position set
// is empty and no role completed at the element: nothing inside the
// element's subtree (elements or text) can then match any projection
// path, so the preprojector may fast-forward the raw byte stream past
// the whole subtree (Tokenizer.SkipSubtree) without observing it.
//
// The automaton is built once per compiled query by subset
// construction and shared read-only by every execution (including each
// shard worker, which compiles its own inner plan). Descendant and
// descendant-or-self steps appear as self-loops: their positions stay
// in every successor state below the element where they became active,
// which is exactly why a //item path keeps the whole regions subtree
// alive while letting the sibling people section go dead.
type Automaton struct {
	states []dfaState
	start  int32
}

// dfaState is one subset-construction state.
type dfaState struct {
	// byName maps the element names mentioned by any path test to
	// successor states; names not present take the other transition.
	byName map[string]int32
	// other is the successor for element names no TestName step
	// mentions (wildcard and node() tests still match those).
	other int32
	// dead marks the empty, non-accepting, latch-free state: no
	// projection path can match at or below an element in this state,
	// and visiting the element has no side effect on matcher state.
	dead bool
	// accept marks states where at least one role completes at the
	// element itself (the element is materialized in the buffer).
	accept bool
}

// maxAutomatonStates bounds subset construction. Projection-path sets
// are tiny (XMark queries stay under a few dozen states); the cap only
// guards pathological inputs. When it is exceeded CompileAutomaton
// returns nil and callers run without subtree skipping.
const maxAutomatonStates = 4096

// position is one NFA matching position: role's path has matched a
// prefix and expects Steps[step] next. Positions stored in states only
// carry Child, Descendant and DescendantOrSelf axes — Self steps and
// the self half of DescendantOrSelf are resolved eagerly at transition
// time, mirroring the preprojector's advance.
type position struct {
	role, step int32
}

// posSet is a canonicalized state under construction.
type posSet struct {
	positions []position
	accept    bool
	// latch marks states entered by matching a first-witness [1] step:
	// even when no position survives, the non-skipping matcher would
	// have flipped the step's shared used-latch at this element, so the
	// element itself must not be skipped (its children may still be —
	// transitions out of a latch-only state go dead). Without this bit,
	// a skipping run could buffer a later "first" witness the
	// non-skipping run suppressed.
	latch bool
}

func (s *posSet) add(p position) {
	s.positions = append(s.positions, p)
}

// key canonicalizes the set (sorted, deduplicated) and returns a
// comparable identity. It mutates s into canonical form.
func (s *posSet) key() string {
	sort.Slice(s.positions, func(i, j int) bool {
		a, b := s.positions[i], s.positions[j]
		if a.role != b.role {
			return a.role < b.role
		}
		return a.step < b.step
	})
	out := s.positions[:0]
	for i, p := range s.positions {
		if i == 0 || p != s.positions[i-1] {
			out = append(out, p)
		}
	}
	s.positions = out
	buf := make([]byte, 0, len(s.positions)*8+1)
	for _, p := range s.positions {
		buf = append(buf,
			byte(p.role), byte(p.role>>8), byte(p.role>>16), byte(p.role>>24),
			byte(p.step), byte(p.step>>8), byte(p.step>>16), byte(p.step>>24))
	}
	var flags byte
	if s.accept {
		flags |= 1
	}
	if s.latch {
		flags |= 2
	}
	buf = append(buf, flags)
	return string(buf)
}

// symbol is one input letter of the automaton: a concrete element name,
// or the class of all names no path test mentions.
type symbol struct {
	name  string
	other bool
}

func (sym symbol) matches(t Test) bool {
	switch t.Kind {
	case TestName:
		return !sym.other && t.Name == sym.name
	case TestWildcard, TestNode:
		return true
	default: // TestText never matches an element
		return false
	}
}

// CompileAutomaton builds the path automaton for a role-path set. It
// returns nil — disabling subtree skipping, never affecting
// correctness — when a path uses an axis the preprojector's element
// matching does not (Attribute), or when subset construction exceeds
// maxAutomatonStates.
func CompileAutomaton(paths []Path) *Automaton {
	a, _ := CompileAutomatonReason(paths)
	return a
}

// CompileAutomatonReason is CompileAutomaton with a diagnosis: when the
// automaton cannot be built it returns nil and the reason subtree
// skipping is unavailable for the path set, for Explain output.
func CompileAutomatonReason(paths []Path) (*Automaton, string) {
	steps := make([][]Step, len(paths))
	names := map[string]struct{}{}
	for i, p := range paths {
		steps[i] = p.Steps
		for _, st := range p.Steps {
			switch st.Axis {
			case Child, Descendant, DescendantOrSelf, Self:
			default:
				return nil, "projection path " + p.String() + " uses the " + st.Axis.String() +
					" axis, which the byte-level path DFA cannot track"
			}
			if st.Test.Kind == TestName {
				names[st.Test.Name] = struct{}{}
			}
		}
	}

	a := &Automaton{}
	ids := map[string]int32{}

	// intern registers a canonical set, returning its state id.
	var worklist []posSet
	intern := func(s posSet) int32 {
		k := s.key()
		if id, ok := ids[k]; ok {
			return id
		}
		id := int32(len(a.states))
		ids[k] = id
		a.states = append(a.states, dfaState{
			dead:   len(s.positions) == 0 && !s.accept && !s.latch,
			accept: s.accept,
		})
		worklist = append(worklist, s)
		return id
	}

	// closure resolves a position's Self steps and DescendantOrSelf
	// self-halves against the element the transition enters (mirroring
	// projection's advance), recording completion in s.accept.
	var closure func(s *posSet, role, step int32, sym symbol)
	closure = func(s *posSet, role, step int32, sym symbol) {
		if int(step) >= len(steps[role]) {
			s.accept = true
			return
		}
		st := steps[role][step]
		switch st.Axis {
		case Self:
			if sym.matches(st.Test) {
				if st.FirstOnly {
					s.latch = true
				}
				closure(s, role, step+1, sym)
			}
		case DescendantOrSelf:
			if sym.matches(st.Test) {
				if st.FirstOnly {
					s.latch = true
				}
				closure(s, role, step+1, sym)
			}
			s.add(position{role, step})
		default: // Child, Descendant
			s.add(position{role, step})
		}
	}

	// rootClosure is the same resolution against the virtual document
	// root, which is matched by node() tests only (projection's
	// frame.matchesSelf for the root frame).
	var rootClosure func(s *posSet, role, step int32)
	rootClosure = func(s *posSet, role, step int32) {
		if int(step) >= len(steps[role]) {
			s.accept = true
			return
		}
		st := steps[role][step]
		switch st.Axis {
		case Self:
			if st.Test.Kind == TestNode {
				rootClosure(s, role, step+1)
			}
		case DescendantOrSelf:
			if st.Test.Kind == TestNode {
				rootClosure(s, role, step+1)
			}
			s.add(position{role, step})
		default:
			s.add(position{role, step})
		}
	}

	var start posSet
	for role := range steps {
		rootClosure(&start, int32(role), 0)
	}
	a.start = intern(start)

	// step advances every position of cur over sym: Child positions are
	// consumed on a test match; Descendant/DescendantOrSelf positions
	// self-loop (they stay active for the whole subtree) and advance on
	// a match in addition.
	step := func(cur *posSet, sym symbol) posSet {
		var next posSet
		for _, p := range cur.positions {
			st := steps[p.role][p.step]
			switch st.Axis {
			case Child:
				if sym.matches(st.Test) {
					if st.FirstOnly {
						next.latch = true
					}
					closure(&next, p.role, p.step+1, sym)
				}
			case Descendant, DescendantOrSelf:
				next.add(p)
				if sym.matches(st.Test) {
					if st.FirstOnly {
						next.latch = true
					}
					closure(&next, p.role, p.step+1, sym)
				}
			}
		}
		return next
	}

	symbols := make([]symbol, 0, len(names)+1)
	for n := range names {
		symbols = append(symbols, symbol{name: n})
	}
	sort.Slice(symbols, func(i, j int) bool { return symbols[i].name < symbols[j].name })
	symbols = append(symbols, symbol{other: true})

	for done := 0; done < len(worklist); done++ {
		cur := worklist[done] // worklist grows in lockstep with a.states
		for _, sym := range symbols {
			id := intern(step(&cur, sym))
			if len(a.states) > maxAutomatonStates {
				return nil, fmt.Sprintf("subset construction exceeded the %d-state cap", maxAutomatonStates)
			}
			st := &a.states[done]
			if sym.other {
				st.other = id
			} else {
				if st.byName == nil {
					st.byName = make(map[string]int32, len(symbols))
				}
				st.byName[sym.name] = id
			}
		}
	}
	return a, ""
}

// Start returns the state of the virtual document root.
func (a *Automaton) Start() int32 { return a.start }

// Next returns the successor state entered by a child element with the
// given name.
func (a *Automaton) Next(state int32, name string) int32 {
	st := &a.states[state]
	if id, ok := st.byName[name]; ok {
		return id
	}
	return st.other
}

// Dead reports whether the state is dead: no projection path can match
// at or below an element in this state, so its entire subtree may be
// skipped at byte level.
func (a *Automaton) Dead(state int32) bool { return a.states[state].dead }

// Accepting reports whether some role completes at an element in this
// state (used by tests and Explain-style tooling).
func (a *Automaton) Accepting(state int32) bool { return a.states[state].accept }

// NumStates reports the automaton size.
func (a *Automaton) NumStates() int { return len(a.states) }
