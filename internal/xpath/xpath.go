// Package xpath defines the path model shared by the whole system: the
// XPath fragment of GCX (axes child, descendant, descendant-or-self and
// self; node tests by name, wildcard, text() and node(); the
// first-witness predicate [1]; attribute steps).
//
// Absolute paths over this model are exactly the paper's projection
// paths (its Fig. 3(a) role browser shows paths such as
// /bib/∗/price[1] and /bib/book/title/descendant-or-self::node()), and
// relative paths are the arguments of signOff statements.
package xpath

import (
	"fmt"
	"strings"
)

// Axis is an XPath axis.
type Axis uint8

const (
	// Child selects the children of the context node.
	Child Axis = iota
	// Descendant selects all proper descendants.
	Descendant
	// DescendantOrSelf selects the context node and all descendants.
	DescendantOrSelf
	// Self selects the context node itself.
	Self
	// Attribute selects a named attribute of the context node. In this
	// system attributes are properties of element nodes (they are
	// buffered and purged with their element), so Attribute steps are
	// always the final step of a path and never occur in projection
	// paths.
	Attribute
)

func (a Axis) String() string {
	switch a {
	case Child:
		return "child"
	case Descendant:
		return "descendant"
	case DescendantOrSelf:
		return "descendant-or-self"
	case Self:
		return "self"
	case Attribute:
		return "attribute"
	default:
		return fmt.Sprintf("Axis(%d)", uint8(a))
	}
}

// TestKind is the kind of node test of a step.
type TestKind uint8

const (
	// TestName matches element nodes with a specific name.
	TestName TestKind = iota
	// TestWildcard matches any element node (the paper's ∗).
	TestWildcard
	// TestText matches text nodes (text()).
	TestText
	// TestNode matches any node (node()).
	TestNode
)

// Test is a node test.
type Test struct {
	Kind TestKind
	// Name is the element name for TestName, or the attribute name when
	// the step's axis is Attribute.
	Name string
}

// MatchesElement reports whether the test accepts an element with the
// given name.
func (t Test) MatchesElement(name string) bool {
	switch t.Kind {
	case TestName:
		return t.Name == name
	case TestWildcard, TestNode:
		return true
	default:
		return false
	}
}

// MatchesText reports whether the test accepts a text node.
func (t Test) MatchesText() bool {
	return t.Kind == TestText || t.Kind == TestNode
}

func (t Test) String() string {
	switch t.Kind {
	case TestName:
		return t.Name
	case TestWildcard:
		return "*"
	case TestText:
		return "text()"
	case TestNode:
		return "node()"
	default:
		return fmt.Sprintf("Test(%d)", uint8(t.Kind))
	}
}

// Step is one location step.
type Step struct {
	Axis Axis
	Test Test
	// FirstOnly marks the paper's first-witness predicate [1]: only the
	// first node (in document order) matched within each context node is
	// selected. It is produced by existence conditions (role r4 in the
	// paper: /bib/∗/price[1]).
	FirstOnly bool
}

// String renders the step in the compact notation the paper uses:
// child::name as "name", child::* as "*", attribute::n as "@n", other
// axes spelled out.
func (s Step) String() string {
	var b strings.Builder
	switch {
	case s.Axis == Child:
		b.WriteString(s.Test.String())
	case s.Axis == Attribute:
		b.WriteString("@")
		b.WriteString(s.Test.Name)
	default:
		b.WriteString(s.Axis.String())
		b.WriteString("::")
		b.WriteString(s.Test.String())
	}
	if s.FirstOnly {
		b.WriteString("[1]")
	}
	return b.String()
}

// Path is a sequence of steps. Whether it is absolute (rooted at the
// virtual document root) or relative (rooted at a variable binding) is
// determined by its use site, not by the type.
type Path struct {
	Steps []Step
}

// ChildStep returns a child::name step.
func ChildStep(name string) Step {
	return Step{Axis: Child, Test: Test{Kind: TestName, Name: name}}
}

// WildcardStep returns a child::* step.
func WildcardStep() Step {
	return Step{Axis: Child, Test: Test{Kind: TestWildcard}}
}

// DescendantOrSelfNodeStep returns descendant-or-self::node(), the step
// appended to output expressions (roles r5 and r7 in the paper).
func DescendantOrSelfNodeStep() Step {
	return Step{Axis: DescendantOrSelf, Test: Test{Kind: TestNode}}
}

// AttributeStep returns an attribute::name step.
func AttributeStep(name string) Step {
	return Step{Axis: Attribute, Test: Test{Kind: TestName, Name: name}}
}

// IsEmpty reports whether the path has no steps (a self path).
func (p Path) IsEmpty() bool { return len(p.Steps) == 0 }

// Append returns a new path with the given steps appended; the receiver
// is not modified.
func (p Path) Append(steps ...Step) Path {
	out := make([]Step, 0, len(p.Steps)+len(steps))
	out = append(out, p.Steps...)
	out = append(out, steps...)
	return Path{Steps: out}
}

// EndsWithAttribute reports whether the final step is an attribute step.
func (p Path) EndsWithAttribute() bool {
	return len(p.Steps) > 0 && p.Steps[len(p.Steps)-1].Axis == Attribute
}

// EndsWithText reports whether the final step is a text() test.
func (p Path) EndsWithText() bool {
	return len(p.Steps) > 0 && p.Steps[len(p.Steps)-1].Test.Kind == TestText
}

// WithoutLastStep returns the path with its final step removed.
func (p Path) WithoutLastStep() Path {
	if len(p.Steps) == 0 {
		return p
	}
	out := make([]Step, len(p.Steps)-1)
	copy(out, p.Steps[:len(p.Steps)-1])
	return Path{Steps: out}
}

// LastStep returns the final step. It panics on an empty path.
func (p Path) LastStep() Step { return p.Steps[len(p.Steps)-1] }

// String renders the path in the paper's notation. An empty path renders
// as "/" (role r1 in the paper, the document root).
func (p Path) String() string {
	if len(p.Steps) == 0 {
		return "/"
	}
	var b strings.Builder
	for _, s := range p.Steps {
		b.WriteString("/")
		b.WriteString(s.String())
	}
	return b.String()
}

// RelString renders the path as a relative path suffix (no leading "/"
// for the first step), used when printing signOff arguments such as
// "$x/price[1]".
func (p Path) RelString() string {
	if len(p.Steps) == 0 {
		return "."
	}
	parts := make([]string, len(p.Steps))
	for i, s := range p.Steps {
		parts[i] = s.String()
	}
	return strings.Join(parts, "/")
}

// Equal reports structural equality of two paths.
func (p Path) Equal(q Path) bool {
	if len(p.Steps) != len(q.Steps) {
		return false
	}
	for i := range p.Steps {
		if p.Steps[i] != q.Steps[i] {
			return false
		}
	}
	return true
}

// HasDescendantAxis reports whether any step uses a descendant or
// descendant-or-self axis. Such paths can assign a role to the same node
// several times (the paper: "a role can be assigned to a node multiple
// times when queries involve the XPath descendant axis").
func (p Path) HasDescendantAxis() bool {
	for _, s := range p.Steps {
		if s.Axis == Descendant || s.Axis == DescendantOrSelf {
			return true
		}
	}
	return false
}
