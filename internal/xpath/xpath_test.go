package xpath

import "testing"

func TestStepString(t *testing.T) {
	cases := []struct {
		step Step
		want string
	}{
		{ChildStep("bib"), "bib"},
		{WildcardStep(), "*"},
		{Step{Axis: Child, Test: Test{Kind: TestName, Name: "price"}, FirstOnly: true}, "price[1]"},
		{DescendantOrSelfNodeStep(), "descendant-or-self::node()"},
		{Step{Axis: Descendant, Test: Test{Kind: TestName, Name: "item"}}, "descendant::item"},
		{AttributeStep("id"), "@id"},
		{Step{Axis: Child, Test: Test{Kind: TestText}}, "text()"},
		{Step{Axis: Self, Test: Test{Kind: TestNode}}, "self::node()"},
	}
	for _, c := range cases {
		if got := c.step.String(); got != c.want {
			t.Errorf("Step.String() = %q, want %q", got, c.want)
		}
	}
}

// TestPaperRolePathStrings checks that the seven projection paths of the
// paper's running example render exactly as printed in the paper.
func TestPaperRolePathStrings(t *testing.T) {
	paths := []struct {
		p    Path
		want string
	}{
		{Path{}, "/"},
		{Path{Steps: []Step{ChildStep("bib")}}, "/bib"},
		{Path{Steps: []Step{ChildStep("bib"), WildcardStep()}}, "/bib/*"},
		{Path{Steps: []Step{ChildStep("bib"), WildcardStep(),
			{Axis: Child, Test: Test{Kind: TestName, Name: "price"}, FirstOnly: true}}},
			"/bib/*/price[1]"},
		{Path{Steps: []Step{ChildStep("bib"), WildcardStep(), DescendantOrSelfNodeStep()}},
			"/bib/*/descendant-or-self::node()"},
		{Path{Steps: []Step{ChildStep("bib"), ChildStep("book")}}, "/bib/book"},
		{Path{Steps: []Step{ChildStep("bib"), ChildStep("book"), ChildStep("title"),
			DescendantOrSelfNodeStep()}},
			"/bib/book/title/descendant-or-self::node()"},
	}
	for i, c := range paths {
		if got := c.p.String(); got != c.want {
			t.Errorf("r%d: String() = %q, want %q", i+1, got, c.want)
		}
	}
}

func TestTestMatching(t *testing.T) {
	name := Test{Kind: TestName, Name: "book"}
	if !name.MatchesElement("book") || name.MatchesElement("article") {
		t.Error("TestName matching wrong")
	}
	if name.MatchesText() {
		t.Error("TestName must not match text")
	}
	wc := Test{Kind: TestWildcard}
	if !wc.MatchesElement("anything") || wc.MatchesText() {
		t.Error("wildcard matching wrong")
	}
	txt := Test{Kind: TestText}
	if txt.MatchesElement("a") || !txt.MatchesText() {
		t.Error("text() matching wrong")
	}
	node := Test{Kind: TestNode}
	if !node.MatchesElement("a") || !node.MatchesText() {
		t.Error("node() matching wrong")
	}
}

func TestPathHelpers(t *testing.T) {
	p := Path{Steps: []Step{ChildStep("a")}}
	q := p.Append(ChildStep("b"), AttributeStep("id"))
	if len(p.Steps) != 1 {
		t.Fatal("Append mutated receiver")
	}
	if q.String() != "/a/b/@id" {
		t.Fatalf("q = %q", q.String())
	}
	if !q.EndsWithAttribute() {
		t.Error("EndsWithAttribute false")
	}
	r := q.WithoutLastStep()
	if r.String() != "/a/b" || q.String() != "/a/b/@id" {
		t.Error("WithoutLastStep wrong or mutated receiver")
	}
	if !r.Equal(Path{Steps: []Step{ChildStep("a"), ChildStep("b")}}) {
		t.Error("Equal false negative")
	}
	if r.Equal(p) {
		t.Error("Equal false positive")
	}
	if (Path{}).String() != "/" {
		t.Error("empty path string")
	}
	if (Path{}).RelString() != "." {
		t.Error("empty rel string")
	}
	if q.RelString() != "a/b/@id" {
		t.Errorf("RelString = %q", q.RelString())
	}
	if !q.WithoutLastStep().Append(DescendantOrSelfNodeStep()).HasDescendantAxis() {
		t.Error("HasDescendantAxis false negative")
	}
	if q.HasDescendantAxis() {
		t.Error("HasDescendantAxis false positive")
	}
	txt := Path{Steps: []Step{ChildStep("a"), {Axis: Child, Test: Test{Kind: TestText}}}}
	if !txt.EndsWithText() {
		t.Error("EndsWithText false negative")
	}
}
