// Package gcxd implements the GCX query server behind cmd/gcxd: a
// concurrent HTTP front end over the streaming engine, importable so
// tests and the gcxload harness can run an in-process instance.
//
// Observability (DESIGN.md §11): every serving counter lives in one
// obs.Registry — GET /metrics renders the Prometheus text exposition,
// GET /stats the legacy JSON view over a single atomic snapshot of the
// same values, so the two cannot drift and related counters cannot tear
// mid-read. Request logging goes through log/slog with one line per
// query carrying the query hash, engine, format, shards, bytes and
// outcome.
package gcxd

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"gcx"
	"gcx/internal/obs"
)

// Config tunes a Server.
type Config struct {
	// CacheSize is the compiled-query LRU capacity (≤ 0 uses 256).
	CacheSize int
	// MaxInflight bounds concurrently executing /query requests; above
	// it the server sheds load with 503 + Retry-After instead of
	// queueing without bound. 0 means unlimited.
	MaxInflight int
	// BytesBodyLimit routes request bodies with a known Content-Length
	// at or below this many bytes through the zero-copy []byte engine
	// path (DESIGN.md §12): the body is buffered once and scanned in
	// place instead of streamed through the refill cursor. 0 uses
	// DefaultBytesBodyLimit; negative disables the fast path. Requests
	// without a Content-Length (chunked uploads) always stream.
	BytesBodyLimit int64
	// Logger receives one structured line per request; nil discards.
	Logger *slog.Logger
}

// DefaultBytesBodyLimit is the default small-body threshold (1 MiB): a
// body this size buffers in one allocation that is cheaper than the
// per-token costs the zero-copy path saves.
const DefaultBytesBodyLimit = 1 << 20

// Server is the gcxd HTTP handler; it is safe for concurrent use.
type Server struct {
	mux   *http.ServeMux
	cache *gcx.QueryCache
	log   *slog.Logger
	reg   *obs.Registry

	// inflight is the admission semaphore (nil = unlimited): a slot is
	// held for the whole execution, so MaxInflight bounds engine
	// concurrency, not just accept concurrency.
	inflight chan struct{}

	// bytesBodyLimit is the resolved small-body threshold (-1 when the
	// bytes fast path is disabled).
	bytesBodyLimit int64

	requests *obs.Counter
	errors   *obs.Counter
	bytesOut *obs.Counter

	// Sharded-execution counters: requests that asked for shards > 1,
	// worker instances launched and chunks processed on their behalf,
	// and requests that fell back to the sequential engine because the
	// query was not partitionable.
	shardedRequests *obs.Counter
	shardWorkers    *obs.Counter
	shardChunks     *obs.Counter
	shardFallbacks  *obs.Counter

	// Subtree-skipping counters (DESIGN.md §7): input bytes the engines
	// fast-forwarded past without tokenizing, and fast-forwards taken.
	bytesSkipped    *obs.Counter
	subtreesSkipped *obs.Counter

	// jsonRequests counts requests that selected the JSON/NDJSON front
	// end via ?format= (DESIGN.md §8).
	jsonRequests *obs.Counter

	// Streaming-join counters (DESIGN.md §10): probe bindings, build
	// tuples and matched emissions across all runs of detected joins.
	joinProbeTuples *obs.Counter
	joinBuildTuples *obs.Counter
	joinMatches     *obs.Counter

	// Budget accounting (DESIGN.md §9): requests rejected at admission
	// because a ?max_nodes= budget met a statically-unbounded query, and
	// runs aborted because the buffer hit the budget at runtime.
	budgetRejections *obs.Counter
	budgetTrips      *obs.Counter

	// Lifetime buffer high-water marks across all requests, in the
	// engine's node/byte metrics.
	peakNodes *obs.Gauge
	peakBytes *obs.Gauge

	// Load-shedding accounting: currently executing requests and
	// requests rejected because MaxInflight was saturated.
	inflightGauge      *obs.Gauge
	inflightRejections *obs.Counter

	// Per-request latency and response size, labeled by engine, format
	// and outcome (ok | error | budget).
	latency  *obs.HistogramVec
	respSize *obs.HistogramVec
}

// NewServer builds a server with its metrics registry.
func NewServer(cfg Config) *Server {
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 256
	}
	logger := cfg.Logger
	if logger == nil {
		// Discard via a disabled-level text handler (slog.DiscardHandler
		// needs go ≥ 1.24; the module targets 1.22).
		logger = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
	}
	r := obs.New()
	s := &Server{
		mux:   http.NewServeMux(),
		cache: gcx.NewQueryCache(cfg.CacheSize),
		log:   logger,
		reg:   r,

		requests: r.Counter("gcx_requests_total", "HTTP requests received, across all endpoints.").Key("requests"),
		errors:   r.Counter("gcx_request_errors_total", "Requests that ended in an error response or error trailer.").Key("errors"),
		bytesOut: r.Counter("gcx_response_bytes_total", "Query result bytes written to clients.").Key("bytes_out"),

		shardedRequests: r.Counter("gcx_sharded_requests_total", "Requests that asked for shards > 1.").Key("sharded_requests"),
		shardWorkers:    r.Counter("gcx_shard_workers_total", "Parallel engine instances launched for sharded requests.").Key("shard_workers"),
		shardChunks:     r.Counter("gcx_shard_chunks_total", "Input chunks processed by sharded requests.").Key("shard_chunks"),
		shardFallbacks:  r.Counter("gcx_shard_fallbacks_total", "Sharded requests that fell back to sequential execution.").Key("shard_fallbacks"),

		bytesSkipped:    r.Counter("gcx_input_bytes_skipped_total", "Input bytes fast-forwarded past by subtree skipping.").Key("bytes_skipped"),
		subtreesSkipped: r.Counter("gcx_subtrees_skipped_total", "Byte-level subtree fast-forwards taken.").Key("subtrees_skipped"),

		jsonRequests: r.Counter("gcx_json_requests_total", "Requests using the JSON/NDJSON front end.").Key("json_requests"),

		joinProbeTuples: r.Counter("gcx_join_probe_tuples_total", "Probe-side bindings captured by the streaming join.").Key("join_probe_tuples"),
		joinBuildTuples: r.Counter("gcx_join_build_tuples_total", "Build-side tuples materialized by the streaming join.").Key("join_build_tuples"),
		joinMatches:     r.Counter("gcx_join_matches_total", "Matched payload emissions of the streaming join.").Key("join_matches"),

		budgetRejections: r.Counter("gcx_budget_rejections_total", "Budgeted requests rejected at admission (statically unbounded query).").Key("budget_rejections"),
		budgetTrips:      r.Counter("gcx_budget_trips_total", "Runs aborted because the buffer hit the node budget.").Key("budget_trips"),

		peakNodes: r.Gauge("gcx_peak_buffered_nodes", "Lifetime buffer high-water mark in nodes, across all requests.").Key("peak_buffered_nodes"),
		peakBytes: r.Gauge("gcx_peak_buffered_bytes", "Lifetime buffer high-water mark in bytes, across all requests.").Key("peak_buffered_bytes"),

		inflightGauge:      r.Gauge("gcx_inflight_requests", "Query requests currently executing.").Key("inflight_requests"),
		inflightRejections: r.Counter("gcx_inflight_rejections_total", "Requests shed with 503 because -max-inflight was saturated.").Key("inflight_rejections"),

		latency:  r.HistogramVec("gcx_request_duration_seconds", "Query latency by engine, format, outcome and input path.", obs.LatencyBuckets, "engine", "format", "outcome", "input_path"),
		respSize: r.HistogramVec("gcx_response_size_bytes", "Query response size by engine, format, outcome and input path.", obs.SizeBuckets, "engine", "format", "outcome", "input_path"),
	}
	switch {
	case cfg.BytesBodyLimit < 0:
		s.bytesBodyLimit = -1
	case cfg.BytesBodyLimit == 0:
		s.bytesBodyLimit = DefaultBytesBodyLimit
	default:
		s.bytesBodyLimit = cfg.BytesBodyLimit
	}
	// Cache metrics read the cache's own counters at collection time.
	r.GaugeFunc("gcx_cache_entries", "Compiled queries in the LRU cache.", func() int64 {
		return int64(s.cache.Len())
	}).Key("cache_len")
	r.CounterFunc("gcx_cache_hits_total", "Compiled-query cache hits.", func() int64 {
		hits, _ := s.cache.Stats()
		return hits
	}).Key("cache_hits")
	r.CounterFunc("gcx_cache_misses_total", "Compiled-query cache misses (compiles).", func() int64 {
		_, misses := s.cache.Stats()
		return misses
	}).Key("cache_misses")

	if cfg.MaxInflight > 0 {
		s.inflight = make(chan struct{}, cfg.MaxInflight)
	}
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/explain", s.handleExplain)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// Registry exposes the server's metrics registry (tests and embedders).
func (s *Server) Registry() *obs.Registry { return s.reg }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// queryHash is the stable short id request logs carry instead of the
// query text (queries can be kilobytes and carry user data).
func queryHash(src string) string {
	sum := sha256.Sum256([]byte(src))
	return hex.EncodeToString(sum[:4])
}

// observePeaks folds one run's buffer watermarks into the server-wide
// high-water marks.
func (s *Server) observePeaks(res *gcx.Result) {
	if res == nil {
		return
	}
	s.peakNodes.Max(res.PeakBufferedNodes)
	s.peakBytes.Max(res.PeakBufferedBytes)
}

// observeJoin folds one run's join counters into the server totals.
// Budget-tripped runs contribute their partial counts: how far the
// probe/build sides got before the breach is exactly what an operator
// sizing max_nodes wants to see.
func (s *Server) observeJoin(res *gcx.Result) {
	if res == nil {
		return
	}
	s.joinProbeTuples.Add(res.JoinProbeTuples)
	s.joinBuildTuples.Add(res.JoinBuildTuples)
	s.joinMatches.Add(res.JoinMatches)
}

// optionsFromRequest maps URL parameters to execution options.
func optionsFromRequest(r *http.Request) (gcx.Options, error) {
	var opts gcx.Options
	switch eng := r.URL.Query().Get("engine"); eng {
	case "", "gcx":
		opts.Engine = gcx.EngineGCX
	case "projection":
		opts.Engine = gcx.EngineProjectionOnly
	case "dom":
		opts.Engine = gcx.EngineDOM
	default:
		return opts, fmt.Errorf("unknown engine %q (want gcx, projection or dom)", eng)
	}
	switch so := r.URL.Query().Get("signoff"); so {
	case "", "deferred":
		opts.SignOffMode = gcx.SignOffDeferred
	case "eager":
		opts.SignOffMode = gcx.SignOffEager
	default:
		return opts, fmt.Errorf("unknown signoff mode %q (want deferred or eager)", so)
	}
	if agg := r.URL.Query().Get("agg"); agg == "1" || agg == "true" {
		opts.EnableAggregation = true
	}
	if sh := r.URL.Query().Get("shards"); sh != "" {
		n, err := strconv.Atoi(sh)
		if err != nil || n < 1 || n > gcx.MaxShards {
			return opts, fmt.Errorf("invalid shards %q (want 1..%d)", sh, gcx.MaxShards)
		}
		opts.Shards = n
	}
	format, err := gcx.ParseFormat(r.URL.Query().Get("format"))
	if err != nil {
		return opts, err
	}
	opts.Format = format
	if mn := r.URL.Query().Get("max_nodes"); mn != "" {
		n, err := strconv.ParseInt(mn, 10, 64)
		if err != nil || n < 1 {
			return opts, fmt.Errorf("invalid max_nodes %q (want a positive node count)", mn)
		}
		opts.MaxBufferedNodes = n
	}
	if tr := r.URL.Query().Get("trace"); tr == "1" || tr == "true" {
		opts.EnableTrace = true
	}
	return opts, nil
}

// engineName maps options back to the label value request metrics use.
func engineName(e gcx.Engine) string {
	switch e {
	case gcx.EngineProjectionOnly:
		return "projection"
	case gcx.EngineDOM:
		return "dom"
	default:
		return "gcx"
	}
}

// contentType maps the request's input format to the response body's
// media type: XML results for XML input, JSON lines otherwise. Auto is
// reported as XML — the historical default — since the body's real
// format is only known after sniffing begins streaming.
func contentType(f gcx.Format) string {
	switch f {
	case gcx.FormatJSON, gcx.FormatNDJSON:
		return "application/x-ndjson"
	default:
		return "application/xml"
	}
}

// countingWriter tracks whether (and how much of) the response body has
// hit the wire, which decides between a clean error status and an error
// trailer on a stream that already started.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	start := time.Now()
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "use POST with the XML document as request body")
		return
	}
	src := r.Header.Get("X-GCX-Query")
	if src == "" {
		src = r.URL.Query().Get("query")
	}
	if src == "" {
		s.fail(w, http.StatusBadRequest, "missing query: pass the X-GCX-Query header or the ?query= parameter")
		return
	}
	opts, err := optionsFromRequest(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err.Error())
		return
	}

	// Load shedding: a saturated server answers 503 immediately — the
	// client's cue to back off — instead of queueing requests whose
	// engines would thrash each other.
	if s.inflight != nil {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
		default:
			s.inflightRejections.Inc()
			s.errors.Inc()
			w.Header().Set("Retry-After", "1")
			http.Error(w, "server at max in-flight queries, retry later", http.StatusServiceUnavailable)
			s.log.Warn("query shed", "query", queryHash(src), "status", http.StatusServiceUnavailable)
			return
		}
	}
	s.inflightGauge.Add(1)
	defer s.inflightGauge.Add(-1)

	// outcome/status drive the latency and size histogram labels and the
	// request log line written on every exit path below.
	outcome, status := "ok", http.StatusOK
	inputPath := "stream"
	var res *gcx.Result
	cw := &countingWriter{w: w}
	defer func() {
		d := time.Since(start)
		eng, format := engineName(opts.Engine), opts.Format.String()
		s.latency.With(eng, format, outcome, inputPath).Observe(d.Seconds())
		s.respSize.With(eng, format, outcome, inputPath).Observe(float64(cw.n))
		attrs := []any{
			"query", queryHash(src), "engine", eng, "format", format,
			"shards", opts.Shards, "input_path", inputPath, "bytes_out", cw.n,
			"dur_ms", d.Milliseconds(), "outcome", outcome, "status", status,
		}
		if res != nil {
			attrs = append(attrs, "tokens", res.TokensProcessed, "peak_nodes", res.PeakBufferedNodes)
		}
		if outcome == "ok" {
			s.log.Info("query", attrs...)
		} else {
			s.log.Warn("query", attrs...)
		}
	}()

	q, err := s.cache.Get(src)
	if err != nil {
		outcome, status = "error", http.StatusBadRequest
		s.fail(w, status, "compile error: "+err.Error())
		return
	}
	if opts.MaxBufferedNodes > 0 {
		// Admission control: a budget-carrying request with a query the
		// analyzer proved unbounded can only end in a mid-stream abort,
		// so reject it up front with the analyzer's reason. Detected
		// joins are exempt: they are classified unbounded (the build side
		// is buffered to end of input), but the join operator enforces
		// the budget on the build table and degrades gracefully with
		// partial statistics, surfacing as a budget_trip below — the
		// budget is exactly the knob that makes such a query admissible.
		if rep := q.Report(); rep.Streamability == "unbounded" && rep.Join == nil {
			s.budgetRejections.Inc()
			outcome, status = "budget", http.StatusRequestEntityTooLarge
			s.fail(w, status,
				"query is statically unbounded and cannot run under max_nodes: "+rep.StreamabilityReason)
			return
		}
	}

	w.Header().Set("Content-Type", contentType(opts.Format))
	w.Header().Set("Trailer", "X-Gcx-Error, X-Gcx-Tokens, X-Gcx-Peak-Nodes, X-Gcx-Peak-Bytes, X-Gcx-Shards, X-Gcx-Bytes-Skipped, X-Gcx-Trace")
	if n := r.ContentLength; n >= 0 && s.bytesBodyLimit >= 0 && n <= s.bytesBodyLimit {
		// Small body with a known length: buffer it once and take the
		// zero-copy engine path (DESIGN.md §12). The net/http layer
		// already caps Body at Content-Length, so ReadAll is bounded.
		body, rerr := io.ReadAll(r.Body)
		if rerr != nil {
			outcome, status = "error", http.StatusBadRequest
			s.fail(w, status, "reading request body: "+rerr.Error())
			return
		}
		inputPath = "bytes"
		res, err = q.ExecuteBytesContext(r.Context(), body, cw, opts)
	} else {
		res, err = q.ExecuteContext(r.Context(), r.Body, cw, opts)
	}
	s.bytesOut.Add(cw.n)
	if err != nil {
		s.observePeaks(res) // budget trips still report the partial run's watermark
		s.observeJoin(res)
		if errors.Is(err, gcx.ErrBufferBudget) {
			s.budgetTrips.Inc()
			outcome = "budget"
			if cw.n == 0 {
				status = http.StatusRequestEntityTooLarge
				s.fail(w, status, "buffer budget exceeded: "+err.Error())
				return
			}
		} else if cw.n == 0 {
			// Nothing streamed yet: the status line is still ours.
			outcome, status = "error", http.StatusUnprocessableEntity
			s.fail(w, status, "execution error: "+err.Error())
			return
		} else {
			outcome = "error"
		}
		s.errors.Inc()
		w.Header().Set("X-Gcx-Error", err.Error())
		return
	}
	s.observePeaks(res)
	s.observeJoin(res)
	if opts.Shards > 1 {
		s.shardedRequests.Inc()
		s.shardWorkers.Add(int64(res.ShardsUsed))
		s.shardChunks.Add(int64(res.Chunks))
		if res.ShardsUsed == 1 {
			s.shardFallbacks.Inc()
		}
	}
	s.bytesSkipped.Add(res.BytesSkipped)
	s.subtreesSkipped.Add(res.SubtreesSkipped)
	if opts.Format == gcx.FormatJSON || opts.Format == gcx.FormatNDJSON {
		s.jsonRequests.Inc()
	}
	w.Header().Set("X-Gcx-Tokens", fmt.Sprint(res.TokensProcessed))
	w.Header().Set("X-Gcx-Peak-Nodes", fmt.Sprint(res.PeakBufferedNodes))
	w.Header().Set("X-Gcx-Peak-Bytes", fmt.Sprint(res.PeakBufferedBytes))
	w.Header().Set("X-Gcx-Shards", fmt.Sprint(res.ShardsUsed))
	w.Header().Set("X-Gcx-Bytes-Skipped", fmt.Sprint(res.BytesSkipped))
	if opts.EnableTrace && res.Trace != nil {
		if raw, err := json.Marshal(res.Trace); err == nil {
			w.Header().Set("X-Gcx-Trace", string(raw))
		}
	}
}

// handleExplain compiles the query and returns the analyzer's
// structured report without executing it — the server-side form of
// `gcx -explain-json`.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	src := r.Header.Get("X-GCX-Query")
	if src == "" {
		src = r.URL.Query().Get("query")
	}
	if src == "" {
		s.fail(w, http.StatusBadRequest, "missing query: pass the X-GCX-Query header or the ?query= parameter")
		return
	}
	q, err := s.cache.Get(src)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "compile error: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(q.Report())
}

func (s *Server) fail(w http.ResponseWriter, code int, msg string) {
	s.errors.Inc()
	http.Error(w, msg, code)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
}

// handleStats serves the legacy JSON counter view: one atomic snapshot
// of the registry, so related counters cannot tear against each other.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.reg.Snapshot())
}

// handleMetrics serves the Prometheus text exposition of the same
// registry /stats snapshots.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.ContentType)
	s.reg.WritePrometheus(w)
}
