package gcxd

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"
	"time"

	"gcx"
	"gcx/internal/obs"
)

// TestServerMetrics: after serving traffic, /metrics renders a valid
// Prometheus exposition that carries every legacy /stats counter plus
// the labeled latency/size histograms, and the values agree with the
// /stats JSON view (same registry, same numbers).
func TestServerMetrics(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{CacheSize: 8}))
	defer ts.Close()

	doc := testDoc(0, 10)
	if resp, body := postQuery(t, ts.URL, testQuery, doc, ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d: %s", resp.StatusCode, body)
	}
	// One error for the labeled outcome="error" series.
	if resp, _ := postQuery(t, ts.URL, "for $x in", doc, ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad query accepted: status %d", resp.StatusCode)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, obs.ContentType)
	}
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	expo := string(raw)

	// Every metric the /stats view exposes must appear, with HELP/TYPE.
	for _, name := range []string{
		"gcx_requests_total", "gcx_request_errors_total", "gcx_response_bytes_total",
		"gcx_cache_entries", "gcx_cache_hits_total", "gcx_cache_misses_total",
		"gcx_sharded_requests_total", "gcx_shard_workers_total", "gcx_shard_chunks_total",
		"gcx_shard_fallbacks_total", "gcx_input_bytes_skipped_total", "gcx_subtrees_skipped_total",
		"gcx_json_requests_total", "gcx_join_probe_tuples_total", "gcx_join_build_tuples_total",
		"gcx_join_matches_total", "gcx_peak_buffered_nodes", "gcx_peak_buffered_bytes",
		"gcx_budget_rejections_total", "gcx_budget_trips_total",
		"gcx_inflight_requests", "gcx_inflight_rejections_total",
		"gcx_request_duration_seconds", "gcx_response_size_bytes",
	} {
		if !strings.Contains(expo, "# HELP "+name+" ") {
			t.Errorf("exposition lacks HELP for %s", name)
		}
		if !strings.Contains(expo, "# TYPE "+name+" ") {
			t.Errorf("exposition lacks TYPE for %s", name)
		}
	}
	// The request histograms carry engine/format/outcome/input_path
	// labels and the cumulative bucket/sum/count series. A small test
	// body with a known Content-Length rides the zero-copy []byte path,
	// so input_path is "bytes".
	for _, want := range []string{
		`gcx_request_duration_seconds_bucket{engine="gcx",format="auto",outcome="ok",input_path="bytes",le="+Inf"} 1`,
		`gcx_request_duration_seconds_count{engine="gcx",format="auto",outcome="ok",input_path="bytes"} 1`,
		`gcx_response_size_bytes_count{engine="gcx",format="auto",outcome="ok",input_path="bytes"} 1`,
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("exposition lacks %q", want)
		}
	}

	// /stats is a JSON view over the same registry: the values agree.
	var stats map[string]int64
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	for key, metric := range map[string]string{
		"errors":       "gcx_request_errors_total",
		"cache_misses": "gcx_cache_misses_total",
	} {
		// The exposition was gathered between the two query posts and the
		// /stats read; both counters are stable by now, so exact match.
		line := metric + " " + strconv.FormatInt(stats[key], 10) + "\n"
		if !strings.Contains(expo, line) {
			t.Errorf("exposition lacks %q (stats[%s]=%d):\n%s", line, key, stats[key], grepFamily(expo, metric))
		}
	}
	// Every legacy key is present in the snapshot.
	for _, key := range []string{
		"requests", "errors", "bytes_out", "cache_len", "cache_hits", "cache_misses",
		"sharded_requests", "shard_workers", "shard_chunks", "shard_fallbacks",
		"bytes_skipped", "subtrees_skipped", "json_requests",
		"join_probe_tuples", "join_build_tuples", "join_matches",
		"peak_buffered_nodes", "peak_buffered_bytes", "budget_rejections", "budget_trips",
	} {
		if _, ok := stats[key]; !ok {
			t.Errorf("/stats lacks legacy key %q", key)
		}
	}
}

// grepFamily extracts one family's lines for a failure message.
func grepFamily(expo, name string) string {
	var out []string
	for _, l := range strings.Split(expo, "\n") {
		if strings.Contains(l, name) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

// TestServerInflight: with MaxInflight=1, a second concurrent query is
// shed with 503 + Retry-After while the first holds the slot, and the
// rejection is counted; after the first finishes, the server accepts
// again.
func TestServerInflight(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{CacheSize: 8, MaxInflight: 1}))
	defer ts.Close()

	// Hold the single slot with a request whose body never finishes
	// until released: the engine blocks reading input mid-execution.
	pr, pw := io.Pipe()
	type result struct {
		status int
		err    error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/query?query="+url.QueryEscape(testQuery), "application/xml", pr)
		if err != nil {
			done <- result{0, err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- result{resp.StatusCode, nil}
	}()
	if _, err := io.WriteString(pw, "<bib><book><title>held</title></book>"); err != nil {
		t.Fatal(err)
	}

	// Wait until the held request is inside the semaphore.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var stats map[string]int64
		sresp, err := http.Get(ts.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(sresp.Body).Decode(&stats)
		sresp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if stats["inflight_requests"] == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("held request never became in-flight: %v", stats)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The slot is taken: the next query is shed immediately.
	resp, body := postQuery(t, ts.URL, testQuery, testDoc(0, 1), "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("concurrent query: status %d, want 503: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("503 response lacks Retry-After")
	}

	// Release the held request; it completes and frees the slot.
	if _, err := io.WriteString(pw, "</bib>"); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	if r := <-done; r.err != nil || r.status != http.StatusOK {
		t.Fatalf("held request: status %d err %v", r.status, r.err)
	}
	resp, body = postQuery(t, ts.URL, testQuery, testDoc(0, 1), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release query: status %d: %s", resp.StatusCode, body)
	}

	var stats map[string]int64
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats["inflight_rejections"] != 1 {
		t.Errorf("inflight_rejections = %d, want 1", stats["inflight_rejections"])
	}
	if stats["inflight_requests"] != 0 {
		t.Errorf("inflight_requests = %d, want 0 after drain", stats["inflight_requests"])
	}
}

// TestServerTraceTrailer: trace=1 returns the per-phase breakdown as
// JSON in the X-Gcx-Trace trailer; without it the trailer is empty.
func TestServerTraceTrailer(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{CacheSize: 8}))
	defer ts.Close()

	doc := testDoc(0, 50)
	resp, body := postQuery(t, ts.URL, testQuery, doc, "trace=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced query: status %d: %s", resp.StatusCode, body)
	}
	raw := resp.Trailer.Get("X-Gcx-Trace")
	if raw == "" {
		t.Fatalf("missing X-Gcx-Trace trailer: %+v", resp.Trailer)
	}
	var phases []gcx.TracePhase
	if err := json.Unmarshal([]byte(raw), &phases); err != nil {
		t.Fatalf("trailer is not a JSON phase list: %v: %s", err, raw)
	}
	if len(phases) == 0 || phases[0].Phase != "compile" {
		t.Errorf("trace = %+v, want compile first", phases)
	}
	seen := map[string]bool{}
	for _, p := range phases {
		seen[p.Phase] = true
	}
	if !seen["stream"] {
		t.Errorf("no stream phase in %+v", phases)
	}

	resp, _ = postQuery(t, ts.URL, testQuery, doc, "")
	if got := resp.Trailer.Get("X-Gcx-Trace"); got != "" {
		t.Errorf("untraced request has trace trailer %q", got)
	}
}
