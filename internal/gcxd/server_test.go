package gcxd

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"gcx"
	"gcx/internal/xmark"
)

const testQuery = `<out>{ for $b in /bib/book return $b/title }</out>`

// testDoc builds a distinct input per stream id so concurrent requests
// can be told apart by their outputs.
func testDoc(id, books int) string {
	var sb strings.Builder
	sb.WriteString("<bib>")
	for i := 0; i < books; i++ {
		fmt.Fprintf(&sb, "<book><title>t%d-%d</title><price>%d</price></book>", id, i, i)
	}
	sb.WriteString("</bib>")
	return sb.String()
}

func expectedOutput(t *testing.T, query, doc string) string {
	t.Helper()
	q, err := gcx.Compile(query)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := q.ExecuteString(doc, gcx.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func postQuery(t *testing.T, baseURL, query, doc, params string) (*http.Response, string) {
	t.Helper()
	u := baseURL + "/query?query=" + url.QueryEscape(query)
	if params != "" {
		u += "&" + params
	}
	resp, err := http.Post(u, "application/xml", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp, string(body)
}

// TestServerConcurrentRequests drives the full HTTP path with many
// concurrent streams sharing one cached query, checking each response
// against the sequential engine output.
func TestServerConcurrentRequests(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{CacheSize: 8}))
	defer ts.Close()

	const goroutines = 16
	want := make([]string, goroutines)
	docs := make([]string, goroutines)
	for i := range docs {
		docs[i] = testDoc(i, 20+i)
		want[i] = expectedOutput(t, testQuery, docs[i])
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postQuery(t, ts.URL, testQuery, docs[i], "")
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("stream %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			if body != want[i] {
				errs <- fmt.Errorf("stream %d: got %q, want %q", i, body, want[i])
				return
			}
			if got := resp.Trailer.Get("X-Gcx-Tokens"); got == "" {
				errs <- fmt.Errorf("stream %d: missing X-Gcx-Tokens trailer", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	resp, body := postQuery(t, ts.URL, testQuery, docs[0], "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up request: status %d: %s", resp.StatusCode, body)
	}
	var stats struct {
		CacheHits   int64 `json:"cache_hits"`
		CacheMisses int64 `json:"cache_misses"`
	}
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.CacheMisses != 1 {
		t.Errorf("cache misses = %d, want 1 (one compile for the shared query)", stats.CacheMisses)
	}
	if stats.CacheHits < goroutines {
		t.Errorf("cache hits = %d, want >= %d", stats.CacheHits, goroutines)
	}
}

func TestServerEngines(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{CacheSize: 8}))
	defer ts.Close()

	doc := testDoc(0, 10)
	want := expectedOutput(t, testQuery, doc)
	for _, engine := range []string{"gcx", "projection", "dom"} {
		resp, body := postQuery(t, ts.URL, testQuery, doc, "engine="+engine)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("engine %s: status %d: %s", engine, resp.StatusCode, body)
		}
		if body != want {
			t.Errorf("engine %s: got %q, want %q", engine, body, want)
		}
	}
}

func TestServerErrors(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{CacheSize: 8}))
	defer ts.Close()

	// Missing query.
	resp, err := http.Post(ts.URL+"/query", "application/xml", strings.NewReader("<a/>"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing query: status %d, want 400", resp.StatusCode)
	}

	// Malformed query.
	resp, body := postQuery(t, ts.URL, "for $x in", "<a/>", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed query: status %d, want 400 (%s)", resp.StatusCode, body)
	}

	// Unknown engine parameter.
	resp, body = postQuery(t, ts.URL, testQuery, "<bib/>", "engine=warp")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown engine: status %d, want 400 (%s)", resp.StatusCode, body)
	}

	// Malformed input document: nothing streamed yet (the first token
	// already fails), so a clean error status is expected.
	resp, body = postQuery(t, ts.URL, testQuery, "<bib><book>", "")
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("malformed input: status %d, want 422 (%s)", resp.StatusCode, body)
	}

	// GET on /query.
	gresp, err := http.Get(ts.URL + "/query?query=x")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, gresp.Body)
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query: status %d, want 405", gresp.StatusCode)
	}
}

// TestServerShardedRequests drives the shards=N parameter end to end:
// identical output, the X-Gcx-Shards trailer, per-worker counters in
// /stats, and the fallback accounting for non-partitionable queries.
func TestServerShardedRequests(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{CacheSize: 8}))
	defer ts.Close()

	doc := testDoc(1, 200)
	want := expectedOutput(t, testQuery, doc)

	resp, body := postQuery(t, ts.URL, testQuery, doc, "shards=4")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sharded request: status %d: %s", resp.StatusCode, body)
	}
	if body != want {
		t.Fatalf("sharded output differs from sequential")
	}
	if got := resp.Trailer.Get("X-Gcx-Shards"); got != "4" {
		t.Fatalf("X-Gcx-Shards = %q, want 4", got)
	}

	// A join is not partitionable: the request succeeds sequentially and
	// counts as a fallback.
	joinQuery := `<out>{
	  for $b in /bib/book return
	    for $c in /bib/book return
	      if ($b/price = $c/price) then $b/title else ()
	}</out>`
	resp, body = postQuery(t, ts.URL, joinQuery, testDoc(2, 5), "shards=4")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join request: status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Trailer.Get("X-Gcx-Shards"); got != "1" {
		t.Fatalf("join X-Gcx-Shards = %q, want 1 (fallback)", got)
	}

	// Out-of-range shard counts are rejected.
	resp, body = postQuery(t, ts.URL, testQuery, "<bib/>", "shards=0")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("shards=0: status %d, want 400 (%s)", resp.StatusCode, body)
	}
	resp, body = postQuery(t, ts.URL, testQuery, "<bib/>", "shards=1000")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("shards=1000: status %d, want 400 (%s)", resp.StatusCode, body)
	}

	var stats struct {
		ShardedRequests int64 `json:"sharded_requests"`
		ShardWorkers    int64 `json:"shard_workers"`
		ShardChunks     int64 `json:"shard_chunks"`
		ShardFallbacks  int64 `json:"shard_fallbacks"`
	}
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.ShardedRequests != 2 {
		t.Errorf("sharded_requests = %d, want 2", stats.ShardedRequests)
	}
	if stats.ShardWorkers != 5 { // 4 for the sharded run + 1 for the fallback
		t.Errorf("shard_workers = %d, want 5", stats.ShardWorkers)
	}
	if stats.ShardChunks < 1 {
		t.Errorf("shard_chunks = %d, want >= 1", stats.ShardChunks)
	}
	if stats.ShardFallbacks != 1 {
		t.Errorf("shard_fallbacks = %d, want 1", stats.ShardFallbacks)
	}
}

// TestServerNDJSONRequests drives the format=ndjson parameter end to
// end: JSON output with the NDJSON content type, sharded NDJSON
// requests byte-identical to sequential ones, the json_requests
// counter, and rejection of unknown format names.
func TestServerNDJSONRequests(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{CacheSize: 8}))
	defer ts.Close()

	nd, _, err := xmark.GenerateNDJSONString(xmark.Config{TargetBytes: 64 << 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	query := xmark.NDJSONQueries["J1"].Text
	q, err := gcx.Compile(query)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := q.ExecuteString(nd, gcx.Options{Format: gcx.FormatNDJSON})
	if err != nil {
		t.Fatal(err)
	}

	resp, body := postQuery(t, ts.URL, query, nd, "format=ndjson")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ndjson request: status %d: %s", resp.StatusCode, body)
	}
	if body != want {
		t.Fatalf("ndjson output differs from library run:\n got %.200q\nwant %.200q", body, want)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}

	// Sharded NDJSON: byte-identical, with the shard trailer.
	resp, body = postQuery(t, ts.URL, query, nd, "format=ndjson&shards=4")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sharded ndjson request: status %d: %s", resp.StatusCode, body)
	}
	if body != want {
		t.Fatal("sharded ndjson output differs from sequential")
	}
	if got := resp.Trailer.Get("X-Gcx-Shards"); got != "4" {
		t.Fatalf("X-Gcx-Shards = %q, want 4", got)
	}

	// Unknown format names are a client error.
	resp, body = postQuery(t, ts.URL, query, nd, "format=yaml")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("format=yaml: status %d, want 400 (%s)", resp.StatusCode, body)
	}

	var stats struct {
		JSONRequests int64 `json:"json_requests"`
	}
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.JSONRequests != 2 {
		t.Errorf("json_requests = %d, want 2", stats.JSONRequests)
	}
}

func TestServerHealthz(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{CacheSize: 1}))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
}

// TestServerBudget covers the node-budget path end to end: admission
// control for statically-unbounded queries, graceful runtime trips, and
// the budget counters plus peak watermarks in /stats.
func TestServerBudget(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{CacheSize: 8}))
	defer ts.Close()

	doc := testDoc(0, 40)

	// A generous budget runs normally and reports its watermark.
	resp, body := postQuery(t, ts.URL, testQuery, doc, "max_nodes=100000")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generous budget: status %d: %s", resp.StatusCode, body)
	}
	if resp.Trailer.Get("X-Gcx-Peak-Nodes") == "" || resp.Trailer.Get("X-Gcx-Peak-Bytes") == "" {
		t.Errorf("missing peak trailers: %+v", resp.Trailer)
	}

	// A tiny budget trips at runtime. Depending on whether output hit
	// the wire first, that surfaces as a 413 status or as an X-Gcx-Error
	// trailer — either way the run aborts instead of buffering on.
	resp, body = postQuery(t, ts.URL, testQuery, doc, "max_nodes=2")
	tripped := resp.StatusCode == http.StatusRequestEntityTooLarge ||
		strings.Contains(resp.Trailer.Get("X-Gcx-Error"), "budget")
	if !tripped {
		t.Fatalf("tiny budget did not trip: status %d, trailer %q, body %q",
			resp.StatusCode, resp.Trailer.Get("X-Gcx-Error"), body)
	}

	// A statically-unbounded query under a budget is rejected up front
	// with the analyzer's reason.
	join := `<out>{ for $b in /bib/book return for $a in /bib/book return $a/title }</out>`
	resp, body = postQuery(t, ts.URL, join, doc, "max_nodes=100000")
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("unbounded+budget: status %d, want 413: %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, "statically unbounded") || !strings.Contains(body, "join") {
		t.Errorf("rejection does not carry the analyzer's reason: %s", body)
	}
	// Without a budget the same join is admitted.
	if resp, body = postQuery(t, ts.URL, join, doc, ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("join without budget: status %d: %s", resp.StatusCode, body)
	}

	var stats struct {
		PeakNodes        int64 `json:"peak_buffered_nodes"`
		PeakBytes        int64 `json:"peak_buffered_bytes"`
		BudgetRejections int64 `json:"budget_rejections"`
		BudgetTrips      int64 `json:"budget_trips"`
	}
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.BudgetRejections != 1 {
		t.Errorf("budget_rejections = %d, want 1", stats.BudgetRejections)
	}
	if stats.BudgetTrips != 1 {
		t.Errorf("budget_trips = %d, want 1", stats.BudgetTrips)
	}
	if stats.PeakNodes <= 0 || stats.PeakBytes <= 0 {
		t.Errorf("lifetime watermarks not recorded: nodes=%d bytes=%d", stats.PeakNodes, stats.PeakBytes)
	}

	// Bad max_nodes values are usage errors.
	if resp, _ := postQuery(t, ts.URL, testQuery, doc, "max_nodes=0"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("max_nodes=0: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := postQuery(t, ts.URL, testQuery, doc, "max_nodes=soon"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("max_nodes=soon: status %d, want 400", resp.StatusCode)
	}
}

// TestServerJoinBudget: a detected two-variable join is exempt from the
// unbounded-query admission rejection — the join operator enforces the
// budget on its build side — and a breach surfaces as a budget trip
// with partial join statistics, not as a generic execution error.
func TestServerJoinBudget(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{CacheSize: 8}))
	defer ts.Close()

	const joinQuery = `<out>{ for $b in /bib/book return
	  for $a in /bib/article return
	    if ($a/ref = $b/title) then $a/au else () }</out>`
	var sb strings.Builder
	sb.WriteString("<bib>")
	for i := 0; i < 30; i++ {
		fmt.Fprintf(&sb, "<book><title>t%d</title></book>", i)
	}
	for i := 0; i < 30; i++ {
		fmt.Fprintf(&sb, "<article><ref>t%d</ref><au>a%d</au></article>", i, i)
	}
	sb.WriteString("</bib>")
	doc := sb.String()

	// Admitted under a generous budget despite the unbounded class.
	resp, body := postQuery(t, ts.URL, joinQuery, doc, "max_nodes=100000")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join under generous budget: status %d, want 200: %s", resp.StatusCode, body)
	}
	if want := expectedOutput(t, joinQuery, doc); body != want {
		t.Fatalf("join output mismatch:\n got %q\nwant %q", body, want)
	}

	// A tiny budget trips on the build side: 413 or error trailer, and
	// budget_trips counts it.
	resp, body = postQuery(t, ts.URL, joinQuery, doc, "max_nodes=3")
	tripped := resp.StatusCode == http.StatusRequestEntityTooLarge ||
		strings.Contains(resp.Trailer.Get("X-Gcx-Error"), "budget")
	if !tripped {
		t.Fatalf("join budget did not trip: status %d, trailer %q, body %q",
			resp.StatusCode, resp.Trailer.Get("X-Gcx-Error"), body)
	}

	var stats struct {
		BudgetRejections int64 `json:"budget_rejections"`
		BudgetTrips      int64 `json:"budget_trips"`
		JoinProbe        int64 `json:"join_probe_tuples"`
		JoinBuild        int64 `json:"join_build_tuples"`
		JoinMatches      int64 `json:"join_matches"`
	}
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.BudgetRejections != 0 {
		t.Errorf("join was rejected at admission: budget_rejections = %d", stats.BudgetRejections)
	}
	if stats.BudgetTrips != 1 {
		t.Errorf("budget_trips = %d, want 1", stats.BudgetTrips)
	}
	if stats.JoinProbe == 0 || stats.JoinBuild == 0 || stats.JoinMatches == 0 {
		t.Errorf("join counters not recorded: probe=%d build=%d matches=%d",
			stats.JoinProbe, stats.JoinBuild, stats.JoinMatches)
	}
}

// TestServerExplain drives the /explain endpoint: a structured report
// for good queries, 400 for bad ones, no execution either way.
func TestServerExplain(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{CacheSize: 8}))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/explain?query=" + url.QueryEscape(xmark.Queries["Q1"].Text))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var rep gcx.ExplainReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Streamability != "bounded-constant" || rep.StaticBound == nil || len(rep.Roles) == 0 {
		t.Errorf("incomplete report: %+v", rep)
	}

	bad, err := http.Get(ts.URL + "/explain?query=" + url.QueryEscape("for $x in"))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("compile error: status %d, want 400", bad.StatusCode)
	}
	missing, err := http.Get(ts.URL + "/explain")
	if err != nil {
		t.Fatal(err)
	}
	missing.Body.Close()
	if missing.StatusCode != http.StatusBadRequest {
		t.Errorf("missing query: status %d, want 400", missing.StatusCode)
	}
}
