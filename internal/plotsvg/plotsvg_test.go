package plotsvg

import (
	"io"
	"strings"
	"testing"

	"gcx/internal/stats"
	"gcx/internal/xmltok"
)

func series(n int) Series {
	s := Series{Name: "buffer"}
	for i := 0; i < n; i++ {
		s.Points = append(s.Points, stats.Point{Token: int64(i + 1), Nodes: int64(i % 7)})
	}
	return s
}

func TestRenderWellFormed(t *testing.T) {
	var b strings.Builder
	err := Render(&b, Config{Title: "Fig 3(c)", XLabel: "tokens", YLabel: "nodes"}, series(50))
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// the output must be well-formed XML (validated with our own tokenizer)
	tz := xmltok.NewTokenizer(strings.NewReader(out))
	for {
		_, err := tz.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("SVG not well-formed: %v", err)
		}
	}
	for _, want := range []string{"<svg", "polyline", "Fig 3(c)", "tokens", "nodes"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestRenderMultipleSeries(t *testing.T) {
	var b strings.Builder
	s2 := series(30)
	s2.Name = "second"
	if err := Render(&b, Config{}, series(50), s2); err != nil {
		t.Fatal(err)
	}
	if strings.Count(b.String(), "<polyline") != 2 {
		t.Fatal("two series must give two polylines")
	}
	if !strings.Contains(b.String(), "second") {
		t.Fatal("legend missing")
	}
}

func TestRenderEmptySeries(t *testing.T) {
	var b strings.Builder
	if err := Render(&b, Config{}, Series{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "polyline") {
		t.Fatal("empty series must not draw")
	}
}

func TestEscape(t *testing.T) {
	var b strings.Builder
	if err := Render(&b, Config{Title: "a<b & c"}, series(3)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "a&lt;b &amp; c") {
		t.Fatal("title not escaped")
	}
}
