// Package plotsvg renders buffer plots as standalone SVG images —
// regenerating the paper's Figures 3(b,c) and 4(a,b) as actual
// pictures. Pure stdlib; the output is deliberately gnuplot-plain:
// axes, ticks, one polyline per series.
package plotsvg

import (
	"fmt"
	"io"
	"strings"

	"gcx/internal/stats"
)

// Series is one plotted line.
type Series struct {
	Name   string
	Points []stats.Point
}

// Config controls the rendering.
type Config struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // default 720
	Height int // default 420
}

const (
	marginLeft   = 70
	marginRight  = 20
	marginTop    = 40
	marginBottom = 50
)

// Render writes the SVG document for the series.
func Render(w io.Writer, cfg Config, series ...Series) error {
	if cfg.Width <= 0 {
		cfg.Width = 720
	}
	if cfg.Height <= 0 {
		cfg.Height = 420
	}
	var maxX, maxY int64 = 1, 1
	for _, s := range series {
		for _, p := range s.Points {
			if p.Token > maxX {
				maxX = p.Token
			}
			if p.Nodes > maxY {
				maxY = p.Nodes
			}
		}
	}

	plotW := float64(cfg.Width - marginLeft - marginRight)
	plotH := float64(cfg.Height - marginTop - marginBottom)
	xpos := func(t int64) float64 { return marginLeft + float64(t)/float64(maxX)*plotW }
	ypos := func(n int64) float64 {
		return float64(cfg.Height-marginBottom) - float64(n)/float64(maxY)*plotH
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		cfg.Width, cfg.Height, cfg.Width, cfg.Height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", cfg.Width, cfg.Height)
	if cfg.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="16" text-anchor="middle">%s</text>`+"\n",
			cfg.Width/2, escape(cfg.Title))
	}

	// axes
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginLeft, cfg.Height-marginBottom, cfg.Width-marginRight, cfg.Height-marginBottom)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginLeft, marginTop, marginLeft, cfg.Height-marginBottom)

	// ticks: five per axis
	for i := 0; i <= 5; i++ {
		xv := maxX * int64(i) / 5
		x := xpos(xv)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n",
			x, cfg.Height-marginBottom, x, cfg.Height-marginBottom+5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%d</text>`+"\n",
			x, cfg.Height-marginBottom+18, xv)
		yv := maxY * int64(i) / 5
		y := ypos(yv)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`+"\n",
			marginLeft-5, y, marginLeft, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%d</text>`+"\n",
			marginLeft-8, y+4, yv)
	}
	if cfg.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="13" text-anchor="middle">%s</text>`+"\n",
			marginLeft+int(plotW/2), cfg.Height-12, escape(cfg.XLabel))
	}
	if cfg.YLabel != "" {
		fmt.Fprintf(&b, `<text x="16" y="%d" font-family="sans-serif" font-size="13" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
			marginTop+int(plotH/2), marginTop+int(plotH/2), escape(cfg.YLabel))
	}

	colors := []string{"#d62728", "#1f77b4", "#2ca02c", "#9467bd"}
	for si, s := range series {
		if len(s.Points) == 0 {
			continue
		}
		var pts strings.Builder
		for i, p := range s.Points {
			if i > 0 {
				pts.WriteByte(' ')
			}
			fmt.Fprintf(&pts, "%.1f,%.1f", xpos(p.Token), ypos(p.Nodes))
		}
		color := colors[si%len(colors)]
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
			pts.String(), color)
		if s.Name != "" {
			fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12" fill="%s">%s</text>`+"\n",
				cfg.Width-marginRight-150, marginTop+18*si, color, escape(s.Name))
		}
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
