package dom

import (
	"bytes"
	"strings"
	"testing"

	"gcx/internal/xmltok"
	"gcx/internal/xpath"
)

const testDoc = `<root><a id="1">x<b>y</b></a><a id="2"><b/><c>z</c></a><d><a id="3"/></d></root>`

func parse(t *testing.T, doc string) *Document {
	t.Helper()
	d, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestParseCounts(t *testing.T) {
	d := parse(t, testDoc)
	// elements: root,a,b,a,b,c,d,a = 8; texts: x,y,z = 3
	if d.Nodes != 11 {
		t.Fatalf("Nodes = %d, want 11", d.Nodes)
	}
	if d.Tokens != 19 {
		t.Fatalf("Tokens = %d, want 19", d.Tokens)
	}
	if d.Bytes <= 0 {
		t.Fatal("Bytes not estimated")
	}
	if d.Root.Kind != Root || len(d.Root.Children) != 1 {
		t.Fatal("root structure wrong")
	}
}

func TestParseError(t *testing.T) {
	if _, err := Parse(strings.NewReader(`<a><b></a>`)); err == nil {
		t.Fatal("malformed input must error")
	}
}

func TestSelectChildAndWildcard(t *testing.T) {
	d := parse(t, testDoc)
	as := Select(d.Root, xpath.Path{Steps: []xpath.Step{
		xpath.ChildStep("root"), xpath.ChildStep("a")}})
	if len(as) != 2 {
		t.Fatalf("got %d /root/a, want 2", len(as))
	}
	all := Select(d.Root, xpath.Path{Steps: []xpath.Step{
		xpath.ChildStep("root"), xpath.WildcardStep()}})
	if len(all) != 3 {
		t.Fatalf("got %d /root/*, want 3", len(all))
	}
}

func TestSelectDescendantDocOrderAndDedup(t *testing.T) {
	d := parse(t, testDoc)
	as := Select(d.Root, xpath.Path{Steps: []xpath.Step{
		{Axis: xpath.Descendant, Test: xpath.Test{Kind: xpath.TestName, Name: "a"}}}})
	if len(as) != 3 {
		t.Fatalf("got %d //a, want 3", len(as))
	}
	ids := []string{}
	for _, n := range as {
		id, _ := n.Attr("id")
		ids = append(ids, id)
	}
	if strings.Join(ids, ",") != "1,2,3" {
		t.Fatalf("doc order violated: %v", ids)
	}
	// dedup through overlapping descendant sources
	dd := Select(d.Root, xpath.Path{Steps: []xpath.Step{
		{Axis: xpath.DescendantOrSelf, Test: xpath.Test{Kind: xpath.TestNode}},
		{Axis: xpath.Descendant, Test: xpath.Test{Kind: xpath.TestName, Name: "b"}}}})
	if len(dd) != 2 {
		t.Fatalf("dedup failed: got %d b nodes, want 2", len(dd))
	}
}

func TestSelectFirstOnly(t *testing.T) {
	d := parse(t, testDoc)
	first := Select(d.Root, xpath.Path{Steps: []xpath.Step{
		xpath.ChildStep("root"),
		{Axis: xpath.Child, Test: xpath.Test{Kind: xpath.TestName, Name: "a"}, FirstOnly: true}}})
	if len(first) != 1 {
		t.Fatalf("got %d, want 1", len(first))
	}
	if id, _ := first[0].Attr("id"); id != "1" {
		t.Fatalf("first a has id %s", id)
	}
}

func TestSelectText(t *testing.T) {
	d := parse(t, testDoc)
	texts := Select(d.Root, xpath.Path{Steps: []xpath.Step{
		xpath.ChildStep("root"), xpath.ChildStep("a"),
		{Axis: xpath.Child, Test: xpath.Test{Kind: xpath.TestText}}}})
	if len(texts) != 1 || texts[0].Text != "x" {
		t.Fatalf("text selection wrong: %v", texts)
	}
}

func TestStringValue(t *testing.T) {
	d := parse(t, testDoc)
	a1 := Select(d.Root, xpath.Path{Steps: []xpath.Step{
		xpath.ChildStep("root"),
		{Axis: xpath.Child, Test: xpath.Test{Kind: xpath.TestName, Name: "a"}, FirstOnly: true}}})[0]
	if got := a1.StringValue(); got != "xy" {
		t.Fatalf("StringValue = %q, want xy", got)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	d := parse(t, testDoc)
	var out bytes.Buffer
	s := xmltok.NewSerializer(&out)
	Serialize(d.Root, s)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// the serializer canonicalizes self-closing tags to open/close pairs
	want := `<root><a id="1">x<b>y</b></a><a id="2"><b></b><c>z</c></a><d><a id="3"></a></d></root>`
	if out.String() != want {
		t.Fatalf("round trip:\n got %s\nwant %s", out.String(), want)
	}
}
