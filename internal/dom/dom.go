// Package dom is the full-buffering substrate for the reference
// engines of the Fig. 5 comparison: it parses the complete input into an
// in-memory tree before any evaluation, the strategy of the
// non-streaming systems the paper compares against (Galax, Saxon,
// QizX; MonetDB with forced reloads). It also serves as the independent
// correctness oracle for differential testing of the GCX engine.
package dom

import (
	"context"
	"fmt"
	"io"
	"strings"

	"gcx/internal/buffer"
	"gcx/internal/event"
	"gcx/internal/xmltok"
	"gcx/internal/xpath"
)

// NodeKind discriminates DOM nodes.
type NodeKind uint8

const (
	// Root is the virtual document root.
	Root NodeKind = iota
	// Element is an element node.
	Element
	// Text is a character-data node.
	Text
)

// Node is a DOM node with materialized children.
type Node struct {
	Kind     NodeKind
	Name     string
	Attrs    []event.Attr
	Text     string
	Parent   *Node
	Children []*Node
}

// Document is a fully parsed input.
type Document struct {
	Root *Node
	// Nodes is the total number of element and text nodes (the memory
	// footprint of full buffering, in the paper's node metric).
	Nodes int64
	// Bytes estimates the resident size, comparable to the buffer
	// engine's estimate.
	Bytes int64
	// Tokens is the number of tokens parsed.
	Tokens int64
}

// Parse reads the entire stream into a Document.
func Parse(r io.Reader) (*Document, error) {
	return ParseContext(context.Background(), r)
}

// ParseContext reads the entire XML stream into a Document, aborting
// with ctx.Err() at the first token pulled after ctx is cancelled.
func ParseContext(ctx context.Context, r io.Reader) (*Document, error) {
	tz := xmltok.NewTokenizer(r)
	defer tz.Release()
	return ParseSource(ctx, tz)
}

// ParseSource reads an entire event stream into a Document. It is the
// format-neutral core of Parse: any event.Source (XML tokenizer, JSON
// tokenizer) can back the DOM baseline. The caller keeps ownership of
// src and releases it.
func ParseSource(ctx context.Context, tz event.Source) (*Document, error) {
	return ParseSourceBudget(ctx, tz, 0)
}

// ParseSourceBudget is ParseSource under a node budget: the full-
// buffering baseline's population is the whole document, so a document
// growing past maxNodes element+text nodes aborts the parse with an
// error wrapping buffer.ErrBudget instead of buffering the rest.
// maxNodes 0 means unlimited.
func ParseSourceBudget(ctx context.Context, tz event.Source, maxNodes int64) (*Document, error) {
	tz.SetContext(ctx)
	root := &Node{Kind: Root}
	doc := &Document{Root: root}
	cur := root
	for {
		tok, err := tz.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch tok.Kind {
		case event.StartElement:
			n := &Node{Kind: Element, Name: tok.Name, Attrs: tok.Attrs, Parent: cur}
			cur.Children = append(cur.Children, n)
			cur = n
			doc.Nodes++
			doc.Bytes += 128 + int64(len(tok.Name))
			for _, a := range tok.Attrs {
				doc.Bytes += int64(len(a.Name) + len(a.Value) + 32)
			}
		case event.EndElement:
			cur = cur.Parent
		case event.Text:
			n := &Node{Kind: Text, Text: tok.Text, Parent: cur}
			cur.Children = append(cur.Children, n)
			doc.Nodes++
			doc.Bytes += 128 + int64(len(tok.Text))
		}
		if maxNodes > 0 && doc.Nodes > maxNodes {
			return nil, fmt.Errorf("%w: document holds %d nodes, budget %d (full-buffering engine)",
				buffer.ErrBudget, doc.Nodes, maxNodes)
		}
	}
	doc.Tokens = tz.TokenCount()
	return doc, nil
}

// Attr returns the value of the named attribute.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// StringValue returns the concatenated text of the subtree.
func (n *Node) StringValue() string {
	if n.Kind == Text {
		return n.Text
	}
	var b strings.Builder
	var rec func(m *Node)
	rec = func(m *Node) {
		if m.Kind == Text {
			b.WriteString(m.Text)
			return
		}
		for _, c := range m.Children {
			rec(c)
		}
	}
	rec(n)
	return b.String()
}

func matches(n *Node, test xpath.Test) bool {
	switch n.Kind {
	case Element:
		return test.MatchesElement(n.Name)
	case Text:
		return test.MatchesText()
	case Root:
		return test.Kind == xpath.TestNode
	}
	return false
}

// Select evaluates a path from base, returning distinct nodes in
// document order (node-set semantics; attribute steps are rejected —
// callers handle attributes themselves, as in the buffer engine).
func Select(base *Node, path xpath.Path) []*Node {
	if path.EndsWithAttribute() {
		panic("dom: attribute step in Select")
	}
	current := []*Node{base}
	for _, step := range path.Steps {
		seen := map[*Node]bool{}
		var next []*Node
		add := func(n *Node) {
			if !seen[n] {
				seen[n] = true
				next = append(next, n)
			}
		}
		for _, src := range current {
			switch step.Axis {
			case xpath.Self:
				if matches(src, step.Test) {
					add(src)
				}
			case xpath.Child:
				for _, c := range src.Children {
					if matches(c, step.Test) {
						add(c)
						if step.FirstOnly {
							break
						}
					}
				}
			case xpath.Descendant, xpath.DescendantOrSelf:
				includeSelf := step.Axis == xpath.DescendantOrSelf
				found := false
				var rec func(m *Node, self bool)
				rec = func(m *Node, self bool) {
					if step.FirstOnly && found {
						return
					}
					if self && matches(m, step.Test) {
						add(m)
						if step.FirstOnly {
							found = true
							return
						}
					}
					for _, c := range m.Children {
						rec(c, true)
					}
				}
				found = false
				rec(src, includeSelf)
			}
		}
		// restore document order across sources (nested descendant
		// sources can interleave); do a stable re-sort by tree position
		current = docOrder(base, next)
	}
	return current
}

// docOrder filters base's subtree in document order, keeping nodes in
// the set. base itself is included when present in the set.
func docOrder(base *Node, nodes []*Node) []*Node {
	if len(nodes) <= 1 {
		return nodes
	}
	set := make(map[*Node]bool, len(nodes))
	for _, n := range nodes {
		set[n] = true
	}
	out := make([]*Node, 0, len(nodes))
	var rec func(n *Node)
	rec = func(n *Node) {
		if set[n] {
			out = append(out, n)
		}
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(base)
	return out
}

// Serialize writes the subtree of n.
func Serialize(n *Node, s event.Sink) {
	switch n.Kind {
	case Text:
		s.Text(n.Text)
	case Element:
		s.StartElement(n.Name, n.Attrs)
		for _, c := range n.Children {
			Serialize(c, s)
		}
		s.EndElement(n.Name)
	case Root:
		for _, c := range n.Children {
			Serialize(c, s)
		}
	}
}
