// Package schema models DTD-style content ordering: for each element,
// the ordered list of child element names it may contain. The paper's
// schema-based comparator (FluXQuery) exploits exactly this kind of
// information; here it serves two purposes:
//
//   - validating that the XMark-like generator emits children in the
//     declared order (so order-dependent experiments are trustworthy);
//   - documenting the structure the adapted benchmark queries rely on.
package schema

import (
	"fmt"
	"io"

	"gcx/internal/xmltok"
)

// Schema maps an element name to its ordered child-element vocabulary.
// Children may repeat and be omitted, but must appear in declared
// relative order (a simplified DTD sequence model with optional,
// repeatable groups). Elements not present in the map accept anything.
type Schema struct {
	children map[string][]string
	pos      map[string]map[string]int
}

// New builds a Schema from the element → ordered-children table.
func New(children map[string][]string) *Schema {
	s := &Schema{children: children, pos: make(map[string]map[string]int, len(children))}
	for parent, kids := range children {
		m := make(map[string]int, len(kids))
		for i, k := range kids {
			m[k] = i
		}
		s.pos[parent] = m
	}
	return s
}

// ChildPos returns the declared position of child under parent, and
// whether the pair is declared at all.
func (s *Schema) ChildPos(parent, child string) (int, bool) {
	m, ok := s.pos[parent]
	if !ok {
		return 0, false
	}
	p, ok := m[child]
	return p, ok
}

// Declares reports whether parent constrains its children.
func (s *Schema) Declares(parent string) bool {
	_, ok := s.children[parent]
	return ok
}

// ValidationError reports the first order or vocabulary violation.
type ValidationError struct {
	Parent string
	Child  string
	Offset int64 // token ordinal
	Reason string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("schema: token %d: <%s> inside <%s>: %s", e.Offset, e.Child, e.Parent, e.Reason)
}

// Validate streams a document and checks every declared parent's
// children against the schema's vocabulary and relative order.
func (s *Schema) Validate(r io.Reader) error {
	tz := xmltok.NewTokenizer(r)
	type frame struct {
		name    string
		checked bool
		lastPos int
	}
	stack := []frame{{name: "", checked: false}}
	for {
		tok, err := tz.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		switch tok.Kind {
		case xmltok.StartElement:
			top := &stack[len(stack)-1]
			if top.checked {
				pos, ok := s.ChildPos(top.name, tok.Name)
				if !ok {
					return &ValidationError{Parent: top.name, Child: tok.Name,
						Offset: tz.TokenCount(), Reason: "not in declared vocabulary"}
				}
				if pos < top.lastPos {
					return &ValidationError{Parent: top.name, Child: tok.Name,
						Offset: tz.TokenCount(), Reason: "out of declared order"}
				}
				top.lastPos = pos
			}
			stack = append(stack, frame{name: tok.Name, checked: s.Declares(tok.Name), lastPos: -1})
		case xmltok.EndElement:
			stack = stack[:len(stack)-1]
		}
	}
}
