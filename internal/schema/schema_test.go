package schema

import (
	"strings"
	"testing"
)

func testSchema() *Schema {
	return New(map[string][]string{
		"book": {"title", "author", "price"},
		"bib":  {"book", "article"},
	})
}

func TestChildPos(t *testing.T) {
	s := testSchema()
	if p, ok := s.ChildPos("book", "author"); !ok || p != 1 {
		t.Fatalf("author pos = %d, %v", p, ok)
	}
	if _, ok := s.ChildPos("book", "isbn"); ok {
		t.Fatal("undeclared child accepted")
	}
	if _, ok := s.ChildPos("unknown", "x"); ok {
		t.Fatal("undeclared parent accepted")
	}
	if !s.Declares("bib") || s.Declares("title") {
		t.Fatal("Declares wrong")
	}
}

func TestValidateAccepts(t *testing.T) {
	s := testSchema()
	docs := []string{
		`<bib><book><title/><author/><price/></book></bib>`,
		`<bib><book><title/><title/><price/></book><article/></bib>`, // repeats ok
		`<bib><book/></bib>`, // omissions ok
		`<bib><book><author/></book></bib>`,
		`<other><anything/></other>`, // undeclared parents unconstrained
		`<bib><book>text content is ignored</book></bib>`,
	}
	for _, doc := range docs {
		if err := s.Validate(strings.NewReader(doc)); err != nil {
			t.Errorf("Validate(%q) = %v, want nil", doc, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	s := testSchema()
	cases := []struct {
		doc    string
		reason string
	}{
		{`<bib><book><author/><title/></book></bib>`, "out of declared order"},
		{`<bib><book><isbn/></book></bib>`, "not in declared vocabulary"},
		{`<bib><magazine/></bib>`, "not in declared vocabulary"},
	}
	for _, c := range cases {
		err := s.Validate(strings.NewReader(c.doc))
		if err == nil {
			t.Errorf("Validate(%q): expected error", c.doc)
			continue
		}
		ve, ok := err.(*ValidationError)
		if !ok || !strings.Contains(ve.Reason, c.reason) {
			t.Errorf("Validate(%q) = %v, want reason %q", c.doc, err, c.reason)
		}
	}
}

func TestValidateMalformedInput(t *testing.T) {
	if err := testSchema().Validate(strings.NewReader(`<bib><book></bib>`)); err == nil {
		t.Fatal("malformed input must error")
	}
}
