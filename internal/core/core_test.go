package core

import (
	"strings"
	"testing"
)

const doc = `<bib><book><title>A</title></book><book><title>B</title></book></bib>`
const query = `<out>{ for $b in /bib/book return $b/title }</out>`

func TestCompile(t *testing.T) {
	plan, err := Compile(query)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Source != query {
		t.Fatal("Source not recorded")
	}
	if len(plan.Roles) == 0 || plan.Rewritten == nil || plan.Normalized == nil {
		t.Fatal("plan incomplete")
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile(`for $x in`); err == nil {
		t.Fatal("parse error not surfaced")
	}
	if _, err := Compile(`$nope/x`); err == nil {
		t.Fatal("analysis error not surfaced")
	}
}

func TestExecuteAllEngines(t *testing.T) {
	plan, err := Compile(query)
	if err != nil {
		t.Fatal(err)
	}
	want := `<out><title>A</title><title>B</title></out>`
	for _, kind := range []EngineKind{GCX, ProjectionOnly, DOM} {
		var out strings.Builder
		res, err := Execute(plan, strings.NewReader(doc), &out, ExecOptions{Engine: kind})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if out.String() != want {
			t.Fatalf("%s output = %q", kind, out.String())
		}
		if res.Duration <= 0 {
			t.Fatalf("%s duration not measured", kind)
		}
		if res.PeakBufferedNodes <= 0 {
			t.Fatalf("%s peak missing", kind)
		}
	}
}

func TestExecuteRecordsSeries(t *testing.T) {
	plan, err := Compile(query)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	res, err := Execute(plan, strings.NewReader(doc), &out, ExecOptions{RecordEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) == 0 {
		t.Fatal("series not recorded")
	}
	// recording is a streaming-engine feature; DOM ignores it
	res, err = Execute(plan, strings.NewReader(doc), &out, ExecOptions{Engine: DOM, RecordEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 0 {
		t.Fatal("DOM must not record a series")
	}
}

func TestParseEngineKind(t *testing.T) {
	cases := map[string]EngineKind{
		"gcx": GCX, "projection": ProjectionOnly, "proj": ProjectionOnly,
		"nogc": ProjectionOnly, "dom": DOM, "naive": DOM,
	}
	for s, want := range cases {
		got, err := ParseEngineKind(s)
		if err != nil || got != want {
			t.Errorf("ParseEngineKind(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseEngineKind("bogus"); err == nil {
		t.Fatal("bogus engine accepted")
	}
}

func TestEngineKindString(t *testing.T) {
	for kind, want := range map[EngineKind]string{GCX: "gcx", ProjectionOnly: "projection", DOM: "dom"} {
		if kind.String() != want {
			t.Errorf("%d.String() = %q", kind, kind.String())
		}
	}
}
