// Package core wires the compile pipeline (parse → normalize → analyze
// → rewrite) and the engine dispatch behind the public gcx package. It
// is the seam between the paper's static analysis (internal/analysis)
// and the three runtime disciplines compared in the paper's Figure 5.
package core

import (
	"context"
	"fmt"
	"io"
	"time"

	"gcx/internal/analysis"
	"gcx/internal/baseline"
	"gcx/internal/engine"
	"gcx/internal/event"
	"gcx/internal/obs"
	"gcx/internal/stats"
	"gcx/internal/xqparse"
)

// EngineKind selects the buffering discipline.
type EngineKind uint8

const (
	// GCX is the paper's engine: static projection + dynamic buffer
	// minimization via active garbage collection.
	GCX EngineKind = iota
	// ProjectionOnly is the static-analysis-only baseline (projection,
	// no purging).
	ProjectionOnly
	// DOM is the full-buffering baseline.
	DOM
)

func (k EngineKind) String() string {
	switch k {
	case GCX:
		return "gcx"
	case ProjectionOnly:
		return "projection"
	case DOM:
		return "dom"
	default:
		return fmt.Sprintf("EngineKind(%d)", uint8(k))
	}
}

// ParseEngineKind resolves a CLI name.
func ParseEngineKind(s string) (EngineKind, error) {
	switch s {
	case "gcx":
		return GCX, nil
	case "projection", "proj", "nogc":
		return ProjectionOnly, nil
	case "dom", "naive":
		return DOM, nil
	default:
		return 0, fmt.Errorf("unknown engine %q (want gcx, projection or dom)", s)
	}
}

// Compile parses and analyzes a query with the paper's default
// analysis.
func Compile(src string) (*analysis.Plan, error) {
	return CompileWithOptions(src, analysis.Options{})
}

// CompileWithOptions parses and analyzes with explicit analysis
// switches (ablations).
func CompileWithOptions(src string, opts analysis.Options) (*analysis.Plan, error) {
	q, err := xqparse.Parse(src)
	if err != nil {
		return nil, err
	}
	plan, err := analysis.AnalyzeWithOptions(q, opts)
	if err != nil {
		return nil, err
	}
	plan.Source = src
	return plan, nil
}

// ExecOptions tunes a run.
type ExecOptions struct {
	Engine            EngineKind
	SignOffMode       engine.SignOffMode
	EnableAggregation bool
	// Format selects the input (and with it the output) syntax;
	// FormatAuto sniffs the stream's first non-whitespace byte.
	Format Format
	// DisableSkip turns off projection-guided byte-level subtree
	// skipping (DESIGN.md §7); used by A/B measurements and parity
	// tests. Recording runs disable skipping regardless.
	DisableSkip bool
	// RecordEvery samples the buffer plot every N tokens (0 disables).
	// Recording is only meaningful for the streaming engines.
	RecordEvery int64
	// MaxBufferedNodes, when positive, is the run's node budget
	// (DESIGN.md §9): the streaming engines abort within one token of
	// the buffer population crossing it, the DOM baseline during the
	// parse, both with an error wrapping buffer.ErrBudget. The
	// streaming engines additionally return their partial statistics
	// alongside the error. Zero means unlimited.
	MaxBufferedNodes int64
	// DisableJoin evaluates detected join plans (DESIGN.md §10) with
	// nested loops instead of the streaming hash join; for ablation and
	// differential testing. Output is identical either way.
	DisableJoin bool
	// Trace records per-phase wall time (DESIGN.md §11): setup (format
	// resolution, source/sink construction), the engine's stream/join
	// phases, and eval as the remainder — so a sequential run's phases
	// sum to Duration exactly. Off by default; the stamps cost two
	// monotonic reads per evaluator pull when on.
	Trace bool
}

// ExecResult combines the engine statistics with timing and the
// recorded series.
type ExecResult struct {
	engine.Result
	Duration time.Duration
	Series   []stats.Point
	// Phases is the per-phase wall-time trace (nil unless
	// ExecOptions.Trace was set).
	Phases []obs.PhaseTime
}

// Execute runs a compiled plan over input, writing the result to
// output.
func Execute(plan *analysis.Plan, input io.Reader, output io.Writer, opts ExecOptions) (*ExecResult, error) {
	return ExecuteContext(context.Background(), plan, input, output, opts)
}

// ExecuteContext runs a compiled plan over input under a cancellation
// context, writing the result to output. The streaming engines observe
// ctx at every token-pull boundary; the DOM baseline during parsing and
// between loop iterations. On cancellation ctx.Err() is returned and no
// further output is written.
//
// A Plan is immutable after compilation, so any number of
// ExecuteContext calls may share one plan across goroutines; all
// per-run state lives in the engine instance created here.
func ExecuteContext(ctx context.Context, plan *analysis.Plan, input io.Reader, output io.Writer, opts ExecOptions) (*ExecResult, error) {
	start := time.Now()
	var timer *obs.Timer
	if opts.Trace {
		timer = new(obs.Timer)
	}
	format, input, err := ResolveFormat(opts.Format, input)
	if err != nil {
		return nil, err
	}
	src, err := NewSource(format, input)
	if err != nil {
		return nil, err
	}
	sink, err := NewSink(format, output)
	if err != nil {
		src.Release()
		return nil, err
	}
	if timer != nil {
		timer.Add(obs.PhaseSetup, time.Since(start))
	}
	return run(ctx, plan, src, sink, opts, start, timer)
}

// ExecuteBytes runs a compiled plan over an in-memory document, writing
// the result to output. See ExecuteBytesContext.
func ExecuteBytes(plan *analysis.Plan, data []byte, output io.Writer, opts ExecOptions) (*ExecResult, error) {
	return ExecuteBytesContext(context.Background(), plan, data, output, opts)
}

// ExecuteBytesContext runs a compiled plan over an in-memory document
// under a cancellation context. This is the zero-copy fast path
// (DESIGN.md §12): the tokenizer scans data in place through the block
// cursor — no staging buffer, no per-window copying — and text tokens
// borrow subslices of data instead of allocating. The caller must not
// mutate data until the call returns and all result processing is done.
func ExecuteBytesContext(ctx context.Context, plan *analysis.Plan, data []byte, output io.Writer, opts ExecOptions) (*ExecResult, error) {
	start := time.Now()
	var timer *obs.Timer
	if opts.Trace {
		timer = new(obs.Timer)
	}
	format := ResolveFormatBytes(opts.Format, data)
	src, err := NewSourceBytes(format, data)
	if err != nil {
		return nil, err
	}
	sink, err := NewSink(format, output)
	if err != nil {
		src.Release()
		return nil, err
	}
	if timer != nil {
		timer.Add(obs.PhaseSetup, time.Since(start))
	}
	return run(ctx, plan, src, sink, opts, start, timer)
}

// run is the engine dispatch shared by the reader and []byte entry
// points: both resolve their format and build source/sink, then the
// execution below is identical.
func run(ctx context.Context, plan *analysis.Plan, src event.Source, sink event.Sink, opts ExecOptions, start time.Time, timer *obs.Timer) (*ExecResult, error) {
	// finish completes the trace: eval is the wall-time remainder after
	// every stamped phase, so the phases sum to Duration exactly.
	finish := func(res *engine.Result) *ExecResult {
		out := &ExecResult{Result: *res, Duration: time.Since(start)}
		if timer != nil {
			if rest := int64(out.Duration) - timer.Sum(); rest > 0 {
				timer.AddNanos(obs.PhaseEval, rest)
			}
			out.Phases = timer.Phases()
		}
		return out
	}
	var res *engine.Result
	var rec *stats.Recorder
	var err error
	switch opts.Engine {
	case GCX, ProjectionOnly:
		cfg := engine.Config{
			SignOffMode:       opts.SignOffMode,
			DisableGC:         opts.Engine == ProjectionOnly,
			EnableAggregation: opts.EnableAggregation,
			DisableSkip:       opts.DisableSkip,
			MaxBufferedNodes:  opts.MaxBufferedNodes,
			DisableJoin:       opts.DisableJoin,
			Timer:             timer,
		}
		if opts.RecordEvery > 0 {
			rec = stats.NewRecorder(opts.RecordEvery)
			cfg.Recorder = rec
		}
		eng := engine.New(plan, src, sink, cfg)
		res, err = eng.RunContext(ctx)
		// The result only carries counters, so the engine's pooled
		// buffers (source, sink, node slabs) go back to their pools
		// right away.
		eng.Release()
	case DOM:
		res, err = baseline.RunDOMSource(ctx, plan, src, sink, opts.EnableAggregation, opts.MaxBufferedNodes)
		src.Release()
		sink.Release()
	default:
		src.Release()
		sink.Release()
		return nil, fmt.Errorf("core: unknown engine kind %d", opts.Engine)
	}
	if err != nil {
		// Budget breaches carry the partial statistics (how far the run
		// got before degrading); other errors return nil as before.
		if res != nil {
			return finish(res), err
		}
		return nil, err
	}
	out := finish(res)
	if rec != nil {
		out.Series = rec.Points
	}
	return out, nil
}
