// Input/output format selection (DESIGN.md §8): the engine itself is
// format-neutral — it consumes an event.Source and writes an
// event.Sink — and this file is the single place where a Format value
// resolves to concrete front ends (internal/xmltok, internal/jsontok).
package core

import (
	"bufio"
	"fmt"
	"io"
	"path/filepath"
	"strings"

	"gcx/internal/event"
	"gcx/internal/jsontok"
	"gcx/internal/xmltok"
)

// Format selects the input syntax (and with it the output syntax: XML
// input serializes results as XML, JSON/NDJSON input as JSON lines).
type Format uint8

const (
	// FormatAuto sniffs the format from the first non-whitespace input
	// byte: '<' means XML, anything else JSON. Auto never resolves to
	// NDJSON — line-framing (and with it NDJSON sharding) is an
	// explicit promise the caller must make.
	FormatAuto Format = iota
	// FormatXML is the paper's XML front end.
	FormatXML
	// FormatJSON is a stream of whitespace-separated JSON values
	// (a single document, or concatenated/pretty-printed values).
	FormatJSON
	// FormatNDJSON is newline-delimited JSON: exactly one record per
	// line, which is what record-aligned stream sharding cuts at.
	FormatNDJSON
)

func (f Format) String() string {
	switch f {
	case FormatAuto:
		return "auto"
	case FormatXML:
		return "xml"
	case FormatJSON:
		return "json"
	case FormatNDJSON:
		return "ndjson"
	default:
		return fmt.Sprintf("Format(%d)", uint8(f))
	}
}

// ParseFormat resolves a CLI/URL name.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "", "auto":
		return FormatAuto, nil
	case "xml":
		return FormatXML, nil
	case "json":
		return FormatJSON, nil
	case "ndjson", "jsonl", "json-lines":
		return FormatNDJSON, nil
	default:
		return 0, fmt.Errorf("unknown format %q (want auto, xml, json or ndjson)", s)
	}
}

// DetectPathFormat guesses a format from a file name's extension,
// returning FormatAuto when the extension is not telling.
func DetectPathFormat(path string) Format {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".xml":
		return FormatXML
	case ".json":
		return FormatJSON
	case ".ndjson", ".jsonl":
		return FormatNDJSON
	default:
		return FormatAuto
	}
}

// ResolveFormat materializes FormatAuto by sniffing the stream's first
// non-whitespace byte ('<' → XML, otherwise JSON). It returns the
// resolved format together with a reader that still delivers the full
// stream (the sniffed bytes are not consumed). Explicit formats pass
// through untouched.
func ResolveFormat(f Format, r io.Reader) (Format, io.Reader, error) {
	if f != FormatAuto {
		return f, r, nil
	}
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 4096)
	}
	for skip := 0; ; skip++ {
		b, err := br.Peek(skip + 1)
		if err != nil {
			// Empty or whitespace-only input: either front end reports
			// its own (syntax) error; default to XML, the historical one.
			return FormatXML, br, nil
		}
		switch b[skip] {
		case ' ', '\t', '\r', '\n':
			continue
		case '<':
			return FormatXML, br, nil
		default:
			return FormatJSON, br, nil
		}
	}
}

// ResolveFormatBytes materializes FormatAuto for in-memory input by
// sniffing the first non-whitespace byte ('<' → XML, otherwise JSON).
// Explicit formats pass through untouched. Unlike ResolveFormat there
// is no reader to re-wrap, so nothing can fail.
func ResolveFormatBytes(f Format, data []byte) Format {
	if f != FormatAuto {
		return f
	}
	for _, b := range data {
		switch b {
		case ' ', '\t', '\r', '\n':
			continue
		case '<':
			return FormatXML
		default:
			return FormatJSON
		}
	}
	// Empty or whitespace-only input: either front end reports its own
	// (syntax) error; default to XML, the historical one.
	return FormatXML
}

// NewSource returns the event source for a resolved format. FormatAuto
// must be resolved (ResolveFormat) before this call.
func NewSource(f Format, r io.Reader) (event.Source, error) {
	switch f {
	case FormatXML:
		return xmltok.NewTokenizer(r), nil
	case FormatJSON, FormatNDJSON:
		return jsontok.NewTokenizer(r), nil
	default:
		return nil, fmt.Errorf("core: format %v has no event source (resolve auto first)", f)
	}
}

// NewSourceBytes returns the zero-copy event source for a resolved
// format: windows and text tokens alias data, which the caller must not
// mutate until the run is over. FormatAuto must be resolved
// (ResolveFormatBytes) before this call.
func NewSourceBytes(f Format, data []byte) (event.Source, error) {
	switch f {
	case FormatXML:
		return xmltok.NewTokenizerBytes(data), nil
	case FormatJSON, FormatNDJSON:
		return jsontok.NewTokenizerBytes(data), nil
	default:
		return nil, fmt.Errorf("core: format %v has no event source (resolve auto first)", f)
	}
}

// NewSink returns the event sink matching a resolved input format: XML
// results for XML input, JSON-lines results for JSON/NDJSON input.
func NewSink(f Format, w io.Writer) (event.Sink, error) {
	switch f {
	case FormatXML:
		return xmltok.NewSerializer(w), nil
	case FormatJSON, FormatNDJSON:
		return jsontok.NewSerializer(w), nil
	default:
		return nil, fmt.Errorf("core: format %v has no event sink (resolve auto first)", f)
	}
}
