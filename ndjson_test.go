package gcx_test

import (
	"strings"
	"testing"

	"gcx"
	"gcx/internal/event"
	"gcx/internal/jsontok"
	"gcx/internal/xmark"
	"gcx/internal/xmltok"
)

// renderNDJSONAsXML materializes the JSON front end's tree mapping
// (DESIGN.md §8) as a concrete XML document: the corpus tokenized by
// jsontok, re-serialized by xmltok. Queries see the identical tree
// through either syntax, which is what the differential tests pin.
func renderNDJSONAsXML(t *testing.T, ndjson string) string {
	t.Helper()
	tk := jsontok.NewTokenizer(strings.NewReader(ndjson))
	defer tk.Release()
	var b strings.Builder
	sk := xmltok.NewSerializer(&b)
	defer sk.Release()
	for {
		tok, err := tk.Next()
		if err != nil {
			break
		}
		switch tok.Kind {
		case event.StartElement:
			sk.StartElement(tok.Name, tok.Attrs)
		case event.EndElement:
			sk.EndElement(tok.Name)
		case event.Text:
			sk.Text(tok.Text)
		}
	}
	if err := sk.Flush(); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// xmlForestToJSON re-serializes an XML query result (a forest of
// top-level result elements) through the JSON sink by tokenizing it
// under a synthetic wrapper element that is not forwarded. The result
// is what the same query run would have emitted on the JSON path.
func xmlForestToJSON(t *testing.T, xmlOut string) string {
	t.Helper()
	tk := xmltok.NewTokenizer(strings.NewReader("<forest>" + xmlOut + "</forest>"))
	defer tk.Release()
	var b strings.Builder
	sk := jsontok.NewSerializer(&b)
	defer sk.Release()
	depth := 0
	for {
		tok, err := tk.Next()
		if err != nil {
			break
		}
		switch tok.Kind {
		case event.StartElement:
			if depth > 0 {
				sk.StartElement(tok.Name, tok.Attrs)
			}
			depth++
		case event.EndElement:
			depth--
			if depth > 0 {
				sk.EndElement(tok.Name)
			}
		case event.Text:
			if depth > 1 {
				sk.Text(tok.Text)
			}
		}
	}
	if err := sk.Flush(); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestNDJSONDifferentialXML is the format-neutrality property of the
// event layer: a query run over an NDJSON corpus and the same query run
// over the corpus's XML rendering must produce equivalent results —
// byte-identical once the XML result forest is mapped back through the
// JSON serializer.
func TestNDJSONDifferentialXML(t *testing.T) {
	nd, _, err := xmark.GenerateNDJSONString(xmark.Config{TargetBytes: 128 << 10, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	xmlDoc := renderNDJSONAsXML(t, nd)
	for qid, entry := range xmark.NDJSONQueries {
		q := gcx.MustCompile(entry.Text)
		jout, jres, err := q.ExecuteString(nd, gcx.Options{Format: gcx.FormatNDJSON})
		if err != nil {
			t.Fatalf("%s ndjson: %v", qid, err)
		}
		xout, _, err := q.ExecuteString(xmlDoc, gcx.Options{Format: gcx.FormatXML})
		if err != nil {
			t.Fatalf("%s xml: %v", qid, err)
		}
		if got := xmlForestToJSON(t, xout); got != jout {
			t.Errorf("%s: XML and NDJSON runs diverge\n  json: %.200q\n  xml→: %.200q", qid, jout, got)
		}
		if jres.TokensProcessed == 0 {
			t.Errorf("%s: no tokens consumed on the JSON path?", qid)
		}
	}
}

// TestNDJSONDifferentialAutoSniff: FormatAuto resolves the two corpora
// to the right tokenizers (first non-whitespace byte), so the same
// differential property holds without an explicit format.
func TestNDJSONDifferentialAutoSniff(t *testing.T) {
	nd, _, err := xmark.GenerateNDJSONString(xmark.Config{TargetBytes: 16 << 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	xmlDoc := renderNDJSONAsXML(t, nd)
	q := gcx.MustCompile(xmark.NDJSONQueries["J2"].Text)
	jout, _, err := q.ExecuteString(nd, gcx.Options{})
	if err != nil {
		t.Fatal(err)
	}
	xout, _, err := q.ExecuteString(xmlDoc, gcx.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := xmlForestToJSON(t, xout); got != jout {
		t.Fatalf("auto-sniffed runs diverge\n  json: %.200q\n  xml→: %.200q", jout, got)
	}
}

// TestNDJSONShardedByteIdentity: the sharded NDJSON path (line-boundary
// splitter + per-chunk engines) is byte-identical to the sequential one
// at shards ∈ {2, 4, 8}, because JSON results carry no cross-item state.
func TestNDJSONShardedByteIdentity(t *testing.T) {
	nd, _, err := xmark.GenerateNDJSONString(xmark.Config{TargetBytes: 256 << 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for qid, entry := range xmark.NDJSONQueries {
		q := gcx.MustCompile(entry.Text)
		want, _, err := q.ExecuteString(nd, gcx.Options{Format: gcx.FormatNDJSON})
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{2, 4, 8} {
			got, res, err := q.ExecuteString(nd, gcx.Options{Format: gcx.FormatNDJSON, Shards: n})
			if err != nil {
				t.Fatalf("%s shards=%d: %v", qid, n, err)
			}
			if got != want {
				t.Fatalf("%s shards=%d: output differs from sequential", qid, n)
			}
			if res.ShardsUsed != n {
				t.Fatalf("%s shards=%d: ShardsUsed = %d", qid, n, res.ShardsUsed)
			}
			if res.Chunks == 0 {
				t.Fatalf("%s shards=%d: no chunks reported", qid, n)
			}
		}
	}
}

// TestNDJSONShardFallbacks: plain JSON (no line framing to split on)
// and wrapper-producing queries run sequentially even when Shards is
// set, without changing the output.
func TestNDJSONShardFallbacks(t *testing.T) {
	nd, _, err := xmark.GenerateNDJSONString(xmark.Config{TargetBytes: 32 << 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	// The same stream under FormatJSON: record boundaries are unknown,
	// so the run must fall back to one engine.
	q := gcx.MustCompile(xmark.NDJSONQueries["J1"].Text)
	want, _, err := q.ExecuteString(nd, gcx.Options{Format: gcx.FormatJSON})
	if err != nil {
		t.Fatal(err)
	}
	got, res, err := q.ExecuteString(nd, gcx.Options{Format: gcx.FormatJSON, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got != want || res.ShardsUsed != 1 {
		t.Fatalf("FormatJSON fallback broken: used=%d identical=%v", res.ShardsUsed, got == want)
	}

	// A constant element wrapper is XML syntax in the output; the JSON
	// serializer cannot split it across workers, so NDJSON runs of such
	// queries stay sequential.
	wq := gcx.MustCompile(`<out>{ for $r in /root/record return $r/amount }</out>`)
	want, _, err = wq.ExecuteString(nd, gcx.Options{Format: gcx.FormatNDJSON})
	if err != nil {
		t.Fatal(err)
	}
	got, res, err = wq.ExecuteString(nd, gcx.Options{Format: gcx.FormatNDJSON, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got != want || res.ShardsUsed != 1 {
		t.Fatalf("wrapper fallback broken: used=%d identical=%v", res.ShardsUsed, got == want)
	}
	if !strings.Contains(wq.Explain(), "ndjson: sequential only") {
		t.Fatalf("Explain missing the NDJSON verdict:\n%s", wq.Explain())
	}
	if !strings.Contains(q.Explain(), "ndjson: eligible") {
		t.Fatalf("Explain missing NDJSON eligibility:\n%s", q.Explain())
	}
}

// TestNDJSONSkipCounters: byte-level subtree skipping works through the
// JSON tokenizer — J1 touches only bidder and amount, so the bulky item
// subtree of every record is fast-forwarded at byte level.
func TestNDJSONSkipCounters(t *testing.T) {
	nd, _, err := xmark.GenerateNDJSONString(xmark.Config{TargetBytes: 64 << 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	q := gcx.MustCompile(xmark.NDJSONQueries["J1"].Text)
	_, res, err := q.ExecuteString(nd, gcx.Options{Format: gcx.FormatNDJSON})
	if err != nil {
		t.Fatal(err)
	}
	if res.SubtreesSkipped == 0 || res.BytesSkipped == 0 {
		t.Fatalf("no skipping on the JSON path: subtrees=%d bytes=%d", res.SubtreesSkipped, res.BytesSkipped)
	}
	// Sharded runs aggregate the same counters across workers.
	_, sres, err := q.ExecuteString(nd, gcx.Options{Format: gcx.FormatNDJSON, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sres.SubtreesSkipped == 0 || sres.BytesSkipped == 0 {
		t.Fatalf("no skip counters from sharded run: subtrees=%d bytes=%d", sres.SubtreesSkipped, sres.BytesSkipped)
	}
	// J2 descends into the item object, so its skips are scalar-valued
	// members. Scalars parse lazily, so even these count raw bytes.
	q2 := gcx.MustCompile(xmark.NDJSONQueries["J2"].Text)
	_, res2, err := q2.ExecuteString(nd, gcx.Options{Format: gcx.FormatNDJSON})
	if err != nil {
		t.Fatal(err)
	}
	if res2.SubtreesSkipped == 0 || res2.BytesSkipped == 0 {
		t.Fatalf("scalar-level skips count no bytes: subtrees=%d bytes=%d", res2.SubtreesSkipped, res2.BytesSkipped)
	}
}
