package gcx_test

import (
	"strings"
	"testing"

	"gcx"
	"gcx/internal/xmark"
)

// TestSkipParityXMark is the correctness pin of projection-guided
// subtree skipping (DESIGN.md §7): over the XMark suite, the skipping
// engine's output must be byte-identical to the non-skipping engine's,
// for both streaming disciplines, across generator seeds — and the
// queries whose projection paths exclude large document sections must
// actually skip bytes.
func TestSkipParityXMark(t *testing.T) {
	queries := []string{"Q1", "Q6", "Q8", "Q13", "Q20"}
	// Queries whose role paths leave whole top-level sections dead;
	// the acceptance bar requires nonzero BytesSkipped on these.
	mustSkip := map[string]bool{"Q1": true, "Q6": true, "Q13": true}
	for _, seed := range []int64{1, 7} {
		doc, _, err := xmark.GenerateString(xmark.Config{TargetBytes: 256 << 10, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for _, qid := range queries {
			entry := xmark.Queries[qid]
			q, err := gcx.Compile(entry.Text)
			if err != nil {
				t.Fatalf("%s: %v", qid, err)
			}
			for _, eng := range []struct {
				name string
				opt  gcx.Engine
			}{{"gcx", gcx.EngineGCX}, {"projection", gcx.EngineProjectionOnly}} {
				base := gcx.Options{Engine: eng.opt, EnableAggregation: entry.UsesAggregation}

				off := base
				off.DisableSubtreeSkip = true
				wantOut, wantRes, err := q.ExecuteString(doc, off)
				if err != nil {
					t.Fatalf("%s/%s noskip: %v", qid, eng.name, err)
				}
				if wantRes.BytesSkipped != 0 || wantRes.SubtreesSkipped != 0 {
					t.Fatalf("%s/%s: skip-disabled run reported skipping: %+v", qid, eng.name, wantRes)
				}

				gotOut, gotRes, err := q.ExecuteString(doc, base)
				if err != nil {
					t.Fatalf("%s/%s skip: %v", qid, eng.name, err)
				}
				if gotOut != wantOut {
					t.Fatalf("%s/%s seed %d: output diverges with skipping on\nskip:   %.200q\nnoskip: %.200q",
						qid, eng.name, seed, gotOut, wantOut)
				}
				if gotRes.OutputBytes != wantRes.OutputBytes {
					t.Fatalf("%s/%s: OutputBytes %d != %d", qid, eng.name, gotRes.OutputBytes, wantRes.OutputBytes)
				}
				if mustSkip[qid] && gotRes.BytesSkipped == 0 {
					t.Fatalf("%s/%s: expected nonzero BytesSkipped", qid, eng.name)
				}
				if gotRes.BytesSkipped > 0 && gotRes.TokensProcessed >= wantRes.TokensProcessed {
					t.Fatalf("%s/%s: skipping did not reduce tokens (%d vs %d)",
						qid, eng.name, gotRes.TokensProcessed, wantRes.TokensProcessed)
				}
			}
		}
	}
}

// TestSkipParitySharded: sharded runs ride the same skipping engine in
// every worker; output must stay byte-identical to the sequential
// non-skipping run, and worker skipping must surface in the aggregated
// counters.
func TestSkipParitySharded(t *testing.T) {
	doc, _, err := xmark.GenerateString(xmark.Config{TargetBytes: 256 << 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	q, err := gcx.Compile(xmark.Queries["Q1"].Text)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Shardable() {
		t.Fatal("Q1 must be shardable")
	}
	want, _, err := q.ExecuteString(doc, gcx.Options{DisableSubtreeSkip: true})
	if err != nil {
		t.Fatal(err)
	}
	got, res, err := q.ExecuteString(doc, gcx.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("sharded skipping output diverges\ngot:  %.200q\nwant: %.200q", got, want)
	}
	if res.BytesSkipped == 0 {
		t.Fatal("sharded Q1 should report worker-side BytesSkipped")
	}
}

// TestSkipDisabledWhenRecording: RecordEvery runs keep the paper's
// per-token x-axis, so they must not skip.
func TestSkipDisabledWhenRecording(t *testing.T) {
	doc, _, err := xmark.GenerateString(xmark.Config{TargetBytes: 64 << 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	q, err := gcx.Compile(xmark.Queries["Q1"].Text)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Execute(strings.NewReader(doc), discardWriter{}, gcx.Options{RecordEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesSkipped != 0 {
		t.Fatalf("recording run skipped %d bytes", res.BytesSkipped)
	}
	if len(res.Series) == 0 {
		t.Fatal("no series recorded")
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }
