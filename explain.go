package gcx

import (
	"fmt"
	"strings"

	"gcx/internal/analysis"
	"gcx/internal/xqast"
)

// ExplainReport is the structured form of everything the static
// analyzer decided about a query: projection roles, the rewritten query
// with its signOff statements, the streamability class with its static
// node bound (DESIGN.md §9), the subtree-skipping status and the
// sharding verdict. It marshals to JSON (the payload of gcxd's /explain
// endpoint and `gcx -explain-json`), and its Text method renders the
// legacy Query.Explain form — the report is the single source of truth,
// so the two cannot drift.
type ExplainReport struct {
	// Query is the original query text.
	Query string `json:"query,omitempty"`
	// Streamability is the lattice class: "bounded-constant",
	// "bounded-per-record" or "unbounded".
	Streamability string `json:"streamability"`
	// StreamabilityReason is the analyzer's justification — for
	// unbounded queries, the message strict compilation rejects with.
	StreamabilityReason string `json:"streamability_reason"`
	// StaticBound is the node-budget expression of a bounded query;
	// nil for unbounded ones.
	StaticBound *BoundReport `json:"static_bound,omitempty"`
	// Roles are the projection paths, in derivation order.
	Roles []Role `json:"roles"`
	// Rewritten is the executable query form with signOff statements.
	Rewritten string `json:"rewritten"`
	// UsesAggregation reports whether the query needs the aggregation
	// extension.
	UsesAggregation bool `json:"uses_aggregation"`
	// Skipping reports whether projection-guided byte-level subtree
	// skipping is available for this query.
	Skipping SkipReport `json:"skipping"`
	// Sharding is the data-parallel execution verdict.
	Sharding ShardReport `json:"sharding"`
	// Join describes the streaming hash join plan of a detected
	// two-variable equality join (DESIGN.md §10); nil when the query has
	// none and runs pure nested-loop evaluation.
	Join *JoinReport `json:"join,omitempty"`
	// TracePhases is a run's per-phase wall-time breakdown. The static
	// report leaves it empty; callers that executed the query with
	// Options.EnableTrace attach Result.Trace here (cmd/gcx -trace
	// does) and Text renders it as a Trace section.
	TracePhases []TracePhase `json:"trace,omitempty"`
}

// BoundReport is the static node budget of a bounded query:
// peak buffered nodes ≤ ConstNodes + RecordFactor·nodes(RecordPath).
type BoundReport struct {
	// ConstNodes is the input-independent term.
	ConstNodes int64 `json:"const_nodes"`
	// RecordFactor scales with the node count of the largest record
	// subtree; 0 for loop-free queries.
	RecordFactor int64 `json:"record_factor"`
	// RecordPath is the absolute path whose matches are the records;
	// empty when RecordFactor is 0.
	RecordPath string `json:"record_path,omitempty"`
	// Expr is the human-readable form, e.g. "132 + 3·nodes(/site/people/person)".
	Expr string `json:"expr"`
}

// SkipReport is the compile-time subtree-skipping status.
type SkipReport struct {
	// Active reports whether the path automaton compiled; runtime
	// switches (DisableSubtreeSkip, RecordEvery) can still disable
	// skipping per run.
	Active bool `json:"active"`
	// Reason says why skipping is unavailable when Active is false.
	Reason string `json:"reason,omitempty"`
}

// ShardReport is the compile-time sharding verdict.
type ShardReport struct {
	// Partitionable reports whether sharded execution is available.
	Partitionable bool `json:"partitionable"`
	// PartitionPath is the record boundary path of a partitionable
	// query.
	PartitionPath string `json:"partition_path,omitempty"`
	// Reason says why the query is sequential-only when Partitionable
	// is false.
	Reason string `json:"reason,omitempty"`
	// NDJSON reports whether sharding is also available over NDJSON
	// input (newline record framing).
	NDJSON bool `json:"ndjson"`
	// NDJSONReason says why an otherwise partitionable query must run
	// NDJSON input sequentially.
	NDJSONReason string `json:"ndjson_reason,omitempty"`
}

// JoinReport is the compile-time plan of a detected streaming join.
type JoinReport struct {
	// Strategy names the execution strategy.
	Strategy string `json:"strategy"`
	// ProbePath and BuildPath are the two correlated binding paths: the
	// probe side streams through, the build side is materialized.
	ProbePath string `json:"probe_path"`
	BuildPath string `json:"build_path"`
	// ProbeKey and BuildKey are the equality-compared key paths,
	// relative to their binding variables.
	ProbeKey string `json:"probe_key"`
	BuildKey string `json:"build_key"`
	// Budget notes how Options.MaxBufferedNodes applies: the build
	// side's materialization counts against the run's node budget, so a
	// budget trip surfaces before the table outgrows memory.
	Budget string `json:"budget"`
}

// Report returns the structured analyzer report of the compiled query.
func (q *Query) Report() ExplainReport {
	st := q.plan.Stream
	r := ExplainReport{
		Query:               q.plan.Source,
		Streamability:       st.Class.String(),
		StreamabilityReason: st.Reason,
		Roles:               q.Roles(),
		Rewritten:           xqast.Print(q.plan.Rewritten),
		UsesAggregation:     q.plan.UsesAggregation,
		Skipping: SkipReport{
			Active: q.plan.Automaton != nil,
			Reason: q.plan.SkipReason,
		},
	}
	if st.Class != analysis.Unbounded {
		r.StaticBound = &BoundReport{
			ConstNodes:   st.Bound.ConstNodes,
			RecordFactor: st.Bound.RecordFactor,
			Expr:         st.Bound.String(),
		}
		if st.Bound.RecordFactor > 0 {
			r.StaticBound.RecordPath = st.Bound.RecordPath.String()
		}
	}
	if q.shardInfo != nil {
		r.Sharding.Partitionable = true
		r.Sharding.PartitionPath = q.shardInfo.PartitionPath.String()
		if reason := analysis.NDJSONShardable(q.shardInfo); reason != "" {
			r.Sharding.NDJSONReason = reason
		} else {
			r.Sharding.NDJSON = true
		}
	} else {
		r.Sharding.Reason = q.shardReason
	}
	if j := q.plan.Join; j != nil {
		r.Join = &JoinReport{
			Strategy:  j.Strategy(),
			ProbePath: j.ProbePath.String(),
			BuildPath: j.BuildPath.String(),
			ProbeKey:  j.ProbeKey.RelString(),
			BuildKey:  j.BuildKey.RelString(),
			Budget:    "build-side nodes stay buffered until end of input and count against MaxBufferedNodes; a breach returns ErrBufferBudget with partial statistics",
		}
	}
	return r
}

// Text renders the report in the legacy Query.Explain layout: the role
// browser and rewritten query (the textual counterpart of the demo's
// Fig. 3(a) visualization), then one verdict line per analysis —
// streamability, static bound, skipping, sharding.
func (r ExplainReport) Text() string {
	var b strings.Builder
	b.WriteString("Roles (projection paths):\n")
	for _, role := range r.Roles {
		fmt.Fprintf(&b, "  %-4s %-55s (%s: %s)\n", role.Name+":", role.Path, role.Kind, role.Provenance)
	}
	b.WriteString("\nRewritten query with signOff statements:\n")
	b.WriteString(r.Rewritten)
	b.WriteString("\nStreamability: " + r.Streamability + " (" + r.StreamabilityReason + ")\n")
	if r.StaticBound != nil {
		b.WriteString("Static bound: peak ≤ " + r.StaticBound.Expr + " buffered nodes\n")
	} else {
		b.WriteString("Static bound: none (rejected by strict compilation; a runtime node budget can only trip)\n")
	}
	if r.Skipping.Active {
		b.WriteString("Skipping: byte-level subtree skipping active" +
			" (disabled per run by DisableSubtreeSkip or RecordEvery)\n")
	} else {
		b.WriteString("Skipping: disabled (" + r.Skipping.Reason + ")\n")
	}
	if r.Sharding.Partitionable {
		b.WriteString("Sharding: partitionable on " + r.Sharding.PartitionPath)
		if r.Sharding.NDJSON {
			b.WriteString(" (ndjson: eligible)")
		} else {
			b.WriteString(" (ndjson: sequential only — " + r.Sharding.NDJSONReason + ")")
		}
		b.WriteString("\n")
	} else {
		b.WriteString("Sharding: sequential only (" + r.Sharding.Reason + ")\n")
	}
	if r.Join != nil {
		b.WriteString("Join: " + r.Join.Strategy +
			" — probe " + r.Join.ProbePath + " key " + r.Join.ProbeKey +
			" ⋈ build " + r.Join.BuildPath + " key " + r.Join.BuildKey + "\n")
	}
	if len(r.TracePhases) > 0 {
		b.WriteString("Trace:\n")
		var total int64
		for _, p := range r.TracePhases {
			fmt.Fprintf(&b, "  %-10s %s\n", p.Phase, p.Duration())
			total += p.Nanos
		}
		fmt.Fprintf(&b, "  %-10s %s\n", "total", TracePhase{Nanos: total}.Duration())
	}
	return b.String()
}
