package gcx_test

// Runtime node-budget enforcement (Options.MaxBufferedNodes): every
// engine and execution mode must trip gracefully with ErrBufferBudget
// instead of buffering past the budget, and strict compilation must
// reject statically-unbounded queries up front.

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"gcx"
	"gcx/internal/xmark"
)

// TestJoinBudgetPartialStats: the join operator's build side counts
// against the budget; a breach returns ErrBufferBudget together with
// the partial Result, including the join counters accumulated so far.
func TestJoinBudgetPartialStats(t *testing.T) {
	q := gcx.MustCompile(`<out>{ for $p in /root/ps/p return
		for $b in /root/bs/b return if ($b/k = $p/k) then $b/v else () }</out>`)
	var doc strings.Builder
	doc.WriteString("<root><ps><p><k>a</k></p><p><k>b</k></p><p><k>c</k></p></ps><bs>")
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&doc, "<b><k>a</k><v>v%d</v></b>", i)
	}
	doc.WriteString("</bs></root>")
	res, err := q.Execute(strings.NewReader(doc.String()), io.Discard,
		gcx.Options{MaxBufferedNodes: 20})
	if !errors.Is(err, gcx.ErrBufferBudget) {
		t.Fatalf("want ErrBufferBudget, got %v", err)
	}
	if res == nil {
		t.Fatal("budget breach returned no partial Result")
	}
	if res.JoinProbeTuples != 3 {
		t.Errorf("partial JoinProbeTuples = %d, want 3 (probe section precedes the breach)", res.JoinProbeTuples)
	}
	if res.PeakBufferedNodes == 0 || res.PeakBufferedNodes > 21 {
		t.Errorf("peak %d not within one node of the budget", res.PeakBufferedNodes)
	}
}

func budgetInput(t *testing.T) string {
	t.Helper()
	input, _, err := xmark.GenerateString(xmark.Config{TargetBytes: 64 << 10, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return input
}

func TestBudgetTripStreaming(t *testing.T) {
	input := budgetInput(t)
	q := gcx.MustCompile(xmark.Queries["Q1"].Text)

	res, err := q.Execute(strings.NewReader(input), io.Discard, gcx.Options{MaxBufferedNodes: 4})
	if !errors.Is(err, gcx.ErrBufferBudget) {
		t.Fatalf("want ErrBufferBudget, got %v", err)
	}
	if res == nil {
		t.Fatal("budget trip must still return the partial-run statistics")
	}
	if res.PeakBufferedNodes == 0 {
		t.Errorf("partial result carries no watermark: %+v", res)
	}

	// A budget above the static bound never trips.
	res, err = q.Execute(strings.NewReader(input), io.Discard, gcx.Options{MaxBufferedNodes: 1 << 20})
	if err != nil {
		t.Fatalf("generous budget tripped: %v", err)
	}
	if res.PeakBufferedNodes > 1<<20 {
		t.Errorf("peak %d above budget", res.PeakBufferedNodes)
	}
}

func TestBudgetTripProjectionOnly(t *testing.T) {
	// Projection-only never purges, so even Q1 overruns a small budget.
	input := budgetInput(t)
	q := gcx.MustCompile(xmark.Queries["Q1"].Text)
	_, err := q.Execute(strings.NewReader(input), io.Discard,
		gcx.Options{Engine: gcx.EngineProjectionOnly, MaxBufferedNodes: 32})
	if !errors.Is(err, gcx.ErrBufferBudget) {
		t.Fatalf("want ErrBufferBudget, got %v", err)
	}
}

func TestBudgetTripDOM(t *testing.T) {
	input := budgetInput(t)
	q := gcx.MustCompile(xmark.Queries["Q1"].Text)
	_, err := q.Execute(strings.NewReader(input), io.Discard,
		gcx.Options{Engine: gcx.EngineDOM, MaxBufferedNodes: 32})
	if !errors.Is(err, gcx.ErrBufferBudget) {
		t.Fatalf("want ErrBufferBudget, got %v", err)
	}
}

func TestBudgetTripSharded(t *testing.T) {
	input := budgetInput(t)
	q := gcx.MustCompile(xmark.Queries["Q1"].Text)
	if !q.Shardable() {
		t.Fatal("Q1 must be shardable")
	}
	_, err := q.Execute(strings.NewReader(input), io.Discard,
		gcx.Options{Shards: 4, MaxBufferedNodes: 4})
	if !errors.Is(err, gcx.ErrBufferBudget) {
		t.Fatalf("sharded run: want ErrBufferBudget, got %v", err)
	}

	// Per-worker budget: a budget that is generous per worker passes.
	res, err := q.Execute(strings.NewReader(input), io.Discard,
		gcx.Options{Shards: 4, MaxBufferedNodes: 1 << 20})
	if err != nil {
		t.Fatalf("generous sharded budget tripped: %v", err)
	}
	if res.ShardsUsed < 1 {
		t.Errorf("ShardsUsed = %d", res.ShardsUsed)
	}
}

func TestBudgetTripNDJSON(t *testing.T) {
	input, _, err := xmark.GenerateNDJSONString(xmark.Config{TargetBytes: 32 << 10, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	q := gcx.MustCompile(xmark.NDJSONQueries["J1"].Text)
	_, err = q.Execute(strings.NewReader(input), io.Discard,
		gcx.Options{Format: gcx.FormatNDJSON, MaxBufferedNodes: 2})
	if !errors.Is(err, gcx.ErrBufferBudget) {
		t.Fatalf("ndjson: want ErrBufferBudget, got %v", err)
	}
}

func TestStrictCompileRejectsUnbounded(t *testing.T) {
	// Q8 is the join: statically unbounded, rejected up front.
	_, err := gcx.CompileWithOptions(xmark.Queries["Q8"].Text,
		gcx.CompileOptions{StrictStreaming: true})
	if err == nil {
		t.Fatal("strict compile accepted the Q8 join")
	}
	if !strings.Contains(err.Error(), "strict streaming") || !strings.Contains(err.Error(), "join") {
		t.Errorf("rejection does not carry the analyzer's reason: %v", err)
	}

	// Bounded queries compile unchanged under strict mode.
	for _, id := range []string{"Q1", "Q17"} {
		if _, err := gcx.CompileWithOptions(xmark.Queries[id].Text,
			gcx.CompileOptions{StrictStreaming: true}); err != nil {
			t.Errorf("%s: strict compile rejected a bounded query: %v", id, err)
		}
	}
}
