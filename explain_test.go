package gcx_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"gcx"
	"gcx/internal/xmark"
)

// TestExplainGolden pins the legacy text form of Query.Explain for
// XMark Q1. Explain is generated from the structured ExplainReport
// (single source of truth); this golden keeps the rendered layout — and
// with it the skip/shard/streamability verdict strings other tools grep
// for — from drifting silently. Regenerate with
// UPDATE_GOLDEN=1 go test -run TestExplainGolden .
func TestExplainGolden(t *testing.T) {
	q, err := gcx.Compile(xmark.Queries["Q1"].Text)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	got := q.Explain()
	golden := filepath.Join("testdata", "explain_q1.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("Explain drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestExplainReportJSONRoundTrip: the report marshals, parses back, and
// still renders the identical text — so the JSON wire form (gcxd
// /explain, gcx -explain-json) carries everything the text form shows.
func TestExplainReportJSONRoundTrip(t *testing.T) {
	for _, id := range []string{"Q1", "Q8", "Q17", "Q6count"} {
		q, err := gcx.Compile(xmark.Queries[id].Text)
		if err != nil {
			t.Fatalf("%s: compile: %v", id, err)
		}
		rep := q.Report()
		raw, err := json.Marshal(rep)
		if err != nil {
			t.Fatalf("%s: marshal: %v", id, err)
		}
		var back gcx.ExplainReport
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", id, err)
		}
		if back.Text() != q.Explain() {
			t.Errorf("%s: text rendered from the JSON round trip differs from Explain", id)
		}
		if rep.Streamability == "" || rep.StreamabilityReason == "" {
			t.Errorf("%s: report misses streamability fields: %+v", id, rep)
		}
	}
}

// TestReportBoundPresence: bounded classes carry a bound, unbounded
// does not.
func TestReportBoundPresence(t *testing.T) {
	bounded := gcx.MustCompile(xmark.Queries["Q1"].Text).Report()
	if bounded.StaticBound == nil || bounded.StaticBound.Expr == "" {
		t.Errorf("Q1: missing static bound: %+v", bounded.StaticBound)
	}
	unbounded := gcx.MustCompile(xmark.Queries["Q8"].Text).Report()
	if unbounded.Streamability != "unbounded" || unbounded.StaticBound != nil {
		t.Errorf("Q8: want unbounded without bound, got %q %+v", unbounded.Streamability, unbounded.StaticBound)
	}
}
