package gcx_test

import (
	"strings"
	"testing"

	"gcx"
	"gcx/internal/xmark"
)

func TestPublicQuickstart(t *testing.T) {
	q, err := gcx.Compile(`<out>{ for $b in /bib/book return $b/title }</out>`)
	if err != nil {
		t.Fatal(err)
	}
	out, res, err := q.ExecuteString(
		`<bib><book><title>A</title></book><book><title>B</title></book></bib>`,
		gcx.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out != `<out><title>A</title><title>B</title></out>` {
		t.Fatalf("output = %q", out)
	}
	if res.PeakBufferedNodes == 0 || res.FinalBufferedNodes != 0 {
		t.Fatalf("stats off: %+v", res)
	}
	if res.Duration <= 0 {
		t.Fatal("duration not measured")
	}
}

func TestPublicRolesAndExplain(t *testing.T) {
	q := gcx.MustCompile(xmark.PaperQuery)
	roles := q.Roles()
	if len(roles) != 7 {
		t.Fatalf("paper example must have 7 roles, got %d", len(roles))
	}
	if roles[3].Name != "r4" || roles[3].Path != "/bib/*/price[1]" {
		t.Fatalf("r4 = %+v", roles[3])
	}
	if !strings.Contains(q.Explain(), "signOff($bib, r2)") {
		t.Fatal("Explain missing rewritten query")
	}
	if q.UsesAggregation() {
		t.Fatal("paper example does not use count()")
	}
}

func TestPublicEngineSelection(t *testing.T) {
	doc := xmark.BibDocument(xmark.Fig3cKinds())
	q := gcx.MustCompile(xmark.PaperQuery)

	var outs []string
	var peaks []int64
	for _, eng := range []gcx.Engine{gcx.EngineGCX, gcx.EngineProjectionOnly, gcx.EngineDOM} {
		out, res, err := q.ExecuteString(doc, gcx.Options{Engine: eng})
		if err != nil {
			t.Fatalf("engine %d: %v", eng, err)
		}
		outs = append(outs, out)
		peaks = append(peaks, res.PeakBufferedNodes)
	}
	if outs[0] != outs[1] || outs[1] != outs[2] {
		t.Fatalf("engines disagree: %v", outs)
	}
	// GCX buffers least; DOM buffers the whole document (41 nodes).
	if !(peaks[0] < peaks[1] || peaks[0] < peaks[2]) {
		t.Fatalf("GCX peak %d should undercut baselines %d/%d", peaks[0], peaks[1], peaks[2])
	}
	if peaks[2] != 41 {
		t.Fatalf("DOM peak = %d, want 41 (whole document)", peaks[2])
	}
}

func TestPublicSeriesRecording(t *testing.T) {
	q := gcx.MustCompile(xmark.PaperQuery)
	_, res, err := q.ExecuteString(xmark.BibDocument(xmark.Fig3cKinds()),
		gcx.Options{RecordEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 82 {
		t.Fatalf("series has %d points, want 82", len(res.Series))
	}
	// the paper's checkpoint: 23 nodes at </bib>
	if res.Series[81].Nodes != 23 {
		t.Fatalf("nodes at </bib> = %d, want 23", res.Series[81].Nodes)
	}
}

func TestPublicCompileErrors(t *testing.T) {
	if _, err := gcx.Compile(`for $x in`); err == nil {
		t.Fatal("syntax error not reported")
	}
	if _, err := gcx.Compile(`$unbound/name`); err == nil {
		t.Fatal("analysis error not reported")
	}
}

func TestPublicCountGate(t *testing.T) {
	q := gcx.MustCompile(`<n>{ count(/a/b) }</n>`)
	if !q.UsesAggregation() {
		t.Fatal("UsesAggregation")
	}
	if _, _, err := q.ExecuteString(`<a><b/></a>`, gcx.Options{}); err == nil {
		t.Fatal("count() must require opt-in")
	}
	out, _, err := q.ExecuteString(`<a><b/><b/></a>`, gcx.Options{EnableAggregation: true})
	if err != nil {
		t.Fatal(err)
	}
	if out != `<n>2</n>` {
		t.Fatalf("out = %q", out)
	}
}

func TestPublicSignOffModes(t *testing.T) {
	doc := xmark.BibDocument(xmark.Fig3cKinds())
	q := gcx.MustCompile(xmark.PaperQuery)
	_, dres, err := q.ExecuteString(doc, gcx.Options{SignOffMode: gcx.SignOffDeferred, RecordEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, eres, err := q.ExecuteString(doc, gcx.Options{SignOffMode: gcx.SignOffEager, RecordEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if dres.Series[81].Nodes != 23 || eres.Series[81].Nodes != 20 {
		t.Fatalf("mode timing wrong: deferred=%d eager=%d", dres.Series[81].Nodes, eres.Series[81].Nodes)
	}
}

// TestFirstWitnessAblation: disabling [1] pruning buffers more but
// never changes results.
func TestFirstWitnessAblation(t *testing.T) {
	doc := `<bib><book><price>1</price><price>2</price><price>3</price></book></bib>`
	const query = `<r>{ for $x in /bib/* return if (exists $x/price) then $x/title else () }</r>`
	pruned := gcx.MustCompile(query)
	unpruned, err := gcx.CompileWithOptions(query, gcx.CompileOptions{DisableFirstWitness: true})
	if err != nil {
		t.Fatal(err)
	}
	out1, res1, err := pruned.ExecuteString(doc, gcx.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out2, res2, err := unpruned.ExecuteString(doc, gcx.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out1 != out2 {
		t.Fatalf("ablation changed output: %q vs %q", out1, out2)
	}
	if res2.PeakBufferedNodes <= res1.PeakBufferedNodes {
		t.Fatalf("unpruned should buffer more: %d vs %d",
			res2.PeakBufferedNodes, res1.PeakBufferedNodes)
	}
	// pruned: only the first price is buffered per book
	roles := pruned.Roles()
	found := false
	for _, r := range roles {
		if strings.Contains(r.Path, "[1]") {
			found = true
		}
	}
	if !found {
		t.Fatal("pruned plan lost its [1] role")
	}
	for _, r := range unpruned.Roles() {
		if strings.Contains(r.Path, "[1]") {
			t.Fatal("unpruned plan still has a [1] role")
		}
	}
}

// TestCoarseGranularityAblation: subtree-granular roles change memory,
// never results.
func TestCoarseGranularityAblation(t *testing.T) {
	doc, _, err := xmark.GenerateString(xmark.Config{TargetBytes: 128 << 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, qid := range []string{"Q1", "Q8", "Q20"} {
		fine := gcx.MustCompile(xmark.Queries[qid].Text)
		coarse, err := gcx.CompileWithOptions(xmark.Queries[qid].Text,
			gcx.CompileOptions{CoarseGranularity: true})
		if err != nil {
			t.Fatal(err)
		}
		out1, res1, err := fine.ExecuteString(doc, gcx.Options{})
		if err != nil {
			t.Fatal(err)
		}
		out2, res2, err := coarse.ExecuteString(doc, gcx.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if out1 != out2 {
			t.Fatalf("%s: granularity changed output", qid)
		}
		if res2.PeakBufferedBytes < res1.PeakBufferedBytes {
			t.Fatalf("%s: coarse should not buffer less (%d vs %d bytes)",
				qid, res2.PeakBufferedBytes, res1.PeakBufferedBytes)
		}
		if res2.FinalBufferedNodes != 0 {
			t.Fatalf("%s: coarse mode left %d nodes", qid, res2.FinalBufferedNodes)
		}
	}
}
