package gcx_test

// FuzzStreamBound fuzzes the streamability contract itself: for random
// well-formed queries and random documents, a statically-Unbounded
// verdict must make strict compilation reject, and a bounded verdict
// must make the runtime watermark respect the static node budget. The
// generator is biased toward single-root-loop pipelines so both sides
// of the contract are exercised.

import (
	"context"
	"io"
	"math/rand"
	"strings"
	"testing"

	"gcx"
	"gcx/internal/analysis"
	"gcx/internal/core"
	"gcx/internal/dom"
	"gcx/internal/xqgen"
)

func FuzzStreamBound(f *testing.F) {
	for i := int64(0); i < 8; i++ {
		f.Add(i, i*31+7)
	}
	f.Fuzz(func(t *testing.T, qseed, dseed int64) {
		opts := xqgen.DefaultOptions()
		opts.SingleRootLoop = true
		src := xqgen.Query(rand.New(rand.NewSource(qseed)), opts)
		doc := xqgen.Document(rand.New(rand.NewSource(dseed)))

		plan, err := core.CompileWithOptions(src, analysis.Options{})
		if err != nil {
			t.Fatalf("generated query does not compile: %v\n%s", err, src)
		}
		st := plan.Stream

		_, strictErr := gcx.CompileWithOptions(src, gcx.CompileOptions{StrictStreaming: true})
		if st.Class == analysis.Unbounded {
			if strictErr == nil {
				t.Fatalf("strict compile accepted a statically unbounded query (%s)\n%s", st.Reason, src)
			}
			return
		}
		if strictErr != nil {
			t.Fatalf("strict compile rejected a bounded query (%v)\n%s", strictErr, src)
		}

		// Measure the record term on the materialized document; a record
		// path that matches nothing contributes zero.
		var rec int64
		if st.Bound.RecordFactor > 0 {
			d, err := dom.Parse(strings.NewReader(doc))
			if err != nil {
				t.Fatalf("parse generated doc: %v", err)
			}
			for _, n := range dom.Select(d.Root, st.Bound.RecordPath) {
				if c := subtreeNodes(n); c > rec {
					rec = c
				}
			}
		}
		bound := st.Bound.Eval(rec)

		q, err := gcx.CompileWithOptions(src, gcx.CompileOptions{})
		if err != nil {
			t.Fatalf("compile: %v\n%s", err, src)
		}
		res, err := q.ExecuteContext(context.Background(), strings.NewReader(doc), io.Discard,
			gcx.Options{EnableAggregation: true})
		if err != nil {
			t.Fatalf("execute: %v\nquery: %s\ndoc: %s", err, src, doc)
		}
		if res.PeakBufferedNodes > bound {
			t.Errorf("peak %d exceeds static bound %d (%s, class %s, record %d)\nquery: %s\ndoc: %s",
				res.PeakBufferedNodes, bound, st.Bound, st.Class, rec, src, doc)
		}
	})
}
