// Package gcx is a streaming XQuery engine with dynamic buffer
// minimization, a Go reproduction of the GCX system (Koch, Scherzinger,
// Schmidt: "The GCX System: Dynamic Buffer Minimization in Streaming
// XQuery Evaluation", VLDB 2007).
//
// GCX evaluates a practical fragment of composition-free XQuery over
// XML streams in a single pass. At compile time it derives projection
// paths from the query — each defining a role, a token of future
// relevance — and inserts signOff statements at preemption points. At
// runtime, only nodes matched by a projection path are buffered; as
// sign-offs strip roles from buffered nodes, subtrees whose role count
// reaches zero are purged immediately (active garbage collection),
// keeping memory proportional to what the remaining evaluation can
// still touch rather than to the input size.
//
// Quick start:
//
//	q, err := gcx.Compile(`<out>{ for $b in /bib/book return $b/title }</out>`)
//	if err != nil { ... }
//	res, err := q.Execute(inputReader, os.Stdout, gcx.Options{})
//	fmt.Println(res.PeakBufferedNodes) // high watermark of the buffer
//
// Besides the GCX engine itself the package bundles two reference
// engines used by the paper's evaluation — full buffering (EngineDOM)
// and static projection without garbage collection
// (EngineProjectionOnly) — selectable via Options.Engine, so the
// paper's comparisons can be reproduced with a one-line change.
package gcx

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"
	"unsafe"

	"gcx/internal/analysis"
	"gcx/internal/buffer"
	"gcx/internal/core"
	"gcx/internal/engine"
	"gcx/internal/obs"
	"gcx/internal/shard"
)

// ErrBufferBudget is the sentinel returned (wrapped, with the concrete
// numbers) when a run's buffer population crosses
// Options.MaxBufferedNodes: the engine degrades gracefully within one
// token of the breach instead of buffering without bound. Match with
// errors.Is. For the sequential streaming engines the partial Result is
// returned alongside the error.
var ErrBufferBudget = buffer.ErrBudget

// Engine selects the buffering discipline of Execute.
type Engine int

const (
	// EngineGCX is the paper's engine: stream projection plus active
	// garbage collection (default).
	EngineGCX Engine = iota
	// EngineProjectionOnly applies static projection but never purges —
	// the static-analysis-only class of systems in the paper's Fig. 5.
	EngineProjectionOnly
	// EngineDOM buffers the complete input before evaluating — the
	// conventional in-memory class (Galax, Saxon, QizX in the paper).
	EngineDOM
)

// Format selects the input syntax — and with it the output syntax: XML
// input serializes results as XML, JSON/NDJSON input as JSON lines
// (DESIGN.md §8). The engine itself is format-neutral; the format only
// picks which front end feeds it events.
type Format int

const (
	// FormatAuto sniffs the stream's first non-whitespace byte: '<'
	// means XML, anything else JSON. Auto never resolves to NDJSON —
	// line framing (and with it NDJSON sharding) is an explicit promise
	// the caller must make via FormatNDJSON.
	FormatAuto Format = iota
	// FormatXML is the paper's XML front end.
	FormatXML
	// FormatJSON is a stream of whitespace-separated JSON values: a
	// single document, or concatenated/pretty-printed values. Object
	// keys become element names, arrays repeated siblings, so the
	// query's paths apply unchanged under the virtual /root/record
	// document shape.
	FormatJSON
	// FormatNDJSON is newline-delimited JSON — exactly one record per
	// line, the boundary record-aligned stream sharding cuts at.
	FormatNDJSON
)

func (f Format) String() string { return f.core().String() }

// core maps the public constant to the internal one.
func (f Format) core() core.Format {
	switch f {
	case FormatXML:
		return core.FormatXML
	case FormatJSON:
		return core.FormatJSON
	case FormatNDJSON:
		return core.FormatNDJSON
	default:
		return core.FormatAuto
	}
}

// ParseFormat resolves a CLI/URL format name: auto, xml, json, ndjson
// (aliases jsonl, json-lines). The empty string means FormatAuto.
func ParseFormat(s string) (Format, error) {
	f, err := core.ParseFormat(s)
	if err != nil {
		return FormatAuto, err
	}
	return fromCore(f), nil
}

// DetectPathFormat guesses a format from a file name's extension
// (.xml, .json, .ndjson, .jsonl), returning FormatAuto when the
// extension is not telling.
func DetectPathFormat(path string) Format {
	return fromCore(core.DetectPathFormat(path))
}

func fromCore(f core.Format) Format {
	switch f {
	case core.FormatXML:
		return FormatXML
	case core.FormatJSON:
		return FormatJSON
	case core.FormatNDJSON:
		return FormatNDJSON
	default:
		return FormatAuto
	}
}

// SignOffMode selects when a signOff on a still-streaming subtree takes
// effect; see DESIGN.md §3.
type SignOffMode int

const (
	// SignOffDeferred queues the removal until the subtree's close tag
	// arrives (default; matches the paper's published buffer plots).
	SignOffDeferred SignOffMode = iota
	// SignOffEager forces the input forward to the subtree's end and
	// removes immediately.
	SignOffEager
)

// Options tunes query execution.
// MaxShards is the upper bound on Options.Shards: each shard is a full
// engine instance with its own buffer manager, so larger requests are
// clamped rather than translated into unbounded goroutines.
const MaxShards = shard.MaxWorkers

type Options struct {
	Engine      Engine
	SignOffMode SignOffMode
	// Format selects the input (and with it the output) syntax; the
	// zero value FormatAuto sniffs the stream's first non-whitespace
	// byte. Sharded execution (Shards > 1) partitions XML input at the
	// compiled partition path and FormatNDJSON input at newlines;
	// FormatJSON input makes no line-framing promise and always runs
	// sequentially.
	Format Format
	// EnableAggregation opts into the aggregation extension — count(),
	// sum(), min(), max(), avg() in output position (the paper's
	// fragment excludes aggregation).
	EnableAggregation bool
	// DisableSubtreeSkip turns off projection-guided byte-level subtree
	// skipping (DESIGN.md §7), forcing the streaming engines to
	// tokenize every input byte. The query output is byte-identical
	// either way; the switch exists for A/B measurements and parity
	// tests. Runs with RecordEvery set disable skipping automatically,
	// so the recorded per-token buffer plots keep the paper's x-axis.
	DisableSubtreeSkip bool
	// RecordEvery samples (tokens processed → nodes buffered) every N
	// tokens for buffer plots like the paper's Figures 3 and 4;
	// 0 disables recording.
	RecordEvery int64
	// Shards requests sharded data-parallel execution (DESIGN.md §6):
	// the input is partitioned at the query's outermost for-loop path
	// and evaluated by Shards concurrent engine instances, with outputs
	// merged in input order so the result is byte-identical to the
	// sequential run. 0 or 1 keeps the sequential engine; counts above
	// MaxShards are clamped. Detected joins shard too: the probe side is
	// partitioned and the build section broadcast to every worker.
	// Queries that are not partitionable (whole-input aggregation,
	// correlated loops beyond the join shape — see Query.Shardable) and
	// runs with RecordEvery set fall back to sequential execution
	// transparently.
	Shards int
	// MaxBufferedNodes, when positive, is the run's node budget
	// (DESIGN.md §9): the first buffered node pushing the population
	// past it aborts the run within one token with an error wrapping
	// ErrBufferBudget — graceful degradation instead of unbounded
	// memory. Sequential streaming runs return the partial Result
	// alongside the error. Sharded runs apply the budget per worker
	// (each shard is an independent engine instance), so the run's
	// total is bounded by Shards×MaxBufferedNodes. Zero means
	// unlimited. Query.Report says, per query, whether a budget can
	// statically be guaranteed to suffice — see ExplainReport.
	MaxBufferedNodes int64
	// DisableJoin turns off the streaming hash join operator
	// (DESIGN.md §10), evaluating detected two-variable equality joins
	// with nested loops instead. The query output is byte-identical
	// either way; the switch exists for A/B measurements and
	// differential tests.
	DisableJoin bool
	// EnableTrace records per-phase wall time (DESIGN.md §11) into
	// Result.Trace: compile, setup, stream, join_build/join_probe,
	// split/merge (sharded runs) and eval. For sequential runs the
	// phases after compile sum to Result.Duration exactly; sharded
	// runs sum worker phases across workers, so their total can exceed
	// the wall time. Off by default — the stamps cost two monotonic
	// clock reads per evaluator pull when on.
	EnableTrace bool
}

// TracePhase is one phase of an execution trace (Options.EnableTrace):
// a stage name and the cumulative wall time spent in it.
type TracePhase struct {
	// Phase is the stage: compile, setup, stream, join_build,
	// join_probe, split, merge or eval.
	Phase string `json:"phase"`
	// Nanos is the cumulative wall time in nanoseconds.
	Nanos int64 `json:"nanos"`
}

// Duration returns the phase time as a time.Duration.
func (p TracePhase) Duration() time.Duration { return time.Duration(p.Nanos) }

// Role describes one projection path derived by static analysis.
type Role struct {
	// Name is the paper-style role name: r1, r2, …
	Name string
	// Path is the absolute projection path (e.g. "/bib/*/price[1]").
	Path string
	// Kind classifies the role: root, binding, output, exists, operand
	// or count.
	Kind string
	// Provenance points at the query fragment that created the role.
	Provenance string
}

// SeriesPoint is one sample of the buffer plot.
type SeriesPoint struct {
	// Token is the number of input tokens processed (x-axis of the
	// paper's plots).
	Token int64
	// Nodes is the number of buffered XML nodes (y-axis).
	Nodes int64
	// Bytes estimates the buffered size at the sample.
	Bytes int64
}

// Result reports the statistics of one execution.
type Result struct {
	// TokensProcessed is the number of input tokens delivered to the
	// engine. With subtree skipping active (the default, DESIGN.md §7)
	// tokens inside skipped subtrees are not produced and therefore not
	// counted — see BytesSkipped/TagsSkipped for what was
	// fast-forwarded. Runs with DisableSubtreeSkip or RecordEvery set
	// count every token of the document.
	TokensProcessed int64
	// PeakBufferedNodes is the buffer high watermark in nodes.
	PeakBufferedNodes int64
	// PeakBufferedBytes estimates the memory high watermark.
	PeakBufferedBytes int64
	// FinalBufferedNodes is the buffer population after evaluation.
	FinalBufferedNodes int64
	// TotalAppended and TotalPurged count buffer churn over the run.
	TotalAppended int64
	TotalPurged   int64
	// OutputBytes is the size of the serialized result.
	OutputBytes int64
	// BytesSkipped is the number of input bytes the engine
	// fast-forwarded past at byte level without tokenizing, because the
	// compiled path automaton proved no projection path could observe
	// them (DESIGN.md §7). Zero when skipping is disabled or the query
	// observes the whole document.
	BytesSkipped int64
	// TagsSkipped counts element tags inside skipped subtrees — a lower
	// bound on the tokens the run did not have to produce (text runs in
	// skipped subtrees are not counted).
	TagsSkipped int64
	// SubtreesSkipped counts byte-level fast-forwards taken.
	SubtreesSkipped int64
	// JoinProbeTuples, JoinBuildTuples and JoinMatches report the
	// streaming hash join operator's work (DESIGN.md §10): probe-side
	// bindings captured, build-side tuples materialized into the hash
	// table, and matched payload emissions. All zero when the query has
	// no detected join or Options.DisableJoin is set.
	JoinProbeTuples int64
	JoinBuildTuples int64
	JoinMatches     int64
	// Duration is the wall-clock execution time.
	Duration time.Duration
	// Series is the recorded buffer plot (empty unless
	// Options.RecordEvery was set).
	Series []SeriesPoint
	// ShardsUsed is the number of parallel engine instances the run
	// used: 1 for the sequential path (including fallbacks from
	// Options.Shards > 1), Options.Shards when sharding was applied.
	// Under sharding the buffer watermarks are sums of per-worker
	// peaks, a documented upper bound (DESIGN.md §6).
	ShardsUsed int
	// Chunks is the number of input partitions of a sharded run
	// (0 for sequential runs).
	Chunks int
	// Trace is the per-phase wall-time breakdown of the run, starting
	// with the query's compile time; nil unless Options.EnableTrace was
	// set.
	Trace []TracePhase
}

// Query is a compiled query, reusable across executions. A Query is
// immutable after compilation and safe for concurrent use: any number
// of goroutines may call Execute/ExecuteContext on the same Query over
// distinct input streams simultaneously — all per-run state (tokenizer,
// buffer manager, evaluator) is created per call.
type Query struct {
	plan *analysis.Plan
	// shardInfo is the compile-time partitioning recipe; nil when the
	// query must run sequentially, with shardReason saying why.
	shardInfo   *analysis.ShardInfo
	shardReason string
	// compileNanos is the wall time Compile spent on this query,
	// reported as the trace's compile phase.
	compileNanos int64
}

// CompileOptions exposes the static-analysis ablation switches. The
// zero value reproduces the paper's analysis.
type CompileOptions struct {
	// DisableFirstWitness turns off the [1] first-witness pruning of
	// existence-condition projection paths (the paper's r4), buffering
	// every witness candidate. For ablation measurements only.
	DisableFirstWitness bool
	// CoarseGranularity switches use roles to subtree granularity
	// (whole element subtrees instead of node-precise projection) —
	// the relevance model of simpler streaming systems. For ablation
	// measurements only.
	CoarseGranularity bool
	// StrictStreaming rejects queries the static analyzer classifies
	// as Unbounded (joins, whole-input aggregation, absolute-path
	// outputs — DESIGN.md §9) at compile time, with the analyzer's
	// reason. Use it where a runtime node budget will be enforced:
	// an Unbounded query would only ever trip the budget on real
	// inputs, so strict mode fails fast instead.
	StrictStreaming bool
}

// Compile parses and statically analyzes a query: normalization to the
// single-step core, projection-path/role derivation and signOff
// insertion.
func Compile(src string) (*Query, error) {
	return CompileWithOptions(src, CompileOptions{})
}

// CompileWithOptions compiles with explicit analysis switches.
func CompileWithOptions(src string, opts CompileOptions) (*Query, error) {
	start := time.Now()
	plan, err := core.CompileWithOptions(src, analysis.Options{
		DisableFirstWitness: opts.DisableFirstWitness,
		CoarseGranularity:   opts.CoarseGranularity,
	})
	if err != nil {
		return nil, err
	}
	if opts.StrictStreaming && plan.Stream.Class == analysis.Unbounded {
		return nil, fmt.Errorf("gcx: strict streaming rejects statically unbounded query: %s", plan.Stream.Reason)
	}
	q := &Query{plan: plan}
	q.shardInfo, q.shardReason = analysis.Shardable(plan)
	q.compileNanos = int64(time.Since(start))
	return q, nil
}

// MustCompile is Compile for static queries; it panics on error.
func MustCompile(src string) *Query {
	q, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return q
}

// Roles returns the projection paths derived from the query, in
// derivation order (the paper's numbering r1, r2, …).
func (q *Query) Roles() []Role {
	roles := make([]Role, len(q.plan.Roles))
	for i, r := range q.plan.Roles {
		roles[i] = Role{
			Name:       r.Name(),
			Path:       r.Path.String(),
			Kind:       r.Kind.String(),
			Provenance: r.Provenance,
		}
	}
	return roles
}

// Explain renders the analyzer's verdicts as text: the role browser and
// the rewritten query with its signOff statements — the textual
// counterpart of the demo's Fig. 3(a) visualization — plus the
// streamability, static-bound, skipping and sharding lines. It is
// generated from the structured Report (ExplainReport.Text), so the two
// forms cannot drift.
func (q *Query) Explain() string { return q.Report().Text() }

// Shardable reports whether the query can run sharded (DESIGN.md §6):
// partitionable on its outermost for-loop path, with no state shared
// across iterations. Non-shardable queries silently run sequentially
// regardless of Options.Shards.
func (q *Query) Shardable() bool { return q.shardInfo != nil }

// UsesAggregation reports whether the query needs the aggregation
// extension (count/sum/min/max/avg).
func (q *Query) UsesAggregation() bool { return q.plan.UsesAggregation }

// Execute evaluates the query over input, writing the serialized result
// to output. It returns an error for Options carrying an unknown Engine
// or SignOffMode value rather than guessing a discipline.
func (q *Query) Execute(input io.Reader, output io.Writer, opts Options) (*Result, error) {
	return q.ExecuteContext(context.Background(), input, output, opts)
}

// ExecuteContext evaluates the query over input under a cancellation
// context, writing the serialized result to output. Cancellation is
// observed at every token-pull boundary, so the run aborts within one
// token of ctx being cancelled and returns ctx.Err() without writing
// further output.
func (q *Query) ExecuteContext(ctx context.Context, input io.Reader, output io.Writer, opts Options) (*Result, error) {
	execOpts, err := q.execOptions(opts)
	if err != nil {
		return nil, err
	}
	if shards := q.shardCount(opts); shards > 1 {
		sres, err := shard.Execute(ctx, q.shardInfo, input, output, shard.Config{
			Workers: shards,
			Exec:    execOpts,
		})
		if err != nil {
			return nil, err
		}
		return q.shardResult(sres, shards, opts), nil
	}
	res, err := core.ExecuteContext(ctx, q.plan, input, output, execOpts)
	if err != nil && res == nil {
		return nil, err
	}
	// A node-budget breach (err wrapping ErrBufferBudget) still carries
	// the partial statistics; both are returned.
	return q.result(res, opts), err
}

// ExecuteBytes evaluates the query over an in-memory document. See
// ExecuteBytesContext.
func (q *Query) ExecuteBytes(data []byte, output io.Writer, opts Options) (*Result, error) {
	return q.ExecuteBytesContext(context.Background(), data, output, opts)
}

// ExecuteBytesContext evaluates the query over an in-memory document
// under a cancellation context, writing the serialized result to
// output. This is the zero-copy fast path (DESIGN.md §12): the
// tokenizer scans data in place with whole-window vectorized scans and
// text tokens borrow subslices of data instead of allocating copies.
// The aliasing contract is the caller's side of that bargain: data must
// not be mutated until the call returns. Sharded runs split data with
// the same zero-copy scan and hand workers subslices where the format
// allows.
func (q *Query) ExecuteBytesContext(ctx context.Context, data []byte, output io.Writer, opts Options) (*Result, error) {
	execOpts, err := q.execOptions(opts)
	if err != nil {
		return nil, err
	}
	if shards := q.shardCount(opts); shards > 1 {
		sres, err := shard.ExecuteBytes(ctx, q.shardInfo, data, output, shard.Config{
			Workers: shards,
			Exec:    execOpts,
		})
		if err != nil {
			return nil, err
		}
		return q.shardResult(sres, shards, opts), nil
	}
	res, err := core.ExecuteBytesContext(ctx, q.plan, data, output, execOpts)
	if err != nil && res == nil {
		return nil, err
	}
	return q.result(res, opts), err
}

// execOptions maps the public Options onto the internal engine options,
// rejecting unknown enum values.
func (q *Query) execOptions(opts Options) (core.ExecOptions, error) {
	execOpts := core.ExecOptions{
		EnableAggregation: opts.EnableAggregation,
		DisableSkip:       opts.DisableSubtreeSkip,
		RecordEvery:       opts.RecordEvery,
		Format:            opts.Format.core(),
		MaxBufferedNodes:  opts.MaxBufferedNodes,
		DisableJoin:       opts.DisableJoin,
		Trace:             opts.EnableTrace,
	}
	switch opts.Engine {
	case EngineGCX:
		execOpts.Engine = core.GCX
	case EngineProjectionOnly:
		execOpts.Engine = core.ProjectionOnly
	case EngineDOM:
		execOpts.Engine = core.DOM
	default:
		return execOpts, fmt.Errorf("gcx: unknown engine %d (want EngineGCX, EngineProjectionOnly or EngineDOM)", opts.Engine)
	}
	switch opts.SignOffMode {
	case SignOffDeferred:
		// engine.Deferred is the zero value.
	case SignOffEager:
		execOpts.SignOffMode = engine.Eager
	default:
		return execOpts, fmt.Errorf("gcx: unknown sign-off mode %d (want SignOffDeferred or SignOffEager)", opts.SignOffMode)
	}
	if opts.Shards < 0 {
		return execOpts, fmt.Errorf("gcx: negative shard count %d", opts.Shards)
	}
	return execOpts, nil
}

// shardCount resolves how many workers a run should use: 0 for the
// sequential path (non-shardable query, ineligible format, recording
// runs or Shards ≤ 1), the clamped worker count otherwise.
func (q *Query) shardCount(opts Options) int {
	if opts.Shards > 1 && q.shardInfo != nil && opts.RecordEvery == 0 && formatShardable(opts.Format, q.shardInfo) {
		if opts.Shards > MaxShards {
			return MaxShards
		}
		return opts.Shards
	}
	return 0
}

// result converts a sequential run's internal result to the public one.
func (q *Query) result(res *core.ExecResult, opts Options) *Result {
	out := &Result{
		TokensProcessed:    res.TokensProcessed,
		PeakBufferedNodes:  res.PeakBufferedNodes,
		PeakBufferedBytes:  res.PeakBufferedBytes,
		FinalBufferedNodes: res.FinalBufferedNodes,
		TotalAppended:      res.TotalAppended,
		TotalPurged:        res.TotalPurged,
		OutputBytes:        res.OutputBytes,
		BytesSkipped:       res.BytesSkipped,
		TagsSkipped:        res.TagsSkipped,
		SubtreesSkipped:    res.SubtreesSkipped,
		JoinProbeTuples:    res.JoinProbeTuples,
		JoinBuildTuples:    res.JoinBuildTuples,
		JoinMatches:        res.JoinMatches,
		Duration:           res.Duration,
		ShardsUsed:         1,
		Trace:              q.trace(opts, res.Phases),
	}
	for _, p := range res.Series {
		out.Series = append(out.Series, SeriesPoint{Token: p.Token, Nodes: p.Nodes, Bytes: p.Bytes})
	}
	return out
}

// shardResult converts a sharded run's internal result to the public
// one.
func (q *Query) shardResult(sres *shard.Result, shards int, opts Options) *Result {
	return &Result{
		TokensProcessed:    sres.TokensProcessed,
		PeakBufferedNodes:  sres.PeakBufferedNodes,
		PeakBufferedBytes:  sres.PeakBufferedBytes,
		FinalBufferedNodes: sres.FinalBufferedNodes,
		TotalAppended:      sres.TotalAppended,
		TotalPurged:        sres.TotalPurged,
		OutputBytes:        sres.OutputBytes,
		BytesSkipped:       sres.BytesSkipped,
		TagsSkipped:        sres.TagsSkipped,
		SubtreesSkipped:    sres.SubtreesSkipped,
		JoinProbeTuples:    sres.JoinProbeTuples,
		JoinBuildTuples:    sres.JoinBuildTuples,
		JoinMatches:        sres.JoinMatches,
		Duration:           sres.Duration,
		ShardsUsed:         shards,
		Chunks:             sres.Chunks,
		Trace:              q.trace(opts, sres.Phases),
	}
}

// trace converts a run's internal phase times into the public Result
// form, prefixed with the query's compile time; nil unless tracing was
// requested.
func (q *Query) trace(opts Options, phases []obs.PhaseTime) []TracePhase {
	if !opts.EnableTrace {
		return nil
	}
	out := make([]TracePhase, 0, len(phases)+1)
	out = append(out, TracePhase{Phase: obs.PhaseCompile.String(), Nanos: q.compileNanos})
	for _, p := range phases {
		out = append(out, TracePhase{Phase: p.Phase, Nanos: p.Nanos})
	}
	return out
}

// formatShardable reports whether sharded execution is available for
// the requested input format. XML (and Auto, which the splitter treats
// as XML) partitions at the compiled partition path; NDJSON partitions
// at newlines when the query is NDJSON-eligible (wrapperless, cut at or
// below /root/record — analysis.NDJSONShardable); plain JSON makes no
// line-framing promise and always runs sequentially.
func formatShardable(f Format, info *analysis.ShardInfo) bool {
	switch f {
	case FormatNDJSON:
		return analysis.NDJSONShardable(info) == ""
	case FormatJSON:
		return false
	default:
		return true
	}
}

// ExecuteString is a convenience wrapper evaluating over a string input
// and returning the output as a string.
func (q *Query) ExecuteString(input string, opts Options) (string, *Result, error) {
	return q.ExecuteStringContext(context.Background(), input, opts)
}

// ExecuteStringContext is ExecuteString under a cancellation context,
// with the same within-one-token abort guarantee as ExecuteContext. It
// runs on the zero-copy byte path: strings are immutable, so viewing
// the input's bytes in place satisfies ExecuteBytesContext's aliasing
// contract for free.
func (q *Query) ExecuteStringContext(ctx context.Context, input string, opts Options) (string, *Result, error) {
	var out strings.Builder
	data := unsafe.Slice(unsafe.StringData(input), len(input))
	res, err := q.ExecuteBytesContext(ctx, data, &out, opts)
	if err != nil {
		return "", nil, err
	}
	return out.String(), res, nil
}
