package gcx_test

import (
	"fmt"
	"log"
	"strings"

	"gcx"
)

// Example demonstrates the basic compile-and-execute flow.
func Example() {
	q, err := gcx.Compile(`<titles>{ for $b in /bib/book return $b/title }</titles>`)
	if err != nil {
		log.Fatal(err)
	}
	out, res, err := q.ExecuteString(
		`<bib><book><title>Data on the Web</title></book></bib>`, gcx.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
	fmt.Println("buffer left:", res.FinalBufferedNodes)
	// Output:
	// <titles><title>Data on the Web</title></titles>
	// buffer left: 0
}

// ExampleQuery_Roles shows the projection paths the static analysis
// derives — the paper's role browser.
func ExampleQuery_Roles() {
	q := gcx.MustCompile(`<r>{ for $b in /bib/book return $b/title }</r>`)
	for _, role := range q.Roles() {
		fmt.Printf("%s: %s\n", role.Name, role.Path)
	}
	// Output:
	// r1: /
	// r2: /bib
	// r3: /bib/book
	// r4: /bib/book/title/descendant-or-self::node()
}

// ExampleQuery_Execute_engines compares the buffering disciplines of
// the paper's Figure 5 on one document.
func ExampleQuery_Execute_engines() {
	q := gcx.MustCompile(`<out>{ for $v in /l/v return $v/text() }</out>`)
	doc := `<l>` + strings.Repeat(`<v>x</v>`, 100) + `</l>`

	_, gcxRes, _ := q.ExecuteString(doc, gcx.Options{Engine: gcx.EngineGCX})
	_, domRes, _ := q.ExecuteString(doc, gcx.Options{Engine: gcx.EngineDOM})
	fmt.Println("GCX peak nodes:", gcxRes.PeakBufferedNodes)
	fmt.Println("DOM peak nodes:", domRes.PeakBufferedNodes)
	// Output:
	// GCX peak nodes: 3
	// DOM peak nodes: 201
}

// ExampleQuery_Execute_bufferPlot records the per-token buffer series
// behind the paper's Figures 3 and 4.
func ExampleQuery_Execute_bufferPlot() {
	q := gcx.MustCompile(`<out>{ for $v in /l/v return $v }</out>`)
	_, res, _ := q.ExecuteString(`<l><v>a</v><v>b</v></l>`, gcx.Options{RecordEvery: 1})
	for _, p := range res.Series {
		fmt.Printf("token %d: %d nodes\n", p.Token, p.Nodes)
	}
	// The first <v> is purged as soon as its iteration's sign-offs run,
	// so the buffer stays flat at 3 nodes instead of accumulating.
	// Output:
	// token 1: 1 nodes
	// token 2: 2 nodes
	// token 3: 3 nodes
	// token 4: 3 nodes
	// token 5: 3 nodes
	// token 6: 3 nodes
	// token 7: 3 nodes
	// token 8: 2 nodes
}
