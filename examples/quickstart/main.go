// Quickstart: compile a query, run it over a document, inspect the
// buffer statistics.
package main

import (
	"fmt"
	"log"

	"gcx"
)

const doc = `<bib>
  <book year="1994"><title>TCP/IP Illustrated</title><price>65.95</price></book>
  <book year="2000"><title>Data on the Web</title><price>39.95</price></book>
  <article><title>A Relational Model</title></article>
</bib>`

const query = `<cheap>{
  for $b in /bib/book return
    if ($b/price <= 40) then $b/title else ()
}</cheap>`

func main() {
	q, err := gcx.Compile(query)
	if err != nil {
		log.Fatal(err)
	}

	out, res, err := q.ExecuteString(doc, gcx.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("result:", out)
	fmt.Printf("tokens processed:   %d\n", res.TokensProcessed)
	fmt.Printf("peak buffered:      %d nodes (~%d bytes)\n", res.PeakBufferedNodes, res.PeakBufferedBytes)
	fmt.Printf("left in buffer:     %d nodes\n", res.FinalBufferedNodes)
	fmt.Printf("evaluation time:    %s\n", res.Duration)

	// The same query through the full-buffering baseline keeps the
	// whole document in memory:
	_, domRes, err := q.ExecuteString(doc, gcx.Options{Engine: gcx.EngineDOM})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull-buffering baseline peak: %d nodes (GCX: %d)\n",
		domRes.PeakBufferedNodes, res.PeakBufferedNodes)
}
