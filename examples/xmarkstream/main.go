// xmarkstream demonstrates the streaming sweet spot (paper Fig. 4(a)
// and the Q1/Q6/Q13/Q20 rows of Fig. 5): on generated XMark-like
// documents, GCX answers path queries with a constant-size buffer while
// the full-buffering baseline holds the entire document.
package main

import (
	"fmt"
	"log"

	"gcx"
	"gcx/internal/xmark"
)

func main() {
	const target = 2 << 20
	doc, st, err := xmark.GenerateString(xmark.Config{TargetBytes: target, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated XMark-like document: %d bytes, %d persons, %d items\n\n",
		st.Bytes, st.Persons, st.Items)

	for _, id := range []string{"Q1", "Q6", "Q13", "Q20"} {
		entry := xmark.Queries[id]
		q, err := gcx.Compile(entry.Text)
		if err != nil {
			log.Fatal(err)
		}
		_, gcxRes, err := q.ExecuteString(doc, gcx.Options{})
		if err != nil {
			log.Fatal(err)
		}
		_, domRes, err := q.ExecuteString(doc, gcx.Options{Engine: gcx.EngineDOM})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s %-55s\n", id, entry.Description)
		fmt.Printf("     GCX: peak %6d nodes (%8d B) in %8s | DOM baseline: %7d nodes (%8d B) in %8s\n",
			gcxRes.PeakBufferedNodes, gcxRes.PeakBufferedBytes, gcxRes.Duration.Round(1000),
			domRes.PeakBufferedNodes, domRes.PeakBufferedBytes, domRes.Duration.Round(1000))
		fmt.Printf("     memory ratio: %.0fx\n\n",
			float64(domRes.PeakBufferedBytes)/float64(gcxRes.PeakBufferedBytes))
	}

	fmt.Println("All four queries run in near-constant memory under GCX regardless")
	fmt.Println("of document size — the Fig. 5 pattern (1.2MB flat for GCX vs.")
	fmt.Println("hundreds of MB for the in-memory engines).")
}
