// xmarkjoin reproduces the paper's Figure 4(b): the value-based join
// XMark Q8 is inherently blocking, so the buffer grows through three
// characteristic phases — the diagonal (people section loads), the
// plane (open_auctions contributes nothing), and the final rise
// (closed_auctions join partners arrive).
package main

import (
	"fmt"
	"log"

	"gcx"
	"gcx/internal/xmark"
)

func main() {
	const target = 2 << 20
	doc, st, err := xmark.GenerateString(xmark.Config{TargetBytes: target, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("document: %d bytes, %d persons, %d closed auctions\n\n",
		st.Bytes, st.Persons, st.ClosedAuctions)

	q, err := gcx.Compile(xmark.Queries["Q8"].Text)
	if err != nil {
		log.Fatal(err)
	}
	_, res, err := q.ExecuteString(doc, gcx.Options{RecordEvery: 500})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("buffer growth over the stream (Fig. 4(b)):")
	step := len(res.Series) / 24
	if step == 0 {
		step = 1
	}
	peak := res.PeakBufferedNodes
	for i := 0; i < len(res.Series); i += step {
		p := res.Series[i]
		bar := int(float64(p.Nodes) / float64(peak) * 58)
		fmt.Printf("%9d tokens |%-58s| %6d nodes\n", p.Token, repeat('█', bar), p.Nodes)
	}
	fmt.Printf("\npeak: %d nodes (~%.1f KB); final: %d — join partners are parked\n",
		res.PeakBufferedNodes, float64(res.PeakBufferedBytes)/1024, res.FinalBufferedNodes)
	fmt.Println("until the outer people-loop finishes (hoisted sign-offs), then freed.")
	fmt.Println("\nPhases visible above: the people diagonal, the open_auctions")
	fmt.Println("plateau, and the closed_auctions rise — memory is linear in the")
	fmt.Println("input for this query class, for any engine (paper §3).")
}

func repeat(r rune, n int) string {
	if n < 0 {
		n = 0
	}
	out := make([]rune, n)
	for i := range out {
		out[i] = r
	}
	return string(out)
}
