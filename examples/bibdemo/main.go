// bibdemo walks through the paper's running example end to end:
//
//  1. the roles r1…r7 derived by static analysis (§2),
//  2. the rewritten query with signOff statements,
//  3. the Figure 3(b) and 3(c) buffer plots, including the published
//     checkpoint of 23 buffered nodes when </bib> is read.
package main

import (
	"fmt"
	"log"

	"gcx"
	"gcx/internal/xmark"
)

func main() {
	q, err := gcx.Compile(xmark.PaperQuery)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== The paper's running example ===")
	fmt.Println(xmark.PaperQuery)
	fmt.Println("=== Static analysis (Fig. 3(a)) ===")
	fmt.Println(q.Explain())

	show := func(title, label string, kinds []string) {
		doc := xmark.BibDocument(kinds)
		out, res, err := q.ExecuteString(doc, gcx.Options{RecordEvery: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", title)
		fmt.Printf("document: %s (%d tokens, 41 nodes)\n", label, res.TokensProcessed)
		fmt.Printf("result:   %s\n", out)
		fmt.Printf("peak buffered: %d nodes, final: %d\n", res.PeakBufferedNodes, res.FinalBufferedNodes)
		fmt.Printf("buffer profile (nodes per token):\n  ")
		for i, p := range res.Series {
			fmt.Printf("%d", p.Nodes)
			if i < len(res.Series)-1 {
				fmt.Print(" ")
			}
		}
		fmt.Println()
		fmt.Printf("at </bib> (token 82): %d nodes buffered\n\n", res.Series[81].Nodes)
	}

	show("Figure 3(b): streaming-friendly order", "9×article + 1×book", xmark.Fig3bKinds())
	show("Figure 3(c): retention order", "9×book + 1×article", xmark.Fig3cKinds())

	fmt.Println("The paper reports 23 buffered nodes at </bib> for Figure 3(c);")
	fmt.Println("the deferred sign-off timing above reproduces that number exactly.")
}
