package gcx_test

import (
	"context"
	"strings"
	"sync"
	"testing"

	"gcx"
	"gcx/internal/xmark"
)

// TestShardedByteIdentity is the public-API acceptance property:
// sharded output is byte-identical to sequential output for the
// partitionable XMark queries at shards ∈ {2, 4, 8}. Q8 and Q9 run
// through the join-partitioned recipe (probe chunks + broadcast build
// fragment); the rest through plain record partitioning.
func TestShardedByteIdentity(t *testing.T) {
	doc, _, err := xmark.GenerateString(xmark.Config{TargetBytes: 256 << 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, qid := range []string{"Q1", "Q6", "Q8", "Q9", "Q13", "Q17", "Q20"} {
		q := gcx.MustCompile(xmark.Queries[qid].Text)
		if !q.Shardable() {
			t.Fatalf("%s should be shardable", qid)
		}
		want, _, err := q.ExecuteString(doc, gcx.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{2, 4, 8} {
			got, res, err := q.ExecuteString(doc, gcx.Options{Shards: n})
			if err != nil {
				t.Fatalf("%s shards=%d: %v", qid, n, err)
			}
			if got != want {
				t.Fatalf("%s shards=%d: output differs from sequential", qid, n)
			}
			if res.ShardsUsed != n {
				t.Fatalf("%s shards=%d: ShardsUsed = %d", qid, n, res.ShardsUsed)
			}
			if res.Chunks == 0 {
				t.Fatalf("%s shards=%d: no chunks reported", qid, n)
			}
		}
	}
}

// TestShardedFallbacks: non-partitionable queries and recorded runs
// transparently use the sequential engine.
func TestShardedFallbacks(t *testing.T) {
	doc, _, err := xmark.GenerateString(xmark.Config{TargetBytes: 64 << 10, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}

	// A self-join compares two bindings of the same path: the streaming
	// join operator does not apply (probe and build subtrees overlap),
	// so the whole-input re-scan forces sequential execution.
	selfJoin := gcx.MustCompile(`<result>{ for $p in /site/people/person return
	  for $q in /site/people/person return
	    if ($q/@id = $p/@id) then $q/name else () }</result>`)
	if selfJoin.Shardable() {
		t.Fatal("self-join must not be shardable")
	}
	want, _, err := selfJoin.ExecuteString(doc, gcx.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, res, err := selfJoin.ExecuteString(doc, gcx.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got != want || res.ShardsUsed != 1 || res.Chunks != 0 {
		t.Fatalf("fallback broken: used=%d chunks=%d identical=%v", res.ShardsUsed, res.Chunks, got == want)
	}

	// Buffer-plot recording is a sequential feature.
	q1 := gcx.MustCompile(xmark.Queries["Q1"].Text)
	_, res, err = q1.ExecuteString(doc, gcx.Options{Shards: 4, RecordEvery: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardsUsed != 1 || len(res.Series) == 0 {
		t.Fatalf("RecordEvery fallback broken: used=%d series=%d", res.ShardsUsed, len(res.Series))
	}

	// Negative shard counts are a caller bug, not a silent fallback.
	if _, _, err := q1.ExecuteString(doc, gcx.Options{Shards: -1}); err == nil {
		t.Fatal("negative Shards accepted")
	}
}

func TestShardableExplain(t *testing.T) {
	q := gcx.MustCompile(xmark.Queries["Q1"].Text)
	if !strings.Contains(q.Explain(), "Sharding: partitionable on /site/people/person") {
		t.Fatalf("Explain missing sharding verdict:\n%s", q.Explain())
	}
	// Q8 shards on its probe path since the join operator landed; a
	// self-join still reports the sequential fallback.
	q8 := gcx.MustCompile(xmark.Queries["Q8"].Text)
	if !strings.Contains(q8.Explain(), "Sharding: partitionable on /site/people/person") {
		t.Fatalf("Explain missing join sharding verdict:\n%s", q8.Explain())
	}
	selfJoin := gcx.MustCompile(`<result>{ for $p in /site/people/person return
	  for $q in /site/people/person return
	    if ($q/@id = $p/@id) then $q/name else () }</result>`)
	if !strings.Contains(selfJoin.Explain(), "Sharding: sequential only") {
		t.Fatalf("Explain missing fallback reason:\n%s", selfJoin.Explain())
	}
}

// TestShardedConcurrentQueries: one compiled Query serving concurrent
// sharded executions, per the package's concurrency guarantee.
func TestShardedConcurrentQueries(t *testing.T) {
	doc, _, err := xmark.GenerateString(xmark.Config{TargetBytes: 128 << 10, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	q := gcx.MustCompile(xmark.Queries["Q1"].Text)
	want, _, err := q.ExecuteString(doc, gcx.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			got, _, err := q.ExecuteString(doc, gcx.Options{Shards: 2 + n%3})
			if err != nil {
				errs <- err
				return
			}
			if got != want {
				t.Errorf("goroutine %d: output differs", n)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestExecuteStringContext(t *testing.T) {
	q := gcx.MustCompile(xmark.Queries["Q1"].Text)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	doc, _, err := xmark.GenerateString(xmark.Config{TargetBytes: 32 << 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.ExecuteStringContext(ctx, doc, gcx.Options{}); err != context.Canceled {
		t.Fatalf("sequential: err = %v, want context.Canceled", err)
	}
	if _, _, err := q.ExecuteStringContext(ctx, doc, gcx.Options{Shards: 4}); err != context.Canceled {
		t.Fatalf("sharded: err = %v, want context.Canceled", err)
	}
	// And the non-cancelled path still works.
	if _, _, err := q.ExecuteStringContext(context.Background(), doc, gcx.Options{Shards: 2}); err != nil {
		t.Fatal(err)
	}
}
