package gcx_test

import (
	"bytes"
	"strings"
	"testing"

	"gcx"
	"gcx/internal/xmark"
)

// TestBytesReaderParityCatalog is the correctness pin of the zero-copy
// byte path (DESIGN.md §12): for every catalog query, ExecuteBytes over
// the document's bytes and Execute over an io.Reader of the same bytes
// must produce byte-identical output and identical engine statistics.
// The two paths share the engine but diverge at the cursor backing —
// fixed whole-document windows with borrowed text versus 64 KiB refill
// windows with copied text — so any fast-path shortcut that changes
// token content, skip decisions, or buffering shows up here.
func TestBytesReaderParityCatalog(t *testing.T) {
	doc, _, err := xmark.GenerateString(xmark.Config{TargetBytes: 256 << 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, qid := range xmark.QueryIDs() {
		entry := xmark.Queries[qid]
		q, err := gcx.Compile(entry.Text)
		if err != nil {
			t.Fatalf("%s: %v", qid, err)
		}
		opts := gcx.Options{EnableAggregation: entry.UsesAggregation}
		assertPathParity(t, qid, q, []byte(doc), opts)
	}
}

// TestBytesReaderParityNDJSON pins the same property for the JSON front
// end: the NDJSON catalog queries must not care whether records arrive
// as one contiguous buffer or through a reader.
func TestBytesReaderParityNDJSON(t *testing.T) {
	var buf bytes.Buffer
	if _, err := xmark.GenerateNDJSON(&buf, xmark.Config{TargetBytes: 128 << 10, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	log := buf.Bytes()
	for _, qid := range []string{"J1", "J2", "J3"} {
		q, err := gcx.Compile(xmark.NDJSONQueries[qid].Text)
		if err != nil {
			t.Fatalf("%s: %v", qid, err)
		}
		assertPathParity(t, qid, q, log, gcx.Options{Format: gcx.FormatNDJSON})
	}
}

// TestBytesReaderParitySharded extends the pin to sharded execution:
// workers on the byte path receive zero-copy subslices instead of
// pipe-fed readers, and the merged output must not notice.
func TestBytesReaderParitySharded(t *testing.T) {
	doc, _, err := xmark.GenerateString(xmark.Config{TargetBytes: 256 << 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	q, err := gcx.Compile(xmark.Queries["Q1"].Text)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Shardable() {
		t.Fatal("Q1 must be shardable")
	}
	assertPathParity(t, "Q1/shards=4", q, []byte(doc), gcx.Options{Shards: 4})
}

// assertPathParity runs q over data on both input paths and fails the
// test on any divergence in output bytes or engine counters.
func assertPathParity(t *testing.T, label string, q *gcx.Query, data []byte, opts gcx.Options) {
	t.Helper()
	var fromReader bytes.Buffer
	readerRes, err := q.Execute(strings.NewReader(string(data)), &fromReader, opts)
	if err != nil {
		t.Fatalf("%s reader: %v", label, err)
	}
	var fromBytes bytes.Buffer
	bytesRes, err := q.ExecuteBytes(data, &fromBytes, opts)
	if err != nil {
		t.Fatalf("%s bytes: %v", label, err)
	}
	if !bytes.Equal(fromBytes.Bytes(), fromReader.Bytes()) {
		t.Fatalf("%s: output diverges between input paths\nbytes:  %.200q\nreader: %.200q",
			label, fromBytes.String(), fromReader.String())
	}
	type counters struct {
		Tokens, PeakNodes, PeakBytes, Appended, Purged int64
		Output, BytesSkipped, TagsSkipped, Subtrees    int64
		Probe, Build, Matches                          int64
	}
	pick := func(r *gcx.Result) counters {
		return counters{
			Tokens: r.TokensProcessed, PeakNodes: r.PeakBufferedNodes,
			PeakBytes: r.PeakBufferedBytes, Appended: r.TotalAppended,
			Purged: r.TotalPurged, Output: r.OutputBytes,
			BytesSkipped: r.BytesSkipped, TagsSkipped: r.TagsSkipped,
			Subtrees: r.SubtreesSkipped, Probe: r.JoinProbeTuples,
			Build: r.JoinBuildTuples, Matches: r.JoinMatches,
		}
	}
	if b, r := pick(bytesRes), pick(readerRes); b != r {
		t.Fatalf("%s: statistics diverge between input paths\nbytes:  %+v\nreader: %+v", label, b, r)
	}
}
