# Developer workflow for the GCX reproduction. CI runs the same steps
# (.github/workflows/ci.yml), so a green `make check bench` locally
# predicts a green pipeline.

GO ?= go

.PHONY: all build test race check lint bench bench-json benchstat loadtest fuzz-smoke

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check: build race lint
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; fi

# lint runs the repo's architectural passes (internal/lint): the
# tokenizer import boundary, the cancellation-polling contract and the
# observability naming/logging conventions (obsnames).
# staticcheck and govulncheck ride along warn-only when installed —
# the build container has no module proxy, so they cannot be hard
# dependencies.
lint:
	$(GO) run ./cmd/gcxlint ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./... \
		|| echo "warning: staticcheck reported issues (non-blocking)" >&2; \
	else echo "staticcheck not installed; skipping (non-blocking)" >&2; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./... \
		|| echo "warning: govulncheck reported issues (non-blocking)" >&2; \
	else echo "govulncheck not installed; skipping (non-blocking)" >&2; fi

# bench regenerates the committed BENCH_gcx.json perf baseline (also
# wired as `go generate ./...`): the XML cells plus the NDJSON cells
# (gcxbench runs J1,J2,J3 by default). Keep the matrix small enough for
# CI; widen locally with e.g. `go run ./cmd/gcxbench -sizes 1,5 -reps 5`.
bench:
	$(GO) run ./cmd/gcxbench -sizes 1 -queries Q1,Q6,Q8,Q9,Q13 -engines gcx -reps 15 -json BENCH_gcx.json

# bench-json measures only the NDJSON cells (DESIGN.md §8) — a quick
# look at the JSON front end's throughput without the XML matrix. The
# output file is informational, not the committed baseline.
bench-json:
	$(GO) run ./cmd/gcxbench -sizes 1 -queries "" -ndjson-queries J1,J2,J3 -engines gcx -reps 3 -json BENCH_gcx.ndjson.json

# benchstat compares a fresh run against the committed baseline
# (requires golang.org/x/perf's benchstat on PATH or via `go run`).
benchstat:
	$(GO) run ./cmd/gcxbench -sizes 1 -queries Q1,Q6,Q8,Q9,Q13 -engines gcx -reps 3 -json /tmp/BENCH_gcx.new.json
	@command -v jq >/dev/null || { echo "jq required" >&2; exit 1; }
	jq -r '.entries[].gobench' BENCH_gcx.json > /tmp/bench_old.txt
	jq -r '.entries[].gobench' /tmp/BENCH_gcx.new.json > /tmp/bench_new.txt
	-$(GO) run golang.org/x/perf/cmd/benchstat@latest /tmp/bench_old.txt /tmp/bench_new.txt

# loadtest regenerates the committed BENCH_gcxd.json serving-path
# baseline: gcxload drives an in-process gcxd over the default
# query×shards catalog and writes client-observed p50/p95/p99 latency,
# throughput and error rate per cell (DESIGN.md §11). CI runs a shorter
# window (see ci.yml); widen locally with e.g. -duration 10s -c 8.
loadtest:
	$(GO) run ./cmd/gcxload -duration 2s -warmup 500ms -json BENCH_gcxd.json

fuzz-smoke:
	$(GO) test -run xxx -fuzz FuzzTokenizer -fuzztime 10s ./internal/xmltok
	$(GO) test -run xxx -fuzz FuzzSplitter -fuzztime 10s ./internal/xmltok
	$(GO) test -run xxx -fuzz FuzzSkipSubtree -fuzztime 10s ./internal/xmltok
	$(GO) test -run xxx -fuzz FuzzJSONTokenizer -fuzztime 10s ./internal/jsontok
	$(GO) test -run xxx -fuzz FuzzJSONSkipSubtree -fuzztime 10s ./internal/jsontok
	$(GO) test -run xxx -fuzz FuzzParse -fuzztime 10s ./internal/xqparse
	$(GO) test -run xxx -fuzz FuzzStreamBound -fuzztime 10s .
	$(GO) test -run xxx -fuzz FuzzJoinKeys -fuzztime 10s .
	$(GO) test -run xxx -fuzz FuzzCursor -fuzztime 10s ./internal/cursor
	$(GO) test -run xxx -fuzz FuzzBytesReaderParity -fuzztime 10s ./internal/xmltok
	$(GO) test -run xxx -fuzz FuzzJSONBytesReaderParity -fuzztime 10s ./internal/jsontok
