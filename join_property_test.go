package gcx_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"unicode/utf8"

	"gcx"
	"gcx/internal/analysis"
	"gcx/internal/baseline"
	"gcx/internal/xqgen"
	"gcx/internal/xqparse"
)

// domOracle runs the DOM baseline engine on the query, independent of
// the streaming, join and sharded paths under test.
func domOracle(t *testing.T, src, doc string) string {
	t.Helper()
	q, err := xqparse.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	plan, err := analysis.Analyze(q)
	if err != nil {
		t.Fatalf("analyze: %v\n%s", err, src)
	}
	var out bytes.Buffer
	if _, err := baseline.RunDOM(plan, strings.NewReader(doc), &out, true); err != nil {
		t.Fatalf("DOM run: %v\nquery: %s\ndoc: %s", err, src, doc)
	}
	return out.String()
}

// TestJoinDifferential: on randomized join documents and queries, the
// join operator, the nested-loop ablation (DisableJoin), the DOM oracle
// and sharded execution at 2 and 4 workers must all produce
// byte-identical output. Key values include duplicates, empties and
// entity references (xqgen.JoinKeys).
func TestJoinDifferential(t *testing.T) {
	sizes := []struct{ probe, build int }{{6, 8}, {40, 25}}
	for _, seed := range []int64{1, 2} {
		for _, sz := range sizes {
			r := rand.New(rand.NewSource(seed))
			doc := xqgen.JoinDocument(r, sz.probe, sz.build)
			src := xqgen.JoinQuery(r)
			label := fmt.Sprintf("seed %d size %dx%d query %s", seed, sz.probe, sz.build, src)

			q, err := gcx.Compile(src)
			if err != nil {
				t.Fatalf("%s: compile: %v", label, err)
			}
			if q.Report().Join == nil {
				t.Fatalf("%s: generated join query not detected as a join", label)
			}

			want := domOracle(t, src, doc)

			joinOut, jres, err := q.ExecuteString(doc, gcx.Options{})
			if err != nil {
				t.Fatalf("%s: join run: %v", label, err)
			}
			if jres.JoinProbeTuples != int64(sz.probe) {
				t.Fatalf("%s: JoinProbeTuples = %d, want %d (operator did not run?)",
					label, jres.JoinProbeTuples, sz.probe)
			}
			if joinOut != want {
				t.Fatalf("%s: join output differs from DOM\ndoc: %s\n got: %q\nwant: %q",
					label, doc, joinOut, want)
			}

			nestOut, nres, err := q.ExecuteString(doc, gcx.Options{DisableJoin: true})
			if err != nil {
				t.Fatalf("%s: nested run: %v", label, err)
			}
			if nres.JoinProbeTuples != 0 || nres.JoinMatches != 0 {
				t.Fatalf("%s: DisableJoin still ran the operator: %+v", label, nres)
			}
			if nestOut != want {
				t.Fatalf("%s: nested-loop output differs from DOM\ndoc: %s\n got: %q\nwant: %q",
					label, doc, nestOut, want)
			}

			for _, shards := range []int{2, 4} {
				shardOut, sres, err := q.ExecuteString(doc, gcx.Options{Shards: shards})
				if err != nil {
					t.Fatalf("%s: sharded run (%d): %v", label, shards, err)
				}
				if sres.ShardsUsed != shards {
					t.Fatalf("%s: ShardsUsed = %d, want %d (join shard recipe fell back?)",
						label, sres.ShardsUsed, shards)
				}
				if shardOut != want {
					t.Fatalf("%s: sharded (%d) output differs from DOM\ndoc: %s\n got: %q\nwant: %q",
						label, shards, doc, shardOut, want)
				}
			}
		}
	}
}

// escapeXMLText renders an arbitrary string as XML character data.
var escapeXMLText = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;").Replace

// FuzzJoinKeys pins join/nested/sharded agreement on adversarial key
// values: duplicates, empty strings, entity references, whitespace —
// whatever the fuzzer grows from the seeds below.
func FuzzJoinKeys(f *testing.F) {
	f.Add("k1", "k1", "k2")
	f.Add("", "", "x")
	f.Add("a&b", "a&b", "<")
	f.Add("dup", "dup", "dup")
	f.Add(`q"e`, " s p ", "\tk\t")
	const src = `<out>{ for $p in /root/ps/p return <m>{ $p/n, for $b in /root/bs/b return if ($b/k = $p/k) then $b/v else () }</m> }</out>`
	q, err := gcx.Compile(src)
	if err != nil {
		f.Fatal(err)
	}
	if q.Report().Join == nil {
		f.Fatal("fuzz query not detected as a join")
	}
	f.Fuzz(func(t *testing.T, k1, k2, k3 string) {
		for _, k := range []string{k1, k2, k3} {
			if !utf8.ValidString(k) {
				t.Skip("not valid UTF-8")
			}
			for _, r := range k {
				if r < 0x20 && r != '\t' && r != '\n' && r != '\r' {
					t.Skip("control character invalid in XML")
				}
			}
		}
		doc := fmt.Sprintf(`<root><ps><p><n>n0</n><k>%s</k></p><p><n>n1</n><k>%s</k></p></ps>`+
			`<bs><b><k>%s</k><v>v0</v></b><b><k>%s</k><v>v1</v></b><b><k>%s</k><v>v2</v></b></bs></root>`,
			escapeXMLText(k1), escapeXMLText(k2),
			escapeXMLText(k2), escapeXMLText(k3), escapeXMLText(k1))

		joinOut, _, jerr := q.ExecuteString(doc, gcx.Options{})
		nestOut, _, nerr := q.ExecuteString(doc, gcx.Options{DisableJoin: true})
		if (jerr == nil) != (nerr == nil) {
			t.Fatalf("error disagreement: join %v, nested %v\ndoc: %s", jerr, nerr, doc)
		}
		if jerr != nil {
			return // both reject the document identically
		}
		if joinOut != nestOut {
			t.Fatalf("join and nested outputs differ\ndoc: %s\njoin:   %q\nnested: %q", doc, joinOut, nestOut)
		}
		shardOut, _, serr := q.ExecuteString(doc, gcx.Options{Shards: 3})
		if serr != nil {
			t.Fatalf("sharded run errors where sequential succeeded: %v\ndoc: %s", serr, doc)
		}
		if shardOut != joinOut {
			t.Fatalf("sharded output differs\ndoc: %s\nsharded:    %q\nsequential: %q", doc, shardOut, joinOut)
		}
	})
}
