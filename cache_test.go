package gcx_test

import (
	"fmt"
	"sync"
	"testing"

	"gcx"
)

func TestQueryCacheHitAndReuse(t *testing.T) {
	c := gcx.NewQueryCache(4)
	const src = `<out>{ for $b in /bib/book return $b/title }</out>`
	q1, err := c.Get(src)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := c.Get(src)
	if err != nil {
		t.Fatal(err)
	}
	if q1 != q2 {
		t.Error("second Get returned a different *Query")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}

	out, _, err := q1.ExecuteString("<bib><book><title>x</title></book></bib>", gcx.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out != "<out><title>x</title></out>" {
		t.Errorf("cached query output = %q", out)
	}
}

func TestQueryCacheOptionsKey(t *testing.T) {
	c := gcx.NewQueryCache(4)
	const src = `<out>{ for $b in /bib/book return $b/title }</out>`
	qa, err := c.GetWithOptions(src, gcx.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	qb, err := c.GetWithOptions(src, gcx.CompileOptions{CoarseGranularity: true})
	if err != nil {
		t.Fatal(err)
	}
	if qa == qb {
		t.Error("distinct CompileOptions must not share a cache slot")
	}
}

func TestQueryCacheEviction(t *testing.T) {
	c := gcx.NewQueryCache(2)
	srcs := []string{
		`<a>{ /x/y }</a>`,
		`<b>{ /x/y }</b>`,
		`<c>{ /x/y }</c>`,
	}
	first := make([]*gcx.Query, len(srcs))
	for i, s := range srcs {
		q, err := c.Get(s)
		if err != nil {
			t.Fatal(err)
		}
		first[i] = q
	}
	if c.Len() != 2 {
		t.Fatalf("cache len = %d, want 2", c.Len())
	}
	// srcs[0] was evicted by srcs[2]; getting it again recompiles.
	q, err := c.Get(srcs[0])
	if err != nil {
		t.Fatal(err)
	}
	if q == first[0] {
		t.Error("evicted query was still served from cache")
	}
	// srcs[2] is still cached.
	q2, err := c.Get(srcs[2])
	if err != nil {
		t.Fatal(err)
	}
	if q2 != first[2] {
		t.Error("resident query was recompiled")
	}
}

func TestQueryCacheErrorNotCached(t *testing.T) {
	c := gcx.NewQueryCache(4)
	if _, err := c.Get("for $x in"); err == nil {
		t.Fatal("expected compile error")
	}
	if c.Len() != 0 {
		t.Errorf("failed compilation left %d cache entries", c.Len())
	}
	if _, err := c.Get("for $x in"); err == nil {
		t.Fatal("expected compile error on retry")
	}
	_, misses := c.Stats()
	if misses != 2 {
		t.Errorf("misses = %d, want 2 (errors are not cached)", misses)
	}
}

// TestQueryCacheConcurrent hammers one cache from many goroutines over
// a small key set with a capacity that forces constant eviction, and
// executes every returned query. Run with -race.
func TestQueryCacheConcurrent(t *testing.T) {
	c := gcx.NewQueryCache(3)
	srcs := make([]string, 6)
	for i := range srcs {
		srcs[i] = fmt.Sprintf(`<out%d>{ for $b in /bib/book return $b/title }</out%d>`, i, i)
	}
	doc := "<bib><book><title>x</title></book></bib>"

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 20; r++ {
				src := srcs[(g+r)%len(srcs)]
				q, err := c.Get(src)
				if err != nil {
					errs <- err
					return
				}
				if _, _, err := q.ExecuteString(doc, gcx.Options{}); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
