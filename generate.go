package gcx

// BENCH_gcx.json is the committed perf baseline of the repository:
// per-query MB/s, ns/op, allocs/op, bytes skipped (cmd/gcxbench
// -json). CI regenerates it on every run, uploads the fresh file as an
// artifact, and benchstat-compares it (warn-only) against the
// committed copy, so the perf trajectory is tracked across PRs.
// Refresh the baseline on a quiet machine with `make bench` or:
//
//go:generate go run ./cmd/gcxbench -sizes 1 -queries Q1,Q6,Q13 -engines gcx -reps 3 -json BENCH_gcx.json
