package gcx

import (
	"container/list"
	"sync"
)

// QueryCache is a thread-safe LRU cache of compiled queries, keyed by
// query source plus CompileOptions. It exists for serving scenarios
// where the same (hot) queries arrive repeatedly: compilation — parse,
// normalization, projection-path derivation, signOff insertion — runs
// once per distinct query, and concurrent requests for a query that is
// still compiling block until that one compilation finishes instead of
// compiling it again.
type QueryCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used; values are *cacheEntry
	entries  map[cacheKey]*list.Element

	hits, misses int64
}

type cacheKey struct {
	src  string
	opts CompileOptions
}

// cacheEntry is a cache slot. ready is closed once q/err are set, so
// concurrent getters of an in-flight compilation can wait without
// holding the cache lock.
type cacheEntry struct {
	key   cacheKey
	ready chan struct{}
	q     *Query
	err   error
}

// NewQueryCache returns a cache holding up to capacity compiled
// queries. A capacity below 1 is treated as 1.
func NewQueryCache(capacity int) *QueryCache {
	if capacity < 1 {
		capacity = 1
	}
	return &QueryCache{
		capacity: capacity,
		ll:       list.New(),
		entries:  make(map[cacheKey]*list.Element, capacity),
	}
}

// Get returns the compiled form of src, compiling with the default
// analysis on a miss.
func (c *QueryCache) Get(src string) (*Query, error) {
	return c.GetWithOptions(src, CompileOptions{})
}

// GetWithOptions returns the compiled form of (src, opts), compiling on
// a miss. Identical concurrent misses share a single compilation.
// Failed compilations are not cached; a later Get retries.
func (c *QueryCache) GetWithOptions(src string, opts CompileOptions) (*Query, error) {
	key := cacheKey{src: src, opts: opts}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		entry := el.Value.(*cacheEntry)
		c.mu.Unlock()
		<-entry.ready
		return entry.q, entry.err
	}
	c.misses++
	entry := &cacheEntry{key: key, ready: make(chan struct{})}
	el := c.ll.PushFront(entry)
	c.entries[key] = el
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
	c.mu.Unlock()

	entry.q, entry.err = CompileWithOptions(src, opts)
	if entry.err != nil {
		c.mu.Lock()
		// Drop the failed slot unless it was already evicted (or, after
		// an eviction, re-inserted by someone else).
		if cur, ok := c.entries[key]; ok && cur == el {
			c.ll.Remove(el)
			delete(c.entries, key)
		}
		c.mu.Unlock()
	}
	close(entry.ready)
	return entry.q, entry.err
}

// Len reports the number of cached (including in-flight) queries.
func (c *QueryCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats reports the cache's lifetime hit and miss counts.
func (c *QueryCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
