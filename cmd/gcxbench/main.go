// Command gcxbench regenerates the paper's Figure 5 table: evaluation
// time and memory high watermark for the XMark queries across document
// sizes, for the three buffering disciplines (GCX, static projection
// without GC, and full DOM buffering).
//
//	gcxbench                         # default: 1,2,5 MB
//	gcxbench -sizes 10,50 -queries Q1,Q8 -engines gcx,dom
//	gcxbench -paper                  # the paper's 10,50,100,200 MB
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"gcx"
	"gcx/internal/sizeparse"
	"gcx/internal/xmark"
)

func main() {
	var (
		sizesFlag   = flag.String("sizes", "1,2,5", "document sizes in MB, comma-separated")
		queriesFlag = flag.String("queries", "Q1,Q6,Q8,Q13,Q20", "queries to run")
		enginesFlag = flag.String("engines", "gcx,projection,dom", "engines to compare")
		seed        = flag.Int64("seed", 1, "XMark generator seed")
		paper       = flag.Bool("paper", false, "use the paper's sizes (10,50,100,200 MB; slow, memory-hungry)")
	)
	flag.Parse()

	if *paper {
		*sizesFlag = "10,50,100,200"
	}
	var sizes []int64
	for _, s := range strings.Split(*sizesFlag, ",") {
		var mb int64
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &mb); err != nil || mb <= 0 {
			fatal(fmt.Errorf("malformed size %q", s))
		}
		sizes = append(sizes, mb<<20)
	}
	queries := strings.Split(*queriesFlag, ",")
	engines := strings.Split(*enginesFlag, ",")

	fmt.Printf("%-8s %-7s", "Query", "Size")
	for _, e := range engines {
		fmt.Printf(" %22s", strings.TrimSpace(e))
	}
	fmt.Println()
	fmt.Println(strings.Repeat("-", 16+23*len(engines)))

	for _, qid := range queries {
		qid = strings.TrimSpace(qid)
		entry, ok := xmark.Queries[qid]
		if !ok {
			fatal(fmt.Errorf("unknown query %q", qid))
		}
		q, err := gcx.Compile(entry.Text)
		if err != nil {
			fatal(fmt.Errorf("%s: %v", qid, err))
		}
		for _, size := range sizes {
			doc, _, err := xmark.GenerateString(xmark.Config{TargetBytes: size, Seed: *seed})
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-8s %-7s", qid, sizeparse.Format(size))
			for _, engName := range engines {
				opts := gcx.Options{EnableAggregation: entry.UsesAggregation}
				switch strings.TrimSpace(engName) {
				case "gcx":
					opts.Engine = gcx.EngineGCX
				case "projection", "proj", "nogc":
					opts.Engine = gcx.EngineProjectionOnly
				case "dom", "naive":
					opts.Engine = gcx.EngineDOM
				default:
					fatal(fmt.Errorf("unknown engine %q", engName))
				}
				_, res, err := q.ExecuteString(doc, opts)
				if err != nil {
					fmt.Printf(" %22s", "-")
					continue
				}
				fmt.Printf(" %10s /%10s", res.Duration.Round(res.Duration/100+1), sizeparse.Format(res.PeakBufferedBytes))
			}
			fmt.Println()
			runtime.GC()
		}
	}
	fmt.Println()
	fmt.Println("cells: evaluation time / buffered-memory high watermark (estimated)")
	fmt.Println("note:  the paper's FluXQuery column corresponds to the projection engine;")
	fmt.Println("       FluXQuery could not run Q6 (descendant axis) — marked n/a in the paper.")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gcxbench:", err)
	os.Exit(1)
}
