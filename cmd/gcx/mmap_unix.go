//go:build unix

package main

import (
	"os"
	"syscall"
)

// mapFile memory-maps path read-only and returns its bytes with an
// unmap function. The mapping satisfies ExecuteBytesContext's aliasing
// contract by construction: nothing in this process writes to it.
// Empty files yield an empty slice with a no-op unmap (mmap rejects
// zero-length mappings).
func mapFile(path string) ([]byte, func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, func() {}, nil
	}
	if int64(int(size)) != size {
		// A file too large for the address space; read path still works.
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		return data, func() {}, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, err
	}
	return data, func() { _ = syscall.Munmap(data) }, nil
}
