// Command gcx runs an XQuery over an XML or JSON/NDJSON document or
// stream (DESIGN.md §8: JSON objects map to elements, arrays to
// repeated siblings, under a virtual /root/record document shape).
//
// Examples:
//
//	gcx -q '<out>{ for $b in /bib/book return $b/title }</out>' -i bib.xml
//	gcx -f query.xq -i big.xml -o result.xml -stats
//	gcx -f query.xq -explain            # analyzer report: roles, rewritten query, streamability
//	gcx -f query.xq -explain-json       # the same report as JSON
//	gcx -f query.xq -i big.xml -max-nodes 100000    # abort instead of buffering past the budget
//	gcx -f query.xq -strict             # refuse statically unbounded queries
//	gcx -f join.xq -i doc.xml -engine dom   # full-buffering baseline
//	gcx -f query.xq -i big.xml -shards 8    # sharded data-parallel run
//	gcx -q 'for $r in /root/record return $r/name' -i events.ndjson
//	gcx -f query.xq -format ndjson -shards 8 < events.ndjson
//
// The run is cancellable: Ctrl-C (SIGINT/SIGTERM) or an elapsed
// -timeout aborts the evaluation within one input token.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"gcx"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable body of the command. It returns the process exit
// code: 0 on success, 1 on runtime errors, 2 on usage errors.
func run(ctx context.Context, args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gcx", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		queryText   = fs.String("q", "", "query text")
		queryFile   = fs.String("f", "", "file containing the query")
		inputFile   = fs.String("i", "", "input XML document (default stdin)")
		outputFile  = fs.String("o", "", "output file (default stdout)")
		engineName  = fs.String("engine", "gcx", "engine: gcx, projection (no GC) or dom (full buffering)")
		formatName  = fs.String("format", "auto", "input format: auto, xml, json or ndjson (auto uses the -i extension, then sniffs the first byte)")
		mode        = fs.String("mode", "deferred", "sign-off mode: deferred or eager")
		agg         = fs.Bool("agg", false, "enable the aggregation extension (count/sum/min/max/avg)")
		explain     = fs.Bool("explain", false, "print the analyzer report (roles, rewritten query, streamability, bound), then exit")
		explainJSON = fs.Bool("explain-json", false, "like -explain, but print the structured report as JSON")
		maxNodes    = fs.Int64("max-nodes", 0, "node budget: abort with an error if the buffer would exceed this many nodes (0 = unlimited; per worker under -shards)")
		strict      = fs.Bool("strict", false, "reject statically unbounded queries at compile time")
		showStats   = fs.Bool("stats", false, "print run statistics to stderr")
		showTrace   = fs.Bool("trace", false, "print the per-phase execution trace to stderr")
		plotEvery   = fs.Int64("plot", 0, "emit a buffer plot sample to stderr every N tokens")
		shards      = fs.Int("shards", 1, "parallel engine instances for partitionable queries (0/1 = sequential)")
		useMmap     = fs.Bool("mmap", false, "memory-map the -i file and run the zero-copy byte path (falls back to reading the file where mmap is unavailable)")
		noJoin      = fs.Bool("no-join", false, "disable the streaming hash join operator (nested-loop baseline for detected joins)")
		timeout     = fs.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	src := *queryText
	if *queryFile != "" {
		data, err := os.ReadFile(*queryFile)
		if err != nil {
			return fail(stderr, err)
		}
		src = string(data)
	}
	if src == "" {
		fmt.Fprintln(stderr, "gcx: no query given (use -q or -f)")
		fs.Usage()
		return 2
	}

	q, err := gcx.CompileWithOptions(src, gcx.CompileOptions{StrictStreaming: *strict})
	if err != nil {
		return fail(stderr, err)
	}
	if *explainJSON {
		raw, err := json.MarshalIndent(q.Report(), "", "  ")
		if err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stdout, "%s\n", raw)
		return 0
	}
	if *explain {
		fmt.Fprint(stdout, q.Explain())
		return 0
	}

	if *useMmap && *inputFile == "" {
		fmt.Fprintln(stderr, "gcx: -mmap requires an input file (-i)")
		return 2
	}
	input := stdin
	if *inputFile != "" && !*useMmap {
		f, err := os.Open(*inputFile)
		if err != nil {
			return fail(stderr, err)
		}
		defer f.Close()
		input = f
	}
	output := stdout
	toStdout := true
	if *outputFile != "" {
		f, err := os.Create(*outputFile)
		if err != nil {
			return fail(stderr, err)
		}
		defer f.Close()
		output = f
		toStdout = false
	}

	format, err := gcx.ParseFormat(*formatName)
	if err != nil {
		return fail(stderr, err)
	}
	if format == gcx.FormatAuto && *inputFile != "" {
		format = gcx.DetectPathFormat(*inputFile)
	}

	opts := gcx.Options{EnableAggregation: *agg, RecordEvery: *plotEvery, Shards: *shards, Format: format, MaxBufferedNodes: *maxNodes, DisableJoin: *noJoin, EnableTrace: *showTrace}
	switch *engineName {
	case "gcx":
		opts.Engine = gcx.EngineGCX
	case "projection", "proj", "nogc":
		opts.Engine = gcx.EngineProjectionOnly
	case "dom", "naive":
		opts.Engine = gcx.EngineDOM
	default:
		return fail(stderr, fmt.Errorf("unknown engine %q", *engineName))
	}
	switch *mode {
	case "deferred":
	case "eager":
		opts.SignOffMode = gcx.SignOffEager
	default:
		return fail(stderr, fmt.Errorf("unknown sign-off mode %q", *mode))
	}

	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var res *gcx.Result
	if *useMmap {
		data, unmap, err := mapFile(*inputFile)
		if err != nil {
			return fail(stderr, err)
		}
		res, err = q.ExecuteBytesContext(ctx, data, output, opts)
		unmap()
		if err != nil {
			return fail(stderr, err)
		}
	} else {
		res, err = q.ExecuteContext(ctx, input, output, opts)
		if err != nil {
			return fail(stderr, err)
		}
	}
	if toStdout {
		fmt.Fprintln(stdout)
	}
	if *plotEvery > 0 {
		for _, p := range res.Series {
			fmt.Fprintf(stderr, "%d\t%d\n", p.Token, p.Nodes)
		}
	}
	if *showTrace {
		fmt.Fprint(stderr, "trace:")
		for _, p := range res.Trace {
			fmt.Fprintf(stderr, " %s=%s", p.Phase, p.Duration())
		}
		fmt.Fprintf(stderr, " wall=%s\n", res.Duration)
	}
	if *showStats {
		fmt.Fprintf(stderr,
			"tokens=%d peak_nodes=%d peak_bytes=%d final_nodes=%d appended=%d purged=%d output_bytes=%d bytes_skipped=%d tags_skipped=%d shards=%d chunks=%d join_probe=%d join_build=%d join_matches=%d time=%s\n",
			res.TokensProcessed, res.PeakBufferedNodes, res.PeakBufferedBytes,
			res.FinalBufferedNodes, res.TotalAppended, res.TotalPurged,
			res.OutputBytes, res.BytesSkipped, res.TagsSkipped, res.ShardsUsed, res.Chunks,
			res.JoinProbeTuples, res.JoinBuildTuples, res.JoinMatches, res.Duration)
	}
	return 0
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "gcx:", err)
	return 1
}
