// Command gcx runs an XQuery over an XML document or stream.
//
// Examples:
//
//	gcx -q '<out>{ for $b in /bib/book return $b/title }</out>' -i bib.xml
//	gcx -f query.xq -i big.xml -o result.xml -stats
//	gcx -f query.xq -explain            # roles + rewritten query
//	gcx -f join.xq -i doc.xml -engine dom   # full-buffering baseline
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gcx"
)

func main() {
	var (
		queryText  = flag.String("q", "", "query text")
		queryFile  = flag.String("f", "", "file containing the query")
		inputFile  = flag.String("i", "", "input XML document (default stdin)")
		outputFile = flag.String("o", "", "output file (default stdout)")
		engineName = flag.String("engine", "gcx", "engine: gcx, projection (no GC) or dom (full buffering)")
		mode       = flag.String("mode", "deferred", "sign-off mode: deferred or eager")
		agg        = flag.Bool("agg", false, "enable the aggregation extension (count/sum/min/max/avg)")
		explain    = flag.Bool("explain", false, "print roles and the rewritten query, then exit")
		showStats  = flag.Bool("stats", false, "print run statistics to stderr")
		plotEvery  = flag.Int64("plot", 0, "emit a buffer plot sample to stderr every N tokens")
	)
	flag.Parse()

	src := *queryText
	if *queryFile != "" {
		data, err := os.ReadFile(*queryFile)
		if err != nil {
			fatal(err)
		}
		src = string(data)
	}
	if src == "" {
		fmt.Fprintln(os.Stderr, "gcx: no query given (use -q or -f)")
		flag.Usage()
		os.Exit(2)
	}

	q, err := gcx.Compile(src)
	if err != nil {
		fatal(err)
	}
	if *explain {
		fmt.Print(q.Explain())
		return
	}

	var input io.Reader = os.Stdin
	if *inputFile != "" {
		f, err := os.Open(*inputFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		input = f
	}
	var output io.Writer = os.Stdout
	if *outputFile != "" {
		f, err := os.Create(*outputFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		output = f
	}

	opts := gcx.Options{EnableAggregation: *agg, RecordEvery: *plotEvery}
	switch *engineName {
	case "gcx":
		opts.Engine = gcx.EngineGCX
	case "projection", "proj", "nogc":
		opts.Engine = gcx.EngineProjectionOnly
	case "dom", "naive":
		opts.Engine = gcx.EngineDOM
	default:
		fatal(fmt.Errorf("unknown engine %q", *engineName))
	}
	switch *mode {
	case "deferred":
	case "eager":
		opts.SignOffMode = gcx.SignOffEager
	default:
		fatal(fmt.Errorf("unknown sign-off mode %q", *mode))
	}

	res, err := q.Execute(input, output, opts)
	if err != nil {
		fatal(err)
	}
	if output == os.Stdout {
		fmt.Println()
	}
	if *plotEvery > 0 {
		for _, p := range res.Series {
			fmt.Fprintf(os.Stderr, "%d\t%d\n", p.Token, p.Nodes)
		}
	}
	if *showStats {
		fmt.Fprintf(os.Stderr,
			"tokens=%d peak_nodes=%d peak_bytes=%d final_nodes=%d appended=%d purged=%d output_bytes=%d time=%s\n",
			res.TokensProcessed, res.PeakBufferedNodes, res.PeakBufferedBytes,
			res.FinalBufferedNodes, res.TotalAppended, res.TotalPurged,
			res.OutputBytes, res.Duration)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gcx:", err)
	os.Exit(1)
}
