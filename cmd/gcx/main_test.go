package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const testDoc = `<bib><book><title>A</title><price>9</price></book>` +
	`<article><title>B</title></article></bib>`

func runCmd(t *testing.T, args []string, stdin string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = run(context.Background(), args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunQueryFromFlagAndStdin(t *testing.T) {
	code, out, stderr := runCmd(t,
		[]string{"-q", `<out>{ for $b in /bib/book return $b/title }</out>`}, testDoc)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if want := "<out><title>A</title></out>\n"; out != want {
		t.Fatalf("stdout = %q, want %q", out, want)
	}
}

func TestRunQueryFile(t *testing.T) {
	dir := t.TempDir()
	qf := filepath.Join(dir, "q.xq")
	if err := os.WriteFile(qf, []byte(`<r>{ for $x in /bib/article return $x/title }</r>`), 0o644); err != nil {
		t.Fatal(err)
	}
	inf := filepath.Join(dir, "in.xml")
	if err := os.WriteFile(inf, []byte(testDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	outf := filepath.Join(dir, "out.xml")
	code, _, stderr := runCmd(t, []string{"-f", qf, "-i", inf, "-o", outf, "-stats"}, "")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	data, err := os.ReadFile(outf)
	if err != nil {
		t.Fatal(err)
	}
	if want := `<r><title>B</title></r>`; string(data) != want {
		t.Fatalf("output file = %q, want %q", data, want)
	}
	if !strings.Contains(stderr, "tokens=") || !strings.Contains(stderr, "shards=") {
		t.Fatalf("-stats output missing: %s", stderr)
	}
}

func TestRunEngineAndModeFlags(t *testing.T) {
	query := `<out>{ for $b in /bib/book return $b/title }</out>`
	var outputs []string
	for _, args := range [][]string{
		{"-q", query, "-engine", "gcx", "-mode", "deferred"},
		{"-q", query, "-engine", "projection", "-mode", "eager"},
		{"-q", query, "-engine", "dom"},
		{"-q", query, "-shards", "4"},
	} {
		code, out, stderr := runCmd(t, args, testDoc)
		if code != 0 {
			t.Fatalf("args %v: exit %d, stderr: %s", args, code, stderr)
		}
		outputs = append(outputs, out)
	}
	for i := 1; i < len(outputs); i++ {
		if outputs[i] != outputs[0] {
			t.Fatalf("engines disagree: %q vs %q", outputs[i], outputs[0])
		}
	}
}

func TestRunExplain(t *testing.T) {
	code, out, _ := runCmd(t, []string{"-q", `<out>{ for $b in /bib/book return $b/title }</out>`, "-explain"}, "")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "Roles (projection paths):") || !strings.Contains(out, "Sharding:") {
		t.Fatalf("explain output incomplete:\n%s", out)
	}
}

func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name  string
		args  []string
		stdin string
		code  int
	}{
		{"no query", nil, "", 2},
		{"bad flag", []string{"-nope"}, "", 2},
		{"compile error", []string{"-q", "for $x in"}, "", 1},
		{"unknown engine", []string{"-q", "<r/>", "-engine", "zap"}, "", 1},
		{"unknown mode", []string{"-q", "<r/>", "-mode", "sometimes"}, "", 1},
		{"malformed input", []string{"-q", `<r>{ for $b in /bib/book return $b }</r>`}, "<bib><book></bib>", 1},
	}
	for _, c := range cases {
		code, _, stderr := runCmd(t, c.args, c.stdin)
		if code != c.code {
			t.Fatalf("%s: exit %d, want %d (stderr: %s)", c.name, code, c.code, stderr)
		}
	}
}

// infiniteDoc drips an endless XML document so timeouts have something
// to interrupt.
type infiniteDoc struct {
	started bool
}

func (d *infiniteDoc) Read(p []byte) (int, error) {
	chunk := "<book><title>t</title></book>"
	if !d.started {
		d.started = true
		chunk = "<bib>" + chunk
	}
	n := copy(p, chunk)
	return n, nil
}

func TestRunTimeout(t *testing.T) {
	var out, errb strings.Builder
	start := time.Now()
	code := run(context.Background(),
		[]string{"-q", `<out>{ for $b in /bib/book return $b/title }</out>`, "-timeout", "50ms"},
		&infiniteDoc{}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, errb.String())
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout did not abort promptly (took %s)", elapsed)
	}
	if !strings.Contains(errb.String(), "deadline") {
		t.Fatalf("stderr = %q, want deadline error", errb.String())
	}
}

// TestRunCancelledContext simulates a delivered SIGINT: the run must
// abort with the context error.
func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errb strings.Builder
	code := run(ctx, []string{"-q", `<out>{ for $b in /bib/book return $b/title }</out>`},
		&infiniteDoc{}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "canceled") {
		t.Fatalf("stderr = %q, want cancellation error", errb.String())
	}
}

func TestRunExplainJSON(t *testing.T) {
	code, out, stderr := runCmd(t, []string{"-q", `<out>{ for $b in /bib/book return $b/title }</out>`, "-explain-json"}, "")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	var rep map[string]any
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("-explain-json did not print JSON: %v\n%s", err, out)
	}
	if rep["streamability"] != "bounded-constant" {
		t.Errorf("streamability = %v", rep["streamability"])
	}
	if rep["static_bound"] == nil {
		t.Errorf("bounded query report misses static_bound:\n%s", out)
	}
}

func TestRunMaxNodes(t *testing.T) {
	query := `<out>{ for $b in /bib/book return $b/title }</out>`
	code, _, stderr := runCmd(t, []string{"-q", query, "-max-nodes", "1"}, testDoc)
	if code != 1 || !strings.Contains(stderr, "budget") {
		t.Fatalf("tiny budget: exit %d, stderr %q", code, stderr)
	}
	code, out, stderr := runCmd(t, []string{"-q", query, "-max-nodes", "100000"}, testDoc)
	if code != 0 {
		t.Fatalf("generous budget: exit %d, stderr %q", code, stderr)
	}
	if want := "<out><title>A</title></out>\n"; out != want {
		t.Fatalf("stdout = %q, want %q", out, want)
	}
}

func TestRunStrict(t *testing.T) {
	join := `<out>{ for $b in /bib/book return for $a in /bib/article return $a/title }</out>`
	code, _, stderr := runCmd(t, []string{"-q", join, "-strict"}, testDoc)
	if code != 1 || !strings.Contains(stderr, "strict streaming") {
		t.Fatalf("strict join: exit %d, stderr %q", code, stderr)
	}
	if code, _, stderr := runCmd(t, []string{"-q", join}, testDoc); code != 0 {
		t.Fatalf("join without -strict must still run: exit %d, stderr %q", code, stderr)
	}
	if code, _, stderr := runCmd(t, []string{"-q", `<out>{ for $b in /bib/book return $b/title }</out>`, "-strict"}, testDoc); code != 0 {
		t.Fatalf("bounded query under -strict: exit %d, stderr %q", code, stderr)
	}
}
