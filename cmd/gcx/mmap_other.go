//go:build !unix

package main

import "os"

// mapFile reads the whole file on platforms without mmap; the zero-copy
// byte path still applies to the in-memory copy.
func mapFile(path string) ([]byte, func(), error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() {}, nil
}
