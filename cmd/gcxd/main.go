// Command gcxd is the GCX query server: a concurrent HTTP front end
// over the streaming engine. Each request carries an XQuery (header or
// URL parameter) plus the XML input as the request body; the serialized
// result streams back as the response body while the input is still
// being read, so neither side is ever buffered whole. Compiled queries
// are shared across requests through a thread-safe LRU cache, and every
// execution runs under the request's context — a disconnecting client
// cancels its run within one input token.
//
// Usage:
//
//	gcxd [-addr :8090] [-cache 256]
//
//	curl -X POST --data-binary @bib.xml \
//	     'http://localhost:8090/query?query=<out>{ for $b in /bib/book return $b/title }</out>'
//
// Endpoints:
//
//	POST /query   evaluate a query (see below)
//	GET  /explain compile a query and return its analyzer report as JSON
//	GET  /healthz liveness probe
//	GET  /stats   JSON counters: requests, cache hits/misses, bytes out,
//	              buffer watermarks, budget rejections/trips
//
// POST /query reads the query text from the X-GCX-Query header or the
// "query" URL parameter, and the input document from the request body.
// Optional URL parameters: engine=gcx|projection|dom (default gcx),
// signoff=deferred|eager (default deferred), agg=1 to enable the
// aggregation extension, shards=N (1..gcx.MaxShards) to run a partitionable query
// over N parallel engine instances (non-partitionable queries fall back
// to one, see DESIGN.md §6), format=auto|xml|json|ndjson (default auto)
// to select the input syntax — JSON/NDJSON bodies stream back as JSON
// lines (DESIGN.md §8), and format=ndjson additionally enables
// newline-boundary sharding for eligible queries. max_nodes=N sets the
// per-worker buffer node budget (DESIGN.md §9): statically-unbounded
// queries are rejected up front with 413 and the analyzer's reason, and
// a runtime overrun aborts the run with 413 (or the X-Gcx-Error trailer
// once streaming has begun) instead of buffering without limit.
// Execution statistics arrive as HTTP trailers (X-Gcx-Tokens,
// X-Gcx-Peak-Nodes, X-Gcx-Peak-Bytes, X-Gcx-Shards); an error after
// streaming has begun is reported in the X-Gcx-Error trailer, since the
// status line is already on the wire.
//
// GET /explain takes the same query sources (X-GCX-Query header or
// ?query=) and returns the structured gcx.ExplainReport — projection
// roles, rewritten query, streamability class with its static node
// bound, skip and shard verdicts — without executing anything.
//
// On SIGINT/SIGTERM the server stops accepting connections and drains
// in-flight queries for up to -drain before exiting.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"gcx"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	cacheSize := flag.Int("cache", 256, "compiled-query cache capacity")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown deadline: how long in-flight queries may finish after SIGINT/SIGTERM")
	flag.Parse()

	srv := newServer(*cacheSize)
	// No ReadTimeout/WriteTimeout: query streams are legitimately
	// long-lived. Header and idle timeouts keep stalled connections
	// from pinning handler goroutines forever.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// Graceful drain: the first SIGINT/SIGTERM stops accepting new
	// connections and lets in-flight queries run to completion within
	// the -drain deadline; streams still open at the deadline are cut.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("gcxd listening on %s", *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop() // a second signal kills the process immediately
		log.Printf("gcxd draining (deadline %s)", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			log.Printf("gcxd drain incomplete: %v", err)
			hs.Close()
		}
		if err := <-errc; err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
		log.Printf("gcxd stopped")
	}
}

// server is the gcxd HTTP handler; it is safe for concurrent use.
type server struct {
	mux   *http.ServeMux
	cache *gcx.QueryCache

	requests atomic.Int64
	errors   atomic.Int64
	bytesOut atomic.Int64

	// Sharded-execution counters: requests that asked for shards > 1,
	// worker instances launched and chunks processed on their behalf,
	// and requests that fell back to the sequential engine because the
	// query was not partitionable.
	shardedRequests atomic.Int64
	shardWorkers    atomic.Int64
	shardChunks     atomic.Int64
	shardFallbacks  atomic.Int64

	// Subtree-skipping counters (DESIGN.md §7): input bytes the engines
	// fast-forwarded past without tokenizing, and fast-forwards taken.
	bytesSkipped    atomic.Int64
	subtreesSkipped atomic.Int64

	// jsonRequests counts requests that selected the JSON/NDJSON front
	// end via ?format= (DESIGN.md §8).
	jsonRequests atomic.Int64

	// Streaming-join counters (DESIGN.md §10): probe bindings, build
	// tuples and matched emissions across all runs of detected joins.
	joinProbeTuples atomic.Int64
	joinBuildTuples atomic.Int64
	joinMatches     atomic.Int64

	// Budget accounting (DESIGN.md §9): requests rejected at admission
	// because a ?max_nodes= budget met a statically-unbounded query, and
	// runs aborted because the buffer hit the budget at runtime.
	budgetRejections atomic.Int64
	budgetTrips      atomic.Int64

	// Lifetime buffer high-water marks across all requests, in the
	// engine's node/byte metrics.
	peakNodes atomic.Int64
	peakBytes atomic.Int64
}

// observePeaks folds one run's buffer watermarks into the server-wide
// high-water marks (atomic compare-and-swap max).
func (s *server) observePeaks(res *gcx.Result) {
	if res == nil {
		return
	}
	for {
		cur := s.peakNodes.Load()
		if res.PeakBufferedNodes <= cur || s.peakNodes.CompareAndSwap(cur, res.PeakBufferedNodes) {
			break
		}
	}
	for {
		cur := s.peakBytes.Load()
		if res.PeakBufferedBytes <= cur || s.peakBytes.CompareAndSwap(cur, res.PeakBufferedBytes) {
			break
		}
	}
}

// observeJoin folds one run's join counters into the server totals.
// Budget-tripped runs contribute their partial counts: how far the
// probe/build sides got before the breach is exactly what an operator
// sizing max_nodes wants to see.
func (s *server) observeJoin(res *gcx.Result) {
	if res == nil {
		return
	}
	s.joinProbeTuples.Add(res.JoinProbeTuples)
	s.joinBuildTuples.Add(res.JoinBuildTuples)
	s.joinMatches.Add(res.JoinMatches)
}

func newServer(cacheSize int) *server {
	s := &server{
		mux:   http.NewServeMux(),
		cache: gcx.NewQueryCache(cacheSize),
	}
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/explain", s.handleExplain)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/stats", s.handleStats)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// optionsFromRequest maps URL parameters to execution options.
func optionsFromRequest(r *http.Request) (gcx.Options, error) {
	var opts gcx.Options
	switch eng := r.URL.Query().Get("engine"); eng {
	case "", "gcx":
		opts.Engine = gcx.EngineGCX
	case "projection":
		opts.Engine = gcx.EngineProjectionOnly
	case "dom":
		opts.Engine = gcx.EngineDOM
	default:
		return opts, fmt.Errorf("unknown engine %q (want gcx, projection or dom)", eng)
	}
	switch so := r.URL.Query().Get("signoff"); so {
	case "", "deferred":
		opts.SignOffMode = gcx.SignOffDeferred
	case "eager":
		opts.SignOffMode = gcx.SignOffEager
	default:
		return opts, fmt.Errorf("unknown signoff mode %q (want deferred or eager)", so)
	}
	if agg := r.URL.Query().Get("agg"); agg == "1" || agg == "true" {
		opts.EnableAggregation = true
	}
	if sh := r.URL.Query().Get("shards"); sh != "" {
		n, err := strconv.Atoi(sh)
		if err != nil || n < 1 || n > gcx.MaxShards {
			return opts, fmt.Errorf("invalid shards %q (want 1..%d)", sh, gcx.MaxShards)
		}
		opts.Shards = n
	}
	format, err := gcx.ParseFormat(r.URL.Query().Get("format"))
	if err != nil {
		return opts, err
	}
	opts.Format = format
	if mn := r.URL.Query().Get("max_nodes"); mn != "" {
		n, err := strconv.ParseInt(mn, 10, 64)
		if err != nil || n < 1 {
			return opts, fmt.Errorf("invalid max_nodes %q (want a positive node count)", mn)
		}
		opts.MaxBufferedNodes = n
	}
	return opts, nil
}

// contentType maps the request's input format to the response body's
// media type: XML results for XML input, JSON lines otherwise. Auto is
// reported as XML — the historical default — since the body's real
// format is only known after sniffing begins streaming.
func contentType(f gcx.Format) string {
	switch f {
	case gcx.FormatJSON, gcx.FormatNDJSON:
		return "application/x-ndjson"
	default:
		return "application/xml"
	}
}

// countingWriter tracks whether (and how much of) the response body has
// hit the wire, which decides between a clean error status and an error
// trailer on a stream that already started.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "use POST with the XML document as request body")
		return
	}
	src := r.Header.Get("X-GCX-Query")
	if src == "" {
		src = r.URL.Query().Get("query")
	}
	if src == "" {
		s.fail(w, http.StatusBadRequest, "missing query: pass the X-GCX-Query header or the ?query= parameter")
		return
	}
	opts, err := optionsFromRequest(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err.Error())
		return
	}
	q, err := s.cache.Get(src)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "compile error: "+err.Error())
		return
	}
	if opts.MaxBufferedNodes > 0 {
		// Admission control: a budget-carrying request with a query the
		// analyzer proved unbounded can only end in a mid-stream abort,
		// so reject it up front with the analyzer's reason. Detected
		// joins are exempt: they are classified unbounded (the build side
		// is buffered to end of input), but the join operator enforces
		// the budget on the build table and degrades gracefully with
		// partial statistics, surfacing as a budget_trip below — the
		// budget is exactly the knob that makes such a query admissible.
		if rep := q.Report(); rep.Streamability == "unbounded" && rep.Join == nil {
			s.budgetRejections.Add(1)
			s.fail(w, http.StatusRequestEntityTooLarge,
				"query is statically unbounded and cannot run under max_nodes: "+rep.StreamabilityReason)
			return
		}
	}

	w.Header().Set("Content-Type", contentType(opts.Format))
	w.Header().Set("Trailer", "X-Gcx-Error, X-Gcx-Tokens, X-Gcx-Peak-Nodes, X-Gcx-Peak-Bytes, X-Gcx-Shards, X-Gcx-Bytes-Skipped")
	cw := &countingWriter{w: w}
	res, err := q.ExecuteContext(r.Context(), r.Body, cw, opts)
	s.bytesOut.Add(cw.n)
	if err != nil {
		s.observePeaks(res) // budget trips still report the partial run's watermark
		s.observeJoin(res)
		if errors.Is(err, gcx.ErrBufferBudget) {
			s.budgetTrips.Add(1)
			if cw.n == 0 {
				s.fail(w, http.StatusRequestEntityTooLarge, "buffer budget exceeded: "+err.Error())
				return
			}
		} else if cw.n == 0 {
			// Nothing streamed yet: the status line is still ours.
			s.fail(w, http.StatusUnprocessableEntity, "execution error: "+err.Error())
			return
		}
		s.errors.Add(1)
		w.Header().Set("X-Gcx-Error", err.Error())
		return
	}
	s.observePeaks(res)
	s.observeJoin(res)
	if opts.Shards > 1 {
		s.shardedRequests.Add(1)
		s.shardWorkers.Add(int64(res.ShardsUsed))
		s.shardChunks.Add(int64(res.Chunks))
		if res.ShardsUsed == 1 {
			s.shardFallbacks.Add(1)
		}
	}
	s.bytesSkipped.Add(res.BytesSkipped)
	s.subtreesSkipped.Add(res.SubtreesSkipped)
	if opts.Format == gcx.FormatJSON || opts.Format == gcx.FormatNDJSON {
		s.jsonRequests.Add(1)
	}
	w.Header().Set("X-Gcx-Tokens", fmt.Sprint(res.TokensProcessed))
	w.Header().Set("X-Gcx-Peak-Nodes", fmt.Sprint(res.PeakBufferedNodes))
	w.Header().Set("X-Gcx-Peak-Bytes", fmt.Sprint(res.PeakBufferedBytes))
	w.Header().Set("X-Gcx-Shards", fmt.Sprint(res.ShardsUsed))
	w.Header().Set("X-Gcx-Bytes-Skipped", fmt.Sprint(res.BytesSkipped))
}

// handleExplain compiles the query and returns the analyzer's
// structured report without executing it — the server-side form of
// `gcx -explain-json`.
func (s *server) handleExplain(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	src := r.Header.Get("X-GCX-Query")
	if src == "" {
		src = r.URL.Query().Get("query")
	}
	if src == "" {
		s.fail(w, http.StatusBadRequest, "missing query: pass the X-GCX-Query header or the ?query= parameter")
		return
	}
	q, err := s.cache.Get(src)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "compile error: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(q.Report())
}

func (s *server) fail(w http.ResponseWriter, code int, msg string) {
	s.errors.Add(1)
	http.Error(w, msg, code)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.cache.Stats()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"requests":         s.requests.Load(),
		"errors":           s.errors.Load(),
		"bytes_out":        s.bytesOut.Load(),
		"cache_len":        s.cache.Len(),
		"cache_hits":       hits,
		"cache_misses":     misses,
		"sharded_requests": s.shardedRequests.Load(),
		"shard_workers":    s.shardWorkers.Load(),
		"shard_chunks":     s.shardChunks.Load(),
		"shard_fallbacks":  s.shardFallbacks.Load(),
		"bytes_skipped":    s.bytesSkipped.Load(),
		"subtrees_skipped": s.subtreesSkipped.Load(),
		"json_requests":    s.jsonRequests.Load(),
		// Streaming-join totals (DESIGN.md §10).
		"join_probe_tuples": s.joinProbeTuples.Load(),
		"join_build_tuples": s.joinBuildTuples.Load(),
		"join_matches":      s.joinMatches.Load(),
		// Buffer watermarks and budget accounting (DESIGN.md §9).
		"peak_buffered_nodes": s.peakNodes.Load(),
		"peak_buffered_bytes": s.peakBytes.Load(),
		"budget_rejections":   s.budgetRejections.Load(),
		"budget_trips":        s.budgetTrips.Load(),
	})
}
