// Command gcxd is the GCX query server: a concurrent HTTP front end
// over the streaming engine (implemented in gcx/internal/gcxd, so tests
// and the gcxload harness can run it in-process). Each request carries
// an XQuery (header or URL parameter) plus the XML input as the request
// body; the serialized result streams back as the response body while
// the input is still being read, so neither side is ever buffered
// whole. Compiled queries are shared across requests through a
// thread-safe LRU cache, and every execution runs under the request's
// context — a disconnecting client cancels its run within one input
// token.
//
// Usage:
//
//	gcxd [-addr :8090] [-cache 256] [-max-inflight 0] [-pprof-addr ""] [-log text]
//
//	curl -X POST --data-binary @bib.xml \
//	     'http://localhost:8090/query?query=<out>{ for $b in /bib/book return $b/title }</out>'
//
// Endpoints:
//
//	POST /query   evaluate a query (see below)
//	GET  /explain compile a query and return its analyzer report as JSON
//	GET  /healthz liveness probe
//	GET  /stats   JSON counters: requests, cache hits/misses, bytes out,
//	              buffer watermarks, budget rejections/trips
//	GET  /metrics the same registry in Prometheus text exposition format,
//	              plus request latency/size histograms (DESIGN.md §11)
//
// POST /query reads the query text from the X-GCX-Query header or the
// "query" URL parameter, and the input document from the request body.
// Optional URL parameters: engine=gcx|projection|dom (default gcx),
// signoff=deferred|eager (default deferred), agg=1 to enable the
// aggregation extension, shards=N (1..gcx.MaxShards) to run a partitionable query
// over N parallel engine instances (non-partitionable queries fall back
// to one, see DESIGN.md §6), format=auto|xml|json|ndjson (default auto)
// to select the input syntax — JSON/NDJSON bodies stream back as JSON
// lines (DESIGN.md §8), and format=ndjson additionally enables
// newline-boundary sharding for eligible queries. max_nodes=N sets the
// per-worker buffer node budget (DESIGN.md §9): statically-unbounded
// queries are rejected up front with 413 and the analyzer's reason, and
// a runtime overrun aborts the run with 413 (or the X-Gcx-Error trailer
// once streaming has begun) instead of buffering without limit.
// trace=1 enables per-phase execution timing; the phase breakdown
// arrives as JSON in the X-Gcx-Trace trailer. Execution statistics
// arrive as HTTP trailers (X-Gcx-Tokens, X-Gcx-Peak-Nodes,
// X-Gcx-Peak-Bytes, X-Gcx-Shards); an error after streaming has begun
// is reported in the X-Gcx-Error trailer, since the status line is
// already on the wire.
//
// -max-inflight bounds concurrently executing queries; above it the
// server sheds load with 503 + Retry-After instead of queueing without
// bound. -pprof-addr starts a second, admin-only listener serving
// net/http/pprof (kept off the query port so profiling endpoints are
// never exposed to query clients). -log selects text or json slog
// output; every request logs one structured line.
//
// On SIGINT/SIGTERM the server stops accepting connections and drains
// in-flight queries for up to -drain before exiting.
package main

import (
	"context"
	"flag"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gcx/internal/gcxd"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	cacheSize := flag.Int("cache", 256, "compiled-query cache capacity")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown deadline: how long in-flight queries may finish after SIGINT/SIGTERM")
	maxInflight := flag.Int("max-inflight", 0, "maximum concurrently executing queries; above it requests get 503 + Retry-After (0 = unlimited)")
	bytesBody := flag.Int64("bytes-body-limit", 0, "buffer request bodies up to this many bytes and run the zero-copy byte path (0 = 1 MiB default, negative = always stream)")
	pprofAddr := flag.String("pprof-addr", "", "admin listen address for net/http/pprof (empty = disabled; keep it private)")
	logFormat := flag.String("log", "text", "request log format: text or json")
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		slog.Error("unknown -log format (want text or json)", "format", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)

	srv := gcxd.NewServer(gcxd.Config{
		CacheSize:      *cacheSize,
		MaxInflight:    *maxInflight,
		BytesBodyLimit: *bytesBody,
		Logger:         logger,
	})
	// No ReadTimeout/WriteTimeout: query streams are legitimately
	// long-lived. Header and idle timeouts keep stalled connections
	// from pinning handler goroutines forever.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// The pprof listener is its own server on its own port: profiling
	// endpoints never share an address with query traffic, so a firewall
	// rule on one port covers them all.
	if *pprofAddr != "" {
		admin := http.NewServeMux()
		admin.HandleFunc("/debug/pprof/", pprof.Index)
		admin.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		admin.HandleFunc("/debug/pprof/profile", pprof.Profile)
		admin.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		admin.HandleFunc("/debug/pprof/trace", pprof.Trace)
		as := &http.Server{Addr: *pprofAddr, Handler: admin, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := as.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Error("pprof listener failed", "addr", *pprofAddr, "err", err)
			}
		}()
		logger.Info("pprof listening", "addr", *pprofAddr)
	}

	// Graceful drain: the first SIGINT/SIGTERM stops accepting new
	// connections and lets in-flight queries run to completion within
	// the -drain deadline; streams still open at the deadline are cut.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	logger.Info("gcxd listening", "addr", *addr, "max_inflight", *maxInflight)

	select {
	case err := <-errc:
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
		stop() // a second signal kills the process immediately
		logger.Info("gcxd draining", "deadline", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			logger.Warn("drain incomplete", "err", err)
			hs.Close()
		}
		if err := <-errc; err != nil && err != http.ErrServerClosed {
			logger.Error("serve failed", "err", err)
			os.Exit(1)
		}
		logger.Info("gcxd stopped")
	}
}
