// Command gcxlint runs the repo's architectural lint passes
// (internal/lint): eventboundary and ctxpoll. It is wired into
// `make check` and CI.
//
// Usage:
//
//	gcxlint [-passes eventboundary,ctxpoll] [dir]
//
// dir defaults to the current module root (the nearest parent directory
// with a go.mod). A `./...` argument is accepted as an alias for the
// module root, so the command drops into the usual vet invocation
// shape. Exit status: 0 clean, 1 findings, 2 usage or load errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"gcx/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gcxlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	passNames := fs.String("passes", "", "comma-separated pass names to run (default all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	passes := lint.All
	if *passNames != "" {
		passes = nil
		for _, name := range strings.Split(*passNames, ",") {
			a := lint.Lookup(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(stderr, "gcxlint: unknown pass %q\n", name)
				return 2
			}
			passes = append(passes, a)
		}
	}

	root := ""
	switch fs.NArg() {
	case 0:
	case 1:
		if arg := fs.Arg(0); arg != "./..." && arg != "..." {
			root = arg
		}
	default:
		fmt.Fprintln(stderr, "gcxlint: at most one directory argument")
		return 2
	}
	if root == "" {
		var err error
		if root, err = moduleRoot(); err != nil {
			fmt.Fprintln(stderr, "gcxlint:", err)
			return 2
		}
	}

	findings, err := lint.Run(root, passes)
	if err != nil {
		fmt.Fprintln(stderr, "gcxlint:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
