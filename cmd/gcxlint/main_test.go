package main

import (
	"strings"
	"testing"
)

func TestRunRepoClean(t *testing.T) {
	// From this package's directory the module root is two levels up;
	// the ./... alias must resolve it the same way.
	for _, args := range [][]string{{"../.."}, {"./..."}} {
		var out, errb strings.Builder
		if code := run(args, &out, &errb); code != 0 {
			t.Errorf("args %v: exit %d\nstdout: %s\nstderr: %s", args, code, out.String(), errb.String())
		}
	}
}

func TestRunSeededViolations(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-passes", "ctxpoll", "../../internal/lint/testdata/ctxpoll"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1 on findings\nstderr: %s", code, errb.String())
	}
	if got := strings.Count(out.String(), "ctxpoll:"); got != 3 {
		t.Errorf("reported %d findings, want 3 (two engine, one join):\n%s", got, out.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-passes", "bogus"},
		{"a", "b"},
		{"/nonexistent-root-without-gomod"},
	} {
		var out, errb strings.Builder
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("args %v: exit %d, want 2 (stderr: %s)", args, code, errb.String())
		}
	}
}
