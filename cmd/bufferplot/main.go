// Command bufferplot regenerates the buffer plots of the paper's
// Figures 3 and 4: for each processed input token it emits the number
// of buffered XML nodes, as "token<TAB>nodes" lines ready for gnuplot.
//
//	bufferplot -fig 3b          # 9×article + 1×book (Fig. 3(b))
//	bufferplot -fig 3c          # 9×book + 1×article (Fig. 3(c))
//	bufferplot -fig 4a -size 10MB   # XMark Q6 (Fig. 4(a))
//	bufferplot -fig 4b -size 10MB   # XMark Q8 (Fig. 4(b))
//	bufferplot -q query.xq -i doc.xml -every 100   # custom
package main

import (
	"flag"
	"fmt"
	"os"

	"gcx"
	"gcx/internal/plotsvg"
	"gcx/internal/sizeparse"
	"gcx/internal/stats"
	"gcx/internal/xmark"
)

func main() {
	var (
		fig       = flag.String("fig", "", "paper figure to regenerate: 3b, 3c, 4a or 4b")
		queryFile = flag.String("q", "", "custom query file")
		inputFile = flag.String("i", "", "custom input document")
		size      = flag.String("size", "10MB", "XMark document size for figures 4a/4b")
		seed      = flag.Int64("seed", 1, "XMark generator seed")
		every     = flag.Int64("every", 0, "sampling interval in tokens (default: 1 for fig 3, 200 for fig 4)")
		mode      = flag.String("mode", "deferred", "sign-off mode: deferred or eager")
		svgOut    = flag.String("svg", "", "also render the plot as an SVG image to this file")
	)
	flag.Parse()

	var querySrc, doc string
	switch *fig {
	case "3b":
		querySrc, doc = xmark.PaperQuery, xmark.BibDocument(xmark.Fig3bKinds())
		setDefault(every, 1)
	case "3c":
		querySrc, doc = xmark.PaperQuery, xmark.BibDocument(xmark.Fig3cKinds())
		setDefault(every, 1)
	case "4a", "4b":
		bytes, err := sizeparse.Parse(*size)
		if err != nil {
			fatal(err)
		}
		generated, _, err := xmark.GenerateString(xmark.Config{TargetBytes: bytes, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		doc = generated
		if *fig == "4a" {
			querySrc = xmark.Queries["Q6"].Text
		} else {
			querySrc = xmark.Queries["Q8"].Text
		}
		setDefault(every, 200)
	case "":
		if *queryFile == "" || *inputFile == "" {
			fmt.Fprintln(os.Stderr, "bufferplot: need -fig, or both -q and -i")
			os.Exit(2)
		}
		qdata, err := os.ReadFile(*queryFile)
		if err != nil {
			fatal(err)
		}
		ddata, err := os.ReadFile(*inputFile)
		if err != nil {
			fatal(err)
		}
		querySrc, doc = string(qdata), string(ddata)
		setDefault(every, 1)
	default:
		fatal(fmt.Errorf("unknown figure %q", *fig))
	}

	q, err := gcx.Compile(querySrc)
	if err != nil {
		fatal(err)
	}
	opts := gcx.Options{RecordEvery: *every}
	if *mode == "eager" {
		opts.SignOffMode = gcx.SignOffEager
	}
	_, res, err := q.ExecuteString(doc, opts)
	if err != nil {
		fatal(err)
	}
	for _, p := range res.Series {
		fmt.Printf("%d\t%d\n", p.Token, p.Nodes)
	}
	if *svgOut != "" {
		f, err := os.Create(*svgOut)
		if err != nil {
			fatal(err)
		}
		points := make([]stats.Point, len(res.Series))
		for i, p := range res.Series {
			points[i] = stats.Point{Token: p.Token, Nodes: p.Nodes, Bytes: p.Bytes}
		}
		title := "GCX buffer plot"
		if *fig != "" {
			title = "Figure " + *fig
		}
		err = plotsvg.Render(f, plotsvg.Config{
			Title:  title,
			XLabel: "number of tokens processed",
			YLabel: "number of XML nodes buffered",
		}, plotsvg.Series{Points: points})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "bufferplot: %d tokens, peak %d nodes (%0.1f KB est.), final %d nodes\n",
		res.TokensProcessed, res.PeakBufferedNodes,
		float64(res.PeakBufferedBytes)/1024, res.FinalBufferedNodes)
}

func setDefault(p *int64, v int64) {
	if *p == 0 {
		*p = v
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bufferplot:", err)
	os.Exit(1)
}
