package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunSmoke drives the harness end to end against its in-process
// server with a tiny window and checks the JSON output shape.
func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke test")
	}
	jsonPath := filepath.Join(t.TempDir(), "BENCH_gcxd.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-queries", "Q1", "-ndjson-queries", "J1", "-shards", "1,2",
		"-size", "65536", "-warmup", "50ms", "-duration", "300ms", "-c", "2",
		"-json", jsonPath,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var out benchFile
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Entries) != 4 { // (Q1 + J1) × shards {1,2}
		t.Fatalf("entries = %d, want 4: %s", len(out.Entries), raw)
	}
	for _, e := range out.Entries {
		if e.Requests == 0 {
			t.Errorf("cell %s/shards=%d made no requests", e.Query, e.Shards)
		}
		if e.ErrorRate != 0 {
			t.Errorf("cell %s/shards=%d error rate %.2f", e.Query, e.Shards, e.ErrorRate)
		}
		if e.P50Ms <= 0 || e.P99Ms < e.P50Ms {
			t.Errorf("cell %s/shards=%d implausible percentiles p50=%f p99=%f",
				e.Query, e.Shards, e.P50Ms, e.P99Ms)
		}
	}
}

// TestRunOpenLoop: the -rate path also completes and labels its cells.
func TestRunOpenLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke test")
	}
	jsonPath := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-queries", "Q1", "-ndjson-queries", "", "-shards", "1",
		"-size", "32768", "-warmup", "20ms", "-duration", "200ms", "-rate", "50",
		"-json", jsonPath,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var out benchFile
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Entries) != 1 || out.Entries[0].RateRPS != 50 || out.Entries[0].Concurrency != 0 {
		t.Fatalf("open-loop cell mislabeled: %+v", out.Entries)
	}
}

// TestRunUsageErrors: malformed flags are usage errors, not crashes.
func TestRunUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-shards", "0"}, &stdout, &stderr); code != 2 {
		t.Errorf("shards=0: exit %d, want 2", code)
	}
	if code := run([]string{"-queries", "Q999", "-duration", "1ms", "-warmup", "0"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown query: exit %d, want 2", code)
	}
}
