// Command gcxload is the gcxd SLO harness (DESIGN.md §11): it drives a
// server with a catalog of XMark and NDJSON query cells and reports
// client-observed latency percentiles, throughput and error rate per
// (query, shards) cell — the numbers an operator would put an SLO on,
// measured from the outside rather than derived from server metrics.
//
//	gcxload                         # in-process server, default catalog
//	gcxload -url http://host:8090   # drive a running gcxd
//	gcxload -c 8 -duration 10s      # closed loop: 8 workers back to back
//	gcxload -rate 200               # open loop: 200 requests/s arrivals
//	gcxload -json BENCH_gcxd.json   # machine-readable per-cell results
//
// Closed loop (-c N) keeps N workers issuing requests back to back and
// measures saturated-server behavior; open loop (-rate R) fires
// arrivals on a fixed schedule regardless of completions, so queueing
// delay shows up in the latencies instead of being hidden by worker
// backpressure (the coordinated-omission trap). With -url empty the
// harness starts an in-process gcxd on a loopback port, so a laptop run
// needs no setup and CI needs no daemon.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gcx/internal/gcxd"
	"gcx/internal/xmark"
)

// cellResult is one measured (query, shards) cell of BENCH_gcxd.json.
type cellResult struct {
	Query string `json:"query"`
	// Format is the input syntax: "" for XML cells, "ndjson" otherwise
	// (same convention as BENCH_gcx.json).
	Format    string `json:"format,omitempty"`
	Shards    int    `json:"shards"`
	SizeBytes int    `json:"size_bytes"`
	// Concurrency and RateRPS echo the load shape: closed loop reports
	// workers and 0, open loop reports 0 and the arrival rate.
	Concurrency int     `json:"concurrency,omitempty"`
	RateRPS     float64 `json:"rate_rps,omitempty"`
	DurationS   float64 `json:"duration_s"`
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	ErrorRate   float64 `json:"error_rate"`
	// ThroughputRPS is completed-request throughput over the measurement
	// window.
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P95Ms         float64 `json:"p95_ms"`
	P99Ms         float64 `json:"p99_ms"`
	MeanMs        float64 `json:"mean_ms"`
	BytesOut      int64   `json:"bytes_out"`
}

// benchFile is the BENCH_gcxd.json schema, mirroring BENCH_gcx.json.
type benchFile struct {
	Note    string       `json:"note"`
	Entries []cellResult `json:"entries"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of the command.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gcxload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baseURL     = fs.String("url", "", "gcxd base URL (empty: start an in-process server on a loopback port)")
		conc        = fs.Int("c", 4, "closed-loop worker count (ignored when -rate is set)")
		rate        = fs.Float64("rate", 0, "open-loop arrival rate in requests/s (0 = closed loop)")
		duration    = fs.Duration("duration", 5*time.Second, "measurement window per cell")
		warmup      = fs.Duration("warmup", 500*time.Millisecond, "per-cell warmup before measuring (fills caches, steadies the scheduler)")
		sizeBytes   = fs.Int("size", 1<<20, "XMark document size in bytes")
		seed        = fs.Int64("seed", 1, "XMark generator seed")
		queriesFlag = fs.String("queries", "Q1,Q6,Q13", "XMark queries to drive")
		ndjsonFlag  = fs.String("ndjson-queries", "J1", "NDJSON queries to drive (empty disables)")
		shardsFlag  = fs.String("shards", "1,4", "shard counts per cell, comma-separated")
		jsonPath    = fs.String("json", "", "write per-cell results to this JSON file (BENCH_gcxd.json)")
		maxInflight = fs.Int("max-inflight", 0, "in-process server -max-inflight (only without -url)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var shardCounts []int
	for _, s := range strings.Split(*shardsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fmt.Fprintf(stderr, "gcxload: malformed shard count %q\n", s)
			return 2
		}
		shardCounts = append(shardCounts, n)
	}

	target := *baseURL
	if target == "" {
		// In-process server: real HTTP over loopback (the client path —
		// transport, chunking, trailers — stays honest), zero setup.
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(stderr, "gcxload:", err)
			return 1
		}
		hs := &http.Server{Handler: gcxd.NewServer(gcxd.Config{MaxInflight: *maxInflight})}
		go hs.Serve(ln)
		defer hs.Shutdown(context.Background())
		target = "http://" + ln.Addr().String()
		fmt.Fprintf(stdout, "in-process gcxd on %s\n", target)
	}

	doc, _, err := xmark.GenerateString(xmark.Config{TargetBytes: int64(*sizeBytes), Seed: *seed})
	if err != nil {
		fmt.Fprintln(stderr, "gcxload:", err)
		return 1
	}
	nd := ""
	if *ndjsonFlag != "" {
		nd, _, err = xmark.GenerateNDJSONString(xmark.Config{TargetBytes: int64(*sizeBytes), Seed: *seed})
		if err != nil {
			fmt.Fprintln(stderr, "gcxload:", err)
			return 1
		}
	}

	// The cell catalog: every query × shard-count combination.
	type cell struct {
		id, query, format, body string
	}
	var cells []cell
	for _, qid := range strings.Split(*queriesFlag, ",") {
		qid = strings.TrimSpace(qid)
		if qid == "" {
			continue
		}
		entry, ok := xmark.Queries[qid]
		if !ok {
			fmt.Fprintf(stderr, "gcxload: unknown query %q\n", qid)
			return 2
		}
		cells = append(cells, cell{id: qid, query: entry.Text, body: doc})
	}
	if *ndjsonFlag != "" {
		for _, qid := range strings.Split(*ndjsonFlag, ",") {
			qid = strings.TrimSpace(qid)
			if qid == "" {
				continue
			}
			entry, ok := xmark.NDJSONQueries[qid]
			if !ok {
				fmt.Fprintf(stderr, "gcxload: unknown NDJSON query %q\n", qid)
				return 2
			}
			cells = append(cells, cell{id: qid, query: entry.Text, format: "ndjson", body: nd})
		}
	}

	out := benchFile{Note: "generated by cmd/gcxload; regenerate with `make loadtest`"}
	fmt.Fprintf(stdout, "%-6s %-7s %7s %10s %9s %9s %9s %7s\n",
		"query", "shards", "reqs", "thru(r/s)", "p50(ms)", "p95(ms)", "p99(ms)", "err%")
	for _, c := range cells {
		for _, sh := range shardCounts {
			u := target + "/query?query=" + url.QueryEscape(c.query) + "&shards=" + strconv.Itoa(sh)
			if c.format != "" {
				u += "&format=" + c.format
			}
			res := driveCell(u, c.body, *conc, *rate, *warmup, *duration)
			res.Query, res.Format, res.Shards, res.SizeBytes = c.id, c.format, sh, len(c.body)
			if *rate > 0 {
				res.RateRPS = *rate
			} else {
				res.Concurrency = *conc
			}
			out.Entries = append(out.Entries, res)
			fmt.Fprintf(stdout, "%-6s %-7d %7d %10.1f %9.2f %9.2f %9.2f %6.2f%%\n",
				c.id, sh, res.Requests, res.ThroughputRPS, res.P50Ms, res.P95Ms, res.P99Ms, 100*res.ErrorRate)
		}
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(&out, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "gcxload:", err)
			return 1
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintln(stderr, "gcxload:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %d cells to %s\n", len(out.Entries), *jsonPath)
	}
	return 0
}

// driveCell loads one URL for the configured window and reduces the
// observed latencies.
func driveCell(u, body string, conc int, rate float64, warmup, duration time.Duration) cellResult {
	client := &http.Client{}
	defer client.CloseIdleConnections()

	// Warmup outside the measurement: compiles land in the server's
	// query cache, connections open, the runtime JITs its schedules.
	wdl := time.Now().Add(warmup)
	for time.Now().Before(wdl) {
		doRequest(client, u, body)
	}

	var (
		mu        sync.Mutex
		latencies []float64 // milliseconds
		errs      int64
		bytesOut  int64
	)
	observe := func(d time.Duration, n int64, err error) {
		mu.Lock()
		latencies = append(latencies, float64(d.Nanoseconds())/1e6)
		bytesOut += n
		if err != nil {
			errs++
		}
		mu.Unlock()
	}

	start := time.Now()
	deadline := start.Add(duration)
	var wg sync.WaitGroup
	if rate > 0 {
		// Open loop: fixed arrival schedule, one goroutine per arrival —
		// a slow server makes latencies grow, not arrivals stop.
		interval := time.Duration(float64(time.Second) / rate)
		var inflight atomic.Int64
		for t := time.Now(); t.Before(deadline); t = time.Now() {
			wg.Add(1)
			inflight.Add(1)
			go func() {
				defer wg.Done()
				defer inflight.Add(-1)
				s := time.Now()
				n, err := doRequest(client, u, body)
				observe(time.Since(s), n, err)
			}()
			time.Sleep(interval)
			// Backstop against unbounded goroutine pileup if the server is
			// far slower than the schedule.
			for inflight.Load() > 4096 {
				time.Sleep(interval)
			}
		}
	} else {
		// Closed loop: conc workers back to back.
		for i := 0; i < conc; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(deadline) {
					s := time.Now()
					n, err := doRequest(client, u, body)
					observe(time.Since(s), n, err)
				}
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Float64s(latencies)
	res := cellResult{
		DurationS: elapsed.Seconds(),
		Requests:  int64(len(latencies)),
		Errors:    errs,
		BytesOut:  bytesOut,
		P50Ms:     percentile(latencies, 50),
		P95Ms:     percentile(latencies, 95),
		P99Ms:     percentile(latencies, 99),
	}
	if res.Requests > 0 {
		res.ErrorRate = float64(errs) / float64(res.Requests)
		res.ThroughputRPS = float64(res.Requests) / elapsed.Seconds()
		var sum float64
		for _, l := range latencies {
			sum += l
		}
		res.MeanMs = sum / float64(res.Requests)
	}
	return res
}

// doRequest runs one query and fully consumes the response (the
// latency of a streamed result is time-to-last-byte, not
// time-to-status-line). Non-2xx statuses and error trailers count as
// errors.
func doRequest(client *http.Client, u, body string) (int64, error) {
	resp, err := client.Post(u, "application/xml", strings.NewReader(body))
	if err != nil {
		return 0, err
	}
	n, err := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err != nil {
		return n, err
	}
	if resp.StatusCode != http.StatusOK {
		return n, fmt.Errorf("status %d", resp.StatusCode)
	}
	if e := resp.Trailer.Get("X-Gcx-Error"); e != "" {
		return n, fmt.Errorf("trailer error: %s", e)
	}
	return n, nil
}

// percentile reads the p-th percentile from sorted data (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
