// Command xmarkgen generates XMark-like auction documents (the offline
// stand-in for the original XMark xmlgen; see DESIGN.md §5).
//
//	xmarkgen -size 10MB -seed 1 -o auction.xml
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"gcx/internal/sizeparse"
	"gcx/internal/xmark"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of the command. It returns the process exit
// code: 0 on success, 1 on runtime errors, 2 on usage errors.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xmarkgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		size = fs.String("size", "1MB", "target document size (e.g. 512KB, 10MB)")
		seed = fs.Int64("seed", 1, "PRNG seed")
		out  = fs.String("o", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	bytes, err := sizeparse.Parse(*size)
	if err != nil {
		return fail(stderr, err)
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fail(stderr, err)
		}
		defer f.Close()
		w = f
	}
	st, err := xmark.Generate(w, xmark.Config{TargetBytes: bytes, Seed: *seed})
	if err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintf(stderr,
		"xmarkgen: %d bytes, %d persons, %d items, %d open auctions, %d closed auctions, %d categories\n",
		st.Bytes, st.Persons, st.Items, st.OpenAuctions, st.ClosedAuctions, st.Categories)
	return 0
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "xmarkgen:", err)
	return 1
}
