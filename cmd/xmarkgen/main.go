// Command xmarkgen generates XMark-like auction documents (the offline
// stand-in for the original XMark xmlgen; see DESIGN.md).
//
//	xmarkgen -size 10MB -seed 1 -o auction.xml
package main

import (
	"flag"
	"fmt"
	"os"

	"gcx/internal/sizeparse"
	"gcx/internal/xmark"
)

func main() {
	var (
		size = flag.String("size", "1MB", "target document size (e.g. 512KB, 10MB)")
		seed = flag.Int64("seed", 1, "PRNG seed")
		out  = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	bytes, err := sizeparse.Parse(*size)
	if err != nil {
		fatal(err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	st, err := xmark.Generate(w, xmark.Config{TargetBytes: bytes, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr,
		"xmarkgen: %d bytes, %d persons, %d items, %d open auctions, %d closed auctions, %d categories\n",
		st.Bytes, st.Persons, st.Items, st.OpenAuctions, st.ClosedAuctions, st.Categories)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xmarkgen:", err)
	os.Exit(1)
}
