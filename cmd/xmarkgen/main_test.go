package main

import (
	"io"
	"strings"
	"testing"

	"gcx/internal/xmltok"
)

func TestRunGeneratesWellFormedDoc(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-size", "64KB", "-seed", "7"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	doc := out.String()
	// Size-scaled: within a factor of two of the target.
	if len(doc) < 32<<10 || len(doc) > 128<<10 {
		t.Fatalf("document size %d not near 64KB target", len(doc))
	}
	if !strings.Contains(errb.String(), "persons") {
		t.Fatalf("stats line missing: %s", errb.String())
	}
	// Well-formed: the tokenizer must consume it without error.
	tz := xmltok.NewTokenizer(strings.NewReader(doc))
	defer tz.Release()
	tokens := 0
	for {
		_, err := tz.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("generated document malformed: %v", err)
		}
		tokens++
	}
	if tokens == 0 {
		t.Fatal("no tokens generated")
	}
}

func TestRunSizeScaling(t *testing.T) {
	sizes := map[string]int{"32KB": 32 << 10, "256KB": 256 << 10}
	lens := map[string]int{}
	for arg := range sizes {
		var out, errb strings.Builder
		if code := run([]string{"-size", arg}, &out, &errb); code != 0 {
			t.Fatalf("%s: exit %d: %s", arg, code, errb.String())
		}
		lens[arg] = out.Len()
	}
	if lens["256KB"] <= lens["32KB"] {
		t.Fatalf("sizes not scaled: %v", lens)
	}
}

func TestRunDeterministicSeed(t *testing.T) {
	gen := func(seed string) string {
		var out, errb strings.Builder
		if code := run([]string{"-size", "16KB", "-seed", seed}, &out, &errb); code != 0 {
			t.Fatalf("exit %d: %s", code, errb.String())
		}
		return out.String()
	}
	if gen("3") != gen("3") {
		t.Fatal("same seed produced different documents")
	}
	if gen("3") == gen("4") {
		t.Fatal("different seeds produced identical documents")
	}
}

func TestRunExitCodes(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-size", "banana"}, &out, &errb); code != 1 {
		t.Fatalf("bad size: exit %d, want 1", code)
	}
	if code := run([]string{"-nope"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}
