package gcx_test

import (
	"strings"
	"testing"

	"gcx"
	"gcx/internal/xmark"
)

// TestTracePhases: a traced run reports compile plus the execution
// phases, untraced runs report nothing, and the post-compile phases of
// a sequential run sum to the wall time within 10% (the eval phase is
// computed as the remainder, so the slack only covers clock coarseness
// on very fast runs — the acceptance run over a 4 MiB document is
// exercised by make loadtest / cmd/gcx).
func TestTracePhases(t *testing.T) {
	doc, _, err := xmark.GenerateString(xmark.Config{TargetBytes: 256 << 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := gcx.MustCompile(xmark.Queries["Q1"].Text)

	_, res, err := q.ExecuteString(doc, gcx.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatalf("untraced run has Trace %+v", res.Trace)
	}

	_, res, err = q.ExecuteString(doc, gcx.Options{EnableTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 || res.Trace[0].Phase != "compile" {
		t.Fatalf("trace = %+v, want compile first", res.Trace)
	}
	var run int64
	seen := map[string]bool{}
	for _, p := range res.Trace {
		if p.Nanos < 0 {
			t.Errorf("negative phase %+v", p)
		}
		seen[p.Phase] = true
		if p.Phase != "compile" {
			run += p.Nanos
		}
	}
	if !seen["stream"] {
		t.Errorf("no stream phase in %+v", res.Trace)
	}
	wall := int64(res.Duration)
	if diff := wall - run; diff < 0 || diff > wall/10 {
		t.Errorf("phases sum %d vs wall %d (diff %d > 10%%)", run, wall, diff)
	}
}

// TestTraceJoinAndShards: a join query reports build/probe phases, and
// a sharded run reports per-worker sums plus the merge phase.
func TestTraceJoinAndShards(t *testing.T) {
	doc, _, err := xmark.GenerateString(xmark.Config{TargetBytes: 64 << 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	q := gcx.MustCompile(xmark.Queries["Q8"].Text)
	_, res, err := q.ExecuteString(doc, gcx.Options{EnableTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	var phases []string
	for _, p := range res.Trace {
		phases = append(phases, p.Phase)
	}
	got := strings.Join(phases, ",")
	if !strings.Contains(got, "join_build") || !strings.Contains(got, "join_probe") {
		t.Errorf("join trace %q lacks join phases", got)
	}

	q = gcx.MustCompile(xmark.Queries["Q1"].Text)
	_, res, err = q.ExecuteString(doc, gcx.Options{EnableTrace: true, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardsUsed != 3 {
		t.Fatalf("ShardsUsed = %d", res.ShardsUsed)
	}
	phases = phases[:0]
	for _, p := range res.Trace {
		phases = append(phases, p.Phase)
	}
	got = strings.Join(phases, ",")
	if !strings.Contains(got, "stream") || !strings.Contains(got, "merge") {
		t.Errorf("sharded trace %q lacks stream/merge phases", got)
	}
}

// TestExplainTraceSection: attaching a run's trace to the report adds
// the Trace section to its text rendering.
func TestExplainTraceSection(t *testing.T) {
	q := gcx.MustCompile(xmark.Queries["Q1"].Text)
	doc, _, err := xmark.GenerateString(xmark.Config{TargetBytes: 32 << 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, res, err := q.ExecuteString(doc, gcx.Options{EnableTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	rep := q.Report()
	if strings.Contains(rep.Text(), "Trace:") {
		t.Fatal("static report should have no Trace section")
	}
	rep.TracePhases = res.Trace
	txt := rep.Text()
	if !strings.Contains(txt, "Trace:") || !strings.Contains(txt, "compile") || !strings.Contains(txt, "total") {
		t.Errorf("trace section missing from:\n%s", txt)
	}
}
