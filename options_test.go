package gcx_test

import (
	"io"
	"strings"
	"testing"

	"gcx"
)

// TestExecuteUnknownEngine: an out-of-range Engine value must be
// reported, not silently fall back to EngineGCX.
func TestExecuteUnknownEngine(t *testing.T) {
	q := gcx.MustCompile(`<out>{ /a/b }</out>`)
	_, err := q.Execute(strings.NewReader("<a><b/></a>"), io.Discard, gcx.Options{Engine: gcx.Engine(42)})
	if err == nil {
		t.Fatal("expected error for unknown engine value")
	}
	if !strings.Contains(err.Error(), "unknown engine") {
		t.Errorf("err = %v, want mention of unknown engine", err)
	}
}

// TestExecuteUnknownSignOffMode: an out-of-range SignOffMode must be
// reported, not silently treated as deferred.
func TestExecuteUnknownSignOffMode(t *testing.T) {
	q := gcx.MustCompile(`<out>{ /a/b }</out>`)
	_, err := q.Execute(strings.NewReader("<a><b/></a>"), io.Discard, gcx.Options{SignOffMode: gcx.SignOffMode(7)})
	if err == nil {
		t.Fatal("expected error for unknown sign-off mode")
	}
	if !strings.Contains(err.Error(), "unknown sign-off mode") {
		t.Errorf("err = %v, want mention of unknown sign-off mode", err)
	}
}

// TestExecuteKnownOptionValues: every documented combination still
// executes.
func TestExecuteKnownOptionValues(t *testing.T) {
	q := gcx.MustCompile(`<out>{ /a/b }</out>`)
	const doc = "<a><b>1</b></a>"
	for _, eng := range []gcx.Engine{gcx.EngineGCX, gcx.EngineProjectionOnly, gcx.EngineDOM} {
		for _, mode := range []gcx.SignOffMode{gcx.SignOffDeferred, gcx.SignOffEager} {
			out, _, err := q.ExecuteString(doc, gcx.Options{Engine: eng, SignOffMode: mode})
			if err != nil {
				t.Fatalf("engine %d, mode %d: %v", eng, mode, err)
			}
			if out != "<out><b>1</b></out>" {
				t.Errorf("engine %d, mode %d: output %q", eng, mode, out)
			}
		}
	}
}
