// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for paper-vs-measured results):
//
//	BenchmarkFig3b, BenchmarkFig3c       — Fig. 3(b,c) buffer plots
//	BenchmarkFig4a_Q6, BenchmarkFig4b_Q8 — Fig. 4(a,b) XMark buffer plots
//	BenchmarkFig5                        — Fig. 5 time/memory table
//	BenchmarkAblationSignOff             — deferred vs. eager sign-offs
//	BenchmarkAblationDiscipline          — GCX vs. projection-only vs. DOM
//	BenchmarkSubstrateTokenizer/Projection — substrate throughput
//
// Custom metrics: peak_nodes (buffer high watermark, the paper's
// y-axis), peak_KB (estimated buffered bytes).
package gcx_test

import (
	"fmt"
	"io"
	"strings"
	"testing"

	"gcx"
	"gcx/internal/buffer"
	"gcx/internal/core"
	"gcx/internal/projection"
	"gcx/internal/xmark"
	"gcx/internal/xmltok"
)

// xmarkDocs caches generated documents per size so that generation cost
// stays out of the timed loops.
var xmarkDocs = map[int64]string{}

func xmarkDoc(b *testing.B, size int64) string {
	if doc, ok := xmarkDocs[size]; ok {
		return doc
	}
	doc, _, err := xmark.GenerateString(xmark.Config{TargetBytes: size, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	xmarkDocs[size] = doc
	return doc
}

func runQuery(b *testing.B, q *gcx.Query, doc string, opts gcx.Options) *gcx.Result {
	b.Helper()
	res, err := q.Execute(strings.NewReader(doc), io.Discard, opts)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// benchBufferPlot runs a query repeatedly and reports buffer watermarks.
func benchBufferPlot(b *testing.B, query, doc string, opts gcx.Options) {
	q, err := gcx.Compile(query)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	var res *gcx.Result
	for i := 0; i < b.N; i++ {
		res = runQuery(b, q, doc, opts)
	}
	b.ReportMetric(float64(res.PeakBufferedNodes), "peak_nodes")
	b.ReportMetric(float64(res.PeakBufferedBytes)/1024, "peak_KB")
}

// BenchmarkFig3b — paper Figure 3(b): 9×article + 1×book; the buffer
// oscillates and stays bounded (peak 6 nodes).
func BenchmarkFig3b(b *testing.B) {
	benchBufferPlot(b, xmark.PaperQuery, xmark.BibDocument(xmark.Fig3bKinds()), gcx.Options{})
}

// BenchmarkFig3c — paper Figure 3(c): 9×book + 1×article; books retain
// book+title pairs, 23 nodes buffered at </bib>.
func BenchmarkFig3c(b *testing.B) {
	benchBufferPlot(b, xmark.PaperQuery, xmark.BibDocument(xmark.Fig3cKinds()), gcx.Options{})
}

// BenchmarkFig4a_Q6 — paper Figure 4(a): XMark Q6 streams items one at
// a time; the buffer stays tiny and empties after the regions section.
func BenchmarkFig4a_Q6(b *testing.B) {
	benchBufferPlot(b, xmark.Queries["Q6"].Text, xmarkDoc(b, 1<<20), gcx.Options{})
}

// BenchmarkFig4b_Q8 — paper Figure 4(b): the value join buffers people
// and closed_auctions; memory is linear in the input.
func BenchmarkFig4b_Q8(b *testing.B) {
	benchBufferPlot(b, xmark.Queries["Q8"].Text, xmarkDoc(b, 1<<20), gcx.Options{})
}

// BenchmarkFig5 — the paper's Figure 5 table: queries × document sizes
// × engines, time per run plus memory watermarks. Run with
// cmd/gcxbench for the paper's 10–200 MB sizes; the bench uses 1 MB and
// 4 MB to stay CI-friendly.
func BenchmarkFig5(b *testing.B) {
	sizes := []int64{1 << 20, 4 << 20}
	engines := []struct {
		name string
		opt  gcx.Engine
	}{
		{"gcx", gcx.EngineGCX},
		{"projection", gcx.EngineProjectionOnly},
		{"dom", gcx.EngineDOM},
	}
	for _, qid := range []string{"Q1", "Q6", "Q8", "Q13", "Q20"} {
		entry := xmark.Queries[qid]
		q, err := gcx.Compile(entry.Text)
		if err != nil {
			b.Fatal(err)
		}
		for _, size := range sizes {
			doc := xmarkDoc(b, size)
			for _, eng := range engines {
				name := qid + "/" + sizeName(size) + "/" + eng.name
				b.Run(name, func(b *testing.B) {
					b.SetBytes(int64(len(doc)))
					var res *gcx.Result
					for i := 0; i < b.N; i++ {
						res = runQuery(b, q, doc, gcx.Options{Engine: eng.opt})
					}
					b.ReportMetric(float64(res.PeakBufferedNodes), "peak_nodes")
					b.ReportMetric(float64(res.PeakBufferedBytes)/1024, "peak_KB")
				})
			}
		}
	}
}

func sizeName(n int64) string {
	switch {
	case n >= 1<<20:
		return itoa(n>>20) + "MB"
	default:
		return itoa(n>>10) + "KB"
	}
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationSignOff — DESIGN.md A1: deferred sign-offs (the
// paper's published timing) versus eager forced-read sign-offs. Outputs
// are identical; eager purges slightly earlier.
func BenchmarkAblationSignOff(b *testing.B) {
	doc := xmarkDoc(b, 1<<20)
	for _, mode := range []struct {
		name string
		m    gcx.SignOffMode
	}{{"deferred", gcx.SignOffDeferred}, {"eager", gcx.SignOffEager}} {
		for _, qid := range []string{"Q1", "Q8"} {
			q, err := gcx.Compile(xmark.Queries[qid].Text)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(qid+"/"+mode.name, func(b *testing.B) {
				b.SetBytes(int64(len(doc)))
				var res *gcx.Result
				for i := 0; i < b.N; i++ {
					res = runQuery(b, q, doc, gcx.Options{SignOffMode: mode.m})
				}
				b.ReportMetric(float64(res.PeakBufferedNodes), "peak_nodes")
			})
		}
	}
}

// BenchmarkAblationDiscipline — DESIGN.md A2: what each analysis stage
// buys. Full buffering (dom) → static projection (projection) → static
// + dynamic GC (gcx), on a streamable query and on the blocking join.
func BenchmarkAblationDiscipline(b *testing.B) {
	doc := xmarkDoc(b, 1<<20)
	for _, qid := range []string{"Q1", "Q8"} {
		q, err := gcx.Compile(xmark.Queries[qid].Text)
		if err != nil {
			b.Fatal(err)
		}
		for _, eng := range []struct {
			name string
			opt  gcx.Engine
		}{{"dom", gcx.EngineDOM}, {"projection", gcx.EngineProjectionOnly}, {"gcx", gcx.EngineGCX}} {
			b.Run(qid+"/"+eng.name, func(b *testing.B) {
				b.SetBytes(int64(len(doc)))
				var res *gcx.Result
				for i := 0; i < b.N; i++ {
					res = runQuery(b, q, doc, gcx.Options{Engine: eng.opt})
				}
				b.ReportMetric(float64(res.PeakBufferedNodes), "peak_nodes")
				b.ReportMetric(float64(res.PeakBufferedBytes)/1024, "peak_KB")
			})
		}
	}
}

// BenchmarkShardedExecute measures sharded data-parallel execution
// (DESIGN.md §6) on XMark Q1 over a partition-friendly input: shards=1
// is the sequential engine, higher counts split the stream at
// /site/people/person and run one engine instance per worker. On
// multi-core hosts the gain is parallelism; even on one core sharding
// wins because the splitter's raw byte scan replaces full engine
// processing for all non-record content.
func BenchmarkShardedExecute(b *testing.B) {
	doc := xmarkDoc(b, 4<<20)
	q, err := gcx.Compile(xmark.Queries["Q1"].Text)
	if err != nil {
		b.Fatal(err)
	}
	if !q.Shardable() {
		b.Fatal("Q1 must be shardable")
	}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.SetBytes(int64(len(doc)))
			var res *gcx.Result
			for i := 0; i < b.N; i++ {
				res = runQuery(b, q, doc, gcx.Options{Shards: shards})
			}
			b.ReportMetric(float64(res.Chunks), "chunks")
			b.ReportMetric(float64(res.PeakBufferedNodes), "peak_nodes")
		})
	}
}

// BenchmarkSkippingExecute measures what projection-guided byte-level
// subtree skipping (DESIGN.md §7) buys on the sequential hot path:
// each query runs with skipping on (default) and off, over the same
// document. The skipped_KB metric is the per-run BytesSkipped — the
// share of the input the path automaton proved unobservable and the
// engine fast-forwarded past without tokenizing.
func BenchmarkSkippingExecute(b *testing.B) {
	doc := xmarkDoc(b, 4<<20)
	for _, qid := range []string{"Q1", "Q6", "Q13"} {
		q, err := gcx.Compile(xmark.Queries[qid].Text)
		if err != nil {
			b.Fatal(err)
		}
		for _, variant := range []struct {
			name string
			off  bool
		}{{"skip", false}, {"noskip", true}} {
			b.Run(qid+"/"+variant.name, func(b *testing.B) {
				b.SetBytes(int64(len(doc)))
				b.ReportAllocs()
				var res *gcx.Result
				for i := 0; i < b.N; i++ {
					res = runQuery(b, q, doc, gcx.Options{DisableSubtreeSkip: variant.off})
				}
				b.ReportMetric(float64(res.BytesSkipped)/1024, "skipped_KB")
			})
		}
	}
}

// BenchmarkParallelExecute measures the concurrent-service path: one
// shared compiled query, executions fanned out over GOMAXPROCS
// goroutines (b.RunParallel), allocations reported so the pooling of
// tokenizer scratch, serializer buffers and buffer-manager node slabs
// stays measurable.
func BenchmarkParallelExecute(b *testing.B) {
	doc := xmarkDoc(b, 1<<20)
	for _, qid := range []string{"Q1", "Q6"} {
		q, err := gcx.Compile(xmark.Queries[qid].Text)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(qid, func(b *testing.B) {
			b.SetBytes(int64(len(doc)))
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := q.Execute(strings.NewReader(doc), io.Discard, gcx.Options{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkQueryCache measures the hot-query service path: concurrent
// lookups of an already-compiled query followed by execution, the
// steady state of cmd/gcxd under load.
func BenchmarkQueryCache(b *testing.B) {
	doc := xmark.BibDocument(xmark.Fig3bKinds())
	cache := gcx.NewQueryCache(16)
	if _, err := cache.Get(xmark.PaperQuery); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q, err := cache.Get(xmark.PaperQuery)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := q.Execute(strings.NewReader(doc), io.Discard, gcx.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSubstrateTokenizer measures raw tokenizer throughput — the
// lower bound on any streaming engine's runtime.
func BenchmarkSubstrateTokenizer(b *testing.B) {
	doc := xmarkDoc(b, 1<<20)
	b.SetBytes(int64(len(doc)))
	for i := 0; i < b.N; i++ {
		tz := xmltok.NewTokenizer(strings.NewReader(doc))
		for {
			_, err := tz.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		tz.Release()
	}
}

// BenchmarkSubstrateProjection measures the preprojector over the Q8
// role set: the cost of stream filtering plus buffering, without
// evaluation.
func BenchmarkSubstrateProjection(b *testing.B) {
	doc := xmarkDoc(b, 1<<20)
	plan, err := core.Compile(xmark.Queries["Q8"].Text)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := buffer.New()
		buf.DisableGC = true
		p := projection.New(xmltok.NewTokenizer(strings.NewReader(doc)), buf, plan.RolePaths())
		if err := p.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFirstWitness — DESIGN.md A4: what the paper's
// first-witness [1] pruning (role r4) buys on existence conditions over
// wide subtrees. Without it, every candidate price is buffered until
// the iteration's sign-off.
func BenchmarkAblationFirstWitness(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<bib>")
	for i := 0; i < 100; i++ {
		sb.WriteString("<book><title>t</title>")
		for j := 0; j < 20; j++ {
			sb.WriteString("<price>9</price>")
		}
		sb.WriteString("</book>")
	}
	sb.WriteString("</bib>")
	doc := sb.String()
	const query = `<r>{ for $x in /bib/* return
	   if (exists $x/price) then $x/title else () }</r>`

	for _, variant := range []struct {
		name    string
		disable bool
	}{{"firstWitness", false}, {"allWitnesses", true}} {
		q, err := gcx.CompileWithOptions(query, gcx.CompileOptions{DisableFirstWitness: variant.disable})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(variant.name, func(b *testing.B) {
			b.SetBytes(int64(len(doc)))
			var res *gcx.Result
			for i := 0; i < b.N; i++ {
				res = runQuery(b, q, doc, gcx.Options{})
			}
			b.ReportMetric(float64(res.PeakBufferedNodes), "peak_nodes")
		})
	}
}

// BenchmarkAblationGranularity — DESIGN.md A5: node-granular roles (the
// paper's contribution) versus coarse subtree-granular relevance. The
// coarse model projects whole subtrees whenever any part is used.
func BenchmarkAblationGranularity(b *testing.B) {
	doc := xmarkDoc(b, 1<<20)
	for _, qid := range []string{"Q8", "Q20"} {
		for _, variant := range []struct {
			name   string
			coarse bool
		}{{"node", false}, {"subtree", true}} {
			q, err := gcx.CompileWithOptions(xmark.Queries[qid].Text,
				gcx.CompileOptions{CoarseGranularity: variant.coarse})
			if err != nil {
				b.Fatal(err)
			}
			b.Run(qid+"/"+variant.name, func(b *testing.B) {
				b.SetBytes(int64(len(doc)))
				var res *gcx.Result
				for i := 0; i < b.N; i++ {
					res = runQuery(b, q, doc, gcx.Options{})
				}
				b.ReportMetric(float64(res.PeakBufferedNodes), "peak_nodes")
				b.ReportMetric(float64(res.PeakBufferedBytes)/1024, "peak_KB")
			})
		}
	}
}
