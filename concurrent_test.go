package gcx_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"gcx"
)

const concurrentQuery = `<out>{ for $b in /bib/book return
	if ($b/price < 50) then $b/title else () }</out>`

// concurrentDoc builds a distinct document per stream id, large enough
// that executions genuinely interleave.
func concurrentDoc(id, books int) string {
	var sb strings.Builder
	sb.WriteString("<bib>")
	for i := 0; i < books; i++ {
		fmt.Fprintf(&sb, "<book><title>s%d-b%d</title><price>%d</price></book>", id, i, (i*7)%100)
	}
	sb.WriteString("</bib>")
	return sb.String()
}

// TestConcurrentSharedQuery exercises the documented contract that one
// compiled *Query may serve many goroutines at once: 12 goroutines × 5
// rounds over distinct inputs, each output compared byte-for-byte with
// the sequential execution of the same stream. Run with -race.
func TestConcurrentSharedQuery(t *testing.T) {
	q, err := gcx.Compile(concurrentQuery)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 12
	const rounds = 5
	docs := make([]string, goroutines)
	want := make([]string, goroutines)
	for i := range docs {
		docs[i] = concurrentDoc(i, 200+i)
		out, _, err := q.ExecuteString(docs[i], gcx.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				var out strings.Builder
				res, err := q.ExecuteContext(context.Background(), strings.NewReader(docs[i]), &out, gcx.Options{})
				if err != nil {
					errs <- fmt.Errorf("stream %d round %d: %v", i, r, err)
					return
				}
				if out.String() != want[i] {
					errs <- fmt.Errorf("stream %d round %d: output diverged from sequential run", i, r)
					return
				}
				if res.FinalBufferedNodes != 0 {
					errs <- fmt.Errorf("stream %d round %d: %d nodes left buffered", i, r, res.FinalBufferedNodes)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentSharedQueryAllEngines shares one query across
// goroutines running different engines simultaneously; all disciplines
// must produce identical output.
func TestConcurrentSharedQueryAllEngines(t *testing.T) {
	q := gcx.MustCompile(concurrentQuery)
	doc := concurrentDoc(0, 300)
	want, _, err := q.ExecuteString(doc, gcx.Options{})
	if err != nil {
		t.Fatal(err)
	}

	engines := []gcx.Engine{gcx.EngineGCX, gcx.EngineProjectionOnly, gcx.EngineDOM}
	var wg sync.WaitGroup
	errs := make(chan error, 3*len(engines))
	for rep := 0; rep < 3; rep++ {
		for _, eng := range engines {
			wg.Add(1)
			go func(eng gcx.Engine) {
				defer wg.Done()
				out, _, err := q.ExecuteString(doc, gcx.Options{Engine: eng})
				if err != nil {
					errs <- err
					return
				}
				if out != want {
					errs <- fmt.Errorf("engine %d diverged", eng)
				}
			}(eng)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// countWriter records whether anything was written to the output.
type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// TestExecuteContextAlreadyCancelled: a cancelled context aborts before
// the first token and nothing reaches the output writer.
func TestExecuteContextAlreadyCancelled(t *testing.T) {
	q := gcx.MustCompile(concurrentQuery)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, eng := range []gcx.Engine{gcx.EngineGCX, gcx.EngineProjectionOnly, gcx.EngineDOM} {
		var out countWriter
		_, err := q.ExecuteContext(ctx, strings.NewReader(concurrentDoc(0, 50)), &out, gcx.Options{Engine: eng})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("engine %d: err = %v, want context.Canceled", eng, err)
		}
		if out.n != 0 {
			t.Errorf("engine %d: %d bytes written after cancellation, want 0", eng, out.n)
		}
	}
}

// cancellingReader cancels a context after the first Read, while plenty
// of input remains — the run must stop mid-stream.
type cancellingReader struct {
	r      io.Reader
	cancel context.CancelFunc
	reads  int
}

func (c *cancellingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.reads++
	if c.reads == 1 {
		c.cancel()
	}
	return n, err
}

// TestExecuteContextCancelMidStream: cancellation during streaming
// aborts within one token-pull iteration — the input is not read to the
// end and no output is flushed.
func TestExecuteContextCancelMidStream(t *testing.T) {
	q := gcx.MustCompile(concurrentQuery)
	doc := concurrentDoc(1, 20000) // ~1 MB, far larger than one 64 KiB read
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cr := &cancellingReader{r: strings.NewReader(doc), cancel: cancel}
	var out countWriter
	_, err := q.ExecuteContext(ctx, cr, &out, gcx.Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out.n != 0 {
		t.Errorf("%d bytes written after mid-stream cancellation, want 0", out.n)
	}
	if c := cr.reads; c > 2 {
		t.Errorf("input read %d times after cancellation, want at most 2 (one buffered chunk)", c)
	}
}

// TestConcurrentCancellation mixes cancelled and live executions of one
// shared query under load. Run with -race.
func TestConcurrentCancellation(t *testing.T) {
	q := gcx.MustCompile(concurrentQuery)
	doc := concurrentDoc(2, 500)
	want, _, err := q.ExecuteString(doc, gcx.Options{})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				ctx, cancel := context.WithCancel(context.Background())
				cancel()
				if _, err := q.ExecuteContext(ctx, strings.NewReader(doc), io.Discard, gcx.Options{}); !errors.Is(err, context.Canceled) {
					errs <- fmt.Errorf("goroutine %d: err = %v, want context.Canceled", i, err)
				}
				return
			}
			out, _, err := q.ExecuteString(doc, gcx.Options{})
			if err != nil {
				errs <- fmt.Errorf("goroutine %d: %v", i, err)
				return
			}
			if out != want {
				errs <- fmt.Errorf("goroutine %d: output diverged", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
