package gcx_test

// Differential property test for the static buffer bound (DESIGN.md §9):
// for every bounded-classified query in the XMark and NDJSON catalogs,
// the runtime buffer high watermark must stay under the bound the
// analyzer derived at compile time — peak ≤ ConstNodes +
// RecordFactor·nodes(recordPath) — across input sizes, generator seeds,
// skip settings, and sharded execution. The record term is measured on
// the ground truth: the input fully materialized by the DOM baseline.

import (
	"context"
	"io"
	"strings"
	"testing"

	"gcx"
	"gcx/internal/analysis"
	"gcx/internal/core"
	"gcx/internal/dom"
	"gcx/internal/xmark"
	"gcx/internal/xpath"
)

// subtreeNodes counts the element and text nodes of n's subtree,
// including n itself — the node metric of Result.PeakBufferedNodes.
func subtreeNodes(n *dom.Node) int64 {
	var c int64
	if n.Kind == dom.Element || n.Kind == dom.Text {
		c = 1
	}
	for _, ch := range n.Children {
		c += subtreeNodes(ch)
	}
	return c
}

// maxRecordNodes measures nodes(recPath) for one input: the node count
// of the largest subtree matching the bound's record path.
func maxRecordNodes(t *testing.T, input string, format core.Format, recPath xpath.Path) int64 {
	t.Helper()
	src, err := core.NewSource(format, strings.NewReader(input))
	if err != nil {
		t.Fatalf("source: %v", err)
	}
	doc, err := dom.ParseSource(context.Background(), src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var max int64
	for _, n := range dom.Select(doc.Root, recPath) {
		if c := subtreeNodes(n); c > max {
			max = c
		}
	}
	if max == 0 {
		t.Fatalf("record path %s matches nothing in the input", recPath.String())
	}
	return max
}

func TestStaticBoundProperty(t *testing.T) {
	type catalog struct {
		queries map[string]xmark.Query
		format  gcx.Format
		coreFmt core.Format
		gen     func(xmark.Config) (string, *xmark.Stats, error)
	}
	catalogs := []catalog{
		{xmark.Queries, gcx.FormatXML, core.FormatXML, xmark.GenerateString},
		{xmark.NDJSONQueries, gcx.FormatNDJSON, core.FormatNDJSON, xmark.GenerateNDJSONString},
	}
	sizes := []int64{64 << 10, 192 << 10}
	seeds := []int64{1, 7}

	for _, cat := range catalogs {
		for id, q := range cat.queries {
			plan, err := core.CompileWithOptions(q.Text, analysis.Options{})
			if err != nil {
				t.Fatalf("%s: compile: %v", id, err)
			}
			st := plan.Stream

			// The public report must agree with the internal verdict —
			// gcxd admission control trusts the string form.
			query := gcx.MustCompile(q.Text)
			if rep := query.Report(); rep.Streamability != st.Class.String() {
				t.Errorf("%s: report says %q, analyzer says %q", id, rep.Streamability, st.Class)
			}
			if st.Class == analysis.Unbounded {
				continue
			}

			for _, size := range sizes {
				for _, seed := range seeds {
					input, _, err := cat.gen(xmark.Config{TargetBytes: size, Seed: seed})
					if err != nil {
						t.Fatalf("generate: %v", err)
					}
					var rec int64
					if st.Bound.RecordFactor > 0 {
						rec = maxRecordNodes(t, input, cat.coreFmt, st.Bound.RecordPath)
					}
					bound := st.Bound.Eval(rec)

					for _, variant := range []struct {
						name string
						opts gcx.Options
					}{
						{"plain", gcx.Options{Format: cat.format, EnableAggregation: q.UsesAggregation}},
						{"noskip", gcx.Options{Format: cat.format, EnableAggregation: q.UsesAggregation, DisableSubtreeSkip: true}},
						{"sharded", gcx.Options{Format: cat.format, EnableAggregation: q.UsesAggregation, Shards: 4}},
					} {
						res, err := query.Execute(strings.NewReader(input), io.Discard, variant.opts)
						if err != nil {
							t.Fatalf("%s/%s size=%d seed=%d: execute: %v", id, variant.name, size, seed, err)
						}
						// Sharded peaks are summed across workers, each of
						// which owns a full buffer — the budget is per
						// worker (Options.MaxBufferedNodes doc).
						limit := bound
						if res.ShardsUsed > 1 {
							limit = bound * int64(res.ShardsUsed)
						}
						if res.PeakBufferedNodes > limit {
							t.Errorf("%s/%s size=%d seed=%d: peak %d exceeds static bound %d (%s, class %s, record %d)",
								id, variant.name, size, seed, res.PeakBufferedNodes, limit, st.Bound, st.Class, rec)
						}
					}
				}
			}
		}
	}
}

// TestStaticBoundScaling makes the linearity claim concrete for the two
// bounded classes: growing the input 8× must not grow the peak of a
// bounded query beyond the bound computed for the larger input, and for
// a constant-class query the peak must not scale with the input at all
// once the record size plateaus.
func TestStaticBoundScaling(t *testing.T) {
	small, _, err := xmark.GenerateString(xmark.Config{TargetBytes: 32 << 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	large, _, err := xmark.GenerateString(xmark.Config{TargetBytes: 256 << 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	q := gcx.MustCompile(xmark.Queries["Q1"].Text)
	peak := func(input string) int64 {
		res, err := q.Execute(strings.NewReader(input), io.Discard, gcx.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.PeakBufferedNodes
	}
	ps, pl := peak(small), peak(large)
	// Q1 is bounded-constant: the watermark tracks record size, not
	// input size. Allow 4× slack for record-size variance between the
	// generated documents; an unbounded engine would show ~8×.
	if pl > 4*ps {
		t.Errorf("Q1 peak scaled with input size: %d -> %d over an 8x input growth", ps, pl)
	}
}
